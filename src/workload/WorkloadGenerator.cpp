//===--- WorkloadGenerator.cpp - Synthetic Modula-2+ programs -------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "workload/WorkloadGenerator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <random>
#include <sstream>

using namespace m2c;
using namespace m2c::workload;

namespace {

/// Deterministic helper bundling the RNG with common draws.
struct Rng {
  std::mt19937 Gen;
  explicit Rng(uint32_t Seed) : Gen(Seed) {}
  unsigned range(unsigned Lo, unsigned Hi) { // inclusive
    return Lo + Gen() % (Hi - Lo + 1);
  }
  bool chance(unsigned Percent) { return Gen() % 100 < Percent; }
};

/// Interface layering: distributes \p Total interfaces over \p Depth
/// levels (level 0 is imported directly by the main module).
std::vector<unsigned> layerSizes(unsigned Total, unsigned Depth) {
  Depth = std::max(1u, std::min(Depth, Total == 0 ? 1u : Total));
  std::vector<unsigned> Sizes(Depth, Total / Depth);
  for (unsigned I = 0; I < Total % Depth; ++I)
    ++Sizes[I];
  return Sizes;
}

} // namespace

GeneratedModule WorkloadGenerator::generate(const ModuleSpec &Spec) {
  Rng R(Spec.Seed);
  GeneratedModule Info;
  Info.Name = Spec.Name;
  Info.ProcedureCount = Spec.NumProcedures;

  //===--- Interfaces -------------------------------------------------------===//
  unsigned NumIfaces = Spec.BestCase ? 0 : Spec.ImportedInterfaces;
  std::vector<unsigned> Layers = layerSizes(NumIfaces, Spec.ImportDepth);
  // Interface k lives at level LevelOf[k]; names are <Name>I<k>.
  std::vector<unsigned> LevelOf;
  std::vector<std::vector<unsigned>> AtLevel(Layers.size());
  {
    unsigned K = 0;
    for (unsigned L = 0; L < Layers.size(); ++L)
      for (unsigned I = 0; I < Layers[L]; ++I) {
        LevelOf.push_back(L);
        AtLevel[L].push_back(K++);
      }
  }
  auto IfaceName = [&](unsigned K) {
    return Spec.Name + "I" + std::to_string(K);
  };

  for (unsigned K = 0; K < NumIfaces; ++K) {
    std::ostringstream OS;
    OS << "DEFINITION MODULE " << IfaceName(K) << ";\n";
    unsigned Level = LevelOf[K];
    int Deeper = -1;
    if (Level + 1 < AtLevel.size() && !AtLevel[Level + 1].empty()) {
      // Import one or two deeper interfaces to build the nesting chain.
      Deeper = static_cast<int>(AtLevel[Level + 1][R.range(
          0, static_cast<unsigned>(AtLevel[Level + 1].size()) - 1)]);
      OS << "IMPORT " << IfaceName(static_cast<unsigned>(Deeper));
      if (AtLevel[Level + 1].size() > 1 && R.chance(50)) {
        unsigned Second = AtLevel[Level + 1][R.range(
            0, static_cast<unsigned>(AtLevel[Level + 1].size()) - 1)];
        if (static_cast<int>(Second) != Deeper)
          OS << ", " << IfaceName(Second);
      }
      OS << ";\n";
    }
    // T0 and C0 come first so that dependents probing this table early
    // usually find them in the still-incomplete table (the Skeptical
    // strategy's "Search / incomplete" wins in Table 2).
    OS << "TYPE T0 = INTEGER;\n";
    unsigned Decls = std::max(2u, Spec.InterfaceDecls);
    OS << "CONST\n";
    for (unsigned D = 0; D < (Decls + 1) / 2; ++D)
      OS << "  C" << D << " = " << R.range(1, 97) << ";\n";
    for (unsigned D = 0; D < Decls / 2; ++D)
      OS << "PROCEDURE P" << D << "(x: INTEGER): INTEGER;\n";
    // Cross-references into the imported (deeper) interface sit *late*,
    // as in real interfaces where imported types appear in signatures
    // after the local groundwork: the inter-scope information flows of
    // paper section 2.4.  They reference early symbols of the deeper
    // interface, so a probe of its incomplete table usually succeeds and
    // DKY blockage stays rare (Table 2).
    if (Deeper >= 0) {
      OS << "CONST CX = " << IfaceName(static_cast<unsigned>(Deeper))
         << ".C0 + " << R.range(1, 9) << ";\n";
      OS << "TYPE T1 = " << IfaceName(static_cast<unsigned>(Deeper))
         << ".T0;\n";
    }
    OS << "VAR v0: INTEGER;\n";
    if (Deeper >= 0)
      OS << "VAR v1: " << IfaceName(static_cast<unsigned>(Deeper))
         << ".T0;\n";
    OS << "END " << IfaceName(K) << ".\n";
    Files.addFile(IfaceName(K) + ".def", OS.str());

    if (Spec.WithImplementations) {
      std::ostringstream Impl;
      Impl << "IMPLEMENTATION MODULE " << IfaceName(K) << ";\n";
      for (unsigned D = 0; D < Decls / 2; ++D)
        Impl << "PROCEDURE P" << D << "(x: INTEGER): INTEGER;\n"
             << "BEGIN RETURN x * " << D + 2 << " + C0 END P" << D
             << ";\n";
      Impl << "BEGIN v0 := C0 END " << IfaceName(K) << ".\n";
      Files.addFile(IfaceName(K) + ".mod", Impl.str());
    }
  }
  Info.InterfaceCount = NumIfaces;
  Info.ImportDepth = NumIfaces ? static_cast<unsigned>(Layers.size()) : 0;

  //===--- Main module ------------------------------------------------------===//
  std::ostringstream OS;
  OS << "MODULE " << Spec.Name << ";\n";
  if (!AtLevel.empty() && !AtLevel[0].empty()) {
    OS << "IMPORT ";
    for (size_t I = 0; I < AtLevel[0].size(); ++I)
      OS << (I ? ", " : "") << IfaceName(AtLevel[0][I]);
    OS << ";\n";
    // FROM-import a constant from the first direct interface.
    OS << "FROM " << IfaceName(AtLevel[0][0]) << " IMPORT C0;\n";
  }

  OS << "CONST\n";
  for (unsigned C = 0; C < Spec.NumGlobalConsts; ++C)
    OS << "  K" << C << " = " << R.range(1, 999) << ";\n";
  OS << "TYPE\n"
     << "  Rec = RECORD x, y: INTEGER END;\n"
     << "  Vec = ARRAY [0..15] OF INTEGER;\n";
  for (unsigned T = 2; T < std::max(2u, Spec.NumTypes); ++T)
    OS << "  T" << T << " = [0.." << R.range(7, 63) << "];\n";
  OS << "VAR\n";
  for (unsigned V = 0; V < Spec.NumGlobalVars; ++V)
    OS << "  g" << V << ": INTEGER;\n";
  OS << "  grec: Rec;\n  gvec: Vec;\n";

  // Per-procedure statement budgets: most around the mean, a long tail of
  // much longer procedures ("long procedures before short ones").
  std::vector<unsigned> Budgets;
  for (unsigned P = 0; P < Spec.NumProcedures; ++P) {
    if (Spec.BestCase) {
      Budgets.push_back(Spec.MeanProcStmts);
      continue;
    }
    unsigned B = std::max<unsigned>(
        2, static_cast<unsigned>(Spec.MeanProcStmts * 0.4) +
               R.range(0, Spec.MeanProcStmts));
    if (R.chance(8))
      B *= R.range(3, 5); // the long tail
    if (P == 0 && Spec.DominantProcFactor > 1)
      B *= Spec.DominantProcFactor;
    Budgets.push_back(B);
  }

  auto EmitStmt = [&](std::ostringstream &Body, unsigned ProcIndex,
                      const char *Indent) {
    unsigned MaxKind = Spec.BestCase ? 6 : 9;
    switch (R.range(0, MaxKind)) {
    case 0:
      Body << Indent << "t := (a * " << R.range(2, 9) << " + b) MOD "
           << R.range(5, 17) << ";\n";
      break;
    case 1:
      Body << Indent << "FOR i := 0 TO " << R.range(3, 15)
           << " DO acc := acc + i * t END;\n";
      break;
    case 2:
      Body << Indent << "IF acc > " << R.range(10, 99) << " THEN acc := acc - "
           << R.range(1, 9) << " ELSE acc := acc + 1 END;\n";
      break;
    case 3:
      Body << Indent << "WHILE t > 0 DO t := t DIV 2; INC(acc) END;\n";
      break;
    case 4:
      Body << Indent << "v[" << R.range(0, 15) << "] := acc; t := t + v["
           << R.range(0, 15) << "];\n";
      break;
    case 5:
      Body << Indent << "WITH r DO x := acc; y := t END; acc := acc + r.x;\n";
      break;
    case 6:
      Body << Indent << "CASE t MOD 4 OF 0: acc := acc + 1 | 1, 2: acc := "
                        "acc + 2 ELSE acc := acc - 1 END;\n";
      break;
    case 7: // outer-scope references (module globals and constants)
      if (R.chance(12)) {
        // A global declared *after* the procedures (see below): probing
        // the incomplete module scope misses, so the lookup blocks and
        // succeeds only once the table completes.
        Body << Indent << "acc := acc + late"
             << (R.chance(50) ? "A" : "B") << ";\n";
      } else {
        Body << Indent << "acc := acc + g"
             << R.range(0, Spec.NumGlobalVars - 1) << " + K"
             << R.range(0, Spec.NumGlobalConsts - 1) << ";\n";
      }
      break;
    case 8: // qualified reference into a *directly* imported interface
      if (!AtLevel.empty() && !AtLevel[0].empty()) {
        unsigned K = AtLevel[0][R.range(
            0, static_cast<unsigned>(AtLevel[0].size()) - 1)];
        Body << Indent << "acc := acc + " << IfaceName(K) << ".C"
             << R.range(0, (std::max(2u, Spec.InterfaceDecls) + 1) / 2 - 1)
             << ";\n";
      } else {
        Body << Indent << "acc := acc + 1;\n";
      }
      break;
    case 9: // call an earlier procedure of this module
      if (ProcIndex > 0)
        Body << Indent << "acc := acc + P" << R.range(0, ProcIndex - 1)
             << "(t, acc);\n";
      else
        Body << Indent << "acc := acc * 2;\n";
      break;
    }
  };

  for (unsigned P = 0; P < Spec.NumProcedures; ++P) {
    OS << "PROCEDURE P" << P << "(a, b: INTEGER): INTEGER;\n"
       << "VAR i, t, acc: INTEGER; v: Vec; r: Rec;\n";
    if (!AtLevel.empty() && !AtLevel[0].empty() && R.chance(60)) {
      // A qualified *type* reference exercises qualified lookup during
      // declaration analysis, when interfaces are most likely incomplete.
      unsigned K = AtLevel[0][R.range(
          0, static_cast<unsigned>(AtLevel[0].size()) - 1)];
      OS << "  q: " << IfaceName(K) << ".T0;\n";
    }
    bool Nested = !Spec.BestCase && Spec.NestedProcEvery != 0 &&
                  P % Spec.NestedProcEvery == Spec.NestedProcEvery - 1;
    if (Nested) {
      OS << "  PROCEDURE Inner(k: INTEGER): INTEGER;\n"
         << "  BEGIN RETURN k * 2 + a END Inner;\n";
    }
    OS << "BEGIN\n  acc := 0; t := b;\n";
    // A qualified *type* use exercises qualified lookups during
    // declaration analysis, where interfaces are most likely incomplete.
    for (unsigned S = 0; S < Budgets[P]; ++S)
      EmitStmt(OS, P, "  ");
    if (Nested)
      OS << "  acc := acc + Inner(t);\n";
    OS << "  RETURN acc + t\nEND P" << P << ";\n";
  }

  // Declaration sections may repeat in any order; globals declared
  // *after* the procedures are what statement analyzers can only find
  // after a DKY blockage on the (still incomplete) module scope — the
  // "After DKY" rows of the paper's Table 2.
  if (!Spec.BestCase)
    OS << "VAR lateA, lateB: INTEGER;\n";

  OS << "BEGIN\n";
  unsigned Calls = std::min(Spec.NumProcedures, 8u);
  for (unsigned C = 0; C < Calls; ++C)
    OS << "  g" << C % std::max(1u, Spec.NumGlobalVars) << " := P"
       << (Spec.NumProcedures - 1 - C) << "(" << C + 1 << ", " << C + 2
       << ");\n";
  OS << "  WriteInt(g0, 0); WriteLn\nEND " << Spec.Name << ".\n";

  std::string Text = OS.str();
  Info.ModuleBytes = Text.size();
  Files.addFile(Spec.Name + ".mod", std::move(Text));
  return Info;
}

GeneratedProject WorkloadGenerator::generateProject(const ProjectSpec &Spec) {
  Rng R(Spec.Seed);
  GeneratedProject Info;
  auto SharedName = [&](unsigned K) {
    return Spec.Name + "Shared" + std::to_string(K);
  };
  auto ModName = [&](unsigned J) {
    return Spec.Name + "M" + std::to_string(J);
  };
  unsigned Decls = std::max(2u, Spec.InterfaceDecls);
  unsigned Procs = std::max(1u, Spec.ProcsPerModule);

  //===--- Shared interfaces (imported by every library module) -----------===//
  for (unsigned K = 0; K < Spec.SharedInterfaces; ++K) {
    std::ostringstream Def;
    Def << "DEFINITION MODULE " << SharedName(K) << ";\n";
    Def << "CONST\n";
    for (unsigned D = 0; D < (Decls + 1) / 2; ++D)
      Def << "  C" << D << " = " << R.range(1, 97) << ";\n";
    for (unsigned D = 0; D < Decls / 2; ++D)
      Def << "PROCEDURE F" << D << "(x: INTEGER): INTEGER;\n";
    Def << "VAR v0: INTEGER;\n";
    Def << "END " << SharedName(K) << ".\n";
    Files.addFile(SharedName(K) + ".def", Def.str());

    std::ostringstream Impl;
    Impl << "IMPLEMENTATION MODULE " << SharedName(K) << ";\n";
    for (unsigned D = 0; D < Decls / 2; ++D)
      Impl << "PROCEDURE F" << D << "(x: INTEGER): INTEGER;\n"
           << "BEGIN RETURN x * " << D + 2 << " + C0 END F" << D << ";\n";
    Impl << "BEGIN v0 := C0 END " << SharedName(K) << ".\n";
    Files.addFile(SharedName(K) + ".mod", Impl.str());
    Info.Modules.push_back(SharedName(K));
  }

  //===--- The module chain ------------------------------------------------===//
  for (unsigned J = 0; J < Spec.NumModules; ++J) {
    std::ostringstream Def;
    Def << "DEFINITION MODULE " << ModName(J) << ";\n";
    if (!Spec.DefImportInterfaces.empty()) {
      // Def-to-def edges: importers of this interface pull the whole set
      // into their closure without binding it themselves.
      Def << "IMPORT ";
      for (size_t K = 0; K < Spec.DefImportInterfaces.size(); ++K)
        Def << (K ? ", " : "") << Spec.DefImportInterfaces[K];
      Def << ";\n";
    }
    Def << "PROCEDURE Work(n: INTEGER): INTEGER;\n"
        << "END " << ModName(J) << ".\n";
    Files.addFile(ModName(J) + ".def", Def.str());

    std::ostringstream Impl;
    Impl << "IMPLEMENTATION MODULE " << ModName(J) << ";\n";
    if (Spec.SharedInterfaces) {
      Impl << "IMPORT ";
      for (unsigned K = 0; K < Spec.SharedInterfaces; ++K)
        Impl << (K ? ", " : "") << SharedName(K);
      Impl << ";\n";
    }
    if (!Spec.ImportInterfaces.empty()) {
      Impl << "IMPORT ";
      for (size_t K = 0; K < Spec.ImportInterfaces.size(); ++K)
        Impl << (K ? ", " : "") << Spec.ImportInterfaces[K];
      Impl << ";\n";
    }
    if (J > 0)
      Impl << "IMPORT " << ModName(J - 1) << ";\n";
    for (unsigned P = 0; P < Procs; ++P) {
      Impl << "PROCEDURE H" << P << "(a, b: INTEGER): INTEGER;\n"
           << "VAR i, t, acc: INTEGER;\nBEGIN\n  acc := 0; t := b;\n";
      unsigned Stmts = std::max(
          2u, static_cast<unsigned>(Spec.MeanProcStmts * 0.5) +
                  R.range(0, Spec.MeanProcStmts));
      for (unsigned S = 0; S < Stmts; ++S) {
        switch (R.range(0, 3)) {
        case 0:
          Impl << "  t := (a * " << R.range(2, 9) << " + acc) MOD "
               << R.range(5, 17) << ";\n";
          break;
        case 1:
          Impl << "  FOR i := 0 TO " << R.range(3, 9)
               << " DO acc := acc + i + t END;\n";
          break;
        case 2:
          Impl << "  WHILE t > 0 DO t := t DIV 2; INC(acc) END;\n";
          break;
        case 3:
          if (Spec.SharedInterfaces) {
            unsigned K = R.range(0, Spec.SharedInterfaces - 1);
            Impl << "  acc := acc + " << SharedName(K) << ".C"
                 << R.range(0, (Decls + 1) / 2 - 1) << ";\n";
          } else {
            Impl << "  acc := acc + 1;\n";
          }
          break;
        }
      }
      if (Spec.SharedInterfaces) {
        unsigned K = R.range(0, Spec.SharedInterfaces - 1);
        Impl << "  acc := acc + " << SharedName(K) << ".F0(a);\n";
      }
      if (!Spec.ImportInterfaces.empty()) {
        // Qualified reference into an external interface so the import is
        // load-bearing; C0 always exists (InterfaceDecls >= 2).
        unsigned K = R.range(
            0, static_cast<unsigned>(Spec.ImportInterfaces.size()) - 1);
        Impl << "  acc := acc + " << Spec.ImportInterfaces[K] << ".C0;\n";
      }
      Impl << "  RETURN acc + t\nEND H" << P << ";\n";
    }
    Impl << "PROCEDURE Work(n: INTEGER): INTEGER;\n"
         << "VAR r, i: INTEGER;\nBEGIN\n  r := 0;\n"
         << "  FOR i := 0 TO n DO r := r + H0(i, n) END;\n"
         << "  r := r + H" << Procs - 1 << "(n, 2);\n";
    if (J > 0)
      Impl << "  r := r + " << ModName(J - 1) << ".Work(n);\n";
    Impl << "  RETURN r\nEND Work;\n"
         << "END " << ModName(J) << ".\n";
    Files.addFile(ModName(J) + ".mod", Impl.str());
    Info.Modules.push_back(ModName(J));
  }

  //===--- The root program ------------------------------------------------===//
  Info.Root = Spec.Name + "Main";
  std::ostringstream Main;
  Main << "MODULE " << Info.Root << ";\n";
  if (Spec.NumModules)
    Main << "IMPORT " << ModName(Spec.NumModules - 1) << ";\n";
  Main << "VAR r: INTEGER;\nBEGIN\n  r := 0;\n";
  if (Spec.NumModules)
    Main << "  r := " << ModName(Spec.NumModules - 1) << ".Work(4);\n";
  Main << "  WriteInt(r, 0); WriteLn\nEND " << Info.Root << ".\n";
  Files.addFile(Info.Root + ".mod", Main.str());
  Info.Modules.push_back(Info.Root);
  Info.InterfaceCount = Spec.SharedInterfaces + Spec.NumModules;
  return Info;
}

std::string GeneratedRequestSet::manifestText() const {
  std::ostringstream OS;
  OS << "# m2c build-request manifest: one request per line, roots "
        "space-separated.\n";
  for (const std::vector<std::string> &Roots : Requests) {
    for (size_t I = 0; I < Roots.size(); ++I)
      OS << (I ? " " : "") << Roots[I];
    OS << "\n";
  }
  return OS.str();
}

GeneratedRequestSet
WorkloadGenerator::generateRequestSet(const RequestSetSpec &Spec) {
  Rng R(Spec.Seed);
  GeneratedRequestSet Info;
  unsigned Decls = std::max(2u, Spec.InterfaceDecls);

  //===--- The common interface pool (.def only) ---------------------------===//
  // Definition-only interfaces: every project imports all of them, so
  // they overlap in front-end work (lex/parse/analyze of the interface)
  // without forcing the projects to share implementation modules — the
  // service's compile sets stay disjoint and requests run concurrently.
  for (unsigned K = 0; K < Spec.CommonInterfaces; ++K) {
    std::string Name = Spec.Name + "Common" + std::to_string(K);
    std::ostringstream Def;
    Def << "DEFINITION MODULE " << Name << ";\n";
    Def << "CONST\n";
    for (unsigned D = 0; D < (Decls + 1) / 2; ++D)
      Def << "  C" << D << " = " << R.range(1, 97) << ";\n";
    for (unsigned D = 0; D < Decls / 2; ++D)
      Def << "PROCEDURE F" << D << "(x: INTEGER): INTEGER;\n";
    Def << "VAR v0: INTEGER;\n";
    Def << "END " << Name << ".\n";
    Files.addFile(Name + ".def", Def.str());
    Info.CommonInterfaceNames.push_back(std::move(Name));
  }
  Info.InterfaceCount = Spec.CommonInterfaces;

  //===--- The projects ----------------------------------------------------===//
  for (unsigned P = 0; P < Spec.NumProjects; ++P) {
    ProjectSpec Proj;
    Proj.Name = Spec.Name + "P" + std::to_string(P);
    Proj.NumModules = Spec.ModulesPerProject;
    Proj.SharedInterfaces = Spec.ProjectInterfaces;
    Proj.ProcsPerModule = Spec.ProcsPerModule;
    Proj.MeanProcStmts = Spec.MeanProcStmts;
    Proj.InterfaceDecls = Spec.InterfaceDecls;
    Proj.Seed = Spec.Seed + 101 * (P + 1);
    if (Spec.CommonImportsViaDefs)
      Proj.DefImportInterfaces = Info.CommonInterfaceNames;
    else
      Proj.ImportInterfaces = Info.CommonInterfaceNames;
    GeneratedProject Gen = generateProject(Proj);
    Info.InterfaceCount += Gen.InterfaceCount;
    Info.Projects.push_back(std::move(Gen));
  }

  //===--- The request list (round-robin arrival) --------------------------===//
  for (unsigned Rep = 0; Rep < Spec.RequestsPerProject; ++Rep)
    for (const GeneratedProject &Proj : Info.Projects)
      Info.Requests.push_back({Proj.Root});
  return Info;
}

GeneratedModule WorkloadGenerator::generateCompute(const ComputeSpec &Spec) {
  Rng R(Spec.Seed);
  GeneratedModule Info;
  Info.Name = Spec.Name;
  const unsigned Leaves = std::max(1u, Spec.LeafProcs);
  const unsigned Fan = std::max(1u, Spec.Fan);

  std::ostringstream OS;
  OS << "MODULE " << Spec.Name << ";\n"
     << "VAR total, k: INTEGER;\n";

  //===--- Leaf procedures (the hot ones) ----------------------------------===//
  // The inner-loop bodies are all local-variable integer arithmetic —
  // LoadLocal/LoadLocal/binop/StoreLocal sequences — so tier 1 fuses
  // them, and the loop itself supplies the backedges that drive
  // promotion.  Everything stays in INTEGER with MOD bounds, so the
  // result (and therefore the program output) is tier-independent.
  for (unsigned L = 0; L < Leaves; ++L) {
    OS << "PROCEDURE L" << L << "(a, b: INTEGER): INTEGER;\n"
       << "VAR i, t, acc: INTEGER;\nBEGIN\n"
       << "  acc := a MOD " << R.range(7, 31) << "; t := b;\n"
       << "  FOR i := 0 TO " << Spec.InnerIters << " DO\n";
    switch (R.range(0, 2)) {
    case 0:
      OS << "    acc := acc + i; t := t + acc\n";
      break;
    case 1:
      OS << "    acc := acc + i + t; t := t + " << R.range(1, 5) << "\n";
      break;
    case 2:
      OS << "    t := t + i; acc := acc + t; acc := acc - i\n";
      break;
    }
    OS << "  END;\n"
       << "  WHILE t > " << R.range(1, 9)
       << " DO t := t DIV 2; INC(acc) END;\n"
       << "  RETURN acc + t\nEND L" << L << ";\n";
  }

  //===--- Chain levels, bottom-up -----------------------------------------===//
  // Level Depth-1 calls leaves; level d calls level d+1; the module body
  // calls level 0.  Bottom-up emission keeps declare-before-use.  MOD
  // lives only here (it is not fusable and bounds the values), leaving
  // the leaves' loops maximally fusable.
  auto Proc = [](unsigned Level, unsigned K) {
    return "P" + std::to_string(Level) + "_" + std::to_string(K);
  };
  for (unsigned D = Spec.Depth; D-- > 0;) {
    for (unsigned K = 0; K < Fan; ++K) {
      OS << "PROCEDURE " << Proc(D, K) << "(a, b: INTEGER): INTEGER;\n"
         << "VAR j, r: INTEGER;\nBEGIN\n"
         << "  r := a MOD 1009;\n"
         << "  FOR j := 0 TO " << Fan - 1 << " DO\n";
      if (D + 1 < Spec.Depth)
        OS << "    r := r + " << Proc(D + 1, R.range(0, Fan - 1))
           << "(r + j, b)\n";
      else
        OS << "    r := r + L" << R.range(0, Leaves - 1) << "(r + j, b)\n";
      OS << "  END;\n"
         << "  RETURN r MOD 100003\nEND " << Proc(D, K) << ";\n";
    }
  }

  //===--- The driver loop --------------------------------------------------===//
  OS << "BEGIN\n  total := 0;\n"
     << "  FOR k := 1 TO " << Spec.OuterIters << " DO\n";
  if (Spec.Depth)
    OS << "    total := (total + " << Proc(0, R.range(0, Fan - 1))
       << "(k, k + 1)) MOD 100003\n";
  else
    OS << "    total := (total + L" << R.range(0, Leaves - 1)
       << "(k, k + 1)) MOD 100003\n";
  OS << "  END;\n"
     << "  WriteInt(total, 0); WriteLn\nEND " << Spec.Name << ".\n";

  std::string Text = OS.str();
  Info.ModuleBytes = Text.size();
  Info.ProcedureCount = Leaves + Spec.Depth * Fan;
  Files.addFile(Spec.Name + ".mod", Text);
  return Info;
}

GeneratedAdversarial
WorkloadGenerator::generateAdversarial(const AdversarialSpec &Spec) {
  Rng R(Spec.Seed);
  GeneratedAdversarial Out;
  Out.Root = Spec.Name;
  unsigned Scale = std::max(1u, Spec.Scale);

  // Text-mutating kinds start from a real generated module so the damage
  // profile matches partial writes of real sources.
  auto BaseModule = [&] {
    ModuleSpec Base;
    Base.Name = Spec.Name;
    Base.NumProcedures = 2 + Scale;
    Base.MeanProcStmts = 6 + Scale;
    Base.ImportedInterfaces = 2;
    Base.ImportDepth = 1;
    Base.InterfaceDecls = 8;
    Base.Seed = Spec.Seed;
    generate(Base);
    return std::string(Files.lookup(Spec.Name + ".mod")->Text);
  };

  switch (Spec.Kind) {
  case AdversarialKind::TruncatedEof: {
    // Cut mid-token-stream: everything from 40–85% in is gone, so the
    // parser meets EOF inside nested blocks; the trailing "END <name>."
    // is always lost.
    std::string Text = BaseModule();
    size_t Cut = Text.size() * R.range(40, 85) / 100;
    Files.addFile(Spec.Name + ".mod", Text.substr(0, Cut));
    Out.Expect = AdversarialExpectation::MustFail;
    break;
  }
  case AdversarialKind::MidEditDrop: {
    // A half-applied edit: an interior span vanished but the file still
    // has its head and tail.  Almost always malformed, but a lucky span
    // can be a whole procedure — only clean termination is promised.
    std::string Text = BaseModule();
    size_t From = Text.size() * R.range(25, 55) / 100;
    size_t Len = Text.size() * R.range(10, 30) / 100;
    Files.addFile(Spec.Name + ".mod",
                  Text.substr(0, From) + Text.substr(From + Len));
    Out.Expect = AdversarialExpectation::Either;
    break;
  }
  case AdversarialKind::UnbalancedBlocks: {
    // Blank every block terminator past the midpoint (spaces, so token
    // positions elsewhere survive): nesting never closes, and unlike
    // TruncatedEof the parser keeps finding tokens after the damage.
    std::string Text = BaseModule();
    for (size_t Pos = Text.size() / 2;
         (Pos = Text.find("END", Pos)) != std::string::npos;)
      Text.replace(Pos, 3, "   ");
    Files.addFile(Spec.Name + ".mod", Text);
    Out.Expect = AdversarialExpectation::MustFail;
    break;
  }
  case AdversarialKind::DuplicateImports: {
    // The same interface imported over and over, in both clauses.
    std::string If = Spec.Name + "Dup";
    Files.addFile(If + ".def", "DEFINITION MODULE " + If +
                                   ";\nCONST C0 = 7;\nEND " + If + ".\n");
    std::ostringstream OS;
    OS << "MODULE " << Spec.Name << ";\n";
    for (unsigned I = 0; I < Scale; ++I)
      OS << "IMPORT " << If << ", " << If << ";\n";
    OS << "FROM " << If << " IMPORT C0;\n";
    OS << "VAR x: INTEGER;\nBEGIN x := " << If << ".C0 + C0\nEND "
       << Spec.Name << ".\n";
    Files.addFile(Spec.Name + ".mod", OS.str());
    Out.Expect = AdversarialExpectation::Either;
    break;
  }
  case AdversarialKind::CyclicImports: {
    // Interfaces importing in a ring.  Interface analysis would deadlock
    // on this; BuildGraph::interfaceCycle() must refuse it cleanly.
    unsigned Len = std::max(2u, Scale);
    auto Iface = [&](unsigned I) {
      return Spec.Name + "Cyc" + std::to_string(I % Len);
    };
    for (unsigned I = 0; I < Len; ++I)
      Files.addFile(Iface(I) + ".def",
                    "DEFINITION MODULE " + Iface(I) + ";\nIMPORT " +
                        Iface(I + 1) + ";\nCONST C0 = " +
                        std::to_string(I + 1) + ";\nEND " + Iface(I) + ".\n");
    Files.addFile(Spec.Name + ".mod",
                  "MODULE " + Spec.Name + ";\nIMPORT " + Iface(0) +
                      ";\nVAR x: INTEGER;\nBEGIN x := 1\nEND " + Spec.Name +
                      ".\n");
    Out.Expect = AdversarialExpectation::MustFail;
    break;
  }
  case AdversarialKind::PathologicalDag: {
    // Scale layers of Scale interfaces; every node imports the *whole*
    // next layer, so closure sizes explode combinatorially while the
    // graph stays well-formed.
    auto Iface = [&](unsigned L, unsigned I) {
      return Spec.Name + "L" + std::to_string(L) + "I" + std::to_string(I);
    };
    for (unsigned L = 0; L < Scale; ++L)
      for (unsigned I = 0; I < Scale; ++I) {
        std::ostringstream OS;
        OS << "DEFINITION MODULE " << Iface(L, I) << ";\n";
        if (L + 1 < Scale) {
          OS << "IMPORT ";
          for (unsigned J = 0; J < Scale; ++J)
            OS << (J ? ", " : "") << Iface(L + 1, J);
          OS << ";\n";
        }
        OS << "CONST C0 = " << L * Scale + I + 1 << ";\n";
        if (L + 1 < Scale)
          OS << "CONST CX = " << Iface(L + 1, 0) << ".C0 + 1;\n";
        OS << "END " << Iface(L, I) << ".\n";
        Files.addFile(Iface(L, I) + ".def", OS.str());
      }
    std::ostringstream OS;
    OS << "MODULE " << Spec.Name << ";\nIMPORT ";
    for (unsigned I = 0; I < Scale; ++I)
      OS << (I ? ", " : "") << Iface(0, I);
    OS << ";\nVAR x: INTEGER;\nBEGIN\n  x := 0";
    for (unsigned I = 0; I < Scale; ++I)
      OS << " + " << Iface(0, I) << ".C0";
    OS << "\nEND " << Spec.Name << ".\n";
    Files.addFile(Spec.Name + ".mod", OS.str());
    Out.Expect = AdversarialExpectation::MustSucceed;
    break;
  }
  }
  return Out;
}

std::vector<ModuleSpec> WorkloadGenerator::paperSuite() {
  // Table 1 anchors: min / median / max of each attribute over the 37
  // programs.  Values between anchors interpolate geometrically, with
  // mild deterministic jitter so the suite isn't artificially smooth.
  constexpr unsigned N = 37;
  constexpr double BytesAnchor[3] = {2371, 13180, 336312};
  constexpr double ProcsAnchor[3] = {2, 16, 221};
  constexpr double IfacesAnchor[3] = {4, 17, 133};
  constexpr double DepthAnchor[3] = {1, 5, 12};

  auto Interp = [&](const double A[3], unsigned I) {
    double Mid = (N - 1) / 2.0;
    double T;
    double Lo, Hi;
    if (I <= Mid) {
      T = I / Mid;
      Lo = A[0];
      Hi = A[1];
    } else {
      T = (I - Mid) / Mid;
      Lo = A[1];
      Hi = A[2];
    }
    return Lo * std::pow(Hi / Lo, T);
  };

  std::vector<ModuleSpec> Suite;
  for (unsigned I = 0; I < N; ++I) {
    Rng R(1000 + I);
    double Jitter = (I == 0 || I == N / 2 || I == N - 1)
                        ? 1.0
                        : 0.9 + (R.Gen() % 21) / 100.0;
    ModuleSpec Spec;
    Spec.Name = "Suite" + std::to_string(I);
    Spec.Seed = 7 * I + 13;
    double TargetBytes = Interp(BytesAnchor, I) * Jitter;
    Spec.NumProcedures = std::max(
        2u, static_cast<unsigned>(std::lround(Interp(ProcsAnchor, I))));
    Spec.ImportedInterfaces = std::max(
        4u, static_cast<unsigned>(std::lround(Interp(IfacesAnchor, I))));
    Spec.ImportDepth = std::max(
        1u, static_cast<unsigned>(std::lround(Interp(DepthAnchor, I))));
    // Solve the per-procedure statement budget for the byte target:
    // bytes ~ base + procs * (heading ~95B + stmts * ~42B).
    double Base = 420 + 14.0 * Spec.NumGlobalVars;
    double PerProc = 95.0;
    double Budget =
        (TargetBytes - Base - PerProc * Spec.NumProcedures) /
        (48.0 * Spec.NumProcedures);
    Spec.MeanProcStmts =
        std::max(2u, static_cast<unsigned>(std::lround(Budget)));
    // The smallest programs get one dominant procedure (and the byte
    // budget is rebalanced so Table 1's sizes still hold).
    if (Spec.NumProcedures <= 5) {
      Spec.DominantProcFactor = 5;
      double Share =
          (Spec.NumProcedures + 4.0) / Spec.NumProcedures; // budget scale
      Spec.MeanProcStmts = std::max(
          2u, static_cast<unsigned>(std::lround(Budget / Share)));
    }
    Spec.NumGlobalVars = 4 + Spec.NumProcedures / 8;
    Spec.NumGlobalConsts = 4 + Spec.NumProcedures / 16;
    Suite.push_back(std::move(Spec));
  }
  // One mid-size program is a classic single-procedure utility: almost
  // all of its work is one long sequential stream, which caps its
  // speedup near 2 however many processors are available — the paper's
  // minimum-speedup program (Table 3 Min row).
  Suite[4].NumProcedures = 2;
  Suite[4].DominantProcFactor = 16;
  Suite[4].MeanProcStmts = 24;
  Suite[4].NestedProcEvery = 0;
  return Suite;
}

ModuleSpec WorkloadGenerator::synthSpec() {
  ModuleSpec Spec;
  Spec.Name = "Synth";
  Spec.BestCase = true;
  Spec.NumProcedures = 64;
  Spec.MeanProcStmts = 60;
  Spec.NumGlobalVars = 8;
  Spec.NumGlobalConsts = 4;
  Spec.ImportedInterfaces = 0;
  Spec.NestedProcEvery = 0;
  Spec.Seed = 424242;
  return Spec;
}
