//===--- WorkloadGenerator.h - Synthetic Modula-2+ programs -----*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper evaluated on 37 programs sampled from the DEC SRC Modula-2+
/// library — proprietary sources that are not available.  This generator
/// produces well-formed synthetic modules with the same *gross structure*
/// (module size, procedure count and length distribution, imported
/// interface count, import nesting depth; Table 1), which is what the
/// concurrent compiler's behaviour depends on.  Generation is
/// deterministic in the seed.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_WORKLOAD_WORKLOADGENERATOR_H
#define M2C_WORKLOAD_WORKLOADGENERATOR_H

#include "support/VirtualFileSystem.h"

#include <cstdint>
#include <string>
#include <vector>

namespace m2c::workload {

/// Parameters of one generated module (plus its interface closure).
struct ModuleSpec {
  std::string Name;
  unsigned NumProcedures = 16;
  /// Mean statements per procedure body; individual procedures vary
  /// around it with a long tail (some procedures much longer).
  unsigned MeanProcStmts = 12;
  unsigned NumGlobalVars = 8;
  unsigned NumGlobalConsts = 6;
  unsigned NumTypes = 3;
  /// Total interfaces imported directly or indirectly.
  unsigned ImportedInterfaces = 4;
  /// Maximum import nesting depth of the interface DAG.
  unsigned ImportDepth = 2;
  /// Declarations per generated interface.
  unsigned InterfaceDecls = 40;
  /// Every Nth procedure receives a nested procedure (0 = none).
  unsigned NestedProcEvery = 6;
  /// When nonzero, the first procedure's statement budget is multiplied
  /// by this factor.  Small real programs are often one dominant
  /// procedure plus helpers, which caps their speedup with a long
  /// sequential stream (the paper's minimum-speedup programs).
  unsigned DominantProcFactor = 0;
  uint32_t Seed = 1;
  /// Best-case mode (the paper's Synth.mod): no imports, no references
  /// outside the procedure's own scope, equal-sized procedures — ample
  /// parallel work and no DKY blockage, for near-linear speedup.
  bool BestCase = false;
  /// Also emit an implementation module for every generated interface,
  /// so the whole program can be compiled module by module, linked and
  /// executed on the MCode machine.
  bool WithImplementations = false;
};

/// Description of one generated module, reported for Table 1.
struct GeneratedModule {
  std::string Name;
  size_t ModuleBytes = 0;     ///< Size of the .mod file.
  size_t InterfaceCount = 0;  ///< Interfaces generated (direct+indirect).
  unsigned ImportDepth = 0;
  unsigned ProcedureCount = 0;
};

/// Parameters of one generated multi-module project: a chain of library
/// modules (each with its own interface) over a set of shared interfaces
/// that *every* module imports, plus a root program module.  The shared
/// interfaces are what make a build session pay off: a per-module
/// compile loop re-parses each of them once per module, a session parses
/// each exactly once.
struct ProjectSpec {
  std::string Name = "Proj";
  /// Library modules (each a .def + .mod pair), chained: module j
  /// imports module j-1's interface.
  unsigned NumModules = 6;
  /// Interfaces (with implementations) imported by every library module.
  unsigned SharedInterfaces = 3;
  unsigned ProcsPerModule = 8;
  unsigned MeanProcStmts = 10;
  unsigned InterfaceDecls = 16;
  uint32_t Seed = 11;
  /// Externally provided interfaces (generated elsewhere, by name) that
  /// every library module of this project additionally imports.  This is
  /// how generateRequestSet() makes separate projects overlap: they all
  /// import the same external interface set, so a build service parses
  /// those interfaces once for the whole request fleet.
  std::vector<std::string> ImportInterfaces;
  /// Externally provided interfaces imported by every chain module's
  /// *interface* (.def) instead of its implementation.  The interfaces
  /// end up in exactly the same request closure, but reach it through
  /// def-to-def edges: an implementation binds only its few direct
  /// imports while the transitive interface analysis still covers the
  /// full set.  This separates "how much a compile binds" from "how much
  /// an interface pool (re)analyzes" — the knob the farm bench uses to
  /// size rotation cost independently of per-request compile cost.
  std::vector<std::string> DefImportInterfaces;
};

/// What generateProject() produced.
struct GeneratedProject {
  std::string Root; ///< The program module; build sessions start here.
  /// Every implementation module, imports first (shared libraries, the
  /// module chain, then the root) — the per-module compile loop's order.
  std::vector<std::string> Modules;
  size_t InterfaceCount = 0; ///< Distinct .def files generated.
};

/// Parameters of a generated *request set*: several projects that all
/// import one common pool of interfaces, plus a manifest of build
/// requests over them.  This is the shared workload of the build-service
/// bench, the service tests and `m2c_cli -serve`: requests overlap in
/// interfaces (the service's interface pool pays off) and repeat
/// (the artifact tiers pay off), deterministically in the seed.
struct RequestSetSpec {
  std::string Name = "Req";
  unsigned NumProjects = 4;
  /// Interfaces imported by every module of *every* project (.def only —
  /// no implementations, so projects overlap in parsing, not codegen).
  unsigned CommonInterfaces = 4;
  /// Route the common imports through each project's chain-module .defs
  /// (see ProjectSpec::DefImportInterfaces) instead of every chain .mod.
  /// Same interface closure per request, far fewer direct binds per
  /// compiled module.
  bool CommonImportsViaDefs = false;
  /// Per-project chained modules (see ProjectSpec::NumModules).
  unsigned ModulesPerProject = 4;
  /// Per-project interfaces imported by that project's modules only.
  unsigned ProjectInterfaces = 2;
  unsigned ProcsPerModule = 6;
  unsigned MeanProcStmts = 8;
  unsigned InterfaceDecls = 12;
  /// How many times each project appears in the request list.  Requests
  /// are interleaved round-robin (P0 P1 .. P0 P1 ..) so repeats arrive
  /// after every project ran once — the warm-tier case.
  unsigned RequestsPerProject = 2;
  uint32_t Seed = 17;
};

/// Parameters of one generated *compute-heavy* program: a single runnable
/// module whose execution time dwarfs its compile time — deep call chain,
/// hot integer inner loops, deterministic WriteInt output.  This is the
/// VM-tiering workload: the inner loops lower to the
/// load/load/binop/store shapes the tier-1 translator fuses, the leaf
/// procedures cross the promotion thresholds within the first outer
/// iterations, and the output depends only on the arithmetic, so it is
/// byte-identical across execution tiers.
struct ComputeSpec {
  std::string Name = "Compute";
  /// Call-chain depth between the module body and the leaf procedures.
  unsigned Depth = 3;
  /// Calls each chain level makes into the level below.
  unsigned Fan = 2;
  /// Leaf procedures (the hot ones).
  unsigned LeafProcs = 6;
  /// Iterations of each leaf's inner loop.
  unsigned InnerIters = 64;
  /// Iterations of the module body's driver loop.
  unsigned OuterIters = 50;
  uint32_t Seed = 7;
};

/// What generateRequestSet() produced.
struct GeneratedRequestSet {
  /// One entry per request: the root modules to build (arrival order).
  std::vector<std::vector<std::string>> Requests;
  std::vector<GeneratedProject> Projects;
  /// Names of the interfaces every project imports.
  std::vector<std::string> CommonInterfaceNames;
  size_t InterfaceCount = 0; ///< Distinct .def files generated in total.
  /// The manifest consumed by `m2c_cli -serve`: one request per line,
  /// roots space-separated, '#' comments and blank lines ignored.
  std::string manifestText() const;
};

/// The shapes of hostile input real traffic contains at its worst
/// moments: torn reads, half-applied edits, pathological graphs.  The
/// contract under all of them is the same — the compiler terminates with
/// clean diagnostics (or a clean success), never hangs, crashes or
/// corrupts shared state.
enum class AdversarialKind {
  TruncatedEof,     ///< Well-formed module cut mid-token-stream.
  MidEditDrop,      ///< An interior span deleted, as in a half-applied edit.
  UnbalancedBlocks, ///< Block terminators blanked past the midpoint.
  DuplicateImports, ///< The same interface imported repeatedly.
  CyclicImports,    ///< Interfaces whose .def files import in a cycle.
  PathologicalDag,  ///< Dense layered DAG: each node imports a whole layer.
};

struct AdversarialSpec {
  std::string Name = "Adv";
  AdversarialKind Kind = AdversarialKind::TruncatedEof;
  uint32_t Seed = 23;
  /// Size knob: nesting depth, DAG layer width, cycle length.
  unsigned Scale = 3;
};

/// What a build of an adversarial root is allowed to do.  Byte-identity
/// and exactly-one-reply hold regardless; this only classifies the
/// expected Success bit.
enum class AdversarialExpectation {
  MustFail,    ///< The input is definitely broken.
  MustSucceed, ///< Hostile in shape but well-formed.
  Either,      ///< Outcome unspecified; only clean termination is required.
};

struct GeneratedAdversarial {
  std::string Root; ///< Root module name to build.
  AdversarialExpectation Expect = AdversarialExpectation::Either;
};

/// Generates synthetic compiler input into a VirtualFileSystem.
class WorkloadGenerator {
public:
  explicit WorkloadGenerator(VirtualFileSystem &Files) : Files(Files) {}

  /// Generates Spec.Name.mod plus its interface closure; returns the
  /// Table 1 attributes of what was generated.
  GeneratedModule generate(const ModuleSpec &Spec);

  /// Generates a linkable, runnable multi-module project (see
  /// ProjectSpec).  Deterministic in the seed; the root module writes a
  /// single integer, so linked output is comparable across build modes.
  GeneratedProject generateProject(const ProjectSpec &Spec);

  /// Generates overlapping projects and a request manifest over them
  /// (see RequestSetSpec).  Deterministic in the seed.
  GeneratedRequestSet generateRequestSet(const RequestSetSpec &Spec);

  /// Generates Spec.Name.mod, a self-contained compute-heavy program
  /// (see ComputeSpec).  Deterministic in the seed, output deterministic
  /// in the spec — the VM-tiering benchmark and test workload.
  GeneratedModule generateCompute(const ComputeSpec &Spec);

  /// Generates one adversarial root (see AdversarialKind), deterministic
  /// in the seed.  Text-mutating kinds generate a well-formed module
  /// first and then damage its bytes, so the damage is representative of
  /// real partial writes rather than synthetic garbage.
  GeneratedAdversarial generateAdversarial(const AdversarialSpec &Spec);

  /// The canned 37-program suite whose attribute distributions match the
  /// paper's Table 1 (min / median / max anchors, geometric in between).
  static std::vector<ModuleSpec> paperSuite();

  /// The best-possible-speedup synthetic module (paper Figure 2).
  static ModuleSpec synthSpec();

private:
  VirtualFileSystem &Files;
};

} // namespace m2c::workload

#endif // M2C_WORKLOAD_WORKLOADGENERATOR_H
