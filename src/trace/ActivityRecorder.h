//===--- ActivityRecorder.h - WatchTool-style activity traces ---*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's WatchTool views (Figures 4 and 7): processor
/// activity as a function of time, with bars keyed by the kind of
/// compiler task executing.  Executors feed intervals through the
/// sched::ActivitySink interface; renderAscii() draws the terminal
/// equivalent of the figures.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_TRACE_ACTIVITYRECORDER_H
#define M2C_TRACE_ACTIVITYRECORDER_H

#include "sched/ActivitySink.h"

#include <mutex>
#include <string>
#include <vector>

namespace m2c::trace {

/// One recorded execution interval.
struct ActivityInterval {
  unsigned Proc = 0;
  sched::TaskClass Class = sched::TaskClass::Lexor;
  uint64_t Start = 0;
  uint64_t End = 0;
};

/// Thread-safe interval collector + ASCII renderer.
class ActivityRecorder final : public sched::ActivitySink {
public:
  void record(unsigned Proc, const sched::Task &T, uint64_t StartUnits,
              uint64_t EndUnits) override;

  /// All intervals recorded so far (snapshot).
  std::vector<ActivityInterval> intervals() const;

  void clear();

  /// Renders one row per processor, \p Width columns spanning the whole
  /// recorded time range; each cell shows the dominant task class in its
  /// time bucket ('.' = idle).  Matches the reading of Figure 7: lexing
  /// on the left, parser/declaration analysis in the middle, statement
  /// analysis/code generation on the right.
  std::string renderAscii(unsigned Width = 100) const;

  /// The one-letter display code for a task class.
  static char classGlyph(sched::TaskClass Class);

  /// Legend line explaining the glyphs.
  static std::string legend();

  /// Fraction of processor-time busy over [0, makespan] for \p Procs
  /// processors.
  double utilization(unsigned Procs) const;

  /// Latest interval end time.
  uint64_t makespan() const;

private:
  mutable std::mutex Mutex;
  std::vector<ActivityInterval> Intervals;
};

} // namespace m2c::trace

#endif // M2C_TRACE_ACTIVITYRECORDER_H
