//===--- ActivityRecorder.cpp - WatchTool-style activity traces -----------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "trace/ActivityRecorder.h"

#include <algorithm>
#include <array>
#include <sstream>

using namespace m2c;
using namespace m2c::trace;

void ActivityRecorder::record(unsigned Proc, const sched::Task &T,
                              uint64_t StartUnits, uint64_t EndUnits) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Intervals.push_back(
      ActivityInterval{Proc, T.taskClass(), StartUnits, EndUnits});
}

std::vector<ActivityInterval> ActivityRecorder::intervals() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Intervals;
}

void ActivityRecorder::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Intervals.clear();
}

char ActivityRecorder::classGlyph(sched::TaskClass Class) {
  switch (Class) {
  case sched::TaskClass::Lexor:
    return 'L';
  case sched::TaskClass::Splitter:
    return 'S';
  case sched::TaskClass::Importer:
    return 'I';
  case sched::TaskClass::DefModParserDecl:
    return 'D';
  case sched::TaskClass::ModuleParserDecl:
    return 'M';
  case sched::TaskClass::ProcParserDecl:
    return 'p';
  case sched::TaskClass::LongStmtCodeGen:
    return 'C';
  case sched::TaskClass::ShortStmtCodeGen:
    return 'c';
  case sched::TaskClass::Merge:
    return 'm';
  case sched::TaskClass::TierPromote:
    return 'j';
  }
  return '?';
}

std::string ActivityRecorder::legend() {
  return "L=lex S=split I=import D=defmod-parse M=module-parse "
         "p=proc-parse C=codegen(long) c=codegen(short) m=merge "
         "j=tier-promote .=idle";
}

uint64_t ActivityRecorder::makespan() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  uint64_t End = 0;
  for (const ActivityInterval &I : Intervals)
    End = std::max(End, I.End);
  return End;
}

double ActivityRecorder::utilization(unsigned Procs) const {
  uint64_t Span = makespan();
  if (Span == 0 || Procs == 0)
    return 0.0;
  std::lock_guard<std::mutex> Lock(Mutex);
  uint64_t Busy = 0;
  for (const ActivityInterval &I : Intervals)
    Busy += I.End - I.Start;
  return static_cast<double>(Busy) /
         (static_cast<double>(Span) * static_cast<double>(Procs));
}

std::string ActivityRecorder::renderAscii(unsigned Width) const {
  std::vector<ActivityInterval> Snapshot = intervals();
  if (Snapshot.empty() || Width == 0)
    return "(no activity recorded)\n";

  unsigned MaxProc = 0;
  uint64_t Span = 0;
  for (const ActivityInterval &I : Snapshot) {
    MaxProc = std::max(MaxProc, I.Proc);
    Span = std::max(Span, I.End);
  }
  if (Span == 0)
    return "(no activity recorded)\n";

  // Per processor and column, the class with the most busy time wins.
  constexpr unsigned NumClasses = sched::NumTaskClasses;
  std::vector<std::array<uint64_t, NumClasses>> Buckets(
      static_cast<size_t>(MaxProc + 1) * Width);
  for (auto &B : Buckets)
    B.fill(0);

  auto ColumnOf = [&](uint64_t Time) {
    return std::min<uint64_t>(Width - 1, Time * Width / Span);
  };
  for (const ActivityInterval &I : Snapshot) {
    uint64_t C0 = ColumnOf(I.Start), C1 = ColumnOf(I.End == 0 ? 0 : I.End - 1);
    for (uint64_t C = C0; C <= C1; ++C) {
      uint64_t ColStart = C * Span / Width;
      uint64_t ColEnd = (C + 1) * Span / Width;
      uint64_t Overlap = std::min(I.End, ColEnd) -
                         std::max(I.Start, ColStart);
      Buckets[I.Proc * Width + C][static_cast<unsigned>(I.Class)] +=
          std::max<uint64_t>(Overlap, 1);
    }
  }

  std::ostringstream OS;
  for (unsigned P = 0; P <= MaxProc; ++P) {
    OS << "cpu" << P << " |";
    for (unsigned C = 0; C < Width; ++C) {
      const auto &B = Buckets[P * Width + C];
      unsigned Best = 0;
      uint64_t BestTime = 0;
      for (unsigned K = 0; K < NumClasses; ++K)
        if (B[K] > BestTime) {
          BestTime = B[K];
          Best = K;
        }
      OS << (BestTime == 0 ? '.'
                           : classGlyph(static_cast<sched::TaskClass>(Best)));
    }
    OS << "|\n";
  }
  return OS.str();
}
