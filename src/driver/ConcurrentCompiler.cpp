//===--- ConcurrentCompiler.cpp - The concurrent compiler ------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "driver/ConcurrentCompiler.h"

#include "build/InterfaceSet.h"
#include "build/ModulePipeline.h"
#include "build/TaskSpawner.h"
#include "cache/CachePlanner.h"
#include "cache/CompilationCache.h"
#include "opt/PassManager.h"
#include "sched/SimulatedExecutor.h"
#include "sched/ThreadedExecutor.h"

#include <chrono>

using namespace m2c;
using namespace m2c::driver;
using namespace m2c::sched;
using namespace m2c::sema;

CompileResult ConcurrentCompiler::compile(std::string_view ModuleName) {
  CompileResult Result;
  auto Comp = std::make_shared<Compilation>(
      Files, Interner,
      CompilationOptions{Options.Strategy, Options.Sharing});
  Result.Compilation = Comp;

  // The run's pass pipeline: honor an externally supplied manager (a
  // build session sharing one across requests), else build the standard
  // roster for the requested level.  Codegen tasks read the pointers
  // through the options the pipeline carries — a per-run copy, so the
  // member never outlives this call holding them.
  opt::PassManager OwnedPasses = opt::PassManager::forLevel(Options.Level);
  StatisticSet LocalOptStats;
  driver::CompilerOptions RunOptions = Options;
  if (!RunOptions.Passes)
    RunOptions.Passes = OwnedPasses.empty() ? nullptr : &OwnedPasses;
  if (!RunOptions.OptStats)
    RunOptions.OptStats = &LocalOptStats;
  StatisticSet *OptStats = RunOptions.OptStats;
  const std::string PassConfig = RunOptions.Passes
                                     ? RunOptions.Passes->configString()
                                     : opt::passConfigString(opt::OptLevel::O0);

  std::string ModFile = VirtualFileSystem::modFileName(ModuleName);
  if (!Files.exists(ModFile)) {
    Comp->Diags.error(SourceLocation(),
                      "cannot find module file '" + ModFile + "'");
    Result.DiagnosticText = Comp->Diags.render(&Files);
    return Result;
  }

  // Cache prepass.  Probe cost is accounted in the run's own time scale:
  // virtual units under the simulated executor, wall nanoseconds under
  // the threaded one — speedup and warm/cold comparisons stay honest.
  cache::CachePlan Plan;
  uint64_t CacheUnits = 0;  // virtual units spent probing/injecting/storing
  uint64_t CacheWallNs = 0; // same work in wall time (threaded runs)
  using Clock = std::chrono::steady_clock;
  auto WallSince = [](Clock::time_point From) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             From)
            .count());
  };
  if (Options.Cache) {
    auto Start = Clock::now();
    cache::CachePlanner Planner(
        Files, Interner, *Options.Cache,
        cache::CacheFingerprint{Options.Strategy, Options.Sharing, PassConfig,
                                "conc"},
        Options.Cost);
    Plan = Planner.plan(ModuleName);
    CacheUnits += Plan.ProbeUnits;
    CacheWallNs += WallSince(Start);

    if (Plan.ModuleHit) {
      // Whole-module fast path: no source changed since a cached
      // zero-diagnostic compile; replay the image without an executor.
      Result.Image = std::move(Plan.Module->Image);
      Result.Success = true;
      Result.StreamCount = static_cast<size_t>(Plan.Module->StreamCount);
      Result.ElapsedUnits =
          Options.Executor == ExecutorKind::Threaded ? CacheWallNs
                                                     : CacheUnits;
      if (Options.Executor == ExecutorKind::Simulated)
        Result.SimSeconds = static_cast<double>(Result.ElapsedUnits) /
                            static_cast<double>(Options.Cost.UnitsPerSecond);
      Result.CacheStats = Options.Cache->stats().snapshot();
      return Result;
    }
  }

  std::unique_ptr<sched::Executor> Exec;
  if (Options.Executor == ExecutorKind::Threaded)
    Exec = std::make_unique<ThreadedExecutor>(Options.Processors,
                                              Options.Cost);
  else
    Exec = std::make_unique<SimulatedExecutor>(Options.Processors,
                                               Options.Cost);
  Exec->setActivitySink(Options.Trace);

  // One pipeline on one executor — a BuildSession runs many pipelines
  // through one spawner/interface set; the single-module compile is the
  // degenerate session.
  build::TaskSpawner Spawner(*Exec);
  build::InterfaceSet Defs(*Comp, Spawner);
  build::ModulePipeline Pipe(RunOptions, *Comp, ModuleName, Spawner);
  if (Plan.Valid)
    Pipe.setPlan(&Plan);

  {
    // Setup replays the main stream's cached unit (when the plan hit);
    // charge that injection work to the cache ledger, not the executor.
    SequentialContext Ctx(Options.Cost);
    ScopedContext Installed(Ctx);
    auto Start = Clock::now();
    Pipe.setup();
    CacheUnits += Ctx.elapsedUnits();
    CacheWallNs += WallSince(Start);
  }
  Spawner.enterRun();
  Exec->run();

  // The merge task's incremental concatenation has already collected
  // every unit; finalize orders them deterministically.
  Result.Image = Pipe.finalizeImage();
  Result.Success = !Comp->Diags.hasErrors();
  Result.DiagnosticText = Comp->Diags.render(&Files);
  Result.StreamCount = 1 + Pipe.procStreamCount() + Defs.streamCount();

  // Store phase: only fully clean compiles become cache entries, so a
  // replayed entry never owes anyone a diagnostic (count() includes
  // warnings), and a dropped plan's keys no longer describe the units
  // this run produced.
  if (Pipe.plan() && !Pipe.planDropped() && Comp->Diags.count() == 0) {
    SequentialContext Ctx(Options.Cost);
    ScopedContext Installed(Ctx);
    auto Start = Clock::now();
    build::storeCacheEntries(*Options.Cache, Plan, Result.Image,
                             static_cast<uint64_t>(Result.StreamCount),
                             Interner);
    CacheUnits += Ctx.elapsedUnits();
    CacheWallNs += WallSince(Start);
  }

  Result.ElapsedUnits = Exec->elapsedUnits();
  Result.ElapsedUnits +=
      Options.Executor == ExecutorKind::Threaded ? CacheWallNs : CacheUnits;
  if (Options.Executor == ExecutorKind::Simulated)
    Result.SimSeconds = static_cast<double>(Result.ElapsedUnits) /
                        static_cast<double>(Options.Cost.UnitsPerSecond);
  Result.SchedStats = Exec->stats().snapshot();
  if (Options.Cache)
    Result.CacheStats = Options.Cache->stats().snapshot();
  Result.OptStats = OptStats->snapshot();
  return Result;
}
