//===--- ConcurrentCompiler.cpp - The concurrent compiler ------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "driver/ConcurrentCompiler.h"

#include "cache/CachePlanner.h"
#include "cache/CompilationCache.h"
#include "codegen/CodeGenerator.h"
#include "codegen/Merger.h"
#include "lex/Lexer.h"
#include "parse/Parser.h"
#include "sched/SimulatedExecutor.h"
#include "sched/ThreadedExecutor.h"
#include "sema/DeclAnalyzer.h"
#include "split/Importer.h"
#include "split/Splitter.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <mutex>
#include <unordered_map>

using namespace m2c;
using namespace m2c::ast;
using namespace m2c::driver;
using namespace m2c::sched;
using namespace m2c::sema;
using namespace m2c::symtab;

namespace {

/// All the shared state of one concurrent compilation.  Stream objects
/// are owned here and live until the run is over.
class ConcurrentRun {
public:
  /// One split-off procedure stream.
  struct ProcStream {
    Symbol Name;
    std::string QualifiedName;
    std::unique_ptr<Scope> ProcScope;
    TokenBlockQueue Queue;
    EventPtr HeadingDone; ///< Avoided event: heading processed in parent.
    std::atomic<const SymbolEntry *> Entry{nullptr};
    ASTArena Arena;
    std::atomic<int64_t> Weight{0};
    ProcStream *Parent = nullptr; ///< Null for main-module children.
    Scope *ParentScope = nullptr;
    TaskPtr ParserTask; ///< Null when the cache plan skips the front end.
    bool SkipCodegen = false; ///< Cached unit replayed; don't regenerate.

    std::mutex ChildrenMutex;
    std::vector<ProcStream *> Children; ///< Splitter discovery order.

    ProcStream(Symbol Name, std::string Qual)
        : Name(Name), QualifiedName(std::move(Qual)),
          Queue("proc." + QualifiedName),
          HeadingDone(makeEvent("heading." + QualifiedName,
                                EventKind::Avoided)) {}
  };

  /// One definition-module stream.
  struct DefStream {
    Symbol Name;
    Scope *ModScope = nullptr;
    TokenBlockQueue Queue;
    ASTArena Arena;
    TaskPtr ParserTask;

    explicit DefStream(std::string QueueName)
        : Queue(std::move(QueueName)) {}
  };

  ConcurrentRun(VirtualFileSystem &Files, StringInterner &Interner,
                const CompilerOptions &Options, std::string_view ModuleName,
                std::shared_ptr<Compilation> CompPtr, Executor &Exec)
      : Options(Options), CompPtr(std::move(CompPtr)), Comp(*this->CompPtr),
        Exec(Exec), ModName(Interner.intern(ModuleName)),
        Merge(ModName),
        RawQueue(std::string(ModuleName) + ".raw"),
        MainQueue(std::string(ModuleName) + ".main") {
    (void)Files;
  }

  bool avoidance() const {
    return Options.Strategy == DkyStrategy::Avoidance;
  }

  /// Routes task submission correctly both before run() (executor) and
  /// from inside running tasks (current execution context).
  void spawnTask(TaskPtr T) {
    if (InsideRun.load(std::memory_order_acquire))
      ctx().spawn(std::move(T));
    else
      Exec.spawn(std::move(T));
  }

  //===--- Stream creation -------------------------------------------------===//

  ProcStream *createProcStream(ProcStream *Parent, Symbol Name) {
    std::string ParentQual = Parent
                                 ? Parent->QualifiedName
                                 : std::string(Comp.Interner.spelling(ModName));
    auto Owned = std::make_unique<ProcStream>(
        Name, ParentQual + "." + std::string(Comp.Interner.spelling(Name)));
    ProcStream *S = Owned.get();
    S->Parent = Parent;
    S->ParentScope =
        Parent ? Parent->ProcScope.get() : ModuleScopePtr.get();
    S->ProcScope = std::make_unique<Scope>(
        std::string(Comp.Interner.spelling(Name)), ScopeKind::Procedure,
        S->ParentScope, &Comp.Builtins);
    {
      std::lock_guard<std::mutex> Lock(StreamsMutex);
      ProcStreams.push_back(std::move(Owned));
    }
    // Register with the parent in splitter-discovery order, which matches
    // the order the parent's declaration analyzer sees the headings.
    if (Parent) {
      std::lock_guard<std::mutex> Lock(Parent->ChildrenMutex);
      Parent->Children.push_back(S);
    } else {
      std::lock_guard<std::mutex> Lock(MainChildrenMutex);
      MainChildren.push_back(S);
    }

    // Align with the cache plan: probe streams were discovered by the
    // same Splitter over the same tokens, so creation order and names
    // must match; a plan entry marks this stream's cached state.
    const cache::StreamPlan *PlanEntry = nullptr;
    if (Plan) {
      size_t Idx = NextPlanIndex.fetch_add(1, std::memory_order_relaxed);
      assert(Idx < Plan->Streams.size() &&
             Plan->Streams[Idx].QualifiedName == S->QualifiedName &&
             "cache probe stream tree diverged from the compilation");
      if (Idx < Plan->Streams.size() &&
          Plan->Streams[Idx].QualifiedName == S->QualifiedName)
        PlanEntry = &Plan->Streams[Idx];
    }
    S->SkipCodegen = PlanEntry && PlanEntry->Hit;

    // The resolver of the heading event is the parent's parser task.
    Task *ParentParser =
        Parent ? Parent->ParserTask.get() : MainParserTask.get();
    if (ParentParser)
      S->HeadingDone->setResolver(ParentParser);

    if (PlanEntry && !PlanEntry->RunFrontEnd) {
      // The whole subtree is cached: its unit (and every descendant's)
      // was injected into the Merger, and no deeper stream re-analyzes,
      // so this scope never needs populating.  The splitter still diverts
      // tokens to S->Queue; they are simply never consumed.
      return S;
    }
    assert(ParentParser && "parent skipped its front end but a descendant "
                           "needs it");

    S->ParserTask = makeTask(
        "parse." + S->QualifiedName, TaskClass::ProcParserDecl,
        [this, S] { procParserTask(*S); });
    S->ParserTask->addPrerequisite(S->HeadingDone);
    if (avoidance())
      S->ParserTask->addPrerequisite(S->ParentScope->completionEvent());
    S->ProcScope->completionEvent()->setResolver(S->ParserTask.get());
    spawnTask(S->ParserTask);
    return S;
  }

  /// The module registry's once-only stream starter.
  void startDefStream(Symbol Name, Scope &ModScope) {
    auto Owned = std::make_unique<DefStream>(
        "def." + std::string(Comp.Interner.spelling(Name)));
    DefStream *S = Owned.get();
    S->Name = Name;
    S->ModScope = &ModScope;
    {
      std::lock_guard<std::mutex> Lock(StreamsMutex);
      DefStreams.push_back(std::move(Owned));
    }

    std::string FileName =
        VirtualFileSystem::defFileName(Comp.Interner.spelling(Name));
    const SourceBuffer *Buf = Comp.Files.lookup(FileName);
    if (!Buf) {
      Comp.Diags.error(SourceLocation(),
                       "cannot find interface file '" + FileName + "'");
      ModScope.markComplete();
      return;
    }

    S->ParserTask = makeTask("parse." + FileName, TaskClass::DefModParserDecl,
                             [this, S] { defParserTask(*S); });
    ModScope.completionEvent()->setResolver(S->ParserTask.get());

    spawnTask(makeTask("lex." + FileName, TaskClass::Lexor, [this, S, Buf] {
      Lexer Lex(*Buf, Comp.Interner, Comp.Diags);
      Lex.lexAll(S->Queue);
    }));
    spawnTask(makeTask("import." + FileName, TaskClass::Importer,
                       [this, S] {
                         Importer Imp(TokenBlockQueue::Reader(S->Queue),
                                      Comp.Modules, Comp.Interner);
                         Imp.run();
                       }));
    spawnTask(S->ParserTask);
  }

  //===--- Task bodies -----------------------------------------------------===//

  void defParserTask(DefStream &S) {
    Parser P(TokenBlockQueue::Reader(S.Queue), S.Arena, Comp.Diags,
             ParserMode::Sequential);
    Parser::ModuleIntro Intro = P.parseModuleIntro();
    if (!Intro.IsDefinition)
      Comp.Diags.error(Intro.Loc, "expected a DEFINITION MODULE");
    DeclAnalyzer DA(Comp, *S.ModScope, S.Name);
    DA.analyzeImports(Intro.Imports);
    // Declarations analyzed as they parse, so Skeptical searchers probing
    // this (incomplete) interface can succeed before it completes.
    P.setDeclSink([&DA](Decl *D) { DA.analyzeDecl(D); });
    P.parseTopDecls(/*HeadingsOnly=*/true);
    P.parseDefModuleEnd();
    DA.finish();
  }

  /// Installs the parent-side heading hooks for a declaration analyzer
  /// whose children were registered in \p Children order.
  void installHeadingHooks(DeclAnalyzer &DA, ProcStream *Stream) {
    ProcStreamHooks Hooks;
    Hooks.childScope = [this, Stream](size_t Index, Symbol) -> Scope * {
      ProcStream *Child = childAt(Stream, Index);
      return Child ? Child->ProcScope.get() : nullptr;
    };
    Hooks.headingDone = [this, Stream](size_t Index, Symbol,
                                       const SymbolEntry &Entry) {
      ProcStream *Child = childAt(Stream, Index);
      if (!Child)
        return;
      Child->Entry.store(&Entry, std::memory_order_release);
      ctx().signal(*Child->HeadingDone);
    };
    DA.setProcStreamHooks(std::move(Hooks));
  }

  /// On malformed input the parent's error recovery can skip a heading
  /// the splitter already created a stream for; its avoided event would
  /// then never fire and the child task would be held forever.  Parser
  /// tasks call this on exit: by then the splitter has finished this
  /// stream, so the child list is final and any unsignaled heading event
  /// is an orphan (its Entry stays null; code generation skips it).
  void releaseOrphanHeadings(ProcStream *Stream) {
    std::vector<ProcStream *> Children;
    if (Stream) {
      std::lock_guard<std::mutex> Lock(Stream->ChildrenMutex);
      Children = Stream->Children;
    } else {
      std::lock_guard<std::mutex> Lock(MainChildrenMutex);
      Children = MainChildren;
    }
    for (ProcStream *Child : Children)
      if (!Child->HeadingDone->isSignaled())
        ctx().signal(*Child->HeadingDone);
  }

  ProcStream *childAt(ProcStream *Stream, size_t Index) {
    if (Stream) {
      std::lock_guard<std::mutex> Lock(Stream->ChildrenMutex);
      return Index < Stream->Children.size() ? Stream->Children[Index]
                                             : nullptr;
    }
    std::lock_guard<std::mutex> Lock(MainChildrenMutex);
    return Index < MainChildren.size() ? MainChildren[Index] : nullptr;
  }

  void mainParserTask() {
    Parser P(TokenBlockQueue::Reader(MainQueue), MainArena, Comp.Diags,
             ParserMode::SplitStream);
    Parser::ModuleIntro Intro = P.parseModuleIntro();
    if (Intro.Name != ModName && !Intro.Name.isEmpty())
      Comp.Diags.warning(Intro.Loc,
                         "module name does not match its file name");
    DeclAnalyzer DA(Comp, *ModuleScopePtr, ModName);
    DA.setOwnInterface(OwnDefScope);
    installHeadingHooks(DA, nullptr);
    DA.analyzeImports(Intro.Imports);
    // Interleave: procedure headings are processed — and their streams
    // released — as soon as each declaration's text has been parsed.
    P.setDeclSink([&DA](Decl *D) { DA.analyzeDecl(D); });
    P.parseTopDecls(/*HeadingsOnly=*/false);
    DA.finish(); // Module symbol table complete before the body parse.
    if (OwnDefScope && !OwnDefScope->isComplete())
      ctx().wait(*OwnDefScope->completionEvent());
    Merge.setGlobalsFrom(*ModuleScopePtr, OwnDefScope);

    StmtList Body = P.parseImplModuleBody();
    // Drain to end of stream first: only once the Splitter has finished
    // this stream is the child list final (malformed input can end the
    // module's syntax before the raw token stream ends).
    P.drainToEof();
    releaseOrphanHeadings(nullptr);
    bool SkipMainCodegen =
        Plan && !Plan->Streams.empty() && Plan->Streams[0].Hit;
    if (SkipMainCodegen)
      return; // Cached module-body unit already handed to the Merger.
    int64_t Weight = static_cast<int64_t>(P.tokensConsumed());
    spawnCodeGen(/*Stream=*/nullptr, std::move(Body), Weight);
  }

  void procParserTask(ProcStream &S) {
    Parser P(TokenBlockQueue::Reader(S.Queue), S.Arena, Comp.Diags,
             ParserMode::SplitStream);
    // The heading tokens are re-read syntactically; under CopyEntries the
    // parameter entries were already copied in by the parent (section 2.4
    // alternative 1), under Reprocess the child re-analyzes them here
    // (alternative 3) — in either case the parameters must be in the
    // scope before any local declaration is analyzed, so slot numbering
    // matches the sequential compiler exactly.
    ast::ProcHeading Heading = P.parseProcStreamHeading();
    DeclAnalyzer DA(Comp, *S.ProcScope, ModName);
    if (Comp.Options.Sharing == HeadingSharing::Reprocess)
      DA.analyzeHeadingInChild(Heading);
    installHeadingHooks(DA, &S);
    P.setDeclSink([&DA](Decl *D) { DA.analyzeDecl(D); });
    P.parseTopDecls(/*HeadingsOnly=*/false);
    DA.finish(); // Procedure symbol table complete before the body parse.

    StmtList Body = P.parseProcBody();
    P.drainToEof();
    releaseOrphanHeadings(&S);
    if (S.SkipCodegen)
      return; // Cached unit already handed to the Merger.
    spawnCodeGen(&S, std::move(Body), S.Weight.load());
  }

  void spawnCodeGen(ProcStream *Stream, StmtList Body, int64_t Weight) {
    bool Long = Weight > Options.LongProcTokens;
    std::string Name =
        "codegen." + (Stream ? Stream->QualifiedName
                             : std::string(Comp.Interner.spelling(ModName)));
    // Task bodies must be copyable (std::function); share the parse tree.
    auto BodyPtr = std::make_shared<StmtList>(std::move(Body));
    auto Task = makeTask(
        std::move(Name),
        Long ? TaskClass::LongStmtCodeGen : TaskClass::ShortStmtCodeGen,
        [this, Stream, BodyPtr, Weight] {
          const StmtList &Body = *BodyPtr;
          if (!Stream) {
            codegen::CodeGenerator CG(Comp, *ModuleScopePtr, ModName);
            Merge.addUnit(CG.generateModuleBody(Body, Weight));
            return;
          }
          const SymbolEntry *Entry =
              Stream->Entry.load(std::memory_order_acquire);
          if (!Entry)
            return; // Heading failed (redeclaration); error reported.
          codegen::CodeGenerator CG(Comp, *Stream->ProcScope, ModName);
          Merge.addUnit(CG.generateProcedure(
              *Entry, Body,
              std::string(Comp.Interner.spelling(ModName)) + "." +
                  codegen::moduleRelativeName(*Entry, Comp.Interner),
              codegen::procedureLevel(*Stream->ProcScope), Weight));
        });
    Task->setWeight(Weight);
    spawnTask(std::move(Task));
  }

  //===--- Initial task wiring ---------------------------------------------===//

  bool setup(const SourceBuffer *ModBuf) {
    Comp.Modules.setStarter([this](Symbol Name, Scope &ModScope) {
      startDefStream(Name, ModScope);
    });

    // "The compiler optimistically anticipates the existence of a file
    // M.def and tries to start processing this file as soon as possible"
    // (paper section 3).  Its declarations are visible throughout M.mod:
    // the module scope's parent is the interface scope.
    Scope *OwnDef = nullptr;
    if (Comp.Files.exists(VirtualFileSystem::defFileName(
            Comp.Interner.spelling(ModName))))
      OwnDef = &Comp.Modules.getOrCreate(ModName,
                                         Comp.Interner.spelling(ModName));
    ModuleScopePtr = std::make_unique<Scope>(
        std::string(Comp.Interner.spelling(ModName)), ScopeKind::Module,
        OwnDef, &Comp.Builtins);
    OwnDefScope = OwnDef;

    MainParserTask = makeTask("parse.main", TaskClass::ModuleParserDecl,
                              [this] { mainParserTask(); });
    ModuleScopePtr->completionEvent()->setResolver(MainParserTask.get());
    if (avoidance() && OwnDef)
      MainParserTask->addPrerequisite(OwnDef->completionEvent());

    Exec.spawn(makeTask("lex.main", TaskClass::Lexor, [this, ModBuf] {
      Lexer Lex(*ModBuf, Comp.Interner, Comp.Diags);
      Lex.lexAll(RawQueue);
    }));

    Exec.spawn(makeTask("split.main", TaskClass::Splitter, [this] {
      SplitterHooks Hooks;
      Hooks.beginProc = [this](StreamHandle Parent, Symbol Name) {
        return static_cast<StreamHandle>(createProcStream(
            static_cast<ProcStream *>(Parent), Name));
      };
      Hooks.queueOf = [this](StreamHandle Stream) -> TokenBlockQueue & {
        return Stream ? static_cast<ProcStream *>(Stream)->Queue : MainQueue;
      };
      Hooks.endProc = [](StreamHandle Stream, int64_t Tokens) {
        static_cast<ProcStream *>(Stream)->Weight.store(Tokens);
      };
      Splitter Split(TokenBlockQueue::Reader(RawQueue), std::move(Hooks));
      Split.run();
    }));

    Exec.spawn(makeTask("import.main", TaskClass::Importer, [this] {
      Importer Imp(TokenBlockQueue::Reader(RawQueue), Comp.Modules,
                   Comp.Interner);
      Merge.setImports(Imp.run());
    }));
    Exec.spawn(MainParserTask);
    return true;
  }

  size_t streamCount() {
    std::lock_guard<std::mutex> Lock(StreamsMutex);
    return 1 + ProcStreams.size() + DefStreams.size();
  }

  const CompilerOptions &Options;
  std::shared_ptr<Compilation> CompPtr;
  Compilation &Comp;
  Executor &Exec;
  Symbol ModName;
  codegen::Merger Merge;

  /// Cache plan for this run (null: no cache or probe not applicable).
  /// Index 0 is the main stream; procedure streams claim successive
  /// indices in splitter discovery order.
  const cache::CachePlan *Plan = nullptr;
  std::atomic<size_t> NextPlanIndex{1};

  TokenBlockQueue RawQueue;
  TokenBlockQueue MainQueue;
  std::unique_ptr<Scope> ModuleScopePtr;
  Scope *OwnDefScope = nullptr;
  std::atomic<bool> InsideRun{false};
  ASTArena MainArena;
  TaskPtr MainParserTask;

  std::mutex StreamsMutex;
  std::vector<std::unique_ptr<ProcStream>> ProcStreams;
  std::vector<std::unique_ptr<DefStream>> DefStreams;
  std::mutex MainChildrenMutex;
  std::vector<ProcStream *> MainChildren;
};

} // namespace

CompileResult ConcurrentCompiler::compile(std::string_view ModuleName) {
  CompileResult Result;
  auto Comp = std::make_shared<Compilation>(
      Files, Interner,
      CompilationOptions{Options.Strategy, Options.Sharing,
                         Options.Optimize});
  Result.Compilation = Comp;

  std::string ModFile = VirtualFileSystem::modFileName(ModuleName);
  const SourceBuffer *ModBuf = Files.lookup(ModFile);
  if (!ModBuf) {
    Comp->Diags.error(SourceLocation(),
                      "cannot find module file '" + ModFile + "'");
    Result.DiagnosticText = Comp->Diags.render(&Files);
    return Result;
  }

  // Cache prepass.  Probe cost is accounted in the run's own time scale:
  // virtual units under the simulated executor, wall nanoseconds under
  // the threaded one — speedup and warm/cold comparisons stay honest.
  cache::CachePlan Plan;
  uint64_t CacheUnits = 0;  // virtual units spent probing/injecting/storing
  uint64_t CacheWallNs = 0; // same work in wall time (threaded runs)
  using Clock = std::chrono::steady_clock;
  auto WallSince = [](Clock::time_point From) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             From)
            .count());
  };
  if (Options.Cache) {
    auto Start = Clock::now();
    cache::CachePlanner Planner(
        Files, Interner, *Options.Cache,
        cache::CacheFingerprint{Options.Strategy, Options.Sharing,
                                Options.Optimize, "conc"},
        Options.Cost);
    Plan = Planner.plan(ModuleName);
    CacheUnits += Plan.ProbeUnits;
    CacheWallNs += WallSince(Start);

    if (Plan.ModuleHit) {
      // Whole-module fast path: no source changed since a cached
      // zero-diagnostic compile; replay the image without an executor.
      Result.Image = std::move(Plan.Module->Image);
      Result.Success = true;
      Result.StreamCount = static_cast<size_t>(Plan.Module->StreamCount);
      Result.ElapsedUnits =
          Options.Executor == ExecutorKind::Threaded ? CacheWallNs
                                                     : CacheUnits;
      if (Options.Executor == ExecutorKind::Simulated)
        Result.SimSeconds = static_cast<double>(Result.ElapsedUnits) /
                            static_cast<double>(Options.Cost.UnitsPerSecond);
      Result.CacheStats = Options.Cache->stats().snapshot();
      return Result;
    }
  }

  std::unique_ptr<sched::Executor> Exec;
  if (Options.Executor == ExecutorKind::Threaded)
    Exec = std::make_unique<ThreadedExecutor>(Options.Processors,
                                              Options.Cost);
  else
    Exec = std::make_unique<SimulatedExecutor>(Options.Processors,
                                               Options.Cost);
  Exec->setActivitySink(Options.Trace);

  ConcurrentRun Run(Files, Interner, Options, ModuleName, Comp, *Exec);
  if (Plan.Valid)
    Run.Plan = &Plan;

  // Hand every hit stream's cached unit to the Merger up front; the run
  // then skips those streams' code generation (and, where a whole subtree
  // hit, their parse/sema too).
  if (Run.Plan) {
    SequentialContext Ctx(Options.Cost);
    ScopedContext Installed(Ctx);
    auto Start = Clock::now();
    for (const cache::StreamPlan &S : Plan.Streams)
      if (S.Hit)
        Run.Merge.addUnit(*S.Cached);
    CacheUnits += Ctx.elapsedUnits();
    CacheWallNs += WallSince(Start);
  }

  Run.setup(ModBuf);
  Run.InsideRun.store(true, std::memory_order_release);
  Exec->run();

  // The merge task's incremental concatenation has already collected
  // every unit; finalize orders them deterministically.
  Result.Image = Run.Merge.finalize();
  Result.Success = !Comp->Diags.hasErrors();
  Result.DiagnosticText = Comp->Diags.render(&Files);
  Result.StreamCount = Run.streamCount();

  // Store phase: only fully clean compiles become cache entries, so a
  // replayed entry never owes anyone a diagnostic (count() includes
  // warnings).
  if (Run.Plan && Comp->Diags.count() == 0) {
    SequentialContext Ctx(Options.Cost);
    ScopedContext Installed(Ctx);
    auto Start = Clock::now();
    std::unordered_map<std::string_view, const codegen::CodeUnit *> ByName;
    for (const codegen::CodeUnit &U : Result.Image.Units)
      ByName.emplace(U.QualifiedName, &U);
    for (const cache::StreamPlan &S : Plan.Streams) {
      if (S.Hit)
        continue;
      auto It = ByName.find(S.QualifiedName);
      // Absent unit: the heading was parsed but analysis dropped it (can
      // only happen with diagnostics, which the gate excludes) — skipped
      // defensively anyway.
      if (It != ByName.end())
        Options.Cache->storeStream(S.Key, *It->second, Interner);
    }
    Options.Cache->storeModule(Plan.ModuleKey, Plan.ModTextHash, Plan.Deps,
                               Result.Image,
                               static_cast<uint64_t>(Result.StreamCount),
                               Interner);
    CacheUnits += Ctx.elapsedUnits();
    CacheWallNs += WallSince(Start);
  }

  Result.ElapsedUnits = Exec->elapsedUnits();
  Result.ElapsedUnits +=
      Options.Executor == ExecutorKind::Threaded ? CacheWallNs : CacheUnits;
  if (Options.Executor == ExecutorKind::Simulated)
    Result.SimSeconds = static_cast<double>(Result.ElapsedUnits) /
                        static_cast<double>(Options.Cost.UnitsPerSecond);
  Result.SchedStats = Exec->stats().snapshot();
  if (Options.Cache)
    Result.CacheStats = Options.Cache->stats().snapshot();
  return Result;
}
