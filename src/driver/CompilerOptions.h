//===--- CompilerOptions.h - Driver configuration ---------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#ifndef M2C_DRIVER_COMPILEROPTIONS_H
#define M2C_DRIVER_COMPILEROPTIONS_H

#include "opt/OptLevel.h"
#include "sched/ActivitySink.h"
#include "sched/CostModel.h"
#include "sema/Compilation.h"

namespace m2c {
class StatisticSet;
namespace cache {
class CompilationCache;
}
namespace opt {
class PassManager;
}
} // namespace m2c

namespace m2c::driver {

/// Which executor carries the concurrent compilation.
enum class ExecutorKind : uint8_t {
  Threaded,  ///< Real std::thread workers (wall-clock timing).
  Simulated, ///< Deterministic discrete-event simulation (virtual time);
             ///< used for the paper's 1..8-processor experiments.
};

/// Everything configurable about one compiler run.
struct CompilerOptions {
  symtab::DkyStrategy Strategy = symtab::DkyStrategy::Skeptical;
  sema::HeadingSharing Sharing = sema::HeadingSharing::CopyEntries;
  /// Middle-end optimization level; names the pass roster run over each
  /// stream's unit independently (see opt/PassManager.h).  The level is
  /// folded into every cache fingerprint.
  opt::OptLevel Level = opt::defaultOptLevel();
  /// The pass pipeline for Level, set by the driver for the duration of
  /// one run (codegen tasks share it; null = no optimization).  Callers
  /// configuring a compile only set Level — drivers own the manager.
  const opt::PassManager *Passes = nullptr;
  /// Where per-pass opt.* counters land when non-null.
  StatisticSet *OptStats = nullptr;
  ExecutorKind Executor = ExecutorKind::Simulated;
  unsigned Processors = 1;
  sched::CostModel Cost;

  /// Statement/code-generation tasks for streams above this token count
  /// run in the Long priority class (generated before short ones to avoid
  /// the sequential tail, paper section 2.3.4).
  int64_t LongProcTokens = 350;

  /// Optional processor-activity trace sink (WatchTool reproduction).
  sched::ActivitySink *Trace = nullptr;

  /// Optional stream compilation cache shared across compile() calls (and,
  /// with a disk-backed store, across processes).  Null disables caching.
  cache::CompilationCache *Cache = nullptr;
};

} // namespace m2c::driver

#endif // M2C_DRIVER_COMPILEROPTIONS_H
