//===--- CompileResult.h - Output of one compiler run -----------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#ifndef M2C_DRIVER_COMPILERESULT_H
#define M2C_DRIVER_COMPILERESULT_H

#include "codegen/MCode.h"
#include "sema/Compilation.h"

#include <map>
#include <memory>
#include <string>

namespace m2c::driver {

/// Everything a compiler run produces: the merged object image, the
/// diagnostics, timing, and the per-compilation statistics the paper's
/// evaluation reports.
struct CompileResult {
  bool Success = false;
  codegen::ModuleImage Image;

  /// Rendered diagnostics in stable source order.
  std::string DiagnosticText;

  /// Elapsed time: virtual units under the simulated executor and the
  /// sequential baseline; wall nanoseconds under the threaded executor.
  uint64_t ElapsedUnits = 0;

  /// ElapsedUnits converted to simulated seconds (0 for threaded runs).
  double SimSeconds = 0.0;

  /// Scheduler counters (task counts, waits, boosts...).
  std::map<std::string, uint64_t> SchedStats;

  /// Number of streams compiled (1 + procedures + definition modules).
  size_t StreamCount = 0;

  /// Compilation-cache counters (hits, misses, invalidations) snapshotted
  /// after the run; empty when no cache was configured.
  std::map<std::string, uint64_t> CacheStats;

  /// Middle-end pass counters (opt.units, opt.<pass>.*) snapshotted after
  /// the run; empty at -O0.
  std::map<std::string, uint64_t> OptStats;

  /// Keeps lookup statistics, scopes and types alive for inspection
  /// (Table 2 comes from Compilation->Stats).
  std::shared_ptr<sema::Compilation> Compilation;
};

} // namespace m2c::driver

#endif // M2C_DRIVER_COMPILERESULT_H
