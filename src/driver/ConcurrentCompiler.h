//===--- ConcurrentCompiler.h - The concurrent compiler ---------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The complete concurrent compiler of the paper's Figure 5.  The source
/// module is split into streams — the main module body, one stream per
/// procedure (at any nesting depth), and one stream per directly or
/// indirectly imported definition module — each compiled by a pipeline
/// of tasks under the Supervisor scheduler:
///
///   definition module:   Lexor -> Importer -> Parser/DeclAnalyzer
///   implementation mod.:  Lexor -> {Splitter, Importer} ->
///                          Parser/DeclAnalyzer -> StmtAnalyzer/CodeGen
///   procedure:            Parser/DeclAnalyzer -> StmtAnalyzer/CodeGen
///                          (started after the parent processed the
///                           heading — the section 2.4 avoided event)
///
/// Per-procedure code units are merged by concatenation in any order.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_DRIVER_CONCURRENTCOMPILER_H
#define M2C_DRIVER_CONCURRENTCOMPILER_H

#include "driver/CompileResult.h"
#include "driver/CompilerOptions.h"
#include "support/VirtualFileSystem.h"

namespace m2c::driver {

/// The concurrent Modula-2+ compiler.
class ConcurrentCompiler {
public:
  ConcurrentCompiler(VirtualFileSystem &Files, StringInterner &Interner,
                     CompilerOptions Options = CompilerOptions())
      : Files(Files), Interner(Interner), Options(std::move(Options)) {}

  /// Compiles module \p ModuleName concurrently on the configured
  /// executor and processor count.
  CompileResult compile(std::string_view ModuleName);

private:
  VirtualFileSystem &Files;
  StringInterner &Interner;
  CompilerOptions Options;
};

} // namespace m2c::driver

#endif // M2C_DRIVER_CONCURRENTCOMPILER_H
