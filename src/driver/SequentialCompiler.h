//===--- SequentialCompiler.h - Baseline one-pass compiler ------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "traditional sequential compiler" the paper evaluates against
/// (section 4.2).  It shares every phase implementation with the
/// concurrent compiler but runs them in dependency order on one thread,
/// with no splitting, no token queues and no task scheduling — which is
/// exactly why the concurrent compiler on one processor comes out a few
/// percent slower: the concurrency machinery is pure overhead there.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_DRIVER_SEQUENTIALCOMPILER_H
#define M2C_DRIVER_SEQUENTIALCOMPILER_H

#include "driver/CompileResult.h"
#include "driver/CompilerOptions.h"
#include "support/VirtualFileSystem.h"

namespace m2c::driver {

/// Baseline compiler: same phases, strictly sequential.
class SequentialCompiler {
public:
  SequentialCompiler(VirtualFileSystem &Files, StringInterner &Interner,
                     CompilerOptions Options = CompilerOptions())
      : Files(Files), Interner(Interner), Options(std::move(Options)) {}

  /// Compiles module \p ModuleName (files ModuleName.mod plus the .def
  /// interfaces it imports).
  CompileResult compile(std::string_view ModuleName);

private:
  VirtualFileSystem &Files;
  StringInterner &Interner;
  CompilerOptions Options;
};

} // namespace m2c::driver

#endif // M2C_DRIVER_SEQUENTIALCOMPILER_H
