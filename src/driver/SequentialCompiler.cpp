//===--- SequentialCompiler.cpp - Baseline one-pass compiler ---------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "driver/SequentialCompiler.h"

#include "cache/CachePlanner.h"
#include "cache/CompilationCache.h"
#include "codegen/CodeGenerator.h"
#include "codegen/Merger.h"
#include "lex/Lexer.h"
#include "opt/PassManager.h"
#include "parse/Parser.h"
#include "sched/ExecContext.h"
#include "sema/DeclAnalyzer.h"

using namespace m2c;
using namespace m2c::ast;
using namespace m2c::driver;
using namespace m2c::sema;
using namespace m2c::symtab;

namespace {

/// Recursive state for one sequential compilation.
struct SeqState {
  Compilation &Comp;
  codegen::Merger &Merger;
  const opt::PassManager *Passes = nullptr;
  StatisticSet *OptStats = nullptr;
  std::vector<std::unique_ptr<Scope>> OwnedScopes;
  std::vector<std::unique_ptr<TokenBlockQueue>> Queues;
  std::vector<std::unique_ptr<ast::ASTArena>> Arenas;

  /// Lexes one file into a fresh finished queue; null if the file is
  /// missing.
  TokenBlockQueue *lexFile(const std::string &FileName) {
    const SourceBuffer *Buf = Comp.Files.lookup(FileName);
    if (!Buf)
      return nullptr;
    Queues.push_back(
        std::make_unique<TokenBlockQueue>(FileName, &Comp.TokenBlocks));
    Lexer Lex(*Buf, Comp.Interner, Comp.Diags);
    Lex.lexAll(*Queues.back());
    return Queues.back().get();
  }

  /// Compiles one definition module inline (the registry starter).
  void compileDefModule(Symbol Name, Scope &ModScope) {
    std::string FileName = VirtualFileSystem::defFileName(
        Comp.Interner.spelling(Name));
    TokenBlockQueue *Q = lexFile(FileName);
    if (!Q) {
      Comp.Diags.error(SourceLocation(),
                       "cannot find interface file '" + FileName + "'");
      ModScope.markComplete();
      return;
    }
    Arenas.push_back(std::make_unique<ast::ASTArena>());
    Parser P(TokenBlockQueue::Reader(*Q), *Arenas.back(), Comp.Diags,
             ParserMode::Sequential);
    DefinitionModule Def = P.parseDefinitionModule();
    DeclAnalyzer DA(Comp, ModScope, Name);
    DA.analyzeImports(Def.Imports);
    DA.analyzeDecls(Def.Decls);
    DA.finish();
  }

  /// Analyzes one scope's declarations, then recurses into its procedure
  /// bodies (declarations fully analyzed before any body is, so forward
  /// procedure references behave the same as in the concurrent
  /// compiler).
  void processScope(Scope &Self, Symbol ModName,
                    const std::vector<Decl *> &Decls,
                    const std::vector<ImportClause> *Imports,
                    Scope *OwnInterface = nullptr) {
    struct ChildInfo {
      Scope *ScopePtr = nullptr;
      const SymbolEntry *Entry = nullptr;
    };
    std::vector<ChildInfo> Children;

    DeclAnalyzer DA(Comp, Self, ModName);
    DA.setOwnInterface(OwnInterface);
    ProcStreamHooks Hooks;
    Hooks.childScope = [&](size_t, Symbol Name) -> Scope * {
      OwnedScopes.push_back(std::make_unique<Scope>(
          std::string(Comp.Interner.spelling(Name)), ScopeKind::Procedure,
          &Self, &Comp.Builtins));
      Children.push_back(ChildInfo{OwnedScopes.back().get(), nullptr});
      return OwnedScopes.back().get();
    };
    Hooks.headingDone = [&](size_t Index, Symbol,
                            const SymbolEntry &Entry) {
      Children[Index].Entry = &Entry;
    };
    DA.setProcStreamHooks(std::move(Hooks));
    if (Imports)
      DA.analyzeImports(*Imports);
    DA.analyzeDecls(Decls);
    DA.finish();

    // Bodies after the scope is complete, in declaration order.
    size_t Index = 0;
    for (const Decl *D : Decls) {
      if (D->kind() != DeclKind::Proc && D->kind() != DeclKind::ProcHeading)
        continue;
      size_t MyIndex = Index++;
      if (D->kind() != DeclKind::Proc)
        continue;
      const auto *Proc = static_cast<const ProcDecl *>(D);
      ChildInfo &Child = Children[MyIndex];
      if (!Child.Entry)
        continue; // Redeclaration error already reported.
      if (Comp.Options.Sharing == HeadingSharing::Reprocess) {
        DeclAnalyzer ChildDA(Comp, *Child.ScopePtr, ModName);
        ChildDA.analyzeHeadingInChild(Proc->heading());
      }
      processScope(*Child.ScopePtr, ModName, Proc->decls(), nullptr);
      codegen::CodeGenerator CG(Comp, *Child.ScopePtr, ModName, Passes,
                                OptStats);
      std::string Qual =
          std::string(Comp.Interner.spelling(ModName)) + "." +
          codegen::moduleRelativeName(*Child.Entry, Comp.Interner);
      Merger.addUnit(CG.generateProcedure(
          *Child.Entry, Proc->body(), std::move(Qual),
          codegen::procedureLevel(*Child.ScopePtr), /*Weight=*/0));
    }
  }
};

} // namespace

CompileResult SequentialCompiler::compile(std::string_view ModuleName) {
  CompileResult Result;
  auto Comp = std::make_shared<Compilation>(
      Files, Interner,
      CompilationOptions{Options.Strategy, Options.Sharing});
  Result.Compilation = Comp;

  // The run's pass pipeline: honor an externally supplied manager (a
  // build session sharing one across requests), else build the standard
  // roster for the requested level.
  opt::PassManager OwnedPasses = opt::PassManager::forLevel(Options.Level);
  const opt::PassManager *Passes =
      Options.Passes ? Options.Passes : &OwnedPasses;
  StatisticSet LocalOptStats;
  StatisticSet *OptStats =
      Options.OptStats ? Options.OptStats : &LocalOptStats;

  // Cache prepass (module granularity: the one-pass compiler has no
  // streams to skip individually, but an unchanged module still replays
  // its whole image without compiling).
  cache::CachePlan Plan;
  if (Options.Cache) {
    cache::CachePlanner Planner(
        Files, Interner, *Options.Cache,
        cache::CacheFingerprint{Options.Strategy, Options.Sharing,
                                Passes->configString(), "seq"},
        Options.Cost);
    Plan = Planner.probeModule(ModuleName);
    if (Plan.ModuleHit) {
      Result.Image = std::move(Plan.Module->Image);
      Result.Success = true;
      Result.StreamCount = static_cast<size_t>(Plan.Module->StreamCount);
      Result.ElapsedUnits = Plan.ProbeUnits;
      Result.SimSeconds = static_cast<double>(Result.ElapsedUnits) /
                          static_cast<double>(Options.Cost.UnitsPerSecond);
      Result.CacheStats = Options.Cache->stats().snapshot();
      return Result;
    }
  }

  sched::SequentialContext Ctx(Options.Cost);
  sched::ScopedContext Installed(Ctx);

  Symbol ModSym = Interner.intern(ModuleName);
  codegen::Merger Merger(ModSym);
  SeqState State{*Comp, Merger, Passes->empty() ? nullptr : Passes,
                 OptStats,      {},
                 {},            {}};

  Comp->Modules.setStarter([&State](Symbol Name, Scope &ModScope) {
    State.compileDefModule(Name, ModScope);
  });

  std::string ModFile = VirtualFileSystem::modFileName(ModuleName);
  TokenBlockQueue *Q = State.lexFile(ModFile);
  if (!Q) {
    Comp->Diags.error(SourceLocation(),
                      "cannot find module file '" + ModFile + "'");
    Result.DiagnosticText = Comp->Diags.render(&Files);
    return Result;
  }

  State.Arenas.push_back(std::make_unique<ast::ASTArena>());
  Parser P(TokenBlockQueue::Reader(*Q), *State.Arenas.back(), Comp->Diags,
           ParserMode::Sequential);
  ImplementationModule Mod = P.parseImplementationModule();
  if (Mod.Name != ModSym && !Mod.Name.isEmpty())
    Comp->Diags.warning(Mod.Loc,
                        "module name does not match its file name");

  // The module's own interface (M.def), when present, is the parent
  // scope of the module body: its declarations are visible throughout
  // M.mod (paper section 3).
  Scope *OwnDef = nullptr;
  if (Files.exists(VirtualFileSystem::defFileName(ModuleName)))
    OwnDef = &Comp->Modules.getOrCreate(ModSym, ModuleName);
  Scope ModuleScope(std::string(ModuleName), ScopeKind::Module, OwnDef,
                    &Comp->Builtins);
  State.processScope(ModuleScope, ModSym, Mod.Decls, &Mod.Imports, OwnDef);

  Merger.setGlobalsFrom(ModuleScope, OwnDef);
  std::vector<Symbol> Direct;
  for (const ImportClause &Clause : Mod.Imports) {
    if (!Clause.FromModule.isEmpty())
      Direct.push_back(Clause.FromModule);
    else
      Direct.insert(Direct.end(), Clause.Names.begin(), Clause.Names.end());
  }
  Merger.setImports(std::move(Direct));

  codegen::CodeGenerator CG(*Comp, ModuleScope, ModSym, State.Passes,
                            State.OptStats);
  Merger.addUnit(CG.generateModuleBody(
      Mod.Body, static_cast<int64_t>(P.tokensConsumed())));

  Result.Image = Merger.finalize();
  Result.Success = !Comp->Diags.hasErrors();
  Result.DiagnosticText = Comp->Diags.render(&Files);
  Result.StreamCount = 1 + Comp->Modules.size();

  // Only fully clean compiles become cache entries (count() includes
  // warnings), so a replayed entry never owes anyone a diagnostic.  The
  // store charges into the same context as the compile, so its cost is
  // part of ElapsedUnits.
  if (Options.Cache && Plan.Valid && Comp->Diags.count() == 0)
    Options.Cache->storeModule(Plan.ModuleKey, Plan.ModTextHash, Plan.Deps,
                               Result.Image,
                               static_cast<uint64_t>(Result.StreamCount),
                               Interner);

  Result.ElapsedUnits = Ctx.elapsedUnits() + Plan.ProbeUnits;
  Result.SimSeconds = static_cast<double>(Result.ElapsedUnits) /
                      static_cast<double>(Options.Cost.UnitsPerSecond);
  if (Options.Cache)
    Result.CacheStats = Options.Cache->stats().snapshot();
  Result.OptStats = OptStats->snapshot();
  return Result;
}
