//===--- TokenBlockQueue.cpp - Producer/consumer token stream ------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "lex/TokenBlockQueue.h"

#include "sched/ExecContext.h"

#include <cassert>

using namespace m2c;

TokenBlockQueue::Block &TokenBlockQueue::blockAt(size_t BlockIdx) {
  while (Blocks.size() <= BlockIdx) {
    Block B;
    B.Ready = sched::makeEvent(Name + ".block" + std::to_string(Blocks.size()),
                               sched::EventKind::Barrier);
    Blocks.push_back(std::move(B));
  }
  return Blocks[BlockIdx];
}

void TokenBlockQueue::append(const Token &T) {
  assert(!Finished && "append after finish");
  size_t BlockIdx = ProducerNext / BlockCap;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Block &B = blockAt(BlockIdx);
    assert(!B.Ready->isSignaled() && "append into published block");
    B.Tokens.push_back(T);
  }
  ++ProducerNext;
  if (!T.isEof())
    ++Produced;
  if (ProducerNext % BlockCap == 0)
    publishCurrent();
}

void TokenBlockQueue::publishCurrent() {
  // Publish the most recently filled block: it is the one ending at
  // ProducerNext - 1 (or the partial block containing ProducerNext).
  size_t BlockIdx = (ProducerNext - 1) / BlockCap;
  sched::EventPtr Ready;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Ready = blockAt(BlockIdx).Ready;
  }
  if (Ready->isSignaled())
    return;
  sched::ctx().charge(sched::CostKind::QueueBlock);
  sched::ctx().signal(*Ready);
}

void TokenBlockQueue::finish(SourceLocation EofLoc) {
  assert(!Finished && "finish called twice");
  Token Eof;
  Eof.Kind = TokenKind::Eof;
  Eof.Loc = EofLoc;
  for (unsigned I = 0; I < EofPad; ++I)
    append(Eof);
  if (ProducerNext % BlockCap != 0)
    publishCurrent();
  Finished = true;
}

const Token &
TokenBlockQueue::tokenAt(size_t Index,
                         std::vector<const std::vector<Token> *> &Seen) {
  size_t BlockIdx = Index / BlockCap;
  size_t Offset = Index % BlockCap;
  if (BlockIdx >= Seen.size() || !Seen[BlockIdx]) {
    sched::EventPtr Ready;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Ready = blockAt(BlockIdx).Ready;
    }
    if (!Ready->isSignaled())
      sched::ctx().wait(*Ready);
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Seen.size() <= BlockIdx)
      Seen.resize(BlockIdx + 1, nullptr);
    Seen[BlockIdx] = &Blocks[BlockIdx].Tokens;
  }
  const std::vector<Token> &Tokens = *Seen[BlockIdx];
  assert(Offset < Tokens.size() &&
         "read past end of stream: lookahead exceeded the Eof pad");
  return Tokens[Offset];
}
