//===--- TokenBlockQueue.cpp - Producer/consumer token stream ------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "lex/TokenBlockQueue.h"

#include "sched/ExecContext.h"

#include <cassert>

using namespace m2c;

TokenBlock *TokenBlockPool::acquire() {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (!FreeList.empty()) {
    TokenBlock *B = FreeList.back();
    FreeList.pop_back();
    return B;
  }
  Storage.push_back(std::make_unique<TokenBlock>());
  return Storage.back().get();
}

void TokenBlockPool::release(TokenBlock *B) {
  assert(B && "releasing null block");
  std::lock_guard<std::mutex> Lock(Mutex);
  FreeList.push_back(B);
}

size_t TokenBlockPool::blocksAllocated() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Storage.size();
}

TokenBlockQueue::~TokenBlockQueue() {
  // No readers may touch the queue once it is being destroyed, so every
  // block can go back to the pool (or the heap).
  for (BlockSlot &S : Blocks) {
    if (!S.Data)
      continue;
    if (Pool)
      Pool->release(S.Data);
    else
      delete S.Data;
  }
}

TokenBlockQueue::BlockSlot &TokenBlockQueue::slotAt(size_t BlockIdx) {
  while (Blocks.size() <= BlockIdx) {
    BlockSlot S;
    S.Ready = sched::makeEvent(Name + ".block" + std::to_string(Blocks.size()),
                               sched::EventKind::Barrier);
    Blocks.push_back(std::move(S));
  }
  return Blocks[BlockIdx];
}

void TokenBlockQueue::startBlock() {
  TokenBlock *Fresh = Pool ? Pool->acquire() : new TokenBlock();
  size_t BlockIdx = ProducerNext / BlockCap;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    BlockSlot &S = slotAt(BlockIdx);
    assert(!S.Data && !S.Ready->isSignaled() && "restarting published block");
    S.Data = Fresh;
  }
  CurBlock = Fresh;
  CurFill = 0;
}

void TokenBlockQueue::publishCurrent() {
  assert(CurBlock && CurFill > 0 && "publishing empty block");
  size_t BlockIdx = (ProducerNext - 1) / BlockCap;
  sched::EventPtr Ready;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    BlockSlot &S = slotAt(BlockIdx);
    S.Count = CurFill;
    Ready = S.Ready;
  }
  CurBlock = nullptr;
  CurFill = 0;
  // The event signal is the publication point: readers observe Count and
  // the block contents only after seeing Ready signaled.
  sched::ctx().charge(sched::CostKind::QueueBlock);
  sched::ctx().signal(*Ready);
}

void TokenBlockQueue::finish(SourceLocation EofLoc) {
  assert(!Finished && "finish called twice");
  Token Eof;
  Eof.Kind = TokenKind::Eof;
  Eof.Loc = EofLoc;
  for (unsigned I = 0; I < EofPad; ++I)
    append(Eof);
  if (CurBlock)
    publishCurrent();
  Finished = true;
}

const Token &TokenBlockQueue::tokenAt(size_t Index,
                                      std::vector<Reader::SeenBlock> &Seen) {
  size_t BlockIdx = Index / BlockCap;
  size_t Offset = Index % BlockCap;
  if (BlockIdx >= Seen.size() || !Seen[BlockIdx].Tokens) {
    sched::EventPtr Ready;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Ready = slotAt(BlockIdx).Ready;
    }
    if (!Ready->isSignaled())
      sched::ctx().wait(*Ready);
    std::lock_guard<std::mutex> Lock(Mutex);
    BlockSlot &S = Blocks[BlockIdx];
    if (Seen.size() <= BlockIdx)
      Seen.resize(BlockIdx + 1);
    Seen[BlockIdx] = {S.Data->Tokens, S.Count};
  }
  const Reader::SeenBlock &B = Seen[BlockIdx];
  assert(Offset < B.Count &&
         "read past end of stream: lookahead exceeded the Eof pad");
  return B.Tokens[Offset];
}
