//===--- Lexer.h - Modula-2+ lexical analyzer -------------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Lexor task: scans one source file into tokens.  Lexor tasks never
/// block (paper section 2.3.3), which is what makes barrier-event
/// consumption of token queues deadlock-free.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_LEX_LEXER_H
#define M2C_LEX_LEXER_H

#include "lex/Token.h"
#include "lex/TokenBlockQueue.h"
#include "support/Diagnostics.h"
#include "support/StringInterner.h"
#include "support/VirtualFileSystem.h"

#include <array>
#include <cstdint>
#include <string_view>

namespace m2c {

/// Scans Modula-2+ source text into tokens.
class Lexer {
public:
  Lexer(const SourceBuffer &Buf, StringInterner &Interner,
        DiagnosticsEngine &Diags);

  /// Scans and returns the next token; returns Eof at end of input
  /// (repeatedly, if called again).
  Token lex();

  /// Lexor-task main loop: scans the whole file into \p Queue and
  /// finishes it.  Charges lexing costs to the current ExecContext.
  void lexAll(TokenBlockQueue &Queue);

  /// Current location (start of the next unscanned token).
  SourceLocation location() const {
    return SourceLocation(File, Line, Column);
  }

private:
  char peekChar(unsigned Ahead = 0) const;
  char bump();
  /// Advances to \p NewPos across a run known to contain no newlines
  /// (identifier/number bodies), skipping per-char line accounting.
  void bumpRun(size_t NewPos);
  bool atEnd() const { return Pos >= Text.size(); }
  void skipWhitespaceAndComments();

  Token makeToken(TokenKind Kind, SourceLocation Loc) const;
  Token lexIdentifierOrKeyword(SourceLocation Loc);
  Token lexNumber(SourceLocation Loc);
  Token lexString(SourceLocation Loc, char Quote);
  Token lexPunctuation(SourceLocation Loc);

  /// Interns an identifier spelling through a small direct-mapped cache,
  /// skipping the interner's shard lock when the same spelling recurs
  /// (source text re-mentions the same names constantly).  Cached keys
  /// point into \p Text, which outlives the lexer.
  Symbol internIdent(std::string_view Spelling);

  struct CachedIdent {
    const char *Data = nullptr;
    uint32_t Len = 0;
    Symbol Sym;
  };
  static constexpr size_t IdentCacheSize = 512; // power of two

  std::string_view Text;
  FileId File;
  StringInterner &Interner;
  DiagnosticsEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
  uint64_t CharsSinceCharge = 0;
  std::array<CachedIdent, IdentCacheSize> IdentCache{};
};

} // namespace m2c

#endif // M2C_LEX_LEXER_H
