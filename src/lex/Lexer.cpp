//===--- Lexer.cpp - Modula-2+ lexical analyzer ---------------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "lex/Lexer.h"

#include "sched/ExecContext.h"

#include <cassert>
#include <cctype>
#include <cstdlib>
#include <string>
#include <unordered_map>

using namespace m2c;

const char *m2c::tokenKindName(TokenKind Kind) {
  switch (Kind) {
#define TOK(Name)                                                              \
  case TokenKind::Name:                                                        \
    return #Name;
#include "lex/TokenKinds.def"
  }
  return "Invalid";
}

std::string_view m2c::tokenKindSpelling(TokenKind Kind) {
  switch (Kind) {
#define KEYWORD(Name, Spelling)                                                \
  case TokenKind::Name:                                                        \
    return Spelling;
#define PUNCT(Name, Spelling)                                                  \
  case TokenKind::Name:                                                        \
    return Spelling;
#include "lex/TokenKinds.def"
  default:
    return "";
  }
}

bool m2c::isKeyword(TokenKind Kind) {
  switch (Kind) {
#define KEYWORD(Name, Spelling) case TokenKind::Name:
#include "lex/TokenKinds.def"
    return true;
  default:
    return false;
  }
}

namespace {

/// Reserved-word table; built on first use.
const std::unordered_map<std::string_view, TokenKind> &keywordTable() {
  static const std::unordered_map<std::string_view, TokenKind> Table = {
#define KEYWORD(Name, Spelling) {Spelling, TokenKind::Name},
#include "lex/TokenKinds.def"
  };
  return Table;
}

bool isIdentStart(char C) { return std::isalpha(static_cast<unsigned char>(C)); }
bool isIdentCont(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}
bool isDigit(char C) { return C >= '0' && C <= '9'; }
bool isHexDigit(char C) { return isDigit(C) || (C >= 'A' && C <= 'F'); }

} // namespace

Lexer::Lexer(const SourceBuffer &Buf, StringInterner &Interner,
             DiagnosticsEngine &Diags)
    : Text(Buf.Text), File(Buf.Id), Interner(Interner), Diags(Diags) {}

char Lexer::peekChar(unsigned Ahead) const {
  size_t Index = Pos + Ahead;
  return Index < Text.size() ? Text[Index] : '\0';
}

char Lexer::bump() {
  assert(!atEnd() && "bump past end of input");
  char C = Text[Pos++];
  ++CharsSinceCharge;
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

void Lexer::skipWhitespaceAndComments() {
  unsigned CommentDepth = 0;
  SourceLocation CommentStart;
  while (!atEnd()) {
    char C = peekChar();
    if (CommentDepth > 0) {
      if (C == '*' && peekChar(1) == ')') {
        bump();
        bump();
        --CommentDepth;
        continue;
      }
      if (C == '(' && peekChar(1) == '*') {
        bump();
        bump();
        ++CommentDepth; // Modula-2 comments nest.
        continue;
      }
      bump();
      continue;
    }
    if (C == '(' && peekChar(1) == '*') {
      CommentStart = location();
      bump();
      bump();
      ++CommentDepth;
      continue;
    }
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n' || C == '\f' ||
        C == '\v') {
      bump();
      continue;
    }
    return;
  }
  if (CommentDepth > 0)
    Diags.error(CommentStart, "unterminated comment");
}

Token Lexer::makeToken(TokenKind Kind, SourceLocation Loc) const {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  return T;
}

Token Lexer::lex() {
  skipWhitespaceAndComments();
  SourceLocation Loc = location();
  if (atEnd()) {
    sched::ctx().charge(sched::CostKind::LexChar, CharsSinceCharge);
    CharsSinceCharge = 0;
    return makeToken(TokenKind::Eof, Loc);
  }

  char C = peekChar();
  Token Result;
  if (isIdentStart(C))
    Result = lexIdentifierOrKeyword(Loc);
  else if (isDigit(C))
    Result = lexNumber(Loc);
  else if (C == '\'' || C == '"') {
    bump();
    Result = lexString(Loc, C);
  } else {
    Result = lexPunctuation(Loc);
  }

  sched::ctx().charge(sched::CostKind::LexChar, CharsSinceCharge);
  sched::ctx().charge(sched::CostKind::LexToken);
  CharsSinceCharge = 0;
  return Result;
}

Token Lexer::lexIdentifierOrKeyword(SourceLocation Loc) {
  size_t Start = Pos;
  while (!atEnd() && isIdentCont(peekChar()))
    bump();
  std::string_view Spelling = Text.substr(Start, Pos - Start);
  auto It = keywordTable().find(Spelling);
  if (It != keywordTable().end())
    return makeToken(It->second, Loc);
  Token T = makeToken(TokenKind::Identifier, Loc);
  T.Ident = Interner.intern(Spelling);
  return T;
}

Token Lexer::lexNumber(SourceLocation Loc) {
  size_t Start = Pos;
  // Scan the longest run of hex digits; its interpretation depends on the
  // trailing marker (H = hex, B = octal, C = char code, none = decimal).
  while (!atEnd() && isHexDigit(peekChar()))
    bump();

  char Marker = atEnd() ? '\0' : peekChar();
  std::string_view Digits = Text.substr(Start, Pos - Start);

  if (Marker == 'H') {
    bump();
    Token T = makeToken(TokenKind::IntLiteral, Loc);
    T.IntValue = std::strtoll(std::string(Digits).c_str(), nullptr, 16);
    return T;
  }

  auto AllOctalDigits = [](std::string_view S) {
    for (char D : S)
      if (D < '0' || D > '7')
        return false;
    return !S.empty();
  };

  // The octal markers 'B' (integer) and 'C' (character code) are
  // themselves hexadecimal digits, so they end up *inside* the scanned
  // run: "777B" scans as the four "hex digits" 7,7,7,B.  Peel a trailing
  // B/C off when everything before it is octal.
  if (Digits.size() >= 2 &&
      (Digits.back() == 'B' || Digits.back() == 'C') &&
      AllOctalDigits(Digits.substr(0, Digits.size() - 1))) {
    char Suffix = Digits.back();
    Digits.remove_suffix(1);
    Token T = makeToken(Suffix == 'C' ? TokenKind::CharLiteral
                                      : TokenKind::IntLiteral,
                        Loc);
    T.IntValue = std::strtoll(std::string(Digits).c_str(), nullptr, 8);
    return T;
  }

  bool AllDecimal = true;
  for (char D : Digits)
    if (!isDigit(D))
      AllDecimal = false;

  if (!AllDecimal) {
    Diags.error(Loc, "hexadecimal constant requires a trailing 'H'");
    Token T = makeToken(TokenKind::IntLiteral, Loc);
    T.IntValue = std::strtoll(std::string(Digits).c_str(), nullptr, 16);
    return T;
  }

  // A '.' begins a real literal unless it is the '..' range operator.
  if (Marker == '.' && peekChar(1) != '.') {
    bump(); // '.'
    size_t FracStart = Pos;
    while (!atEnd() && isDigit(peekChar()))
      bump();
    if (!atEnd() && peekChar() == 'E') {
      bump();
      if (!atEnd() && (peekChar() == '+' || peekChar() == '-'))
        bump();
      if (atEnd() || !isDigit(peekChar()))
        Diags.error(location(), "missing exponent digits in real constant");
      while (!atEnd() && isDigit(peekChar()))
        bump();
    }
    (void)FracStart;
    Token T = makeToken(TokenKind::RealLiteral, Loc);
    T.RealValue =
        std::strtod(std::string(Text.substr(Start, Pos - Start)).c_str(),
                    nullptr);
    return T;
  }

  Token T = makeToken(TokenKind::IntLiteral, Loc);
  T.IntValue = std::strtoll(std::string(Digits).c_str(), nullptr, 10);
  return T;
}

Token Lexer::lexString(SourceLocation Loc, char Quote) {
  size_t Start = Pos;
  while (!atEnd() && peekChar() != Quote && peekChar() != '\n')
    bump();
  std::string_view Body = Text.substr(Start, Pos - Start);
  if (atEnd() || peekChar() != Quote)
    Diags.error(Loc, "unterminated string constant");
  else
    bump(); // closing quote
  // A single-character string is a character literal in Modula-2.
  if (Body.size() == 1) {
    Token T = makeToken(TokenKind::CharLiteral, Loc);
    T.IntValue = static_cast<unsigned char>(Body[0]);
    T.Ident = Interner.intern(Body);
    return T;
  }
  Token T = makeToken(TokenKind::StringLiteral, Loc);
  T.Ident = Interner.intern(Body);
  return T;
}

Token Lexer::lexPunctuation(SourceLocation Loc) {
  char C = bump();
  auto TwoChar = [&](char Second, TokenKind Two, TokenKind One) {
    if (!atEnd() && peekChar() == Second) {
      bump();
      return makeToken(Two, Loc);
    }
    return makeToken(One, Loc);
  };
  switch (C) {
  case '+':
    return makeToken(TokenKind::Plus, Loc);
  case '-':
    return makeToken(TokenKind::Minus, Loc);
  case '*':
    return makeToken(TokenKind::Star, Loc);
  case '/':
    return makeToken(TokenKind::Slash, Loc);
  case ':':
    return TwoChar('=', TokenKind::Assign, TokenKind::Colon);
  case '&':
    return makeToken(TokenKind::Ampersand, Loc);
  case '.':
    return TwoChar('.', TokenKind::DotDot, TokenKind::Dot);
  case ',':
    return makeToken(TokenKind::Comma, Loc);
  case ';':
    return makeToken(TokenKind::Semi, Loc);
  case '(':
    return makeToken(TokenKind::LParen, Loc);
  case ')':
    return makeToken(TokenKind::RParen, Loc);
  case '[':
    return makeToken(TokenKind::LBracket, Loc);
  case ']':
    return makeToken(TokenKind::RBracket, Loc);
  case '{':
    return makeToken(TokenKind::LBrace, Loc);
  case '}':
    return makeToken(TokenKind::RBrace, Loc);
  case '^':
    return makeToken(TokenKind::Caret, Loc);
  case '=':
    return makeToken(TokenKind::Equal, Loc);
  case '#':
    return makeToken(TokenKind::Hash, Loc);
  case '<':
    if (!atEnd() && peekChar() == '=') {
      bump();
      return makeToken(TokenKind::LessEq, Loc);
    }
    return TwoChar('>', TokenKind::NotEqual, TokenKind::Less);
  case '>':
    return TwoChar('=', TokenKind::GreaterEq, TokenKind::Greater);
  case '~':
    return makeToken(TokenKind::Tilde, Loc);
  case '|':
    return makeToken(TokenKind::Bar, Loc);
  default:
    Diags.error(Loc, std::string("unexpected character '") + C + "'");
    return makeToken(TokenKind::Unknown, Loc);
  }
}

void Lexer::lexAll(TokenBlockQueue &Queue) {
  while (true) {
    Token T = lex();
    if (T.isEof()) {
      Queue.finish(T.Loc);
      return;
    }
    Queue.append(T);
  }
}
