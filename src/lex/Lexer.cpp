//===--- Lexer.cpp - Modula-2+ lexical analyzer ---------------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "lex/Lexer.h"

#include "sched/ExecContext.h"

#include <array>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace m2c;

const char *m2c::tokenKindName(TokenKind Kind) {
  switch (Kind) {
#define TOK(Name)                                                              \
  case TokenKind::Name:                                                        \
    return #Name;
#include "lex/TokenKinds.def"
  }
  return "Invalid";
}

std::string_view m2c::tokenKindSpelling(TokenKind Kind) {
  switch (Kind) {
#define KEYWORD(Name, Spelling)                                                \
  case TokenKind::Name:                                                        \
    return Spelling;
#define PUNCT(Name, Spelling)                                                  \
  case TokenKind::Name:                                                        \
    return Spelling;
#include "lex/TokenKinds.def"
  default:
    return "";
  }
}

bool m2c::isKeyword(TokenKind Kind) {
  switch (Kind) {
#define KEYWORD(Name, Spelling) case TokenKind::Name:
#include "lex/TokenKinds.def"
    return true;
  default:
    return false;
  }
}

namespace {

/// Reserved-word lookup, bucketed by (first letter, length).  Every
/// bucket holds at most three keywords (RECORD/REPEAT/RETURN), so a
/// probe is a couple of memcmps on short strings — much cheaper than
/// hashing the spelling into an unordered_map, and this probe runs once
/// per uppercase-looking identifier.
struct KeywordBuckets {
  struct Entry {
    std::string_view Spelling;
    TokenKind Kind = TokenKind::Identifier;
  };
  struct Bucket {
    std::array<Entry, 3> Entries;
    unsigned Count = 0;
  };
  // Keywords are 2..14 chars (13 lengths) starting with A..Z.
  std::array<Bucket, 26 * 13> Buckets;

  static unsigned index(char First, size_t Len) {
    return static_cast<unsigned>(First - 'A') * 13 +
           static_cast<unsigned>(Len - 2);
  }

  KeywordBuckets() {
#define KEYWORD(Name, Spelling) add(Spelling, TokenKind::Name);
#include "lex/TokenKinds.def"
  }

  void add(std::string_view Spelling, TokenKind Kind) {
    Bucket &B = Buckets[index(Spelling.front(), Spelling.size())];
    assert(B.Count < B.Entries.size() && "keyword bucket overflow");
    B.Entries[B.Count++] = {Spelling, Kind};
  }
};

const KeywordBuckets &keywordBuckets() {
  static const KeywordBuckets Table;
  return Table;
}

/// Branch-free character classification.  The scan loops run once per
/// source character; a table load beats the libc ctype machinery (which
/// chases the locale pointer on every call).
enum : uint8_t {
  CCIdentStart = 1 << 0, // A-Z a-z
  CCIdentCont = 1 << 1,  // A-Z a-z 0-9 _
};

constexpr std::array<uint8_t, 256> CharClass = [] {
  std::array<uint8_t, 256> T{};
  for (unsigned C = 'A'; C <= 'Z'; ++C)
    T[C] = CCIdentStart | CCIdentCont;
  for (unsigned C = 'a'; C <= 'z'; ++C)
    T[C] = CCIdentStart | CCIdentCont;
  for (unsigned C = '0'; C <= '9'; ++C)
    T[C] = CCIdentCont;
  T['_'] = CCIdentCont;
  return T;
}();

bool isIdentStart(char C) {
  return CharClass[static_cast<unsigned char>(C)] & CCIdentStart;
}
bool isIdentCont(char C) {
  return CharClass[static_cast<unsigned char>(C)] & CCIdentCont;
}
bool isDigit(char C) { return C >= '0' && C <= '9'; }
bool isHexDigit(char C) { return isDigit(C) || (C >= 'A' && C <= 'F'); }

/// Parses a run of digits already validated for \p Base (hex digits use
/// the uppercase Modula-2 alphabet).  Avoids the std::string temporary a
/// strtoll call would need for NUL termination.
int64_t parseIntRun(std::string_view Digits, unsigned Base) {
  uint64_t Value = 0;
  for (char D : Digits) {
    unsigned Digit =
        D <= '9' ? static_cast<unsigned>(D - '0')
                 : static_cast<unsigned>(D - 'A') + 10;
    Value = Value * Base + Digit;
  }
  return static_cast<int64_t>(Value);
}

/// Every reserved word is 2..14 uppercase letters, so most identifiers
/// (anything lowercase-initial, single-letter, or long) can skip the
/// keyword hash probe entirely.
bool maybeKeyword(std::string_view Spelling) {
  return Spelling.size() >= 2 && Spelling.size() <= 14 &&
         Spelling.front() >= 'A' && Spelling.front() <= 'Z' &&
         Spelling.back() >= 'A' && Spelling.back() <= 'Z';
}

} // namespace

Lexer::Lexer(const SourceBuffer &Buf, StringInterner &Interner,
             DiagnosticsEngine &Diags)
    : Text(Buf.Text), File(Buf.Id), Interner(Interner), Diags(Diags) {}

char Lexer::peekChar(unsigned Ahead) const {
  size_t Index = Pos + Ahead;
  return Index < Text.size() ? Text[Index] : '\0';
}

char Lexer::bump() {
  assert(!atEnd() && "bump past end of input");
  char C = Text[Pos++];
  ++CharsSinceCharge;
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

void Lexer::skipWhitespaceAndComments() {
  unsigned CommentDepth = 0;
  SourceLocation CommentStart;
  while (!atEnd()) {
    char C = peekChar();
    if (CommentDepth > 0) {
      if (C == '*' && peekChar(1) == ')') {
        bump();
        bump();
        --CommentDepth;
        continue;
      }
      if (C == '(' && peekChar(1) == '*') {
        bump();
        bump();
        ++CommentDepth; // Modula-2 comments nest.
        continue;
      }
      bump();
      continue;
    }
    if (C == '(' && peekChar(1) == '*') {
      CommentStart = location();
      bump();
      bump();
      ++CommentDepth;
      continue;
    }
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n' || C == '\f' ||
        C == '\v') {
      bump();
      continue;
    }
    return;
  }
  if (CommentDepth > 0)
    Diags.error(CommentStart, "unterminated comment");
}

Token Lexer::makeToken(TokenKind Kind, SourceLocation Loc) const {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  return T;
}

Token Lexer::lex() {
  skipWhitespaceAndComments();
  SourceLocation Loc = location();
  if (atEnd()) {
    sched::ctx().charge(sched::CostKind::LexChar, CharsSinceCharge);
    CharsSinceCharge = 0;
    return makeToken(TokenKind::Eof, Loc);
  }

  char C = peekChar();
  Token Result;
  if (isIdentStart(C))
    Result = lexIdentifierOrKeyword(Loc);
  else if (isDigit(C))
    Result = lexNumber(Loc);
  else if (C == '\'' || C == '"') {
    bump();
    Result = lexString(Loc, C);
  } else {
    Result = lexPunctuation(Loc);
  }

  // One thread-local context lookup per token, not one per charge.
  sched::ExecContext &Ctx = sched::ctx();
  Ctx.charge(sched::CostKind::LexChar, CharsSinceCharge);
  Ctx.charge(sched::CostKind::LexToken);
  CharsSinceCharge = 0;
  return Result;
}

void Lexer::bumpRun(size_t NewPos) {
  // The scanned run is known to contain no newlines, so line accounting
  // reduces to one column adjustment.
  Column += static_cast<uint32_t>(NewPos - Pos);
  CharsSinceCharge += NewPos - Pos;
  Pos = NewPos;
}

Token Lexer::lexIdentifierOrKeyword(SourceLocation Loc) {
  size_t Start = Pos;
  size_t End = Pos;
  while (End < Text.size() && isIdentCont(Text[End]))
    ++End;
  bumpRun(End);
  std::string_view Spelling = Text.substr(Start, End - Start);
  if (maybeKeyword(Spelling)) {
    const KeywordBuckets::Bucket &B =
        keywordBuckets()
            .Buckets[KeywordBuckets::index(Spelling.front(), Spelling.size())];
    for (unsigned I = 0; I < B.Count; ++I)
      if (std::memcmp(B.Entries[I].Spelling.data(), Spelling.data(),
                      Spelling.size()) == 0)
        return makeToken(B.Entries[I].Kind, Loc);
  }
  Token T = makeToken(TokenKind::Identifier, Loc);
  T.Ident = internIdent(Spelling);
  return T;
}

Symbol Lexer::internIdent(std::string_view Spelling) {
  // FNV-1a; identifiers are short, so this costs a few cycles and lets
  // repeat mentions bypass the interner's hash + shard lock entirely.
  uint64_t Hash = 1469598103934665603ull;
  for (char C : Spelling)
    Hash = (Hash ^ static_cast<unsigned char>(C)) * 1099511628211ull;
  CachedIdent &E = IdentCache[Hash & (IdentCacheSize - 1)];
  if (E.Data && E.Len == Spelling.size() &&
      (E.Data == Spelling.data() ||
       std::memcmp(E.Data, Spelling.data(), E.Len) == 0))
    return E.Sym;
  Symbol Sym = Interner.intern(Spelling);
  E.Data = Spelling.data();
  E.Len = static_cast<uint32_t>(Spelling.size());
  E.Sym = Sym;
  return Sym;
}

Token Lexer::lexNumber(SourceLocation Loc) {
  size_t Start = Pos;
  // Scan the longest run of hex digits; its interpretation depends on the
  // trailing marker (H = hex, B = octal, C = char code, none = decimal).
  size_t End = Pos;
  while (End < Text.size() && isHexDigit(Text[End]))
    ++End;
  bumpRun(End);

  char Marker = atEnd() ? '\0' : peekChar();
  std::string_view Digits = Text.substr(Start, Pos - Start);

  if (Marker == 'H') {
    bump();
    Token T = makeToken(TokenKind::IntLiteral, Loc);
    T.IntValue = parseIntRun(Digits, 16);
    return T;
  }

  auto AllOctalDigits = [](std::string_view S) {
    for (char D : S)
      if (D < '0' || D > '7')
        return false;
    return !S.empty();
  };

  // The octal markers 'B' (integer) and 'C' (character code) are
  // themselves hexadecimal digits, so they end up *inside* the scanned
  // run: "777B" scans as the four "hex digits" 7,7,7,B.  Peel a trailing
  // B/C off when everything before it is octal.
  if (Digits.size() >= 2 &&
      (Digits.back() == 'B' || Digits.back() == 'C') &&
      AllOctalDigits(Digits.substr(0, Digits.size() - 1))) {
    char Suffix = Digits.back();
    Digits.remove_suffix(1);
    Token T = makeToken(Suffix == 'C' ? TokenKind::CharLiteral
                                      : TokenKind::IntLiteral,
                        Loc);
    T.IntValue = parseIntRun(Digits, 8);
    return T;
  }

  bool AllDecimal = true;
  for (char D : Digits)
    if (!isDigit(D))
      AllDecimal = false;

  if (!AllDecimal) {
    Diags.error(Loc, "hexadecimal constant requires a trailing 'H'");
    Token T = makeToken(TokenKind::IntLiteral, Loc);
    T.IntValue = parseIntRun(Digits, 16);
    return T;
  }

  // A '.' begins a real literal unless it is the '..' range operator.
  if (Marker == '.' && peekChar(1) != '.') {
    bump(); // '.'
    size_t FracStart = Pos;
    while (!atEnd() && isDigit(peekChar()))
      bump();
    if (!atEnd() && peekChar() == 'E') {
      bump();
      if (!atEnd() && (peekChar() == '+' || peekChar() == '-'))
        bump();
      if (atEnd() || !isDigit(peekChar()))
        Diags.error(location(), "missing exponent digits in real constant");
      while (!atEnd() && isDigit(peekChar()))
        bump();
    }
    (void)FracStart;
    Token T = makeToken(TokenKind::RealLiteral, Loc);
    // strtod needs NUL termination and must not read past the literal
    // (the next source char could extend its grammar, e.g. a lowercase
    // 'e'); a stack buffer covers every realistic literal length.
    std::string_view Literal = Text.substr(Start, Pos - Start);
    char Buf[64];
    if (Literal.size() < sizeof(Buf)) {
      std::memcpy(Buf, Literal.data(), Literal.size());
      Buf[Literal.size()] = '\0';
      T.RealValue = std::strtod(Buf, nullptr);
    } else {
      T.RealValue = std::strtod(std::string(Literal).c_str(), nullptr);
    }
    return T;
  }

  Token T = makeToken(TokenKind::IntLiteral, Loc);
  T.IntValue = parseIntRun(Digits, 10);
  return T;
}

Token Lexer::lexString(SourceLocation Loc, char Quote) {
  size_t Start = Pos;
  while (!atEnd() && peekChar() != Quote && peekChar() != '\n')
    bump();
  std::string_view Body = Text.substr(Start, Pos - Start);
  if (atEnd() || peekChar() != Quote)
    Diags.error(Loc, "unterminated string constant");
  else
    bump(); // closing quote
  // A single-character string is a character literal in Modula-2.
  if (Body.size() == 1) {
    Token T = makeToken(TokenKind::CharLiteral, Loc);
    T.IntValue = static_cast<unsigned char>(Body[0]);
    T.Ident = Interner.intern(Body);
    return T;
  }
  Token T = makeToken(TokenKind::StringLiteral, Loc);
  T.Ident = Interner.intern(Body);
  return T;
}

Token Lexer::lexPunctuation(SourceLocation Loc) {
  char C = bump();
  auto TwoChar = [&](char Second, TokenKind Two, TokenKind One) {
    if (!atEnd() && peekChar() == Second) {
      bump();
      return makeToken(Two, Loc);
    }
    return makeToken(One, Loc);
  };
  switch (C) {
  case '+':
    return makeToken(TokenKind::Plus, Loc);
  case '-':
    return makeToken(TokenKind::Minus, Loc);
  case '*':
    return makeToken(TokenKind::Star, Loc);
  case '/':
    return makeToken(TokenKind::Slash, Loc);
  case ':':
    return TwoChar('=', TokenKind::Assign, TokenKind::Colon);
  case '&':
    return makeToken(TokenKind::Ampersand, Loc);
  case '.':
    return TwoChar('.', TokenKind::DotDot, TokenKind::Dot);
  case ',':
    return makeToken(TokenKind::Comma, Loc);
  case ';':
    return makeToken(TokenKind::Semi, Loc);
  case '(':
    return makeToken(TokenKind::LParen, Loc);
  case ')':
    return makeToken(TokenKind::RParen, Loc);
  case '[':
    return makeToken(TokenKind::LBracket, Loc);
  case ']':
    return makeToken(TokenKind::RBracket, Loc);
  case '{':
    return makeToken(TokenKind::LBrace, Loc);
  case '}':
    return makeToken(TokenKind::RBrace, Loc);
  case '^':
    return makeToken(TokenKind::Caret, Loc);
  case '=':
    return makeToken(TokenKind::Equal, Loc);
  case '#':
    return makeToken(TokenKind::Hash, Loc);
  case '<':
    if (!atEnd() && peekChar() == '=') {
      bump();
      return makeToken(TokenKind::LessEq, Loc);
    }
    return TwoChar('>', TokenKind::NotEqual, TokenKind::Less);
  case '>':
    return TwoChar('=', TokenKind::GreaterEq, TokenKind::Greater);
  case '~':
    return makeToken(TokenKind::Tilde, Loc);
  case '|':
    return makeToken(TokenKind::Bar, Loc);
  default:
    Diags.error(Loc, std::string("unexpected character '") + C + "'");
    return makeToken(TokenKind::Unknown, Loc);
  }
}

void Lexer::lexAll(TokenBlockQueue &Queue) {
  while (true) {
    Token T = lex();
    if (T.isEof()) {
      Queue.finish(T.Loc);
      return;
    }
    Queue.append(T);
  }
}
