//===--- Token.h - Modula-2+ lexical tokens ---------------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#ifndef M2C_LEX_TOKEN_H
#define M2C_LEX_TOKEN_H

#include "support/SourceLocation.h"
#include "support/StringInterner.h"

#include <cstdint>
#include <string_view>

namespace m2c {

/// All token kinds; see TokenKinds.def.
enum class TokenKind : uint8_t {
#define TOK(Name) Name,
#include "lex/TokenKinds.def"
};

/// Returns a stable printable name ("KwBegin", "Identifier", ...).
const char *tokenKindName(TokenKind Kind);

/// Returns the fixed spelling of keywords/punctuation, or "" for variable
/// tokens (identifiers, literals).
std::string_view tokenKindSpelling(TokenKind Kind);

/// True for reserved words.
bool isKeyword(TokenKind Kind);

/// One lexical token.
///
/// Identifiers and string literals carry their interned spelling; numeric
/// and character literals carry their value.
struct Token {
  TokenKind Kind = TokenKind::Unknown;
  SourceLocation Loc;
  Symbol Ident;            ///< Identifier or string-literal spelling.
  int64_t IntValue = 0;    ///< Integer or character-literal value.
  double RealValue = 0.0;  ///< Real-literal value.

  bool is(TokenKind K) const { return Kind == K; }
  bool isNot(TokenKind K) const { return Kind != K; }
  bool isEof() const { return Kind == TokenKind::Eof; }
};

} // namespace m2c

#endif // M2C_LEX_TOKEN_H
