//===--- TokenBlockQueue.h - Producer/consumer token stream ----*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "The Splitter task and the Lexor task of a main module stream
/// communicate via a lexical token queue.  The elements in this queue are
/// blocks of tokens.  Each block is associated with one event.  When the
/// Lexor fills a token block, the block's event is signaled, indicating
/// to the Splitter that it now may begin to read the tokens of that
/// block." (paper section 2.3.1)
///
/// Consumers wait on block events with *barrier* semantics (section
/// 2.3.3): the worker is not rescheduled, because producers (Lexor and
/// Splitter tasks) never block and are started before their consumers.
/// A queue supports multiple independent readers — the main module's
/// token stream is consumed by both the Splitter and the Importer.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_LEX_TOKENBLOCKQUEUE_H
#define M2C_LEX_TOKENBLOCKQUEUE_H

#include "lex/Token.h"
#include "sched/Event.h"

#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace m2c {

/// Multi-reader token stream delivered in event-guarded blocks.
class TokenBlockQueue {
public:
  /// Tokens per block.
  static constexpr size_t BlockCap = 64;

  /// Number of Eof tokens appended by finish().  Bounds the lookahead a
  /// reader may use: peek(Ahead) requires Ahead < EofPad.
  static constexpr unsigned EofPad = 8;

  explicit TokenBlockQueue(std::string Name) : Name(std::move(Name)) {}
  TokenBlockQueue(const TokenBlockQueue &) = delete;
  TokenBlockQueue &operator=(const TokenBlockQueue &) = delete;

  //===--- Producer side (single producer) -------------------------------===//

  /// Appends \p T, publishing the current block (signaling its event) when
  /// it fills.
  void append(const Token &T);

  /// Appends EofPad Eof tokens (so reader lookahead never runs off the
  /// end) and publishes the final block.  Must be called exactly once.
  void finish(SourceLocation EofLoc);

  //===--- Consumer side (any number of independent readers) -------------===//

  /// An independent read position over the queue.  Crossing into a block
  /// the producer hasn't published yet waits (barrier) on that block's
  /// event.
  class Reader {
  public:
    explicit Reader(TokenBlockQueue &Q) : Q(&Q) {}

    /// The token \p Ahead positions past the cursor, without advancing.
    /// peek(0) is the next token; \p Ahead must be < EofPad.
    const Token &peek(unsigned Ahead = 0) {
      return Q->tokenAt(Next + Ahead, SeenBlocks);
    }

    /// Consumes and returns the next token.  At end-of-stream returns Eof
    /// without advancing further.
    const Token &next() {
      const Token &T = Q->tokenAt(Next, SeenBlocks);
      if (!T.isEof())
        ++Next;
      return T;
    }

    /// Index of the next unread token.
    size_t position() const { return Next; }

  private:
    TokenBlockQueue *Q;
    size_t Next = 0;
    // Blocks this reader has already synchronized with; reads through
    // these pointers need no locking (published blocks are immutable).
    std::vector<const std::vector<Token> *> SeenBlocks;
  };

  const std::string &name() const { return Name; }

  /// Total tokens appended so far, excluding the Eof pad.  Producer-side
  /// count; meaningful to other tasks only after the producer finished.
  size_t producedTokens() const { return Produced; }

private:
  struct Block {
    std::vector<Token> Tokens;
    sched::EventPtr Ready;
  };

  const Token &tokenAt(size_t Index,
                       std::vector<const std::vector<Token> *> &Seen);

  /// Returns the block at \p BlockIdx, creating it (and its event) if
  /// neither side has touched it yet.  Caller holds Mutex.
  Block &blockAt(size_t BlockIdx);

  void publishCurrent();

  const std::string Name;
  std::mutex Mutex;
  std::deque<Block> Blocks; // stable addresses under push_back
  size_t Produced = 0;      // producer-local; no lock needed
  size_t ProducerNext = 0;  // index of next token to append
  bool Finished = false;
};

} // namespace m2c

#endif // M2C_LEX_TOKENBLOCKQUEUE_H
