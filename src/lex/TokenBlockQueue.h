//===--- TokenBlockQueue.h - Producer/consumer token stream ----*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "The Splitter task and the Lexor task of a main module stream
/// communicate via a lexical token queue.  The elements in this queue are
/// blocks of tokens.  Each block is associated with one event.  When the
/// Lexor fills a token block, the block's event is signaled, indicating
/// to the Splitter that it now may begin to read the tokens of that
/// block." (paper section 2.3.1)
///
/// Consumers wait on block events with *barrier* semantics (section
/// 2.3.3): the worker is not rescheduled, because producers (Lexor and
/// Splitter tasks) never block and are started before their consumers.
/// A queue supports multiple independent readers — the main module's
/// token stream is consumed by both the Splitter and the Importer.
///
/// Block storage is a fixed Token[BlockCap] array drawn from an optional
/// TokenBlockPool, so the producer's steady state is one array store per
/// token: the queue lock is taken once per *block* (to publish it), not
/// once per token, and finished queues recycle their block storage for
/// the next stream of the same compilation.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_LEX_TOKENBLOCKQUEUE_H
#define M2C_LEX_TOKENBLOCKQUEUE_H

#include "lex/Token.h"
#include "sched/Event.h"

#include <cassert>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace m2c {

/// Fixed-capacity token block storage.  Published blocks are immutable,
/// so readers access Tokens without locking once the block's event has
/// been observed signaled.
struct TokenBlock {
  /// Tokens per block.
  static constexpr size_t Cap = 64;

  Token Tokens[Cap];
};

/// Recycles TokenBlock storage across the token queues of one
/// compilation.  Queues draw blocks from the pool as the producer fills
/// them and return every block when the queue is destroyed, so a
/// compilation's peak block count — not its total token count — bounds
/// the allocations.  Thread-safe: concurrently running streams share one
/// pool.
class TokenBlockPool {
public:
  TokenBlockPool() = default;
  TokenBlockPool(const TokenBlockPool &) = delete;
  TokenBlockPool &operator=(const TokenBlockPool &) = delete;

  /// Pops a free block, allocating a fresh one when the free list is
  /// empty.  Contents are unspecified; the producer overwrites.
  TokenBlock *acquire();

  /// Returns \p B to the free list.  \p B must have come from acquire()
  /// on this pool, and no reader may touch it afterwards.
  void release(TokenBlock *B);

  /// Total blocks ever allocated (recycled blocks count once).
  size_t blocksAllocated() const;

private:
  mutable std::mutex Mutex;
  std::vector<std::unique_ptr<TokenBlock>> Storage; ///< Owns every block.
  std::vector<TokenBlock *> FreeList;
};

/// Multi-reader token stream delivered in event-guarded blocks.
class TokenBlockQueue {
public:
  /// Tokens per block.
  static constexpr size_t BlockCap = TokenBlock::Cap;

  /// Number of Eof tokens appended by finish().  Bounds the lookahead a
  /// reader may use: peek(Ahead) requires Ahead < EofPad, so a reader
  /// positioned on the final real token can still peek at EofPad - 1
  /// in-bounds tokens.  The pad must fit inside one block so a reader's
  /// maximum lookahead never reaches past the last published block.
  static constexpr unsigned EofPad = 8;
  static_assert(EofPad < BlockCap,
                "Eof pad must fit within a single token block; a larger "
                "pad would let peek() cross past the final published "
                "block and wait on an event no producer will signal");

  /// \p Pool, when given, supplies (and on destruction receives back)
  /// this queue's block storage; it must outlive the queue.  Without a
  /// pool the queue heap-allocates blocks itself.
  explicit TokenBlockQueue(std::string Name, TokenBlockPool *Pool = nullptr)
      : Name(std::move(Name)), Pool(Pool) {}
  TokenBlockQueue(const TokenBlockQueue &) = delete;
  TokenBlockQueue &operator=(const TokenBlockQueue &) = delete;
  ~TokenBlockQueue();

  //===--- Producer side (single producer) -------------------------------===//

  /// Appends \p T, publishing the current block (signaling its event) when
  /// it fills.  Steady state is lock-free: the producer owns the current
  /// block exclusively until it publishes it.
  void append(const Token &T) {
    assert(!Finished && "append after finish");
    if (!CurBlock)
      startBlock();
    CurBlock->Tokens[CurFill++] = T;
    ++ProducerNext;
    if (!T.isEof())
      ++Produced;
    if (CurFill == BlockCap)
      publishCurrent();
  }

  /// Appends EofPad Eof tokens (so reader lookahead never runs off the
  /// end) and publishes the final block.  Must be called exactly once.
  void finish(SourceLocation EofLoc);

  //===--- Consumer side (any number of independent readers) -------------===//

  /// An independent read position over the queue.  Crossing into a block
  /// the producer hasn't published yet waits (barrier) on that block's
  /// event.
  class Reader {
  public:
    explicit Reader(TokenBlockQueue &Q) : Q(&Q) {}

    /// The token \p Ahead positions past the cursor, without advancing.
    /// peek(0) is the next token; \p Ahead must be < EofPad.
    const Token &peek(unsigned Ahead = 0) {
      return Q->tokenAt(Next + Ahead, SeenBlocks);
    }

    /// Consumes and returns the next token.  At end-of-stream returns Eof
    /// without advancing further.
    const Token &next() {
      const Token &T = Q->tokenAt(Next, SeenBlocks);
      if (!T.isEof())
        ++Next;
      return T;
    }

    /// Index of the next unread token.
    size_t position() const { return Next; }

  private:
    /// One synchronized-with block: reads through Tokens need no locking
    /// (published blocks are immutable).
    struct SeenBlock {
      const Token *Tokens = nullptr;
      size_t Count = 0;
    };

    TokenBlockQueue *Q;
    size_t Next = 0;
    std::vector<SeenBlock> SeenBlocks;

    friend class TokenBlockQueue;
  };

  const std::string &name() const { return Name; }

  /// Total tokens appended so far, excluding the Eof pad.  Producer-side
  /// count; meaningful to other tasks only after the producer finished.
  size_t producedTokens() const { return Produced; }

private:
  /// Per-block bookkeeping shared between producer and readers; guarded
  /// by Mutex except where noted.
  struct BlockSlot {
    TokenBlock *Data = nullptr; ///< Set by the producer on block start.
    size_t Count = 0;           ///< Valid once Ready is signaled.
    sched::EventPtr Ready;      ///< Created lazily by either side.
  };

  const Token &tokenAt(size_t Index, std::vector<Reader::SeenBlock> &Seen);

  /// Returns the slot at \p BlockIdx, creating it (and its event) if
  /// neither side has touched it yet.  Caller holds Mutex.
  BlockSlot &slotAt(size_t BlockIdx);

  /// Producer: acquires storage for the block containing ProducerNext.
  void startBlock();

  /// Producer: records the block's final Count and signals its event.
  void publishCurrent();

  const std::string Name;
  TokenBlockPool *const Pool;
  std::mutex Mutex;
  std::deque<BlockSlot> Blocks;
  // Producer-local state; no lock needed (single producer).
  TokenBlock *CurBlock = nullptr;
  size_t CurFill = 0;
  size_t Produced = 0;
  size_t ProducerNext = 0; ///< Index of next token to append.
  bool Finished = false;
};

} // namespace m2c

#endif // M2C_LEX_TOKENBLOCKQUEUE_H
