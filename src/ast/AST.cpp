//===--- AST.cpp - AST helpers --------------------------------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "ast/Decl.h"

using namespace m2c::ast;

Node::~Node() = default;

const char *m2c::ast::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::RealDiv:
    return "/";
  case BinaryOp::IntDiv:
    return "DIV";
  case BinaryOp::Mod:
    return "MOD";
  case BinaryOp::And:
    return "AND";
  case BinaryOp::Or:
    return "OR";
  case BinaryOp::Equal:
    return "=";
  case BinaryOp::NotEqual:
    return "<>";
  case BinaryOp::Less:
    return "<";
  case BinaryOp::LessEq:
    return "<=";
  case BinaryOp::Greater:
    return ">";
  case BinaryOp::GreaterEq:
    return ">=";
  case BinaryOp::In:
    return "IN";
  }
  return "?";
}
