//===--- Stmt.h - Modula-2+ statement AST -----------------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statement parse trees are built by the Parser/Declarations-Analyzer
/// task but semantically analyzed later by the Statement-Analyzer/Code-
/// Generator task (paper section 3): fast processing of declarations
/// completes symbol tables early and resolves DKY blockages sooner.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_AST_STMT_H
#define M2C_AST_STMT_H

#include "ast/Expr.h"

namespace m2c::ast {

/// Statement node kinds.
enum class StmtKind : uint8_t {
  Assign,
  ProcCall,
  If,
  While,
  Repeat,
  For,
  Loop,
  Exit,
  Return,
  Case,
  With,
  TryExcept,
  Lock,
};

/// Base of all statements.
class Stmt : public Node {
public:
  StmtKind kind() const { return Kind; }

protected:
  Stmt(StmtKind Kind, SourceLocation Loc) : Node(Loc), Kind(Kind) {}

private:
  StmtKind Kind;
};

using StmtList = std::vector<Stmt *>;

/// designator := expr.
class AssignStmt final : public Stmt {
public:
  AssignStmt(SourceLocation Loc, Expr *Target, Expr *Value)
      : Stmt(StmtKind::Assign, Loc), Target(Target), Value(Value) {}

  Expr *target() const { return Target; }
  Expr *value() const { return Value; }

private:
  Expr *Target;
  Expr *Value;
};

/// A call used as a statement; Call is a CallExpr or a bare designator
/// (parameterless call).
class ProcCallStmt final : public Stmt {
public:
  ProcCallStmt(SourceLocation Loc, Expr *Call)
      : Stmt(StmtKind::ProcCall, Loc), Call(Call) {}

  Expr *call() const { return Call; }

private:
  Expr *Call;
};

/// One IF/ELSIF arm.
struct IfArm {
  Expr *Cond = nullptr;
  StmtList Body;
};

class IfStmt final : public Stmt {
public:
  IfStmt(SourceLocation Loc, std::vector<IfArm> Arms, StmtList ElseBody)
      : Stmt(StmtKind::If, Loc), Arms(std::move(Arms)),
        ElseBody(std::move(ElseBody)) {}

  const std::vector<IfArm> &arms() const { return Arms; }
  const StmtList &elseBody() const { return ElseBody; }

private:
  std::vector<IfArm> Arms;
  StmtList ElseBody;
};

class WhileStmt final : public Stmt {
public:
  WhileStmt(SourceLocation Loc, Expr *Cond, StmtList Body)
      : Stmt(StmtKind::While, Loc), Cond(Cond), Body(std::move(Body)) {}

  Expr *cond() const { return Cond; }
  const StmtList &body() const { return Body; }

private:
  Expr *Cond;
  StmtList Body;
};

class RepeatStmt final : public Stmt {
public:
  RepeatStmt(SourceLocation Loc, StmtList Body, Expr *Cond)
      : Stmt(StmtKind::Repeat, Loc), Body(std::move(Body)), Cond(Cond) {}

  const StmtList &body() const { return Body; }
  Expr *cond() const { return Cond; }

private:
  StmtList Body;
  Expr *Cond;
};

class ForStmt final : public Stmt {
public:
  ForStmt(SourceLocation Loc, Symbol Var, Expr *From, Expr *To, Expr *By,
          StmtList Body)
      : Stmt(StmtKind::For, Loc), Var(Var), From(From), To(To), By(By),
        Body(std::move(Body)) {}

  Symbol var() const { return Var; }
  Expr *from() const { return From; }
  Expr *to() const { return To; }
  Expr *by() const { return By; } ///< Null means BY 1.
  const StmtList &body() const { return Body; }

private:
  Symbol Var;
  Expr *From;
  Expr *To;
  Expr *By;
  StmtList Body;
};

class LoopStmt final : public Stmt {
public:
  LoopStmt(SourceLocation Loc, StmtList Body)
      : Stmt(StmtKind::Loop, Loc), Body(std::move(Body)) {}

  const StmtList &body() const { return Body; }

private:
  StmtList Body;
};

class ExitStmt final : public Stmt {
public:
  explicit ExitStmt(SourceLocation Loc) : Stmt(StmtKind::Exit, Loc) {}
};

class ReturnStmt final : public Stmt {
public:
  ReturnStmt(SourceLocation Loc, Expr *Value)
      : Stmt(StmtKind::Return, Loc), Value(Value) {}

  Expr *value() const { return Value; } ///< Null for plain RETURN.

private:
  Expr *Value;
};

/// One CASE label: a constant or a constant range.
struct CaseLabel {
  Expr *Lo = nullptr;
  Expr *Hi = nullptr; ///< Null for single values.
};

/// One CASE arm: labels and body.
struct CaseArm {
  std::vector<CaseLabel> Labels;
  StmtList Body;
};

class CaseStmt final : public Stmt {
public:
  CaseStmt(SourceLocation Loc, Expr *Subject, std::vector<CaseArm> Arms,
           StmtList ElseBody, bool HasElse)
      : Stmt(StmtKind::Case, Loc), Subject(Subject), Arms(std::move(Arms)),
        ElseBody(std::move(ElseBody)), HasElse(HasElse) {}

  Expr *subject() const { return Subject; }
  const std::vector<CaseArm> &arms() const { return Arms; }
  const StmtList &elseBody() const { return ElseBody; }
  bool hasElse() const { return HasElse; }

private:
  Expr *Subject;
  std::vector<CaseArm> Arms;
  StmtList ElseBody;
  bool HasElse;
};

/// WITH designator DO ... END: the record's fields become directly
/// visible, the "WITH" scope of the paper's Table 2.
class WithStmt final : public Stmt {
public:
  WithStmt(SourceLocation Loc, Expr *Record, StmtList Body)
      : Stmt(StmtKind::With, Loc), Record(Record), Body(std::move(Body)) {}

  Expr *record() const { return Record; }
  const StmtList &body() const { return Body; }

private:
  Expr *Record;
  StmtList Body;
};

/// Modula-2+ TRY ... EXCEPT ... END / TRY ... FINALLY ... END.  Compiled
/// structurally (the body runs; the handler is analyzed and compiled but
/// our MCode machine raises no exceptions).
class TryExceptStmt final : public Stmt {
public:
  TryExceptStmt(SourceLocation Loc, StmtList Body, StmtList Handler,
                bool IsFinally)
      : Stmt(StmtKind::TryExcept, Loc), Body(std::move(Body)),
        Handler(std::move(Handler)), IsFinally(IsFinally) {}

  const StmtList &body() const { return Body; }
  const StmtList &handler() const { return Handler; }
  bool isFinally() const { return IsFinally; }

private:
  StmtList Body;
  StmtList Handler;
  bool IsFinally;
};

/// Modula-2+ LOCK mutex DO ... END.  Compiled structurally.
class LockStmt final : public Stmt {
public:
  LockStmt(SourceLocation Loc, Expr *Mutex, StmtList Body)
      : Stmt(StmtKind::Lock, Loc), Mutex(Mutex), Body(std::move(Body)) {}

  Expr *mutex() const { return Mutex; }
  const StmtList &body() const { return Body; }

private:
  Expr *Mutex;
  StmtList Body;
};

} // namespace m2c::ast

#endif // M2C_AST_STMT_H
