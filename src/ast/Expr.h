//===--- Expr.h - Modula-2+ expression AST ----------------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#ifndef M2C_AST_EXPR_H
#define M2C_AST_EXPR_H

#include "ast/AST.h"
#include "lex/Token.h"

#include <cstdint>
#include <vector>

namespace m2c::ast {

/// Expression node kinds.
enum class ExprKind : uint8_t {
  IntLit,
  RealLit,
  CharLit,
  StringLit,
  Designator,
  Call,
  Unary,
  Binary,
  SetConstructor,
};

/// Base of all expressions.
class Expr : public Node {
public:
  ExprKind kind() const { return Kind; }

protected:
  Expr(ExprKind Kind, SourceLocation Loc) : Node(Loc), Kind(Kind) {}

private:
  ExprKind Kind;
};

/// Integer literal (also covers octal/hex forms).
class IntLitExpr final : public Expr {
public:
  IntLitExpr(SourceLocation Loc, int64_t Value)
      : Expr(ExprKind::IntLit, Loc), Value(Value) {}
  int64_t value() const { return Value; }

private:
  int64_t Value;
};

/// Real literal.
class RealLitExpr final : public Expr {
public:
  RealLitExpr(SourceLocation Loc, double Value)
      : Expr(ExprKind::RealLit, Loc), Value(Value) {}
  double value() const { return Value; }

private:
  double Value;
};

/// Character literal ('x' or 15C).
class CharLitExpr final : public Expr {
public:
  CharLitExpr(SourceLocation Loc, char Value)
      : Expr(ExprKind::CharLit, Loc), Value(Value) {}
  char value() const { return Value; }

private:
  char Value;
};

/// String literal; spelling is interned.
class StringLitExpr final : public Expr {
public:
  StringLitExpr(SourceLocation Loc, Symbol Value)
      : Expr(ExprKind::StringLit, Loc), Value(Value) {}
  Symbol value() const { return Value; }

private:
  Symbol Value;
};

/// One selector step applied to a designator.
struct Selector {
  enum class Kind : uint8_t { Field, Index, Deref } SelKind;
  SourceLocation Loc;
  Symbol Field;                 ///< For Field selectors.
  std::vector<Expr *> Indexes;  ///< For Index selectors (a[i, j]).
};

/// A (possibly qualified) name with selectors: Mod.Var^.field[i].
class DesignatorExpr final : public Expr {
public:
  DesignatorExpr(SourceLocation Loc, Symbol First)
      : Expr(ExprKind::Designator, Loc), First(First) {}

  /// The leading identifier.  Qualification (module prefix) is resolved
  /// during semantic analysis: a leading "Mod." where Mod names an
  /// imported module makes this a qualified reference.
  Symbol first() const { return First; }

  std::vector<Selector> &selectors() { return Selectors; }
  const std::vector<Selector> &selectors() const { return Selectors; }

private:
  Symbol First;
  std::vector<Selector> Selectors;
};

/// Procedure/function call (also covers type-conversion call syntax).
class CallExpr final : public Expr {
public:
  CallExpr(SourceLocation Loc, Expr *Callee, std::vector<Expr *> Args)
      : Expr(ExprKind::Call, Loc), Callee(Callee), Args(std::move(Args)) {}

  Expr *callee() const { return Callee; }
  const std::vector<Expr *> &args() const { return Args; }

private:
  Expr *Callee;
  std::vector<Expr *> Args;
};

/// Unary operator kinds.
enum class UnaryOp : uint8_t { Plus, Minus, Not };

class UnaryExpr final : public Expr {
public:
  UnaryExpr(SourceLocation Loc, UnaryOp Op, Expr *Operand)
      : Expr(ExprKind::Unary, Loc), Op(Op), Operand(Operand) {}

  UnaryOp op() const { return Op; }
  Expr *operand() const { return Operand; }

private:
  UnaryOp Op;
  Expr *Operand;
};

/// Binary operator kinds.
enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  RealDiv, ///< "/" (also set symmetric difference)
  IntDiv,  ///< DIV
  Mod,     ///< MOD
  And,
  Or,
  Equal,
  NotEqual,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  In,
};

const char *binaryOpSpelling(BinaryOp Op);

class BinaryExpr final : public Expr {
public:
  BinaryExpr(SourceLocation Loc, BinaryOp Op, Expr *Lhs, Expr *Rhs)
      : Expr(ExprKind::Binary, Loc), Op(Op), Lhs(Lhs), Rhs(Rhs) {}

  BinaryOp op() const { return Op; }
  Expr *lhs() const { return Lhs; }
  Expr *rhs() const { return Rhs; }

private:
  BinaryOp Op;
  Expr *Lhs;
  Expr *Rhs;
};

/// One element of a set constructor: a value or a range.
struct SetElement {
  Expr *Lo = nullptr;
  Expr *Hi = nullptr; ///< Null for single values.
};

/// Set constructor "{1, 3..5}" or "BITSET{1}".
class SetConstructorExpr final : public Expr {
public:
  SetConstructorExpr(SourceLocation Loc, Symbol TypeName,
                     std::vector<SetElement> Elements)
      : Expr(ExprKind::SetConstructor, Loc), TypeName(TypeName),
        Elements(std::move(Elements)) {}

  /// Optional set-type name prefix (empty for plain "{...}", = BITSET).
  Symbol typeName() const { return TypeName; }
  const std::vector<SetElement> &elements() const { return Elements; }

private:
  Symbol TypeName;
  std::vector<SetElement> Elements;
};

} // namespace m2c::ast

#endif // M2C_AST_EXPR_H
