//===--- TypeExpr.h - Syntactic type expressions ----------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#ifndef M2C_AST_TYPEEXPR_H
#define M2C_AST_TYPEEXPR_H

#include "ast/Expr.h"

namespace m2c::ast {

/// Type-expression node kinds.
enum class TypeExprKind : uint8_t {
  Named,
  Array,
  Record,
  Pointer,
  Enumeration,
  Subrange,
  Set,
  Proc,
};

/// Base of all syntactic type denotations.
class TypeExpr : public Node {
public:
  TypeExprKind kind() const { return Kind; }

protected:
  TypeExpr(TypeExprKind Kind, SourceLocation Loc) : Node(Loc), Kind(Kind) {}

private:
  TypeExprKind Kind;
};

/// A type named by a (possibly qualified) identifier: "INTEGER",
/// "Lists.List".
class NamedTypeExpr final : public TypeExpr {
public:
  NamedTypeExpr(SourceLocation Loc, Symbol Qualifier, Symbol Name)
      : TypeExpr(TypeExprKind::Named, Loc), Qualifier(Qualifier), Name(Name) {}

  /// Module qualifier, or the empty symbol.
  Symbol qualifier() const { return Qualifier; }
  Symbol name() const { return Name; }

private:
  Symbol Qualifier;
  Symbol Name;
};

/// ARRAY IndexType OF ElementType.
class ArrayTypeExpr final : public TypeExpr {
public:
  ArrayTypeExpr(SourceLocation Loc, TypeExpr *Index, TypeExpr *Element)
      : TypeExpr(TypeExprKind::Array, Loc), Index(Index), Element(Element) {}

  TypeExpr *index() const { return Index; }
  TypeExpr *element() const { return Element; }

private:
  TypeExpr *Index;
  TypeExpr *Element;
};

/// One field group of a record: "x, y: REAL".
struct FieldGroup {
  SourceLocation Loc;
  std::vector<Symbol> Names;
  TypeExpr *Type = nullptr;
};

/// RECORD ... END.
class RecordTypeExpr final : public TypeExpr {
public:
  RecordTypeExpr(SourceLocation Loc, std::vector<FieldGroup> Fields)
      : TypeExpr(TypeExprKind::Record, Loc), Fields(std::move(Fields)) {}

  const std::vector<FieldGroup> &fields() const { return Fields; }

private:
  std::vector<FieldGroup> Fields;
};

/// POINTER TO Pointee.
class PointerTypeExpr final : public TypeExpr {
public:
  PointerTypeExpr(SourceLocation Loc, TypeExpr *Pointee)
      : TypeExpr(TypeExprKind::Pointer, Loc), Pointee(Pointee) {}

  TypeExpr *pointee() const { return Pointee; }

private:
  TypeExpr *Pointee;
};

/// Enumeration "(red, green, blue)".
class EnumTypeExpr final : public TypeExpr {
public:
  EnumTypeExpr(SourceLocation Loc, std::vector<Symbol> Literals)
      : TypeExpr(TypeExprKind::Enumeration, Loc),
        Literals(std::move(Literals)) {}

  const std::vector<Symbol> &literals() const { return Literals; }

private:
  std::vector<Symbol> Literals;
};

/// Subrange "[lo .. hi]" with optional base type name.
class SubrangeTypeExpr final : public TypeExpr {
public:
  SubrangeTypeExpr(SourceLocation Loc, Symbol BaseName, Expr *Lo, Expr *Hi)
      : TypeExpr(TypeExprKind::Subrange, Loc), BaseName(BaseName), Lo(Lo),
        Hi(Hi) {}

  Symbol baseName() const { return BaseName; }
  Expr *low() const { return Lo; }
  Expr *high() const { return Hi; }

private:
  Symbol BaseName;
  Expr *Lo;
  Expr *Hi;
};

/// SET OF ElementType.
class SetTypeExpr final : public TypeExpr {
public:
  SetTypeExpr(SourceLocation Loc, TypeExpr *Element)
      : TypeExpr(TypeExprKind::Set, Loc), Element(Element) {}

  TypeExpr *element() const { return Element; }

private:
  TypeExpr *Element;
};

/// One formal-type slot of a procedure type.
struct FormalType {
  bool IsVar = false;
  bool IsOpenArray = false;
  TypeExpr *Type = nullptr;
};

/// PROCEDURE (formal types) [: ResultType].
class ProcTypeExpr final : public TypeExpr {
public:
  ProcTypeExpr(SourceLocation Loc, std::vector<FormalType> Formals,
               TypeExpr *Result)
      : TypeExpr(TypeExprKind::Proc, Loc), Formals(std::move(Formals)),
        Result(Result) {}

  const std::vector<FormalType> &formals() const { return Formals; }
  TypeExpr *result() const { return Result; }

private:
  std::vector<FormalType> Formals;
  TypeExpr *Result;
};

} // namespace m2c::ast

#endif // M2C_AST_TYPEEXPR_H
