//===--- AST.h - AST arena and common node base -----------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every compilation stream (definition module, main module body,
/// procedure) builds its own AST into its own arena, so streams never
/// contend on node allocation and node lifetime is tied to the stream.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_AST_AST_H
#define M2C_AST_AST_H

#include "support/Arena.h"
#include "support/SourceLocation.h"
#include "support/StringInterner.h"

#include <utility>
#include <vector>

namespace m2c::ast {

/// Root of all AST node classes.  Nodes are identified by per-hierarchy
/// Kind tags (no RTTI); the virtual destructor exists only so the arena
/// can own heterogeneous nodes.
class Node {
public:
  virtual ~Node();
  explicit Node(SourceLocation Loc) : Loc(Loc) {}

  SourceLocation location() const { return Loc; }

private:
  SourceLocation Loc;
};

/// Bump-style owner of one stream's AST nodes.
///
/// Node storage comes from a support::Arena (one pointer bump per node
/// instead of one malloc); the arena cannot run destructors itself, so
/// created nodes are remembered and destroyed — newest first — when the
/// ASTArena dies.  Not thread-safe: each stream's parser owns its arena.
class ASTArena {
public:
  ASTArena() = default;
  ASTArena(const ASTArena &) = delete;
  ASTArena &operator=(const ASTArena &) = delete;

  ~ASTArena() {
    for (auto It = Nodes.rbegin(), End = Nodes.rend(); It != End; ++It)
      (*It)->~Node();
  }

  /// Allocates a node owned by this arena.
  template <typename T, typename... Args> T *create(Args &&...As) {
    T *Raw = Mem.create<T>(std::forward<Args>(As)...);
    Nodes.push_back(Raw);
    return Raw;
  }

  size_t size() const { return Nodes.size(); }

  /// Bytes of node storage handed out so far.
  size_t bytesAllocated() const { return Mem.bytesAllocated(); }

private:
  support::Arena Mem;
  std::vector<Node *> Nodes;
};

} // namespace m2c::ast

#endif // M2C_AST_AST_H
