//===--- Decl.h - Modula-2+ declaration AST ---------------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#ifndef M2C_AST_DECL_H
#define M2C_AST_DECL_H

#include "ast/Stmt.h"
#include "ast/TypeExpr.h"

namespace m2c::ast {

/// Declaration node kinds.
enum class DeclKind : uint8_t {
  Const,
  Type,
  Var,
  ProcHeading, ///< Heading only: definition modules, and split streams.
  Proc,        ///< Heading plus body (sequential compilation path).
};

/// Base of all declarations.
class Decl : public Node {
public:
  DeclKind kind() const { return Kind; }

protected:
  Decl(DeclKind Kind, SourceLocation Loc) : Node(Loc), Kind(Kind) {}

private:
  DeclKind Kind;
};

/// CONST Name = Value;
class ConstDecl final : public Decl {
public:
  ConstDecl(SourceLocation Loc, Symbol Name, Expr *Value)
      : Decl(DeclKind::Const, Loc), Name(Name), Value(Value) {}

  Symbol name() const { return Name; }
  Expr *value() const { return Value; }

private:
  Symbol Name;
  Expr *Value;
};

/// TYPE Name = TypeExpr;  (TypeExpr null for opaque types in definition
/// modules: "TYPE T;")
class TypeDecl final : public Decl {
public:
  TypeDecl(SourceLocation Loc, Symbol Name, TypeExpr *Type)
      : Decl(DeclKind::Type, Loc), Name(Name), Type(Type) {}

  Symbol name() const { return Name; }
  TypeExpr *type() const { return Type; }

private:
  Symbol Name;
  TypeExpr *Type;
};

/// VAR a, b: T;
class VarDecl final : public Decl {
public:
  VarDecl(SourceLocation Loc, std::vector<Symbol> Names, TypeExpr *Type)
      : Decl(DeclKind::Var, Loc), Names(std::move(Names)), Type(Type) {}

  const std::vector<Symbol> &names() const { return Names; }
  TypeExpr *type() const { return Type; }

private:
  std::vector<Symbol> Names;
  TypeExpr *Type;
};

/// One formal-parameter group: "VAR x, y: REAL".
struct FormalParam {
  SourceLocation Loc;
  bool IsVar = false;
  bool IsOpenArray = false;
  std::vector<Symbol> Names;
  TypeExpr *Type = nullptr;
};

/// A procedure heading: name, formals, optional result type.
struct ProcHeading {
  SourceLocation Loc;
  Symbol Name;
  std::vector<FormalParam> Params;
  TypeExpr *Result = nullptr;
};

/// Heading-only procedure declaration: what a definition module declares,
/// and what the parent stream of a split-off procedure sees (paper
/// section 2.4, alternative 1: the heading is processed in the parent
/// scope).
class ProcHeadingDecl final : public Decl {
public:
  ProcHeadingDecl(SourceLocation Loc, ProcHeading Heading)
      : Decl(DeclKind::ProcHeading, Loc), Heading(std::move(Heading)) {}

  const ProcHeading &heading() const { return Heading; }

private:
  ProcHeading Heading;
};

/// A full procedure with declarations and body (used when compiling
/// sequentially, where no splitting occurs).
class ProcDecl final : public Decl {
public:
  ProcDecl(SourceLocation Loc, ProcHeading Heading, std::vector<Decl *> Decls,
           StmtList Body)
      : Decl(DeclKind::Proc, Loc), Heading(std::move(Heading)),
        Decls(std::move(Decls)), Body(std::move(Body)) {}

  const ProcHeading &heading() const { return Heading; }
  const std::vector<Decl *> &decls() const { return Decls; }
  const StmtList &body() const { return Body; }

private:
  ProcHeading Heading;
  std::vector<Decl *> Decls;
  StmtList Body;
};

/// One import request: "FROM M IMPORT a, b;" or "IMPORT M, N;".
struct ImportClause {
  SourceLocation Loc;
  Symbol FromModule;          ///< Non-empty for FROM imports.
  std::vector<Symbol> Names;  ///< Modules, or names within FromModule.
};

/// A parsed definition module.
struct DefinitionModule {
  SourceLocation Loc;
  Symbol Name;
  std::vector<ImportClause> Imports;
  std::vector<Symbol> Exports; ///< EXPORT QUALIFIED list (M2 2nd edition
                               ///< makes it optional; we accept both).
  std::vector<Decl *> Decls;
};

/// A parsed implementation (or program) module.
struct ImplementationModule {
  SourceLocation Loc;
  Symbol Name;
  bool IsImplementation = true;
  std::vector<ImportClause> Imports;
  std::vector<Decl *> Decls;
  StmtList Body;
};

} // namespace m2c::ast

#endif // M2C_AST_DECL_H
