//===--- WorkerProcess.cpp - one m2cd worker's lifecycle ------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "farm/WorkerProcess.h"

#include "net/RemoteClient.h"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace m2c;
using namespace m2c::farm;

std::unique_ptr<WorkerProcess> WorkerProcess::spawn(const WorkerSpec &Spec,
                                                    std::string &Err) {
  std::string Exe = findM2cd(Spec.M2cdPath);

  std::vector<std::string> Args;
  Args.push_back(Exe);
  Args.push_back("-worker");
  Args.push_back("-socket");
  Args.push_back(Spec.SocketPath);
  Args.push_back("-C");
  Args.push_back(Spec.Workspace);
  Args.push_back("-j");
  Args.push_back(std::to_string(Spec.Jobs));
  if (!Spec.CacheDir.empty()) {
    Args.push_back("-cache");
    Args.push_back(Spec.CacheDir);
  }
  if (Spec.MaxActive) {
    Args.push_back("-max-active");
    Args.push_back(std::to_string(Spec.MaxActive));
  }
  if (Spec.MaxPending) {
    Args.push_back("-max-pending");
    Args.push_back(std::to_string(Spec.MaxPending));
  }
  if (Spec.MemTierBytes != static_cast<size_t>(-1)) {
    Args.push_back("-mem-tier");
    Args.push_back(std::to_string(Spec.MemTierBytes));
  }
  if (Spec.PoolCap) {
    Args.push_back("-pool-cap");
    Args.push_back(std::to_string(Spec.PoolCap));
  }
  for (const std::string &A : Spec.ExtraArgs)
    Args.push_back(A);

  std::vector<char *> Argv;
  Argv.reserve(Args.size() + 1);
  for (std::string &A : Args)
    Argv.push_back(A.data());
  Argv.push_back(nullptr);

  pid_t Pid = ::fork();
  if (Pid < 0) {
    Err = "fork failed";
    return nullptr;
  }
  if (Pid == 0) {
    // Child.  Keep it async-signal-safe: setenv before exec is fine (we
    // are single-threaded post-fork as far as our own code goes; the
    // allocator locks are the usual fork caveat accepted by every
    // spawner of this shape).
    for (const auto &[Name, Value] : Spec.Env)
      ::setenv(Name.c_str(), Value.c_str(), 1);
    if (!Spec.InheritStdio) {
      int Null = ::open("/dev/null", O_RDWR);
      if (Null >= 0) {
        ::dup2(Null, STDOUT_FILENO);
        ::dup2(Null, STDERR_FILENO);
        if (Null > STDERR_FILENO)
          ::close(Null);
      }
    }
    ::execvp(Argv[0], Argv.data());
    ::_exit(127);
  }
  return std::unique_ptr<WorkerProcess>(new WorkerProcess(Pid));
}

WorkerProcess::~WorkerProcess() {
  if (Pid > 0 && !Reaped) {
    ::kill(Pid, SIGKILL);
    ::waitpid(Pid, nullptr, 0);
  }
}

bool WorkerProcess::alive() {
  if (Pid <= 0 || Reaped)
    return false;
  int St = 0;
  pid_t R = ::waitpid(Pid, &St, WNOHANG);
  if (R == Pid) {
    Reaped = true;
    return false;
  }
  return true;
}

void WorkerProcess::terminate() {
  if (Pid > 0 && !Reaped)
    ::kill(Pid, SIGTERM);
}

void WorkerProcess::kill() {
  if (Pid > 0 && !Reaped)
    ::kill(Pid, SIGKILL);
}

std::optional<int> WorkerProcess::waitExit(unsigned TimeoutMs) {
  if (Pid <= 0 || Reaped)
    return 0;
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMs);
  for (;;) {
    int St = 0;
    pid_t R = ::waitpid(Pid, &St, WNOHANG);
    if (R == Pid) {
      Reaped = true;
      return St;
    }
    if (std::chrono::steady_clock::now() >= Deadline)
      return std::nullopt;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

std::string m2c::farm::findM2cd(const std::string &Explicit) {
  if (!Explicit.empty())
    return Explicit;
  if (const char *Env = std::getenv("M2C_M2CD"); Env && *Env)
    return Env;
  // Relative to this executable: covers m2cfarm (build/src/farm/ next to
  // build/src/daemon/), test binaries (build/tests/) and bench binaries
  // (build/bench/).
  std::error_code EC;
  std::filesystem::path Self =
      std::filesystem::read_symlink("/proc/self/exe", EC);
  if (!EC) {
    std::filesystem::path Dir = Self.parent_path();
    for (const char *Rel :
         {"m2cd", "../daemon/m2cd", "../src/daemon/m2cd",
          "../../src/daemon/m2cd"}) {
      std::filesystem::path Candidate = Dir / Rel;
      if (std::filesystem::exists(Candidate, EC))
        return Candidate.lexically_normal().string();
    }
  }
  return "m2cd"; // PATH resolution at exec time.
}

bool m2c::farm::waitWorkerReady(const std::string &Address,
                                unsigned TimeoutMs, std::string &Err) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMs);
  std::string LastErr = "not attempted";
  for (;;) {
    std::string E;
    if (auto Client = net::RemoteClient::open(Address, E)) {
      if (Client->serverName().find("worker") == std::string::npos) {
        Err = "daemon at '" + Address + "' is not in worker mode (server '" +
              Client->serverName() + "')";
        return false;
      }
      if (Client->ping(E))
        return true;
      LastErr = "ping: " + E;
    } else {
      LastErr = E;
    }
    if (std::chrono::steady_clock::now() >= Deadline) {
      Err = "worker at '" + Address + "' not ready: " + LastErr;
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}
