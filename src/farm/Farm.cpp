//===--- Farm.cpp - affinity-sharded multi-process build farm -------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "farm/Farm.h"

#include <algorithm>
#include <chrono>
#include <filesystem>

#include <unistd.h>

using namespace m2c;
using namespace m2c::farm;
using namespace m2c::net;

Farm::Farm(FarmConfig Config) : Config(std::move(Config)) {}

Farm::~Farm() { stop(); }

unsigned Farm::affinityShard(const std::vector<std::string> &Roots,
                             unsigned N) {
  if (N == 0)
    return 0;
  std::vector<std::string> Sorted = Roots;
  std::sort(Sorted.begin(), Sorted.end());
  uint64_t H = 1469598103934665603ULL; // FNV-1a offset basis.
  for (const std::string &Root : Sorted) {
    for (char C : Root) {
      H ^= static_cast<unsigned char>(C);
      H *= 1099511628211ULL;
    }
    // Separator so {"AB"} and {"A","B"} hash apart.
    H ^= 0xff;
    H *= 1099511628211ULL;
  }
  return static_cast<unsigned>(H % N);
}

//===--- Worker lifecycle --------------------------------------------------===//

bool Farm::spawnWorker(WorkerSlot &Slot, std::string &Err) {
  WorkerSpec Spec = Config.Worker;
  Spec.SocketPath = Slot.SocketPath;
  Slot.Proc = WorkerProcess::spawn(Spec, Err);
  if (!Slot.Proc)
    return false;
  // Interruptible readiness wait: probe in short slices so stop() never
  // waits a full ReadyTimeoutMs behind a worker that will never come up.
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(Config.ReadyTimeoutMs);
  for (;;) {
    if (waitWorkerReady(Slot.SocketPath, /*TimeoutMs=*/200, Err))
      break;
    // Wrong-server is definitive, timeout is not.
    if (Err.find("not in worker mode") != std::string::npos ||
        StopHealth.load(std::memory_order_relaxed) ||
        std::chrono::steady_clock::now() >= Deadline) {
      Slot.Proc->kill();
      Slot.Proc->waitExit(1000);
      Slot.Proc.reset();
      return false;
    }
  }
  FarmStats.add("farm.workers.spawned");
  return true;
}

void Farm::healthLoop() {
  while (!StopHealth.load(std::memory_order_relaxed)) {
    {
      // Interruptible sleep: stop() must not wait out a long health
      // interval before it can tear the farm down.
      std::unique_lock<std::mutex> Lock(HealthM);
      HealthCv.wait_for(Lock,
                        std::chrono::milliseconds(Config.HealthIntervalMs),
                        [this] {
                          return StopHealth.load(std::memory_order_relaxed);
                        });
    }
    if (StopHealth.load(std::memory_order_relaxed))
      break;
    for (auto &SlotPtr : Slots) {
      WorkerSlot &Slot = *SlotPtr;
      std::lock_guard<std::mutex> Lock(Slot.ProcM);
      if (!Slot.Proc || Slot.Proc->alive())
        continue;
      FarmStats.add("farm.workers.died");
      if (!Config.AutoRespawn)
        continue;
      // The dead incarnation's parked connections point at a corpse;
      // clear them before anyone can check one out.
      Slot.Pool->clear();
      std::string Err;
      if (spawnWorker(Slot, Err)) {
        FarmStats.add("farm.workers.respawned");
      } else {
        // Retried on the next tick; relays meanwhile fail over to the
        // remaining workers.
        FarmStats.add("farm.workers.respawnfailed");
      }
    }
  }
}

std::string Farm::workerAddress(unsigned I) const {
  return I < Slots.size() ? Slots[I]->SocketPath : std::string();
}

pid_t Farm::workerPid(unsigned I) {
  if (I >= Slots.size())
    return -1;
  std::lock_guard<std::mutex> Lock(Slots[I]->ProcM);
  return Slots[I]->Proc ? Slots[I]->Proc->pid() : -1;
}

bool Farm::killWorker(unsigned I) {
  if (I >= Slots.size())
    return false;
  std::lock_guard<std::mutex> Lock(Slots[I]->ProcM);
  if (!Slots[I]->Proc)
    return false;
  FarmStats.add("farm.workers.killed");
  Slots[I]->Proc->kill();
  return true;
}

//===--- Startup / shutdown ------------------------------------------------===//

bool Farm::start(std::string &Err) {
  if (Started) {
    Err = "farm already started";
    return false;
  }
  if (Config.UnixSocketPath.empty() && !Config.EnableTcp) {
    Err = "no listener configured (need a unix socket path and/or TCP)";
    return false;
  }
  if (Config.Workers == 0) {
    Err = "a farm needs at least one worker";
    return false;
  }

  std::string Dir = Config.WorkerDir;
  if (Dir.empty())
    Dir = !Config.UnixSocketPath.empty()
              ? Config.UnixSocketPath + ".d"
              : "/tmp/m2cfarm." + std::to_string(::getpid());
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC) {
    Err = "cannot create worker socket dir '" + Dir + "': " + EC.message();
    return false;
  }

  for (unsigned I = 0; I < Config.Workers; ++I) {
    auto Slot = std::make_unique<WorkerSlot>();
    Slot->SocketPath = Dir + "/w" + std::to_string(I) + ".sock";
    Slot->Pool = std::make_unique<ClientPool>(Slot->SocketPath);
    Slots.push_back(std::move(Slot));
  }
  for (auto &Slot : Slots) {
    if (!spawnWorker(*Slot, Err)) {
      for (auto &S : Slots)
        if (S->Proc) {
          S->Proc->kill();
          S->Proc->waitExit(1000);
        }
      Slots.clear();
      return false;
    }
  }

  if (!Config.UnixSocketPath.empty()) {
    UnixListener = Listener::unixDomain(Config.UnixSocketPath, Err);
    if (!UnixListener.valid())
      return false;
  }
  if (Config.EnableTcp) {
    TcpListener = Listener::tcp(Config.TcpPort, Err);
    if (!TcpListener.valid())
      return false;
    TcpPortBound = TcpListener.port();
  }

  Started = true;
  HealthThread = std::thread([this] { healthLoop(); });
  if (UnixListener.valid())
    AcceptThreads.emplace_back([this] { acceptLoop(UnixListener); });
  if (TcpListener.valid())
    AcceptThreads.emplace_back([this] { acceptLoop(TcpListener); });
  return true;
}

void Farm::requestDrain() {
  Draining.store(true, std::memory_order_relaxed);
}

void Farm::stop() {
  if (!Started || Stopped) {
    // Even a farm that never start()ed fully may hold spawned workers.
    for (auto &S : Slots)
      if (S->Proc) {
        S->Proc->kill();
        S->Proc->waitExit(1000);
      }
    return;
  }
  Stopped = true;
  requestDrain();

  // Every accepted BUILD's one reply must be delivered before any
  // socket (or worker) is torn down — same contract as the daemon.
  {
    std::unique_lock<std::mutex> Lock(RelaysM);
    RelaysCv.wait(Lock, [this] {
      return PendingRelays.load(std::memory_order_relaxed) == 0;
    });
    reapRelayThreads(/*All=*/true);
  }

  Stopping.store(true, std::memory_order_relaxed);
  for (std::thread &T : AcceptThreads)
    T.join();
  AcceptThreads.clear();
  UnixListener.close();
  TcpListener.close();

  {
    std::lock_guard<std::mutex> Lock(ConnsM);
    for (auto &[Conn, Thread] : Conns) {
      Conn->Sock.shutdownBoth();
      Thread.join();
    }
    Conns.clear();
  }

  // Health thread off before touching worker processes.
  {
    std::lock_guard<std::mutex> Lock(HealthM);
    StopHealth.store(true, std::memory_order_relaxed);
  }
  HealthCv.notify_all();
  if (HealthThread.joinable())
    HealthThread.join();

  // Cascade the drain: SIGTERM everyone first (they drain in parallel),
  // then reap with a grace period, escalating to SIGKILL.
  for (auto &Slot : Slots) {
    std::lock_guard<std::mutex> Lock(Slot->ProcM);
    if (Slot->Proc)
      Slot->Proc->terminate();
  }
  for (auto &Slot : Slots) {
    std::lock_guard<std::mutex> Lock(Slot->ProcM);
    if (!Slot->Proc)
      continue;
    if (!Slot->Proc->waitExit(5000)) {
      Slot->Proc->kill();
      Slot->Proc->waitExit(1000);
    }
    Slot->Pool->clear();
  }
}

//===--- Stats -------------------------------------------------------------===//

std::map<std::string, uint64_t> Farm::statsSnapshot() {
  std::map<std::string, uint64_t> Merged = FarmStats.snapshot();
  Merged["farm.workers"] = Slots.size();
  uint64_t Opened = 0, Reused = 0;
  for (auto &Slot : Slots) {
    Opened += Slot->Pool->opened();
    Reused += Slot->Pool->reused();
  }
  Merged["farm.pool.opened"] = Opened;
  Merged["farm.pool.reused"] = Reused;
  return Merged;
}

std::map<std::string, uint64_t> Farm::aggregatedStats() {
  std::map<std::string, uint64_t> Merged = statsSnapshot();
  for (auto &Slot : Slots) {
    std::string Err;
    auto Client = Slot->Pool->acquire(Err);
    std::map<std::string, uint64_t> Stats;
    if (Client && Client->stats(Stats, Err)) {
      Slot->Pool->release(std::move(Client));
      for (const auto &[Name, Value] : Stats)
        Merged[Name] += Value;
    } else {
      // Worker mid-respawn: its counters are simply absent this round.
      FarmStats.add("farm.stats.unreachable");
      Merged["farm.stats.unreachable"] += 1;
    }
  }
  return Merged;
}

//===--- Accepting (mirrors Daemon::acceptLoop) ----------------------------===//

void Farm::acceptLoop(net::Listener &L) {
  while (!Stopping.load(std::memory_order_relaxed)) {
    Socket S;
    switch (L.acceptFor(/*TimeoutMs=*/100, S)) {
    case Listener::AcceptStatus::TimedOut:
      continue;
    case Listener::AcceptStatus::Error:
      return;
    case Listener::AcceptStatus::Accepted:
      break;
    }
    if (Draining.load(std::memory_order_relaxed)) {
      FarmStats.add("farm.connections.draining");
      S.sendFrame(encode(ErrorMsg{Status::Draining, "farm is draining"}));
      continue;
    }
    if (ActiveConns.load(std::memory_order_relaxed) >= Config.MaxConnections) {
      FarmStats.add("farm.connections.shed");
      S.sendFrame(encode(
          ErrorMsg{Status::RejectedOverload, "connection limit reached"}));
      continue;
    }
    auto Conn = std::make_shared<Connection>();
    Conn->Sock = std::move(S);
    ActiveConns.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> Lock(ConnsM);
    for (size_t I = 0; I < Conns.size();) {
      if (Conns[I].first->ReaderDone.load(std::memory_order_acquire)) {
        Conns[I].second.join();
        Conns.erase(Conns.begin() + static_cast<ptrdiff_t>(I));
      } else {
        ++I;
      }
    }
    Conns.emplace_back(Conn,
                       std::thread([this, Conn] { serveConnection(Conn); }));
  }
}

//===--- Per-connection protocol -------------------------------------------===//

void Farm::sendFrame(Connection &Conn, const Frame &F) {
  std::lock_guard<std::mutex> Lock(Conn.WriteM);
  if (!Conn.Sock.sendFrame(F))
    FarmStats.add("farm.replies.sendfailed");
}

bool Farm::handshake(Connection &Conn) {
  Frame F;
  if (Conn.Sock.recvFrame(F) != Socket::RecvStatus::Ok)
    return false;
  HelloMsg Hello;
  if (!decode(F, Hello)) {
    FarmStats.add("farm.frames.malformed");
    sendFrame(Conn, encode(ErrorMsg{Status::Malformed,
                                    "expected HELLO as the first frame"}));
    return false;
  }
  if (Hello.MinVersion > ProtocolVersion ||
      Hello.MaxVersion < ProtocolVersion) {
    sendFrame(Conn, encode(ErrorMsg{Status::UnsupportedVersion,
                                    "server implements only version " +
                                        std::to_string(ProtocolVersion)}));
    return false;
  }
  sendFrame(Conn, encode(WelcomeMsg{ProtocolVersion, "m2cfarm/1"}));
  FarmStats.add("farm.connections.accepted");
  return true;
}

void Farm::serveConnection(std::shared_ptr<Connection> Conn) {
  if (handshake(*Conn)) {
    bool Fatal = false;
    while (!Fatal) {
      Frame F;
      Socket::RecvStatus RS = Conn->Sock.recvFrame(F);
      if (RS == Socket::RecvStatus::Closed)
        break;
      if (RS == Socket::RecvStatus::Truncated) {
        FarmStats.add("farm.frames.truncated");
        break;
      }
      if (RS == Socket::RecvStatus::TooLarge) {
        FarmStats.add("farm.frames.toolarge");
        sendFrame(*Conn, encode(ErrorMsg{Status::FrameTooLarge,
                                         "frame exceeds 64 MiB"}));
        break;
      }
      if (RS == Socket::RecvStatus::Malformed) {
        FarmStats.add("farm.frames.malformed");
        sendFrame(*Conn,
                  encode(ErrorMsg{Status::Malformed, "zero-length frame"}));
        break;
      }
      if (RS != Socket::RecvStatus::Ok)
        break;

      switch (F.Type) {
      case MsgType::Build: {
        BuildRequestMsg Msg;
        if (!decode(F, Msg)) {
          FarmStats.add("farm.frames.malformed");
          sendFrame(*Conn, encode(ErrorMsg{Status::Malformed,
                                           "undecodable BUILD payload"}));
          Fatal = true;
          break;
        }
        handleBuild(Conn, std::move(Msg));
        break;
      }
      case MsgType::Cancel: {
        CancelMsg Msg;
        if (!decode(F, Msg)) {
          FarmStats.add("farm.frames.malformed");
          sendFrame(*Conn, encode(ErrorMsg{Status::Malformed,
                                           "undecodable CANCEL payload"}));
          Fatal = true;
          break;
        }
        handleCancel(Conn, Msg);
        break;
      }
      case MsgType::Stats: {
        StatsResultMsg Msg;
        for (const auto &[Name, Value] : aggregatedStats())
          Msg.Counters.emplace_back(Name, Value);
        sendFrame(*Conn, encode(Msg));
        break;
      }
      case MsgType::Ping: {
        PingMsg Msg;
        if (decode(F, Msg))
          sendFrame(*Conn, encodePong(Msg.Token));
        break;
      }
      default:
        FarmStats.add("farm.frames.unknown");
        sendFrame(*Conn, encode(ErrorMsg{Status::UnknownType,
                                         "unknown message type"}));
        break;
      }
    }
  }
  Conn->Sock.shutdownBoth();
  ActiveConns.fetch_sub(1, std::memory_order_relaxed);
  Conn->ReaderDone.store(true, std::memory_order_release);
}

//===--- Relaying ----------------------------------------------------------===//

void Farm::handleBuild(const std::shared_ptr<Connection> &Conn,
                       BuildRequestMsg Msg) {
  auto Refuse = [&](Status St, const char *Counter) {
    FarmStats.add(Counter);
    BuildResultMsg Out;
    Out.RequestId = Msg.RequestId;
    Out.St = St;
    sendFrame(*Conn, encode(Out));
  };

  {
    std::lock_guard<std::mutex> Lock(RelaysM);
    if (Draining.load(std::memory_order_relaxed)) {
      Refuse(Status::Draining, "farm.requests.draining");
      return;
    }
    if (PendingRelays.load(std::memory_order_relaxed) >=
        Config.MaxPendingRelays) {
      Refuse(Status::RejectedOverload, "farm.requests.shed");
      return;
    }
    PendingRelays.fetch_add(1, std::memory_order_relaxed);
  }

  auto State = std::make_shared<RelayState>();
  State->Id = Msg.RequestId;
  State->Conn = Conn;
  {
    std::lock_guard<std::mutex> Lock(Conn->ReqM);
    if (!Conn->InFlight.emplace(Msg.RequestId, State).second) {
      PendingRelays.fetch_sub(1, std::memory_order_relaxed);
      RelaysCv.notify_all();
      FarmStats.add("farm.frames.malformed");
      sendFrame(*Conn, encode(ErrorMsg{Status::Malformed,
                                       "request id already in flight"}));
      Conn->Sock.shutdownBoth();
      return;
    }
  }
  FarmStats.add("farm.requests.received");

  std::lock_guard<std::mutex> Lock(RelaysM);
  reapRelayThreads(/*All=*/false);
  auto Done = std::make_shared<std::atomic<bool>>(false);
  RelayThreads.emplace_back(
      Done, std::thread([this, State, Msg = std::move(Msg), Done]() mutable {
        relay(std::move(State), std::move(Msg));
        Done->store(true, std::memory_order_release);
      }));
}

unsigned Farm::routeWorker(unsigned Shard, bool &Spilled) {
  Spilled = false;
  unsigned Load = Slots[Shard]->InFlight.load(std::memory_order_relaxed);
  if (Load < Config.SpillThreshold)
    return Shard;
  unsigned Best = Shard, BestLoad = Load;
  for (unsigned I = 0; I < Slots.size(); ++I) {
    unsigned L = Slots[I]->InFlight.load(std::memory_order_relaxed);
    if (L < BestLoad) {
      Best = I;
      BestLoad = L;
    }
  }
  Spilled = Best != Shard;
  return Best;
}

void Farm::relay(std::shared_ptr<RelayState> State, BuildRequestMsg Msg) {
  const unsigned N = static_cast<unsigned>(Slots.size());
  const uint64_t ClientId = State->Id;
  const unsigned Shard = affinityShard(Msg.Roots, N);
  bool Spilled = false;
  const unsigned W = routeWorker(Shard, Spilled);
  FarmStats.add(Spilled ? "farm.requests.spilled" : "farm.requests.affinity");
  FarmStats.add("farm.worker." + std::to_string(W) + ".routed");

  auto Finish = [&](BuildResultMsg Result) {
    Result.RequestId = ClientId;
    const char *Counter = Result.St == Status::Ok ? "farm.requests.ok"
                          : Result.St == Status::BuildFailed
                              ? "farm.requests.failed"
                              : "farm.requests.othered";
    if (!tryReply(*State, Result, Counter))
      FarmStats.add("farm.requests.abandoned");
    std::lock_guard<std::mutex> Lock(RelaysM);
    PendingRelays.fetch_sub(1, std::memory_order_relaxed);
    RelaysCv.notify_all();
  };

  // Fast path: a pooled persistent connection to the routed worker.
  ErrorCategory Cat = ErrorCategory::None;
  {
    WorkerSlot &Slot = *Slots[W];
    Slot.InFlight.fetch_add(1, std::memory_order_relaxed);
    std::string Err;
    auto Client = Slot.Pool->acquire(Err, &Cat);
    bool Ok = false;
    BuildResultMsg Result;
    if (Client) {
      // The relay owns its upstream conversation, so the upstream id
      // only needs uniqueness within that connection.
      Msg.RequestId = Client->nextRequestId();
      Ok = Client->build(Msg, Result, Err);
      if (Ok)
        Slot.Pool->release(std::move(Client));
      else
        Cat = Client->lastErrorCategory(); // Client dropped: conversation
                                           // is poisoned.
    }
    Slot.InFlight.fetch_sub(1, std::memory_order_relaxed);
    if (Ok) {
      Cat = categorize(Result.St);
      if (!isRetryable(Cat)) {
        Finish(std::move(Result));
        return;
      }
      // Retryable worker verdict (overload shed, drain, internal): fall
      // through to land it on a sibling.
    }
  }

  // The client may have cancelled while the fast path was failing; a
  // failover for an already-answered request is pure waste.
  if (State->Replied.load(std::memory_order_acquire)) {
    FarmStats.add("farm.requests.abandoned");
    std::lock_guard<std::mutex> Lock(RelaysM);
    PendingRelays.fetch_sub(1, std::memory_order_relaxed);
    RelaysCv.notify_all();
    return;
  }

  // Failover: rotate the remaining workers under the jittered backoff
  // policy.  Fresh connection per attempt (buildWithRetry's contract) —
  // pooled sockets into a dead incarnation are exactly what we are
  // escaping.  Safe to replay because BUILD is idempotent.
  FarmStats.add("farm.requests.retried");
  auto Provider = [this, W, N](unsigned Attempt) {
    return Slots[(W + 1 + Attempt) % N]->SocketPath;
  };
  BuildResultMsg Result;
  RemoteBuildOutcome Outcome =
      buildWithRetry(Provider, Msg, Config.Retry, Result);
  for (const auto &[RetryCat, Count] : Outcome.Retries)
    FarmStats.add(std::string("farm.retries.") + errorCategoryName(RetryCat),
                  Count);
  if (Outcome.Delivered) {
    FarmStats.add("farm.requests.failover");
    Finish(std::move(Result));
    return;
  }

  // Gave up: map the last failure category onto the protocol status the
  // client would have seen talking to a lone overloaded/draining/broken
  // daemon.  Transport-ish failures become INTERNAL, which is retryable
  // client-side.
  FarmStats.add("farm.requests.gaveup");
  BuildResultMsg Out;
  Out.St = Outcome.Category == ErrorCategory::Overload
               ? Status::RejectedOverload
           : Outcome.Category == ErrorCategory::Draining ? Status::Draining
                                                         : Status::Internal;
  if (Out.St == Status::Internal)
    Out.Diagnostics = "farm: relay failed after " +
                      std::to_string(Outcome.Attempts + 1) + " attempts (" +
                      errorCategoryName(Outcome.Category) +
                      (Outcome.Err.empty() ? "" : ": " + Outcome.Err) + ")\n";
  Finish(std::move(Out));
}

void Farm::handleCancel(const std::shared_ptr<Connection> &Conn,
                        const CancelMsg &Msg) {
  std::shared_ptr<RelayState> State;
  {
    std::lock_guard<std::mutex> Lock(Conn->ReqM);
    auto It = Conn->InFlight.find(Msg.RequestId);
    if (It != Conn->InFlight.end())
      State = It->second;
  }
  if (!State) {
    FarmStats.add("farm.cancels.unknown");
    return;
  }
  // Client-side semantics only (PROTOCOL.md §7): the upstream build may
  // run to completion on its worker — its artifacts warm the shared
  // cache — but this client's one reply is CANCELLED if we win the race.
  State->Abandoned.store(true, std::memory_order_release);
  BuildResultMsg Out;
  Out.RequestId = Msg.RequestId;
  Out.St = Status::Cancelled;
  tryReply(*State, Out, "farm.requests.cancelled");
}

bool Farm::tryReply(RelayState &S, const BuildResultMsg &M,
                    const char *Counter) {
  if (S.Replied.exchange(true, std::memory_order_acq_rel))
    return false;
  FarmStats.add(Counter);
  sendFrame(*S.Conn, encode(M));
  std::lock_guard<std::mutex> Lock(S.Conn->ReqM);
  S.Conn->InFlight.erase(S.Id);
  return true;
}

void Farm::reapRelayThreads(bool All) {
  for (size_t I = 0; I < RelayThreads.size();) {
    if (All || RelayThreads[I].first->load(std::memory_order_acquire)) {
      RelayThreads[I].second.join();
      RelayThreads.erase(RelayThreads.begin() + static_cast<ptrdiff_t>(I));
    } else {
      ++I;
    }
  }
}
