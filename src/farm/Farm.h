//===--- Farm.h - affinity-sharded multi-process build farm -----*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-process scaling rung above the daemon (DESIGN.md §15): a
/// coordinator that speaks the ordinary docs/PROTOCOL.md wire protocol
/// to clients and relays every BUILD to one of N `m2cd -worker`
/// processes over pooled upstream connections.  The farm protocol is a
/// composition layer, not a new protocol — a client cannot tell a
/// coordinator from a daemon (same frames, same invariants, same
/// exactly-one-BUILD_RESULT guarantee).
///
/// Routing: requests shard by module-graph affinity — a hash of the
/// request's sorted root set, which over one shared workspace uniquely
/// identifies the root-module closure — so each worker keeps seeing the
/// same projects and its SharedInterfacePool and memory cache tier stay
/// hot for exactly its shard.  A saturated shard spills to the
/// least-loaded worker; correctness is unaffected (any worker can build
/// anything) and the artifacts the spill target misses in memory it
/// finds in the shared content-addressed DiskCacheStore, which its
/// sibling already populated.
///
/// Failure handling: a worker that dies (crash, OOM-kill, injected
/// fault) takes its in-flight relays' connections with it; each such
/// relay fails over to the remaining workers via net::buildWithRetry
/// with jittered backoff — safe because BUILD is idempotent
/// (RemoteClient.h) — while the health thread respawns the dead worker
/// on the same socket path.  Clients observe nothing but latency.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_FARM_FARM_H
#define M2C_FARM_FARM_H

#include "farm/WorkerProcess.h"
#include "net/ClientPool.h"
#include "net/Protocol.h"
#include "net/RemoteClient.h"
#include "net/Socket.h"
#include "support/Statistic.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace m2c::farm {

/// Everything configurable about one coordinator.
struct FarmConfig {
  std::string UnixSocketPath; ///< Empty: no unix listener.
  bool EnableTcp = false;
  uint16_t TcpPort = 0; ///< 0 with EnableTcp: ephemeral (see tcpPort()).

  unsigned Workers = 2; ///< Worker process count (the farm's N).
  /// The fixed worker unit: every worker runs this spec; the
  /// coordinator fills SocketPath per worker under WorkerDir.
  WorkerSpec Worker;
  /// Directory for worker sockets; empty derives "<UnixSocketPath>.d"
  /// or a /tmp directory when only TCP is configured.  Kept short:
  /// sun_path is ~107 bytes.
  std::string WorkerDir;

  unsigned MaxConnections = 64;
  /// Relays queued-or-running farm-wide; beyond it BUILDs are shed with
  /// REJECTED_OVERLOAD exactly like a daemon's MaxPendingBuilds.
  unsigned MaxPendingRelays = 64;
  /// In-flight relays on a worker before its shard spills to the
  /// least-loaded sibling.
  unsigned SpillThreshold = 4;

  /// Failover policy for relays whose worker failed mid-exchange: the
  /// sibling rotation runs under this jittered backoff.  MaxRetries
  /// here is attempts *across* workers, not per worker.
  net::RetryPolicy Retry = {/*MaxRetries=*/5, /*InitialBackoffMs=*/20,
                            /*MaxBackoffMs=*/500, /*Jitter=*/0.5,
                            /*JitterSeed=*/0, /*OnBackoff=*/nullptr};

  unsigned ReadyTimeoutMs = 30000; ///< Spawn-to-handshake budget.
  unsigned HealthIntervalMs = 100; ///< Liveness poll cadence.
  bool AutoRespawn = true;         ///< Respawn dead workers.
};

/// One running coordinator: owns the worker processes, their connection
/// pools, and all protocol threads.  A library class for the same
/// reason Daemon is: tests and benches run farms in-process against
/// real sockets and real worker processes.
class Farm {
public:
  Farm(FarmConfig Config);
  ~Farm();
  Farm(const Farm &) = delete;
  Farm &operator=(const Farm &) = delete;

  /// Spawns the workers, waits for their readiness handshakes, binds
  /// the client listeners and starts serving.  False + \p Err on any
  /// failure (everything already spawned is torn down).
  bool start(std::string &Err);

  /// Enters drain: refuse new connections and BUILDs, finish in-flight
  /// relays.  Workers keep running — they are what finishes the
  /// in-flight work.  Idempotent.
  void requestDrain();

  bool draining() const { return Draining.load(std::memory_order_relaxed); }

  /// Drains, waits for every in-flight relay's reply, tears down the
  /// protocol threads, then cascades SIGTERM to the workers and reaps
  /// them (SIGKILL after a grace period).  Idempotent.
  void stop();

  /// The TCP listener's bound port (after start()); 0 if TCP is off.
  uint16_t tcpPort() const { return TcpPortBound; }

  unsigned workerCount() const { return static_cast<unsigned>(Slots.size()); }
  std::string workerAddress(unsigned I) const;
  pid_t workerPid(unsigned I);

  /// Chaos/testing hook: SIGKILL worker \p I (the health thread will
  /// respawn it if AutoRespawn).  False if \p I is out of range.
  bool killWorker(unsigned I);

  /// The farm's own counters (farm.*) plus pool usage.
  std::map<std::string, uint64_t> statsSnapshot();

  /// What a STATS request answers: every reachable worker's counters
  /// summed together, plus statsSnapshot().  Cross-process aggregation
  /// happens here and nowhere else.
  std::map<std::string, uint64_t> aggregatedStats();

  /// Deterministic affinity: FNV-1a over the sorted root set, mod \p N.
  /// Over one shared workspace the sorted roots uniquely identify the
  /// request's module-graph closure, so equal closures always land on
  /// the same worker.
  static unsigned affinityShard(const std::vector<std::string> &Roots,
                                unsigned N);

private:
  struct RelayState;

  struct Connection {
    net::Socket Sock;
    std::mutex WriteM;
    std::atomic<bool> ReaderDone{false};
    std::mutex ReqM;
    std::map<uint64_t, std::shared_ptr<RelayState>> InFlight;
  };

  /// One in-flight client BUILD being relayed.  Whoever flips Replied
  /// first owns the one BUILD_RESULT (same invariant as the daemon).
  struct RelayState {
    uint64_t Id = 0;
    std::shared_ptr<Connection> Conn;
    std::atomic<bool> Replied{false};
    std::atomic<bool> Abandoned{false};
  };

  /// One worker slot: the process (respawned in place), its connection
  /// pool (address never changes), and its load.
  struct WorkerSlot {
    std::string SocketPath;
    std::unique_ptr<net::ClientPool> Pool;
    std::atomic<unsigned> InFlight{0};
    std::mutex ProcM; ///< Guards Proc (health thread vs stop/kill).
    std::unique_ptr<WorkerProcess> Proc;
  };

  bool spawnWorker(WorkerSlot &Slot, std::string &Err);
  void healthLoop();

  void acceptLoop(net::Listener &L);
  void serveConnection(std::shared_ptr<Connection> Conn);
  bool handshake(Connection &Conn);
  void handleBuild(const std::shared_ptr<Connection> &Conn,
                   net::BuildRequestMsg Msg);
  void relay(std::shared_ptr<RelayState> State, net::BuildRequestMsg Msg);
  void handleCancel(const std::shared_ptr<Connection> &Conn,
                    const net::CancelMsg &Msg);

  /// Picks the worker for a fresh relay: the affinity shard unless its
  /// in-flight load is at SpillThreshold and a strictly less loaded
  /// sibling exists.  Returns the worker index; \p Spilled reports
  /// which path was taken.
  unsigned routeWorker(unsigned Shard, bool &Spilled);

  bool tryReply(RelayState &S, const net::BuildResultMsg &M,
                const char *Counter);
  void sendFrame(Connection &Conn, const net::Frame &F);
  void reapRelayThreads(bool All);

  const FarmConfig Config;
  StatisticSet FarmStats;

  std::vector<std::unique_ptr<WorkerSlot>> Slots;
  std::thread HealthThread;
  std::atomic<bool> StopHealth{false};
  std::mutex HealthM;                ///< Pairs with HealthCv only.
  std::condition_variable HealthCv;  ///< Wakes healthLoop() on stop().

  net::Listener UnixListener, TcpListener;
  uint16_t TcpPortBound = 0;
  std::vector<std::thread> AcceptThreads;

  std::atomic<bool> Draining{false};
  std::atomic<bool> Stopping{false};
  bool Started = false, Stopped = false;

  std::mutex ConnsM;
  std::vector<std::pair<std::shared_ptr<Connection>, std::thread>> Conns;
  std::atomic<unsigned> ActiveConns{0};

  std::atomic<unsigned> PendingRelays{0};
  std::mutex RelaysM;
  std::condition_variable RelaysCv;
  std::vector<std::pair<std::shared_ptr<std::atomic<bool>>, std::thread>>
      RelayThreads;
};

} // namespace m2c::farm

#endif // M2C_FARM_FARM_H
