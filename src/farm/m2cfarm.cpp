//===--- m2cfarm.cpp - build farm coordinator executable ------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
// The multi-process build farm coordinator: spawns N `m2cd -worker`
// processes over one shared workspace and disk cache, serves the ordinary
// docs/PROTOCOL.md wire protocol to clients, and relays every BUILD to a
// worker picked by module-graph affinity.  SIGTERM/SIGINT drains: every
// in-flight relay gets its reply, then the drain cascades as SIGTERM to
// the workers.
//
//   m2cfarm -socket PATH [options]
//     -socket PATH   unix-domain socket clients connect to; worker sockets
//                    live under PATH.d/
//     -tcp PORT      additionally listen on 127.0.0.1:PORT (0 = ephemeral,
//                    the chosen port is printed)
//     -workers N     worker m2cd processes (default 2)
//     -m2cd PATH     worker executable (default: auto-resolve next to this
//                    binary, then $M2C_M2CD, then PATH)
//     -C DIR         workspace every worker preloads (default ".")
//     -cache DIR     shared content-addressed disk cache — the farm's
//                    cross-worker artifact reuse; strongly recommended
//     -worker-j N    executor threads per worker (default 2)
//     -mem-tier BYTES per-worker in-memory cache tier budget
//     -pool-cap N    per-worker shared-interface pool bound
//     -spill N       in-flight relays on a worker before its affinity
//                    shard spills to the least-loaded sibling (default 4)
//     -max-conns N   concurrent client connections (default 64)
//     -max-pending N queued-or-running relays farm-wide; beyond it BUILDs
//                    are shed with REJECTED_OVERLOAD (default 64)
//
//===----------------------------------------------------------------------===//

#include "farm/Farm.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>

using namespace m2c;

namespace {

volatile std::sig_atomic_t TermRequested = 0;

void onTerm(int) { TermRequested = 1; }

int usage() {
  std::fprintf(stderr,
               "usage: m2cfarm -socket PATH [-tcp PORT] [-workers N] "
               "[-m2cd PATH] [-C DIR] [-cache DIR] [-worker-j N] "
               "[-mem-tier BYTES] [-pool-cap N] [-spill N] [-max-conns N] "
               "[-max-pending N]\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  farm::FarmConfig Config;
  bool HaveListener = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto IntArg = [&](unsigned &Out) {
      if (I + 1 >= Argc)
        return false;
      int V = std::atoi(Argv[++I]);
      if (V <= 0)
        return false;
      Out = static_cast<unsigned>(V);
      return true;
    };
    if (Arg == "-socket" && I + 1 < Argc) {
      Config.UnixSocketPath = Argv[++I];
      HaveListener = true;
    } else if (Arg == "-tcp" && I + 1 < Argc) {
      int Port = std::atoi(Argv[++I]);
      if (Port < 0 || Port > 65535)
        return usage();
      Config.EnableTcp = true;
      Config.TcpPort = static_cast<uint16_t>(Port);
      HaveListener = true;
    } else if (Arg == "-workers") {
      if (!IntArg(Config.Workers))
        return usage();
    } else if (Arg == "-m2cd" && I + 1 < Argc) {
      Config.Worker.M2cdPath = Argv[++I];
    } else if (Arg == "-C" && I + 1 < Argc) {
      Config.Worker.Workspace = Argv[++I];
    } else if (Arg == "-cache" && I + 1 < Argc) {
      Config.Worker.CacheDir = Argv[++I];
    } else if (Arg == "-worker-j") {
      if (!IntArg(Config.Worker.Jobs))
        return usage();
    } else if (Arg == "-mem-tier" && I + 1 < Argc) {
      long long Bytes = std::atoll(Argv[++I]);
      if (Bytes < 0)
        return usage();
      Config.Worker.MemTierBytes = static_cast<size_t>(Bytes);
    } else if (Arg == "-pool-cap") {
      if (!IntArg(Config.Worker.PoolCap))
        return usage();
    } else if (Arg == "-spill") {
      if (!IntArg(Config.SpillThreshold))
        return usage();
    } else if (Arg == "-max-conns") {
      if (!IntArg(Config.MaxConnections))
        return usage();
    } else if (Arg == "-max-pending") {
      if (!IntArg(Config.MaxPendingRelays))
        return usage();
    } else {
      return usage();
    }
  }
  if (!HaveListener)
    return usage();

  farm::Farm Coordinator(Config);
  std::string Err;
  if (!Coordinator.start(Err)) {
    std::fprintf(stderr, "m2cfarm: %s\n", Err.c_str());
    return 1;
  }
  if (!Config.UnixSocketPath.empty())
    std::printf("m2cfarm: listening on %s\n", Config.UnixSocketPath.c_str());
  if (Config.EnableTcp)
    std::printf("m2cfarm: listening on tcp:127.0.0.1:%u\n",
                Coordinator.tcpPort());
  std::printf("m2cfarm: %u workers over workspace '%s'%s%s\n",
              Coordinator.workerCount(), Config.Worker.Workspace.c_str(),
              Config.Worker.CacheDir.empty() ? "" : ", shared cache ",
              Config.Worker.CacheDir.c_str());
  std::fflush(stdout);

  std::signal(SIGTERM, onTerm);
  std::signal(SIGINT, onTerm);
  std::signal(SIGPIPE, SIG_IGN);
  while (!TermRequested)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::printf("m2cfarm: draining (finishing in-flight relays)\n");
  std::fflush(stdout);
  Coordinator.stop();
  std::printf("m2cfarm: bye\n");
  return 0;
}
