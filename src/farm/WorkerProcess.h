//===--- WorkerProcess.h - one m2cd worker's lifecycle ----------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Spawning, health-checking and reaping one `m2cd -worker` process.
/// The coordinator treats a worker as a fixed-size provisionable unit:
/// every worker of a farm runs the same executable with the same
/// resource bounds (-j, -mem-tier, -pool-cap, -max-*) over the same
/// workspace and the same shared disk cache, differing only in its
/// socket path.  The spawned process inherits the coordinator's
/// environment, which is how an `M2C_FAULTS` plan reaches every worker's
/// fault seams (FaultPlan.h installs from the environment before main).
///
//===----------------------------------------------------------------------===//

#ifndef M2C_FARM_WORKERPROCESS_H
#define M2C_FARM_WORKERPROCESS_H

#include <memory>
#include <optional>
#include <string>
#include <sys/types.h>
#include <utility>
#include <vector>

namespace m2c::farm {

/// How one worker m2cd is launched.  One spec serves a whole farm; the
/// coordinator fills SocketPath per worker.
struct WorkerSpec {
  std::string M2cdPath;   ///< Empty: findM2cd() resolution.
  std::string SocketPath; ///< The worker's unix-domain listener.
  std::string Workspace = ".";
  std::string CacheDir; ///< Shared content-addressed disk store; empty:
                        ///< workers run memory-only and share nothing.
  unsigned Jobs = 2;
  unsigned MaxActive = 0;  ///< 0: daemon default.
  unsigned MaxPending = 0; ///< 0: daemon default.
  /// In-memory cache tier budget; SIZE_MAX keeps the daemon default.
  size_t MemTierBytes = static_cast<size_t>(-1);
  unsigned PoolCap = 0; ///< SharedInterfacePool bound; 0: unbounded.
  /// false: worker stdout/stderr go to /dev/null (a 4-worker farm would
  /// otherwise interleave startup chatter into the coordinator's tty).
  bool InheritStdio = false;
  std::vector<std::string> ExtraArgs; ///< Appended verbatim (-dky etc).
  /// Extra environment (NAME, VALUE) set in the child before exec, on
  /// top of the inherited environment.
  std::vector<std::pair<std::string, std::string>> Env;
};

/// A spawned worker process.  Not thread-safe; the Farm serializes
/// access per slot.
class WorkerProcess {
public:
  /// fork+exec per \p Spec.  Returns nullptr with \p Err set if the
  /// fork fails or the executable is obviously absent.  exec failure
  /// inside the child surfaces as immediate exit 127 — visible to the
  /// caller's readiness probe, not here.
  static std::unique_ptr<WorkerProcess> spawn(const WorkerSpec &Spec,
                                              std::string &Err);
  ~WorkerProcess();
  WorkerProcess(const WorkerProcess &) = delete;
  WorkerProcess &operator=(const WorkerProcess &) = delete;

  pid_t pid() const { return Pid; }

  /// True while the process has not been reaped.  Polls waitpid
  /// (WNOHANG), so a killed worker turns not-alive as soon as the
  /// kernel has the exit status, with no zombie left behind.
  bool alive();

  void terminate(); ///< SIGTERM — m2cd drains and exits.
  void kill();      ///< SIGKILL — chaos/testing hook.

  /// Waits up to \p TimeoutMs for exit, reaping it.  Returns the raw
  /// waitpid status, or nullopt on timeout.
  std::optional<int> waitExit(unsigned TimeoutMs);

private:
  explicit WorkerProcess(pid_t Pid) : Pid(Pid) {}
  pid_t Pid = -1;
  bool Reaped = false;
};

/// Resolves the m2cd executable: \p Explicit if nonempty, else the
/// M2C_M2CD environment variable, else well-known locations relative to
/// the current executable (the build tree's src/daemon/), else bare
/// "m2cd" for PATH resolution at exec time.
std::string findM2cd(const std::string &Explicit);

/// Polls \p Address until an m2cd answers the handshake, identifies as
/// "m2cd/1 worker" (PROTOCOL.md §14 — proof we reached the worker we
/// spawned, not some unrelated daemon on a stale socket path), and
/// answers a PING.  False + \p Err after \p TimeoutMs.
bool waitWorkerReady(const std::string &Address, unsigned TimeoutMs,
                     std::string &Err);

} // namespace m2c::farm

#endif // M2C_FARM_WORKERPROCESS_H
