//===--- SharedInterfacePool.h - Interface reuse across requests -*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface AST/scope reuse tier of the build service.  Requests of
/// one *generation* share a single sema::Compilation — one interner, type
/// context, diagnostics engine, and once-only module registry — with a
/// service-lifetime InterfaceSet installed as the registry's stream
/// starter, so a definition module imported by many requests is lexed,
/// parsed and analyzed exactly once per generation: the paper's
/// interface-once guarantee lifted from a compilation (PR 0) and a
/// session (PR 2) to the whole service fleet.
///
/// Correctness of sharing: every interface scope is built from the .def
/// text alone, the module registry is once-only, and the Merger renumbers
/// ProcIds and resolves callees by qualified name, so a module's .mco
/// bytes do not depend on which other requests share the Compilation.
///
/// Staleness: at admission each request presents the content hashes of
/// its .def closure.  If any hash differs from what the current
/// generation already parsed, the pool *rotates* — a fresh Compilation
/// and InterfaceSet serve subsequent requests — while in-flight requests
/// keep their old generation alive through shared_ptr ownership.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SERVICE_SHAREDINTERFACEPOOL_H
#define M2C_SERVICE_SHAREDINTERFACEPOOL_H

#include "build/InterfaceSet.h"
#include "build/TaskSpawner.h"
#include "sema/Compilation.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace m2c::sched {
class ThreadedExecutor;
}

namespace m2c::service {

/// One sharing epoch: the Compilation all requests of the epoch join and
/// the InterfaceSet that parses each interface once for all of them.
struct InterfaceGeneration {
  std::shared_ptr<sema::Compilation> Comp;
  std::unique_ptr<build::TaskSpawner> Spawner;
  std::unique_ptr<build::InterfaceSet> Defs;
  /// .def file name -> content hash when first seen by this generation.
  /// Guarded by the pool mutex.
  std::unordered_map<std::string, std::string> DefHashes;
};

/// Hands out the generation serving each request and rotates on change.
class SharedInterfacePool {
public:
  /// \p Exec is the service's persistent executor; generations' interface
  /// tasks are submitted to it (tagged by whichever request triggers
  /// them).  \p Options carries the DKY strategy/sharing/optimize
  /// settings every generation compiles under.
  /// \p MaxInterfaces bounds how many distinct .def files one generation
  /// may accumulate (0 = unbounded).  A long-lived worker serving every
  /// project in a fleet would otherwise pool interface scopes without
  /// limit; the farm instead provisions each worker as a fixed-size unit
  /// and shards requests by affinity so the unit's bound is enough for
  /// the projects it actually serves.  When admitting a request's
  /// closure would push the pooled set past the bound, the pool rotates
  /// exactly as it does for a content change — correctness is untouched,
  /// the evicted interfaces are simply re-analyzed on next use.
  SharedInterfacePool(VirtualFileSystem &Files, StringInterner &Interner,
                      sched::ThreadedExecutor &Exec,
                      sema::CompilationOptions Options,
                      unsigned MaxInterfaces = 0);

  /// Returns the generation that will serve a request whose interface
  /// closure is \p DefFiles (file names).  Rotates first when any of
  /// those files' current content differs from what the current
  /// generation parsed.
  std::shared_ptr<InterfaceGeneration>
  acquire(const std::vector<std::string> &DefFiles);

  /// Generations created so far (>= 1 once acquire ran).
  uint64_t generationCount() const {
    return Generations.load(std::memory_order_relaxed);
  }

  /// Definition-module parser executions summed over every generation —
  /// the "parsed once per service" counter ServiceTest asserts on.
  uint64_t parseCount() const;

  /// Definition-module streams summed over every generation.
  uint64_t streamCount() const;

  /// Rotations forced by the MaxInterfaces bound (as opposed to content
  /// changes) — the farm bench's locality signal: an affinity-sharded
  /// worker's count stays at zero, a worker serving every project
  /// rotates constantly.
  uint64_t capRotationCount() const {
    return CapRotations.load(std::memory_order_relaxed);
  }

private:
  void rotateLocked();

  VirtualFileSystem &Files;
  StringInterner &Interner;
  sched::ThreadedExecutor &Exec;
  const sema::CompilationOptions Options;
  const unsigned MaxInterfaces;

  mutable std::mutex M;
  std::shared_ptr<InterfaceGeneration> Current;
  /// Parse/stream counts of retired generations (their InterfaceSets may
  /// be gone by the time stats are read).
  uint64_t RetiredParses = 0;
  uint64_t RetiredStreams = 0;
  std::atomic<uint64_t> Generations{0};
  std::atomic<uint64_t> CapRotations{0};
};

} // namespace m2c::service

#endif // M2C_SERVICE_SHAREDINTERFACEPOOL_H
