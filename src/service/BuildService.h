//===--- BuildService.h - Long-lived multi-tenant build service -*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent, multi-tenant compilation service (DESIGN.md section 10).
/// One BuildService owns exactly one work-stealing ThreadedExecutor whose
/// workers stay alive across any number of concurrently submitted build
/// requests — the opposite of every client constructing its own
/// oversubscribed executor — plus the shared artifact tiers that amortize
/// per-request startup cost:
///
///   request -> RequestQueue (FIFO admission, bounded concurrency)
///           -> SharedInterfacePool (interfaces parsed once per service)
///           -> BuildSession on the shared executor (fair-share tokens)
///           -> MemoryCacheTier -> DiskCacheStore -> compile
///
/// The correctness bar is byte-identity: a request's .mco images equal
/// what a cold standalone BuildSession produces for the same sources, for
/// any worker count and any arrival order.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SERVICE_BUILDSERVICE_H
#define M2C_SERVICE_BUILDSERVICE_H

#include "build/BuildSession.h"
#include "cache/CompilationCache.h"
#include "sched/CostModel.h"
#include "sched/ThreadedExecutor.h"
#include "service/MemoryCacheTier.h"
#include "service/RequestQueue.h"
#include "service/SharedInterfacePool.h"
#include "support/Statistic.h"

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

namespace m2c::service {

/// Everything configurable about one service instance.
struct ServiceConfig {
  unsigned Workers = 4; ///< Processors of the one shared executor.
  symtab::DkyStrategy Strategy = symtab::DkyStrategy::Skeptical;
  sema::HeadingSharing Sharing = sema::HeadingSharing::CopyEntries;
  /// Default optimization level for requests that don't name their own
  /// (a BUILD request may carry a per-request level).
  opt::OptLevel Level = opt::defaultOptLevel();
  sched::CostModel Cost;
  unsigned MaxActiveRequests = 8; ///< FIFO admission bound.
  bool UseCache = true;           ///< Artifact tiers on/off.
  size_t MemoryTierBytes = static_cast<size_t>(64) << 20;
  /// Bound on distinct .def files one SharedInterfacePool generation may
  /// accumulate (0 = unbounded).  Farm workers run bounded so a worker
  /// is a fixed-size unit; affinity sharding keeps each worker's
  /// interface working set under its bound.
  unsigned MaxPooledInterfaces = 0;
  std::string CacheDir; ///< Disk tier below the memory tier; empty:
                        ///< memory-only.
};

/// Cooperative abandonment of one submitted request, for callers (the
/// network daemon) that answer a client before the build machinery is
/// done with the request.  Once abandon() is called, submit() returns an
/// Aborted result at its next checkpoint — after queue admission, after
/// discovery, after module locking — instead of compiling.  A build past
/// its last checkpoint runs to completion (its result is simply
/// discarded by the caller); mid-build preemption is deliberately not
/// offered, because a half-run session would have to unwind shared
/// interface state.  See DESIGN.md §11.
class RequestControl {
public:
  void abandon() { Abandoned.store(true, std::memory_order_relaxed); }
  bool abandoned() const { return Abandoned.load(std::memory_order_relaxed); }

private:
  std::atomic<bool> Abandoned{false};
};

/// The long-lived service.  Thread-safe: submit() may be called from any
/// number of client threads concurrently.
class BuildService {
public:
  BuildService(VirtualFileSystem &Files, StringInterner &Interner,
               ServiceConfig Config);
  ~BuildService();
  BuildService(const BuildService &) = delete;
  BuildService &operator=(const BuildService &) = delete;

  /// Builds \p Roots as one request: FIFO admission, shared interface
  /// generation, session on the shared executor, tiered cache.  Blocks
  /// the calling thread until the request completes.  A non-null \p Ctrl
  /// lets the caller abandon the request between phases (the result then
  /// has Aborted set and nothing was compiled or cached for it).
  /// \p Level overrides the service's default optimization level for this
  /// request only; cache keys embed the level, so requests at different
  /// levels never share entries.
  build::BuildResult submit(const std::vector<std::string> &Roots,
                            const RequestControl *Ctrl = nullptr,
                            std::optional<opt::OptLevel> Level = std::nullopt);

  /// Stops the executor and folds its counters into the stats.  Called by
  /// the destructor; idempotent.  No submit() may be in flight.
  void stop();

  /// Merged service-level counters: the shared executor's sched.* (flushed
  /// on demand), cache.* from both tiers, service.requests.*,
  /// service.interface.*, service.generations.
  std::map<std::string, uint64_t> statsSnapshot();

  const ServiceConfig &config() const { return Config; }
  sched::ThreadedExecutor &executor() { return Exec; }
  cache::CompilationCache *cache() { return Cache.get(); }
  MemoryCacheTier *memoryTier() { return Tier; }
  SharedInterfacePool &interfacePool() { return Pool; }

private:
  /// Blocks while any in-flight request is compiling one of \p Modules
  /// (two requests may share interfaces freely, but concurrently
  /// compiling the same implementation module in one registry would
  /// collide), then marks them in flight.
  void lockModules(const std::vector<std::string> &Modules);
  void unlockModules(const std::vector<std::string> &Modules);

  /// RAII over lockModules/unlockModules: the in-flight marks are
  /// released on unwind too, so a throwing build can never leave its
  /// modules locked and deadlock every later overlapping request.
  class ModuleLocks {
  public:
    ModuleLocks(BuildService &S, std::vector<std::string> Modules)
        : S(S), Modules(std::move(Modules)) {
      S.lockModules(this->Modules);
    }
    ~ModuleLocks() { S.unlockModules(Modules); }
    ModuleLocks(const ModuleLocks &) = delete;
    ModuleLocks &operator=(const ModuleLocks &) = delete;

  private:
    BuildService &S;
    std::vector<std::string> Modules;
  };

  VirtualFileSystem &Files;
  StringInterner &Interner;
  const ServiceConfig Config;

  sched::ThreadedExecutor Exec;
  MemoryCacheTier *Tier = nullptr; ///< Owned by Cache (as its store).
  std::unique_ptr<cache::CompilationCache> Cache;
  SharedInterfacePool Pool;
  RequestQueue Queue;
  StatisticSet ServiceStats;

  std::mutex InFlightM;
  std::condition_variable InFlightCv;
  std::unordered_set<std::string> InFlightModules;

  bool Stopped = false;
};

} // namespace m2c::service

#endif // M2C_SERVICE_BUILDSERVICE_H
