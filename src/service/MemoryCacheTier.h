//===--- MemoryCacheTier.h - Sharded in-memory artifact tier ----*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-memory tier of the build service's artifact cache: a CacheStore
/// decorator that answers repeated loads from a sharded, LRU-bounded map
/// of serialized entries and falls through to an optional backing store
/// (typically the shared DiskCacheStore) on miss.  Lookups hit in memory
/// for any artifact any concurrent request produced during the service's
/// lifetime; the disk tier below it survives restarts.  Sharding keeps
/// the tier off the scheduler's critical path — concurrent requests
/// probing different keys take different locks.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SERVICE_MEMORYCACHETIER_H
#define M2C_SERVICE_MEMORYCACHETIER_H

#include "cache/CacheStore.h"
#include "support/Statistic.h"

#include <list>
#include <memory>
#include <string>
#include <unordered_map>

namespace m2c::service {

/// LRU-bounded in-memory front for a (possibly absent) persistent store.
class MemoryCacheTier final : public cache::CacheStore {
public:
  /// \p Backing may be null for a memory-only service cache.  \p MaxBytes
  /// bounds the sum of cached entry text sizes across all shards; each
  /// shard evicts least-recently-used entries past its slice of the
  /// budget.
  MemoryCacheTier(std::unique_ptr<cache::CacheStore> Backing,
                  size_t MaxBytes, unsigned ShardCount = 8);

  std::optional<std::string> load(const std::string &Key) override;
  void save(const std::string &Key, const std::string &Text) override;
  size_t size() const override;

  /// Tier counters: cache.mem.hit / cache.mem.miss / cache.mem.fill (miss
  /// answered by the backing store and promoted) / cache.mem.store /
  /// cache.mem.evict.
  StatisticSet &stats() { return Stats; }
  const StatisticSet &stats() const { return Stats; }

  cache::CacheStore *backing() { return Backing.get(); }

private:
  /// One shard: an LRU list of (key, text) with an index into it.
  struct Shard {
    std::mutex M;
    std::list<std::pair<std::string, std::string>> Lru; ///< Front = newest.
    std::unordered_map<
        std::string,
        std::list<std::pair<std::string, std::string>>::iterator>
        Index;
    size_t Bytes = 0;
  };

  Shard &shardFor(const std::string &Key);
  /// Inserts/refreshes \p Key in \p S and evicts past the budget.
  /// Caller holds S.M.
  void put(Shard &S, const std::string &Key, const std::string &Text);

  const std::unique_ptr<cache::CacheStore> Backing;
  const size_t MaxBytesPerShard;
  const unsigned ShardCount;
  std::unique_ptr<Shard[]> Shards;
  StatisticSet Stats;
};

} // namespace m2c::service

#endif // M2C_SERVICE_MEMORYCACHETIER_H
