//===--- MemoryCacheTier.cpp - Sharded in-memory artifact tier ------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "service/MemoryCacheTier.h"

#include <functional>

using namespace m2c;
using namespace m2c::service;

MemoryCacheTier::MemoryCacheTier(std::unique_ptr<cache::CacheStore> Backing,
                                 size_t MaxBytes, unsigned ShardCount)
    : Backing(std::move(Backing)),
      MaxBytesPerShard(MaxBytes / (ShardCount ? ShardCount : 1)),
      ShardCount(ShardCount ? ShardCount : 1),
      Shards(std::make_unique<Shard[]>(this->ShardCount)) {}

MemoryCacheTier::Shard &MemoryCacheTier::shardFor(const std::string &Key) {
  return Shards[std::hash<std::string>{}(Key) % ShardCount];
}

void MemoryCacheTier::put(Shard &S, const std::string &Key,
                          const std::string &Text) {
  auto It = S.Index.find(Key);
  if (It != S.Index.end()) {
    S.Bytes -= It->second->second.size();
    S.Lru.erase(It->second);
    S.Index.erase(It);
  }
  S.Lru.emplace_front(Key, Text);
  S.Index.emplace(Key, S.Lru.begin());
  S.Bytes += Text.size();
  while (S.Bytes > MaxBytesPerShard && S.Lru.size() > 1) {
    auto &Victim = S.Lru.back();
    S.Bytes -= Victim.second.size();
    S.Index.erase(Victim.first);
    S.Lru.pop_back();
    Stats.add("cache.mem.evict");
  }
}

std::optional<std::string> MemoryCacheTier::load(const std::string &Key) {
  Shard &S = shardFor(Key);
  {
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = S.Index.find(Key);
    if (It != S.Index.end()) {
      // Refresh recency.
      S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
      It->second = S.Lru.begin();
      Stats.add("cache.mem.hit");
      return It->second->second;
    }
  }
  Stats.add("cache.mem.miss");
  if (!Backing)
    return std::nullopt;
  std::optional<std::string> FromDisk = Backing->load(Key);
  if (FromDisk) {
    // Promote so the next request's probe never touches the disk.
    std::lock_guard<std::mutex> Lock(S.M);
    put(S, Key, *FromDisk);
    Stats.add("cache.mem.fill");
  }
  return FromDisk;
}

void MemoryCacheTier::save(const std::string &Key, const std::string &Text) {
  {
    Shard &S = shardFor(Key);
    std::lock_guard<std::mutex> Lock(S.M);
    put(S, Key, Text);
  }
  Stats.add("cache.mem.store");
  if (Backing)
    Backing->save(Key, Text);
}

size_t MemoryCacheTier::size() const {
  size_t N = 0;
  for (unsigned I = 0; I < ShardCount; ++I) {
    std::lock_guard<std::mutex> Lock(Shards[I].M);
    N += Shards[I].Index.size();
  }
  return N;
}
