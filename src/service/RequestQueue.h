//===--- RequestQueue.h - FIFO request admission ----------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounds how many build requests are concurrently active inside the
/// service.  Admission is strictly FIFO (a ticket turnstile), so a burst
/// of small requests cannot indefinitely overtake a large one that
/// arrived first; once admitted, the executor's per-request fair share
/// keeps the admitted set from starving each other.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SERVICE_REQUESTQUEUE_H
#define M2C_SERVICE_REQUESTQUEUE_H

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace m2c::service {

/// FIFO counting turnstile: at most MaxActive holders at once, admitted
/// strictly in arrival order.
class RequestQueue {
public:
  explicit RequestQueue(unsigned MaxActive)
      : MaxActive(MaxActive ? MaxActive : 1) {}
  RequestQueue(const RequestQueue &) = delete;
  RequestQueue &operator=(const RequestQueue &) = delete;

  /// Blocks until every earlier arrival has been admitted and a slot is
  /// free.  Returns this request's arrival ticket (0-based).
  uint64_t enter();

  /// Releases the slot taken by enter().
  void leave();

  /// RAII admission for one request.
  class Scoped {
  public:
    explicit Scoped(RequestQueue &Q) : Q(Q), Ticket(Q.enter()) {}
    ~Scoped() { Q.leave(); }
    Scoped(const Scoped &) = delete;
    Scoped &operator=(const Scoped &) = delete;
    uint64_t ticket() const { return Ticket; }

  private:
    RequestQueue &Q;
    uint64_t Ticket;
  };

  /// Requests currently admitted.
  unsigned active() const;

private:
  const unsigned MaxActive;
  mutable std::mutex M;
  std::condition_variable Cv;
  uint64_t NextTicket = 0;  ///< Next arrival's ticket.
  uint64_t NowServing = 0;  ///< Lowest not-yet-admitted ticket.
  unsigned ActiveCount = 0; ///< Admitted, not yet left.
};

} // namespace m2c::service

#endif // M2C_SERVICE_REQUESTQUEUE_H
