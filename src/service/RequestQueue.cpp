//===--- RequestQueue.cpp - FIFO request admission ------------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "service/RequestQueue.h"

using namespace m2c::service;

uint64_t RequestQueue::enter() {
  std::unique_lock<std::mutex> Lock(M);
  uint64_t Ticket = NextTicket++;
  Cv.wait(Lock, [this, Ticket] {
    return NowServing == Ticket && ActiveCount < MaxActive;
  });
  ++NowServing;
  ++ActiveCount;
  // The next ticket may also be admissible (slots free); wake the line.
  Cv.notify_all();
  return Ticket;
}

void RequestQueue::leave() {
  std::lock_guard<std::mutex> Lock(M);
  --ActiveCount;
  Cv.notify_all();
}

unsigned RequestQueue::active() const {
  std::lock_guard<std::mutex> Lock(M);
  return ActiveCount;
}
