//===--- BuildService.cpp - Long-lived multi-tenant build service ---------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "service/BuildService.h"

#include "build/BuildGraph.h"
#include "cache/CacheStore.h"
#include "driver/CompilerOptions.h"
#include "fault/FaultPlan.h"
#include "sched/ExecContext.h"

#include <chrono>

using namespace m2c;
using namespace m2c::service;

BuildService::BuildService(VirtualFileSystem &Files, StringInterner &Interner,
                           ServiceConfig Config)
    : Files(Files), Interner(Interner), Config(Config),
      Exec(Config.Workers, Config.Cost),
      Pool(Files, Interner, Exec,
           sema::CompilationOptions{Config.Strategy, Config.Sharing},
           Config.MaxPooledInterfaces),
      Queue(Config.MaxActiveRequests) {
  if (Config.UseCache) {
    std::unique_ptr<cache::CacheStore> Disk;
    if (!Config.CacheDir.empty())
      Disk = std::make_unique<cache::DiskCacheStore>(Config.CacheDir);
    auto TierPtr = std::make_unique<MemoryCacheTier>(std::move(Disk),
                                                     Config.MemoryTierBytes);
    Tier = TierPtr.get();
    Cache = std::make_unique<cache::CompilationCache>(std::move(TierPtr));
  }
  Exec.startService();
}

BuildService::~BuildService() { stop(); }

void BuildService::stop() {
  if (Stopped)
    return;
  Stopped = true;
  Exec.stopService();
}

void BuildService::lockModules(const std::vector<std::string> &Modules) {
  std::unique_lock<std::mutex> Lock(InFlightM);
  InFlightCv.wait(Lock, [this, &Modules] {
    for (const std::string &M : Modules)
      if (InFlightModules.count(M))
        return false;
    return true;
  });
  for (const std::string &M : Modules)
    InFlightModules.insert(M);
}

void BuildService::unlockModules(const std::vector<std::string> &Modules) {
  {
    std::lock_guard<std::mutex> Lock(InFlightM);
    for (const std::string &M : Modules)
      InFlightModules.erase(M);
  }
  InFlightCv.notify_all();
}

build::BuildResult BuildService::submit(const std::vector<std::string> &Roots,
                                        const RequestControl *Ctrl,
                                        std::optional<opt::OptLevel> Level) {
  using Clock = std::chrono::steady_clock;
  RequestQueue::Scoped Admitted(Queue);
  ServiceStats.add("service.requests.submitted");

  // Admission failpoint: models a request thread dying between admission
  // and compilation (resource exhaustion, a bug in setup code).  All
  // request-scoped state above is RAII, so the unwind releases the
  // admitted slot; the daemon maps the exception to a clean Internal
  // reply.
  if (M2C_FAULT_HIT("service.admit").fail()) {
    ServiceStats.add("service.requests.faulted");
    throw fault::InjectedFault("service.admit");
  }

  // Abandonment checkpoints: the daemon may have answered the client
  // (deadline, cancel) while this request sat in the FIFO turnstile —
  // compiling it now would only burn the admitted slot.
  auto Abandoned = [this, Ctrl] {
    if (!Ctrl || !Ctrl->abandoned())
      return false;
    ServiceStats.add("service.requests.aborted");
    return true;
  };
  auto AbortedResult = [] {
    build::BuildResult R;
    R.Aborted = true;
    return R;
  };
  if (Abandoned())
    return AbortedResult();

  // Per-request discovery: the graph tells us the request's compile set
  // and .def closure before anything joins shared state.  Discovery needs
  // a builtin scope only to parent scratch scopes; any generation's works
  // and none is mutated.
  auto DiscStart = Clock::now();
  build::BuildGraph Graph;
  {
    sched::SequentialContext Ctx(Config.Cost);
    sched::ScopedContext Installed(Ctx);
    std::shared_ptr<InterfaceGeneration> Scratch = Pool.acquire({});
    Graph = build::BuildGraph::discover(Files, Interner,
                                        Scratch->Comp->Builtins, Roots,
                                        /*UseMemo=*/true);
  }
  uint64_t DiscoveryWallNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           DiscStart)
          .count());

  std::vector<std::string> DefFiles;
  for (Symbol Def : Graph.sessionInterfaces())
    DefFiles.push_back(
        VirtualFileSystem::defFileName(Interner.spelling(Def)));
  std::vector<std::string> CompileSet;
  for (Symbol Mod : Graph.compileOrder())
    CompileSet.push_back(std::string(Interner.spelling(Mod)));

  if (Abandoned())
    return AbortedResult();

  // Interface generation: rotated if any .def this request depends on
  // changed since the current generation parsed it.
  std::shared_ptr<InterfaceGeneration> Gen = Pool.acquire(DefFiles);

  // Concurrent requests may overlap arbitrarily in interfaces but not in
  // the implementation modules they compile (the shared registry is
  // once-only per generation); rebuilding the same module twice at once
  // is also pure waste — the second request replays the first's cache
  // entries instead.
  ModuleLocks Locked(*this, std::move(CompileSet));

  // Last checkpoint: module locks may have blocked on a peer compiling
  // the same modules; past here the build runs to completion.
  if (Abandoned())
    return AbortedResult();

  driver::CompilerOptions Opts;
  Opts.Strategy = Config.Strategy;
  Opts.Sharing = Config.Sharing;
  Opts.Level = Level.value_or(Config.Level);
  Opts.Executor = driver::ExecutorKind::Threaded;
  Opts.Processors = Config.Workers;
  Opts.Cost = Config.Cost;
  Opts.Cache = Cache.get();

  build::SessionExternals Ext;
  Ext.Exec = &Exec;
  Ext.Comp = Gen->Comp;
  Ext.SharedDefs = Gen->Defs.get();
  Ext.Graph = std::move(Graph);
  Ext.DiscoveryWallNs = DiscoveryWallNs;
  Ext.KeepAlive = Gen;
  Ext.OptStats = &ServiceStats; // opt.* folds into the STATS reply.

  build::BuildSession Session(Files, Interner, Opts);
  build::BuildResult Result = Session.build(Roots, std::move(Ext));

  ServiceStats.add(Result.Success ? "service.requests.succeeded"
                                  : "service.requests.failed");
  return Result;
}

std::map<std::string, uint64_t> BuildService::statsSnapshot() {
  Exec.flushStats();
  std::map<std::string, uint64_t> Merged = Exec.stats().snapshot();
  auto Fold = [&Merged](const std::map<std::string, uint64_t> &From) {
    for (const auto &[Name, Value] : From)
      Merged[Name] += Value;
  };
  if (Cache)
    Fold(Cache->stats().snapshot());
  if (Tier) {
    Fold(Tier->stats().snapshot());
    // Disk-store integrity counters (cache.disk.*): corrupt entries healed
    // on read, orphaned temps swept at startup.
    if (auto *Disk = dynamic_cast<cache::DiskCacheStore *>(Tier->backing()))
      Fold(Disk->stats().snapshot());
  }
  Fold(ServiceStats.snapshot());
  Merged["service.generations"] = Pool.generationCount();
  Merged["service.pool.caprotations"] = Pool.capRotationCount();
  Merged["service.interface.parses"] = Pool.parseCount();
  Merged["service.interface.streams"] = Pool.streamCount();
  return Merged;
}
