//===--- SharedInterfacePool.cpp - Interface reuse across requests --------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "service/SharedInterfacePool.h"

#include "cache/CacheKey.h"
#include "sched/ThreadedExecutor.h"

using namespace m2c;
using namespace m2c::service;

SharedInterfacePool::SharedInterfacePool(VirtualFileSystem &Files,
                                         StringInterner &Interner,
                                         sched::ThreadedExecutor &Exec,
                                         sema::CompilationOptions Options,
                                         unsigned MaxInterfaces)
    : Files(Files), Interner(Interner), Exec(Exec), Options(Options),
      MaxInterfaces(MaxInterfaces) {}

void SharedInterfacePool::rotateLocked() {
  if (Current) {
    RetiredParses += Current->Defs->parseCount();
    RetiredStreams += Current->Defs->streamCount();
  }
  auto Gen = std::make_shared<InterfaceGeneration>();
  Gen->Comp = std::make_shared<sema::Compilation>(Files, Interner, Options);
  Gen->Spawner = std::make_unique<build::TaskSpawner>(Exec);
  // No request tag of its own: an interface task started from inside a
  // request's task inherits that request's tag through the worker
  // context, so awaitRequest covers the streams a request triggered.
  Gen->Spawner->setService(nullptr);
  Gen->Defs = std::make_unique<build::InterfaceSet>(*Gen->Comp,
                                                    *Gen->Spawner);
  Current = std::move(Gen);
  Generations.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<InterfaceGeneration>
SharedInterfacePool::acquire(const std::vector<std::string> &DefFiles) {
  std::lock_guard<std::mutex> Lock(M);
  if (!Current)
    rotateLocked();

  // Hash what's on "disk" now; "missing" hashes like the planner's file
  // dependencies so appearance/disappearance also rotates.
  std::vector<std::pair<const std::string *, std::string>> Hashes;
  Hashes.reserve(DefFiles.size());
  for (const std::string &Name : DefFiles) {
    const SourceBuffer *Buf = Files.lookup(Name);
    // Memoized on the buffer: requests re-check the same unchanged
    // interfaces on every acquire, and the hash of an immutable buffer
    // never changes.
    Hashes.emplace_back(&Name, Buf ? Buf->contentHash([Buf] {
      return cache::hashBytes(Buf->Text).hex();
    })
                                   : "missing");
  }
  for (const auto &[Name, Hash] : Hashes) {
    auto It = Current->DefHashes.find(*Name);
    if (It != Current->DefHashes.end() && It->second != Hash) {
      rotateLocked();
      break;
    }
  }
  // Capacity bound: admitting this closure's new interfaces must not
  // push the generation past MaxInterfaces.  Rotating resets the pooled
  // set to exactly this request's closure — even a closure larger than
  // the bound is served whole (it just monopolizes the generation).  A
  // fresh generation (empty set) never re-rotates.
  if (MaxInterfaces && !Current->DefHashes.empty()) {
    size_t NewFiles = 0;
    for (const auto &[Name, Hash] : Hashes)
      if (!Current->DefHashes.count(*Name))
        ++NewFiles;
    if (NewFiles && Current->DefHashes.size() + NewFiles > MaxInterfaces) {
      rotateLocked();
      CapRotations.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Record every hash the generation now depends on (first-seen wins; an
  // unchanged hash overwrites itself).
  for (const auto &[Name, Hash] : Hashes)
    Current->DefHashes.emplace(*Name, Hash);
  return Current;
}

uint64_t SharedInterfacePool::parseCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return RetiredParses + (Current ? Current->Defs->parseCount() : 0);
}

uint64_t SharedInterfacePool::streamCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return RetiredStreams + (Current ? Current->Defs->streamCount() : 0);
}
