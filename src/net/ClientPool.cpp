//===--- ClientPool.cpp - persistent upstream connections -----------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "net/ClientPool.h"

using namespace m2c;
using namespace m2c::net;

std::unique_ptr<RemoteClient> ClientPool::acquire(std::string &Err,
                                                  ErrorCategory *Category) {
  {
    std::lock_guard<std::mutex> Lock(M);
    if (!Idle.empty()) {
      auto Client = std::move(Idle.back());
      Idle.pop_back();
      Reused.fetch_add(1, std::memory_order_relaxed);
      if (Category)
        *Category = ErrorCategory::None;
      return Client;
    }
  }
  auto Client = RemoteClient::open(Addr, Err, Category);
  if (Client)
    Opened.fetch_add(1, std::memory_order_relaxed);
  return Client;
}

void ClientPool::release(std::unique_ptr<RemoteClient> Client) {
  if (!Client)
    return;
  std::lock_guard<std::mutex> Lock(M);
  if (Idle.size() < MaxIdle)
    Idle.push_back(std::move(Client));
  // Else: drop — closing the surplus connection here is fine, the
  // daemon's reader thread just sees a clean EOF.
}

void ClientPool::clear() {
  std::vector<std::unique_ptr<RemoteClient>> Doomed;
  {
    std::lock_guard<std::mutex> Lock(M);
    Doomed.swap(Idle);
  }
  // Destroyed outside the lock: closing sockets can block briefly.
}

size_t ClientPool::idleCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return Idle.size();
}
