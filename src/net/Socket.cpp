//===--- Socket.cpp - RAII stream sockets and frame transport -------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "net/Socket.h"

#include "fault/FaultPlan.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace m2c;
using namespace m2c::net;

namespace {

std::string errnoText(const char *What) {
  return std::string(What) + ": " + std::strerror(errno);
}

} // namespace

//===--- Socket ------------------------------------------------------------===//

Socket &Socket::operator=(Socket &&O) noexcept {
  if (this != &O) {
    close();
    Fd = O.Fd;
    O.Fd = -1;
  }
  return *this;
}

Socket Socket::connectUnix(const std::string &Path, std::string &Err) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: " + Path;
    return Socket();
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = errnoText("socket");
    return Socket();
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = errnoText(("connect " + Path).c_str());
    ::close(Fd);
    return Socket();
  }
  return Socket(Fd);
}

Socket Socket::connectTcp(const std::string &Host, uint16_t Port,
                          std::string &Err) {
  addrinfo Hints{};
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  addrinfo *Res = nullptr;
  std::string PortText = std::to_string(Port);
  int Rc = ::getaddrinfo(Host.c_str(), PortText.c_str(), &Hints, &Res);
  if (Rc != 0) {
    Err = "resolve " + Host + ": " + ::gai_strerror(Rc);
    return Socket();
  }
  int Fd = -1;
  for (addrinfo *A = Res; A; A = A->ai_next) {
    Fd = ::socket(A->ai_family, A->ai_socktype, A->ai_protocol);
    if (Fd < 0)
      continue;
    if (::connect(Fd, A->ai_addr, A->ai_addrlen) == 0)
      break;
    ::close(Fd);
    Fd = -1;
  }
  ::freeaddrinfo(Res);
  if (Fd < 0) {
    Err = errnoText(("connect " + Host + ":" + PortText).c_str());
    return Socket();
  }
  return Socket(Fd);
}

bool Socket::sendAll(const void *Bytes, size_t Size) {
  fault::FaultOutcome F = M2C_FAULT_HIT("net.send");
  if (F.fail())
    return false; // Injected transient send error.
  if (F.close()) {
    shutdownBoth(); // Injected peer reset: both sides see the teardown.
    return false;
  }
  const char *P = static_cast<const char *>(Bytes);
  while (Size > 0) {
    ssize_t N = ::send(Fd, P, Size, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += N;
    Size -= static_cast<size_t>(N);
  }
  return true;
}

bool Socket::sendFrame(const Frame &F) {
  std::string Bytes = wireBytes(F);
  if (Bytes.empty())
    return false;
  return sendAll(Bytes.data(), Bytes.size());
}

namespace {

/// Reads exactly \p Size bytes.  Returns 1 on success, 0 on clean EOF
/// with zero bytes read, -1 on EOF mid-read or error.
int recvExact(int Fd, void *Bytes, size_t Size, bool &WasError) {
  char *P = static_cast<char *>(Bytes);
  size_t Got = 0;
  WasError = false;
  while (Got < Size) {
    ssize_t N = ::recv(Fd, P + Got, Size - Got, 0);
    if (N == 0)
      return Got == 0 ? 0 : -1;
    if (N < 0) {
      if (errno == EINTR)
        continue;
      WasError = true;
      return -1;
    }
    Got += static_cast<size_t>(N);
  }
  return 1;
}

} // namespace

Socket::RecvStatus Socket::recvFrame(Frame &F, uint32_t MaxBytes) {
  fault::FaultOutcome FO = M2C_FAULT_HIT("net.recv");
  if (FO.fail())
    return RecvStatus::Error; // Injected recv(2) failure.
  if (FO.close()) {
    shutdownBoth(); // Injected connection loss before the next frame.
    return RecvStatus::Closed;
  }
  uint8_t Prefix[4];
  bool WasError = false;
  int Rc = recvExact(Fd, Prefix, sizeof(Prefix), WasError);
  if (Rc == 0)
    return RecvStatus::Closed;
  if (Rc < 0)
    return WasError ? RecvStatus::Error : RecvStatus::Truncated;
  uint32_t Length = 0;
  for (int I = 0; I < 4; ++I)
    Length |= static_cast<uint32_t>(Prefix[I]) << (8 * I);
  if (Length == 0)
    return RecvStatus::Malformed;
  if (Length > MaxBytes)
    return RecvStatus::TooLarge;

  uint8_t Type = 0;
  Rc = recvExact(Fd, &Type, 1, WasError);
  if (Rc <= 0)
    return WasError ? RecvStatus::Error : RecvStatus::Truncated;
  F.Type = static_cast<MsgType>(Type);
  F.Payload.resize(Length - 1);
  if (Length > 1) {
    Rc = recvExact(Fd, F.Payload.data(), F.Payload.size(), WasError);
    if (Rc <= 0)
      return WasError ? RecvStatus::Error : RecvStatus::Truncated;
  }
  return RecvStatus::Ok;
}

void Socket::shutdownBoth() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RDWR);
}

void Socket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

//===--- Listener ----------------------------------------------------------===//

Listener::~Listener() { close(); }

Listener::Listener(Listener &&O) noexcept
    : Fd(O.Fd), Port(O.Port), UnixPath(std::move(O.UnixPath)) {
  O.Fd = -1;
  O.UnixPath.clear();
}

Listener &Listener::operator=(Listener &&O) noexcept {
  if (this != &O) {
    close();
    Fd = O.Fd;
    Port = O.Port;
    UnixPath = std::move(O.UnixPath);
    O.Fd = -1;
    O.UnixPath.clear();
  }
  return *this;
}

Listener Listener::unixDomain(const std::string &Path, std::string &Err) {
  Listener L;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: " + Path;
    return L;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = errnoText("socket");
    return L;
  }
  ::unlink(Path.c_str()); // Replace a stale socket file from a dead daemon.
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 64) != 0) {
    Err = errnoText(("bind " + Path).c_str());
    ::close(Fd);
    return L;
  }
  L.Fd = Fd;
  L.UnixPath = Path;
  return L;
}

Listener Listener::tcp(uint16_t Port, std::string &Err) {
  Listener L;
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = errnoText("socket");
    return L;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 64) != 0) {
    Err = errnoText("bind tcp");
    ::close(Fd);
    return L;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) == 0)
    L.Port = ntohs(Addr.sin_port);
  L.Fd = Fd;
  return L;
}

Listener::AcceptStatus Listener::acceptFor(int TimeoutMs, Socket &Out) {
  pollfd P{Fd, POLLIN, 0};
  int Rc = ::poll(&P, 1, TimeoutMs);
  if (Rc == 0)
    return AcceptStatus::TimedOut;
  if (Rc < 0)
    return errno == EINTR ? AcceptStatus::TimedOut : AcceptStatus::Error;
  int Client = ::accept(Fd, nullptr, nullptr);
  if (Client < 0)
    return errno == EINTR || errno == ECONNABORTED ? AcceptStatus::TimedOut
                                                   : AcceptStatus::Error;
  if (M2C_FAULT_HIT("net.accept").fired()) {
    ::close(Client); // Injected accept failure: the client sees a reset.
    return AcceptStatus::TimedOut;
  }
  Out = Socket(Client);
  return AcceptStatus::Accepted;
}

void Listener::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  if (!UnixPath.empty()) {
    ::unlink(UnixPath.c_str());
    UnixPath.clear();
  }
}
