//===--- Protocol.cpp - m2cd wire protocol (frames + messages) ------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "net/Protocol.h"

using namespace m2c;
using namespace m2c::net;

const char *net::statusName(Status S) {
  switch (S) {
  case Status::Ok:
    return "OK";
  case Status::RejectedOverload:
    return "REJECTED_OVERLOAD";
  case Status::DeadlineExceeded:
    return "DEADLINE_EXCEEDED";
  case Status::Cancelled:
    return "CANCELLED";
  case Status::BuildFailed:
    return "BUILD_FAILED";
  case Status::Draining:
    return "DRAINING";
  case Status::Malformed:
    return "MALFORMED";
  case Status::UnsupportedVersion:
    return "UNSUPPORTED_VERSION";
  case Status::UnknownType:
    return "UNKNOWN_TYPE";
  case Status::FrameTooLarge:
    return "FRAME_TOO_LARGE";
  case Status::UnknownRequest:
    return "UNKNOWN_REQUEST";
  case Status::Internal:
    return "INTERNAL";
  }
  return "?";
}

namespace {

//===--- Primitive writer/reader (PROTOCOL.md §3) --------------------------===//

class Writer {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
  }
  void str(std::string_view S) {
    u32(static_cast<uint32_t>(S.size()));
    Buf.append(S.data(), S.size());
  }
  std::string take() { return std::move(Buf); }

private:
  std::string Buf;
};

class Reader {
public:
  explicit Reader(const std::string &Payload) : Buf(Payload) {}

  bool u8(uint8_t &V) {
    if (Pos + 1 > Buf.size())
      return fail();
    V = static_cast<uint8_t>(Buf[Pos++]);
    return true;
  }
  bool u32(uint32_t &V) {
    if (Pos + 4 > Buf.size())
      return fail();
    V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(static_cast<uint8_t>(Buf[Pos++])) << (8 * I);
    return true;
  }
  bool u64(uint64_t &V) {
    if (Pos + 8 > Buf.size())
      return fail();
    V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(static_cast<uint8_t>(Buf[Pos++])) << (8 * I);
    return true;
  }
  bool str(std::string &S) {
    uint32_t N;
    if (!u32(N) || Buf.size() - Pos < N)
      return fail();
    S.assign(Buf, Pos, N);
    Pos += N;
    return true;
  }
  /// The payload must decode *exactly*: trailing bytes are malformed.
  bool done() const { return Ok && Pos == Buf.size(); }

private:
  bool fail() {
    Ok = false;
    return false;
  }
  const std::string &Buf;
  size_t Pos = 0;
  bool Ok = true;
};

Frame frame(MsgType T, Writer &W) { return Frame{T, W.take()}; }

} // namespace

//===--- Encoders ----------------------------------------------------------===//

Frame net::encode(const HelloMsg &M) {
  Writer W;
  W.u32(M.MinVersion);
  W.u32(M.MaxVersion);
  return frame(MsgType::Hello, W);
}

Frame net::encode(const WelcomeMsg &M) {
  Writer W;
  W.u32(M.Version);
  W.str(M.Server);
  return frame(MsgType::Welcome, W);
}

Frame net::encode(const BuildRequestMsg &M) {
  Writer W;
  W.u64(M.RequestId);
  W.u32(M.DeadlineMs);
  W.u8(M.OptLevel);
  W.u32(static_cast<uint32_t>(M.Roots.size()));
  for (const std::string &R : M.Roots)
    W.str(R);
  W.u32(static_cast<uint32_t>(M.Files.size()));
  for (const auto &[Name, Text] : M.Files) {
    W.str(Name);
    W.str(Text);
  }
  return frame(MsgType::Build, W);
}

Frame net::encode(const BuildResultMsg &M) {
  Writer W;
  W.u64(M.RequestId);
  W.u8(static_cast<uint8_t>(M.St));
  W.str(M.Diagnostics);
  W.u64(M.ElapsedNs);
  W.u32(static_cast<uint32_t>(M.Modules.size()));
  for (const ModuleArtifact &A : M.Modules) {
    W.str(A.Name);
    W.u8(A.FromCache ? 1 : 0);
    W.u32(A.StreamCount);
    W.str(A.Object);
  }
  return frame(MsgType::BuildResult, W);
}

Frame net::encode(const CancelMsg &M) {
  Writer W;
  W.u64(M.RequestId);
  return frame(MsgType::Cancel, W);
}

Frame net::encodeStatsRequest() { return Frame{MsgType::Stats, {}}; }

Frame net::encode(const StatsResultMsg &M) {
  Writer W;
  W.u32(static_cast<uint32_t>(M.Counters.size()));
  for (const auto &[Name, Value] : M.Counters) {
    W.str(Name);
    W.u64(Value);
  }
  return frame(MsgType::StatsResult, W);
}

Frame net::encodePing(uint64_t Token) {
  Writer W;
  W.u64(Token);
  return frame(MsgType::Ping, W);
}

Frame net::encodePong(uint64_t Token) {
  Writer W;
  W.u64(Token);
  return frame(MsgType::Pong, W);
}

Frame net::encode(const ErrorMsg &M) {
  Writer W;
  W.u8(static_cast<uint8_t>(M.St));
  W.str(M.Detail);
  return frame(MsgType::Error, W);
}

//===--- Decoders ----------------------------------------------------------===//

bool net::decode(const Frame &F, HelloMsg &M) {
  if (F.Type != MsgType::Hello)
    return false;
  Reader R(F.Payload);
  R.u32(M.MinVersion);
  R.u32(M.MaxVersion);
  return R.done();
}

bool net::decode(const Frame &F, WelcomeMsg &M) {
  if (F.Type != MsgType::Welcome)
    return false;
  Reader R(F.Payload);
  R.u32(M.Version);
  R.str(M.Server);
  return R.done();
}

bool net::decode(const Frame &F, BuildRequestMsg &M) {
  if (F.Type != MsgType::Build)
    return false;
  Reader R(F.Payload);
  uint32_t N = 0;
  R.u64(M.RequestId);
  R.u32(M.DeadlineMs);
  if (!R.u8(M.OptLevel) || M.OptLevel > 2)
    return false;
  if (!R.u32(N))
    return false;
  M.Roots.clear();
  for (uint32_t I = 0; I < N; ++I) {
    std::string Root;
    if (!R.str(Root))
      return false;
    M.Roots.push_back(std::move(Root));
  }
  if (!R.u32(N))
    return false;
  M.Files.clear();
  for (uint32_t I = 0; I < N; ++I) {
    std::string Name, Text;
    if (!R.str(Name) || !R.str(Text))
      return false;
    M.Files.emplace_back(std::move(Name), std::move(Text));
  }
  return R.done();
}

bool net::decode(const Frame &F, BuildResultMsg &M) {
  if (F.Type != MsgType::BuildResult)
    return false;
  Reader R(F.Payload);
  uint8_t St = 0;
  uint32_t N = 0;
  R.u64(M.RequestId);
  R.u8(St);
  R.str(M.Diagnostics);
  R.u64(M.ElapsedNs);
  if (!R.u32(N) || St > static_cast<uint8_t>(Status::Internal))
    return false;
  M.St = static_cast<Status>(St);
  M.Modules.clear();
  for (uint32_t I = 0; I < N; ++I) {
    ModuleArtifact A;
    uint8_t FromCache = 0;
    if (!R.str(A.Name) || !R.u8(FromCache) || !R.u32(A.StreamCount) ||
        !R.str(A.Object))
      return false;
    A.FromCache = FromCache != 0;
    M.Modules.push_back(std::move(A));
  }
  return R.done();
}

bool net::decode(const Frame &F, CancelMsg &M) {
  if (F.Type != MsgType::Cancel)
    return false;
  Reader R(F.Payload);
  R.u64(M.RequestId);
  return R.done();
}

bool net::decode(const Frame &F, StatsResultMsg &M) {
  if (F.Type != MsgType::StatsResult)
    return false;
  Reader R(F.Payload);
  uint32_t N = 0;
  if (!R.u32(N))
    return false;
  M.Counters.clear();
  for (uint32_t I = 0; I < N; ++I) {
    std::string Name;
    uint64_t Value = 0;
    if (!R.str(Name) || !R.u64(Value))
      return false;
    M.Counters.emplace_back(std::move(Name), Value);
  }
  return R.done();
}

bool net::decode(const Frame &F, PingMsg &M) {
  if (F.Type != MsgType::Ping && F.Type != MsgType::Pong)
    return false;
  Reader R(F.Payload);
  R.u64(M.Token);
  return R.done();
}

bool net::decode(const Frame &F, ErrorMsg &M) {
  if (F.Type != MsgType::Error)
    return false;
  Reader R(F.Payload);
  uint8_t St = 0;
  R.u8(St);
  R.str(M.Detail);
  if (!R.done() || St == 0 || St > static_cast<uint8_t>(Status::Internal))
    return false;
  M.St = static_cast<Status>(St);
  return true;
}

std::string net::wireBytes(const Frame &F) {
  if (F.Payload.size() + 1 > MaxFrameBytes)
    return {};
  uint32_t Length = static_cast<uint32_t>(F.Payload.size() + 1);
  std::string Out;
  Out.reserve(4 + Length);
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((Length >> (8 * I)) & 0xFF));
  Out.push_back(static_cast<char>(F.Type));
  Out += F.Payload;
  return Out;
}
