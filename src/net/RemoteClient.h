//===--- RemoteClient.h - client side of the m2cd protocol ------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client side of docs/PROTOCOL.md: connect + HELLO/WELCOME, then
/// synchronous or pipelined builds, cancellation, stats and ping.  Used
/// by `m2c_cli -remote`, DaemonTest and bench_daemon.  One RemoteClient
/// is one connection and is NOT thread-safe; concurrency comes from
/// opening several clients (the daemon multiplexes them server-side).
///
//===----------------------------------------------------------------------===//

#ifndef M2C_NET_REMOTECLIENT_H
#define M2C_NET_REMOTECLIENT_H

#include "net/Protocol.h"
#include "net/Socket.h"

#include <map>
#include <memory>
#include <string>

namespace m2c::net {

class RemoteClient {
public:
  /// Connects to \p Address and performs the HELLO/WELCOME handshake.
  /// "tcp:HOST:PORT" selects TCP; anything else is a unix-socket path.
  /// Returns nullptr with \p Err set on connect, transport or version
  /// failure.
  static std::unique_ptr<RemoteClient> open(const std::string &Address,
                                            std::string &Err);

  /// The version the server chose in WELCOME.
  uint32_t version() const { return Version; }

  /// Fresh request id, unique within this connection.
  uint64_t nextRequestId() { return NextId++; }

  /// Sends BUILD and blocks for its BUILD_RESULT.  False only on
  /// transport/protocol failure (\p Err set); compile errors, shed,
  /// deadline etc. are carried in Out.St.
  bool build(const BuildRequestMsg &Req, BuildResultMsg &Out,
             std::string &Err);

  /// Pipelined form: sends the BUILD without waiting.
  bool startBuild(const BuildRequestMsg &Req, std::string &Err);

  /// Blocks until the result for \p RequestId arrives.  Results for
  /// *other* in-flight ids that arrive first are buffered and returned
  /// by their own awaitResult calls.
  bool awaitResult(uint64_t RequestId, BuildResultMsg &Out, std::string &Err);

  /// Sends CANCEL for \p RequestId (fire-and-forget; PROTOCOL.md §7 —
  /// the only observable effect is the pending result's status).
  bool cancel(uint64_t RequestId);

  /// Fetches the daemon's merged counters.
  bool stats(std::map<std::string, uint64_t> &Out, std::string &Err);

  /// Round-trips a PING.
  bool ping(std::string &Err);

private:
  explicit RemoteClient(Socket S) : Sock(std::move(S)) {}

  Socket Sock;
  uint32_t Version = 0;
  uint64_t NextId = 1;
  std::map<uint64_t, BuildResultMsg> Buffered; ///< Out-of-order results.
};

} // namespace m2c::net

#endif // M2C_NET_REMOTECLIENT_H
