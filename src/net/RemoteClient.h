//===--- RemoteClient.h - client side of the m2cd protocol ------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client side of docs/PROTOCOL.md: connect + HELLO/WELCOME, then
/// synchronous or pipelined builds, cancellation, stats and ping.  Used
/// by `m2c_cli -remote`, DaemonTest and bench_daemon.  One RemoteClient
/// is one connection and is NOT thread-safe; concurrency comes from
/// opening several clients (the daemon multiplexes them server-side).
///
//===----------------------------------------------------------------------===//

#ifndef M2C_NET_REMOTECLIENT_H
#define M2C_NET_REMOTECLIENT_H

#include "net/Protocol.h"
#include "net/Socket.h"

#include <functional>
#include <map>
#include <memory>
#include <string>

namespace m2c::net {

/// What went wrong, coarsely — drives retry policy and CLI exit codes.
/// Errors before a BUILD_RESULT arrives (connect, transport, protocol) are
/// set by the client methods; reply statuses map through categorize().
enum class ErrorCategory : uint8_t {
  None,           ///< No failure.
  ConnectRefused, ///< connect(2)/resolve failed — daemon absent or down.
  Transport,      ///< Connection lost mid-exchange (send/recv failure).
  Protocol,       ///< Undecodable or unexpected frame; version refusal.
  Overload,       ///< Daemon shed the request (RejectedOverload).
  Draining,       ///< Daemon is shutting down.
  Deadline,       ///< Request deadline expired server-side.
  Cancelled,      ///< Request was cancelled.
  BuildFailed,    ///< Compile errors — a *successful* protocol exchange.
  Internal,       ///< Daemon-side internal error (includes injected faults).
};

const char *errorCategoryName(ErrorCategory C);

/// Maps a BUILD_RESULT / ERROR status to its client-facing category.
ErrorCategory categorize(Status St);

/// True for categories worth a reconnect-and-retry: transient availability
/// failures.  Protocol errors (a bug), deadline expiry (the time budget is
/// spent), cancellation and genuine compile failures are not retried.
bool isRetryable(ErrorCategory C);

class RemoteClient {
public:
  /// Connects to \p Address and performs the HELLO/WELCOME handshake.
  /// "tcp:HOST:PORT" selects TCP; anything else is a unix-socket path.
  /// Returns nullptr with \p Err set on connect, transport or version
  /// failure; \p Category (optional) receives the failure class.
  static std::unique_ptr<RemoteClient> open(const std::string &Address,
                                            std::string &Err,
                                            ErrorCategory *Category = nullptr);

  /// The version the server chose in WELCOME.
  uint32_t version() const { return Version; }

  /// The server identification string from WELCOME ("m2cd/1", or
  /// "m2cd/1 worker" for a farm worker — PROTOCOL.md §14).
  const std::string &serverName() const { return Server; }

  /// Fresh request id, unique within this connection.
  uint64_t nextRequestId() { return NextId++; }

  /// Sends BUILD and blocks for its BUILD_RESULT.  False only on
  /// transport/protocol failure (\p Err set); compile errors, shed,
  /// deadline etc. are carried in Out.St.
  bool build(const BuildRequestMsg &Req, BuildResultMsg &Out,
             std::string &Err);

  /// Pipelined form: sends the BUILD without waiting.
  bool startBuild(const BuildRequestMsg &Req, std::string &Err);

  /// Blocks until the result for \p RequestId arrives.  Results for
  /// *other* in-flight ids that arrive first are buffered and returned
  /// by their own awaitResult calls.
  bool awaitResult(uint64_t RequestId, BuildResultMsg &Out, std::string &Err);

  /// Sends CANCEL for \p RequestId (fire-and-forget; PROTOCOL.md §7 —
  /// the only observable effect is the pending result's status).
  bool cancel(uint64_t RequestId);

  /// Fetches the daemon's merged counters.
  bool stats(std::map<std::string, uint64_t> &Out, std::string &Err);

  /// Round-trips a PING.
  bool ping(std::string &Err);

  /// Category of the most recent failure (None after a success).  Only
  /// covers pre-result failures — a delivered BUILD_RESULT's status is
  /// classified by categorize().
  ErrorCategory lastErrorCategory() const { return LastCategory; }

private:
  explicit RemoteClient(Socket S) : Sock(std::move(S)) {}

  bool failWith(ErrorCategory C, std::string Message, std::string &Err) {
    LastCategory = C;
    Err = std::move(Message);
    return false;
  }

  Socket Sock;
  uint32_t Version = 0;
  std::string Server;
  uint64_t NextId = 1;
  ErrorCategory LastCategory = ErrorCategory::None;
  std::map<uint64_t, BuildResultMsg> Buffered; ///< Out-of-order results.
};

/// Bounded exponential backoff for buildWithRetry, with equal-jitter
/// de-synchronization: when many clients back off from the same event (a
/// worker died; the farm respawns it), exact doubling would land every
/// retry on the daemon in the same instant.  Each sleep is therefore
/// drawn uniformly from [Backoff*(1-Jitter), Backoff].
struct RetryPolicy {
  unsigned MaxRetries = 0;         ///< Retries *after* the first attempt.
  unsigned InitialBackoffMs = 100; ///< Doubled per retry...
  unsigned MaxBackoffMs = 2000;    ///< ...up to this cap.
  /// Fraction of each backoff that is randomized.  0 restores the exact
  /// doubling schedule; 1 draws from [0, Backoff].
  double Jitter = 0.5;
  /// Seed of the jitter stream.  0 (the default) uses a distinct
  /// per-process random seed — what production wants, since the point is
  /// that independent clients disagree.  Tests pin a nonzero seed and
  /// get a fully deterministic schedule.
  uint64_t JitterSeed = 0;
  /// Test/logging hook: called instead of sleeping when set.
  std::function<void(unsigned Attempt, unsigned SleepMs)> OnBackoff;
};

/// The sleep before retry number \p Attempt (1-based) under \p Policy:
/// doubling from InitialBackoffMs, capped at MaxBackoffMs, jittered per
/// the policy.  Pure — a nonzero JitterSeed yields the same schedule on
/// every call, which is what FaultTest pins down.
unsigned backoffSleepMs(const RetryPolicy &Policy, unsigned Attempt);

/// Outcome of buildWithRetry.
struct RemoteBuildOutcome {
  bool Delivered = false;  ///< A BUILD_RESULT arrived (any status).
  unsigned Attempts = 0;   ///< Connections tried.
  ErrorCategory Category = ErrorCategory::None; ///< Final classification.
  std::string Err;         ///< Transport/protocol detail when !Delivered.
  /// Retries broken down by the category that caused each backoff
  /// (Attempts == 1 + sum of these).  The CLI prints them so operators
  /// can tell "slow because overloaded" from "slow because flaky".
  std::map<ErrorCategory, unsigned> Retries;
};

/// Sends \p Req with reconnect-and-retry: each attempt opens a fresh
/// connection, and transient failures (connect refused, transport loss,
/// overload shed, drain, daemon-internal errors) are retried with bounded
/// exponential backoff.  Protocol errors, deadline expiry, cancellation and
/// compile failures are returned immediately.
///
/// Retrying a BUILD is safe because BUILD is idempotent: the request names
/// its inputs completely (roots + pushed file contents), compilation output
/// is a pure function of those inputs (byte-identical across runs by the
/// service's own identity tests), and cache writes are content-addressed
/// temp+rename upserts — a replay can only overwrite an entry with the same
/// bytes or recompute the same artifacts.  The only side effect of a
/// duplicate BUILD is wasted work, never divergent state.  FaultTest
/// RetriedBuildIsIdempotent locks this in.
RemoteBuildOutcome buildWithRetry(const std::string &Address,
                                  const BuildRequestMsg &Req,
                                  const RetryPolicy &Policy,
                                  BuildResultMsg &Out);

/// As above, but the target address is chosen per attempt (0-based): the
/// farm coordinator retries a killed worker's in-flight BUILDs on a
/// sibling by rotating the provider over its healthy upstreams.  BUILD
/// idempotence (above) is what makes cross-worker replay safe.
RemoteBuildOutcome
buildWithRetry(const std::function<std::string(unsigned Attempt)> &Address,
               const BuildRequestMsg &Req, const RetryPolicy &Policy,
               BuildResultMsg &Out);

} // namespace m2c::net

#endif // M2C_NET_REMOTECLIENT_H
