//===--- ClientPool.h - persistent upstream connections ---------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe pool of persistent RemoteClient connections to ONE
/// upstream address.  RemoteClient itself is single-threaded by design
/// (one connection, one conversation); the farm coordinator relays many
/// concurrent BUILDs to the same worker, so it checks a connection out
/// of the pool per relay and returns it when the exchange completed
/// cleanly.  Connections that saw a transport or protocol failure are
/// dropped, not returned — a half-consumed conversation can never be
/// handed to the next relay.  clear() empties the idle set, which the
/// farm calls after respawning a worker so no relay inherits a socket
/// into the dead incarnation.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_NET_CLIENTPOOL_H
#define M2C_NET_CLIENTPOOL_H

#include "net/RemoteClient.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace m2c::net {

class ClientPool {
public:
  /// \p MaxIdle bounds the parked-connection set; surplus returns are
  /// simply closed.
  explicit ClientPool(std::string Address, size_t MaxIdle = 8)
      : Addr(std::move(Address)), MaxIdle(MaxIdle) {}
  ClientPool(const ClientPool &) = delete;
  ClientPool &operator=(const ClientPool &) = delete;

  const std::string &address() const { return Addr; }

  /// An open, handshaken connection: a parked one when available, a
  /// fresh one otherwise.  Returns nullptr with \p Err / \p Category set
  /// when connecting fails.
  std::unique_ptr<RemoteClient> acquire(std::string &Err,
                                        ErrorCategory *Category = nullptr);

  /// Parks a connection whose last exchange completed cleanly.  Callers
  /// must NOT release a client after a failed send/recv; destroy it.
  void release(std::unique_ptr<RemoteClient> Client);

  /// Closes every parked connection (the upstream restarted; their file
  /// descriptors point at a dead incarnation).  In-flight checked-out
  /// clients are unaffected — their next exchange fails and the relay's
  /// retry logic handles it.
  void clear();

  size_t idleCount() const;
  uint64_t opened() const { return Opened.load(std::memory_order_relaxed); }
  uint64_t reused() const { return Reused.load(std::memory_order_relaxed); }

private:
  const std::string Addr;
  const size_t MaxIdle;
  mutable std::mutex M;
  std::vector<std::unique_ptr<RemoteClient>> Idle;
  std::atomic<uint64_t> Opened{0};
  std::atomic<uint64_t> Reused{0};
};

} // namespace m2c::net

#endif // M2C_NET_CLIENTPOOL_H
