//===--- Socket.h - RAII stream sockets and frame transport -----*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin RAII wrappers over POSIX stream sockets — unix-domain and TCP —
/// plus whole-frame send/receive in the PROTOCOL.md §2 layout.  Nothing
/// here knows message semantics; that lives in Protocol.h (encoding) and
/// daemon/Daemon.cpp / net/RemoteClient.cpp (behaviour).
///
/// Blocking I/O throughout: the daemon dedicates a thread per connection
/// and a poll()-based accept loop, the client is synchronous by design.
/// SIGPIPE is avoided with MSG_NOSIGNAL, so neither side needs a global
/// signal disposition.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_NET_SOCKET_H
#define M2C_NET_SOCKET_H

#include "net/Protocol.h"

#include <cstdint>
#include <string>

namespace m2c::net {

/// A connected stream socket (move-only RAII over the fd).
class Socket {
public:
  Socket() = default;
  explicit Socket(int Fd) : Fd(Fd) {}
  ~Socket() { close(); }
  Socket(Socket &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  Socket &operator=(Socket &&O) noexcept;
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;

  bool valid() const { return Fd >= 0; }

  /// Connects to a unix-domain socket at \p Path.  Invalid socket +
  /// \p Err set on failure.
  static Socket connectUnix(const std::string &Path, std::string &Err);

  /// Connects to TCP \p Host : \p Port (numeric or resolvable host).
  static Socket connectTcp(const std::string &Host, uint16_t Port,
                           std::string &Err);

  /// Sends all of \p Bytes.  False on any error (peer gone, etc.).
  bool sendAll(const void *Bytes, size_t Size);

  /// Serializes and sends one frame.  False on transport error or an
  /// over-cap payload.
  bool sendFrame(const Frame &F);

  /// Outcome of recvFrame: what the stream yielded before a full frame.
  enum class RecvStatus {
    Ok,        ///< F holds a complete frame.
    Closed,    ///< Orderly EOF on a frame boundary.
    Truncated, ///< EOF mid-frame (length prefix or payload cut short).
    TooLarge,  ///< Announced length exceeds \p MaxBytes; nothing consumed
               ///< after the prefix — connection must be abandoned.
    Malformed, ///< Announced length is zero.
    Error,     ///< recv(2) failure.
  };

  /// Receives exactly one frame.
  RecvStatus recvFrame(Frame &F, uint32_t MaxBytes = MaxFrameBytes);

  /// shutdown(2) both directions: any thread blocked in recv on this
  /// socket wakes with EOF.  Used by the daemon to unblock connection
  /// readers at stop.
  void shutdownBoth();

  void close();

private:
  int Fd = -1;
};

/// A listening socket (unix-domain or TCP) with a poll()-based accept.
class Listener {
public:
  Listener() = default;
  ~Listener();
  Listener(Listener &&O) noexcept;
  Listener &operator=(Listener &&O) noexcept;
  Listener(const Listener &) = delete;
  Listener &operator=(const Listener &) = delete;

  /// Binds and listens on a unix-domain socket at \p Path, replacing any
  /// stale socket file.  Invalid listener + \p Err set on failure.
  static Listener unixDomain(const std::string &Path, std::string &Err);

  /// Binds and listens on TCP 127.0.0.1:\p Port (0 = ephemeral; see
  /// port()).
  static Listener tcp(uint16_t Port, std::string &Err);

  bool valid() const { return Fd >= 0; }

  /// The bound TCP port (resolves ephemeral binds); 0 for unix sockets.
  uint16_t port() const { return Port; }

  enum class AcceptStatus { Accepted, TimedOut, Error };

  /// Waits up to \p TimeoutMs for a connection; on Accepted, \p Out is
  /// the connected socket.  The timeout is what lets the daemon's accept
  /// loop notice stop/drain flags.
  AcceptStatus acceptFor(int TimeoutMs, Socket &Out);

  void close();

private:
  int Fd = -1;
  uint16_t Port = 0;
  std::string UnixPath; ///< Unlinked on close.
};

} // namespace m2c::net

#endif // M2C_NET_SOCKET_H
