//===--- RemoteClient.cpp - client side of the m2cd protocol --------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "net/RemoteClient.h"

#include <algorithm>
#include <chrono>
#include <random>
#include <thread>

#include <unistd.h>

using namespace m2c;
using namespace m2c::net;

const char *m2c::net::errorCategoryName(ErrorCategory C) {
  switch (C) {
  case ErrorCategory::None:
    return "none";
  case ErrorCategory::ConnectRefused:
    return "connect-refused";
  case ErrorCategory::Transport:
    return "transport";
  case ErrorCategory::Protocol:
    return "protocol";
  case ErrorCategory::Overload:
    return "overload";
  case ErrorCategory::Draining:
    return "draining";
  case ErrorCategory::Deadline:
    return "deadline";
  case ErrorCategory::Cancelled:
    return "cancelled";
  case ErrorCategory::BuildFailed:
    return "build-failed";
  case ErrorCategory::Internal:
    return "internal";
  }
  return "unknown";
}

ErrorCategory m2c::net::categorize(Status St) {
  switch (St) {
  case Status::Ok:
    return ErrorCategory::None;
  case Status::RejectedOverload:
    return ErrorCategory::Overload;
  case Status::DeadlineExceeded:
    return ErrorCategory::Deadline;
  case Status::Cancelled:
    return ErrorCategory::Cancelled;
  case Status::BuildFailed:
    return ErrorCategory::BuildFailed;
  case Status::Draining:
    return ErrorCategory::Draining;
  case Status::Internal:
    return ErrorCategory::Internal;
  case Status::Malformed:
  case Status::UnsupportedVersion:
  case Status::UnknownType:
  case Status::FrameTooLarge:
  case Status::UnknownRequest:
    return ErrorCategory::Protocol;
  }
  return ErrorCategory::Protocol;
}

bool m2c::net::isRetryable(ErrorCategory C) {
  switch (C) {
  case ErrorCategory::ConnectRefused:
  case ErrorCategory::Transport:
  case ErrorCategory::Overload:
  case ErrorCategory::Draining:
  case ErrorCategory::Internal:
    return true;
  default:
    return false;
  }
}

std::unique_ptr<RemoteClient> RemoteClient::open(const std::string &Address,
                                                 std::string &Err,
                                                 ErrorCategory *Category) {
  auto Fail = [&](ErrorCategory C) -> std::unique_ptr<RemoteClient> {
    if (Category)
      *Category = C;
    return nullptr;
  };
  Socket S;
  if (Address.rfind("tcp:", 0) == 0) {
    std::string HostPort = Address.substr(4);
    size_t Colon = HostPort.rfind(':');
    if (Colon == std::string::npos) {
      Err = "expected tcp:HOST:PORT, got '" + Address + "'";
      return Fail(ErrorCategory::Protocol);
    }
    int Port = std::atoi(HostPort.c_str() + Colon + 1);
    if (Port <= 0 || Port > 65535) {
      Err = "bad port in '" + Address + "'";
      return Fail(ErrorCategory::Protocol);
    }
    S = Socket::connectTcp(HostPort.substr(0, Colon),
                           static_cast<uint16_t>(Port), Err);
  } else {
    S = Socket::connectUnix(Address, Err);
  }
  if (!S.valid())
    return Fail(ErrorCategory::ConnectRefused);

  std::unique_ptr<RemoteClient> C(new RemoteClient(std::move(S)));
  if (!C->Sock.sendFrame(encode(HelloMsg{ProtocolVersion, ProtocolVersion}))) {
    Err = "handshake send failed";
    return Fail(ErrorCategory::Transport);
  }
  Frame F;
  if (C->Sock.recvFrame(F) != Socket::RecvStatus::Ok) {
    Err = "handshake: connection closed";
    return Fail(ErrorCategory::Transport);
  }
  ErrorMsg E;
  if (decode(F, E)) {
    Err = std::string("server refused: ") + statusName(E.St) +
          (E.Detail.empty() ? "" : " (" + E.Detail + ")");
    return Fail(categorize(E.St));
  }
  WelcomeMsg W;
  if (!decode(F, W)) {
    Err = "handshake: unexpected reply frame";
    return Fail(ErrorCategory::Protocol);
  }
  C->Version = W.Version;
  C->Server = W.Server;
  if (Category)
    *Category = ErrorCategory::None;
  return C;
}

bool RemoteClient::build(const BuildRequestMsg &Req, BuildResultMsg &Out,
                         std::string &Err) {
  return startBuild(Req, Err) && awaitResult(Req.RequestId, Out, Err);
}

bool RemoteClient::startBuild(const BuildRequestMsg &Req, std::string &Err) {
  if (!Sock.sendFrame(encode(Req)))
    return failWith(ErrorCategory::Transport,
                    "send failed (request too large or connection lost)", Err);
  LastCategory = ErrorCategory::None;
  return true;
}

bool RemoteClient::awaitResult(uint64_t RequestId, BuildResultMsg &Out,
                               std::string &Err) {
  for (;;) {
    auto It = Buffered.find(RequestId);
    if (It != Buffered.end()) {
      Out = std::move(It->second);
      Buffered.erase(It);
      LastCategory = ErrorCategory::None;
      return true;
    }
    Frame F;
    switch (Sock.recvFrame(F)) {
    case Socket::RecvStatus::Ok:
      break;
    case Socket::RecvStatus::Closed:
    case Socket::RecvStatus::Truncated:
      return failWith(ErrorCategory::Transport,
                      "connection closed before the result arrived", Err);
    default:
      return failWith(ErrorCategory::Transport, "transport error", Err);
    }
    ErrorMsg E;
    if (decode(F, E))
      return failWith(categorize(E.St),
                      std::string("server error: ") + statusName(E.St) +
                          (E.Detail.empty() ? "" : " (" + E.Detail + ")"),
                      Err);
    BuildResultMsg R;
    if (!decode(F, R))
      return failWith(ErrorCategory::Protocol, "undecodable frame from server",
                      Err);
    Buffered[R.RequestId] = std::move(R);
  }
}

bool RemoteClient::cancel(uint64_t RequestId) {
  return Sock.sendFrame(encode(CancelMsg{RequestId}));
}

bool RemoteClient::stats(std::map<std::string, uint64_t> &Out,
                         std::string &Err) {
  if (!Sock.sendFrame(encodeStatsRequest()))
    return failWith(ErrorCategory::Transport, "send failed", Err);
  Frame F;
  if (Sock.recvFrame(F) != Socket::RecvStatus::Ok)
    return failWith(ErrorCategory::Transport, "connection closed", Err);
  StatsResultMsg M;
  if (!decode(F, M))
    return failWith(ErrorCategory::Protocol, "undecodable STATS_RESULT", Err);
  Out.clear();
  for (auto &[Name, Value] : M.Counters)
    Out[Name] = Value;
  LastCategory = ErrorCategory::None;
  return true;
}

bool RemoteClient::ping(std::string &Err) {
  const uint64_t Token = 0x6d32636450494e47; // Arbitrary, echoed back.
  if (!Sock.sendFrame(encodePing(Token)))
    return failWith(ErrorCategory::Transport, "send failed", Err);
  Frame F;
  if (Sock.recvFrame(F) != Socket::RecvStatus::Ok)
    return failWith(ErrorCategory::Transport, "connection closed", Err);
  PingMsg M;
  if (F.Type != MsgType::Pong || !decode(F, M) || M.Token != Token)
    return failWith(ErrorCategory::Protocol, "bad PONG", Err);
  LastCategory = ErrorCategory::None;
  return true;
}

/// splitmix64 finalizer — a cheap, well-mixed pure hash so jitter is a
/// function of (seed, attempt) only and plans replay exactly.
static uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Distinct per process (and stable within one): independent clients must
/// disagree with each other, which is the whole point of jitter.
static uint64_t processJitterSeed() {
  static const uint64_t Seed = [] {
    std::random_device Rd;
    uint64_t S = (static_cast<uint64_t>(Rd()) << 32) ^ Rd();
    return S ^ mix64(static_cast<uint64_t>(::getpid()));
  }();
  return Seed;
}

unsigned m2c::net::backoffSleepMs(const RetryPolicy &Policy,
                                  unsigned Attempt) {
  if (Attempt == 0)
    Attempt = 1;
  uint64_t Base = Policy.InitialBackoffMs ? Policy.InitialBackoffMs : 1;
  for (unsigned I = 1; I < Attempt && Base < (uint64_t(1) << 32); ++I)
    Base *= 2;
  if (Policy.MaxBackoffMs)
    Base = std::min<uint64_t>(Base, Policy.MaxBackoffMs);
  double J = Policy.Jitter;
  if (J <= 0.0)
    return static_cast<unsigned>(Base);
  if (J > 1.0)
    J = 1.0;
  uint64_t Span = static_cast<uint64_t>(static_cast<double>(Base) * J);
  if (Span == 0)
    return static_cast<unsigned>(Base);
  uint64_t Seed =
      Policy.JitterSeed ? Policy.JitterSeed : processJitterSeed();
  uint64_t R = mix64(Seed ^ (uint64_t(Attempt) * 0x632be59bd9b4e019ULL));
  return static_cast<unsigned>(Base - Span + (R % (Span + 1)));
}

RemoteBuildOutcome m2c::net::buildWithRetry(
    const std::function<std::string(unsigned Attempt)> &Address,
    const BuildRequestMsg &Req, const RetryPolicy &Policy,
    BuildResultMsg &Out) {
  RemoteBuildOutcome Outcome;
  for (unsigned Attempt = 0;; ++Attempt) {
    ++Outcome.Attempts;
    ErrorCategory Cat = ErrorCategory::None;
    std::string Err;
    auto Client = RemoteClient::open(Address(Attempt), Err, &Cat);
    if (Client) {
      BuildResultMsg Result;
      if (Client->build(Req, Result, Err)) {
        Cat = categorize(Result.St);
        if (!isRetryable(Cat) || Attempt >= Policy.MaxRetries) {
          Out = std::move(Result);
          Outcome.Delivered = true;
          Outcome.Category = Cat;
          return Outcome;
        }
        // Retryable reply status (overload / drain / internal): fall
        // through to back off and reconnect.
      } else {
        Cat = Client->lastErrorCategory();
      }
    }
    if (!isRetryable(Cat) || Attempt >= Policy.MaxRetries) {
      Outcome.Category = Cat;
      Outcome.Err = std::move(Err);
      return Outcome;
    }
    ++Outcome.Retries[Cat];
    unsigned SleepMs = backoffSleepMs(Policy, Attempt + 1);
    if (Policy.OnBackoff)
      Policy.OnBackoff(Attempt + 1, SleepMs);
    else
      std::this_thread::sleep_for(std::chrono::milliseconds(SleepMs));
  }
}

RemoteBuildOutcome m2c::net::buildWithRetry(const std::string &Address,
                                            const BuildRequestMsg &Req,
                                            const RetryPolicy &Policy,
                                            BuildResultMsg &Out) {
  return buildWithRetry([&Address](unsigned) { return Address; }, Req, Policy,
                        Out);
}
