//===--- RemoteClient.cpp - client side of the m2cd protocol --------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "net/RemoteClient.h"

using namespace m2c;
using namespace m2c::net;

std::unique_ptr<RemoteClient> RemoteClient::open(const std::string &Address,
                                                 std::string &Err) {
  Socket S;
  if (Address.rfind("tcp:", 0) == 0) {
    std::string HostPort = Address.substr(4);
    size_t Colon = HostPort.rfind(':');
    if (Colon == std::string::npos) {
      Err = "expected tcp:HOST:PORT, got '" + Address + "'";
      return nullptr;
    }
    int Port = std::atoi(HostPort.c_str() + Colon + 1);
    if (Port <= 0 || Port > 65535) {
      Err = "bad port in '" + Address + "'";
      return nullptr;
    }
    S = Socket::connectTcp(HostPort.substr(0, Colon),
                           static_cast<uint16_t>(Port), Err);
  } else {
    S = Socket::connectUnix(Address, Err);
  }
  if (!S.valid())
    return nullptr;

  std::unique_ptr<RemoteClient> C(new RemoteClient(std::move(S)));
  if (!C->Sock.sendFrame(encode(HelloMsg{ProtocolVersion, ProtocolVersion}))) {
    Err = "handshake send failed";
    return nullptr;
  }
  Frame F;
  if (C->Sock.recvFrame(F) != Socket::RecvStatus::Ok) {
    Err = "handshake: connection closed";
    return nullptr;
  }
  ErrorMsg E;
  if (decode(F, E)) {
    Err = std::string("server refused: ") + statusName(E.St) +
          (E.Detail.empty() ? "" : " (" + E.Detail + ")");
    return nullptr;
  }
  WelcomeMsg W;
  if (!decode(F, W)) {
    Err = "handshake: unexpected reply frame";
    return nullptr;
  }
  C->Version = W.Version;
  return C;
}

bool RemoteClient::build(const BuildRequestMsg &Req, BuildResultMsg &Out,
                         std::string &Err) {
  return startBuild(Req, Err) && awaitResult(Req.RequestId, Out, Err);
}

bool RemoteClient::startBuild(const BuildRequestMsg &Req, std::string &Err) {
  if (!Sock.sendFrame(encode(Req))) {
    Err = "send failed (request too large or connection lost)";
    return false;
  }
  return true;
}

bool RemoteClient::awaitResult(uint64_t RequestId, BuildResultMsg &Out,
                               std::string &Err) {
  for (;;) {
    auto It = Buffered.find(RequestId);
    if (It != Buffered.end()) {
      Out = std::move(It->second);
      Buffered.erase(It);
      return true;
    }
    Frame F;
    switch (Sock.recvFrame(F)) {
    case Socket::RecvStatus::Ok:
      break;
    case Socket::RecvStatus::Closed:
    case Socket::RecvStatus::Truncated:
      Err = "connection closed before the result arrived";
      return false;
    default:
      Err = "transport error";
      return false;
    }
    ErrorMsg E;
    if (decode(F, E)) {
      Err = std::string("server error: ") + statusName(E.St) +
            (E.Detail.empty() ? "" : " (" + E.Detail + ")");
      return false;
    }
    BuildResultMsg R;
    if (!decode(F, R)) {
      Err = "undecodable frame from server";
      return false;
    }
    Buffered[R.RequestId] = std::move(R);
  }
}

bool RemoteClient::cancel(uint64_t RequestId) {
  return Sock.sendFrame(encode(CancelMsg{RequestId}));
}

bool RemoteClient::stats(std::map<std::string, uint64_t> &Out,
                         std::string &Err) {
  if (!Sock.sendFrame(encodeStatsRequest())) {
    Err = "send failed";
    return false;
  }
  Frame F;
  if (Sock.recvFrame(F) != Socket::RecvStatus::Ok) {
    Err = "connection closed";
    return false;
  }
  StatsResultMsg M;
  if (!decode(F, M)) {
    Err = "undecodable STATS_RESULT";
    return false;
  }
  Out.clear();
  for (auto &[Name, Value] : M.Counters)
    Out[Name] = Value;
  return true;
}

bool RemoteClient::ping(std::string &Err) {
  const uint64_t Token = 0x6d32636450494e47; // Arbitrary, echoed back.
  if (!Sock.sendFrame(encodePing(Token))) {
    Err = "send failed";
    return false;
  }
  Frame F;
  if (Sock.recvFrame(F) != Socket::RecvStatus::Ok) {
    Err = "connection closed";
    return false;
  }
  PingMsg M;
  if (F.Type != MsgType::Pong || !decode(F, M) || M.Token != Token) {
    Err = "bad PONG";
    return false;
  }
  return true;
}
