//===--- Protocol.h - m2cd wire protocol (frames + messages) ----*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client<->daemon wire protocol: length-prefixed binary frames with
/// little-endian primitives.  docs/PROTOCOL.md is the *normative*
/// specification of everything in this header (frame layout, message and
/// status tables, deadline/cancel semantics, version rules); this file
/// only implements it.  Encoding and decoding are pure byte-string
/// transforms with no I/O, so they unit-test without a socket.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_NET_PROTOCOL_H
#define M2C_NET_PROTOCOL_H

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace m2c::net {

/// The current protocol version (PROTOCOL.md §8).  v2 added the BUILD
/// request's OptLevel byte.
constexpr uint32_t ProtocolVersion = 2;

/// Hard cap on one frame's counted bytes (PROTOCOL.md §2): 64 MiB.
constexpr uint32_t MaxFrameBytes = 64u << 20;

/// Message types (PROTOCOL.md §4).  Client->server types are < 0x80.
enum class MsgType : uint8_t {
  Hello = 0x01,
  Build = 0x02,
  Cancel = 0x03,
  Stats = 0x04,
  Ping = 0x05,
  Error = 0x7F,
  Welcome = 0x81,
  BuildResult = 0x82,
  StatsResult = 0x84,
  Pong = 0x85,
};

/// Status codes (PROTOCOL.md §10).
enum class Status : uint8_t {
  Ok = 0,
  RejectedOverload = 1,
  DeadlineExceeded = 2,
  Cancelled = 3,
  BuildFailed = 4,
  Draining = 5,
  Malformed = 6,
  UnsupportedVersion = 7,
  UnknownType = 8,
  FrameTooLarge = 9,
  UnknownRequest = 10,
  Internal = 11,
};

/// The spec's name for \p S, e.g. "REJECTED_OVERLOAD".
const char *statusName(Status S);

/// One decoded frame: the type byte plus the raw payload bytes.
struct Frame {
  MsgType Type;
  std::string Payload;
};

//===--- Typed messages ----------------------------------------------------===//

struct HelloMsg {
  uint32_t MinVersion = ProtocolVersion;
  uint32_t MaxVersion = ProtocolVersion;
};

struct WelcomeMsg {
  uint32_t Version = ProtocolVersion;
  std::string Server;
};

struct BuildRequestMsg {
  uint64_t RequestId = 0;
  uint32_t DeadlineMs = 0; ///< 0 = no deadline.
  /// Optimization level for this request: 0, 1 or 2 (PROTOCOL.md §5.3).
  /// Decoding rejects any other value as malformed.
  uint8_t OptLevel = 0;
  std::vector<std::string> Roots;
  /// Sources registered into the daemon's file system before the build
  /// (PROTOCOL.md §9): (name, text) pairs, last writer wins per name.
  std::vector<std::pair<std::string, std::string>> Files;
};

/// One module of a successful build's reply.
struct ModuleArtifact {
  std::string Name;
  bool FromCache = false;
  uint32_t StreamCount = 0;
  std::string Object; ///< The .mco bytes, identical to a local build's.
};

struct BuildResultMsg {
  uint64_t RequestId = 0;
  Status St = Status::Internal;
  std::string Diagnostics;
  uint64_t ElapsedNs = 0;
  std::vector<ModuleArtifact> Modules; ///< Imports-first; empty unless Ok.
};

struct CancelMsg {
  uint64_t RequestId = 0;
};

struct StatsResultMsg {
  std::vector<std::pair<std::string, uint64_t>> Counters; ///< Name-sorted.
};

struct PingMsg {
  uint64_t Token = 0;
};

struct ErrorMsg {
  Status St = Status::Internal;
  std::string Detail;
};

//===--- Encoding ----------------------------------------------------------===//

Frame encode(const HelloMsg &M);
Frame encode(const WelcomeMsg &M);
Frame encode(const BuildRequestMsg &M);
Frame encode(const BuildResultMsg &M);
Frame encode(const CancelMsg &M);
Frame encodeStatsRequest();
Frame encode(const StatsResultMsg &M);
Frame encodePing(uint64_t Token);
Frame encodePong(uint64_t Token);
Frame encode(const ErrorMsg &M);

//===--- Decoding ----------------------------------------------------------===//
// Each decoder requires F.Type to match and the payload to decode exactly
// (no trailing bytes); it returns false on any violation, leaving M in an
// unspecified state — the caller answers MALFORMED.

bool decode(const Frame &F, HelloMsg &M);
bool decode(const Frame &F, WelcomeMsg &M);
bool decode(const Frame &F, BuildRequestMsg &M);
bool decode(const Frame &F, BuildResultMsg &M);
bool decode(const Frame &F, CancelMsg &M);
bool decode(const Frame &F, StatsResultMsg &M);
bool decode(const Frame &F, PingMsg &M); ///< Accepts Ping and Pong frames.
bool decode(const Frame &F, ErrorMsg &M);

/// Serializes \p F as it travels on the wire: u32 length | u8 type |
/// payload.  Returns the empty string if the payload exceeds the frame
/// cap (callers never build such frames in practice).
std::string wireBytes(const Frame &F);

} // namespace m2c::net

#endif // M2C_NET_PROTOCOL_H
