//===--- VmStats.h - Process-global VM runtime counters ---------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The vm.* counter set exported through `-stats` and the daemon STATS
/// reply, next to opt.* and sched.requests.*:
///
///   vm.runs                  completed VM::run() calls
///   vm.steps.tier0           interpreter steps executed by tier 0
///   vm.steps.tier1           tier-0-equivalent steps charged by tier 1
///   vm.dispatch.tier1        tier-1 instructions dispatched (the gap to
///                            vm.steps.tier1 is what fusion saved)
///   vm.tier.promotions       units translated and installed
///   vm.tier.instrs           tier-1 instructions emitted
///   vm.tier.fused.groups     superinstructions emitted
///   vm.tier.fused.saved      dispatches fusion removes per execution
///   vm.tier.arena.bytes      committed tier-1 arena bytes
///   vm.tier.osr.entries      loop-backedge entries into tier-1 code
///   vm.tier.deopts           step-budget deopts back into tier 0
///
//===----------------------------------------------------------------------===//

#ifndef M2C_VM_VMSTATS_H
#define M2C_VM_VMSTATS_H

#include "support/Statistic.h"

namespace m2c::vm {

/// The process-global vm.* StatisticSet.  Keys are pre-touched so stats
/// consumers always see the full set, zeros included.
StatisticSet &globalVmStats();

} // namespace m2c::vm

#endif // M2C_VM_VMSTATS_H
