//===--- Value.h - Runtime values of the MCode machine ----------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#ifndef M2C_VM_VALUE_H
#define M2C_VM_VALUE_H

#include "support/StringInterner.h"

#include <cstdint>
#include <memory>
#include <variant>
#include <vector>

namespace m2c::vm {

class Object;

/// A set value (BITSET or SET OF ...): up to 64 members.
struct SetVal {
  uint64_t Bits = 0;
};

/// A pointer value; Cell is null for NIL.
struct PtrRef {
  std::shared_ptr<Object> Cell;
};

/// An aggregate (array/record) value.  Loads share the object; stores
/// deep-copy it (Modula-2 value semantics).
struct AggRef {
  std::shared_ptr<Object> Obj;
};

/// A procedure value: index into the linked program's unit table.
struct ProcVal {
  int32_t UnitIndex = -1;
};

/// A string constant value.
struct StrRef {
  Symbol Str;
};

struct Address;

/// Any value the machine can hold in a slot or on the operand stack.
using Value = std::variant<std::monostate, int64_t, double, SetVal, PtrRef,
                           AggRef, ProcVal, StrRef, Address>;

/// The location of one slot: either a raw frame/global slot (stable for
/// the lifetime of the activation) or a slot within a heap object (kept
/// alive by the shared_ptr).
struct Address {
  Value *Raw = nullptr;
  std::shared_ptr<Object> Obj;
  size_t Index = 0;

  Value &slot() const;
};

/// A heap aggregate or NEW cell: a vector of slots.
class Object {
public:
  std::vector<Value> Slots;
};

inline Value &Address::slot() const {
  return Raw ? *Raw : Obj->Slots[Index];
}

} // namespace m2c::vm

#endif // M2C_VM_VALUE_H
