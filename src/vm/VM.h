//===--- VM.h - MCode linker and interpreter --------------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Links ModuleImages produced by separate compilations into one runnable
/// program and interprets it.  The paper's compiler emitted VAX code for
/// Topaz; our object format is MCode, and this interpreter is the
/// execution substrate that lets examples and tests run compiled
/// Modula-2+ end to end.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_VM_VM_H
#define M2C_VM_VM_H

#include "codegen/Linker.h"
#include "codegen/MCode.h"
#include "vm/Value.h"

#include <cassert>
#include <string>
#include <vector>

namespace m2c::vm {

/// A set of module images linked into a runnable program.  Thin wrapper
/// over codegen::Linker kept for the add-then-link call style the
/// examples and tests use; the VM can also interpret a LinkedProgram
/// produced elsewhere (a build session) directly.
class Program {
public:
  using LinkedUnit = codegen::LinkedUnit;

  explicit Program(const StringInterner &Names) : Names(Names), Link(Names) {}

  /// Adds one compiled module.  Call before link().
  void addImage(codegen::ModuleImage Image) {
    assert(!Linked && "addImage after link");
    Link.addImage(std::move(Image));
  }

  /// Resolves cross-module references and computes initialization order.
  /// Returns true on success; on failure errors() describes the problems.
  bool link() {
    assert(!Linked && "link called twice");
    Linked = true;
    Prog = Link.link();
    return Prog.ok();
  }

  const std::vector<std::string> &errors() const { return Prog.errors(); }

  const std::vector<codegen::ModuleImage> &images() const {
    return Prog.images();
  }
  const std::vector<LinkedUnit> &units() const { return Prog.units(); }
  const std::vector<int32_t> &initOrder() const { return Prog.initOrder(); }
  int32_t findUnit(Symbol Module, const std::string &Name) const {
    return Prog.findUnit(Module, Name);
  }
  const StringInterner &names() const { return Names; }
  const codegen::LinkedProgram &linked() const { return Prog; }

private:
  const StringInterner &Names;
  codegen::Linker Link;
  codegen::LinkedProgram Prog;
  bool Linked = false;
};

/// Interprets a linked Program.
class VM {
public:
  explicit VM(const Program &Prog) : VM(Prog.linked(), Prog.names()) {}

  /// Interprets a LinkedProgram produced directly by codegen::Linker
  /// (e.g. from a build session's images).
  VM(const codegen::LinkedProgram &Prog, const StringInterner &Names);

  struct RunResult {
    std::string Output;
    int64_t ExitCode = 0;
    bool Trapped = false;
    std::string TrapMessage;
  };

  /// Supplies values for ReadInt calls (consumed in order; exhausted
  /// reads yield 0).
  void setInput(std::vector<int64_t> Input);

  /// Initializes every module (imports first) and runs \p MainModule's
  /// body.  \p MaxSteps bounds execution for tests.
  RunResult run(Symbol MainModule, uint64_t MaxSteps = 100'000'000);

private:
  struct Frame {
    std::vector<Value> Slots;
    Frame *StaticLink = nullptr;
    const Program::LinkedUnit *Unit = nullptr;
    size_t ReturnPc = 0;
    int32_t ReturnUnit = -1;
    size_t StackBase = 0;
  };

  Value defaultValue(const std::vector<codegen::TypeDesc> &Descs,
                     int32_t Index) const;
  Value deepCopy(const Value &V) const;
  /// Assigns \p V into \p SlotRef with Modula-2 value semantics.
  void assignInto(Value &SlotRef, Value V);
  /// Materializes a string constant as a CHAR-array aggregate of length
  /// \p Length (padded with 0C); Length < 0 uses the string length.
  Value stringToArray(Symbol S, int64_t Length) const;

  bool executeUnit(int32_t UnitIndex, RunResult &Result, uint64_t &Steps,
                   uint64_t MaxSteps);
  void trap(RunResult &Result, const std::string &Message);

  const codegen::LinkedProgram &Prog;
  const StringInterner &Names;
  std::vector<std::unique_ptr<std::vector<Value>>> Globals; ///< Per module.
  std::vector<int64_t> Input;
  size_t InputPos = 0;
};

} // namespace m2c::vm

#endif // M2C_VM_VM_H
