//===--- VM.h - MCode linker and interpreter --------------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Links ModuleImages produced by separate compilations into one runnable
/// program and interprets it.  The paper's compiler emitted VAX code for
/// Topaz; our object format is MCode, and this interpreter is the
/// execution substrate that lets examples and tests run compiled
/// Modula-2+ end to end.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_VM_VM_H
#define M2C_VM_VM_H

#include "codegen/Linker.h"
#include "codegen/MCode.h"
#include "vm/Value.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace m2c::vm {

namespace tier {
class TierManager;
struct TierPolicy;
struct TierUnit;
} // namespace tier

/// A set of module images linked into a runnable program.  Thin wrapper
/// over codegen::Linker kept for the add-then-link call style the
/// examples and tests use; the VM can also interpret a LinkedProgram
/// produced elsewhere (a build session) directly.
class Program {
public:
  using LinkedUnit = codegen::LinkedUnit;

  explicit Program(const StringInterner &Names) : Names(Names), Link(Names) {}

  /// Adds one compiled module.  Call before link().
  void addImage(codegen::ModuleImage Image) {
    assert(!Linked && "addImage after link");
    Link.addImage(std::move(Image));
  }

  /// Resolves cross-module references and computes initialization order.
  /// Returns true on success; on failure errors() describes the problems.
  bool link() {
    assert(!Linked && "link called twice");
    Linked = true;
    Prog = Link.link();
    return Prog.ok();
  }

  const std::vector<std::string> &errors() const { return Prog.errors(); }

  const std::vector<codegen::ModuleImage> &images() const {
    return Prog.images();
  }
  const std::vector<LinkedUnit> &units() const { return Prog.units(); }
  const std::vector<int32_t> &initOrder() const { return Prog.initOrder(); }
  int32_t findUnit(Symbol Module, const std::string &Name) const {
    return Prog.findUnit(Module, Name);
  }
  const StringInterner &names() const { return Names; }
  const codegen::LinkedProgram &linked() const { return Prog; }

private:
  const StringInterner &Names;
  codegen::Linker Link;
  codegen::LinkedProgram Prog;
  bool Linked = false;
};

/// Interprets a linked Program.
///
/// Execution is tiered (see vm/tier/): tier 0 is the switch interpreter
/// below, which also counts invocations and loop backedges per unit; hot
/// units are translated concurrently into pre-decoded threaded code (tier
/// 1) and entered at calls, returns and loop backedges once installed.
/// Observable behavior — output, exit code, trap points and messages, and
/// MaxSteps accounting — is identical across tiers.
class VM {
public:
  explicit VM(const Program &Prog) : VM(Prog.linked(), Prog.names()) {}

  /// Interprets a LinkedProgram produced directly by codegen::Linker
  /// (e.g. from a build session's images).  Tiering policy comes from the
  /// environment (M2C_VM_TIER, M2C_TIER_THRESHOLD) unless overridden.
  VM(const codegen::LinkedProgram &Prog, const StringInterner &Names);
  ~VM();

  struct RunResult {
    std::string Output;
    int64_t ExitCode = 0;
    bool Trapped = false;
    std::string TrapMessage;
  };

  /// Supplies values for ReadInt calls (consumed in order; exhausted
  /// reads yield 0).
  void setInput(std::vector<int64_t> Input);

  /// Replaces the tiering policy (and the TierManager implementing it).
  /// Tier0Only drops the manager entirely.  Call before run().
  void setTierPolicy(const tier::TierPolicy &Policy);

  /// Adopts an existing (possibly shared, already warm) TierManager for
  /// the same LinkedProgram.  Benchmarks use this to measure steady-state
  /// tier-1 execution across fresh VM instances.
  void setTierManager(std::shared_ptr<tier::TierManager> Manager);
  tier::TierManager *tierManager() const { return Tier.get(); }

  /// Initializes every module (imports first) and runs \p MainModule's
  /// body.  \p MaxSteps bounds execution for tests.
  RunResult run(Symbol MainModule, uint64_t MaxSteps = 100'000'000);

private:
  struct Frame {
    std::vector<Value> Slots;
    Frame *StaticLink = nullptr;
    const Program::LinkedUnit *Unit = nullptr;
    size_t ReturnPc = 0;
    int32_t ReturnUnit = -1;
    size_t StackBase = 0;
  };

  /// Execution state of one executeUnit() activation; defined in
  /// ExecInternal.h, shared by both tier loops.
  struct Exec;

  /// How a tier loop handed control back to the trampoline.
  enum class Flow : uint8_t {
    Done,    ///< Entry unit finished (or Halt).
    Trapped, ///< RunResult carries the trap.
    Switch,  ///< Tier boundary: resume the other tier at (CurUnit, Pc).
    Deopt,   ///< Tier 1 stopped before a fused group; tier 0 must replay.
  };

  Value defaultValue(const std::vector<codegen::TypeDesc> &Descs,
                     int32_t Index) const;
  Value deepCopy(const Value &V) const;
  /// Assigns \p V into \p SlotRef with Modula-2 value semantics.
  void assignInto(Value &SlotRef, Value V);
  /// Materializes a string constant as a CHAR-array aggregate of length
  /// \p Length (padded with 0C); Length < 0 uses the string length.
  Value stringToArray(Symbol S, int64_t Length) const;

  /// Pushes a fresh frame for \p UnitIndex onto E.Frames.
  Frame &pushFrame(Exec &E, int32_t UnitIndex, Frame *StaticLink,
                   size_t ReturnPc, int32_t ReturnUnit);
  /// Binds call arguments into a fresh callee frame; ArgBase is the stack
  /// offset of the first argument.
  void bindArgs(Exec &E, Frame &Callee, size_t ArgBase);
  /// Executes one CallBuiltin.  On trap, records it against \p TrapPc and
  /// returns false.  Shared by both tiers.
  bool callBuiltin(Exec &E, RunResult &Result, int64_t Builtin, size_t TrapPc);
  /// Records a trap at tier-0 pc \p Pc of \p F's unit.
  void failAt(RunResult &Result, const Frame &F, size_t Pc,
              const std::string &Message);

  bool executeUnit(int32_t UnitIndex, RunResult &Result, uint64_t &Steps,
                   uint64_t MaxSteps);
  /// The tier-0 switch interpreter; runs until done/trap or a tier-switch
  /// boundary (call, return, taken backward jump) with tier-1 installed.
  Flow runTier0(Exec &E, RunResult &Result, uint64_t &Steps,
                uint64_t MaxSteps);
  /// The tier-1 threaded-code dispatcher (Tier1Exec.cpp); entered at a pc
  /// mapped by \p Entry, runs until done/trap, an unpromoted boundary, or
  /// a step-budget deopt.
  Flow runTier1(Exec &E, const tier::TierUnit *Entry, RunResult &Result,
                uint64_t &Steps, uint64_t MaxSteps);
  void trap(RunResult &Result, const std::string &Message);

  const codegen::LinkedProgram &Prog;
  const StringInterner &Names;
  std::vector<std::unique_ptr<std::vector<Value>>> Globals; ///< Per module.
  std::vector<int64_t> Input;
  size_t InputPos = 0;

  std::shared_ptr<tier::TierManager> Tier; ///< Null in Tier0Only mode.
  /// Per-run counters, flushed into globalVmStats() at the end of run().
  uint64_t Tier0Steps = 0;
  uint64_t Tier1Steps = 0;
  uint64_t Tier1Dispatches = 0;
  uint64_t Deopts = 0;
  uint64_t OsrEntries = 0;
};

} // namespace m2c::vm

#endif // M2C_VM_VM_H
