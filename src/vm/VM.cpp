//===--- VM.cpp - MCode interpreter: tier 0 and the tier trampoline --------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "vm/VM.h"

#include "sema/Builtins.h"
#include "vm/ExecInternal.h"
#include "vm/VmStats.h"
#include "vm/tier/TierManager.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <functional>

using namespace m2c;
using namespace m2c::codegen;
using namespace m2c::vm;
using namespace m2c::vm::detail;

//===----------------------------------------------------------------------===//
// VM
//===----------------------------------------------------------------------===//

VM::VM(const codegen::LinkedProgram &Prog, const StringInterner &Names)
    : Prog(Prog), Names(Names) {
  for (const ModuleImage &Image : Prog.images()) {
    auto Frame = std::make_unique<std::vector<Value>>();
    Frame->resize(Image.GlobalCount);
    for (size_t I = 0; I < Image.GlobalDescs.size(); ++I)
      (*Frame)[I] = defaultValue(Image.Descs, Image.GlobalDescs[I]);
    Globals.push_back(std::move(Frame));
  }
  setTierPolicy(tier::TierPolicy::fromEnv());
}

VM::~VM() = default;

void VM::setInput(std::vector<int64_t> In) {
  Input = std::move(In);
  InputPos = 0;
}

void VM::setTierPolicy(const tier::TierPolicy &Policy) {
  if (Policy.Mode == tier::TierMode::Tier0Only)
    Tier.reset();
  else
    Tier = std::make_shared<tier::TierManager>(Prog, Policy);
}

void VM::setTierManager(std::shared_ptr<tier::TierManager> Manager) {
  assert(!Manager || &Manager->program() == &Prog);
  Tier = std::move(Manager);
}

Value VM::defaultValue(const std::vector<TypeDesc> &Descs,
                       int32_t Index) const {
  if (Index < 0 || static_cast<size_t>(Index) >= Descs.size())
    return Value(int64_t{0});
  const TypeDesc &D = Descs[static_cast<size_t>(Index)];
  switch (D.DescKind) {
  case TypeDesc::Kind::Int:
    return Value(int64_t{0});
  case TypeDesc::Kind::Real:
    return Value(0.0);
  case TypeDesc::Kind::Set:
    return Value(SetVal{0});
  case TypeDesc::Kind::Pointer:
    return Value(PtrRef{nullptr});
  case TypeDesc::Kind::ProcVal:
    return Value(ProcVal{-1});
  case TypeDesc::Kind::Array: {
    auto Obj = std::make_shared<Object>();
    Obj->Slots.reserve(static_cast<size_t>(D.Count));
    for (int64_t I = 0; I < D.Count; ++I)
      Obj->Slots.push_back(defaultValue(Descs, D.Element));
    return Value(AggRef{std::move(Obj)});
  }
  case TypeDesc::Kind::Record: {
    auto Obj = std::make_shared<Object>();
    Obj->Slots.reserve(D.Fields.size());
    for (int32_t F : D.Fields)
      Obj->Slots.push_back(defaultValue(Descs, F));
    return Value(AggRef{std::move(Obj)});
  }
  }
  return Value(int64_t{0});
}

Value VM::deepCopy(const Value &V) const {
  if (const auto *Agg = std::get_if<AggRef>(&V)) {
    auto Obj = std::make_shared<Object>();
    Obj->Slots.reserve(Agg->Obj->Slots.size());
    for (const Value &Slot : Agg->Obj->Slots)
      Obj->Slots.push_back(deepCopy(Slot));
    return Value(AggRef{std::move(Obj)});
  }
  return V;
}

Value VM::stringToArray(Symbol S, int64_t Length) const {
  std::string_view Text = Names.spelling(S);
  if (Length < 0)
    Length = static_cast<int64_t>(Text.size());
  auto Obj = std::make_shared<Object>();
  Obj->Slots.reserve(static_cast<size_t>(Length));
  for (int64_t I = 0; I < Length; ++I)
    Obj->Slots.push_back(Value(
        int64_t{I < static_cast<int64_t>(Text.size())
                    ? static_cast<unsigned char>(Text[static_cast<size_t>(I)])
                    : 0}));
  return Value(AggRef{std::move(Obj)});
}

void VM::assignInto(Value &SlotRef, Value V) {
  if (const auto *Str = std::get_if<StrRef>(&V)) {
    // String constant into a character array: copy, zero-padded.
    if (const auto *Agg = std::get_if<AggRef>(&SlotRef)) {
      SlotRef = stringToArray(Str->Str,
                              static_cast<int64_t>(Agg->Obj->Slots.size()));
      return;
    }
    SlotRef = V; // e.g. a string-typed temp
    return;
  }
  if (std::holds_alternative<AggRef>(V)) {
    SlotRef = deepCopy(V);
    return;
  }
  SlotRef = std::move(V);
}

void VM::trap(RunResult &Result, const std::string &Message) {
  Result.Trapped = true;
  Result.TrapMessage = Message;
  Result.ExitCode = 255;
}

void VM::failAt(RunResult &Result, const Frame &F, size_t Pc,
                const std::string &Message) {
  trap(Result, F.Unit->Unit->QualifiedName + " +" + std::to_string(Pc) + ": " +
                   Message);
}

VM::RunResult VM::run(Symbol MainModule, uint64_t MaxSteps) {
  RunResult Result;
  uint64_t Steps = 0;
  // Flush the per-run tier counters into the process-global vm.* set on
  // every exit path (local structs in member functions share the member
  // access of the enclosing function).
  struct StatsFlush {
    VM &V;
    ~StatsFlush() {
      StatisticSet &S = globalVmStats();
      S.add("vm.runs");
      S.add("vm.steps.tier0", V.Tier0Steps);
      S.add("vm.steps.tier1", V.Tier1Steps);
      S.add("vm.dispatch.tier1", V.Tier1Dispatches);
      S.add("vm.tier.osr.entries", V.OsrEntries);
      S.add("vm.tier.deopts", V.Deopts);
      V.Tier0Steps = V.Tier1Steps = V.Tier1Dispatches = 0;
      V.Deopts = V.OsrEntries = 0;
    }
  } Flusher{*this};
  // Initialize imported modules first, then the main module's body last.
  int32_t MainIndex = -1;
  for (int32_t M : Prog.initOrder())
    if (Prog.images()[static_cast<size_t>(M)].ModuleName == MainModule)
      MainIndex = M;
  if (MainIndex < 0) {
    trap(Result, "main module not linked");
    return Result;
  }
  auto BodyUnitOf = [&](int32_t M) {
    for (size_t U = 0; U < Prog.units().size(); ++U)
      if (Prog.units()[U].ModuleIndex == M &&
          Prog.units()[U].Unit->IsModuleBody)
        return static_cast<int32_t>(U);
    return -1;
  };
  for (int32_t M : Prog.initOrder()) {
    if (M == MainIndex)
      continue; // Main body runs last.
    int32_t UnitIndex = BodyUnitOf(M);
    if (UnitIndex < 0)
      continue;
    if (!executeUnit(UnitIndex, Result, Steps, MaxSteps))
      return Result;
  }
  int32_t MainBody = BodyUnitOf(MainIndex);
  if (MainBody < 0) {
    trap(Result, "main module has no body unit");
    return Result;
  }
  executeUnit(MainBody, Result, Steps, MaxSteps);
  return Result;
}

//===----------------------------------------------------------------------===//
// Tier trampoline
//===----------------------------------------------------------------------===//

VM::Frame &VM::pushFrame(Exec &E, int32_t UnitIndex, Frame *StaticLink,
                         size_t ReturnPc, int32_t ReturnUnit) {
  const Program::LinkedUnit &LU = Prog.units()[static_cast<size_t>(UnitIndex)];
  E.Frames.emplace_back();
  Frame &F = E.Frames.back();
  F.Unit = &LU;
  F.Slots.resize(LU.Unit->FrameSize);
  F.StaticLink = StaticLink;
  F.ReturnPc = ReturnPc;
  F.ReturnUnit = ReturnUnit;
  F.StackBase = E.Stack.size();
  return F;
}

void VM::bindArgs(Exec &E, Frame &Callee, size_t ArgBase) {
  const CodeUnit &U = *Callee.Unit->Unit;
  for (size_t I = 0; I < U.Params.size(); ++I) {
    Value &Arg = E.Stack[ArgBase + I];
    const ParamDesc &P = U.Params[I];
    if (P.IsVar) {
      Callee.Slots[I] = std::move(Arg); // an Address
    } else if (P.IsAggregate) {
      if (const auto *Str = std::get_if<StrRef>(&Arg))
        Callee.Slots[I] = stringToArray(Str->Str, -1);
      else
        Callee.Slots[I] = deepCopy(Arg);
    } else {
      Callee.Slots[I] = std::move(Arg);
    }
  }
  E.Stack.resize(ArgBase);
  Callee.StackBase = E.Stack.size();
}

bool VM::executeUnit(int32_t EntryUnit, RunResult &Result, uint64_t &Steps,
                     uint64_t MaxSteps) {
  Exec E;
  E.CurUnit = EntryUnit;
  E.Pc = 0;
  pushFrame(E, EntryUnit, nullptr, 0, -1);
  if (Tier)
    Tier->noteInvocation(EntryUnit);

  // Trampoline: each tier runs until it finishes, traps, or reaches a
  // boundary the other tier should take over.
  bool SkipTier1 = false;
  while (true) {
    const tier::TierUnit *TU = nullptr;
    if (Tier && !SkipTier1) {
      TU = Tier->installed(E.CurUnit);
      if (TU && !(E.Pc < TU->PcMapSize && TU->PcMap[E.Pc] >= 0))
        TU = nullptr; // Pc interior to a fused group: only tier 0 can run.
    }
    SkipTier1 = false;
    Flow F = TU ? runTier1(E, TU, Result, Steps, MaxSteps)
                : runTier0(E, Result, Steps, MaxSteps);
    switch (F) {
    case Flow::Done:
      return true;
    case Flow::Trapped:
      return false;
    case Flow::Switch:
      break;
    case Flow::Deopt:
      // Tier 1 stopped in front of a fused group that would cross the
      // step budget.  Tier 0 replays from the group head; skipping tier 1
      // once guarantees forward progress (tier 0 consumes at least one
      // step before any switch back).
      SkipTier1 = true;
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// Builtins (shared by both tiers)
//===----------------------------------------------------------------------===//

bool VM::callBuiltin(Exec &E, RunResult &Result, int64_t Builtin,
                     size_t TrapPc) {
  auto &Stack = E.Stack;
  auto Pop = [&]() {
    Value V = std::move(Stack.back());
    Stack.pop_back();
    return V;
  };
  auto Fail = [&](const std::string &Message) {
    failAt(Result, E.Frames.back(), TrapPc, Message);
    return false;
  };
  switch (static_cast<sema::BuiltinProc>(Builtin)) {
  case sema::BuiltinProc::WriteInt:
  case sema::BuiltinProc::WriteCard: {
    int64_t Width = asOrdinal(Pop());
    int64_t V = asOrdinal(Pop());
    appendPadded(Result.Output, std::to_string(V), Width);
    break;
  }
  case sema::BuiltinProc::WriteReal: {
    int64_t Width = asOrdinal(Pop());
    double V = asReal(Pop());
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%g", V);
    appendPadded(Result.Output, Buf, Width);
    break;
  }
  case sema::BuiltinProc::WriteChar:
    Result.Output.push_back(static_cast<char>(asOrdinal(Pop())));
    break;
  case sema::BuiltinProc::WriteLn:
    Result.Output.push_back('\n');
    break;
  case sema::BuiltinProc::WriteString: {
    Value V = Pop();
    if (const auto *Str = std::get_if<StrRef>(&V)) {
      Result.Output += Names.spelling(Str->Str);
    } else if (const auto *Agg = std::get_if<AggRef>(&V)) {
      for (const Value &Ch : Agg->Obj->Slots) {
        int64_t C = asOrdinal(Ch);
        if (C == 0)
          break;
        Result.Output.push_back(static_cast<char>(C));
      }
    } else {
      Result.Output.push_back(static_cast<char>(asOrdinal(V)));
    }
    break;
  }
  case sema::BuiltinProc::ReadInt: {
    Value AddrV = Pop();
    const auto *Addr = std::get_if<Address>(&AddrV);
    if (!Addr)
      return Fail("ReadInt of a non-address");
    int64_t V = InputPos < Input.size() ? Input[InputPos++] : 0;
    Addr->slot() = Value(V);
    break;
  }
  default:
    return Fail("unexpected builtin call");
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Tier 0: the switch interpreter (with profiling hooks)
//===----------------------------------------------------------------------===//

namespace {

/// Accumulates the steps a tier loop executed into a per-tier counter on
/// every exit path.
struct StepAccount {
  uint64_t &Dst;
  const uint64_t &Steps;
  uint64_t Entry;
  StepAccount(uint64_t &Dst, const uint64_t &Steps)
      : Dst(Dst), Steps(Steps), Entry(Steps) {}
  ~StepAccount() { Dst += Steps - Entry; }
};

} // namespace

VM::Flow VM::runTier0(Exec &E, RunResult &Result, uint64_t &Steps,
                      uint64_t MaxSteps) {
  auto &Stack = E.Stack;
  auto &Frames = E.Frames;
  int32_t &CurUnit = E.CurUnit;
  size_t &Pc = E.Pc;
  StepAccount Account(Tier0Steps, Steps);

  auto Fail = [&](const std::string &Message) {
    failAt(Result, Frames.back(), Pc, Message);
    return Flow::Trapped;
  };
  auto Pop = [&]() {
    Value V = std::move(Stack.back());
    Stack.pop_back();
    return V;
  };
  // True when tier-1 code is installed for \p Unit and maps \p At as an
  // entry point; every such boundary hands control back to the
  // trampoline.
  auto WantTier1 = [&](int32_t Unit, size_t At) {
    if (!Tier)
      return false;
    const tier::TierUnit *TU = Tier->installed(Unit);
    return TU && At < TU->PcMapSize && TU->PcMap[At] >= 0;
  };

  while (true) {
    if (++Steps > MaxSteps)
      return Fail("step limit exceeded (runaway program?)");
    const CodeUnit &U = *Frames.back().Unit->Unit;
    if (Pc >= U.Code.size())
      return Fail("fell off the end of the code unit");
    const Instr &In = U.Code[Pc];
    Frame &F = Frames.back();
    ++Pc;

    switch (In.Op) {
    case Opcode::PushInt:
      Stack.push_back(Value(In.A));
      break;
    case Opcode::PushReal:
      Stack.push_back(Value(In.F));
      break;
    case Opcode::PushSet:
      Stack.push_back(Value(SetVal{static_cast<uint64_t>(In.A)}));
      break;
    case Opcode::PushNil:
      Stack.push_back(Value(PtrRef{nullptr}));
      break;
    case Opcode::PushStr:
      Stack.push_back(Value(StrRef{U.Strings[static_cast<size_t>(In.A)]}));
      break;
    case Opcode::PushProc: {
      int32_t Target =
          F.Unit->Callees[static_cast<size_t>(In.A)];
      if (Target < 0)
        return Fail("procedure value refers to an unlinked procedure");
      Stack.push_back(Value(ProcVal{Target}));
      break;
    }

    case Opcode::LoadLocal:
      Stack.push_back(F.Slots[static_cast<size_t>(In.A)]);
      break;
    case Opcode::StoreLocal: {
      Value V = Pop();
      assignInto(F.Slots[static_cast<size_t>(In.A)], std::move(V));
      break;
    }
    case Opcode::LoadLocalRef:
      Stack.push_back(Value(Address{&F.Slots[static_cast<size_t>(In.A)],
                                    nullptr, 0}));
      break;

    case Opcode::LoadEnclosing:
    case Opcode::StoreEnclosing:
    case Opcode::LoadEnclosingRef: {
      Frame *Target = &F;
      for (int64_t Hop = 0; Hop < In.B; ++Hop) {
        Target = Target->StaticLink;
        if (!Target)
          return Fail("broken static link chain");
      }
      if (In.A < 0 ||
          static_cast<size_t>(In.A) >= Target->Slots.size())
        return Fail("enclosing frame slot out of range");
      Value &Slot = Target->Slots[static_cast<size_t>(In.A)];
      if (In.Op == Opcode::LoadEnclosing) {
        Stack.push_back(Slot);
      } else if (In.Op == Opcode::StoreEnclosing) {
        Value V = Pop();
        assignInto(Slot, std::move(V));
      } else {
        Stack.push_back(Value(Address{&Slot, nullptr, 0}));
      }
      break;
    }

    case Opcode::LoadGlobal:
    case Opcode::StoreGlobal:
    case Opcode::LoadGlobalRef: {
      const auto &Ref = F.Unit->Globals[static_cast<size_t>(In.A)];
      if (Ref.ModuleIndex < 0)
        return Fail("unresolved global reference");
      auto &ModGlobals = *Globals[static_cast<size_t>(Ref.ModuleIndex)];
      if (static_cast<size_t>(Ref.Slot) >= ModGlobals.size())
        return Fail("global slot out of range");
      Value &Slot = ModGlobals[static_cast<size_t>(Ref.Slot)];
      if (In.Op == Opcode::LoadGlobal) {
        Stack.push_back(Slot);
      } else if (In.Op == Opcode::StoreGlobal) {
        Value V = Pop();
        assignInto(Slot, std::move(V));
      } else {
        Stack.push_back(Value(Address{&Slot, nullptr, 0}));
      }
      break;
    }

    case Opcode::LoadIndirect: {
      Value V = Pop();
      const auto *Addr = std::get_if<Address>(&V);
      if (!Addr)
        return Fail("LoadIndirect on a non-address");
      Stack.push_back(Addr->slot());
      break;
    }
    case Opcode::StoreIndirect: {
      Value V = Pop();
      Value AddrV = Pop();
      const auto *Addr = std::get_if<Address>(&AddrV);
      if (!Addr)
        return Fail("StoreIndirect on a non-address");
      assignInto(Addr->slot(), std::move(V));
      break;
    }
    case Opcode::FieldAddr: {
      Value AddrV = Pop();
      const auto *Addr = std::get_if<Address>(&AddrV);
      if (!Addr)
        return Fail("FieldAddr on a non-address");
      const auto *Agg = std::get_if<AggRef>(&Addr->slot());
      if (!Agg || !Agg->Obj)
        return Fail("field access on a non-record value");
      if (static_cast<size_t>(In.A) >= Agg->Obj->Slots.size())
        return Fail("field index out of range");
      Stack.push_back(Value(Address{nullptr, Agg->Obj,
                                    static_cast<size_t>(In.A)}));
      break;
    }
    case Opcode::IndexAddr: {
      int64_t Index = asOrdinal(Pop());
      Value AddrV = Pop();
      const auto *Addr = std::get_if<Address>(&AddrV);
      if (!Addr)
        return Fail("IndexAddr on a non-address");
      const auto *Agg = std::get_if<AggRef>(&Addr->slot());
      if (!Agg || !Agg->Obj)
        return Fail("indexing a non-array value");
      int64_t Low = In.A;
      int64_t Count = In.B >= 0
                          ? In.B
                          : static_cast<int64_t>(Agg->Obj->Slots.size());
      if (Index < Low || Index >= Low + Count)
        return Fail("array index " + std::to_string(Index) +
                    " out of bounds [" + std::to_string(Low) + ".." +
                    std::to_string(Low + Count - 1) + "]");
      Stack.push_back(Value(
          Address{nullptr, Agg->Obj, static_cast<size_t>(Index - Low)}));
      break;
    }
    case Opcode::DerefAddr: {
      Value V = Pop();
      const auto *Ptr = std::get_if<PtrRef>(&V);
      if (!Ptr)
        return Fail("dereference of a non-pointer value");
      if (!Ptr->Cell)
        return Fail("dereference of NIL");
      Stack.push_back(Value(Address{nullptr, Ptr->Cell, 0}));
      break;
    }

    case Opcode::PushAggregate:
      Stack.push_back(defaultValue(U.Descs, static_cast<int32_t>(In.A)));
      break;
    case Opcode::NewCell: {
      auto Cell = std::make_shared<Object>();
      Cell->Slots.push_back(defaultValue(U.Descs,
                                         static_cast<int32_t>(In.A)));
      Stack.push_back(Value(PtrRef{std::move(Cell)}));
      break;
    }
    case Opcode::DisposeCell: {
      Value AddrV = Pop();
      const auto *Addr = std::get_if<Address>(&AddrV);
      if (!Addr)
        return Fail("DISPOSE of a non-address");
      Addr->slot() = Value(PtrRef{nullptr});
      break;
    }

    case Opcode::AddInt: {
      int64_t B = asOrdinal(Pop()), A = asOrdinal(Pop());
      Stack.push_back(Value(A + B));
      break;
    }
    case Opcode::SubInt: {
      int64_t B = asOrdinal(Pop()), A = asOrdinal(Pop());
      Stack.push_back(Value(A - B));
      break;
    }
    case Opcode::MulInt: {
      int64_t B = asOrdinal(Pop()), A = asOrdinal(Pop());
      Stack.push_back(Value(A * B));
      break;
    }
    case Opcode::DivInt: {
      int64_t B = asOrdinal(Pop()), A = asOrdinal(Pop());
      if (B == 0)
        return Fail("integer division by zero");
      Stack.push_back(Value(A / B));
      break;
    }
    case Opcode::ModInt: {
      int64_t B = asOrdinal(Pop()), A = asOrdinal(Pop());
      if (B == 0)
        return Fail("MOD by zero");
      Stack.push_back(Value(A % B));
      break;
    }
    case Opcode::NegInt:
      Stack.back() = Value(-asOrdinal(Stack.back()));
      break;
    case Opcode::AbsInt: {
      int64_t A = asOrdinal(Stack.back());
      Stack.back() = Value(A < 0 ? -A : A);
      break;
    }
    case Opcode::IncAddr: {
      int64_t Delta = asOrdinal(Pop());
      Value AddrV = Pop();
      const auto *Addr = std::get_if<Address>(&AddrV);
      if (!Addr)
        return Fail("INC/DEC of a non-address");
      Addr->slot() = Value(asOrdinal(Addr->slot()) + Delta);
      break;
    }
    case Opcode::Odd:
      Stack.back() = Value(int64_t{(asOrdinal(Stack.back()) & 1) != 0});
      break;
    case Opcode::Cap: {
      int64_t C = asOrdinal(Stack.back());
      if (C >= 'a' && C <= 'z')
        C = C - 'a' + 'A';
      Stack.back() = Value(C);
      break;
    }

    case Opcode::AddReal: {
      double B = asReal(Pop()), A = asReal(Pop());
      Stack.push_back(Value(A + B));
      break;
    }
    case Opcode::SubReal: {
      double B = asReal(Pop()), A = asReal(Pop());
      Stack.push_back(Value(A - B));
      break;
    }
    case Opcode::MulReal: {
      double B = asReal(Pop()), A = asReal(Pop());
      Stack.push_back(Value(A * B));
      break;
    }
    case Opcode::DivReal: {
      double B = asReal(Pop()), A = asReal(Pop());
      if (B == 0.0)
        return Fail("real division by zero");
      Stack.push_back(Value(A / B));
      break;
    }
    case Opcode::NegReal:
      Stack.back() = Value(-asReal(Stack.back()));
      break;
    case Opcode::AbsReal: {
      double A = asReal(Stack.back());
      Stack.back() = Value(A < 0 ? -A : A);
      break;
    }
    case Opcode::IntToReal:
      Stack.back() = Value(static_cast<double>(asOrdinal(Stack.back())));
      break;
    case Opcode::RealToInt:
      Stack.back() = Value(static_cast<int64_t>(asReal(Stack.back())));
      break;

    case Opcode::SetUnion: {
      uint64_t B = asSet(Pop()), A = asSet(Pop());
      Stack.push_back(Value(SetVal{A | B}));
      break;
    }
    case Opcode::SetDiff: {
      uint64_t B = asSet(Pop()), A = asSet(Pop());
      Stack.push_back(Value(SetVal{A & ~B}));
      break;
    }
    case Opcode::SetIntersect: {
      uint64_t B = asSet(Pop()), A = asSet(Pop());
      Stack.push_back(Value(SetVal{A & B}));
      break;
    }
    case Opcode::SetSymDiff: {
      uint64_t B = asSet(Pop()), A = asSet(Pop());
      Stack.push_back(Value(SetVal{A ^ B}));
      break;
    }
    case Opcode::SetIn: {
      uint64_t Set = asSet(Pop());
      int64_t Elem = asOrdinal(Pop());
      Stack.push_back(Value(
          int64_t{Elem >= 0 && Elem < 64 && ((Set >> Elem) & 1) != 0}));
      break;
    }
    case Opcode::SetAddBit: {
      int64_t Elem = asOrdinal(Pop());
      uint64_t Set = asSet(Pop());
      if (Elem < 0 || Elem > 63)
        return Fail("set element " + std::to_string(Elem) +
                    " out of range 0..63");
      Stack.push_back(Value(SetVal{Set | (uint64_t{1} << Elem)}));
      break;
    }
    case Opcode::SetAddRange: {
      int64_t Hi = asOrdinal(Pop());
      int64_t Lo = asOrdinal(Pop());
      uint64_t Set = asSet(Pop());
      if (Lo < 0 || Hi > 63)
        return Fail("set range out of range 0..63");
      for (int64_t I = Lo; I <= Hi; ++I)
        Set |= uint64_t{1} << I;
      Stack.push_back(Value(SetVal{Set}));
      break;
    }
    case Opcode::SetIncl:
    case Opcode::SetExcl: {
      int64_t Elem = asOrdinal(Pop());
      Value AddrV = Pop();
      const auto *Addr = std::get_if<Address>(&AddrV);
      if (!Addr)
        return Fail("INCL/EXCL of a non-address");
      if (Elem < 0 || Elem > 63)
        return Fail("set element out of range 0..63");
      uint64_t Set = asSet(Addr->slot());
      if (In.Op == Opcode::SetIncl)
        Set |= uint64_t{1} << Elem;
      else
        Set &= ~(uint64_t{1} << Elem);
      Addr->slot() = Value(SetVal{Set});
      break;
    }

#define INT_CMP(OP, EXPR)                                                      \
  case Opcode::OP: {                                                           \
    int64_t B = asOrdinal(Pop()), A = asOrdinal(Pop());                        \
    Stack.push_back(Value(int64_t{(EXPR) ? 1 : 0}));                           \
    break;                                                                     \
  }
      INT_CMP(CmpEqInt, A == B)
      INT_CMP(CmpNeInt, A != B)
      INT_CMP(CmpLtInt, A < B)
      INT_CMP(CmpLeInt, A <= B)
      INT_CMP(CmpGtInt, A > B)
      INT_CMP(CmpGeInt, A >= B)
#undef INT_CMP
#define REAL_CMP(OP, EXPR)                                                     \
  case Opcode::OP: {                                                           \
    double B = asReal(Pop()), A = asReal(Pop());                               \
    Stack.push_back(Value(int64_t{(EXPR) ? 1 : 0}));                           \
    break;                                                                     \
  }
      REAL_CMP(CmpEqReal, A == B)
      REAL_CMP(CmpNeReal, A != B)
      REAL_CMP(CmpLtReal, A < B)
      REAL_CMP(CmpLeReal, A <= B)
      REAL_CMP(CmpGtReal, A > B)
      REAL_CMP(CmpGeReal, A >= B)
#undef REAL_CMP

    case Opcode::CmpEqPtr:
    case Opcode::CmpNePtr: {
      Value B = Pop(), A = Pop();
      auto CellOf = [](const Value &V) -> const void * {
        if (const auto *P = std::get_if<PtrRef>(&V))
          return P->Cell.get();
        if (const auto *P = std::get_if<ProcVal>(&V))
          return reinterpret_cast<const void *>(
              static_cast<uintptr_t>(P->UnitIndex + 1));
        return nullptr;
      };
      bool Eq = CellOf(A) == CellOf(B);
      Stack.push_back(
          Value(int64_t{(In.Op == Opcode::CmpEqPtr) == Eq ? 1 : 0}));
      break;
    }
    case Opcode::NotBool:
      Stack.back() = Value(int64_t{asOrdinal(Stack.back()) == 0 ? 1 : 0});
      break;

    case Opcode::Jump:
    case Opcode::JumpIfFalse:
    case Opcode::JumpIfTrue: {
      if (In.Op == Opcode::JumpIfFalse && asOrdinal(Pop()) != 0)
        break;
      if (In.Op == Opcode::JumpIfTrue && asOrdinal(Pop()) == 0)
        break;
      // Pc is already past the jump, so a backward target compares below
      // it (same condition the linker uses for BackedgeCount).
      bool Backward = In.A < static_cast<int64_t>(Pc);
      Pc = static_cast<size_t>(In.A);
      if (Backward && Tier) {
        Tier->noteBackedge(CurUnit);
        // On-stack replacement: enter installed tier-1 code at the loop
        // head of an already-running activation.
        if (WantTier1(CurUnit, Pc)) {
          ++OsrEntries;
          return Flow::Switch;
        }
      }
      break;
    }

    case Opcode::Call: {
      int32_t Target = F.Unit->Callees[static_cast<size_t>(In.A)];
      if (Target < 0)
        return Fail("call to unlinked procedure");
      Frame *StaticLink = nullptr;
      if (In.B >= 0) {
        StaticLink = &F;
        for (int64_t Hop = 0; Hop < In.B; ++Hop) {
          StaticLink = StaticLink->StaticLink;
          if (!StaticLink)
            return Fail("broken static link chain in call");
        }
      }
      const CodeUnit &Callee =
          *Prog.units()[static_cast<size_t>(Target)].Unit;
      if (Stack.size() < F.StackBase + Callee.Params.size())
        return Fail("call to '" + Callee.QualifiedName +
                    "' with too few arguments on the stack");
      size_t ArgBase = Stack.size() - Callee.Params.size();
      Frame &NF = pushFrame(E, Target, StaticLink, Pc, CurUnit);
      bindArgs(E, NF, ArgBase);
      CurUnit = Target;
      Pc = 0;
      if (Tier) {
        Tier->noteInvocation(Target);
        if (Tier->installed(Target))
          return Flow::Switch; // Pc 0 always heads a group.
      }
      break;
    }
    case Opcode::CallIndirect: {
      size_t Argc = static_cast<size_t>(In.B);
      if (Stack.size() < F.StackBase + Argc + 1)
        return Fail("indirect call with too few stack values");
      size_t ProcPos = Stack.size() - Argc - 1;
      const auto *P = std::get_if<ProcVal>(&Stack[ProcPos]);
      if (!P || P->UnitIndex < 0)
        return Fail("indirect call through an invalid procedure value");
      int32_t Target = P->UnitIndex;
      // Remove the procedure value from under the arguments.
      Stack.erase(Stack.begin() + static_cast<ptrdiff_t>(ProcPos));
      size_t ArgBase = Stack.size() - Argc;
      Frame &NF = pushFrame(E, Target, nullptr, Pc, CurUnit);
      bindArgs(E, NF, ArgBase);
      CurUnit = Target;
      Pc = 0;
      if (Tier) {
        Tier->noteInvocation(Target);
        if (Tier->installed(Target))
          return Flow::Switch;
      }
      break;
    }

    case Opcode::Return:
    case Opcode::ReturnValue: {
      Value Ret;
      if (In.Op == Opcode::ReturnValue)
        Ret = Pop();
      Stack.resize(F.StackBase);
      size_t ReturnPc = F.ReturnPc;
      int32_t ReturnUnit = F.ReturnUnit;
      Frames.pop_back();
      if (Frames.empty())
        return Flow::Done; // Entry unit finished.
      if (In.Op == Opcode::ReturnValue)
        Stack.push_back(std::move(Ret));
      CurUnit = ReturnUnit;
      Pc = ReturnPc;
      if (WantTier1(CurUnit, Pc))
        return Flow::Switch; // Resume the caller in tier 1.
      break;
    }

    case Opcode::CallBuiltin:
      if (!callBuiltin(E, Result, In.A, Pc))
        return Flow::Trapped;
      break;

    case Opcode::CheckRange: {
      int64_t V = asOrdinal(Stack.back());
      if (V < In.A || V > In.B)
        return Fail("value " + std::to_string(V) + " outside range " +
                    std::to_string(In.A) + ".." + std::to_string(In.B));
      break;
    }
    case Opcode::ArrayHigh: {
      Value V = Pop();
      if (const auto *Agg = std::get_if<AggRef>(&V)) {
        Stack.push_back(
            Value(static_cast<int64_t>(Agg->Obj->Slots.size()) - 1));
      } else if (const auto *Str = std::get_if<StrRef>(&V)) {
        Stack.push_back(Value(
            static_cast<int64_t>(Names.spelling(Str->Str).size()) -
            1));
      } else {
        return Fail("HIGH of a non-array value");
      }
      break;
    }
    case Opcode::Dup:
      Stack.push_back(Stack.back());
      break;
    case Opcode::Pop:
      Pop();
      break;
    case Opcode::Halt:
      Result.ExitCode = In.A;
      return Flow::Done;
    case Opcode::Trap:
      switch (In.A) {
      case 1:
        return Fail("no CASE branch matches the selector");
      case 2:
        return Fail("function procedure did not return a value");
      default:
        return Fail("trap " + std::to_string(In.A));
      }
    }
  }
}
