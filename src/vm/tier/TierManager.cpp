//===--- TierManager.cpp - Profiling, promotion and tier install -----------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "vm/tier/TierManager.h"

#include "sched/ThreadedExecutor.h"
#include "vm/VmStats.h"
#include "vm/tier/Translator.h"

#include <cstdlib>
#include <cstring>

using namespace m2c;
using namespace m2c::vm;
using namespace m2c::vm::tier;

//===----------------------------------------------------------------------===//
// Global vm.* counters
//===----------------------------------------------------------------------===//

StatisticSet &m2c::vm::globalVmStats() {
  static StatisticSet *Set = [] {
    auto *S = new StatisticSet();
    // Pre-touch every exported key so stats consumers (CLI -stats, the
    // daemon STATS reply) always render the full set.
    for (const char *Key :
         {"vm.runs", "vm.steps.tier0", "vm.steps.tier1", "vm.dispatch.tier1",
          "vm.tier.promotions", "vm.tier.instrs", "vm.tier.fused.groups",
          "vm.tier.fused.saved", "vm.tier.arena.bytes", "vm.tier.osr.entries",
          "vm.tier.deopts"})
      S->add(Key, 0);
    return S;
  }();
  return *Set;
}

//===----------------------------------------------------------------------===//
// TierPolicy
//===----------------------------------------------------------------------===//

TierPolicy TierPolicy::fromEnv() {
  TierPolicy P;
  if (const char *Mode = std::getenv("M2C_VM_TIER")) {
    if (!std::strcmp(Mode, "tier0") || !std::strcmp(Mode, "0"))
      P.Mode = TierMode::Tier0Only;
    else if (!std::strcmp(Mode, "force") || !std::strcmp(Mode, "1") ||
             !std::strcmp(Mode, "tier1"))
      P.Mode = TierMode::ForceTier1;
    else if (!std::strcmp(Mode, "mixed"))
      P.Mode = TierMode::Mixed;
  }
  if (const char *Thresh = std::getenv("M2C_TIER_THRESHOLD")) {
    long V = std::strtol(Thresh, nullptr, 10);
    if (V > 0) {
      P.InvocationThreshold = static_cast<uint32_t>(V);
      P.BackedgeThreshold = static_cast<uint32_t>(V) * 4;
    }
  }
  return P;
}

//===----------------------------------------------------------------------===//
// TierManager
//===----------------------------------------------------------------------===//

TierManager::TierManager(const codegen::LinkedProgram &Prog, TierPolicy Policy)
    : Prog(Prog), Policy(Policy), Units(Prog.units().size()) {
  if (Policy.Mode == TierMode::ForceTier1)
    promoteAll();
}

TierManager::~TierManager() {
  quiesce();
  if (Exec)
    Exec->stopService();
}

bool TierManager::claimRequest(int32_t UnitIndex) {
  bool Expected = false;
  return Units[static_cast<size_t>(UnitIndex)].Requested.compare_exchange_strong(
      Expected, true, std::memory_order_acq_rel);
}

void TierManager::noteInvocation(int32_t UnitIndex) {
  if (Policy.Mode != TierMode::Mixed)
    return;
  PerUnit &U = Units[static_cast<size_t>(UnitIndex)];
  if (U.Requested.load(std::memory_order_relaxed))
    return;
  // Loop-free units only benefit between invocations (no OSR entry can
  // rescue a running activation), so promote them at half the threshold.
  const codegen::LinkedUnit &LU = Prog.units()[static_cast<size_t>(UnitIndex)];
  uint32_t Threshold = LU.BackedgeCount == 0
                           ? (Policy.InvocationThreshold + 1) / 2
                           : Policy.InvocationThreshold;
  if (U.Invocations.fetch_add(1, std::memory_order_relaxed) + 1 >= Threshold)
    requestPromotion(UnitIndex);
}

void TierManager::noteBackedge(int32_t UnitIndex) {
  if (Policy.Mode != TierMode::Mixed)
    return;
  PerUnit &U = Units[static_cast<size_t>(UnitIndex)];
  if (U.Requested.load(std::memory_order_relaxed))
    return;
  if (U.Backedges.fetch_add(1, std::memory_order_relaxed) + 1 >=
      Policy.BackedgeThreshold)
    requestPromotion(UnitIndex);
}

void TierManager::requestPromotion(int32_t UnitIndex) {
  if (!claimRequest(UnitIndex))
    return;
  if (!Policy.Background) {
    promoteNow(UnitIndex);
    return;
  }
  ensureExecutor();
  Outstanding.fetch_add(1, std::memory_order_acq_rel);
  Exec->spawn(sched::makeTask(
      "tier1:" + Prog.units()[static_cast<size_t>(UnitIndex)].Unit->QualifiedName,
      sched::TaskClass::TierPromote, [this, UnitIndex] {
        promoteNow(UnitIndex);
        finishBackground();
      }));
}

void TierManager::promoteNow(int32_t UnitIndex) {
  const TierUnit *TU = translateUnit(Prog, UnitIndex, Arena);
  if (!TU)
    return; // Unit stays on tier 0 forever (Requested blocks retries).
  NumPromotions.fetch_add(1, std::memory_order_relaxed);
  StatisticSet &S = globalVmStats();
  S.add("vm.tier.promotions");
  S.add("vm.tier.instrs", TU->NumInstrs);
  S.add("vm.tier.fused.groups", TU->FusedGroups);
  S.add("vm.tier.fused.saved", TU->FusedSavedDispatches);
  S.add("vm.tier.arena.bytes", TU->ArenaBytes);
  // Publish last: the release pairs with installed()'s acquire, ordering
  // every arena write above before any interpreter read through it.
  Units[static_cast<size_t>(UnitIndex)].Installed.store(
      TU, std::memory_order_release);
}

void TierManager::promoteAll() {
  for (size_t U = 0; U < Units.size(); ++U)
    if (claimRequest(static_cast<int32_t>(U)))
      promoteNow(static_cast<int32_t>(U));
}

void TierManager::ensureExecutor() {
  std::lock_guard<std::mutex> Lock(ExecM);
  if (Exec)
    return;
  auto E = std::make_unique<sched::ThreadedExecutor>(Policy.PromoteWorkers);
  E->startService();
  Exec = std::move(E);
}

void TierManager::finishBackground() {
  if (Outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Lock before notifying so a quiesce() that just checked the counter
    // cannot park between its check and our notify.
    std::lock_guard<std::mutex> Lock(QuiesceM);
    QuiesceCv.notify_all();
  }
}

void TierManager::quiesce() {
  std::unique_lock<std::mutex> Lock(QuiesceM);
  QuiesceCv.wait(Lock, [this] {
    return Outstanding.load(std::memory_order_acquire) == 0;
  });
}
