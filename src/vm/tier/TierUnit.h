//===--- TierUnit.h - Pre-decoded tier-1 code units -------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tier-1 representation of a hot procedure: a flattened buffer of
/// operand-specialized TInstr records dispatched with computed goto, plus
/// the pc map that ties it back to the tier-0 (MCode) program counter at
/// every place control can enter or leave mid-procedure.
///
/// Step-accounting contract (what makes MaxSteps tier-independent): every
/// TInstr carries the number of tier-0 instructions it stands for
/// (Cost).  The tier-1 dispatcher charges exactly Cost steps before
/// executing an instruction; if that would cross the step budget it traps
/// at the group head for Cost == 1 (byte-identical to tier 0's trap) or
/// deoptimizes to tier 0 at the group head for fused groups — legal
/// because fused components are all trap-free and none has executed yet,
/// so tier 0 replays the group and traps at the exact tier-0 pc.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_VM_TIER_TIERUNIT_H
#define M2C_VM_TIER_TIERUNIT_H

#include "codegen/Linker.h"
#include "support/StringInterner.h"

#include <cstdint>
#include <type_traits>

namespace m2c::vm::tier {

/// Tier-1 instruction set: every MCode opcode one-to-one (same order, so
/// the cast is the identity translation) plus fused superinstructions.
enum class T1Op : uint16_t {
#define T1OP(Name) Name,
#include "vm/tier/T1Op.def"
};

#define T1OP(Name) +1
constexpr unsigned NumT1Ops = 0
#include "vm/tier/T1Op.def"
    ;

/// Integer operator selector of the fused binop forms.
enum class BinKind : uint8_t { Add = 0, Sub, Mul };

/// Comparison selector of the fused compare-and-branch forms.
enum class CmpKind : uint8_t { Eq = 0, Ne, Lt, Le, Gt, Ge };

/// One pre-decoded tier-1 instruction.  Operands are resolved at
/// translation time (see T1Op.def); A/B mirror MCode's 64-bit operand
/// width, C holds branch targets (tier-1 indexes) and third frame slots.
struct TInstr {
  T1Op Op = T1Op::Trap;
  uint8_t Cost = 1;  ///< Tier-0 instructions this entry accounts for.
  uint8_t Kind = 0;  ///< BinKind / CmpKind of fused forms.
  uint8_t Pad = 0;
  uint32_t Pc0 = 0;  ///< Tier-0 pc of the (group) head.
  int64_t A = 0;
  int64_t B = 0;
  int32_t C = 0;
  Symbol Sym;        ///< Pre-resolved string constant (PushStr).
  double F = 0.0;    ///< Real immediate.
};

static_assert(std::is_trivially_destructible_v<TInstr>,
              "TInstrs live in the CodeArena and are never destroyed");

/// A promoted procedure: installed into the owning TierManager's
/// per-unit pointer with a release store; everything it points to lives
/// in the arena (or in the immutable LinkedProgram) and never moves.
struct TierUnit {
  int32_t UnitIndex = -1;
  const codegen::LinkedUnit *LU = nullptr;

  const TInstr *Code = nullptr;
  uint32_t NumInstrs = 0;

  /// Tier-0 pc (0..code size, inclusive — the one-past-the-end entry maps
  /// to the synthetic FellOff instruction) to tier-1 index of the group
  /// headed there, or -1 for pcs interior to a fused group.  Every pc at
  /// which control can enter the unit (entry, jump targets, return
  /// addresses, OSR'able backedge targets) is a group head by
  /// construction.
  const int32_t *PcMap = nullptr;
  uint32_t PcMapSize = 0;

  uint32_t FusedGroups = 0;          ///< Superinstructions emitted.
  uint32_t FusedSavedDispatches = 0; ///< Sum of (Cost - 1).
  size_t ArenaBytes = 0;             ///< Arena footprint of this unit.
};

} // namespace m2c::vm::tier

#endif // M2C_VM_TIER_TIERUNIT_H
