//===--- TierManager.h - Profiling, promotion and tier install --*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns the tiering state of one LinkedProgram: per-unit invocation and
/// backedge counters fed by the tier-0 interpreter, the promotion queue,
/// the CodeArena behind every translated unit, and the per-unit installed
/// code pointer the interpreter consults.
///
/// Promotion protocol (the memory-ordering argument, see DESIGN.md §13):
/// a promotion task translates from *immutable* linked-program data into
/// fresh arena memory, then publishes the TierUnit with a release store
/// to the unit's Installed pointer.  The interpreter acquire-loads that
/// pointer at dispatch-switch points (calls, returns, loop backedges), so
/// every instruction it then reads through the pointer happens-before-
/// ordered after the translator's writes.  Arena chunks never move or
/// free while the manager lives, so a pointer once observed stays valid;
/// the interpreter is never paused.
///
/// A TierManager may be shared by several VMs running the same
/// LinkedProgram (promoted units carry no per-VM state), which is how
/// benchmarks keep a warm tier across fresh VM instances.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_VM_TIER_TIERMANAGER_H
#define M2C_VM_TIER_TIERMANAGER_H

#include "vm/tier/CodeArena.h"
#include "vm/tier/TierUnit.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>

namespace m2c::sched {
class ThreadedExecutor;
}

namespace m2c::vm::tier {

/// How a VM executes.
enum class TierMode : uint8_t {
  Tier0Only, ///< Pure interpreter; no profiling, no promotion.
  Mixed,     ///< Profile, promote hot units concurrently (the default).
  ForceTier1 ///< Every unit promoted eagerly before execution.
};

/// Tiering knobs.  Defaults come from the environment (M2C_VM_TIER =
/// tier0|mixed|force, M2C_TIER_THRESHOLD = invocation threshold) so the
/// whole test suite can be pinned to one tier without code changes.
struct TierPolicy {
  TierMode Mode = TierMode::Mixed;
  /// Invocations of a unit before it is enqueued for promotion.
  uint32_t InvocationThreshold = 64;
  /// Loop backedges executed in a unit before it is enqueued (hot loops
  /// promote long before their procedure's call count would).
  uint32_t BackedgeThreshold = 256;
  /// Promote concurrently on a work-stealing executor (false = translate
  /// synchronously at the trigger point; deterministic, used by tests).
  bool Background = true;
  /// Worker threads of the lazily started promotion executor.
  unsigned PromoteWorkers = 2;

  static TierPolicy fromEnv();
};

/// Per-program tiering state; thread-safe throughout.
class TierManager {
public:
  explicit TierManager(const codegen::LinkedProgram &Prog,
                       TierPolicy Policy = TierPolicy::fromEnv());
  ~TierManager();
  TierManager(const TierManager &) = delete;
  TierManager &operator=(const TierManager &) = delete;

  const codegen::LinkedProgram &program() const { return Prog; }
  const TierPolicy &policy() const { return Policy; }

  /// The installed tier-1 unit for \p UnitIndex, or null while it is
  /// still interpreting.  Acquire: pairs with the install release store.
  const TierUnit *installed(int32_t UnitIndex) const {
    return Units[static_cast<size_t>(UnitIndex)].Installed.load(
        std::memory_order_acquire);
  }

  /// Tier-0 profiling events; cross the threshold and the unit is
  /// enqueued for promotion exactly once.
  void noteInvocation(int32_t UnitIndex);
  void noteBackedge(int32_t UnitIndex);

  /// Synchronously promotes every unit (ForceTier1 startup, tests).
  void promoteAll();

  /// Blocks until no background promotion is in flight.
  void quiesce();

  uint64_t promotions() const {
    return NumPromotions.load(std::memory_order_relaxed);
  }
  const CodeArena &arena() const { return Arena; }

private:
  struct PerUnit {
    std::atomic<const TierUnit *> Installed{nullptr};
    std::atomic<uint32_t> Invocations{0};
    std::atomic<uint32_t> Backedges{0};
    /// Promotion enqueued (or done, or permanently refused).
    std::atomic<bool> Requested{false};
  };

  /// Marks the unit requested; returns true for the claiming caller.
  bool claimRequest(int32_t UnitIndex);
  /// Enqueues (Background) or runs (synchronous) one promotion.
  void requestPromotion(int32_t UnitIndex);
  /// Translates and installs one unit.  Runs on a promotion worker.
  void promoteNow(int32_t UnitIndex);
  void ensureExecutor();
  void finishBackground();

  const codegen::LinkedProgram &Prog;
  const TierPolicy Policy;
  std::vector<PerUnit> Units;
  CodeArena Arena;

  std::mutex ExecM; ///< Guards lazy executor start.
  std::unique_ptr<sched::ThreadedExecutor> Exec;

  std::atomic<uint64_t> Outstanding{0}; ///< In-flight background promotions.
  std::mutex QuiesceM;
  std::condition_variable QuiesceCv;

  std::atomic<uint64_t> NumPromotions{0};
};

} // namespace m2c::vm::tier

#endif // M2C_VM_TIER_TIERMANAGER_H
