//===--- Translator.h - MCode to tier-1 translation -------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates one linked code unit into a tier-1 TierUnit: operands are
/// pre-resolved (strings, callees, globals, jump targets), and hot
/// trap-free instruction groups are fused into superinstructions.  The
/// translator reads only immutable LinkedProgram data and allocates only
/// from the (thread-safe) CodeArena, so promotions may run concurrently
/// with each other and with the interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_VM_TIER_TRANSLATOR_H
#define M2C_VM_TIER_TRANSLATOR_H

#include "vm/tier/TierUnit.h"

namespace m2c::vm::tier {

class CodeArena;

/// Translates unit \p UnitIndex of \p Prog.  Returns an arena-allocated
/// TierUnit, or null when the unit's shape defeats translation (out of
/// range jump targets, oversized code — cannot happen for
/// linker-validated programs); a null result simply leaves the unit
/// interpreting forever.
const TierUnit *translateUnit(const codegen::LinkedProgram &Prog,
                              int32_t UnitIndex, CodeArena &Arena);

} // namespace m2c::vm::tier

#endif // M2C_VM_TIER_TRANSLATOR_H
