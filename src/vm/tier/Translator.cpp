//===--- Translator.cpp - MCode to tier-1 translation ----------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
//
// Three passes over the unit's MCode:
//
//  1. Barriers — every pc where control can enter from elsewhere (jump
//     targets and return addresses after calls) must head its own tier-1
//     group, so fusion never spans one.
//  2. Grouping — a greedy left-to-right walk fuses the trap-free shapes
//     the optimization passes leave behind (load/load/binop/store,
//     load/imm/compare/branch, constant stores, local copies, value
//     returns) and maps every other instruction one-to-one.
//  3. Emission — operands are specialized (strings to Symbols, callees to
//     unit indexes, globals to (module, slot), branch targets to tier-1
//     indexes) into one arena reservation holding the TierUnit header,
//     the instruction buffer and the pc map.
//
// Fusable components are restricted to operations that can never trap
// (LoadLocal/PushInt on linker-validated slots, Add/Sub/Mul on integers,
// integer comparisons, JumpIfFalse, StoreLocal, ReturnValue); DIV and MOD
// stay un-fused so their zero-divisor traps keep their exact tier-0 pc.
//
//===----------------------------------------------------------------------===//

#include "vm/tier/Translator.h"

#include "vm/tier/CodeArena.h"

#include <cassert>
#include <new>
#include <vector>

using namespace m2c;
using namespace m2c::codegen;
using namespace m2c::vm::tier;

// The 1:1 block of T1Op.def mirrors Opcode.def in order, making the cast
// below the identity translation for un-fused instructions.
static_assert(static_cast<unsigned>(T1Op::PushInt) ==
              static_cast<unsigned>(Opcode::PushInt));
static_assert(static_cast<unsigned>(T1Op::Jump) ==
              static_cast<unsigned>(Opcode::Jump));
static_assert(static_cast<unsigned>(T1Op::Trap) ==
              static_cast<unsigned>(Opcode::Trap));

namespace {

bool binKindOf(Opcode Op, BinKind &K) {
  switch (Op) {
  case Opcode::AddInt:
    K = BinKind::Add;
    return true;
  case Opcode::SubInt:
    K = BinKind::Sub;
    return true;
  case Opcode::MulInt:
    K = BinKind::Mul;
    return true;
  default:
    return false;
  }
}

bool cmpKindOf(Opcode Op, CmpKind &K) {
  switch (Op) {
  case Opcode::CmpEqInt:
    K = CmpKind::Eq;
    return true;
  case Opcode::CmpNeInt:
    K = CmpKind::Ne;
    return true;
  case Opcode::CmpLtInt:
    K = CmpKind::Lt;
    return true;
  case Opcode::CmpLeInt:
    K = CmpKind::Le;
    return true;
  case Opcode::CmpGtInt:
    K = CmpKind::Gt;
    return true;
  case Opcode::CmpGeInt:
    K = CmpKind::Ge;
    return true;
  default:
    return false;
  }
}

/// One planned tier-1 instruction: the tier-0 pc it heads, what to emit,
/// and how many tier-0 instructions it covers.
struct Group {
  uint32_t Pc = 0;
  T1Op Op = T1Op::Trap;
  uint8_t Len = 1;
  uint8_t Kind = 0;
};

} // namespace

const TierUnit *m2c::vm::tier::translateUnit(const LinkedProgram &Prog,
                                             int32_t UnitIndex,
                                             CodeArena &Arena) {
  const LinkedUnit &LU = Prog.units()[static_cast<size_t>(UnitIndex)];
  const CodeUnit &U = *LU.Unit;
  const size_t N = U.Code.size();
  if (N >= (size_t{1} << 28)) // Pc0 must fit uint32 with headroom.
    return nullptr;

  // Pass 1: barriers.  Every jump target and every return address (the
  // pc after a frame-pushing call) must head its own group.
  std::vector<uint8_t> Barrier(N + 1, 0);
  for (size_t Pc = 0; Pc < N; ++Pc) {
    const Instr &In = U.Code[Pc];
    switch (In.Op) {
    case Opcode::Jump:
    case Opcode::JumpIfFalse:
    case Opcode::JumpIfTrue:
      if (In.A < 0 || In.A > static_cast<int64_t>(N))
        return nullptr; // Defensive; the linker validates targets.
      Barrier[static_cast<size_t>(In.A)] = 1;
      break;
    case Opcode::Call:
    case Opcode::CallIndirect:
      Barrier[Pc + 1] = 1;
      break;
    default:
      break;
    }
  }

  // Pass 2: greedy grouping.
  std::vector<Group> Groups;
  Groups.reserve(N + 1);
  std::vector<int32_t> PcMap(N + 1, -1);
  for (size_t Pc = 0; Pc < N;) {
    // How many instructions past Pc can be absorbed before a barrier.
    size_t MaxLen = 1;
    while (MaxLen < 4 && Pc + MaxLen < N && !Barrier[Pc + MaxLen])
      ++MaxLen;

    const Instr &I0 = U.Code[Pc];
    Group G;
    G.Pc = static_cast<uint32_t>(Pc);
    G.Op = static_cast<T1Op>(static_cast<unsigned>(I0.Op));
    G.Len = 1;

    BinKind BK;
    CmpKind CK;
    if (I0.Op == Opcode::LoadLocal) {
      if (MaxLen >= 4 && U.Code[Pc + 1].Op == Opcode::LoadLocal &&
          binKindOf(U.Code[Pc + 2].Op, BK) &&
          U.Code[Pc + 3].Op == Opcode::StoreLocal) {
        G.Op = T1Op::FusedLLBS;
        G.Len = 4;
        G.Kind = static_cast<uint8_t>(BK);
      } else if (MaxLen >= 4 && U.Code[Pc + 1].Op == Opcode::PushInt &&
                 binKindOf(U.Code[Pc + 2].Op, BK) &&
                 U.Code[Pc + 3].Op == Opcode::StoreLocal) {
        G.Op = T1Op::FusedLIBS;
        G.Len = 4;
        G.Kind = static_cast<uint8_t>(BK);
      } else if (MaxLen >= 4 && U.Code[Pc + 1].Op == Opcode::LoadLocal &&
                 cmpKindOf(U.Code[Pc + 2].Op, CK) &&
                 U.Code[Pc + 3].Op == Opcode::JumpIfFalse) {
        G.Op = T1Op::FusedLLCmpBr;
        G.Len = 4;
        G.Kind = static_cast<uint8_t>(CK);
      } else if (MaxLen >= 4 && U.Code[Pc + 1].Op == Opcode::PushInt &&
                 cmpKindOf(U.Code[Pc + 2].Op, CK) &&
                 U.Code[Pc + 3].Op == Opcode::JumpIfFalse) {
        G.Op = T1Op::FusedLICmpBr;
        G.Len = 4;
        G.Kind = static_cast<uint8_t>(CK);
      } else if (MaxLen >= 3 && U.Code[Pc + 1].Op == Opcode::LoadLocal &&
                 binKindOf(U.Code[Pc + 2].Op, BK)) {
        G.Op = T1Op::FusedLLB;
        G.Len = 3;
        G.Kind = static_cast<uint8_t>(BK);
      } else if (MaxLen >= 3 && U.Code[Pc + 1].Op == Opcode::PushInt &&
                 binKindOf(U.Code[Pc + 2].Op, BK)) {
        G.Op = T1Op::FusedLIB;
        G.Len = 3;
        G.Kind = static_cast<uint8_t>(BK);
      } else if (MaxLen >= 2 && U.Code[Pc + 1].Op == Opcode::StoreLocal) {
        G.Op = T1Op::FusedCopyLocal;
        G.Len = 2;
      } else if (MaxLen >= 2 && U.Code[Pc + 1].Op == Opcode::ReturnValue) {
        G.Op = T1Op::FusedReturnLocal;
        G.Len = 2;
      }
    } else if (I0.Op == Opcode::PushInt && MaxLen >= 2 &&
               U.Code[Pc + 1].Op == Opcode::StoreLocal) {
      G.Op = T1Op::FusedStoreConst;
      G.Len = 2;
    }

    PcMap[Pc] = static_cast<int32_t>(Groups.size());
    Groups.push_back(G);
    Pc += G.Len;
  }
  // Synthetic terminator: reaching pc == N reproduces tier 0's
  // fell-off-the-end trap (after the same step charge).
  {
    Group G;
    G.Pc = static_cast<uint32_t>(N);
    G.Op = T1Op::FellOff;
    G.Len = 1;
    PcMap[N] = static_cast<int32_t>(Groups.size());
    Groups.push_back(G);
  }

  // Pass 3: emission into one arena reservation.
  const size_t HeaderBytes =
      (sizeof(TierUnit) + alignof(TInstr) - 1) & ~(alignof(TInstr) - 1);
  const size_t CodeBytes = Groups.size() * sizeof(TInstr);
  const size_t MapBytes = (N + 1) * sizeof(int32_t);
  std::byte *Limit = nullptr;
  std::byte *Base = Arena.reserve(HeaderBytes + CodeBytes + MapBytes, &Limit);

  auto *TU = new (Base) TierUnit();
  auto *Code = reinterpret_cast<TInstr *>(Base + HeaderBytes);
  auto *Map = reinterpret_cast<int32_t *>(Base + HeaderBytes + CodeBytes);

  for (size_t I = 0; I < Groups.size(); ++I) {
    const Group &G = Groups[I];
    TInstr *T = new (&Code[I]) TInstr();
    T->Op = G.Op;
    T->Cost = G.Len;
    T->Kind = G.Kind;
    T->Pc0 = G.Pc;
    if (G.Op == T1Op::FellOff)
      continue;
    const Instr &I0 = U.Code[G.Pc];
    switch (G.Op) {
    case T1Op::FusedLLBS: // LL a; LL b; bin; Store c
      T->A = U.Code[G.Pc].A;
      T->B = U.Code[G.Pc + 1].A;
      T->C = static_cast<int32_t>(U.Code[G.Pc + 3].A);
      break;
    case T1Op::FusedLIBS: // LL a; PushInt k; bin; Store c
      T->A = U.Code[G.Pc].A;
      T->B = U.Code[G.Pc + 1].A;
      T->C = static_cast<int32_t>(U.Code[G.Pc + 3].A);
      break;
    case T1Op::FusedLLCmpBr: // LL a; LL b; cmp; JumpIfFalse t
    case T1Op::FusedLICmpBr: // LL a; PushInt k; cmp; JumpIfFalse t
      T->A = U.Code[G.Pc].A;
      T->B = U.Code[G.Pc + 1].A;
      T->C = PcMap[static_cast<size_t>(U.Code[G.Pc + 3].A)];
      assert(T->C >= 0 && "branch target is not a group head");
      break;
    case T1Op::FusedLLB:
    case T1Op::FusedLIB:
      T->A = U.Code[G.Pc].A;
      T->B = U.Code[G.Pc + 1].A;
      break;
    case T1Op::FusedStoreConst: // PushInt k; Store a
      T->A = U.Code[G.Pc + 1].A;
      T->B = U.Code[G.Pc].A;
      break;
    case T1Op::FusedCopyLocal: // LL a; Store c
      T->A = U.Code[G.Pc].A;
      T->C = static_cast<int32_t>(U.Code[G.Pc + 1].A);
      break;
    case T1Op::FusedReturnLocal: // LL a; ReturnValue
      T->A = U.Code[G.Pc].A;
      break;

    case T1Op::PushStr:
      T->Sym = U.Strings[static_cast<size_t>(I0.A)];
      break;
    case T1Op::PushProc:
    case T1Op::Call:
      // Callee-table index to linked unit index (-1 stays: the unlinked
      // trap fires at run time, exactly like tier 0).
      T->A = LU.Callees[static_cast<size_t>(I0.A)];
      T->B = I0.B;
      break;
    case T1Op::LoadGlobal:
    case T1Op::StoreGlobal:
    case T1Op::LoadGlobalRef: {
      const LinkedUnit::GlobalSlot &G2 = LU.Globals[static_cast<size_t>(I0.A)];
      T->A = G2.ModuleIndex;
      T->B = G2.Slot;
      break;
    }
    case T1Op::Jump:
    case T1Op::JumpIfFalse:
    case T1Op::JumpIfTrue:
      T->C = PcMap[static_cast<size_t>(I0.A)];
      assert(T->C >= 0 && "branch target is not a group head");
      break;
    default:
      T->A = I0.A;
      T->B = I0.B;
      T->F = I0.F;
      break;
    }
    if (G.Len > 1) {
      ++TU->FusedGroups;
      TU->FusedSavedDispatches += G.Len - 1;
    }
  }

  for (size_t Pc = 0; Pc <= N; ++Pc)
    Map[Pc] = PcMap[Pc];

  TU->UnitIndex = UnitIndex;
  TU->LU = &LU;
  TU->Code = Code;
  TU->NumInstrs = static_cast<uint32_t>(Groups.size());
  TU->PcMap = Map;
  TU->PcMapSize = static_cast<uint32_t>(N + 1);
  TU->ArenaBytes = HeaderBytes + CodeBytes + MapBytes;

  Arena.commit(Base, Base + HeaderBytes + CodeBytes + MapBytes);
  return TU;
}
