//===--- CodeArena.h - Reserve/commit arena for tier-1 code -----*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The arena behind promoted tier-1 units, after lambdachine's MCode
/// reserve/commit API: a translator reserves a region up to a returned
/// limit, emits into it, and commits the high-water mark.  Two properties
/// make the atomic code-pointer install protocol sound:
///
///  * chunks are never freed, reused or moved while the arena lives, so a
///    pointer published with a release store stays valid for every reader
///    that acquire-loads it, forever;
///  * reserve() claims its region under the arena lock before returning,
///    so promotions running concurrently on different executor workers
///    can never hand out overlapping regions.
///
/// Unlike lambdachine we emit portable pre-decoded instruction records,
/// not executable machine code, so no mprotect dance is needed.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_VM_TIER_CODEARENA_H
#define M2C_VM_TIER_CODEARENA_H

#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>

namespace m2c::vm::tier {

/// Chunked bump arena with a reserve/commit protocol, safe for
/// concurrent reservations.
class CodeArena {
public:
  explicit CodeArena(size_t ChunkBytes = 64 * 1024) : ChunkBytes(ChunkBytes) {}
  CodeArena(const CodeArena &) = delete;
  CodeArena &operator=(const CodeArena &) = delete;

  /// Claims at least \p Bytes of storage.  Returns the base and sets
  /// \p Limit one past the claimed region; the caller emits up to Limit
  /// and then calls commit().  The region is exclusively the caller's
  /// from this moment (concurrent reserves get disjoint regions).
  std::byte *reserve(size_t Bytes, std::byte **Limit);

  /// Commits a reservation: \p Top is the first unused byte (Base <= Top
  /// <= Limit).  If the reservation is still the newest in its chunk the
  /// unused tail is returned to the chunk; otherwise only the accounting
  /// is updated (the tail is wasted, never reused — pointer stability is
  /// worth more than the bytes).
  void commit(std::byte *Base, std::byte *Top);

  /// Bytes handed out by reserve() so far (committed or in flight).
  size_t reservedBytes() const;
  /// Bytes actually committed as live tier-1 code.
  size_t committedBytes() const;
  size_t chunkCount() const;

private:
  struct Chunk {
    std::unique_ptr<std::byte[]> Mem;
    size_t Cap = 0;
    size_t Used = 0;
  };

  const size_t ChunkBytes;
  mutable std::mutex M;
  std::deque<Chunk> Chunks;
  std::byte *LastClaimBase = nullptr; ///< Newest reservation (trim check).
  std::byte *LastClaimEnd = nullptr;
  size_t Reserved = 0;
  size_t Committed = 0;
};

} // namespace m2c::vm::tier

#endif // M2C_VM_TIER_CODEARENA_H
