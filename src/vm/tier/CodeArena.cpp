//===--- CodeArena.cpp - Reserve/commit arena for tier-1 code --------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "vm/tier/CodeArena.h"

#include <cassert>

using namespace m2c::vm::tier;

namespace {
constexpr size_t Alignment = alignof(std::max_align_t);

size_t alignUp(size_t N) { return (N + Alignment - 1) & ~(Alignment - 1); }
} // namespace

std::byte *CodeArena::reserve(size_t Bytes, std::byte **Limit) {
  Bytes = alignUp(Bytes == 0 ? 1 : Bytes);
  std::lock_guard<std::mutex> Lock(M);
  if (Chunks.empty() || Chunks.back().Cap - Chunks.back().Used < Bytes) {
    Chunk C;
    C.Cap = Bytes > ChunkBytes ? Bytes : ChunkBytes;
    C.Mem = std::make_unique<std::byte[]>(C.Cap);
    Chunks.push_back(std::move(C));
  }
  Chunk &C = Chunks.back();
  std::byte *Base = C.Mem.get() + C.Used;
  C.Used += Bytes;
  Reserved += Bytes;
  LastClaimBase = Base;
  LastClaimEnd = Base + Bytes;
  *Limit = Base + Bytes;
  return Base;
}

void CodeArena::commit(std::byte *Base, std::byte *Top) {
  assert(Top >= Base && "commit below reservation base");
  std::lock_guard<std::mutex> Lock(M);
  Committed += static_cast<size_t>(Top - Base);
  // Return the unused tail only when this reservation is still the arena's
  // newest claim (reserve() always claims the top of the last chunk, so a
  // matching LastClaimBase means nothing was reserved after us).  Older
  // reservations just waste their tail — pointer stability is worth more
  // than the bytes.
  if (Base == LastClaimBase && !Chunks.empty()) {
    Chunk &C = Chunks.back();
    size_t End = static_cast<size_t>(Base - C.Mem.get()) +
                 alignUp(static_cast<size_t>(Top - Base));
    assert(LastClaimEnd == C.Mem.get() + C.Used && "claim bookkeeping skew");
    if (End < C.Used) {
      Reserved -= C.Used - End;
      C.Used = End;
      LastClaimEnd = C.Mem.get() + End;
    }
  }
}

size_t CodeArena::reservedBytes() const {
  std::lock_guard<std::mutex> Lock(M);
  return Reserved;
}

size_t CodeArena::committedBytes() const {
  std::lock_guard<std::mutex> Lock(M);
  return Committed;
}

size_t CodeArena::chunkCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return Chunks.size();
}
