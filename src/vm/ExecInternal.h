//===--- ExecInternal.h - Shared interpreter execution state ----*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution state shared by the tier-0 interpreter loop (VM.cpp) and
/// the tier-1 threaded-code dispatcher (Tier1Exec.cpp), plus the small
/// value-view helpers both loops use.  Internal to the vm library.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_VM_EXECINTERNAL_H
#define M2C_VM_EXECINTERNAL_H

#include "vm/VM.h"

#include <deque>

namespace m2c::vm {

/// One executeUnit() activation: the operand stack and frame stack walked
/// by whichever tier currently runs, and the tier-0 resume point (CurUnit,
/// Pc) that is kept valid at every tier-switch boundary.  Frames live in a
/// deque so Frame references (static links, the tier-1 cached frame
/// pointer) survive pushes.
struct VM::Exec {
  std::vector<Value> Stack;
  std::deque<Frame> Frames;
  int32_t CurUnit = -1;
  size_t Pc = 0;
};

namespace detail {

/// Ordinal-ish view of a value (ints, bools, chars, enum ordinals, sets
/// compare as their bit patterns; uninitialized slots read as zero).
inline int64_t asOrdinal(const Value &V) {
  if (const auto *I = std::get_if<int64_t>(&V))
    return *I;
  if (const auto *S = std::get_if<SetVal>(&V))
    return static_cast<int64_t>(S->Bits);
  return 0;
}

inline double asReal(const Value &V) {
  if (const auto *R = std::get_if<double>(&V))
    return *R;
  return static_cast<double>(asOrdinal(V));
}

inline uint64_t asSet(const Value &V) {
  if (const auto *S = std::get_if<SetVal>(&V))
    return S->Bits;
  return static_cast<uint64_t>(asOrdinal(V));
}

inline void appendPadded(std::string &Out, const std::string &Text,
                         int64_t Width) {
  for (int64_t I = static_cast<int64_t>(Text.size()); I < Width; ++I)
    Out.push_back(' ');
  Out += Text;
}

} // namespace detail

} // namespace m2c::vm

#endif // M2C_VM_EXECINTERNAL_H
