//===--- Tier1Exec.cpp - Tier-1 threaded-code dispatcher -------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
//
// Executes pre-decoded TierUnits with computed-goto dispatch (a switch
// loop on compilers without the labels-as-values extension).  Semantics
// are bit-for-bit those of the tier-0 interpreter in VM.cpp: identical
// output, identical trap points and messages, identical MaxSteps
// accounting (each TInstr charges the number of tier-0 instructions it
// stands for before executing; see TierUnit.h for the deopt contract).
//
// Calls and returns between two promoted units stay inside this loop;
// any boundary into unpromoted code (or a pc the translator fused over)
// hands the tier-0 resume point back to the trampoline in executeUnit.
//
//===----------------------------------------------------------------------===//

#include "sema/Builtins.h"
#include "vm/ExecInternal.h"
#include "vm/tier/TierManager.h"

#include <cstdio>

using namespace m2c;
using namespace m2c::codegen;
using namespace m2c::vm;
using namespace m2c::vm::detail;
using namespace m2c::vm::tier;

#if defined(__GNUC__) || defined(__clang__)
#define M2C_TIER1_THREADED 1
#else
#define M2C_TIER1_THREADED 0
#endif

namespace {

int64_t applyBin(uint8_t Kind, int64_t A, int64_t B) {
  switch (static_cast<BinKind>(Kind)) {
  case BinKind::Add:
    return A + B;
  case BinKind::Sub:
    return A - B;
  case BinKind::Mul:
    return A * B;
  }
  return 0;
}

bool applyCmp(uint8_t Kind, int64_t A, int64_t B) {
  switch (static_cast<CmpKind>(Kind)) {
  case CmpKind::Eq:
    return A == B;
  case CmpKind::Ne:
    return A != B;
  case CmpKind::Lt:
    return A < B;
  case CmpKind::Le:
    return A <= B;
  case CmpKind::Gt:
    return A > B;
  case CmpKind::Ge:
    return A >= B;
  }
  return false;
}

} // namespace

VM::Flow VM::runTier1(Exec &E, const tier::TierUnit *Entry, RunResult &Result,
                      uint64_t &Steps, uint64_t MaxSteps) {
  auto &Stack = E.Stack;
  auto &Frames = E.Frames;

  const TierUnit *TU = Entry;
  const TInstr *Code = TU->Code;
  const CodeUnit *CU = TU->LU->Unit;
  size_t Ip = static_cast<size_t>(TU->PcMap[E.Pc]);
  Frame *F = &Frames.back(); // Deque: stays valid across pushFrame.
  const TInstr *I = nullptr;
  uint64_t Dispatches = 0;
  Value RetVal;
  bool HasRet = false;

  // Flush this segment's step/dispatch counts on every exit path.
  struct Account {
    VM &V;
    const uint64_t &Steps;
    const uint64_t &Dispatches;
    uint64_t Entry;
    ~Account() {
      V.Tier1Steps += Steps - Entry;
      V.Tier1Dispatches += Dispatches;
    }
  } Acct{*this, Steps, Dispatches, Steps};

  auto Fail = [&](size_t Pc0, const std::string &Message) {
    failAt(Result, *F, Pc0, Message);
    return Flow::Trapped;
  };
  auto Pop = [&]() {
    Value V = std::move(Stack.back());
    Stack.pop_back();
    return V;
  };

#if M2C_TIER1_THREADED
  static const void *const Labels[] = {
#define T1OP(Name) &&L_##Name,
#include "vm/tier/T1Op.def"
  };
#define CASE(Name) L_##Name:
#define DISPATCH()                                                             \
  do {                                                                         \
    I = &Code[Ip];                                                             \
    if (Steps + I->Cost > MaxSteps)                                            \
      goto StepLimit;                                                          \
    Steps += I->Cost;                                                          \
    ++Dispatches;                                                              \
    goto *Labels[static_cast<unsigned>(I->Op)];                                \
  } while (0)
#else
#define CASE(Name) case T1Op::Name:
#define DISPATCH() goto DispatchTop
#endif
#define NEXT()                                                                 \
  do {                                                                         \
    ++Ip;                                                                      \
    DISPATCH();                                                                \
  } while (0)

#if M2C_TIER1_THREADED
  DISPATCH();
#else
DispatchTop:
  I = &Code[Ip];
  if (Steps + I->Cost > MaxSteps)
    goto StepLimit;
  Steps += I->Cost;
  ++Dispatches;
  switch (I->Op) {
#endif

  //===--- Constants ------------------------------------------------------===//

  CASE(PushInt)
  Stack.push_back(Value(I->A));
  NEXT();

  CASE(PushReal)
  Stack.push_back(Value(I->F));
  NEXT();

  CASE(PushSet)
  Stack.push_back(Value(SetVal{static_cast<uint64_t>(I->A)}));
  NEXT();

  CASE(PushNil)
  Stack.push_back(Value(PtrRef{nullptr}));
  NEXT();

  CASE(PushStr)
  // Pre-resolved: the translator stored the Symbol itself.
  Stack.push_back(Value(StrRef{I->Sym}));
  NEXT();

  CASE(PushProc)
  // Pre-resolved: A is a linked unit index (-1 = unlinked).
  if (I->A < 0)
    return Fail(I->Pc0 + 1, "procedure value refers to an unlinked procedure");
  Stack.push_back(Value(ProcVal{static_cast<int32_t>(I->A)}));
  NEXT();

  //===--- Frame access ---------------------------------------------------===//

  CASE(LoadLocal)
  Stack.push_back(F->Slots[static_cast<size_t>(I->A)]);
  NEXT();

  CASE(StoreLocal) {
    Value V = Pop();
    assignInto(F->Slots[static_cast<size_t>(I->A)], std::move(V));
    NEXT();
  }

  CASE(LoadLocalRef)
  Stack.push_back(
      Value(Address{&F->Slots[static_cast<size_t>(I->A)], nullptr, 0}));
  NEXT();

  CASE(LoadEnclosing)
  CASE(StoreEnclosing)
  CASE(LoadEnclosingRef) {
    Frame *Target = F;
    for (int64_t Hop = 0; Hop < I->B; ++Hop) {
      Target = Target->StaticLink;
      if (!Target)
        return Fail(I->Pc0 + 1, "broken static link chain");
    }
    if (I->A < 0 || static_cast<size_t>(I->A) >= Target->Slots.size())
      return Fail(I->Pc0 + 1, "enclosing frame slot out of range");
    Value &Slot = Target->Slots[static_cast<size_t>(I->A)];
    if (I->Op == T1Op::LoadEnclosing) {
      Stack.push_back(Slot);
    } else if (I->Op == T1Op::StoreEnclosing) {
      Value V = Pop();
      assignInto(Slot, std::move(V));
    } else {
      Stack.push_back(Value(Address{&Slot, nullptr, 0}));
    }
    NEXT();
  }

  CASE(LoadGlobal)
  CASE(StoreGlobal)
  CASE(LoadGlobalRef) {
    // Pre-resolved: A = module index, B = slot.
    if (I->A < 0)
      return Fail(I->Pc0 + 1, "unresolved global reference");
    auto &ModGlobals = *Globals[static_cast<size_t>(I->A)];
    if (static_cast<size_t>(I->B) >= ModGlobals.size())
      return Fail(I->Pc0 + 1, "global slot out of range");
    Value &Slot = ModGlobals[static_cast<size_t>(I->B)];
    if (I->Op == T1Op::LoadGlobal) {
      Stack.push_back(Slot);
    } else if (I->Op == T1Op::StoreGlobal) {
      Value V = Pop();
      assignInto(Slot, std::move(V));
    } else {
      Stack.push_back(Value(Address{&Slot, nullptr, 0}));
    }
    NEXT();
  }

  //===--- Address plumbing -----------------------------------------------===//

  CASE(LoadIndirect) {
    Value V = Pop();
    const auto *Addr = std::get_if<Address>(&V);
    if (!Addr)
      return Fail(I->Pc0 + 1, "LoadIndirect on a non-address");
    Stack.push_back(Addr->slot());
    NEXT();
  }

  CASE(StoreIndirect) {
    Value V = Pop();
    Value AddrV = Pop();
    const auto *Addr = std::get_if<Address>(&AddrV);
    if (!Addr)
      return Fail(I->Pc0 + 1, "StoreIndirect on a non-address");
    assignInto(Addr->slot(), std::move(V));
    NEXT();
  }

  CASE(FieldAddr) {
    Value AddrV = Pop();
    const auto *Addr = std::get_if<Address>(&AddrV);
    if (!Addr)
      return Fail(I->Pc0 + 1, "FieldAddr on a non-address");
    const auto *Agg = std::get_if<AggRef>(&Addr->slot());
    if (!Agg || !Agg->Obj)
      return Fail(I->Pc0 + 1, "field access on a non-record value");
    if (static_cast<size_t>(I->A) >= Agg->Obj->Slots.size())
      return Fail(I->Pc0 + 1, "field index out of range");
    Stack.push_back(
        Value(Address{nullptr, Agg->Obj, static_cast<size_t>(I->A)}));
    NEXT();
  }

  CASE(IndexAddr) {
    int64_t Index = asOrdinal(Pop());
    Value AddrV = Pop();
    const auto *Addr = std::get_if<Address>(&AddrV);
    if (!Addr)
      return Fail(I->Pc0 + 1, "IndexAddr on a non-address");
    const auto *Agg = std::get_if<AggRef>(&Addr->slot());
    if (!Agg || !Agg->Obj)
      return Fail(I->Pc0 + 1, "indexing a non-array value");
    int64_t Low = I->A;
    int64_t Count =
        I->B >= 0 ? I->B : static_cast<int64_t>(Agg->Obj->Slots.size());
    if (Index < Low || Index >= Low + Count)
      return Fail(I->Pc0 + 1, "array index " + std::to_string(Index) +
                                  " out of bounds [" + std::to_string(Low) +
                                  ".." + std::to_string(Low + Count - 1) +
                                  "]");
    Stack.push_back(
        Value(Address{nullptr, Agg->Obj, static_cast<size_t>(Index - Low)}));
    NEXT();
  }

  CASE(DerefAddr) {
    Value V = Pop();
    const auto *Ptr = std::get_if<PtrRef>(&V);
    if (!Ptr)
      return Fail(I->Pc0 + 1, "dereference of a non-pointer value");
    if (!Ptr->Cell)
      return Fail(I->Pc0 + 1, "dereference of NIL");
    Stack.push_back(Value(Address{nullptr, Ptr->Cell, 0}));
    NEXT();
  }

  //===--- Aggregates -----------------------------------------------------===//

  CASE(PushAggregate)
  Stack.push_back(defaultValue(CU->Descs, static_cast<int32_t>(I->A)));
  NEXT();

  CASE(NewCell) {
    auto Cell = std::make_shared<Object>();
    Cell->Slots.push_back(defaultValue(CU->Descs, static_cast<int32_t>(I->A)));
    Stack.push_back(Value(PtrRef{std::move(Cell)}));
    NEXT();
  }

  CASE(DisposeCell) {
    Value AddrV = Pop();
    const auto *Addr = std::get_if<Address>(&AddrV);
    if (!Addr)
      return Fail(I->Pc0 + 1, "DISPOSE of a non-address");
    Addr->slot() = Value(PtrRef{nullptr});
    NEXT();
  }

  //===--- Integer arithmetic ---------------------------------------------===//

  CASE(AddInt) {
    int64_t B = asOrdinal(Pop()), A = asOrdinal(Pop());
    Stack.push_back(Value(A + B));
    NEXT();
  }

  CASE(SubInt) {
    int64_t B = asOrdinal(Pop()), A = asOrdinal(Pop());
    Stack.push_back(Value(A - B));
    NEXT();
  }

  CASE(MulInt) {
    int64_t B = asOrdinal(Pop()), A = asOrdinal(Pop());
    Stack.push_back(Value(A * B));
    NEXT();
  }

  CASE(DivInt) {
    int64_t B = asOrdinal(Pop()), A = asOrdinal(Pop());
    if (B == 0)
      return Fail(I->Pc0 + 1, "integer division by zero");
    Stack.push_back(Value(A / B));
    NEXT();
  }

  CASE(ModInt) {
    int64_t B = asOrdinal(Pop()), A = asOrdinal(Pop());
    if (B == 0)
      return Fail(I->Pc0 + 1, "MOD by zero");
    Stack.push_back(Value(A % B));
    NEXT();
  }

  CASE(NegInt)
  Stack.back() = Value(-asOrdinal(Stack.back()));
  NEXT();

  CASE(AbsInt) {
    int64_t A = asOrdinal(Stack.back());
    Stack.back() = Value(A < 0 ? -A : A);
    NEXT();
  }

  CASE(IncAddr) {
    int64_t Delta = asOrdinal(Pop());
    Value AddrV = Pop();
    const auto *Addr = std::get_if<Address>(&AddrV);
    if (!Addr)
      return Fail(I->Pc0 + 1, "INC/DEC of a non-address");
    Addr->slot() = Value(asOrdinal(Addr->slot()) + Delta);
    NEXT();
  }

  CASE(Odd)
  Stack.back() = Value(int64_t{(asOrdinal(Stack.back()) & 1) != 0});
  NEXT();

  CASE(Cap) {
    int64_t C = asOrdinal(Stack.back());
    if (C >= 'a' && C <= 'z')
      C = C - 'a' + 'A';
    Stack.back() = Value(C);
    NEXT();
  }

  //===--- Real arithmetic ------------------------------------------------===//

  CASE(AddReal) {
    double B = asReal(Pop()), A = asReal(Pop());
    Stack.push_back(Value(A + B));
    NEXT();
  }

  CASE(SubReal) {
    double B = asReal(Pop()), A = asReal(Pop());
    Stack.push_back(Value(A - B));
    NEXT();
  }

  CASE(MulReal) {
    double B = asReal(Pop()), A = asReal(Pop());
    Stack.push_back(Value(A * B));
    NEXT();
  }

  CASE(DivReal) {
    double B = asReal(Pop()), A = asReal(Pop());
    if (B == 0.0)
      return Fail(I->Pc0 + 1, "real division by zero");
    Stack.push_back(Value(A / B));
    NEXT();
  }

  CASE(NegReal)
  Stack.back() = Value(-asReal(Stack.back()));
  NEXT();

  CASE(AbsReal) {
    double A = asReal(Stack.back());
    Stack.back() = Value(A < 0 ? -A : A);
    NEXT();
  }

  CASE(IntToReal)
  Stack.back() = Value(static_cast<double>(asOrdinal(Stack.back())));
  NEXT();

  CASE(RealToInt)
  Stack.back() = Value(static_cast<int64_t>(asReal(Stack.back())));
  NEXT();

  //===--- Sets -----------------------------------------------------------===//

  CASE(SetUnion) {
    uint64_t B = asSet(Pop()), A = asSet(Pop());
    Stack.push_back(Value(SetVal{A | B}));
    NEXT();
  }

  CASE(SetDiff) {
    uint64_t B = asSet(Pop()), A = asSet(Pop());
    Stack.push_back(Value(SetVal{A & ~B}));
    NEXT();
  }

  CASE(SetIntersect) {
    uint64_t B = asSet(Pop()), A = asSet(Pop());
    Stack.push_back(Value(SetVal{A & B}));
    NEXT();
  }

  CASE(SetSymDiff) {
    uint64_t B = asSet(Pop()), A = asSet(Pop());
    Stack.push_back(Value(SetVal{A ^ B}));
    NEXT();
  }

  CASE(SetIn) {
    uint64_t Set = asSet(Pop());
    int64_t Elem = asOrdinal(Pop());
    Stack.push_back(
        Value(int64_t{Elem >= 0 && Elem < 64 && ((Set >> Elem) & 1) != 0}));
    NEXT();
  }

  CASE(SetAddBit) {
    int64_t Elem = asOrdinal(Pop());
    uint64_t Set = asSet(Pop());
    if (Elem < 0 || Elem > 63)
      return Fail(I->Pc0 + 1, "set element " + std::to_string(Elem) +
                                  " out of range 0..63");
    Stack.push_back(Value(SetVal{Set | (uint64_t{1} << Elem)}));
    NEXT();
  }

  CASE(SetAddRange) {
    int64_t Hi = asOrdinal(Pop());
    int64_t Lo = asOrdinal(Pop());
    uint64_t Set = asSet(Pop());
    if (Lo < 0 || Hi > 63)
      return Fail(I->Pc0 + 1, "set range out of range 0..63");
    for (int64_t It = Lo; It <= Hi; ++It)
      Set |= uint64_t{1} << It;
    Stack.push_back(Value(SetVal{Set}));
    NEXT();
  }

  CASE(SetIncl)
  CASE(SetExcl) {
    int64_t Elem = asOrdinal(Pop());
    Value AddrV = Pop();
    const auto *Addr = std::get_if<Address>(&AddrV);
    if (!Addr)
      return Fail(I->Pc0 + 1, "INCL/EXCL of a non-address");
    if (Elem < 0 || Elem > 63)
      return Fail(I->Pc0 + 1, "set element out of range 0..63");
    uint64_t Set = asSet(Addr->slot());
    if (I->Op == T1Op::SetIncl)
      Set |= uint64_t{1} << Elem;
    else
      Set &= ~(uint64_t{1} << Elem);
    Addr->slot() = Value(SetVal{Set});
    NEXT();
  }

  //===--- Comparisons ----------------------------------------------------===//

#define T1_INT_CMP(OP, EXPR)                                                   \
  CASE(OP) {                                                                   \
    int64_t B = asOrdinal(Pop()), A = asOrdinal(Pop());                        \
    Stack.push_back(Value(int64_t{(EXPR) ? 1 : 0}));                           \
    NEXT();                                                                    \
  }
  T1_INT_CMP(CmpEqInt, A == B)
  T1_INT_CMP(CmpNeInt, A != B)
  T1_INT_CMP(CmpLtInt, A < B)
  T1_INT_CMP(CmpLeInt, A <= B)
  T1_INT_CMP(CmpGtInt, A > B)
  T1_INT_CMP(CmpGeInt, A >= B)
#undef T1_INT_CMP

#define T1_REAL_CMP(OP, EXPR)                                                  \
  CASE(OP) {                                                                   \
    double B = asReal(Pop()), A = asReal(Pop());                               \
    Stack.push_back(Value(int64_t{(EXPR) ? 1 : 0}));                           \
    NEXT();                                                                    \
  }
  T1_REAL_CMP(CmpEqReal, A == B)
  T1_REAL_CMP(CmpNeReal, A != B)
  T1_REAL_CMP(CmpLtReal, A < B)
  T1_REAL_CMP(CmpLeReal, A <= B)
  T1_REAL_CMP(CmpGtReal, A > B)
  T1_REAL_CMP(CmpGeReal, A >= B)
#undef T1_REAL_CMP

  CASE(CmpEqPtr)
  CASE(CmpNePtr) {
    Value B = Pop(), A = Pop();
    auto CellOf = [](const Value &V) -> const void * {
      if (const auto *P = std::get_if<PtrRef>(&V))
        return P->Cell.get();
      if (const auto *P = std::get_if<ProcVal>(&V))
        return reinterpret_cast<const void *>(
            static_cast<uintptr_t>(P->UnitIndex + 1));
      return nullptr;
    };
    bool Eq = CellOf(A) == CellOf(B);
    Stack.push_back(Value(int64_t{(I->Op == T1Op::CmpEqPtr) == Eq ? 1 : 0}));
    NEXT();
  }

  CASE(NotBool)
  Stack.back() = Value(int64_t{asOrdinal(Stack.back()) == 0 ? 1 : 0});
  NEXT();

  //===--- Control flow (C = tier-1 target index) -------------------------===//

  CASE(Jump)
  Ip = static_cast<size_t>(I->C);
  DISPATCH();

  CASE(JumpIfFalse)
  if (asOrdinal(Pop()) == 0)
    Ip = static_cast<size_t>(I->C);
  else
    ++Ip;
  DISPATCH();

  CASE(JumpIfTrue)
  if (asOrdinal(Pop()) != 0)
    Ip = static_cast<size_t>(I->C);
  else
    ++Ip;
  DISPATCH();

  //===--- Calls ----------------------------------------------------------===//

  CASE(Call) {
    // Pre-resolved: A is a linked unit index.
    if (I->A < 0)
      return Fail(I->Pc0 + 1, "call to unlinked procedure");
    int32_t Target = static_cast<int32_t>(I->A);
    Frame *StaticLink = nullptr;
    if (I->B >= 0) {
      StaticLink = F;
      for (int64_t Hop = 0; Hop < I->B; ++Hop) {
        StaticLink = StaticLink->StaticLink;
        if (!StaticLink)
          return Fail(I->Pc0 + 1, "broken static link chain in call");
      }
    }
    const CodeUnit &Callee = *Prog.units()[static_cast<size_t>(Target)].Unit;
    if (Stack.size() < F->StackBase + Callee.Params.size())
      return Fail(I->Pc0 + 1, "call to '" + Callee.QualifiedName +
                                  "' with too few arguments on the stack");
    size_t ArgBase = Stack.size() - Callee.Params.size();
    // ReturnPc is always a tier-0 pc; the translator makes every
    // pc-after-call a group head, so a tier-1 caller resumes in tier 1.
    Frame &NF = pushFrame(E, Target, StaticLink,
                          static_cast<size_t>(I->Pc0) + 1, E.CurUnit);
    bindArgs(E, NF, ArgBase);
    E.CurUnit = Target;
    Tier->noteInvocation(Target);
    if (const TierUnit *CT = Tier->installed(Target)) {
      // Fast path: stay in tier 1 across the call.
      TU = CT;
      Code = CT->Code;
      CU = CT->LU->Unit;
      F = &Frames.back();
      Ip = static_cast<size_t>(CT->PcMap[0]);
      DISPATCH();
    }
    E.Pc = 0;
    return Flow::Switch;
  }

  CASE(CallIndirect) {
    size_t Argc = static_cast<size_t>(I->B);
    if (Stack.size() < F->StackBase + Argc + 1)
      return Fail(I->Pc0 + 1, "indirect call with too few stack values");
    size_t ProcPos = Stack.size() - Argc - 1;
    const auto *P = std::get_if<ProcVal>(&Stack[ProcPos]);
    if (!P || P->UnitIndex < 0)
      return Fail(I->Pc0 + 1, "indirect call through an invalid procedure value");
    int32_t Target = P->UnitIndex;
    // Remove the procedure value from under the arguments.
    Stack.erase(Stack.begin() + static_cast<ptrdiff_t>(ProcPos));
    size_t ArgBase = Stack.size() - Argc;
    Frame &NF =
        pushFrame(E, Target, nullptr, static_cast<size_t>(I->Pc0) + 1,
                  E.CurUnit);
    bindArgs(E, NF, ArgBase);
    E.CurUnit = Target;
    Tier->noteInvocation(Target);
    // Hand indirect targets to the trampoline (it re-enters tier 1 if the
    // target is promoted).
    E.Pc = 0;
    return Flow::Switch;
  }

  CASE(CallBuiltin)
  if (!callBuiltin(E, Result, I->A, static_cast<size_t>(I->Pc0) + 1))
    return Flow::Trapped;
  NEXT();

  CASE(Return)
  HasRet = false;
  goto DoReturn;

  CASE(ReturnValue)
  RetVal = Pop();
  HasRet = true;
  goto DoReturn;

  //===--- Checks and misc ------------------------------------------------===//

  CASE(CheckRange) {
    int64_t V = asOrdinal(Stack.back());
    if (V < I->A || V > I->B)
      return Fail(I->Pc0 + 1, "value " + std::to_string(V) +
                                  " outside range " + std::to_string(I->A) +
                                  ".." + std::to_string(I->B));
    NEXT();
  }

  CASE(ArrayHigh) {
    Value V = Pop();
    if (const auto *Agg = std::get_if<AggRef>(&V)) {
      Stack.push_back(Value(static_cast<int64_t>(Agg->Obj->Slots.size()) - 1));
    } else if (const auto *Str = std::get_if<StrRef>(&V)) {
      Stack.push_back(
          Value(static_cast<int64_t>(Names.spelling(Str->Str).size()) - 1));
    } else {
      return Fail(I->Pc0 + 1, "HIGH of a non-array value");
    }
    NEXT();
  }

  CASE(Dup)
  Stack.push_back(Stack.back());
  NEXT();

  CASE(Pop)
  Pop();
  NEXT();

  CASE(Halt)
  Result.ExitCode = I->A;
  return Flow::Done;

  CASE(Trap)
  switch (I->A) {
  case 1:
    return Fail(I->Pc0 + 1, "no CASE branch matches the selector");
  case 2:
    return Fail(I->Pc0 + 1, "function procedure did not return a value");
  default:
    return Fail(I->Pc0 + 1, "trap " + std::to_string(I->A));
  }

  //===--- Fused superinstructions ----------------------------------------===//

  CASE(FusedLLBS) {
    // Slots[C] := Slots[A] <binop> Slots[B]; integer result, so plain
    // assignment matches StoreLocal's assignInto.
    int64_t A = asOrdinal(F->Slots[static_cast<size_t>(I->A)]);
    int64_t B = asOrdinal(F->Slots[static_cast<size_t>(I->B)]);
    F->Slots[static_cast<size_t>(I->C)] = Value(applyBin(I->Kind, A, B));
    NEXT();
  }

  CASE(FusedLIBS) {
    int64_t A = asOrdinal(F->Slots[static_cast<size_t>(I->A)]);
    F->Slots[static_cast<size_t>(I->C)] = Value(applyBin(I->Kind, A, I->B));
    NEXT();
  }

  CASE(FusedLLB) {
    int64_t A = asOrdinal(F->Slots[static_cast<size_t>(I->A)]);
    int64_t B = asOrdinal(F->Slots[static_cast<size_t>(I->B)]);
    Stack.push_back(Value(applyBin(I->Kind, A, B)));
    NEXT();
  }

  CASE(FusedLIB) {
    int64_t A = asOrdinal(F->Slots[static_cast<size_t>(I->A)]);
    Stack.push_back(Value(applyBin(I->Kind, A, I->B)));
    NEXT();
  }

  CASE(FusedLLCmpBr) {
    int64_t A = asOrdinal(F->Slots[static_cast<size_t>(I->A)]);
    int64_t B = asOrdinal(F->Slots[static_cast<size_t>(I->B)]);
    if (!applyCmp(I->Kind, A, B))
      Ip = static_cast<size_t>(I->C);
    else
      ++Ip;
    DISPATCH();
  }

  CASE(FusedLICmpBr) {
    int64_t A = asOrdinal(F->Slots[static_cast<size_t>(I->A)]);
    if (!applyCmp(I->Kind, A, I->B))
      Ip = static_cast<size_t>(I->C);
    else
      ++Ip;
    DISPATCH();
  }

  CASE(FusedStoreConst)
  F->Slots[static_cast<size_t>(I->A)] = Value(I->B);
  NEXT();

  CASE(FusedCopyLocal) {
    // LoadLocal pushes a copy; StoreLocal runs full assignment semantics
    // (deep copy for aggregates, padding for string constants).
    Value V = F->Slots[static_cast<size_t>(I->A)];
    assignInto(F->Slots[static_cast<size_t>(I->C)], std::move(V));
    NEXT();
  }

  CASE(FusedReturnLocal)
  RetVal = F->Slots[static_cast<size_t>(I->A)];
  HasRet = true;
  goto DoReturn;

  CASE(FellOff)
  // Synthetic: pc reached one past the end.  The step was already
  // charged, matching tier 0's check order (limit before fell-off).
  return Fail(I->Pc0, "fell off the end of the code unit");

#if !M2C_TIER1_THREADED
  }
  goto DispatchTop; // Unreachable; every case transfers control.
#endif

DoReturn: {
  Stack.resize(F->StackBase);
  size_t ReturnPc = F->ReturnPc;
  int32_t ReturnUnit = F->ReturnUnit;
  Frames.pop_back();
  if (Frames.empty())
    return Flow::Done; // Entry unit finished.
  if (HasRet)
    Stack.push_back(std::move(RetVal));
  E.CurUnit = ReturnUnit;
  F = &Frames.back();
  const TierUnit *RT = Tier->installed(ReturnUnit);
  if (RT && ReturnPc < RT->PcMapSize && RT->PcMap[ReturnPc] >= 0) {
    // Fast path: resume the promoted caller without leaving tier 1.
    TU = RT;
    Code = RT->Code;
    CU = RT->LU->Unit;
    Ip = static_cast<size_t>(RT->PcMap[ReturnPc]);
    DISPATCH();
  }
  E.Pc = ReturnPc;
  return Flow::Switch;
}

StepLimit:
  if (I->Cost == 1) {
    // Identical to tier 0: the failing step is charged, the trap names
    // the pc of the instruction that would have run.
    ++Steps;
    return Fail(I->Pc0, "step limit exceeded (runaway program?)");
  }
  // A fused group would cross the budget mid-way.  None of its trap-free
  // components has executed, so tier 0 can replay from the group head and
  // trap at the exact tier-0 pc.
  ++Deopts;
  E.Pc = I->Pc0;
  return Flow::Deopt;

#undef CASE
#undef DISPATCH
#undef NEXT
}
