//===--- ModulePipeline.h - One module's concurrent task graph --*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The right columns of the paper's Figure 5 for one implementation
/// module: the raw token stream is split into a main-module stream and
/// one stream per procedure (at any nesting depth), each compiled by a
/// Lexor -> {Splitter, Importer} -> Parser/DeclAnalyzer ->
/// StmtAnalyzer/CodeGen pipeline of tasks, with per-procedure code units
/// merged by concatenation.
///
/// A ModulePipeline wires this task graph for a single module against
/// *shared* Compilation services and a *shared* executor (through a
/// TaskSpawner), so that a BuildSession can run many module pipelines
/// under one scheduler: imported interfaces are parsed once per session
/// by the shared InterfaceSet, and cross-module orderings are expressed
/// with the same scope-completion events that order streams inside one
/// module.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_BUILD_MODULEPIPELINE_H
#define M2C_BUILD_MODULEPIPELINE_H

#include "ast/AST.h"
#include "ast/Stmt.h"
#include "build/TaskSpawner.h"
#include "cache/CachePlanner.h"
#include "codegen/Merger.h"
#include "driver/CompilerOptions.h"
#include "lex/TokenBlockQueue.h"
#include "sema/Compilation.h"
#include "symtab/Scope.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace m2c::sema {
class DeclAnalyzer;
}

namespace m2c::build {

/// All the per-module state of one concurrent compilation.  Stream
/// objects are owned here and live until the executor run is over.
class ModulePipeline {
public:
  /// \p Options and \p Comp must outlive the pipeline; tasks are routed
  /// through \p Spawner onto the run's (possibly shared) executor.
  /// \p RequestDiags, when non-null, receives the pipeline's location-less
  /// conditions (missing module file, cache-plan divergence) instead of
  /// \p Comp's shared engine: a service request filters the shared engine
  /// by file, and a per-file slice cannot see location-less entries, so
  /// they must go straight to the request's own engine.
  ModulePipeline(const driver::CompilerOptions &Options,
                 sema::Compilation &Comp, std::string_view ModuleName,
                 TaskSpawner &Spawner,
                 DiagnosticsEngine *RequestDiags = nullptr);
  ModulePipeline(const ModulePipeline &) = delete;
  ModulePipeline &operator=(const ModulePipeline &) = delete;
  ~ModulePipeline();

  /// Installs the cache plan for this module (index 0 is the main stream;
  /// procedure streams claim successive indices in splitter discovery
  /// order).  Call before setup().  Null: no cache or probe inapplicable.
  void setPlan(const cache::CachePlan *P) { Plan = P; }

  /// Wires the initial tasks (lex, split, import, main parse) and injects
  /// the main stream's cached unit when the plan hit.  Returns false —
  /// with a diagnostic — when the module source file is missing.
  bool setup();

  /// Produces the final, deterministically ordered image.  Call after the
  /// executor ran to quiescence.
  codegen::ModuleImage finalizeImage() { return Merge.finalize(); }

  /// Number of procedure streams the splitter created.
  size_t procStreamCount();

  /// True when a probe/compile divergence forced the cache plan to be
  /// abandoned mid-run; nothing from this compile may be stored back.
  bool planDropped() const {
    return PlanDropped.load(std::memory_order_acquire);
  }

  Symbol moduleName() const { return ModName; }
  const cache::CachePlan *plan() const { return Plan; }

private:
  /// One split-off procedure stream.
  struct ProcStream {
    Symbol Name;
    std::string QualifiedName;
    std::unique_ptr<symtab::Scope> ProcScope;
    TokenBlockQueue Queue;
    sched::EventPtr HeadingDone; ///< Avoided event: heading processed in
                                 ///< the parent.
    std::atomic<const symtab::SymbolEntry *> Entry{nullptr};
    ast::ASTArena Arena;
    std::atomic<int64_t> Weight{0};
    ProcStream *Parent = nullptr; ///< Null for main-module children.
    symtab::Scope *ParentScope = nullptr;
    sched::TaskPtr ParserTask; ///< Null when the cache plan skips the
                               ///< front end.
    bool SkipCodegen = false;  ///< Cached unit replayed; don't regenerate.

    std::mutex ChildrenMutex;
    std::vector<ProcStream *> Children; ///< Splitter discovery order.

    ProcStream(Symbol Name, std::string Qual, TokenBlockPool &Pool);
  };

  bool avoidance() const {
    return Options.Strategy == symtab::DkyStrategy::Avoidance;
  }

  ProcStream *createProcStream(ProcStream *Parent, Symbol Name);
  void dropPlan(const std::string &QualifiedName);
  void installHeadingHooks(sema::DeclAnalyzer &DA, ProcStream *Stream);
  void releaseOrphanHeadings(ProcStream *Stream);
  ProcStream *childAt(ProcStream *Stream, size_t Index);
  void mainParserTask();
  void procParserTask(ProcStream &S);
  void spawnCodeGen(ProcStream *Stream, ast::StmtList Body, int64_t Weight);

  const driver::CompilerOptions &Options;
  sema::Compilation &Comp;
  TaskSpawner &Spawner;
  /// Where location-less conditions are reported: the request's engine
  /// under a service, \p Comp's shared engine otherwise.
  DiagnosticsEngine &SessionDiags;
  Symbol ModName;
  codegen::Merger Merge;

  /// Cache plan for this run (null: no cache or probe not applicable).
  const cache::CachePlan *Plan = nullptr;
  std::atomic<size_t> NextPlanIndex{1};
  std::atomic<bool> PlanDropped{false};

  TokenBlockQueue RawQueue;
  TokenBlockQueue MainQueue;
  std::unique_ptr<symtab::Scope> ModuleScopePtr;
  symtab::Scope *OwnDefScope = nullptr;
  ast::ASTArena MainArena;
  sched::TaskPtr MainParserTask;

  std::mutex StreamsMutex;
  std::vector<std::unique_ptr<ProcStream>> ProcStreams;
  std::mutex MainChildrenMutex;
  std::vector<ProcStream *> MainChildren;
};

/// Stores one finished compile back into the cache: every missed stream's
/// unit plus the whole-module entry.  Callers gate on zero diagnostics
/// (only fully clean compiles become entries) and on the plan not having
/// been dropped.  Charges CacheLookup work to the active context.
void storeCacheEntries(cache::CompilationCache &Cache,
                       const cache::CachePlan &Plan,
                       const codegen::ModuleImage &Image,
                       uint64_t StreamCount, const StringInterner &Interner);

} // namespace m2c::build

#endif // M2C_BUILD_MODULEPIPELINE_H
