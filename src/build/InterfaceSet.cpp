//===--- InterfaceSet.cpp - Definition-module streams ----------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "build/InterfaceSet.h"

#include "lex/Lexer.h"
#include "parse/Parser.h"
#include "sema/DeclAnalyzer.h"
#include "split/Importer.h"

using namespace m2c;
using namespace m2c::build;
using namespace m2c::sched;
using namespace m2c::sema;

InterfaceSet::InterfaceSet(Compilation &Comp, TaskSpawner &Spawner)
    : Comp(Comp), Spawner(Spawner) {
  Comp.Modules.setStarter([this](Symbol Name, symtab::Scope &ModScope) {
    startDefStream(Name, ModScope);
  });
}

size_t InterfaceSet::streamCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Streams.size();
}

void InterfaceSet::beginTasks(size_t N) {
  std::lock_guard<std::mutex> Lock(QuiesceMutex);
  OutstandingTasks += N;
}

void InterfaceSet::taskDone() {
  bool Quiet;
  {
    std::lock_guard<std::mutex> Lock(QuiesceMutex);
    Quiet = --OutstandingTasks == 0;
  }
  if (Quiet)
    QuiesceCv.notify_all();
}

void InterfaceSet::quiesce() const {
  std::unique_lock<std::mutex> Lock(QuiesceMutex);
  QuiesceCv.wait(Lock, [this] { return OutstandingTasks == 0; });
}

void InterfaceSet::startDefStream(Symbol Name, symtab::Scope &ModScope) {
  auto Owned = std::make_unique<DefStream>(
      "def." + std::string(Comp.Interner.spelling(Name)), Comp.TokenBlocks);
  DefStream *S = Owned.get();
  S->Name = Name;
  S->ModScope = &ModScope;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Streams.push_back(std::move(Owned));
  }

  std::string FileName =
      VirtualFileSystem::defFileName(Comp.Interner.spelling(Name));
  const SourceBuffer *Buf = Comp.Files.lookup(FileName);
  if (!Buf) {
    Comp.Diags.error(SourceLocation(),
                     "cannot find interface file '" + FileName + "'");
    ModScope.markComplete();
    return;
  }

  S->ParserTask = makeTask("parse." + FileName, TaskClass::DefModParserDecl,
                           [this, S] { defParserTask(*S); });
  ModScope.completionEvent()->setResolver(S->ParserTask.get());

  beginTasks(3); // lex + import + parse, retired as each body finishes
  Spawner.spawn(makeTask("lex." + FileName, TaskClass::Lexor, [this, S, Buf] {
    Lexer Lex(*Buf, Comp.Interner, Comp.Diags);
    Lex.lexAll(S->Queue);
    taskDone();
  }));
  Spawner.spawn(makeTask("import." + FileName, TaskClass::Importer, [this, S] {
    Importer Imp(TokenBlockQueue::Reader(S->Queue), Comp.Modules,
                 Comp.Interner);
    Imp.run();
    taskDone();
  }));
  Spawner.spawn(S->ParserTask);
}

void InterfaceSet::defParserTask(DefStream &S) {
  Parses.fetch_add(1, std::memory_order_relaxed);
  Parser P(TokenBlockQueue::Reader(S.Queue), S.Arena, Comp.Diags,
           ParserMode::Sequential);
  Parser::ModuleIntro Intro = P.parseModuleIntro();
  if (!Intro.IsDefinition)
    Comp.Diags.error(Intro.Loc, "expected a DEFINITION MODULE");
  DeclAnalyzer DA(Comp, *S.ModScope, S.Name);
  DA.analyzeImports(Intro.Imports);
  // Declarations analyzed as they parse, so Skeptical searchers probing
  // this (incomplete) interface can succeed before it completes.
  P.setDeclSink([&DA](ast::Decl *D) { DA.analyzeDecl(D); });
  P.parseTopDecls(/*HeadingsOnly=*/true);
  P.parseDefModuleEnd();
  DA.finish();
  taskDone();
}
