//===--- TaskSpawner.h - Executor-or-context task submission ----*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tasks are created both while a run is being wired up (before
/// Executor::run()) and from inside already-running tasks (the Splitter
/// and Importer start new streams mid-run).  The first kind must go to
/// the executor directly; the second must go through the current
/// ExecContext so each executor can apply its own scheduling policy.
/// TaskSpawner routes both correctly and is shared by every pipeline and
/// interface stream of one run — a build session submits the task graphs
/// of many modules through one spawner onto one executor.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_BUILD_TASKSPAWNER_H
#define M2C_BUILD_TASKSPAWNER_H

#include "sched/ExecContext.h"
#include "sched/Executor.h"

#include <atomic>
#include <memory>

namespace m2c::build {

/// Routes task submission correctly both before Executor::run() (to the
/// executor) and from inside running tasks (to the current context).
class TaskSpawner {
public:
  explicit TaskSpawner(sched::Executor &Exec) : Exec(Exec) {}
  TaskSpawner(const TaskSpawner &) = delete;
  TaskSpawner &operator=(const TaskSpawner &) = delete;

  void spawn(sched::TaskPtr T) {
    if (ServiceMode) {
      // Under a persistent (serving) executor there is no before/after
      // run() distinction; what matters is where the submission comes
      // from.  Inside an executor task, go through the context (policy +
      // request-tag inheritance).  On a request thread, go to the
      // executor directly — the thread-local context there is a plain
      // SequentialContext that would queue the task and never run it.
      bool InTask = sched::ctx().isTaskContext();
      if (!T->requestTag()) {
        if (RequestTag) {
          T->setRequestTag(RequestTag);
        } else if (!InTask) {
          // A spawner with no tag of its own (the shared interface
          // pool's) submitting from a request thread has no spawning
          // task to inherit a tag from either; charge the task to the
          // request the thread is setting up (RequestTagScope) so
          // awaitRequest() counts and waits for it.
          if (const std::shared_ptr<void> &Tag = threadRequestTag())
            T->setRequestTag(Tag);
        }
      }
      if (InTask)
        sched::ctx().spawn(std::move(T));
      else
        Exec.spawn(std::move(T));
      return;
    }
    if (RequestTag && !T->requestTag())
      T->setRequestTag(RequestTag);
    if (InsideRun.load(std::memory_order_acquire))
      sched::ctx().spawn(std::move(T));
    else
      Exec.spawn(std::move(T));
  }

  /// Call immediately before Executor::run(): from here on, new tasks are
  /// submitted through the spawning task's execution context.
  void enterRun() { InsideRun.store(true, std::memory_order_release); }

  /// RAII: marks the calling thread as wiring tasks for request \p Tag
  /// while it runs setup code outside any task context.  A BuildSession
  /// installs one between openRequest() and awaitRequest(); shared-pool
  /// spawners that carry no request tag of their own stamp this tag on
  /// tasks first-touched from this thread (e.g. an interface stream
  /// started while the request's pipelines are being wired), so
  /// awaitRequest() waits for them too.
  class RequestTagScope {
  public:
    explicit RequestTagScope(std::shared_ptr<void> Tag)
        : Prev(std::move(threadRequestTag())) {
      threadRequestTag() = std::move(Tag);
    }
    ~RequestTagScope() { threadRequestTag() = std::move(Prev); }
    RequestTagScope(const RequestTagScope &) = delete;
    RequestTagScope &operator=(const RequestTagScope &) = delete;

  private:
    std::shared_ptr<void> Prev;
  };

  /// Switches the spawner to service routing and stamps \p Tag (the
  /// executor request this spawner submits for; may be null for
  /// service-lifetime work such as shared interface streams) on every
  /// untagged task.  Call before the first spawn.
  void setService(std::shared_ptr<void> Tag) {
    ServiceMode = true;
    RequestTag = std::move(Tag);
  }

  sched::Executor &executor() { return Exec; }

private:
  /// The request the calling thread is currently setting up, null
  /// otherwise.  Function-local so the header needs no out-of-line
  /// thread_local definition.
  static std::shared_ptr<void> &threadRequestTag() {
    thread_local std::shared_ptr<void> Tag;
    return Tag;
  }

  sched::Executor &Exec;
  std::atomic<bool> InsideRun{false};
  bool ServiceMode = false;
  std::shared_ptr<void> RequestTag;
};

} // namespace m2c::build

#endif // M2C_BUILD_TASKSPAWNER_H
