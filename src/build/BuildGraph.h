//===--- BuildGraph.h - Import-DAG discovery for sessions -------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Discovers the import DAG of a project before a build session runs:
/// starting from the root module names, each module's .def and .mod are
/// scanned with the real Lexer and Importer (into scratch state, so
/// nothing is registered with the session yet) and the reachable set is
/// closed over.  The graph answers the questions a session needs up
/// front: which modules have implementations to compile, in what
/// (imports-first) order to start their pipelines, and how many
/// interfaces each module's interface closure contains — the latter
/// keeps per-module cache entries' stream counts identical to what a
/// single-module compile of the same module records.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_BUILD_BUILDGRAPH_H
#define M2C_BUILD_BUILDGRAPH_H

#include "support/StringInterner.h"
#include "support/VirtualFileSystem.h"
#include "symtab/Scope.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace m2c::build {

/// One module of the project: what exists on disk and what it imports.
struct BuildNode {
  Symbol Name;
  bool HasImpl = false; ///< <Name>.mod exists; the session compiles it.
  bool HasDef = false;  ///< <Name>.def exists.
  std::vector<Symbol> ModImports; ///< Direct imports of the .mod.
  std::vector<Symbol> DefImports; ///< Direct imports of the .def.
};

/// The import DAG reachable from a set of root modules.
class BuildGraph {
public:
  /// Scans every reachable module's sources.  Lex/import work is charged
  /// to the active execution context (run it under a SequentialContext to
  /// account discovery in a session's time).  \p Builtins only parents
  /// the scratch scopes of discovery and is never mutated.
  ///
  /// \p UseMemo reuses each buffer's memoized import list (SourceBuffer
  /// facts) instead of re-lexing it — the big per-request win for a
  /// long-lived service, whose requests re-discover the same unchanged
  /// buffers over and over.  Off by default because a memo hit skips the
  /// lexing the execution context would otherwise charge, and simulated
  /// sessions want those units deterministic; wall-clock services opt in.
  static BuildGraph discover(VirtualFileSystem &Files,
                             StringInterner &Interner, symtab::Scope &Builtins,
                             const std::vector<std::string> &Roots,
                             bool UseMemo = false);

  const BuildNode *node(Symbol Name) const;

  /// Reachable modules with implementations, imports before importers
  /// (cycles broken in discovery order).  These are the session's
  /// pipelines.
  const std::vector<Symbol> &compileOrder() const { return Order; }

  /// Number of distinct interface names a single-module compile of
  /// \p Module would register: its own interface (when present), its
  /// .mod's direct imports, and the closure over interface imports.
  size_t interfaceClosure(Symbol Module) const;

  /// The names behind interfaceClosure(\p Module).  The service hands
  /// these to the cache planner as the module's dependency set so the
  /// prepass need not re-derive the closure by lexing every interface.
  std::vector<Symbol> interfaceClosureSet(Symbol Module) const;

  /// Distinct interface names the whole session registers — every
  /// compiled module's closure, deduplicated.
  size_t sessionInterfaceCount() const;

  /// The names behind sessionInterfaceCount(), in deterministic closure
  /// order.  The service uses this to key its shared-interface generation
  /// (content hashes of the .def files) and to scope per-request
  /// diagnostics to the files the request actually depends on.
  std::vector<Symbol> sessionInterfaces() const;

  /// Non-empty when the *interface* graph (.def import edges) contains a
  /// cycle: one representative cycle, first module repeated at the end
  /// (A, B, A).  Interface analysis resolves imports by waiting on the
  /// imported interface's completion, so a .def cycle can never make
  /// progress — sessions refuse such graphs up front with a clean
  /// diagnostic instead of deadlocking.  Cycles through .mod imports are
  /// fine (implementations only need interfaces, which stay acyclic).
  const std::vector<Symbol> &interfaceCycle() const { return DefCycle; }

private:
  std::vector<Symbol>
  closureFrom(const std::vector<Symbol> &Seeds) const;

  std::unordered_map<Symbol, BuildNode, SymbolHash> Nodes;
  std::vector<Symbol> Order;
  std::vector<Symbol> DefCycle;
};

} // namespace m2c::build

#endif // M2C_BUILD_BUILDGRAPH_H
