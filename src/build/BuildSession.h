//===--- BuildSession.h - Whole-project concurrent builds -------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles a whole import graph under ONE executor.  A session discovers
/// every module reachable from the given roots, then schedules all of
/// their module pipelines together: one shared Compilation provides the
/// interner, types, diagnostics and the once-only module registry, so
/// each imported definition module is lexed and parsed exactly once per
/// *session* no matter how many modules import it — the paper's
/// interface-once guarantee lifted from one compilation to a project.
/// Inter-module orderings ride on the same scope-completion events that
/// order streams inside one module, so a module's declaration analysis
/// simply waits on (or, with DKY, probes into) the shared interface
/// scopes while sibling modules keep all processors busy.
///
/// With a CompilationCache configured the session consults it per module
/// (whole-module fast path and per-stream replay) and stores back every
/// cleanly compiled module, so cross-module incremental builds recompile
/// only what an edit actually invalidates.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_BUILD_BUILDSESSION_H
#define M2C_BUILD_BUILDSESSION_H

#include "build/BuildGraph.h"
#include "codegen/MCode.h"
#include "driver/CompilerOptions.h"
#include "support/VirtualFileSystem.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace m2c::sema {
class Compilation;
}

namespace m2c::sched {
class ThreadedExecutor;
}

namespace m2c::build {

class InterfaceSet;

/// One module's outcome within a session.
struct ModuleBuild {
  std::string Name;
  codegen::ModuleImage Image;
  bool FromCache = false;   ///< Whole-module fast path; no pipeline ran.
  bool PlanDropped = false; ///< Cache plan abandoned mid-run.
  size_t StreamCount = 0;   ///< 1 + procedures + interface closure.
};

/// Everything a session produces.
struct BuildResult {
  bool Success = false;
  /// Service mode: the request was abandoned (deadline/cancel) at a
  /// checkpoint before compiling; nothing below is meaningful.
  bool Aborted = false;
  std::vector<ModuleBuild> Modules; ///< Imports-first order.

  /// Rendered session diagnostics (all modules, stable source order).
  std::string DiagnosticText;

  /// Virtual units (simulated) or wall nanoseconds (threaded), including
  /// discovery and cache prepass/store work.
  uint64_t ElapsedUnits = 0;
  double SimSeconds = 0.0; ///< ElapsedUnits in simulated seconds.

  std::map<std::string, uint64_t> SchedStats;
  std::map<std::string, uint64_t> CacheStats;
  /// Session counters: build.modules.total/compiled/cached,
  /// build.interface.streams, build.interface.parses,
  /// build.discovery.units, build.proc.streams.
  std::map<std::string, uint64_t> BuildStats;
  /// Middle-end pass counters (opt.units, opt.<pass>.*) for this build;
  /// empty at -O0.
  std::map<std::string, uint64_t> OptStats;

  std::shared_ptr<sema::Compilation> Compilation;

  /// Service mode: keeps the generation (shared Compilation + interface
  /// arenas) alive as long as this result can reach it.
  std::shared_ptr<void> KeepAlive;

  const ModuleBuild *module(std::string_view Name) const;
};

/// Shared state a BuildService hands to a session so it runs as one
/// *request* on the service's persistent infrastructure instead of
/// constructing its own: the tasks go to the service's executor (opened,
/// awaited and closed as one fair-share request), the session joins the
/// service's current Compilation generation — one interner, type context
/// and once-only module registry shared with its concurrent peers — and
/// interface streams come from the service-lifetime InterfaceSet, so a
/// definition module imported by many requests is parsed once per
/// generation, not once per session.
struct SessionExternals {
  sched::ThreadedExecutor *Exec = nullptr; ///< Must be serving().
  std::shared_ptr<sema::Compilation> Comp; ///< The generation's compilation.
  InterfaceSet *SharedDefs = nullptr;      ///< The generation's interfaces.
  BuildGraph Graph;            ///< Pre-discovered by the service.
  uint64_t DiscoveryWallNs = 0; ///< Wall time the discovery took.
  std::shared_ptr<void> KeepAlive; ///< Generation handle (outlives result).
  /// Service-lifetime sink the request's opt.* pass counters are folded
  /// into (so the daemon's STATS reply aggregates them); optional.
  StatisticSet *OptStats = nullptr;
};

/// Runs whole-project builds.  One session object may run one build.
class BuildSession {
public:
  BuildSession(VirtualFileSystem &Files, StringInterner &Interner,
               driver::CompilerOptions Options = driver::CompilerOptions())
      : Files(Files), Interner(Interner), Options(std::move(Options)) {}

  /// Discovers the import graph under \p Roots and compiles every
  /// reachable implementation module under one executor.
  BuildResult build(const std::vector<std::string> &Roots);

  /// Service-mode build: compiles \p Roots as one request on the shared
  /// infrastructure in \p Ext.  Diagnostics are scoped to the request's
  /// own files (its .mod files plus its interface closure's .def files),
  /// so concurrent requests sharing one Compilation each report exactly
  /// what a standalone session would.
  BuildResult build(const std::vector<std::string> &Roots,
                    SessionExternals Ext);

private:
  BuildResult buildImpl(const std::vector<std::string> &Roots,
                        SessionExternals *Ext);

  VirtualFileSystem &Files;
  StringInterner &Interner;
  driver::CompilerOptions Options;
};

} // namespace m2c::build

#endif // M2C_BUILD_BUILDSESSION_H
