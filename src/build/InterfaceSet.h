//===--- InterfaceSet.h - Definition-module streams -------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The left column of the paper's Figure 5: one Lexor -> Importer ->
/// Parser/DeclAnalyzer pipeline per imported definition module.  Streams
/// are started by the module registry's once-only table the first time
/// any Importer or declaration analyzer discovers a module, so each
/// interface is processed exactly once per compilation — and, when the
/// InterfaceSet is shared by a whole BuildSession, exactly once per
/// *session* no matter how many implementation modules import it.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_BUILD_INTERFACESET_H
#define M2C_BUILD_INTERFACESET_H

#include "ast/AST.h"
#include "build/TaskSpawner.h"
#include "lex/TokenBlockQueue.h"
#include "sema/Compilation.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

namespace m2c::build {

/// Owns every definition-module stream of one run (or one session) and
/// installs itself as the module registry's stream starter.
class InterfaceSet {
public:
  /// Installs the once-only stream starter on \p Comp's module registry.
  /// The InterfaceSet must outlive the executor run.
  InterfaceSet(sema::Compilation &Comp, TaskSpawner &Spawner);
  InterfaceSet(const InterfaceSet &) = delete;
  InterfaceSet &operator=(const InterfaceSet &) = delete;

  /// Number of definition-module streams started.
  size_t streamCount() const;

  /// Number of definition-module parser tasks that actually ran — the
  /// "each interface parsed once" counter build sessions assert on.
  uint64_t parseCount() const {
    return Parses.load(std::memory_order_relaxed);
  }

  /// Blocks until every interface-stream task this set has started is
  /// finished.  A service request calls this after awaiting its own
  /// tagged subgraph: a shared stream first touched by a *peer* request
  /// carries the peer's tag, yet its diagnostics land in .def files this
  /// request's diagnostic slice reads, so the slice must not be taken
  /// while any stream is still in flight.
  void quiesce() const;

private:
  /// One definition-module stream.
  struct DefStream {
    Symbol Name;
    symtab::Scope *ModScope = nullptr;
    TokenBlockQueue Queue;
    ast::ASTArena Arena;
    sched::TaskPtr ParserTask;

    DefStream(std::string QueueName, TokenBlockPool &Pool)
        : Queue(std::move(QueueName), &Pool) {}
  };

  void startDefStream(Symbol Name, symtab::Scope &ModScope);
  void defParserTask(DefStream &S);
  void beginTasks(size_t N);
  void taskDone();

  sema::Compilation &Comp;
  TaskSpawner &Spawner;
  mutable std::mutex Mutex;
  std::vector<std::unique_ptr<DefStream>> Streams;
  std::atomic<uint64_t> Parses{0};

  /// Interface tasks spawned but not yet finished.  Incremented inside
  /// startDefStream — which always runs either on a request thread before
  /// that request awaits, or inside a counted task — so the count can
  /// never dip to zero while a stream tree is still growing.
  mutable std::mutex QuiesceMutex;
  mutable std::condition_variable QuiesceCv;
  size_t OutstandingTasks = 0;
};

} // namespace m2c::build

#endif // M2C_BUILD_INTERFACESET_H
