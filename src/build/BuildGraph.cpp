//===--- BuildGraph.cpp - Import-DAG discovery for sessions ---------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "build/BuildGraph.h"

#include "lex/Lexer.h"
#include "sema/Compilation.h"
#include "split/Importer.h"
#include "support/Diagnostics.h"

#include <deque>
#include <functional>
#include <unordered_set>

using namespace m2c;
using namespace m2c::build;

namespace {

/// Lexes \p FileName and returns its direct imports.  All side state is
/// scratch: diagnostics are discarded (the real compile re-reports them)
/// and registrations go to a throwaway registry.
std::vector<Symbol> scanImports(VirtualFileSystem &Files,
                                StringInterner &Interner,
                                symtab::Scope &Builtins,
                                const std::string &FileName, bool UseMemo) {
  const SourceBuffer *Buf = Files.lookup(FileName);
  if (!Buf)
    return {};
  auto Scan = [&] {
    DiagnosticsEngine ScratchDiags;
    TokenBlockQueue Queue(FileName + ".scan");
    Lexer Lex(*Buf, Interner, ScratchDiags);
    Lex.lexAll(Queue);
    sema::ModuleRegistry Scratch(Builtins);
    Importer Imp(TokenBlockQueue::Reader(Queue), Scratch, Interner);
    return Imp.run();
  };
  if (UseMemo)
    return Buf->imports(&Interner, Scan);
  return Scan();
}

} // namespace

BuildGraph BuildGraph::discover(VirtualFileSystem &Files,
                                StringInterner &Interner,
                                symtab::Scope &Builtins,
                                const std::vector<std::string> &Roots,
                                bool UseMemo) {
  BuildGraph G;
  std::deque<Symbol> Work;
  std::vector<Symbol> Discovery; // first-appearance order
  auto Reach = [&](Symbol Name) {
    if (G.Nodes.count(Name))
      return;
    BuildNode N;
    N.Name = Name;
    G.Nodes.emplace(Name, std::move(N));
    Work.push_back(Name);
    Discovery.push_back(Name);
  };
  for (const std::string &Root : Roots)
    Reach(Interner.intern(Root));

  while (!Work.empty()) {
    Symbol Name = Work.front();
    Work.pop_front();
    BuildNode &N = G.Nodes.at(Name);
    std::string_view Spelling = Interner.spelling(Name);
    std::string DefFile = VirtualFileSystem::defFileName(Spelling);
    std::string ModFile = VirtualFileSystem::modFileName(Spelling);
    N.HasDef = Files.exists(DefFile);
    N.HasImpl = Files.exists(ModFile);
    if (N.HasDef)
      N.DefImports = scanImports(Files, Interner, Builtins, DefFile, UseMemo);
    if (N.HasImpl)
      N.ModImports = scanImports(Files, Interner, Builtins, ModFile, UseMemo);
    for (Symbol I : N.DefImports)
      Reach(I);
    for (Symbol I : N.ModImports)
      Reach(I);
  }

  // Imports-first pipeline order: DFS postorder over all import edges,
  // seeded in discovery order; cycles fall back to that seed order.
  std::unordered_set<uint32_t> Visited;
  std::function<void(Symbol)> Visit = [&](Symbol Name) {
    if (!Visited.insert(Name.id()).second)
      return;
    const BuildNode &N = G.Nodes.at(Name);
    for (Symbol I : N.DefImports)
      Visit(I);
    for (Symbol I : N.ModImports)
      Visit(I);
    if (N.HasImpl)
      G.Order.push_back(Name);
  };
  for (Symbol Name : Discovery)
    Visit(Name);

  // Detect interface cycles (.def -> .def edges only): tri-color DFS that
  // records one representative cycle from the stack.  Runs on the already
  // discovered graph, so the cost is linear in edges.
  enum class Color : uint8_t { White, Grey, Black };
  std::unordered_map<uint32_t, Color> Colors;
  std::vector<Symbol> Stack;
  std::function<bool(Symbol)> FindCycle = [&](Symbol Name) -> bool {
    Color &C = Colors[Name.id()];
    if (C == Color::Grey) {
      // Found: slice the DFS stack from the first occurrence of Name.
      size_t First = 0;
      while (First < Stack.size() && !(Stack[First] == Name))
        ++First;
      G.DefCycle.assign(Stack.begin() + static_cast<ptrdiff_t>(First),
                        Stack.end());
      G.DefCycle.push_back(Name);
      return true;
    }
    if (C == Color::Black)
      return false;
    C = Color::Grey;
    Stack.push_back(Name);
    auto It = G.Nodes.find(Name);
    if (It != G.Nodes.end() && It->second.HasDef)
      for (Symbol I : It->second.DefImports)
        if (FindCycle(I))
          return true;
    Stack.pop_back();
    Colors[Name.id()] = Color::Black;
    return false;
  };
  for (Symbol Name : Discovery)
    if (G.DefCycle.empty())
      FindCycle(Name);
  return G;
}

const BuildNode *BuildGraph::node(Symbol Name) const {
  auto It = Nodes.find(Name);
  return It == Nodes.end() ? nullptr : &It->second;
}

std::vector<Symbol>
BuildGraph::closureFrom(const std::vector<Symbol> &Seeds) const {
  // Expansion mirrors what a compile registers: every seed name is
  // registered whether or not its .def exists, and only existing .def
  // files are scanned onward (a missing interface has no imports to
  // chase — it just diagnoses).
  std::unordered_set<uint32_t> Seen;
  std::vector<Symbol> Result;
  std::deque<Symbol> Work;
  auto Add = [&](Symbol Name) {
    if (Seen.insert(Name.id()).second) {
      Result.push_back(Name);
      Work.push_back(Name);
    }
  };
  for (Symbol S : Seeds)
    Add(S);
  while (!Work.empty()) {
    Symbol Name = Work.front();
    Work.pop_front();
    auto It = Nodes.find(Name);
    if (It == Nodes.end() || !It->second.HasDef)
      continue;
    for (Symbol I : It->second.DefImports)
      Add(I);
  }
  return Result;
}

size_t BuildGraph::interfaceClosure(Symbol Module) const {
  return interfaceClosureSet(Module).size();
}

std::vector<Symbol> BuildGraph::interfaceClosureSet(Symbol Module) const {
  auto It = Nodes.find(Module);
  if (It == Nodes.end())
    return {};
  std::vector<Symbol> Seeds;
  if (It->second.HasDef)
    Seeds.push_back(Module); // the module's own anticipated interface
  for (Symbol I : It->second.ModImports)
    Seeds.push_back(I);
  return closureFrom(Seeds);
}

size_t BuildGraph::sessionInterfaceCount() const {
  return sessionInterfaces().size();
}

std::vector<Symbol> BuildGraph::sessionInterfaces() const {
  std::vector<Symbol> Seeds;
  for (Symbol M : Order) {
    const BuildNode &N = Nodes.at(M);
    if (N.HasDef)
      Seeds.push_back(M);
    for (Symbol I : N.ModImports)
      Seeds.push_back(I);
  }
  return closureFrom(Seeds);
}
