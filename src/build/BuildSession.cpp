//===--- BuildSession.cpp - Whole-project concurrent builds ---------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "build/BuildSession.h"

#include "build/BuildGraph.h"
#include "build/InterfaceSet.h"
#include "build/ModulePipeline.h"
#include "build/TaskSpawner.h"
#include "cache/CachePlanner.h"
#include "cache/CompilationCache.h"
#include "sched/SimulatedExecutor.h"
#include "sched/ThreadedExecutor.h"
#include "sema/Compilation.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <unordered_map>

using namespace m2c;
using namespace m2c::build;
using namespace m2c::driver;
using namespace m2c::sched;
using namespace m2c::sema;

const ModuleBuild *BuildResult::module(std::string_view Name) const {
  for (const ModuleBuild &M : Modules)
    if (M.Name == Name)
      return &M;
  return nullptr;
}

BuildResult BuildSession::build(const std::vector<std::string> &Roots) {
  BuildResult Result;
  auto Comp = std::make_shared<Compilation>(
      Files, Interner,
      CompilationOptions{Options.Strategy, Options.Sharing,
                         Options.Optimize});
  Result.Compilation = Comp;

  bool Threaded = Options.Executor == ExecutorKind::Threaded;
  uint64_t SideUnits = 0;  // discovery + cache work, virtual units
  uint64_t SideWallNs = 0; // the same work in wall time
  using Clock = std::chrono::steady_clock;
  auto WallSince = [](Clock::time_point From) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             From)
            .count());
  };

  // Discovery: close over the import graph before anything is scheduled.
  // Charged like any other sequential phase so session times stay honest.
  BuildGraph Graph;
  uint64_t DiscoveryUnits = 0;
  {
    SequentialContext Ctx(Options.Cost);
    ScopedContext Installed(Ctx);
    auto Start = Clock::now();
    Graph = BuildGraph::discover(Files, Interner, Comp->Builtins, Roots);
    DiscoveryUnits = Ctx.elapsedUnits();
    SideUnits += DiscoveryUnits;
    SideWallNs += WallSince(Start);
  }
  for (const std::string &Root : Roots) {
    const BuildNode *N = Graph.node(Interner.intern(Root));
    if (!N || !N->HasImpl)
      Comp->Diags.error(SourceLocation(),
                        "cannot find module file '" +
                            VirtualFileSystem::modFileName(Root) + "'");
  }

  // Cache prepass, module by module.  Whole-module hits never get a
  // pipeline; everything else carries its plan into the shared run.
  struct PendingModule {
    Symbol Name;
    std::optional<cache::CachePlan> Plan;
  };
  std::vector<PendingModule> Pending;
  for (Symbol Mod : Graph.compileOrder()) {
    std::string_view Spelling = Interner.spelling(Mod);
    if (!Options.Cache) {
      Pending.push_back({Mod, std::nullopt});
      continue;
    }
    auto Start = Clock::now();
    cache::CachePlanner Planner(
        Files, Interner, *Options.Cache,
        cache::CacheFingerprint{Options.Strategy, Options.Sharing,
                                Options.Optimize, "conc"},
        Options.Cost);
    cache::CachePlan Plan = Planner.plan(Spelling);
    SideUnits += Plan.ProbeUnits;
    SideWallNs += WallSince(Start);
    if (Plan.ModuleHit) {
      ModuleBuild MB;
      MB.Name = std::string(Spelling);
      MB.Image = std::move(Plan.Module->Image);
      MB.FromCache = true;
      MB.StreamCount = static_cast<size_t>(Plan.Module->StreamCount);
      Result.Modules.push_back(std::move(MB));
      continue;
    }
    Pending.push_back({Mod, std::move(Plan)});
  }

  // The shared run: every pending module's pipeline on ONE executor, all
  // interfaces parsed once by one InterfaceSet.
  uint64_t InterfaceStreams = 0;
  uint64_t InterfaceParses = 0;
  uint64_t ProcStreams = 0;
  if (!Pending.empty()) {
    std::unique_ptr<Executor> Exec;
    if (Threaded)
      Exec = std::make_unique<ThreadedExecutor>(Options.Processors,
                                                Options.Cost);
    else
      Exec = std::make_unique<SimulatedExecutor>(Options.Processors,
                                                 Options.Cost);
    Exec->setActivitySink(Options.Trace);

    TaskSpawner Spawner(*Exec);
    InterfaceSet Defs(*Comp, Spawner);
    std::vector<std::unique_ptr<ModulePipeline>> Pipelines;
    {
      // Setup replays cached main-stream units; charge that to the cache
      // ledger, not the executor.  Pipelines are wired imports-first so
      // interface streams start before their importers are scheduled.
      SequentialContext Ctx(Options.Cost);
      ScopedContext Installed(Ctx);
      auto Start = Clock::now();
      for (PendingModule &PM : Pending) {
        auto Pipe = std::make_unique<ModulePipeline>(
            Options, *Comp, Interner.spelling(PM.Name), Spawner);
        if (PM.Plan && PM.Plan->Valid)
          Pipe->setPlan(&*PM.Plan);
        Pipe->setup();
        Pipelines.push_back(std::move(Pipe));
      }
      SideUnits += Ctx.elapsedUnits();
      SideWallNs += WallSince(Start);
    }
    Spawner.enterRun();
    Exec->run();

    for (size_t I = 0; I < Pipelines.size(); ++I) {
      ModulePipeline &Pipe = *Pipelines[I];
      ModuleBuild MB;
      MB.Name = std::string(Interner.spelling(Pipe.moduleName()));
      MB.Image = Pipe.finalizeImage();
      MB.PlanDropped = Pipe.planDropped();
      // Stream-count parity with a single-module compile of this module:
      // 1 main stream + its procedure streams + its own interface
      // closure (the session shares def streams, so the session total is
      // smaller than the sum of these).
      MB.StreamCount = 1 + Pipe.procStreamCount() +
                       Graph.interfaceClosure(Pipe.moduleName());
      ProcStreams += Pipe.procStreamCount();
      Result.Modules.push_back(std::move(MB));
    }

    // Store phase: the gate is session-wide — only a completely clean
    // session stores, so a replayed entry never owes a diagnostic from
    // any module — plus per-module plan integrity.
    if (Options.Cache && Comp->Diags.count() == 0) {
      SequentialContext Ctx(Options.Cost);
      ScopedContext Installed(Ctx);
      auto Start = Clock::now();
      for (size_t I = 0; I < Pipelines.size(); ++I) {
        ModulePipeline &Pipe = *Pipelines[I];
        if (!Pipe.plan() || Pipe.planDropped())
          continue;
        const ModuleBuild *MB =
            Result.module(Interner.spelling(Pipe.moduleName()));
        storeCacheEntries(*Options.Cache, *Pipe.plan(), MB->Image,
                          static_cast<uint64_t>(MB->StreamCount), Interner);
      }
      SideUnits += Ctx.elapsedUnits();
      SideWallNs += WallSince(Start);
    }

    InterfaceStreams = Defs.streamCount();
    InterfaceParses = Defs.parseCount();
    Result.ElapsedUnits = Exec->elapsedUnits();
    Result.SchedStats = Exec->stats().snapshot();
  }

  // Cached modules were recorded during the prepass, compiled ones after
  // the run; restore imports-first order for the caller.
  {
    std::unordered_map<std::string_view, size_t> OrderIndex;
    for (size_t I = 0; I < Graph.compileOrder().size(); ++I)
      OrderIndex.emplace(Interner.spelling(Graph.compileOrder()[I]), I);
    std::stable_sort(Result.Modules.begin(), Result.Modules.end(),
                     [&OrderIndex](const ModuleBuild &A,
                                   const ModuleBuild &B) {
                       return OrderIndex[A.Name] < OrderIndex[B.Name];
                     });
  }

  Result.Success = !Comp->Diags.hasErrors();
  Result.DiagnosticText = Comp->Diags.render(&Files);
  Result.ElapsedUnits += Threaded ? SideWallNs : SideUnits;
  if (!Threaded)
    Result.SimSeconds = static_cast<double>(Result.ElapsedUnits) /
                        static_cast<double>(Options.Cost.UnitsPerSecond);
  if (Options.Cache)
    Result.CacheStats = Options.Cache->stats().snapshot();

  Result.BuildStats["build.modules.total"] = Graph.compileOrder().size();
  Result.BuildStats["build.modules.compiled"] = Pending.size();
  Result.BuildStats["build.modules.cached"] =
      Graph.compileOrder().size() - Pending.size();
  Result.BuildStats["build.interface.streams"] = InterfaceStreams;
  Result.BuildStats["build.interface.parses"] = InterfaceParses;
  Result.BuildStats["build.proc.streams"] = ProcStreams;
  Result.BuildStats["build.discovery.units"] = DiscoveryUnits;
  return Result;
}
