//===--- BuildSession.cpp - Whole-project concurrent builds ---------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "build/BuildSession.h"

#include "build/BuildGraph.h"
#include "build/InterfaceSet.h"
#include "build/ModulePipeline.h"
#include "build/TaskSpawner.h"
#include "cache/CachePlanner.h"
#include "cache/CompilationCache.h"
#include "opt/PassManager.h"
#include "sched/SimulatedExecutor.h"
#include "sched/ThreadedExecutor.h"
#include "sema/Compilation.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <unordered_map>
#include <unordered_set>

using namespace m2c;
using namespace m2c::build;
using namespace m2c::driver;
using namespace m2c::sched;
using namespace m2c::sema;

const ModuleBuild *BuildResult::module(std::string_view Name) const {
  for (const ModuleBuild &M : Modules)
    if (M.Name == Name)
      return &M;
  return nullptr;
}

BuildResult BuildSession::build(const std::vector<std::string> &Roots) {
  return buildImpl(Roots, nullptr);
}

BuildResult BuildSession::build(const std::vector<std::string> &Roots,
                                SessionExternals Ext) {
  return buildImpl(Roots, &Ext);
}

BuildResult BuildSession::buildImpl(const std::vector<std::string> &Roots,
                                    SessionExternals *Ext) {
  BuildResult Result;
  std::shared_ptr<Compilation> Comp;
  if (Ext) {
    Comp = Ext->Comp;
    Result.KeepAlive = Ext->KeepAlive;
  } else {
    Comp = std::make_shared<Compilation>(
        Files, Interner,
        CompilationOptions{Options.Strategy, Options.Sharing});
  }
  Result.Compilation = Comp;

  // The build's pass pipeline: one manager shared by every codegen task
  // of every pipeline; counters accumulate in a build-local set and are
  // folded into the service-lifetime sink afterwards.
  opt::PassManager OwnedPasses = opt::PassManager::forLevel(Options.Level);
  const opt::PassManager *Passes =
      Options.Passes ? Options.Passes : &OwnedPasses;
  const std::string PassConfig = Passes->configString();
  StatisticSet LocalOptStats;
  driver::CompilerOptions RunOptions = Options;
  RunOptions.Passes = Passes->empty() ? nullptr : Passes;
  RunOptions.OptStats = &LocalOptStats;

  bool Threaded = Ext || Options.Executor == ExecutorKind::Threaded;
  uint64_t SideUnits = 0;  // discovery + cache work, virtual units
  uint64_t SideWallNs = 0; // the same work in wall time
  using Clock = std::chrono::steady_clock;
  auto WallSince = [](Clock::time_point From) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             From)
            .count());
  };

  // Request-scoped diagnostics (service mode): location-less conditions
  // go here instead of the shared engine, and at the end the request's
  // slice of the shared engine is merged in, so each request renders
  // exactly what a standalone session would.
  DiagnosticsEngine LocalDiags;
  auto SessionStart = Clock::now();

  // Discovery: close over the import graph before anything is scheduled.
  // Charged like any other sequential phase so session times stay honest.
  // The service discovers before admission and hands the graph in.
  BuildGraph Graph;
  uint64_t DiscoveryUnits = 0;
  if (Ext) {
    Graph = std::move(Ext->Graph);
    DiscoveryUnits = Ext->DiscoveryWallNs;
  } else {
    SequentialContext Ctx(Options.Cost);
    ScopedContext Installed(Ctx);
    auto Start = Clock::now();
    Graph = BuildGraph::discover(Files, Interner, Comp->Builtins, Roots);
    DiscoveryUnits = Ctx.elapsedUnits();
    SideUnits += DiscoveryUnits;
    SideWallNs += WallSince(Start);
  }
  for (const std::string &Root : Roots) {
    const BuildNode *N = Graph.node(Interner.intern(Root));
    if (!N || !N->HasImpl) {
      std::string Message = "cannot find module file '" +
                            VirtualFileSystem::modFileName(Root) + "'";
      if (Ext)
        LocalDiags.error(SourceLocation(), std::move(Message));
      else
        Comp->Diags.error(SourceLocation(), std::move(Message));
    }
  }

  // Interface cycles can never complete: analysis of each .def waits on
  // the interfaces it imports, so a cycle would deadlock the session.
  // Refuse the whole build with a deterministic diagnostic instead.
  if (!Graph.interfaceCycle().empty()) {
    std::string Message = "import cycle among interfaces:";
    for (size_t I = 0; I < Graph.interfaceCycle().size(); ++I) {
      Message += I == 0 ? " " : " -> ";
      Message += Interner.spelling(Graph.interfaceCycle()[I]);
    }
    if (Ext)
      LocalDiags.error(SourceLocation(), std::move(Message));
    else
      Comp->Diags.error(SourceLocation(), std::move(Message));
    Result.Success = false;
    Result.DiagnosticText =
        Ext ? LocalDiags.render(&Files) : Comp->Diags.render(&Files);
    Result.ElapsedUnits = Threaded ? SideWallNs : SideUnits;
    return Result;
  }

  // Service mode: the request's file set — its own .mod files plus its
  // interface closure's .def files — scopes every later read of the
  // shared diagnostics engine.  Missing interfaces are synthesized here
  // from the graph: the shared InterfaceSet reports them location-less
  // into the shared engine, where a per-file filter cannot see them.
  std::unordered_set<uint32_t> RequestFiles;
  if (Ext) {
    for (Symbol Mod : Graph.compileOrder())
      if (const SourceBuffer *Buf = Files.lookup(
              VirtualFileSystem::modFileName(Interner.spelling(Mod))))
        RequestFiles.insert(Buf->Id.index());
    for (Symbol Def : Graph.sessionInterfaces()) {
      std::string FileName =
          VirtualFileSystem::defFileName(Interner.spelling(Def));
      if (const SourceBuffer *Buf = Files.lookup(FileName))
        RequestFiles.insert(Buf->Id.index());
      else
        LocalDiags.error(SourceLocation(),
                         "cannot find interface file '" + FileName + "'");
    }
  }

  // Cache prepass, module by module.  Whole-module hits never get a
  // pipeline; everything else carries its plan into the shared run.
  struct PendingModule {
    Symbol Name;
    std::optional<cache::CachePlan> Plan;
  };
  std::vector<PendingModule> Pending;
  for (Symbol Mod : Graph.compileOrder()) {
    std::string_view Spelling = Interner.spelling(Mod);
    if (!Options.Cache) {
      Pending.push_back({Mod, std::nullopt});
      continue;
    }
    auto Start = Clock::now();
    cache::CachePlanner Planner(
        Files, Interner, *Options.Cache,
        cache::CacheFingerprint{Options.Strategy, Options.Sharing, PassConfig,
                                "conc"},
        Options.Cost);
    // Service mode hands the planner the module's already-discovered
    // interface closure, replacing the probe's per-interface lex walk
    // with (memoized) hash lookups.  Standalone sessions keep the
    // unassisted probe so their simulated probe units stay as charged.
    std::vector<std::string> ClosureFiles;
    if (Ext) {
      for (Symbol Def : Graph.interfaceClosureSet(Mod))
        ClosureFiles.push_back(
            VirtualFileSystem::defFileName(Interner.spelling(Def)));
    }
    cache::CachePlan Plan =
        Planner.plan(Spelling, Ext ? &ClosureFiles : nullptr);
    SideUnits += Plan.ProbeUnits;
    SideWallNs += WallSince(Start);
    if (Plan.ModuleHit) {
      ModuleBuild MB;
      MB.Name = std::string(Spelling);
      MB.Image = std::move(Plan.Module->Image);
      MB.FromCache = true;
      MB.StreamCount = static_cast<size_t>(Plan.Module->StreamCount);
      Result.Modules.push_back(std::move(MB));
      continue;
    }
    Pending.push_back({Mod, std::move(Plan)});
  }

  // The shared run: every pending module's pipeline on ONE executor, all
  // interfaces parsed once by one InterfaceSet.
  uint64_t InterfaceStreams = 0;
  uint64_t InterfaceParses = 0;
  uint64_t ProcStreams = 0;
  if (!Pending.empty()) {
    std::unique_ptr<Executor> OwnedExec;
    Executor *Exec = nullptr;
    ThreadedExecutor *Service = Ext ? Ext->Exec : nullptr;
    if (Service) {
      Exec = Service;
    } else {
      if (Threaded)
        OwnedExec = std::make_unique<ThreadedExecutor>(Options.Processors,
                                                       Options.Cost);
      else
        OwnedExec = std::make_unique<SimulatedExecutor>(Options.Processors,
                                                        Options.Cost);
      OwnedExec->setActivitySink(Options.Trace);
      Exec = OwnedExec.get();
    }

    TaskSpawner Spawner(*Exec);
    std::shared_ptr<void> Tag;
    std::optional<TaskSpawner::RequestTagScope> TagScope;
    if (Service) {
      Tag = Service->openRequest();
      Spawner.setService(Tag);
      // Setup below runs on this (non-task) thread and can first-touch
      // shared interface streams through the pool's untagged spawner;
      // the scope charges those spawns to this request so awaitRequest()
      // waits for them too.
      TagScope.emplace(Tag);
    }
    std::unique_ptr<InterfaceSet> OwnedDefs;
    InterfaceSet *Defs = Ext ? Ext->SharedDefs : nullptr;
    if (!Defs) {
      OwnedDefs = std::make_unique<InterfaceSet>(*Comp, Spawner);
      Defs = OwnedDefs.get();
    }
    std::vector<std::unique_ptr<ModulePipeline>> Pipelines;
    {
      // Setup replays cached main-stream units; charge that to the cache
      // ledger, not the executor.  Pipelines are wired imports-first so
      // interface streams start before their importers are scheduled.
      SequentialContext Ctx(Options.Cost);
      ScopedContext Installed(Ctx);
      auto Start = Clock::now();
      for (PendingModule &PM : Pending) {
        auto Pipe = std::make_unique<ModulePipeline>(
            RunOptions, *Comp, Interner.spelling(PM.Name), Spawner,
            Ext ? &LocalDiags : nullptr);
        if (PM.Plan && PM.Plan->Valid)
          Pipe->setPlan(&*PM.Plan);
        Pipe->setup();
        Pipelines.push_back(std::move(Pipe));
      }
      SideUnits += Ctx.elapsedUnits();
      SideWallNs += WallSince(Start);
    }
    if (Service) {
      // Tasks have been arriving at the serving executor since setup;
      // wait for this request's subgraph, then let the fair share rise.
      Service->awaitRequest(Tag);
      // A shared interface stream first touched by a peer request runs
      // under the peer's tag, but its diagnostics land in .def files this
      // request's slice reads below; settle the whole pool before judging
      // cleanliness so a late interface error is never missed.
      Defs->quiesce();
      Service->closeRequest(Tag);
    } else {
      Spawner.enterRun();
      Exec->run();
    }

    for (size_t I = 0; I < Pipelines.size(); ++I) {
      ModulePipeline &Pipe = *Pipelines[I];
      ModuleBuild MB;
      MB.Name = std::string(Interner.spelling(Pipe.moduleName()));
      MB.Image = Pipe.finalizeImage();
      MB.PlanDropped = Pipe.planDropped();
      // Stream-count parity with a single-module compile of this module:
      // 1 main stream + its procedure streams + its own interface
      // closure (the session shares def streams, so the session total is
      // smaller than the sum of these).
      MB.StreamCount = 1 + Pipe.procStreamCount() +
                       Graph.interfaceClosure(Pipe.moduleName());
      ProcStreams += Pipe.procStreamCount();
      Result.Modules.push_back(std::move(MB));
    }

    // Store phase: the gate is session-wide — only a completely clean
    // session stores, so a replayed entry never owes a diagnostic from
    // any module — plus per-module plan integrity.  A service request
    // judges cleanliness over its own file slice of the shared engine (a
    // peer request's broken module must not block this one's stores).
    bool Clean = Ext ? (LocalDiags.count() == 0 &&
                        Comp->Diags.countIn(RequestFiles) == 0)
                     : Comp->Diags.count() == 0;
    if (Options.Cache && Clean) {
      SequentialContext Ctx(Options.Cost);
      ScopedContext Installed(Ctx);
      auto Start = Clock::now();
      for (size_t I = 0; I < Pipelines.size(); ++I) {
        ModulePipeline &Pipe = *Pipelines[I];
        if (!Pipe.plan() || Pipe.planDropped())
          continue;
        const ModuleBuild *MB =
            Result.module(Interner.spelling(Pipe.moduleName()));
        storeCacheEntries(*Options.Cache, *Pipe.plan(), MB->Image,
                          static_cast<uint64_t>(MB->StreamCount), Interner);
      }
      SideUnits += Ctx.elapsedUnits();
      SideWallNs += WallSince(Start);
    }

    // Under a service these are the shared pool's service-lifetime
    // counters (interfaces are parsed once per generation, not per
    // request); scheduler stats likewise accumulate at service level and
    // are left out of per-request results.
    InterfaceStreams = Defs->streamCount();
    InterfaceParses = Defs->parseCount();
    if (!Service) {
      Result.ElapsedUnits = Exec->elapsedUnits();
      Result.SchedStats = Exec->stats().snapshot();
    }
  }

  // Cached modules were recorded during the prepass, compiled ones after
  // the run; restore imports-first order for the caller.
  {
    std::unordered_map<std::string_view, size_t> OrderIndex;
    for (size_t I = 0; I < Graph.compileOrder().size(); ++I)
      OrderIndex.emplace(Interner.spelling(Graph.compileOrder()[I]), I);
    std::stable_sort(Result.Modules.begin(), Result.Modules.end(),
                     [&OrderIndex](const ModuleBuild &A,
                                   const ModuleBuild &B) {
                       return OrderIndex[A.Name] < OrderIndex[B.Name];
                     });
  }

  if (Ext) {
    // Merge the request's slice of the shared engine into the local one
    // (already deduplicated) and render everything in one stable order.
    for (const Diagnostic &D : Comp->Diags.sortedIn(RequestFiles))
      LocalDiags.report(D.Severity, D.Loc, D.Message);
    Result.Success = !LocalDiags.hasErrors();
    Result.DiagnosticText = LocalDiags.render(&Files);
    Result.ElapsedUnits = WallSince(SessionStart) + DiscoveryUnits;
  } else {
    Result.Success = !Comp->Diags.hasErrors();
    Result.DiagnosticText = Comp->Diags.render(&Files);
    Result.ElapsedUnits += Threaded ? SideWallNs : SideUnits;
  }
  if (!Threaded)
    Result.SimSeconds = static_cast<double>(Result.ElapsedUnits) /
                        static_cast<double>(Options.Cost.UnitsPerSecond);
  if (Options.Cache)
    Result.CacheStats = Options.Cache->stats().snapshot();

  Result.BuildStats["build.modules.total"] = Graph.compileOrder().size();
  Result.BuildStats["build.modules.compiled"] = Pending.size();
  Result.BuildStats["build.modules.cached"] =
      Graph.compileOrder().size() - Pending.size();
  Result.BuildStats["build.interface.streams"] = InterfaceStreams;
  Result.BuildStats["build.interface.parses"] = InterfaceParses;
  Result.BuildStats["build.proc.streams"] = ProcStreams;
  Result.BuildStats["build.discovery.units"] = DiscoveryUnits;

  Result.OptStats = LocalOptStats.snapshot();
  if (Ext && Ext->OptStats)
    for (const auto &[Name, Value] : Result.OptStats)
      Ext->OptStats->add(Name, Value);
  return Result;
}
