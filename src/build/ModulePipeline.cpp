//===--- ModulePipeline.cpp - One module's concurrent task graph ----------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "build/ModulePipeline.h"

#include "cache/CompilationCache.h"
#include "codegen/CodeGenerator.h"
#include "lex/Lexer.h"
#include "parse/Parser.h"
#include "sema/DeclAnalyzer.h"
#include "split/Importer.h"
#include "split/Splitter.h"

#include <cassert>
#include <unordered_map>

using namespace m2c;
using namespace m2c::ast;
using namespace m2c::build;
using namespace m2c::sched;
using namespace m2c::sema;
using namespace m2c::symtab;

ModulePipeline::ProcStream::ProcStream(Symbol Name, std::string Qual,
                                       TokenBlockPool &Pool)
    : Name(Name), QualifiedName(std::move(Qual)),
      Queue("proc." + QualifiedName, &Pool),
      HeadingDone(
          makeEvent("heading." + QualifiedName, EventKind::Avoided)) {}

ModulePipeline::ModulePipeline(const driver::CompilerOptions &Options,
                               Compilation &Comp, std::string_view ModuleName,
                               TaskSpawner &Spawner,
                               DiagnosticsEngine *RequestDiags)
    : Options(Options), Comp(Comp), Spawner(Spawner),
      SessionDiags(RequestDiags ? *RequestDiags : Comp.Diags),
      ModName(Comp.Interner.intern(ModuleName)), Merge(ModName),
      RawQueue(std::string(ModuleName) + ".raw", &Comp.TokenBlocks),
      MainQueue(std::string(ModuleName) + ".main", &Comp.TokenBlocks) {}

ModulePipeline::~ModulePipeline() = default;

//===--- Stream creation ---------------------------------------------------===//

void ModulePipeline::dropPlan(const std::string &QualifiedName) {
  // A cache-probe stream tree that diverges from the streams the real
  // Splitter creates means the plan cannot be trusted (the usual cause is
  // a source mutation between the prepass and the run).  Finish this
  // compile without the cache rather than misattribute plan entries; the
  // note also blocks the store phase's zero-diagnostic gate.
  if (!PlanDropped.exchange(true, std::memory_order_acq_rel))
    SessionDiags.report(DiagSeverity::Note, SourceLocation(),
                        "compilation cache plan diverged from the source at "
                        "stream '" +
                            QualifiedName +
                            "'; finishing this compile without the cache");
}

ModulePipeline::ProcStream *ModulePipeline::createProcStream(ProcStream *Parent,
                                                             Symbol Name) {
  std::string ParentQual = Parent
                               ? Parent->QualifiedName
                               : std::string(Comp.Interner.spelling(ModName));
  auto Owned = std::make_unique<ProcStream>(
      Name, ParentQual + "." + std::string(Comp.Interner.spelling(Name)),
      Comp.TokenBlocks);
  ProcStream *S = Owned.get();
  S->Parent = Parent;
  S->ParentScope = Parent ? Parent->ProcScope.get() : ModuleScopePtr.get();
  S->ProcScope = std::make_unique<Scope>(
      std::string(Comp.Interner.spelling(Name)), ScopeKind::Procedure,
      S->ParentScope, &Comp.Builtins);
  {
    std::lock_guard<std::mutex> Lock(StreamsMutex);
    ProcStreams.push_back(std::move(Owned));
  }
  // Register with the parent in splitter-discovery order, which matches
  // the order the parent's declaration analyzer sees the headings.
  if (Parent) {
    std::lock_guard<std::mutex> Lock(Parent->ChildrenMutex);
    Parent->Children.push_back(S);
  } else {
    std::lock_guard<std::mutex> Lock(MainChildrenMutex);
    MainChildren.push_back(S);
  }

  // Align with the cache plan: probe streams were discovered by the same
  // Splitter over the same tokens, so creation order and names must
  // match; a plan entry marks this stream's cached state.  A mismatch is
  // detected at runtime — in every build type — and abandons the plan for
  // this and all later streams instead of misattributing entries.
  const cache::StreamPlan *PlanEntry = nullptr;
  if (Plan && !PlanDropped.load(std::memory_order_acquire)) {
    size_t Idx = NextPlanIndex.fetch_add(1, std::memory_order_relaxed);
    if (Idx < Plan->Streams.size() &&
        Plan->Streams[Idx].QualifiedName == S->QualifiedName)
      PlanEntry = &Plan->Streams[Idx];
    else
      dropPlan(S->QualifiedName);
  }
  if (PlanEntry && PlanEntry->Hit) {
    // Replay the cached unit now; this stream's code generation (and,
    // when the whole subtree hit, its parse/sema too) is skipped.
    S->SkipCodegen = true;
    Merge.addUnit(*PlanEntry->Cached);
  }

  // The resolver of the heading event is the parent's parser task.
  Task *ParentParser =
      Parent ? Parent->ParserTask.get() : MainParserTask.get();
  if (ParentParser)
    S->HeadingDone->setResolver(ParentParser);

  if (PlanEntry && !PlanEntry->RunFrontEnd) {
    // The whole subtree is cached: its unit (and every descendant's) was
    // injected into the Merger, and no deeper stream re-analyzes, so this
    // scope never needs populating.  The splitter still diverts tokens to
    // S->Queue; they are simply never consumed.
    return S;
  }
  if (!ParentParser) {
    // The parent skipped its front end (its subtree was fully cached) but
    // the plan diverged at this descendant: there is no parser to signal
    // the heading event or populate the parent scope, so this stream can
    // be neither replayed nor compiled.  Report it instead of wiring a
    // task that would deadlock on an event nobody signals.
    SessionDiags.error(SourceLocation(),
                       "cannot compile procedure '" + S->QualifiedName +
                           "': the compilation cache diverged under a cached "
                           "enclosing procedure; clear the cache and "
                           "recompile");
    return S;
  }

  S->ParserTask =
      makeTask("parse." + S->QualifiedName, TaskClass::ProcParserDecl,
               [this, S] { procParserTask(*S); });
  S->ParserTask->addPrerequisite(S->HeadingDone);
  if (avoidance())
    S->ParserTask->addPrerequisite(S->ParentScope->completionEvent());
  S->ProcScope->completionEvent()->setResolver(S->ParserTask.get());
  Spawner.spawn(S->ParserTask);
  return S;
}

//===--- Task bodies -------------------------------------------------------===//

/// Installs the parent-side heading hooks for a declaration analyzer
/// whose children were registered in \p Children order.
void ModulePipeline::installHeadingHooks(DeclAnalyzer &DA,
                                         ProcStream *Stream) {
  ProcStreamHooks Hooks;
  Hooks.childScope = [this, Stream](size_t Index, Symbol) -> Scope * {
    ProcStream *Child = childAt(Stream, Index);
    return Child ? Child->ProcScope.get() : nullptr;
  };
  Hooks.headingDone = [this, Stream](size_t Index, Symbol,
                                     const SymbolEntry &Entry) {
    ProcStream *Child = childAt(Stream, Index);
    if (!Child)
      return;
    Child->Entry.store(&Entry, std::memory_order_release);
    ctx().signal(*Child->HeadingDone);
  };
  DA.setProcStreamHooks(std::move(Hooks));
}

/// On malformed input the parent's error recovery can skip a heading the
/// splitter already created a stream for; its avoided event would then
/// never fire and the child task would be held forever.  Parser tasks
/// call this on exit: by then the splitter has finished this stream, so
/// the child list is final and any unsignaled heading event is an orphan
/// (its Entry stays null; code generation skips it).
void ModulePipeline::releaseOrphanHeadings(ProcStream *Stream) {
  std::vector<ProcStream *> Children;
  if (Stream) {
    std::lock_guard<std::mutex> Lock(Stream->ChildrenMutex);
    Children = Stream->Children;
  } else {
    std::lock_guard<std::mutex> Lock(MainChildrenMutex);
    Children = MainChildren;
  }
  for (ProcStream *Child : Children)
    if (!Child->HeadingDone->isSignaled())
      ctx().signal(*Child->HeadingDone);
}

ModulePipeline::ProcStream *ModulePipeline::childAt(ProcStream *Stream,
                                                    size_t Index) {
  if (Stream) {
    std::lock_guard<std::mutex> Lock(Stream->ChildrenMutex);
    return Index < Stream->Children.size() ? Stream->Children[Index]
                                           : nullptr;
  }
  std::lock_guard<std::mutex> Lock(MainChildrenMutex);
  return Index < MainChildren.size() ? MainChildren[Index] : nullptr;
}

void ModulePipeline::mainParserTask() {
  Parser P(TokenBlockQueue::Reader(MainQueue), MainArena, Comp.Diags,
           ParserMode::SplitStream);
  Parser::ModuleIntro Intro = P.parseModuleIntro();
  if (Intro.Name != ModName && !Intro.Name.isEmpty())
    Comp.Diags.warning(Intro.Loc,
                       "module name does not match its file name");
  DeclAnalyzer DA(Comp, *ModuleScopePtr, ModName);
  DA.setOwnInterface(OwnDefScope);
  installHeadingHooks(DA, nullptr);
  DA.analyzeImports(Intro.Imports);
  // Interleave: procedure headings are processed — and their streams
  // released — as soon as each declaration's text has been parsed.
  P.setDeclSink([&DA](Decl *D) { DA.analyzeDecl(D); });
  P.parseTopDecls(/*HeadingsOnly=*/false);
  DA.finish(); // Module symbol table complete before the body parse.
  if (OwnDefScope && !OwnDefScope->isComplete())
    ctx().wait(*OwnDefScope->completionEvent());
  Merge.setGlobalsFrom(*ModuleScopePtr, OwnDefScope);

  StmtList Body = P.parseImplModuleBody();
  // Drain to end of stream first: only once the Splitter has finished
  // this stream is the child list final (malformed input can end the
  // module's syntax before the raw token stream ends).
  P.drainToEof();
  releaseOrphanHeadings(nullptr);
  bool SkipMainCodegen =
      Plan && !Plan->Streams.empty() && Plan->Streams[0].Hit;
  if (SkipMainCodegen)
    return; // Cached module-body unit already handed to the Merger.
  int64_t Weight = static_cast<int64_t>(P.tokensConsumed());
  spawnCodeGen(/*Stream=*/nullptr, std::move(Body), Weight);
}

void ModulePipeline::procParserTask(ProcStream &S) {
  Parser P(TokenBlockQueue::Reader(S.Queue), S.Arena, Comp.Diags,
           ParserMode::SplitStream);
  // The heading tokens are re-read syntactically; under CopyEntries the
  // parameter entries were already copied in by the parent (section 2.4
  // alternative 1), under Reprocess the child re-analyzes them here
  // (alternative 3) — in either case the parameters must be in the
  // scope before any local declaration is analyzed, so slot numbering
  // matches the sequential compiler exactly.
  ast::ProcHeading Heading = P.parseProcStreamHeading();
  DeclAnalyzer DA(Comp, *S.ProcScope, ModName);
  if (Comp.Options.Sharing == HeadingSharing::Reprocess)
    DA.analyzeHeadingInChild(Heading);
  installHeadingHooks(DA, &S);
  P.setDeclSink([&DA](Decl *D) { DA.analyzeDecl(D); });
  P.parseTopDecls(/*HeadingsOnly=*/false);
  DA.finish(); // Procedure symbol table complete before the body parse.

  StmtList Body = P.parseProcBody();
  P.drainToEof();
  releaseOrphanHeadings(&S);
  if (S.SkipCodegen)
    return; // Cached unit already handed to the Merger.
  spawnCodeGen(&S, std::move(Body), S.Weight.load());
}

void ModulePipeline::spawnCodeGen(ProcStream *Stream, StmtList Body,
                                  int64_t Weight) {
  bool Long = Weight > Options.LongProcTokens;
  std::string Name =
      "codegen." + (Stream ? Stream->QualifiedName
                           : std::string(Comp.Interner.spelling(ModName)));
  // Task bodies must be copyable (std::function); share the parse tree.
  auto BodyPtr = std::make_shared<StmtList>(std::move(Body));
  auto Task = makeTask(
      std::move(Name),
      Long ? TaskClass::LongStmtCodeGen : TaskClass::ShortStmtCodeGen,
      [this, Stream, BodyPtr, Weight] {
        const StmtList &Body = *BodyPtr;
        if (!Stream) {
          codegen::CodeGenerator CG(Comp, *ModuleScopePtr, ModName,
                                    Options.Passes, Options.OptStats);
          Merge.addUnit(CG.generateModuleBody(Body, Weight));
          return;
        }
        const SymbolEntry *Entry =
            Stream->Entry.load(std::memory_order_acquire);
        if (!Entry)
          return; // Heading failed (redeclaration); error reported.
        codegen::CodeGenerator CG(Comp, *Stream->ProcScope, ModName,
                                  Options.Passes, Options.OptStats);
        Merge.addUnit(CG.generateProcedure(
            *Entry, Body,
            std::string(Comp.Interner.spelling(ModName)) + "." +
                codegen::moduleRelativeName(*Entry, Comp.Interner),
            codegen::procedureLevel(*Stream->ProcScope), Weight));
      });
  Task->setWeight(Weight);
  Spawner.spawn(std::move(Task));
}

//===--- Initial task wiring -----------------------------------------------===//

bool ModulePipeline::setup() {
  std::string ModFile =
      VirtualFileSystem::modFileName(Comp.Interner.spelling(ModName));
  const SourceBuffer *ModBuf = Comp.Files.lookup(ModFile);
  if (!ModBuf) {
    SessionDiags.error(SourceLocation(),
                       "cannot find module file '" + ModFile + "'");
    return false;
  }

  // "The compiler optimistically anticipates the existence of a file
  // M.def and tries to start processing this file as soon as possible"
  // (paper section 3).  Its declarations are visible throughout M.mod:
  // the module scope's parent is the interface scope.
  Scope *OwnDef = nullptr;
  if (Comp.Files.exists(
          VirtualFileSystem::defFileName(Comp.Interner.spelling(ModName))))
    OwnDef =
        &Comp.Modules.getOrCreate(ModName, Comp.Interner.spelling(ModName));
  ModuleScopePtr = std::make_unique<Scope>(
      std::string(Comp.Interner.spelling(ModName)), ScopeKind::Module,
      OwnDef, &Comp.Builtins);
  OwnDefScope = OwnDef;

  // The main stream's cached unit is replayed up front (index 0 of the
  // plan always names this module); the main parser then skips its code
  // generation.
  if (Plan && !Plan->Streams.empty() && Plan->Streams[0].Hit)
    Merge.addUnit(*Plan->Streams[0].Cached);

  MainParserTask = makeTask(
      "parse." + std::string(Comp.Interner.spelling(ModName)) + ".main",
      TaskClass::ModuleParserDecl, [this] { mainParserTask(); });
  ModuleScopePtr->completionEvent()->setResolver(MainParserTask.get());
  if (avoidance() && OwnDef)
    MainParserTask->addPrerequisite(OwnDef->completionEvent());

  Spawner.spawn(makeTask("lex." + ModFile, TaskClass::Lexor,
                         [this, ModBuf] {
                           Lexer Lex(*ModBuf, Comp.Interner, Comp.Diags);
                           Lex.lexAll(RawQueue);
                         }));

  Spawner.spawn(makeTask("split." + ModFile, TaskClass::Splitter, [this] {
    SplitterHooks Hooks;
    Hooks.beginProc = [this](StreamHandle Parent, Symbol Name) {
      return static_cast<StreamHandle>(
          createProcStream(static_cast<ProcStream *>(Parent), Name));
    };
    Hooks.queueOf = [this](StreamHandle Stream) -> TokenBlockQueue & {
      return Stream ? static_cast<ProcStream *>(Stream)->Queue : MainQueue;
    };
    Hooks.endProc = [](StreamHandle Stream, int64_t Tokens) {
      static_cast<ProcStream *>(Stream)->Weight.store(Tokens);
    };
    Splitter Split(TokenBlockQueue::Reader(RawQueue), std::move(Hooks));
    Split.run();
  }));

  Spawner.spawn(makeTask("import." + ModFile, TaskClass::Importer, [this] {
    Importer Imp(TokenBlockQueue::Reader(RawQueue), Comp.Modules,
                 Comp.Interner);
    Merge.setImports(Imp.run());
  }));
  Spawner.spawn(MainParserTask);
  return true;
}

size_t ModulePipeline::procStreamCount() {
  std::lock_guard<std::mutex> Lock(StreamsMutex);
  return ProcStreams.size();
}

//===--- Cache store helper ------------------------------------------------===//

void build::storeCacheEntries(cache::CompilationCache &Cache,
                              const cache::CachePlan &Plan,
                              const codegen::ModuleImage &Image,
                              uint64_t StreamCount,
                              const StringInterner &Interner) {
  std::unordered_map<std::string_view, const codegen::CodeUnit *> ByName;
  for (const codegen::CodeUnit &U : Image.Units)
    ByName.emplace(U.QualifiedName, &U);
  for (const cache::StreamPlan &S : Plan.Streams) {
    if (S.Hit)
      continue;
    auto It = ByName.find(S.QualifiedName);
    // Absent unit: the heading was parsed but analysis dropped it (can
    // only happen with diagnostics, which the gate excludes) — skipped
    // defensively anyway.
    if (It != ByName.end())
      Cache.storeStream(S.Key, *It->second, Interner);
  }
  Cache.storeModule(Plan.ModuleKey, Plan.ModTextHash, Plan.Deps, Image,
                    StreamCount, Interner);
}
