//===--- Compilation.h - Shared per-compilation state -----------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// State shared by every task of one compilation: diagnostics, types,
/// the builtin scope, the DKY name resolver, the once-only module
/// registry, and identifier/procedure counters.  Everything here is
/// thread-safe; one Compilation is used by one compiler run.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SEMA_COMPILATION_H
#define M2C_SEMA_COMPILATION_H

#include "lex/TokenBlockQueue.h"
#include "sema/Builtins.h"
#include "sema/Type.h"
#include "support/Diagnostics.h"
#include "support/VirtualFileSystem.h"
#include "symtab/NameResolver.h"

#include <atomic>
#include <functional>
#include <mutex>
#include <unordered_map>

namespace m2c::sema {

/// How procedure-heading information is shared between parent and child
/// scopes (paper section 2.4).
enum class HeadingSharing : uint8_t {
  CopyEntries, ///< Alternative 1: parent processes the heading and copies
               ///< the parameter entries into the child scope.
  Reprocess,   ///< Alternative 3: parent and child each process the
               ///< heading (~3% slower from the duplicated work).
};

/// Per-compilation knobs.  (Optimization is configured on the driver's
/// CompilerOptions — codegen tasks receive the pass pipeline directly.)
struct CompilationOptions {
  symtab::DkyStrategy Strategy = symtab::DkyStrategy::Skeptical;
  HeadingSharing Sharing = HeadingSharing::CopyEntries;
};

/// The "once-only table" of paper section 3: guarantees each definition
/// module referenced in a compilation is processed exactly once.  Both
/// Importer tasks and declaration analyzers may discover a module first;
/// whoever wins creates the scope and fires the stream starter.
class ModuleRegistry {
public:
  using StreamStarter = std::function<void(Symbol, symtab::Scope &)>;

  explicit ModuleRegistry(symtab::Scope &Builtins) : Builtins(Builtins) {}

  /// Installs the callback that starts a definition-module stream the
  /// first time a module is discovered.
  void setStarter(StreamStarter S) { Starter = std::move(S); }

  /// Returns module \p Name's interface scope, creating it — and firing
  /// the starter — on first discovery.
  symtab::Scope &getOrCreate(Symbol Name, std::string_view Spelling);

  /// Returns the scope if the module was already discovered, else null.
  symtab::Scope *lookup(Symbol Name) const;

  /// Number of distinct definition modules discovered.
  size_t size() const;

private:
  symtab::Scope &Builtins;
  StreamStarter Starter;
  mutable std::mutex Mutex;
  std::unordered_map<Symbol, std::unique_ptr<symtab::Scope>, SymbolHash>
      Modules;
};

/// Shared state of one compiler run.
class Compilation {
public:
  Compilation(VirtualFileSystem &Files, StringInterner &Interner,
              CompilationOptions Options = CompilationOptions());
  Compilation(const Compilation &) = delete;
  Compilation &operator=(const Compilation &) = delete;

  VirtualFileSystem &Files;
  StringInterner &Interner;
  CompilationOptions Options;
  DiagnosticsEngine Diags;
  TypeContext Types;
  symtab::LookupStats Stats;
  symtab::NameResolver Resolver;
  symtab::Scope Builtins;
  ModuleRegistry Modules;
  /// Recycles token-block storage across every stream of this run.
  TokenBlockPool TokenBlocks;

  /// Allocates a program-unique procedure id (used by code generation and
  /// the merge task).
  int32_t allocProcId() {
    return NextProcId.fetch_add(1, std::memory_order_relaxed);
  }

  /// Highest procedure id allocated so far plus one.
  int32_t procCount() const {
    return NextProcId.load(std::memory_order_relaxed);
  }

private:
  std::atomic<int32_t> NextProcId{0};
};

} // namespace m2c::sema

#endif // M2C_SEMA_COMPILATION_H
