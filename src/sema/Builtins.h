//===--- Builtins.h - Names predefined by the compiler ----------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builtin (predefined) names.  Instead of a global parent scope — which
/// would make the first reference to a builtin incur DKY waits on every
/// scope out to the global one — builtins live in a dedicated, always-
/// complete table that the search mechanism consults as if its entries
/// were local to every scope (paper section 2.2).  Builtins cannot be
/// redeclared.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SEMA_BUILTINS_H
#define M2C_SEMA_BUILTINS_H

#include "sema/Type.h"
#include "symtab/Scope.h"

namespace m2c::sema {

/// Identities of builtin procedures and functions.  Standard-procedure
/// calls are checked and lowered by BuiltinId, since several of them are
/// generic over their argument type.
enum class BuiltinProc : int16_t {
  Abs,
  Cap,
  Chr,
  Dec,
  Dispose,
  Excl,
  Float,
  Halt,
  High,
  Inc,
  Incl,
  Max,
  Min,
  New,
  Odd,
  Ord,
  Size,
  Trunc,
  Val,
  // Builtin I/O (the DEC SRC environment routes these through interfaces;
  // we predefine them so every generated program can produce output).
  WriteInt,
  WriteCard,
  WriteLn,
  WriteString,
  WriteChar,
  WriteReal,
  ReadInt,
};

const char *builtinProcName(BuiltinProc P);

/// Populates \p Builtins with every predefined type, constant and
/// procedure, then marks it complete.
void populateBuiltinScope(symtab::Scope &Builtins, TypeContext &Types,
                          StringInterner &Interner);

} // namespace m2c::sema

#endif // M2C_SEMA_BUILTINS_H
