//===--- ConstEval.cpp - Compile-time expression evaluation ---------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "sema/ConstEval.h"

using namespace m2c;
using namespace m2c::ast;
using namespace m2c::sema;
using namespace m2c::symtab;

ConstResult ConstEvaluator::error(SourceLocation Loc,
                                  const std::string &Message) {
  Comp.Diags.error(Loc, Message);
  ConstResult R;
  R.Ty = Comp.Types.errorType();
  return R;
}

ConstResult ConstEvaluator::fromEntry(const SymbolEntry &Entry,
                                      SourceLocation Loc) {
  if (Entry.Kind != EntryKind::Const && Entry.Kind != EntryKind::EnumLiteral)
    return error(Loc, "'" +
                          std::string(Comp.Interner.spelling(Entry.Name)) +
                          "' is not a constant");
  ConstResult R;
  R.Value = Entry.Value;
  R.Ty = Entry.Ty ? Entry.Ty : Comp.Types.errorType();
  return R;
}

ConstResult ConstEvaluator::eval(const Expr *E) {
  switch (E->kind()) {
  case ExprKind::IntLit: {
    ConstResult R;
    R.Value = ConstValue::makeInt(static_cast<const IntLitExpr *>(E)->value());
    R.Ty = Comp.Types.integerType();
    return R;
  }
  case ExprKind::RealLit: {
    ConstResult R;
    R.Value =
        ConstValue::makeReal(static_cast<const RealLitExpr *>(E)->value());
    R.Ty = Comp.Types.realType();
    return R;
  }
  case ExprKind::CharLit: {
    ConstResult R;
    R.Value =
        ConstValue::makeChar(static_cast<const CharLitExpr *>(E)->value());
    R.Ty = Comp.Types.charType();
    return R;
  }
  case ExprKind::StringLit: {
    ConstResult R;
    Symbol S = static_cast<const StringLitExpr *>(E)->value();
    R.Value = ConstValue::makeString(S);
    R.Ty = Comp.Types.getString(
        static_cast<int64_t>(Comp.Interner.spelling(S).size()));
    return R;
  }
  case ExprKind::Designator:
    return evalDesignator(static_cast<const DesignatorExpr *>(E));
  case ExprKind::Unary:
    return evalUnary(static_cast<const UnaryExpr *>(E));
  case ExprKind::Binary:
    return evalBinary(static_cast<const BinaryExpr *>(E));
  case ExprKind::SetConstructor:
    return evalSet(static_cast<const SetConstructorExpr *>(E));
  case ExprKind::Call:
    // MAX(INTEGER), ORD('x') and the like in constant position are rare in
    // our subset; reject for now.
    return error(E->location(), "calls are not allowed in this constant "
                                "expression");
  }
  return error(E->location(), "expression is not constant");
}

ConstResult ConstEvaluator::evalDesignator(const DesignatorExpr *D) {
  if (D->selectors().empty()) {
    SymbolEntry *Entry = Comp.Resolver.lookupSimple(Self, D->first());
    if (!Entry)
      return error(D->location(),
                   "undeclared identifier '" +
                       std::string(Comp.Interner.spelling(D->first())) + "'");
    return fromEntry(*Entry, D->location());
  }
  // The only selector form allowed in constants is module qualification.
  if (D->selectors().size() == 1 &&
      D->selectors()[0].SelKind == Selector::Kind::Field) {
    SymbolEntry *ModEntry = Comp.Resolver.lookupSimple(Self, D->first());
    if (!ModEntry)
      return error(D->location(),
                   "undeclared identifier '" +
                       std::string(Comp.Interner.spelling(D->first())) + "'");
    if (ModEntry->Kind == EntryKind::Module && ModEntry->ModuleScope) {
      SymbolEntry *Entry = Comp.Resolver.lookupQualified(
          *ModEntry->ModuleScope, D->selectors()[0].Field);
      if (!Entry)
        return error(
            D->location(),
            "module '" + std::string(Comp.Interner.spelling(D->first())) +
                "' does not export '" +
                std::string(Comp.Interner.spelling(D->selectors()[0].Field)) +
                "'");
      return fromEntry(*Entry, D->location());
    }
  }
  return error(D->location(), "expression is not constant");
}

ConstResult ConstEvaluator::evalUnary(const UnaryExpr *U) {
  ConstResult Operand = eval(U->operand());
  if (Operand.isError())
    return Operand;
  switch (U->op()) {
  case UnaryOp::Plus:
    return Operand;
  case UnaryOp::Minus:
    if (Operand.Value.ValueKind == ConstValue::Kind::Int) {
      Operand.Value.Int = -Operand.Value.Int;
      return Operand;
    }
    if (Operand.Value.ValueKind == ConstValue::Kind::Real) {
      Operand.Value.Real = -Operand.Value.Real;
      return Operand;
    }
    return error(U->location(), "unary '-' requires a numeric constant");
  case UnaryOp::Not:
    if (Operand.Value.ValueKind == ConstValue::Kind::Bool) {
      Operand.Value.Int = !Operand.Value.Int;
      return Operand;
    }
    return error(U->location(), "NOT requires a BOOLEAN constant");
  }
  return error(U->location(), "bad unary constant expression");
}

ConstResult ConstEvaluator::evalBinary(const BinaryExpr *B) {
  ConstResult L = eval(B->lhs());
  ConstResult R = eval(B->rhs());
  if (L.isError() || R.isError()) {
    ConstResult Err;
    Err.Ty = Comp.Types.errorType();
    return Err;
  }
  using VK = ConstValue::Kind;
  auto MakeBool = [&](bool V) {
    ConstResult Res;
    Res.Value = ConstValue::makeBool(V);
    Res.Ty = Comp.Types.booleanType();
    return Res;
  };
  auto MakeInt = [&](int64_t V) {
    ConstResult Res;
    Res.Value = ConstValue::makeInt(V);
    Res.Ty = Comp.Types.integerType();
    return Res;
  };
  auto MakeReal = [&](double V) {
    ConstResult Res;
    Res.Value = ConstValue::makeReal(V);
    Res.Ty = Comp.Types.realType();
    return Res;
  };
  auto MakeSet = [&](uint64_t V) {
    ConstResult Res;
    Res.Value = ConstValue::makeSet(V);
    Res.Ty = L.Value.ValueKind == VK::Set ? L.Ty : R.Ty;
    return Res;
  };

  // Set operations.
  if (L.Value.ValueKind == VK::Set && R.Value.ValueKind == VK::Set) {
    switch (B->op()) {
    case BinaryOp::Add:
      return MakeSet(L.Value.SetBits | R.Value.SetBits);
    case BinaryOp::Sub:
      return MakeSet(L.Value.SetBits & ~R.Value.SetBits);
    case BinaryOp::Mul:
      return MakeSet(L.Value.SetBits & R.Value.SetBits);
    case BinaryOp::RealDiv:
      return MakeSet(L.Value.SetBits ^ R.Value.SetBits);
    case BinaryOp::Equal:
      return MakeBool(L.Value.SetBits == R.Value.SetBits);
    case BinaryOp::NotEqual:
      return MakeBool(L.Value.SetBits != R.Value.SetBits);
    default:
      return error(B->location(), "bad constant set operation");
    }
  }
  if (B->op() == BinaryOp::In && R.Value.ValueKind == VK::Set) {
    int64_t Bit = L.Value.Int;
    if (Bit < 0 || Bit > 63)
      return error(B->location(), "set member out of range 0..63");
    return MakeBool((R.Value.SetBits >> Bit) & 1);
  }

  // Boolean logic.
  if (L.Value.ValueKind == VK::Bool && R.Value.ValueKind == VK::Bool) {
    switch (B->op()) {
    case BinaryOp::And:
      return MakeBool(L.Value.Int && R.Value.Int);
    case BinaryOp::Or:
      return MakeBool(L.Value.Int || R.Value.Int);
    case BinaryOp::Equal:
      return MakeBool(L.Value.Int == R.Value.Int);
    case BinaryOp::NotEqual:
      return MakeBool(L.Value.Int != R.Value.Int);
    default:
      return error(B->location(), "bad constant BOOLEAN operation");
    }
  }

  // Real arithmetic (either side real promotes... only both-real allowed).
  if (L.Value.ValueKind == VK::Real || R.Value.ValueKind == VK::Real) {
    if (L.Value.ValueKind != VK::Real || R.Value.ValueKind != VK::Real)
      return error(B->location(),
                   "cannot mix REAL and INTEGER constants without FLOAT");
    double X = L.Value.Real, Y = R.Value.Real;
    switch (B->op()) {
    case BinaryOp::Add:
      return MakeReal(X + Y);
    case BinaryOp::Sub:
      return MakeReal(X - Y);
    case BinaryOp::Mul:
      return MakeReal(X * Y);
    case BinaryOp::RealDiv:
      if (Y == 0.0)
        return error(B->location(), "division by zero in constant");
      return MakeReal(X / Y);
    case BinaryOp::Equal:
      return MakeBool(X == Y);
    case BinaryOp::NotEqual:
      return MakeBool(X != Y);
    case BinaryOp::Less:
      return MakeBool(X < Y);
    case BinaryOp::LessEq:
      return MakeBool(X <= Y);
    case BinaryOp::Greater:
      return MakeBool(X > Y);
    case BinaryOp::GreaterEq:
      return MakeBool(X >= Y);
    default:
      return error(B->location(), "bad constant REAL operation");
    }
  }

  // Ordinal arithmetic/comparison (Int, Char, enum ordinals).
  auto OrdinalOf = [](const ConstResult &C, int64_t &Out) {
    switch (C.Value.ValueKind) {
    case VK::Int:
    case VK::Char:
    case VK::Bool:
      Out = C.Value.Int;
      return true;
    default:
      return false;
    }
  };
  int64_t X, Y;
  if (OrdinalOf(L, X) && OrdinalOf(R, Y)) {
    switch (B->op()) {
    case BinaryOp::Add:
      return MakeInt(X + Y);
    case BinaryOp::Sub:
      return MakeInt(X - Y);
    case BinaryOp::Mul:
      return MakeInt(X * Y);
    case BinaryOp::IntDiv:
      if (Y == 0)
        return error(B->location(), "division by zero in constant");
      return MakeInt(X / Y);
    case BinaryOp::Mod:
      if (Y == 0)
        return error(B->location(), "division by zero in constant");
      return MakeInt(X % Y);
    case BinaryOp::Equal:
      return MakeBool(X == Y);
    case BinaryOp::NotEqual:
      return MakeBool(X != Y);
    case BinaryOp::Less:
      return MakeBool(X < Y);
    case BinaryOp::LessEq:
      return MakeBool(X <= Y);
    case BinaryOp::Greater:
      return MakeBool(X > Y);
    case BinaryOp::GreaterEq:
      return MakeBool(X >= Y);
    case BinaryOp::RealDiv:
      return error(B->location(), "'/' requires REAL constants (use DIV)");
    default:
      break;
    }
  }
  return error(B->location(), "bad constant expression");
}

ConstResult ConstEvaluator::evalSet(const SetConstructorExpr *S) {
  uint64_t Bits = 0;
  for (const SetElement &El : S->elements()) {
    auto Lo = evalOrdinal(El.Lo);
    auto Hi = El.Hi ? evalOrdinal(El.Hi) : Lo;
    if (!Lo || !Hi)
      return error(S->location(), "set element is not a constant ordinal");
    if (*Lo < 0 || *Hi > 63 || *Lo > *Hi)
      return error(S->location(), "set element out of range 0..63");
    for (int64_t I = *Lo; I <= *Hi; ++I)
      Bits |= uint64_t(1) << I;
  }
  ConstResult R;
  R.Value = ConstValue::makeSet(Bits);
  R.Ty = Comp.Types.bitsetType();
  if (!S->typeName().isEmpty()) {
    SymbolEntry *Entry = Comp.Resolver.lookupSimple(Self, S->typeName());
    if (Entry && Entry->Kind == EntryKind::Type && Entry->Ty &&
        (Entry->Ty->is(TypeKind::Set) || Entry->Ty->is(TypeKind::BitSet)))
      R.Ty = Entry->Ty;
    else
      return error(S->location(), "'" +
                                      std::string(Comp.Interner.spelling(
                                          S->typeName())) +
                                      "' is not a set type");
  }
  return R;
}

std::optional<int64_t> ConstEvaluator::evalOrdinal(const Expr *E,
                                                   const Type **TyOut) {
  ConstResult R = eval(E);
  if (TyOut)
    *TyOut = R.Ty;
  if (R.isError())
    return std::nullopt;
  switch (R.Value.ValueKind) {
  case ConstValue::Kind::Int:
  case ConstValue::Kind::Char:
  case ConstValue::Kind::Bool:
    return R.Value.Int;
  default:
    Comp.Diags.error(E->location(), "ordinal constant expected");
    return std::nullopt;
  }
}
