//===--- Compilation.cpp - Shared per-compilation state -------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "sema/Compilation.h"

using namespace m2c;
using namespace m2c::sema;

symtab::Scope &ModuleRegistry::getOrCreate(Symbol Name,
                                           std::string_view Spelling) {
  symtab::Scope *Created = nullptr;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Modules.find(Name);
    if (It != Modules.end())
      return *It->second;
    auto Owned = std::make_unique<symtab::Scope>(
        std::string(Spelling), symtab::ScopeKind::DefModule, nullptr,
        &Builtins);
    Created = Owned.get();
    Modules.emplace(Name, std::move(Owned));
  }
  // Fire the starter outside the lock: it spawns tasks (and in the
  // sequential compiler compiles the module inline).
  if (Starter)
    Starter(Name, *Created);
  return *Created;
}

symtab::Scope *ModuleRegistry::lookup(Symbol Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Modules.find(Name);
  return It == Modules.end() ? nullptr : It->second.get();
}

size_t ModuleRegistry::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Modules.size();
}

Compilation::Compilation(VirtualFileSystem &Files, StringInterner &Interner,
                         CompilationOptions Options)
    : Files(Files), Interner(Interner), Options(Options),
      Types(Interner), Resolver(Options.Strategy, Stats),
      Builtins("builtins", symtab::ScopeKind::Builtin, nullptr, nullptr),
      Modules(Builtins) {
  populateBuiltinScope(Builtins, Types, Interner);
}
