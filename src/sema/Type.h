//===--- Type.h - Semantic type representation ------------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical semantic types.  Types are created by concurrently running
/// declaration analyzers, so the TypeContext is thread-safe; Type objects
/// themselves are immutable once published (with the single exception of
/// forward-declared pointer targets, which are patched before the owning
/// scope is marked complete).
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SEMA_TYPE_H
#define M2C_SEMA_TYPE_H

#include "sched/Event.h"
#include "support/StringInterner.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace m2c {

namespace symtab {
class Scope;
} // namespace symtab

namespace sema {

/// Semantic type kinds.
enum class TypeKind : uint8_t {
  Error,     ///< Produced after a reported error; silences cascades.
  Integer,
  Cardinal,
  Boolean,
  Char,
  Real,
  BitSet,
  String,    ///< String literals (length in Length).
  Nil,       ///< The type of NIL.
  Enum,
  Subrange,
  Array,
  OpenArray, ///< ARRAY OF T formal parameters.
  Record,
  Pointer,
  Set,
  Procedure,
  Opaque,    ///< Opaque type from a definition module ("TYPE T;").
};

/// A canonical semantic type.
class Type {
public:
  /// One record field; Index is the field's slot in the record value.
  struct Field {
    Symbol Name;
    const Type *Ty = nullptr;
    uint32_t Index = 0;
  };

  /// One procedure-signature parameter.
  struct Param {
    const Type *Ty = nullptr;
    bool IsVar = false;
    bool IsOpenArray = false;
  };

  TypeKind kind() const { return Kind; }

  /// Diagnostic name ("INTEGER", "Lists.List", "ARRAY [0..9] OF REAL").
  std::string describe() const;

  bool is(TypeKind K) const { return Kind == K; }
  bool isError() const { return Kind == TypeKind::Error; }
  bool isOrdinal() const;
  bool isNumeric() const {
    return Kind == TypeKind::Integer || Kind == TypeKind::Cardinal ||
           Kind == TypeKind::Real;
  }

  /// Strips subranges to their base type.
  const Type *stripSubrange() const {
    return Kind == TypeKind::Subrange ? Element : this;
  }

  //===--- Kind-specific accessors ----------------------------------------===//

  /// Array element / set element / pointer pointee / subrange base.
  /// Forward-declared pointer targets are patched through an atomic side
  /// slot, so a concurrent reader either sees null (target not yet
  /// declared; see readyEvent()) or the final pointee — never a torn
  /// value, and the published Element field itself is immutable.
  const Type *element() const {
    if (Element)
      return Element;
    return ForwardPointee.load(std::memory_order_acquire);
  }
  /// Array index type.
  const Type *index() const { return Index; }
  /// Subrange, enum, or array-index bounds.  For arrays, the element
  /// count is length(); for enums, High is the literal count - 1 (Low 0).
  int64_t low() const { return Low; }
  int64_t high() const { return High; }
  /// Number of elements of an array or string; subrange cardinality.
  int64_t length() const { return High - Low + 1; }

  const std::vector<Field> &fields() const { return Fields; }
  const Field *findField(Symbol Name) const;
  /// The record's field table, used as an "other" search scope.
  symtab::Scope *fieldScope() const { return FieldScope; }

  const std::vector<Symbol> &enumLiterals() const { return EnumLits; }

  const std::vector<Param> &params() const { return Params; }
  const Type *result() const { return Result; }

  /// The name this type was first declared under (for diagnostics).
  Symbol name() const { return Name; }
  void setName(Symbol N) {
    if (N.isEmpty() || !Name.isEmpty())
      return;
    Name = N;
  }

  /// Pointer forward-reference patching: "POINTER TO T" may be created
  /// before T is declared; the declaration analyzer patches the pointee
  /// (atomically: other streams may already hold this type through a
  /// Skeptical probe of the still-incomplete table) no later than scope
  /// completion.
  void patchPointee(const Type *Pointee) {
    ForwardPointee.store(Pointee, std::memory_order_release);
  }

  /// For forward pointers: the owning scope's completion event.  A
  /// consumer that needs the pointee while element() is still null waits
  /// on this (DKY-style) and re-reads.
  const sched::EventPtr &readyEvent() const { return Ready; }
  void setReadyEvent(sched::EventPtr E) { Ready = std::move(E); }

private:
  friend class TypeContext;
  explicit Type(TypeKind Kind) : Kind(Kind) {}

  TypeKind Kind;
  Symbol Name;
  const Type *Element = nullptr;
  std::atomic<const Type *> ForwardPointee{nullptr};
  sched::EventPtr Ready;
  const Type *Index = nullptr;
  int64_t Low = 0;
  int64_t High = -1;
  std::vector<Field> Fields;
  symtab::Scope *FieldScope = nullptr;
  std::vector<Symbol> EnumLits;
  std::vector<Param> Params;
  const Type *Result = nullptr;
  const StringInterner *Names = nullptr; ///< For describe().
};

/// Thread-safe factory and owner of all types of one compilation.
class TypeContext {
public:
  explicit TypeContext(StringInterner &Interner);
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;
  ~TypeContext();

  //===--- Canonical builtins ---------------------------------------------===//
  const Type *errorType() const { return ErrorTy; }
  const Type *integerType() const { return IntegerTy; }
  const Type *cardinalType() const { return CardinalTy; }
  const Type *booleanType() const { return BooleanTy; }
  const Type *charType() const { return CharTy; }
  const Type *realType() const { return RealTy; }
  const Type *bitsetType() const { return BitsetTy; }
  const Type *nilType() const { return NilTy; }

  //===--- Constructors ---------------------------------------------------===//
  const Type *getString(int64_t Length);
  const Type *makeEnum(std::vector<Symbol> Literals);
  const Type *makeSubrange(const Type *Base, int64_t Low, int64_t High);
  const Type *makeArray(const Type *IndexTy, const Type *ElementTy);
  const Type *makeOpenArray(const Type *ElementTy);
  /// The record's field scope is created here (and returned via the
  /// type); the caller populates and completes it.
  Type *makeRecord(std::vector<Type::Field> Fields, std::string ScopeName);
  Type *makePointer(const Type *Pointee); ///< Mutable for forward patch.
  const Type *makeSet(const Type *ElementTy);
  const Type *makeProcedure(std::vector<Type::Param> Params,
                            const Type *Result);
  const Type *makeOpaque(Symbol Name);

  //===--- Relations -------------------------------------------------------===//

  /// True if the two types are the same type under Modula-2 name
  /// equivalence (aliases share the Type object).
  static bool same(const Type *A, const Type *B);

  /// True if a value of \p Src may be assigned to a location of \p Dst.
  static bool assignable(const Type *Dst, const Type *Src);

  /// True if binary operands of these types are compatible.
  static bool compatible(const Type *A, const Type *B);

private:
  Type *create(TypeKind Kind);

  StringInterner &Interner;
  std::mutex Mutex;
  // unique_ptr storage: Type holds an atomic member and is immovable.
  std::deque<std::unique_ptr<Type>> Storage;
  std::vector<std::unique_ptr<symtab::Scope>> FieldScopes;
  std::deque<std::unique_ptr<Type>> BuiltinStorage;

  Type *ErrorTy;
  Type *IntegerTy;
  Type *CardinalTy;
  Type *BooleanTy;
  Type *CharTy;
  Type *RealTy;
  Type *BitsetTy;
  Type *NilTy;
};

} // namespace sema
} // namespace m2c

#endif // M2C_SEMA_TYPE_H
