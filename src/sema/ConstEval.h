//===--- ConstEval.h - Compile-time expression evaluation -------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#ifndef M2C_SEMA_CONSTEVAL_H
#define M2C_SEMA_CONSTEVAL_H

#include "ast/Expr.h"
#include "sema/Compilation.h"

namespace m2c::sema {

/// Result of evaluating a constant expression.
struct ConstResult {
  symtab::ConstValue Value;
  const Type *Ty = nullptr;

  bool isError() const { return Ty == nullptr || Ty->isError(); }
};

/// Evaluates constant expressions at compile time.  Name references go
/// through the compilation's DKY-aware resolver, so constant evaluation
/// in one stream may block on declarations another stream is still
/// producing.
class ConstEvaluator {
public:
  ConstEvaluator(Compilation &Comp, symtab::Scope &Self)
      : Comp(Comp), Self(Self) {}

  /// Evaluates \p E.  Reports a diagnostic and returns an error result if
  /// the expression is not constant or is ill-typed.
  ConstResult eval(const ast::Expr *E);

  /// Evaluates \p E and coerces it to an ordinal value (for subrange
  /// bounds, case labels and set elements).
  std::optional<int64_t> evalOrdinal(const ast::Expr *E,
                                     const Type **TyOut = nullptr);

private:
  ConstResult error(SourceLocation Loc, const std::string &Message);
  ConstResult evalDesignator(const ast::DesignatorExpr *D);
  ConstResult evalUnary(const ast::UnaryExpr *U);
  ConstResult evalBinary(const ast::BinaryExpr *B);
  ConstResult evalSet(const ast::SetConstructorExpr *S);
  ConstResult fromEntry(const symtab::SymbolEntry &Entry, SourceLocation Loc);

  Compilation &Comp;
  symtab::Scope &Self;
};

} // namespace m2c::sema

#endif // M2C_SEMA_CONSTEVAL_H
