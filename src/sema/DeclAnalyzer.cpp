//===--- DeclAnalyzer.cpp - Declaration semantic analysis -----------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "sema/DeclAnalyzer.h"

#include "sched/ExecContext.h"

#include <cassert>

using namespace m2c;
using namespace m2c::ast;
using namespace m2c::sema;
using namespace m2c::symtab;

DeclAnalyzer::DeclAnalyzer(Compilation &Comp, Scope &Self,
                           Symbol OwningModule)
    : Comp(Comp), Self(Self), OwningModule(OwningModule),
      ConstEval(Comp, Self) {
  // Child procedure scopes already hold copied parameter entries; local
  // variable slots continue after them.
  NextSlot = static_cast<int32_t>(Self.size());
}

SymbolEntry *DeclAnalyzer::insert(const SymbolEntry &Proto,
                                  SourceLocation Loc) {
  Symbol Name = Proto.Name;
  if (Comp.Builtins.find(Name)) {
    Comp.Diags.error(Loc, "cannot redeclare builtin name '" +
                              std::string(Comp.Interner.spelling(Name)) +
                              "'");
    return nullptr;
  }
  EntryKind Kind = Proto.Kind;
  auto [Raw, Inserted] = Self.insert(Proto);
  if (!Inserted) {
    Comp.Diags.error(Loc, "redeclaration of '" +
                              std::string(Comp.Interner.spelling(Name)) +
                              "' (previously declared as " +
                              entryKindName(Raw->Kind) + ")");
    return nullptr;
  }
  // Variable-ish entries are much cheaper to analyze than type, constant
  // or procedure declarations.
  bool Cheap = Kind == EntryKind::Var || Kind == EntryKind::Param ||
               Kind == EntryKind::Field || Kind == EntryKind::EnumLiteral;
  sched::ctx().charge(Cheap ? sched::CostKind::VarAnalyzed
                            : sched::CostKind::DeclAnalyzed);
  // Optimistic handling maintains one DKY event per symbol; creating it
  // at entry-insertion time is the bookkeeping the paper found to
  // outweigh the strategy's gains (section 2.3.3).
  if (Comp.Options.Strategy == DkyStrategy::Optimistic)
    sched::ctx().charge(sched::CostKind::EventCreate);
  return Raw;
}

void DeclAnalyzer::analyzeImports(const std::vector<ImportClause> &Imports) {
  for (const ImportClause &Clause : Imports) {
    if (!Clause.FromModule.isEmpty()) {
      // FROM M IMPORT a, b: resolve each name in M's interface (possibly
      // blocking per the DKY strategy) and alias it locally.
      Scope &ModScope = Comp.Modules.getOrCreate(
          Clause.FromModule, Comp.Interner.spelling(Clause.FromModule));
      for (Symbol Name : Clause.Names) {
        SymbolEntry *Imported =
            Comp.Resolver.lookupQualified(ModScope, Name);
        if (!Imported) {
          Comp.Diags.error(
              Clause.Loc,
              "module '" +
                  std::string(Comp.Interner.spelling(Clause.FromModule)) +
                  "' does not export '" +
                  std::string(Comp.Interner.spelling(Name)) + "'");
          continue;
        }
        insert(*Imported, Clause.Loc);
      }
      continue;
    }
    // IMPORT M, N: each module becomes a qualifying entry.
    for (Symbol Name : Clause.Names) {
      Scope &ModScope =
          Comp.Modules.getOrCreate(Name, Comp.Interner.spelling(Name));
      SymbolEntry Entry;
      Entry.Name = Name;
      Entry.Kind = EntryKind::Module;
      Entry.Loc = Clause.Loc;
      Entry.ModuleScope = &ModScope;
      insert(Entry, Clause.Loc);
    }
  }
}

void DeclAnalyzer::analyzeDecls(const std::vector<Decl *> &Decls) {
  for (const Decl *D : Decls)
    analyzeDecl(D);
}

void DeclAnalyzer::analyzeDecl(const Decl *D) {
  switch (D->kind()) {
  case DeclKind::Const:
    analyzeConst(static_cast<const ConstDecl *>(D));
    return;
  case DeclKind::Type:
    analyzeTypeDecl(static_cast<const TypeDecl *>(D));
    return;
  case DeclKind::Var:
    analyzeVar(static_cast<const VarDecl *>(D));
    return;
  case DeclKind::ProcHeading:
    analyzeProcHeadingDecl(
        static_cast<const ProcHeadingDecl *>(D)->heading(), D->location());
    return;
  case DeclKind::Proc:
    // Sequential compilation path: the heading is processed here in the
    // parent scope; the driver recurses into the body's declarations
    // with a child DeclAnalyzer.
    analyzeProcHeadingDecl(static_cast<const ProcDecl *>(D)->heading(),
                           D->location());
    return;
  }
}

void DeclAnalyzer::analyzeConst(const ConstDecl *D) {
  ConstResult R = ConstEval.eval(D->value());
  SymbolEntry Entry;
  Entry.Name = D->name();
  Entry.Kind = EntryKind::Const;
  Entry.Loc = D->location();
  Entry.Ty = R.Ty;
  Entry.Value = R.Value;
  insert(Entry, D->location());
}

void DeclAnalyzer::patchPendingPointersTo(Symbol Name, const Type *Target) {
  for (const PendingPointer &P : PendingPointers)
    if (P.TargetName == Name)
      P.Pointer->patchPointee(Target);
}

void DeclAnalyzer::analyzeTypeDecl(const TypeDecl *D) {
  const Type *Ty = nullptr;
  if (!D->type()) {
    // Opaque type: legal in definition modules only.
    if (Self.kind() != ScopeKind::DefModule)
      Comp.Diags.error(D->location(),
                       "opaque types are only allowed in definition "
                       "modules");
    Ty = Comp.Types.makeOpaque(D->name());
  } else {
    Ty = resolveType(D->type());
  }
  const_cast<Type *>(Ty)->setName(D->name());
  SymbolEntry Entry;
  Entry.Name = D->name();
  Entry.Kind = EntryKind::Type;
  Entry.Loc = D->location();
  Entry.Ty = Ty;
  if (insert(Entry, D->location())) {
    // Forward pointers to this type become usable immediately, not just
    // at scope completion (narrows the cross-stream DKY window).
    patchPendingPointersTo(D->name(), Ty);
  }
}

/// Number of module-frame slots the scope's variables occupy.
static int32_t globalVarCount(const Scope &S) {
  int32_t Count = 0;
  for (const SymbolEntry *E : S.entries())
    if (E->Kind == EntryKind::Var && E->IsGlobal && E->OwnerScope == &S)
      ++Count;
  return Count;
}

void DeclAnalyzer::analyzeVar(const VarDecl *D) {
  if (!SlotBaseResolved && OwnInterface &&
      Self.kind() == ScopeKind::Module) {
    // The interface's globals own the front of the module frame; wait for
    // its declaration analysis if it is still running.
    if (!OwnInterface->isComplete()) {
      sched::ctx().charge(sched::CostKind::LookupBlocked);
      sched::ctx().wait(*OwnInterface->completionEvent());
    }
    NextSlot += globalVarCount(*OwnInterface);
  }
  SlotBaseResolved = true;
  const Type *Ty = resolveType(D->type());
  for (Symbol Name : D->names()) {
    SymbolEntry Entry;
    Entry.Name = Name;
    Entry.Kind = EntryKind::Var;
    Entry.Loc = D->location();
    Entry.Ty = Ty;
    Entry.Slot = NextSlot;
    Entry.IsGlobal = Self.kind() == ScopeKind::Module ||
                     Self.kind() == ScopeKind::DefModule;
    Entry.OwningModule = OwningModule;
    if (insert(Entry, D->location()))
      ++NextSlot;
  }
}

const Type *DeclAnalyzer::buildSignature(const ProcHeading &Heading) {
  std::vector<Type::Param> Params;
  for (const FormalParam &P : Heading.Params) {
    const Type *Ty = resolveType(P.Type);
    if (P.IsOpenArray)
      Ty = Comp.Types.makeOpenArray(Ty);
    for (size_t I = 0; I < P.Names.size(); ++I)
      Params.push_back(Type::Param{Ty, P.IsVar, P.IsOpenArray});
  }
  const Type *Result =
      Heading.Result ? resolveType(Heading.Result) : nullptr;
  return Comp.Types.makeProcedure(std::move(Params), Result);
}

void DeclAnalyzer::copyParamsToChild(const ProcHeading &Heading,
                                     const Type &Sig, Scope &Child) {
  // Alternative 1 of section 2.4: the parent's processing of the heading
  // is copied into the child scope, so the child starts with its
  // parameters already declared.
  int32_t Slot = 0;
  size_t ParamIndex = 0;
  for (const FormalParam &P : Heading.Params) {
    for (Symbol Name : P.Names) {
      assert(ParamIndex < Sig.params().size() && "signature out of sync");
      SymbolEntry Entry;
      Entry.Name = Name;
      Entry.Kind = EntryKind::Param;
      Entry.Loc = P.Loc;
      Entry.Ty = Sig.params()[ParamIndex].Ty;
      Entry.Slot = Slot++;
      Entry.IsVarParam = P.IsVar;
      if (!Child.insert(Entry).Inserted)
        Comp.Diags.error(P.Loc,
                         "duplicate parameter name '" +
                             std::string(Comp.Interner.spelling(Name)) + "'");
      ++ParamIndex;
    }
  }
}

void DeclAnalyzer::analyzeHeadingInChild(const ProcHeading &Heading) {
  // Alternative 3 of section 2.4: the child re-processes the heading,
  // producing entries identical to the parent's analysis.  The duplicate
  // resolution work is the measured ~3% cost of this alternative.
  sched::ctx().charge(sched::CostKind::DeclAnalyzed);
  sched::ctx().charge(sched::CostKind::VarAnalyzed,
                      3 + Heading.Params.size());
  const Type *Sig = buildSignature(Heading);
  copyParamsToChild(Heading, *Sig, Self);
  NextSlot = static_cast<int32_t>(Self.size());
}

void DeclAnalyzer::analyzeProcHeadingDecl(const ProcHeading &Heading,
                                          SourceLocation Loc) {
  const Type *Sig = buildSignature(Heading);
  SymbolEntry Entry;
  Entry.Name = Heading.Name;
  Entry.Kind = EntryKind::Proc;
  Entry.Loc = Loc;
  Entry.Ty = Sig;
  Entry.ProcId = Comp.allocProcId();
  Entry.OwningModule = OwningModule;
  SymbolEntry *Inserted = insert(Entry, Loc);
  size_t Index = HeadingIndex++;
  // The child-scope hook fires for *every* heading — successful or not —
  // so the driver's per-index child bookkeeping stays aligned with the
  // heading order even when a redeclaration fails to insert.
  Scope *Child =
      Hooks.childScope ? Hooks.childScope(Index, Heading.Name) : nullptr;
  if (!Inserted)
    return; // Redeclared: the child stream stays orphaned (no code).
  if (Child && Comp.Options.Sharing == HeadingSharing::CopyEntries)
    copyParamsToChild(Heading, *Sig, *Child);
  if (Hooks.headingDone)
    Hooks.headingDone(Index, Heading.Name, *Inserted);
}

const Type *DeclAnalyzer::resolveNamed(const NamedTypeExpr *TE,
                                       bool AllowForwardPointer) {
  if (TE->name().isEmpty())
    return Comp.Types.errorType(); // Parser already diagnosed.

  SymbolEntry *Entry = nullptr;
  if (!TE->qualifier().isEmpty()) {
    SymbolEntry *ModEntry =
        Comp.Resolver.lookupSimple(Self, TE->qualifier());
    if (!ModEntry || ModEntry->Kind != EntryKind::Module ||
        !ModEntry->ModuleScope) {
      Comp.Diags.error(TE->location(),
                       "'" +
                           std::string(
                               Comp.Interner.spelling(TE->qualifier())) +
                           "' is not an imported module");
      return Comp.Types.errorType();
    }
    Entry = Comp.Resolver.lookupQualified(*ModEntry->ModuleScope, TE->name());
  } else {
    if (AllowForwardPointer) {
      // Forward pointer targets resolve against this scope later; a plain
      // probe avoids a self-deadlocking wait on our own table.
      Entry = Self.find(TE->name());
      if (!Entry)
        return nullptr; // Defer to finish().
    } else {
      Entry = Comp.Resolver.lookupSimple(Self, TE->name());
    }
  }
  if (!Entry) {
    Comp.Diags.error(TE->location(),
                     "undeclared type '" +
                         std::string(Comp.Interner.spelling(TE->name())) +
                         "'");
    return Comp.Types.errorType();
  }
  if (Entry->Kind != EntryKind::Type || !Entry->Ty) {
    Comp.Diags.error(TE->location(),
                     "'" + std::string(Comp.Interner.spelling(TE->name())) +
                         "' is not a type");
    return Comp.Types.errorType();
  }
  return Entry->Ty;
}

const Type *DeclAnalyzer::resolveSubrange(const SubrangeTypeExpr *TE) {
  const Type *LoTy = nullptr;
  auto Lo = ConstEval.evalOrdinal(TE->low(), &LoTy);
  auto Hi = ConstEval.evalOrdinal(TE->high());
  if (!Lo || !Hi)
    return Comp.Types.errorType();
  if (*Lo > *Hi) {
    Comp.Diags.error(TE->location(), "empty subrange: low bound " +
                                         std::to_string(*Lo) +
                                         " exceeds high bound " +
                                         std::to_string(*Hi));
    return Comp.Types.errorType();
  }
  const Type *Base = LoTy ? LoTy->stripSubrange() : Comp.Types.integerType();
  if (!TE->baseName().isEmpty()) {
    NamedTypeExpr Named(TE->location(), Symbol(), TE->baseName());
    Base = resolveNamed(&Named, /*AllowForwardPointer=*/false);
  }
  return Comp.Types.makeSubrange(Base, *Lo, *Hi);
}

const Type *DeclAnalyzer::resolveType(const TypeExpr *TE) {
  if (!TE)
    return Comp.Types.errorType();
  switch (TE->kind()) {
  case TypeExprKind::Named:
    return resolveNamed(static_cast<const NamedTypeExpr *>(TE),
                        /*AllowForwardPointer=*/false);

  case TypeExprKind::Subrange:
    return resolveSubrange(static_cast<const SubrangeTypeExpr *>(TE));

  case TypeExprKind::Enumeration: {
    auto *Enum = static_cast<const EnumTypeExpr *>(TE);
    const Type *Ty = Comp.Types.makeEnum(Enum->literals());
    int64_t Ordinal = 0;
    for (Symbol Lit : Enum->literals()) {
      SymbolEntry Entry;
      Entry.Name = Lit;
      Entry.Kind = EntryKind::EnumLiteral;
      Entry.Loc = TE->location();
      Entry.Ty = Ty;
      Entry.Value = ConstValue::makeInt(Ordinal++);
      insert(Entry, TE->location());
    }
    return Ty;
  }

  case TypeExprKind::Array: {
    auto *Arr = static_cast<const ArrayTypeExpr *>(TE);
    const Type *Index = resolveType(Arr->index());
    const Type *Element = resolveType(Arr->element());
    if (!Index->isError() && !Index->isOrdinal()) {
      Comp.Diags.error(Arr->location(), "array index type must be ordinal");
      Index = Comp.Types.errorType();
    }
    return Comp.Types.makeArray(Index, Element);
  }

  case TypeExprKind::Record: {
    auto *Rec = static_cast<const RecordTypeExpr *>(TE);
    std::vector<Type::Field> Fields;
    uint32_t Index = 0;
    for (const FieldGroup &G : Rec->fields()) {
      const Type *FieldTy = resolveType(G.Type);
      for (Symbol Name : G.Names)
        Fields.push_back(Type::Field{Name, FieldTy, Index++});
    }
    Type *Ty = Comp.Types.makeRecord(
        std::move(Fields), Self.name() + ".record" +
                               std::to_string(reinterpret_cast<uintptr_t>(TE) &
                                              0xffff));
    // Populate the field table (an "other" search scope for Table 2) and
    // complete it immediately: record types publish atomically.
    for (const Type::Field &F : Ty->fields()) {
      SymbolEntry Entry;
      Entry.Name = F.Name;
      Entry.Kind = EntryKind::Field;
      Entry.Loc = TE->location();
      Entry.Ty = F.Ty;
      Entry.Slot = static_cast<int32_t>(F.Index);
      if (!Ty->fieldScope()->insert(Entry).Inserted)
        Comp.Diags.error(TE->location(),
                         "duplicate field name '" +
                             std::string(Comp.Interner.spelling(F.Name)) +
                             "'");
    }
    Ty->fieldScope()->markComplete();
    return Ty;
  }

  case TypeExprKind::Pointer: {
    auto *Ptr = static_cast<const PointerTypeExpr *>(TE);
    // "POINTER TO T" may reference a type declared later in this scope.
    if (Ptr->pointee() &&
        Ptr->pointee()->kind() == TypeExprKind::Named) {
      auto *Named = static_cast<const NamedTypeExpr *>(Ptr->pointee());
      if (Named->qualifier().isEmpty()) {
        const Type *Known = resolveNamed(Named, /*AllowForwardPointer=*/true);
        if (Known)
          return Comp.Types.makePointer(Known);
        Type *Fwd = Comp.Types.makePointer(nullptr);
        // Other streams may probe this type out of the incomplete table;
        // a consumer needing the pointee before it is patched waits on
        // the scope's completion.
        Fwd->setReadyEvent(Self.completionEvent());
        PendingPointers.push_back(
            PendingPointer{Fwd, Named->name(), Named->location()});
        return Fwd;
      }
    }
    return Comp.Types.makePointer(resolveType(Ptr->pointee()));
  }

  case TypeExprKind::Set: {
    auto *Set = static_cast<const SetTypeExpr *>(TE);
    const Type *Element = resolveType(Set->element());
    if (!Element->isError()) {
      if (!Element->isOrdinal()) {
        Comp.Diags.error(Set->location(), "set element type must be ordinal");
        Element = Comp.Types.errorType();
      } else if (Element->low() < 0 || Element->high() > 63) {
        Comp.Diags.error(Set->location(),
                         "set element range must lie within 0..63");
        Element = Comp.Types.errorType();
      }
    }
    return Comp.Types.makeSet(Element);
  }

  case TypeExprKind::Proc: {
    auto *Proc = static_cast<const ProcTypeExpr *>(TE);
    std::vector<Type::Param> Params;
    for (const FormalType &F : Proc->formals()) {
      const Type *Ty = resolveType(F.Type);
      if (F.IsOpenArray)
        Ty = Comp.Types.makeOpenArray(Ty);
      Params.push_back(Type::Param{Ty, F.IsVar, F.IsOpenArray});
    }
    const Type *Result =
        Proc->result() ? resolveType(Proc->result()) : nullptr;
    return Comp.Types.makeProcedure(std::move(Params), Result);
  }
  }
  return Comp.Types.errorType();
}

void DeclAnalyzer::finish() {
  for (const PendingPointer &P : PendingPointers) {
    if (P.Pointer->element())
      continue; // Already patched when the target was declared.
    SymbolEntry *Entry = Comp.Resolver.lookupSimple(Self, P.TargetName);
    if (!Entry || Entry->Kind != EntryKind::Type || !Entry->Ty) {
      Comp.Diags.error(P.Loc,
                       "undeclared pointer target type '" +
                           std::string(Comp.Interner.spelling(P.TargetName)) +
                           "'");
      P.Pointer->patchPointee(Comp.Types.errorType());
      continue;
    }
    P.Pointer->patchPointee(Entry->Ty);
  }
  PendingPointers.clear();
  Self.markComplete();
}
