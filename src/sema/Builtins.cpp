//===--- Builtins.cpp - Names predefined by the compiler ------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "sema/Builtins.h"

#include <cassert>

using namespace m2c;
using namespace m2c::sema;
using namespace m2c::symtab;

const char *m2c::sema::builtinProcName(BuiltinProc P) {
  switch (P) {
  case BuiltinProc::Abs:
    return "ABS";
  case BuiltinProc::Cap:
    return "CAP";
  case BuiltinProc::Chr:
    return "CHR";
  case BuiltinProc::Dec:
    return "DEC";
  case BuiltinProc::Dispose:
    return "DISPOSE";
  case BuiltinProc::Excl:
    return "EXCL";
  case BuiltinProc::Float:
    return "FLOAT";
  case BuiltinProc::Halt:
    return "HALT";
  case BuiltinProc::High:
    return "HIGH";
  case BuiltinProc::Inc:
    return "INC";
  case BuiltinProc::Incl:
    return "INCL";
  case BuiltinProc::Max:
    return "MAX";
  case BuiltinProc::Min:
    return "MIN";
  case BuiltinProc::New:
    return "NEW";
  case BuiltinProc::Odd:
    return "ODD";
  case BuiltinProc::Ord:
    return "ORD";
  case BuiltinProc::Size:
    return "SIZE";
  case BuiltinProc::Trunc:
    return "TRUNC";
  case BuiltinProc::Val:
    return "VAL";
  case BuiltinProc::WriteInt:
    return "WriteInt";
  case BuiltinProc::WriteCard:
    return "WriteCard";
  case BuiltinProc::WriteLn:
    return "WriteLn";
  case BuiltinProc::WriteString:
    return "WriteString";
  case BuiltinProc::WriteChar:
    return "WriteChar";
  case BuiltinProc::WriteReal:
    return "WriteReal";
  case BuiltinProc::ReadInt:
    return "ReadInt";
  }
  return "?";
}

void m2c::sema::populateBuiltinScope(Scope &Builtins, TypeContext &Types,
                                     StringInterner &Interner) {
  assert(Builtins.kind() == ScopeKind::Builtin && "wrong scope kind");

  auto AddType = [&](const char *Name, const Type *Ty) {
    SymbolEntry E;
    E.Name = Interner.intern(Name);
    E.Kind = EntryKind::Type;
    E.Ty = Ty;
    const_cast<Type *>(Ty)->setName(E.Name);
    [[maybe_unused]] bool Inserted = Builtins.insert(E).Inserted;
    assert(Inserted && "duplicate builtin");
  };
  auto AddConst = [&](const char *Name, const Type *Ty, ConstValue Value) {
    SymbolEntry E;
    E.Name = Interner.intern(Name);
    E.Kind = EntryKind::Const;
    E.Ty = Ty;
    E.Value = Value;
    [[maybe_unused]] bool Inserted = Builtins.insert(E).Inserted;
    assert(Inserted && "duplicate builtin");
  };
  auto AddProc = [&](BuiltinProc P) {
    SymbolEntry E;
    E.Name = Interner.intern(builtinProcName(P));
    E.Kind = EntryKind::Proc;
    E.BuiltinId = static_cast<int16_t>(P);
    [[maybe_unused]] bool Inserted = Builtins.insert(E).Inserted;
    assert(Inserted && "duplicate builtin");
  };

  AddType("INTEGER", Types.integerType());
  AddType("CARDINAL", Types.cardinalType());
  AddType("BOOLEAN", Types.booleanType());
  AddType("CHAR", Types.charType());
  AddType("REAL", Types.realType());
  AddType("LONGINT", Types.integerType());
  AddType("LONGREAL", Types.realType());
  AddType("BITSET", Types.bitsetType());
  AddType("PROC", Types.makeProcedure({}, nullptr));

  AddConst("TRUE", Types.booleanType(), ConstValue::makeBool(true));
  AddConst("FALSE", Types.booleanType(), ConstValue::makeBool(false));
  AddConst("NIL", Types.nilType(), ConstValue::makeNil());

  AddProc(BuiltinProc::Abs);
  AddProc(BuiltinProc::Cap);
  AddProc(BuiltinProc::Chr);
  AddProc(BuiltinProc::Dec);
  AddProc(BuiltinProc::Dispose);
  AddProc(BuiltinProc::Excl);
  AddProc(BuiltinProc::Float);
  AddProc(BuiltinProc::Halt);
  AddProc(BuiltinProc::High);
  AddProc(BuiltinProc::Inc);
  AddProc(BuiltinProc::Incl);
  AddProc(BuiltinProc::Max);
  AddProc(BuiltinProc::Min);
  AddProc(BuiltinProc::New);
  AddProc(BuiltinProc::Odd);
  AddProc(BuiltinProc::Ord);
  AddProc(BuiltinProc::Size);
  AddProc(BuiltinProc::Trunc);
  AddProc(BuiltinProc::Val);
  AddProc(BuiltinProc::WriteInt);
  AddProc(BuiltinProc::WriteCard);
  AddProc(BuiltinProc::WriteLn);
  AddProc(BuiltinProc::WriteString);
  AddProc(BuiltinProc::WriteChar);
  AddProc(BuiltinProc::WriteReal);
  AddProc(BuiltinProc::ReadInt);

  Builtins.markComplete();
}
