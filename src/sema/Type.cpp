//===--- Type.cpp - Semantic type representation ---------------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "sema/Type.h"

#include "symtab/Scope.h"

#include <cassert>

using namespace m2c;
using namespace m2c::sema;

bool Type::isOrdinal() const {
  switch (Kind) {
  case TypeKind::Integer:
  case TypeKind::Cardinal:
  case TypeKind::Boolean:
  case TypeKind::Char:
  case TypeKind::Enum:
  case TypeKind::Subrange:
    return true;
  default:
    return false;
  }
}

const Type::Field *Type::findField(Symbol FieldName) const {
  for (const Field &F : Fields)
    if (F.Name == FieldName)
      return &F;
  return nullptr;
}

std::string Type::describe() const {
  if (!Name.isEmpty() && Names)
    return std::string(Names->spelling(Name));
  switch (Kind) {
  case TypeKind::Error:
    return "<error>";
  case TypeKind::Integer:
    return "INTEGER";
  case TypeKind::Cardinal:
    return "CARDINAL";
  case TypeKind::Boolean:
    return "BOOLEAN";
  case TypeKind::Char:
    return "CHAR";
  case TypeKind::Real:
    return "REAL";
  case TypeKind::BitSet:
    return "BITSET";
  case TypeKind::String:
    return "string constant";
  case TypeKind::Nil:
    return "NIL";
  case TypeKind::Enum:
    return "enumeration";
  case TypeKind::Subrange:
    return "[" + std::to_string(Low) + ".." + std::to_string(High) + "]";
  case TypeKind::Array:
    return "ARRAY [" + std::to_string(Low) + ".." + std::to_string(High) +
           "] OF " + (Element ? Element->describe() : "?");
  case TypeKind::OpenArray:
    return "ARRAY OF " + (Element ? Element->describe() : "?");
  case TypeKind::Record:
    return "RECORD";
  case TypeKind::Pointer:
    return "POINTER TO " + (element() ? element()->describe() : "?");
  case TypeKind::Set:
    return "SET OF " + (Element ? Element->describe() : "?");
  case TypeKind::Procedure:
    return "PROCEDURE";
  case TypeKind::Opaque:
    return "opaque type";
  }
  return "?";
}

TypeContext::TypeContext(StringInterner &Interner) : Interner(Interner) {
  auto MakeBuiltin = [this](TypeKind Kind) {
    BuiltinStorage.push_back(std::unique_ptr<Type>(new Type(Kind)));
    BuiltinStorage.back()->Names = &this->Interner;
    return BuiltinStorage.back().get();
  };
  ErrorTy = MakeBuiltin(TypeKind::Error);
  IntegerTy = MakeBuiltin(TypeKind::Integer);
  CardinalTy = MakeBuiltin(TypeKind::Cardinal);
  BooleanTy = MakeBuiltin(TypeKind::Boolean);
  CharTy = MakeBuiltin(TypeKind::Char);
  RealTy = MakeBuiltin(TypeKind::Real);
  BitsetTy = MakeBuiltin(TypeKind::BitSet);
  BitsetTy->Low = 0;
  BitsetTy->High = 63;
  BitsetTy->Element = CardinalTy;
  NilTy = MakeBuiltin(TypeKind::Nil);
}

TypeContext::~TypeContext() = default;

Type *TypeContext::create(TypeKind Kind) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Storage.push_back(std::unique_ptr<Type>(new Type(Kind)));
  Storage.back()->Names = &Interner;
  return Storage.back().get();
}

const Type *TypeContext::getString(int64_t Length) {
  Type *T = create(TypeKind::String);
  T->Low = 0;
  T->High = Length - 1;
  T->Element = CharTy;
  return T;
}

const Type *TypeContext::makeEnum(std::vector<Symbol> Literals) {
  Type *T = create(TypeKind::Enum);
  T->Low = 0;
  T->High = static_cast<int64_t>(Literals.size()) - 1;
  T->EnumLits = std::move(Literals);
  return T;
}

const Type *TypeContext::makeSubrange(const Type *Base, int64_t Low,
                                      int64_t High) {
  assert(Base && "subrange of null base");
  Type *T = create(TypeKind::Subrange);
  T->Element = Base->stripSubrange();
  T->Low = Low;
  T->High = High;
  return T;
}

const Type *TypeContext::makeArray(const Type *IndexTy,
                                   const Type *ElementTy) {
  Type *T = create(TypeKind::Array);
  T->Index = IndexTy;
  T->Element = ElementTy;
  if (IndexTy && IndexTy->isOrdinal()) {
    if (IndexTy->is(TypeKind::Subrange) || IndexTy->is(TypeKind::Enum) ||
        IndexTy->is(TypeKind::Boolean) || IndexTy->is(TypeKind::Char)) {
      T->Low = IndexTy->is(TypeKind::Char) ? 0 : IndexTy->low();
      T->High = IndexTy->is(TypeKind::Char)
                    ? 255
                    : (IndexTy->is(TypeKind::Boolean) ? 1 : IndexTy->high());
    }
  }
  return T;
}

const Type *TypeContext::makeOpenArray(const Type *ElementTy) {
  Type *T = create(TypeKind::OpenArray);
  T->Element = ElementTy;
  return T;
}

Type *TypeContext::makeRecord(std::vector<Type::Field> Fields,
                              std::string ScopeName) {
  Type *T = create(TypeKind::Record);
  T->Fields = std::move(Fields);
  auto Scope = std::make_unique<symtab::Scope>(
      std::move(ScopeName), symtab::ScopeKind::Record, nullptr, nullptr);
  T->FieldScope = Scope.get();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    FieldScopes.push_back(std::move(Scope));
  }
  return T;
}

Type *TypeContext::makePointer(const Type *Pointee) {
  Type *T = create(TypeKind::Pointer);
  T->Element = Pointee;
  return T;
}

const Type *TypeContext::makeSet(const Type *ElementTy) {
  Type *T = create(TypeKind::Set);
  T->Element = ElementTy;
  if (ElementTy && ElementTy->isOrdinal()) {
    T->Low = ElementTy->low();
    T->High = ElementTy->high();
  }
  return T;
}

const Type *TypeContext::makeProcedure(std::vector<Type::Param> Params,
                                       const Type *Result) {
  Type *T = create(TypeKind::Procedure);
  T->Params = std::move(Params);
  T->Result = Result;
  return T;
}

const Type *TypeContext::makeOpaque(Symbol Name) {
  Type *T = create(TypeKind::Opaque);
  T->Name = Name;
  return T;
}

bool TypeContext::same(const Type *A, const Type *B) {
  if (A == B)
    return true;
  if (!A || !B)
    return false;
  if (A->isError() || B->isError())
    return true; // Suppress cascades.
  // Structural equivalence for procedure signatures.
  if (A->is(TypeKind::Procedure) && B->is(TypeKind::Procedure)) {
    if (A->params().size() != B->params().size())
      return false;
    if ((A->result() == nullptr) != (B->result() == nullptr))
      return false;
    if (A->result() && !same(A->result(), B->result()))
      return false;
    for (size_t I = 0; I < A->params().size(); ++I) {
      const Type::Param &PA = A->params()[I];
      const Type::Param &PB = B->params()[I];
      if (PA.IsVar != PB.IsVar || PA.IsOpenArray != PB.IsOpenArray ||
          !same(PA.Ty, PB.Ty))
        return false;
    }
    return true;
  }
  return false;
}

bool TypeContext::assignable(const Type *Dst, const Type *Src) {
  if (!Dst || !Src)
    return false;
  if (Dst->isError() || Src->isError())
    return true;
  const Type *D = Dst->stripSubrange();
  const Type *S = Src->stripSubrange();
  if (D == S)
    return true;
  // INTEGER and CARDINAL values intermix (checked at runtime on a real
  // machine; our MCode machine uses 64-bit integers throughout).
  if ((D->is(TypeKind::Integer) || D->is(TypeKind::Cardinal)) &&
      (S->is(TypeKind::Integer) || S->is(TypeKind::Cardinal)))
    return true;
  // NIL assigns to any pointer or procedure value.
  if (S->is(TypeKind::Nil) &&
      (D->is(TypeKind::Pointer) || D->is(TypeKind::Procedure) ||
       D->is(TypeKind::Opaque)))
    return true;
  // Character literals are CHAR; length-1 strings already lex as CHAR.
  if (D->is(TypeKind::Char) && S->is(TypeKind::Char))
    return true;
  // String constants assign to arrays of CHAR that can hold them.
  if (D->is(TypeKind::Array) && D->element() &&
      D->element()->stripSubrange()->is(TypeKind::Char) &&
      S->is(TypeKind::String))
    return D->length() >= S->length();
  // BITSET and SET types of the same element range interchange only when
  // identical (name equivalence), except the literal {..} constructor
  // which is typed by context; the analyzer handles that case.
  if (same(D, S))
    return true;
  return false;
}

bool TypeContext::compatible(const Type *A, const Type *B) {
  if (!A || !B)
    return false;
  if (A->isError() || B->isError())
    return true;
  const Type *X = A->stripSubrange();
  const Type *Y = B->stripSubrange();
  if (X == Y)
    return true;
  if ((X->is(TypeKind::Integer) || X->is(TypeKind::Cardinal)) &&
      (Y->is(TypeKind::Integer) || Y->is(TypeKind::Cardinal)))
    return true;
  if (X->is(TypeKind::Nil) &&
      (Y->is(TypeKind::Pointer) || Y->is(TypeKind::Opaque)))
    return true;
  if (Y->is(TypeKind::Nil) &&
      (X->is(TypeKind::Pointer) || X->is(TypeKind::Opaque)))
    return true;
  if (X->is(TypeKind::String) && Y->is(TypeKind::Array) && Y->element() &&
      Y->element()->stripSubrange()->is(TypeKind::Char))
    return true;
  if (Y->is(TypeKind::String) && X->is(TypeKind::Array) && X->element() &&
      X->element()->stripSubrange()->is(TypeKind::Char))
    return true;
  return same(X, Y);
}
