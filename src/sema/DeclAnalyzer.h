//===--- DeclAnalyzer.h - Declaration semantic analysis ---------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds one stream's symbol table from its declaration AST.  Runs as
/// the back half of the Parser/Declarations-Analyzer task: "fast
/// processing of the declaration parts of streams will assist in
/// resolving DKY blockages by causing symbol tables to be completed
/// earlier in the compilation" (paper section 3).
///
/// Procedure headings are processed in the *parent* scope and the
/// resulting parameter entries copied into the child scope (section 2.4,
/// alternative 1); under HeadingSharing::Reprocess the child re-analyzes
/// the heading instead (alternative 3, the ~3% ablation).
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SEMA_DECLANALYZER_H
#define M2C_SEMA_DECLANALYZER_H

#include "ast/Decl.h"
#include "sema/Compilation.h"
#include "sema/ConstEval.h"

namespace m2c::sema {

/// Driver-installed hooks connecting procedure headings to the split-off
/// procedure streams created by the Splitter.
struct ProcStreamHooks {
  /// Returns the scope of the Index-th procedure heading's stream (order
  /// of appearance in this stream), or null when the procedure was not
  /// split off (definition modules, sequential compilation).
  std::function<symtab::Scope *(size_t Index, Symbol Name)> childScope;

  /// Called once the heading's information is available to the child
  /// (entries copied, or signature recorded under Reprocess); the driver
  /// signals the child stream's heading-processed avoided event here.
  std::function<void(size_t Index, Symbol Name,
                     const symtab::SymbolEntry &ProcEntry)>
      headingDone;
};

/// Analyzes the declarations of one scope.
class DeclAnalyzer {
public:
  DeclAnalyzer(Compilation &Comp, symtab::Scope &Self, Symbol OwningModule);

  /// For the implementation module's scope: its global variables share
  /// the module frame with the ones declared in M.def, so their slots
  /// start after the interface's.  Waits for the interface scope to
  /// complete on first use (the compilation of M.mod "optimistically"
  /// overlaps the processing of M.def, paper section 3).
  void setOwnInterface(symtab::Scope *OwnDef) { OwnInterface = OwnDef; }

  void setProcStreamHooks(ProcStreamHooks H) { Hooks = std::move(H); }

  /// Resolves the stream's import clauses into Module and alias entries.
  /// FROM-imports resolve through the DKY machinery and may block.
  void analyzeImports(const std::vector<ast::ImportClause> &Imports);

  /// Analyzes a declaration block in order.
  void analyzeDecls(const std::vector<ast::Decl *> &Decls);

  /// Analyzes one declaration (the concurrent parser task feeds these
  /// incrementally as it parses, so entries appear — and procedure-stream
  /// heading events fire — while the rest of the stream is still being
  /// read).
  void analyzeDecl(const ast::Decl *D);

  /// Re-analyzes a heading in the *child* scope (Reprocess sharing, and
  /// slot accounting for the child's declaration analyzer).
  void analyzeHeadingInChild(const ast::ProcHeading &Heading);

  /// Patches pending forward pointer targets and marks the scope
  /// complete.  Call exactly once, after all declarations.
  void finish();

  /// Resolves a syntactic type expression in this scope.
  const Type *resolveType(const ast::TypeExpr *TE);

  /// The scope under construction.
  symtab::Scope &scope() { return Self; }

private:
  /// Inserts a copy of \p Proto (arena-allocated by the scope), reporting
  /// redeclaration/builtin-clash errors.  Returns the inserted entry or
  /// null on clash.
  symtab::SymbolEntry *insert(const symtab::SymbolEntry &Proto,
                              SourceLocation Loc);

  void analyzeConst(const ast::ConstDecl *D);
  void analyzeTypeDecl(const ast::TypeDecl *D);
  void analyzeVar(const ast::VarDecl *D);
  void analyzeProcHeadingDecl(const ast::ProcHeading &Heading,
                              SourceLocation Loc);

  /// Builds the procedure signature type from a heading (resolving the
  /// formal types in this scope).
  const Type *buildSignature(const ast::ProcHeading &Heading);

  /// Copies parameter entries into \p Child (alternative 1).
  void copyParamsToChild(const ast::ProcHeading &Heading, const Type &Sig,
                         symtab::Scope &Child);

  const Type *resolveNamed(const ast::NamedTypeExpr *TE,
                           bool AllowForwardPointer);
  /// Patches any pending forward pointers whose target is \p Name.
  void patchPendingPointersTo(Symbol Name, const Type *Target);
  const Type *resolveSubrange(const ast::SubrangeTypeExpr *TE);

  Compilation &Comp;
  symtab::Scope &Self;
  Symbol OwningModule;
  ConstEvaluator ConstEval;
  ProcStreamHooks Hooks;
  symtab::Scope *OwnInterface = nullptr;
  bool SlotBaseResolved = false;
  int32_t NextSlot = 0;
  size_t HeadingIndex = 0;

  struct PendingPointer {
    Type *Pointer;
    Symbol TargetName;
    SourceLocation Loc;
  };
  std::vector<PendingPointer> PendingPointers;
};

} // namespace m2c::sema

#endif // M2C_SEMA_DECLANALYZER_H
