//===--- CachePlanner.h - Pre-compilation cache probing ---------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cache prepass.  Before the concurrent run is set up, the planner
/// re-runs the *real* Splitter over the module's token stream (into
/// private probe queues), derives each stream's content key, and probes
/// the cache, producing a CachePlan the driver consults when wiring
/// tasks: hit streams skip parse/sema/codegen and their cached units are
/// handed to the Merger directly.
///
/// Key derivation per stream:
///
///   key(S) = H(options, interface-closure hash,
///              declHash(ancestors of S, outermost first),
///              fullHash(S))
///
/// where declHash covers a stream's tokens up to (not including) its own
/// body BEGIN — i.e. its declarations, which include the *headings* of
/// its child procedures but not their bodies — and fullHash covers all of
/// the stream's tokens.  Hashing headings rather than whole enclosing
/// modules is what bounds the blast radius of an edit: a procedure-body
/// edit changes only that stream's fullHash, so only that stream misses.
///
/// The whole prepass runs under a SequentialContext charging real cost
/// kinds (LexChar, SplitToken, CacheProbe, CacheLookup, ...), so probe
/// work is visible in virtual time and speedup curves stay honest.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_CACHE_CACHEPLANNER_H
#define M2C_CACHE_CACHEPLANNER_H

#include "cache/CompilationCache.h"
#include "lex/TokenBlockQueue.h"
#include "sched/CostModel.h"
#include "sema/Compilation.h"
#include "support/VirtualFileSystem.h"
#include "symtab/NameResolver.h"

#include <optional>
#include <string>
#include <vector>

namespace m2c::cache {

/// The compilation-relevant options folded into every key.  Driver names
/// the compilation path ("conc"/"seq"): the two drivers produce images
/// that differ in scheduling metadata (stream weights), so their entries
/// are namespaced apart to keep cached output byte-identical to uncached
/// output within each driver.
struct CacheFingerprint {
  symtab::DkyStrategy Strategy = symtab::DkyStrategy::Skeptical;
  sema::HeadingSharing Sharing = sema::HeadingSharing::CopyEntries;
  /// Canonical pass-pipeline spelling (opt::passConfigString), e.g. "O0"
  /// or "O2:constfold,copyprop,peephole,dse,unreach".  Hashing the full
  /// roster — not just the level digit — means entries also re-key if a
  /// level's roster ever changes.
  std::string PassConfig = "O0";
  std::string Driver = "conc";
};

/// The plan for one stream, in splitter discovery order.
struct StreamPlan {
  std::string QualifiedName; ///< "Mod" for main, "Mod.P.Q" for procedures.
  int Parent = -1;           ///< Index of the enclosing stream; -1 = main.
  CacheKey Key;
  bool Hit = false;         ///< Cached unit available; skip codegen.
  bool RunFrontEnd = true;  ///< Parse/sema must run (self or a descendant
                            ///< missed and needs this scope populated).
  std::optional<codegen::CodeUnit> Cached; ///< Loaded unit when Hit.
};

/// Everything the prepass learned.
struct CachePlan {
  bool Valid = false; ///< Probe ran (the .mod file exists).

  /// Whole-module fast path: nothing changed since a cached compile.
  bool ModuleHit = false;
  std::optional<ModuleEntry> Module; ///< Loaded entry when ModuleHit.

  CacheKey ModuleKey;
  std::string ModTextHash;
  std::vector<FileDep> Deps; ///< Interface closure (sorted by file name).

  /// Per-stream plans; index 0 is the main module stream.  Empty when
  /// ModuleHit (streams were never probed).
  std::vector<StreamPlan> Streams;

  /// Virtual-time units the prepass consumed.
  uint64_t ProbeUnits = 0;

  /// True if any stream (or the module) hit.
  bool anyHit() const;
};

/// Runs the cache prepass for one module.
class CachePlanner {
public:
  CachePlanner(VirtualFileSystem &Files, StringInterner &Interner,
               CompilationCache &Cache, CacheFingerprint Fingerprint,
               const sched::CostModel &Cost)
      : Files(Files), Interner(Interner), Cache(Cache),
        Fingerprint(std::move(Fingerprint)), Cost(Cost) {}

  /// Module-level probe only: hash the sources, try the whole-module fast
  /// path, and discover the interface closure for a later store.  Used by
  /// the sequential driver, which has no streams to skip individually.
  CachePlan probeModule(std::string_view ModuleName);

  /// Full probe: module fast path, then (on miss) the per-stream plan.
  ///
  /// \p KnownClosure, when provided, is the module's interface-name
  /// closure as some earlier pass (session discovery) already derived it;
  /// the probe builds its dependency set from that list instead of
  /// re-deriving the closure by lexing every interface file.  The
  /// module's own interface is implied and need not be listed.  Content
  /// hashes are still taken per file (memoized on the buffers), so the
  /// resulting plan is identical to an unassisted probe of the same
  /// sources.
  CachePlan plan(std::string_view ModuleName,
                 const std::vector<std::string> *KnownClosure = nullptr);

private:
  void probeInner(std::string_view ModuleName, CachePlan &Plan,
                  TokenBlockQueue *RawQueue,
                  const std::vector<std::string> *KnownClosure);
  void planStreams(std::string_view ModuleName, CachePlan &Plan,
                   TokenBlockQueue &RawQueue);
  bool depsMatch(const std::vector<FileDep> &Deps);
  void combineFingerprint(KeyHasher &H) const;

  VirtualFileSystem &Files;
  StringInterner &Interner;
  CompilationCache &Cache;
  const CacheFingerprint Fingerprint;
  const sched::CostModel &Cost;
};

} // namespace m2c::cache

#endif // M2C_CACHE_CACHEPLANNER_H
