//===--- CompilationCache.h - Content-addressed result cache ----*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stream compilation cache.  The paper's streams — main module body,
/// each procedure, each imported definition module — are separately
/// compilable units, which also makes them natural units of memoization:
/// a stream whose content key is unchanged since a previous compilation
/// can skip parse/sema/codegen and hand its cached `CodeUnit` straight to
/// the Merger.  Entries are keyed by 128-bit content hashes
/// (`CacheKey`) and serialized through the textual `.mco` object format,
/// so a cache entry is readable with the same tools as compiler output.
///
/// Two entry kinds:
///  * stream entries — one `CodeUnit`, keyed by the stream's token text,
///    its ancestors' declaration context, the interface closure, and the
///    compilation-relevant options;
///  * module entries — a whole finalized `ModuleImage`, keyed by module
///    name + options and validated against the raw source hashes, serving
///    the all-hit fast path (nothing changed at all).
///
/// Entries are only written by compilations that produced zero
/// diagnostics, so replaying an entry never needs to replay diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_CACHE_COMPILATIONCACHE_H
#define M2C_CACHE_COMPILATIONCACHE_H

#include "cache/CacheKey.h"
#include "cache/CacheStore.h"
#include "codegen/MCode.h"
#include "support/Statistic.h"

#include <memory>
#include <optional>
#include <vector>

namespace m2c::cache {

/// One source file a module entry depends on: the file's name and the
/// hex hash of its raw text ("missing" if the file did not exist).
struct FileDep {
  std::string Name;
  std::string Hash;

  friend bool operator==(const FileDep &A, const FileDep &B) {
    return A.Name == B.Name && A.Hash == B.Hash;
  }
};

/// A cached whole-module compilation.
struct ModuleEntry {
  std::string ModTextHash;   ///< Hex hash of the raw .mod text.
  std::vector<FileDep> Deps; ///< Interface closure (sorted by name).
  codegen::ModuleImage Image;
  uint64_t StreamCount = 0; ///< CompileResult::StreamCount to replay.
};

/// Thread-safe content-addressed cache over a CacheStore backend.
///
/// Lookup/store cost is charged to the active ExecContext as CacheLookup,
/// so probes appear in virtual time under the simulated executor exactly
/// like any other compiler work.
class CompilationCache {
public:
  explicit CompilationCache(std::unique_ptr<CacheStore> Store);
  CompilationCache(const CompilationCache &) = delete;
  CompilationCache &operator=(const CompilationCache &) = delete;

  /// Looks up a stream entry; symbols are re-interned into \p Names.
  std::optional<codegen::CodeUnit> lookupStream(const CacheKey &Key,
                                                StringInterner &Names);

  /// Stores one stream's compiled unit under \p Key.
  void storeStream(const CacheKey &Key, const codegen::CodeUnit &Unit,
                   const StringInterner &Names);

  /// Looks up a module entry (no validation — the planner compares the
  /// recorded hashes against the current sources).
  std::optional<ModuleEntry> lookupModule(const CacheKey &Key,
                                          StringInterner &Names);

  /// Stores a whole-module entry.
  void storeModule(const CacheKey &Key, const std::string &ModTextHash,
                   const std::vector<FileDep> &Deps,
                   const codegen::ModuleImage &Image, uint64_t StreamCount,
                   const StringInterner &Names);

  /// Hit/miss/invalidation counters ("cache.stream.hit", ...).
  StatisticSet &stats() { return Stats; }
  const StatisticSet &stats() const { return Stats; }

  CacheStore &store() { return *Backend; }

private:
  std::unique_ptr<CacheStore> Backend;
  StatisticSet Stats;
};

} // namespace m2c::cache

#endif // M2C_CACHE_COMPILATIONCACHE_H
