//===--- CacheStore.h - Keyed entry storage backends ------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Storage backends for the compilation cache: a key/value store mapping
/// 32-hex-digit content keys to serialized entry text.  The in-memory
/// variant serves a single process (tests, repeated `compile()` calls);
/// the on-disk variant persists entries as one `<key>.mcc` text file per
/// entry so that warm builds survive process restarts, reusing the same
/// human-readable serialization the `.mco` object format uses.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_CACHE_CACHESTORE_H
#define M2C_CACHE_CACHESTORE_H

#include <atomic>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace m2c::cache {

/// Abstract keyed blob store.  Implementations must be thread-safe: the
/// concurrent driver probes and stores from multiple worker threads.
class CacheStore {
public:
  virtual ~CacheStore();

  /// Returns the entry text stored under \p Key, if any.
  virtual std::optional<std::string> load(const std::string &Key) = 0;

  /// Stores \p Text under \p Key, replacing any previous entry.
  virtual void save(const std::string &Key, const std::string &Text) = 0;

  /// Number of entries currently stored (best effort for disk stores).
  virtual size_t size() const = 0;
};

/// Process-local store: a mutex-guarded hash map.
class MemoryCacheStore final : public CacheStore {
public:
  std::optional<std::string> load(const std::string &Key) override;
  void save(const std::string &Key, const std::string &Text) override;
  size_t size() const override;

private:
  mutable std::mutex Mutex;
  std::unordered_map<std::string, std::string> Entries;
};

/// Persistent store: one `<key>.mcc` file per entry under a cache
/// directory (created on first use).  Writes go through a temporary file
/// followed by an atomic rename — fsync-free, so a torn entry is possible
/// only across a power failure, never across concurrent writers.  Temp
/// names embed the process id and a per-process counter, so any number of
/// sessions, service requests, or whole processes can share one cache
/// directory without colliding mid-write.
class DiskCacheStore final : public CacheStore {
public:
  explicit DiskCacheStore(std::string Directory);

  std::optional<std::string> load(const std::string &Key) override;
  void save(const std::string &Key, const std::string &Text) override;
  size_t size() const override;

  const std::string &directory() const { return Directory; }

private:
  std::string pathFor(const std::string &Key) const;

  const std::string Directory;
  std::atomic<unsigned> NextTemp{0}; ///< Distinguishes in-flight writes.
};

} // namespace m2c::cache

#endif // M2C_CACHE_CACHESTORE_H
