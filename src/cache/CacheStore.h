//===--- CacheStore.h - Keyed entry storage backends ------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Storage backends for the compilation cache: a key/value store mapping
/// 32-hex-digit content keys to serialized entry text.  The in-memory
/// variant serves a single process (tests, repeated `compile()` calls);
/// the on-disk variant persists entries as one `<key>.mcc` text file per
/// entry so that warm builds survive process restarts, reusing the same
/// human-readable serialization the `.mco` object format uses.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_CACHE_CACHESTORE_H
#define M2C_CACHE_CACHESTORE_H

#include "support/Statistic.h"

#include <atomic>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace m2c::cache {

/// Abstract keyed blob store.  Implementations must be thread-safe: the
/// concurrent driver probes and stores from multiple worker threads.
class CacheStore {
public:
  virtual ~CacheStore();

  /// Returns the entry text stored under \p Key, if any.
  virtual std::optional<std::string> load(const std::string &Key) = 0;

  /// Stores \p Text under \p Key, replacing any previous entry.
  virtual void save(const std::string &Key, const std::string &Text) = 0;

  /// Number of entries currently stored (best effort for disk stores).
  virtual size_t size() const = 0;
};

/// Process-local store: a mutex-guarded hash map.
class MemoryCacheStore final : public CacheStore {
public:
  std::optional<std::string> load(const std::string &Key) override;
  void save(const std::string &Key, const std::string &Text) override;
  size_t size() const override;

private:
  mutable std::mutex Mutex;
  std::unordered_map<std::string, std::string> Entries;
};

/// Persistent store: one `<key>.mcc` file per entry under a cache
/// directory (created on first use).  Writes go through a temporary file
/// followed by an atomic rename — fsync-free, so a torn entry is possible
/// only across a power failure, never across concurrent writers.  Temp
/// names embed the process id and a per-process counter, so any number of
/// sessions, service requests, or whole processes can share one cache
/// directory without colliding mid-write.
///
/// Every entry written by this store carries a `#mcc1 <32hex>\n` header:
/// the content hash of the payload that follows.  load() verifies the hash
/// and self-heals on mismatch — the corrupt file is deleted and the load
/// reports a miss, so the caller simply recompiles and overwrites it
/// (`cache.disk.corrupt` counts these).  Headerless entries from older
/// stores are accepted unverified.
///
/// Construction runs a recovery sweep: `.tmp<pid>.*` files whose writing
/// process is dead are orphans from a crash mid-write and are deleted
/// (`cache.disk.orphans`); temps belonging to live processes are in-flight
/// writes and are left alone.
class DiskCacheStore final : public CacheStore {
public:
  explicit DiskCacheStore(std::string Directory);

  std::optional<std::string> load(const std::string &Key) override;
  void save(const std::string &Key, const std::string &Text) override;
  size_t size() const override;

  const std::string &directory() const { return Directory; }

  /// Result of an offline integrity pass over the whole directory.
  struct VerifyReport {
    size_t Checked = 0; ///< Entries examined.
    size_t Corrupt = 0; ///< Entries whose payload hash mismatched.
    size_t Healed = 0;  ///< Corrupt entries deleted (when Heal was set).
    size_t Orphans = 0; ///< Dead-process temp files found (and deleted).
  };

  /// Re-hashes every entry in the directory.  With \p Heal set, corrupt
  /// entries are deleted so the next build recompiles them; dead-process
  /// temps are always swept.  Safe to run concurrently with writers: an
  /// in-flight rename either lands a fully-written file or nothing.
  VerifyReport verifyAll(bool Heal);

  /// Store-level counters: cache.disk.corrupt, cache.disk.orphans,
  /// cache.disk.verified.
  const StatisticSet &stats() const { return Stats; }

private:
  std::string pathFor(const std::string &Key) const;
  /// Deletes dead-process temp files; returns how many were removed.
  size_t sweepOrphans();
  /// Checks the `#mcc1 <hash>` header of \p Raw.  Returns the payload on
  /// success, nullopt on a hash mismatch.  Headerless text passes through.
  static std::optional<std::string> checkEntry(const std::string &Raw);

  const std::string Directory;
  std::atomic<unsigned> NextTemp{0}; ///< Distinguishes in-flight writes.
  StatisticSet Stats;
};

} // namespace m2c::cache

#endif // M2C_CACHE_CACHESTORE_H
