//===--- CacheStore.cpp - Keyed entry storage backends ---------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "cache/CacheStore.h"

#include "cache/CacheKey.h"
#include "fault/FaultPlan.h"

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <unistd.h>

using namespace m2c::cache;

namespace fs = std::filesystem;

CacheStore::~CacheStore() = default;

//===----------------------------------------------------------------------===//
// MemoryCacheStore
//===----------------------------------------------------------------------===//

std::optional<std::string> MemoryCacheStore::load(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Key);
  if (It == Entries.end())
    return std::nullopt;
  return It->second;
}

void MemoryCacheStore::save(const std::string &Key, const std::string &Text) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entries[Key] = Text;
}

size_t MemoryCacheStore::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}

//===----------------------------------------------------------------------===//
// DiskCacheStore
//===----------------------------------------------------------------------===//

namespace {

const char EntryMagic[] = "#mcc1 ";
constexpr size_t EntryMagicLen = sizeof(EntryMagic) - 1;
constexpr size_t EntryHashLen = 32; // CacheKey::hex() digits.

/// `#mcc1 <32hex>\n` + payload.
std::string framedEntry(const std::string &Text) {
  std::string Out;
  Out.reserve(EntryMagicLen + EntryHashLen + 1 + Text.size());
  Out += EntryMagic;
  Out += hashBytes(Text).hex();
  Out += '\n';
  Out += Text;
  return Out;
}

/// True when the process that created a `.tmp<pid>.` file is gone, meaning
/// the temp is an orphan from a crash mid-write.
bool pidIsDead(unsigned long Pid) {
  if (Pid == 0 || Pid > static_cast<unsigned long>(1) << 22)
    return false; // Unparseable — leave the file alone.
  if (::kill(static_cast<pid_t>(Pid), 0) == 0)
    return false;
  return errno == ESRCH;
}

/// Parses the pid out of a `.tmp<pid>.<counter>.<key>` file name; returns 0
/// if the name does not match the temp pattern.
unsigned long tempFilePid(const std::string &Name) {
  if (Name.rfind(".tmp", 0) != 0)
    return 0;
  size_t Pos = 4;
  unsigned long Pid = 0;
  while (Pos < Name.size() && Name[Pos] >= '0' && Name[Pos] <= '9')
    Pid = Pid * 10 + static_cast<unsigned long>(Name[Pos++] - '0');
  if (Pos >= Name.size() || Name[Pos] != '.')
    return 0;
  return Pid;
}

} // namespace

DiskCacheStore::DiskCacheStore(std::string Directory)
    : Directory(std::move(Directory)) {
  std::error_code EC;
  fs::create_directories(this->Directory, EC);
  // A failure here surfaces as load/save misses; the compiler still works,
  // it just never gets warm.
  sweepOrphans();
}

std::string DiskCacheStore::pathFor(const std::string &Key) const {
  return Directory + "/" + Key + ".mcc";
}

size_t DiskCacheStore::sweepOrphans() {
  // Recovery sweep: a `.tmp<pid>.*` file whose writer is dead can never be
  // renamed into place — it is debris from a crash between write and
  // rename.  Temps of live processes (including our own other threads) are
  // in-flight writes and must be left alone.
  std::error_code EC;
  size_t Swept = 0;
  for (const auto &Entry : fs::directory_iterator(Directory, EC)) {
    std::string Name = Entry.path().filename().string();
    unsigned long Pid = tempFilePid(Name);
    if (Pid == 0 || !pidIsDead(Pid))
      continue;
    std::error_code RemoveEC;
    if (fs::remove(Entry.path(), RemoveEC)) {
      ++Swept;
      Stats.add("cache.disk.orphans");
    }
  }
  return Swept;
}

std::optional<std::string> DiskCacheStore::checkEntry(const std::string &Raw) {
  if (Raw.compare(0, EntryMagicLen, EntryMagic) != 0)
    return Raw; // Pre-header entry from an older store: accept unverified.
  if (Raw.size() < EntryMagicLen + EntryHashLen + 1 ||
      Raw[EntryMagicLen + EntryHashLen] != '\n')
    return std::nullopt; // Header present but torn.
  std::string Payload = Raw.substr(EntryMagicLen + EntryHashLen + 1);
  if (Raw.compare(EntryMagicLen, EntryHashLen, hashBytes(Payload).hex()) != 0)
    return std::nullopt;
  return Payload;
}

std::optional<std::string> DiskCacheStore::load(const std::string &Key) {
  fault::FaultOutcome F = M2C_FAULT_HIT("cache.disk.read");
  if (F.fail())
    return std::nullopt; // Injected read error: surfaces as a miss.
  std::ifstream In(pathFor(Key), std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream SS;
  SS << In.rdbuf();
  std::string Raw = SS.str();
  if (F.corrupt() && !Raw.empty())
    Raw[Raw.size() / 2] ^= 0x40; // Injected bit-flip, caught by the verify.
  std::optional<std::string> Payload = checkEntry(Raw);
  if (!Payload) {
    // Self-heal: drop the damaged entry so the recompile that follows this
    // miss overwrites it with a good one.
    Stats.add("cache.disk.corrupt");
    std::error_code EC;
    fs::remove(pathFor(Key), EC);
    return std::nullopt;
  }
  return Payload;
}

void DiskCacheStore::save(const std::string &Key, const std::string &Text) {
  // Write-temp + atomic rename.  The temp name carries the process id and
  // a per-process counter so concurrent writers — other threads of this
  // process or entirely different processes sharing the directory — each
  // write their own file; whichever rename lands last wins whole, and a
  // reader can never observe a partially written entry.
  fault::FaultOutcome F = M2C_FAULT_HIT("cache.disk.write");
  if (F.fail())
    return; // Injected write error: the entry is simply never stored.
  std::string Framed = framedEntry(Text);
  if (F.corrupt() && !Text.empty())
    Framed[Framed.size() - 1 - Text.size() / 2] ^= 0x40; // Detected on load.
  unsigned Temp = NextTemp.fetch_add(1, std::memory_order_relaxed);
  std::string TempPath = Directory + "/.tmp" +
                         std::to_string(static_cast<unsigned long>(::getpid())) +
                         "." + std::to_string(Temp) + "." + Key;
  {
    std::ofstream Out(TempPath, std::ios::binary);
    if (!Out)
      return;
    Out << Framed;
    if (!Out)
      return;
  }
  std::error_code EC;
  if (M2C_FAULT_HIT("cache.disk.rename").fail()) {
    fs::remove(TempPath, EC); // Injected crash between write and rename.
    return;
  }
  fs::rename(TempPath, pathFor(Key), EC);
  if (EC)
    fs::remove(TempPath, EC);
}

DiskCacheStore::VerifyReport DiskCacheStore::verifyAll(bool Heal) {
  VerifyReport Report;
  Report.Orphans = sweepOrphans();
  std::error_code EC;
  for (const auto &Entry : fs::directory_iterator(Directory, EC)) {
    if (Entry.path().extension() != ".mcc")
      continue;
    ++Report.Checked;
    Stats.add("cache.disk.verified");
    std::ifstream In(Entry.path(), std::ios::binary);
    if (!In)
      continue;
    std::ostringstream SS;
    SS << In.rdbuf();
    if (checkEntry(SS.str()))
      continue;
    ++Report.Corrupt;
    Stats.add("cache.disk.corrupt");
    if (Heal) {
      std::error_code RemoveEC;
      if (fs::remove(Entry.path(), RemoveEC))
        ++Report.Healed;
    }
  }
  return Report;
}

size_t DiskCacheStore::size() const {
  std::error_code EC;
  size_t Count = 0;
  for (const auto &Entry : fs::directory_iterator(Directory, EC))
    if (Entry.path().extension() == ".mcc")
      ++Count;
  return Count;
}
