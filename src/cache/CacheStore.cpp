//===--- CacheStore.cpp - Keyed entry storage backends ---------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "cache/CacheStore.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <unistd.h>

using namespace m2c::cache;

namespace fs = std::filesystem;

CacheStore::~CacheStore() = default;

//===----------------------------------------------------------------------===//
// MemoryCacheStore
//===----------------------------------------------------------------------===//

std::optional<std::string> MemoryCacheStore::load(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Key);
  if (It == Entries.end())
    return std::nullopt;
  return It->second;
}

void MemoryCacheStore::save(const std::string &Key, const std::string &Text) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entries[Key] = Text;
}

size_t MemoryCacheStore::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}

//===----------------------------------------------------------------------===//
// DiskCacheStore
//===----------------------------------------------------------------------===//

DiskCacheStore::DiskCacheStore(std::string Directory)
    : Directory(std::move(Directory)) {
  std::error_code EC;
  fs::create_directories(this->Directory, EC);
  // A failure here surfaces as load/save misses; the compiler still works,
  // it just never gets warm.
}

std::string DiskCacheStore::pathFor(const std::string &Key) const {
  return Directory + "/" + Key + ".mcc";
}

std::optional<std::string> DiskCacheStore::load(const std::string &Key) {
  std::ifstream In(pathFor(Key), std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

void DiskCacheStore::save(const std::string &Key, const std::string &Text) {
  // Write-temp + atomic rename.  The temp name carries the process id and
  // a per-process counter so concurrent writers — other threads of this
  // process or entirely different processes sharing the directory — each
  // write their own file; whichever rename lands last wins whole, and a
  // reader can never observe a partially written entry.
  unsigned Temp = NextTemp.fetch_add(1, std::memory_order_relaxed);
  std::string TempPath = Directory + "/.tmp" +
                         std::to_string(static_cast<unsigned long>(::getpid())) +
                         "." + std::to_string(Temp) + "." + Key;
  {
    std::ofstream Out(TempPath, std::ios::binary);
    if (!Out)
      return;
    Out << Text;
    if (!Out)
      return;
  }
  std::error_code EC;
  fs::rename(TempPath, pathFor(Key), EC);
  if (EC)
    fs::remove(TempPath, EC);
}

size_t DiskCacheStore::size() const {
  std::error_code EC;
  size_t Count = 0;
  for (const auto &Entry : fs::directory_iterator(Directory, EC))
    if (Entry.path().extension() == ".mcc")
      ++Count;
  return Count;
}
