//===--- CacheKey.h - Content-addressed compilation keys --------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// 128-bit content keys for the stream compilation cache.  A key is the
/// hash of everything that can influence a stream's compiled output: its
/// own token text, the declaration context of its enclosing streams, the
/// interfaces visible to the compilation, and the compilation-relevant
/// options.  Two FNV-1a streams with independent offset bases give a
/// collision probability that is negligible at cache scale while keeping
/// hashing cheap enough to charge per token in virtual time.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_CACHE_CACHEKEY_H
#define M2C_CACHE_CACHEKEY_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace m2c::cache {

/// A 128-bit content hash, rendered as 32 hex digits when used as a store
/// key.
struct CacheKey {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  friend bool operator==(const CacheKey &A, const CacheKey &B) {
    return A.Hi == B.Hi && A.Lo == B.Lo;
  }
  friend bool operator!=(const CacheKey &A, const CacheKey &B) {
    return !(A == B);
  }

  /// 32 lowercase hex digits; stable across platforms.
  std::string hex() const {
    static const char Digits[] = "0123456789abcdef";
    std::string Out(32, '0');
    uint64_t Parts[2] = {Hi, Lo};
    for (int P = 0; P < 2; ++P)
      for (int I = 0; I < 16; ++I)
        Out[static_cast<size_t>(P * 16 + I)] =
            Digits[(Parts[P] >> (60 - 4 * I)) & 0xf];
    return Out;
  }
};

/// Incremental hasher producing a CacheKey.  Deterministic: depends only
/// on the byte sequence fed in, never on pointer values or interning
/// order.
class KeyHasher {
public:
  KeyHasher() = default;

  void combineByte(uint8_t B) {
    Hi = (Hi ^ B) * Prime;
    Lo = (Lo ^ (B ^ 0x5c)) * Prime;
  }

  void combineBytes(const void *Data, size_t Size) {
    const auto *P = static_cast<const uint8_t *>(Data);
    for (size_t I = 0; I < Size; ++I)
      combineByte(P[I]);
  }

  void combine(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      combineByte(static_cast<uint8_t>(V >> (8 * I)));
  }

  /// Length-prefixed so that adjacent strings can't alias ("ab","c" vs
  /// "a","bc").
  void combine(std::string_view S) {
    combine(static_cast<uint64_t>(S.size()));
    combineBytes(S.data(), S.size());
  }

  void combine(double V) {
    uint64_t Bits = 0;
    std::memcpy(&Bits, &V, sizeof(Bits));
    combine(Bits);
  }

  void combine(const CacheKey &K) {
    combine(K.Hi);
    combine(K.Lo);
  }

  CacheKey finish() const { return CacheKey{Hi, Lo}; }

private:
  static constexpr uint64_t Prime = 0x100000001b3ull; // FNV-1a 64
  uint64_t Hi = 0xcbf29ce484222325ull;                // FNV offset basis
  uint64_t Lo = 0x84222325cbf29ce4ull;                // rotated basis
};

/// Hashes a whole buffer in one call.
inline CacheKey hashBytes(std::string_view Text) {
  KeyHasher H;
  H.combine(Text);
  return H.finish();
}

} // namespace m2c::cache

#endif // M2C_CACHE_CACHEKEY_H
