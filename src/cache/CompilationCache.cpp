//===--- CompilationCache.cpp - Content-addressed result cache -------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "cache/CompilationCache.h"

#include "codegen/ObjectFile.h"
#include "sched/ExecContext.h"

#include <sstream>

using namespace m2c;
using namespace m2c::cache;

namespace {

// Entry headers.  The payload after the header line(s) is a standard
// MCOBJ text object, so entries stay inspectable with the .mco tooling.
constexpr const char *StreamMagic = "MCACHE-S 1";
constexpr const char *ModuleMagic = "MCACHE-M 1";

/// Consumes one line of \p Text (without the newline).
std::string_view takeLine(std::string_view &Text) {
  size_t End = Text.find('\n');
  std::string_view Line = Text.substr(0, End);
  Text.remove_prefix(End == std::string_view::npos ? Text.size() : End + 1);
  return Line;
}

} // namespace

CompilationCache::CompilationCache(std::unique_ptr<CacheStore> Store)
    : Backend(std::move(Store)) {}

std::optional<codegen::CodeUnit>
CompilationCache::lookupStream(const CacheKey &Key, StringInterner &Names) {
  sched::ctx().charge(sched::CostKind::CacheLookup);
  std::optional<std::string> Text = Backend->load(Key.hex());
  if (!Text) {
    Stats.add("cache.stream.miss");
    return std::nullopt;
  }
  std::string_view Rest = *Text;
  if (takeLine(Rest) != StreamMagic) {
    Stats.add("cache.stream.malformed");
    return std::nullopt;
  }
  std::string Error;
  auto Image = codegen::readObjectFile(Rest, Names, Error);
  if (!Image || Image->Units.size() != 1) {
    Stats.add("cache.stream.malformed");
    return std::nullopt;
  }
  Stats.add("cache.stream.hit");
  return std::move(Image->Units.front());
}

void CompilationCache::storeStream(const CacheKey &Key,
                                   const codegen::CodeUnit &Unit,
                                   const StringInterner &Names) {
  sched::ctx().charge(sched::CostKind::CacheLookup);
  // Wrap the unit in a minimal single-unit image so writeObjectFile can
  // serialize it unchanged.
  codegen::ModuleImage Wrapper;
  Wrapper.ModuleName = Unit.Module;
  Wrapper.Units.push_back(Unit);
  std::string Text = StreamMagic;
  Text += "\n";
  Text += codegen::writeObjectFile(Wrapper, Names);
  Backend->save(Key.hex(), Text);
  Stats.add("cache.stream.store");
}

std::optional<ModuleEntry>
CompilationCache::lookupModule(const CacheKey &Key, StringInterner &Names) {
  sched::ctx().charge(sched::CostKind::CacheLookup);
  std::optional<std::string> Text = Backend->load(Key.hex());
  if (!Text)
    return std::nullopt;
  std::string_view Rest = *Text;
  if (takeLine(Rest) != ModuleMagic) {
    Stats.add("cache.module.malformed");
    return std::nullopt;
  }

  ModuleEntry Entry;
  {
    std::istringstream Header{std::string(takeLine(Rest))};
    std::string Tag;
    if (!(Header >> Tag >> Entry.ModTextHash) || Tag != "MODHASH") {
      Stats.add("cache.module.malformed");
      return std::nullopt;
    }
  }
  {
    std::istringstream Header{std::string(takeLine(Rest))};
    std::string Tag;
    if (!(Header >> Tag >> Entry.StreamCount) || Tag != "STREAMS") {
      Stats.add("cache.module.malformed");
      return std::nullopt;
    }
  }
  size_t NumDeps = 0;
  {
    std::istringstream Header{std::string(takeLine(Rest))};
    std::string Tag;
    if (!(Header >> Tag >> NumDeps) || Tag != "DEPS") {
      Stats.add("cache.module.malformed");
      return std::nullopt;
    }
  }
  for (size_t I = 0; I < NumDeps; ++I) {
    std::istringstream Line{std::string(takeLine(Rest))};
    std::string Tag;
    FileDep Dep;
    if (!(Line >> Tag >> Dep.Hash >> Dep.Name) || Tag != "DEP") {
      Stats.add("cache.module.malformed");
      return std::nullopt;
    }
    Entry.Deps.push_back(std::move(Dep));
  }

  std::string Error;
  auto Image = codegen::readObjectFile(Rest, Names, Error);
  if (!Image) {
    Stats.add("cache.module.malformed");
    return std::nullopt;
  }
  Entry.Image = std::move(*Image);
  return Entry;
}

void CompilationCache::storeModule(const CacheKey &Key,
                                   const std::string &ModTextHash,
                                   const std::vector<FileDep> &Deps,
                                   const codegen::ModuleImage &Image,
                                   uint64_t StreamCount,
                                   const StringInterner &Names) {
  sched::ctx().charge(sched::CostKind::CacheLookup);
  std::ostringstream OS;
  OS << ModuleMagic << "\n";
  OS << "MODHASH " << ModTextHash << "\n";
  OS << "STREAMS " << StreamCount << "\n";
  OS << "DEPS " << Deps.size() << "\n";
  for (const FileDep &Dep : Deps)
    OS << "DEP " << Dep.Hash << " " << Dep.Name << "\n";
  OS << codegen::writeObjectFile(Image, Names);
  Backend->save(Key.hex(), OS.str());
  Stats.add("cache.module.store");
}
