//===--- CachePlanner.cpp - Pre-compilation cache probing ------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "cache/CachePlanner.h"

#include "lex/Lexer.h"
#include "sched/ExecContext.h"
#include "split/Splitter.h"

#include <algorithm>
#include <cstdint>

using namespace m2c;
using namespace m2c::cache;

bool CachePlan::anyHit() const {
  if (ModuleHit)
    return true;
  for (const StreamPlan &S : Streams)
    if (S.Hit)
      return true;
  return false;
}

namespace {

/// Hashes one token: the parts semantic analysis and code generation can
/// observe.  Source locations are deliberately excluded — entries are
/// only stored by zero-diagnostic compiles, and generated code carries no
/// line information, so whitespace-only edits still hit.  Identifiers are
/// hashed by spelling, not Symbol id, so keys don't depend on interning
/// order.
void combineToken(KeyHasher &H, const Token &T, const StringInterner &Names) {
  H.combine(static_cast<uint64_t>(T.Kind));
  if (!T.Ident.isEmpty())
    H.combine(Names.spelling(T.Ident));
  H.combine(static_cast<uint64_t>(T.IntValue));
  H.combine(T.RealValue);
}

/// Scans a finished token queue for IMPORT / FROM clauses (the Importer's
/// recognizer, without the module registry).
void scanImports(TokenBlockQueue &Queue, std::vector<Symbol> &Out) {
  TokenBlockQueue::Reader In(Queue);
  auto Discover = [&](Symbol Name) {
    if (std::find(Out.begin(), Out.end(), Name) == Out.end())
      Out.push_back(Name);
  };
  while (true) {
    const Token &T = In.next();
    if (T.isEof())
      return;
    sched::ctx().charge(sched::CostKind::ImportToken);
    if (T.is(TokenKind::KwFrom)) {
      if (In.peek().is(TokenKind::Identifier))
        Discover(In.peek().Ident);
      while (!In.peek().isEof() && !In.peek().is(TokenKind::Semi))
        In.next();
      continue;
    }
    if (T.is(TokenKind::KwImport)) {
      while (In.peek().is(TokenKind::Identifier)) {
        Discover(In.next().Ident);
        if (!In.peek().is(TokenKind::Comma))
          break;
        In.next();
      }
    }
  }
}

} // namespace

void CachePlanner::combineFingerprint(KeyHasher &H) const {
  H.combine(static_cast<uint64_t>(Fingerprint.Strategy));
  H.combine(static_cast<uint64_t>(Fingerprint.Sharing));
  H.combine(std::string_view(Fingerprint.PassConfig));
  H.combine(std::string_view(Fingerprint.Driver));
}

namespace {

/// The buffer's content hash, computed once per buffer ever (the memo
/// lives on the immutable SourceBuffer).  The probe cost is still charged
/// per call — memoization is a wall-time optimization and must not make
/// virtual time nondeterministic.
std::string memoizedHash(const SourceBuffer &Buf) {
  sched::ctx().charge(sched::CostKind::CacheProbe, Buf.Text.size());
  return Buf.contentHash([&Buf] { return hashBytes(Buf.Text).hex(); });
}

} // namespace

bool CachePlanner::depsMatch(const std::vector<FileDep> &Deps) {
  for (const FileDep &Dep : Deps) {
    const SourceBuffer *Buf = Files.lookup(Dep.Name);
    if (!Buf) {
      if (Dep.Hash != "missing")
        return false;
      continue;
    }
    if (memoizedHash(*Buf) != Dep.Hash)
      return false;
  }
  return true;
}

void CachePlanner::probeInner(std::string_view ModuleName, CachePlan &Plan,
                              TokenBlockQueue *RawQueue,
                              const std::vector<std::string> *KnownClosure) {
  const SourceBuffer *ModBuf =
      Files.lookup(VirtualFileSystem::modFileName(ModuleName));
  if (!ModBuf)
    return; // Plan stays invalid; the driver reports the missing file.
  Plan.Valid = true;

  Plan.ModTextHash = memoizedHash(*ModBuf);

  KeyHasher MH;
  MH.combine(std::string_view("module"));
  combineFingerprint(MH);
  MH.combine(ModuleName);
  Plan.ModuleKey = MH.finish();

  // Whole-module fast path: the entry records the raw hashes of every
  // source it was built from; if all still match, the closure is
  // necessarily identical and the image can be replayed outright.
  if (auto Entry = Cache.lookupModule(Plan.ModuleKey, Interner)) {
    if (Entry->ModTextHash == Plan.ModTextHash && depsMatch(Entry->Deps)) {
      Cache.stats().add("cache.module.hit");
      Plan.ModuleHit = true;
      Plan.Deps = Entry->Deps;
      Plan.Module = std::move(Entry);
      return;
    }
    Cache.stats().add("cache.module.invalidated");
  } else {
    Cache.stats().add("cache.module.miss");
  }

  // Miss: the plan needs the module's interface closure as FileDeps.  The
  // module itself is lexed either way (planStreams consumes the queue);
  // the closure comes from either the caller's pre-discovered list or a
  // transitive IMPORT scan over every interface, exactly the recognition
  // the Importer tasks will repeat.  The probe lexes with a private
  // diagnostics engine — the real compilation re-lexes and reports.
  DiagnosticsEngine ProbeDiags;
  if (RawQueue) {
    Lexer Lex(*ModBuf, Interner, ProbeDiags);
    Lex.lexAll(*RawQueue);
  }

  auto AddDep = [this, &Plan](const std::string &FileName) {
    const SourceBuffer *Buf = Files.lookup(FileName);
    if (!Buf) {
      Plan.Deps.push_back(FileDep{FileName, "missing"});
      return Buf;
    }
    Plan.Deps.push_back(FileDep{FileName, memoizedHash(*Buf)});
    return Buf;
  };

  if (KnownClosure) {
    // Session-assisted path: dependency names were already discovered;
    // only the (memoized) content hashes are taken here.  The module's
    // own interface participates in every scope chain, so it is tracked
    // even when the caller's list omits it or the file is absent —
    // adding M.def later must invalidate.
    std::string SelfDef = VirtualFileSystem::defFileName(ModuleName);
    AddDep(SelfDef);
    for (const std::string &FileName : *KnownClosure)
      if (FileName != SelfDef)
        AddDep(FileName);
  } else {
    std::vector<Symbol> Worklist;
    if (RawQueue) {
      scanImports(*RawQueue, Worklist);
    } else {
      // Module-only probe (sequential driver): lex into a local queue.
      TokenBlockQueue Q("probe.raw." + std::string(ModuleName));
      Lexer Lex(*ModBuf, Interner, ProbeDiags);
      Lex.lexAll(Q);
      scanImports(Q, Worklist);
    }
    // Self-tracking, as above.
    Symbol Self = Interner.intern(ModuleName);
    if (std::find(Worklist.begin(), Worklist.end(), Self) == Worklist.end())
      Worklist.push_back(Self);

    std::vector<Symbol> Seen;
    for (size_t I = 0; I < Worklist.size(); ++I) {
      Symbol Name = Worklist[I];
      if (std::find(Seen.begin(), Seen.end(), Name) != Seen.end())
        continue;
      Seen.push_back(Name);
      const SourceBuffer *Buf =
          AddDep(VirtualFileSystem::defFileName(Interner.spelling(Name)));
      if (!Buf)
        continue;
      TokenBlockQueue Q("probe." + Buf->Name);
      Lexer Lex(*Buf, Interner, ProbeDiags);
      Lex.lexAll(Q);
      std::vector<Symbol> Imports;
      scanImports(Q, Imports);
      for (Symbol Imported : Imports)
        Worklist.push_back(Imported);
    }
  }
  std::sort(Plan.Deps.begin(), Plan.Deps.end(),
            [](const FileDep &A, const FileDep &B) { return A.Name < B.Name; });
}

void CachePlanner::planStreams(std::string_view ModuleName, CachePlan &Plan,
                               TokenBlockQueue &RawQueue) {
  // Re-run the real Splitter into private probe queues.  Using the same
  // recognizer over the same tokens guarantees the probe's stream tree —
  // names, nesting, discovery order — matches the concurrent run's.
  struct Probe {
    int Parent;
    std::string Qual;
    std::unique_ptr<TokenBlockQueue> Queue;
  };
  std::vector<Probe> Probes;
  Probes.push_back(Probe{-1, std::string(ModuleName),
                         std::make_unique<TokenBlockQueue>("probe.main")});

  SplitterHooks Hooks;
  Hooks.beginProc = [&](StreamHandle Parent, Symbol Name) -> StreamHandle {
    size_t ParentIdx = reinterpret_cast<uintptr_t>(Parent); // 0 == main
    std::string Qual =
        Probes[ParentIdx].Qual + "." + std::string(Interner.spelling(Name));
    size_t Idx = Probes.size();
    Probes.push_back(Probe{static_cast<int>(ParentIdx), Qual,
                           std::make_unique<TokenBlockQueue>("probe." + Qual)});
    return reinterpret_cast<StreamHandle>(static_cast<uintptr_t>(Idx));
  };
  Hooks.queueOf = [&](StreamHandle S) -> TokenBlockQueue & {
    return *Probes[reinterpret_cast<uintptr_t>(S)].Queue;
  };
  Hooks.endProc = [](StreamHandle, int64_t) {};
  Splitter Split(TokenBlockQueue::Reader(RawQueue), std::move(Hooks));
  Split.run();

  // Interface-closure hash: every stream's lookups can reach imported
  // interfaces, so all keys depend on it.
  KeyHasher IH;
  IH.combine(std::string_view("ifaces"));
  for (const FileDep &Dep : Plan.Deps) {
    IH.combine(std::string_view(Dep.Name));
    IH.combine(std::string_view(Dep.Hash));
  }
  CacheKey IfaceKey = IH.finish();

  // Per-stream declaration and full hashes.  declHash stops at the
  // stream's own body BEGIN: the main stream's leading MODULE keyword
  // opens one END-terminated construct, so its body BEGIN sits at depth
  // 1; procedure streams' at depth 0.
  std::vector<CacheKey> DeclKeys(Probes.size()), FullKeys(Probes.size());
  for (size_t I = 0; I < Probes.size(); ++I) {
    KeyHasher DeclH, FullH;
    bool InDecls = true;
    int Depth = 0;
    const int BodyDepth = I == 0 ? 1 : 0;
    TokenBlockQueue::Reader In(*Probes[I].Queue);
    while (true) {
      const Token &T = In.next();
      if (T.isEof())
        break;
      sched::ctx().charge(sched::CostKind::CacheProbe);
      combineToken(FullH, T, Interner);
      if (!InDecls)
        continue;
      if (T.is(TokenKind::KwBegin) && Depth == BodyDepth) {
        InDecls = false;
        continue;
      }
      if (Splitter::opensEnd(T.Kind))
        ++Depth;
      else if (T.is(TokenKind::KwEnd))
        --Depth;
      combineToken(DeclH, T, Interner);
    }
    DeclKeys[I] = DeclH.finish();
    FullKeys[I] = FullH.finish();
  }

  // Chain keys and probe the store.
  Plan.Streams.resize(Probes.size());
  for (size_t I = 0; I < Probes.size(); ++I) {
    StreamPlan &S = Plan.Streams[I];
    S.QualifiedName = Probes[I].Qual;
    S.Parent = Probes[I].Parent;

    KeyHasher KH;
    KH.combine(std::string_view("stream"));
    combineFingerprint(KH);
    KH.combine(IfaceKey);
    std::vector<int> Chain; // ancestors, outermost first
    for (int A = S.Parent; A >= 0; A = Probes[static_cast<size_t>(A)].Parent)
      Chain.push_back(A);
    std::reverse(Chain.begin(), Chain.end());
    for (int A : Chain)
      KH.combine(DeclKeys[static_cast<size_t>(A)]);
    KH.combine(FullKeys[I]);
    S.Key = KH.finish();

    S.Cached = Cache.lookupStream(S.Key, Interner);
    S.Hit = S.Cached.has_value();
  }

  // A stream's parse/sema must run if it missed or if any descendant
  // missed (descendants resolve names through this scope).  Children are
  // discovered after their parents, so one reverse sweep propagates the
  // requirement to the root.
  for (size_t I = Plan.Streams.size(); I-- > 0;)
    Plan.Streams[I].RunFrontEnd = !Plan.Streams[I].Hit;
  for (size_t I = Plan.Streams.size(); I-- > 1;)
    if (Plan.Streams[I].RunFrontEnd)
      Plan.Streams[static_cast<size_t>(Plan.Streams[I].Parent)].RunFrontEnd =
          true;
  // The main stream always re-runs its front end: it derives the image's
  // global layout and import list even when its own unit is cached.
  Plan.Streams[0].RunFrontEnd = true;
}

CachePlan CachePlanner::probeModule(std::string_view ModuleName) {
  CachePlan Plan;
  sched::SequentialContext Ctx(Cost);
  sched::ScopedContext Installed(Ctx);
  probeInner(ModuleName, Plan, nullptr, nullptr);
  Plan.ProbeUnits = Ctx.elapsedUnits();
  return Plan;
}

CachePlan CachePlanner::plan(std::string_view ModuleName,
                             const std::vector<std::string> *KnownClosure) {
  CachePlan Plan;
  sched::SequentialContext Ctx(Cost);
  sched::ScopedContext Installed(Ctx);
  TokenBlockQueue RawQueue("probe.raw");
  probeInner(ModuleName, Plan, &RawQueue, KnownClosure);
  if (Plan.Valid && !Plan.ModuleHit)
    planStreams(ModuleName, Plan, RawQueue);
  Plan.ProbeUnits = Ctx.elapsedUnits();
  return Plan;
}
