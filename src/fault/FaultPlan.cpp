//===--- FaultPlan.cpp - Deterministic fault injection --------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "fault/FaultPlan.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

namespace m2c {
namespace fault {

namespace detail {
std::atomic<FaultPlan *> ActivePlan{nullptr};
} // namespace detail

namespace {

// Retired plans are kept alive for the process lifetime so a hit() racing an
// installPlan() never touches freed memory.  Plans are a few hundred bytes
// and tests install at most a handful, so this never matters in practice.
std::mutex RetiredMutex;
std::vector<std::unique_ptr<FaultPlan>> &retiredPlans() {
  static std::vector<std::unique_ptr<FaultPlan>> Plans;
  return Plans;
}

// splitmix64: cheap, high-quality mixing for the probabilistic mode.  Using
// a stateless mix of (seed, point, hit-index) makes every decision a pure
// function of the plan — two runs with the same seed and the same per-point
// hit ordering inject identical faults.
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

uint64_t fnv1a(const std::string &S) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  return H;
}

bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + (uint64_t)(C - '0');
  }
  Out = V;
  return true;
}

bool parseProbability(const std::string &S, double &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  double V = std::strtod(S.c_str(), &End);
  if (!End || *End != '\0' || V < 0.0 || V > 1.0)
    return false;
  Out = V;
  return true;
}

// Installs a plan from the M2C_FAULTS environment variable before main()
// runs, so any binary in the tree can be driven externally.
struct EnvInit {
  EnvInit() {
    const char *Spec = std::getenv("M2C_FAULTS");
    if (!Spec || !*Spec)
      return;
    std::string Err;
    if (!installPlanFromSpec(Spec, Err))
      std::fprintf(stderr, "m2c: ignoring malformed M2C_FAULTS: %s\n",
                   Err.c_str());
  }
};
EnvInit TheEnvInit;

} // namespace

std::unique_ptr<FaultPlan> FaultPlan::parse(const std::string &Spec,
                                            std::string &Err) {
  std::unique_ptr<FaultPlan> Plan(new FaultPlan());
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Semi = Spec.find(';', Pos);
    std::string Entry = Spec.substr(
        Pos, Semi == std::string::npos ? std::string::npos : Semi - Pos);
    Pos = Semi == std::string::npos ? Spec.size() + 1 : Semi + 1;
    if (Entry.empty())
      continue;

    size_t Eq = Entry.find('=');
    if (Eq == std::string::npos || Eq == 0) {
      Err = "entry '" + Entry + "' is not <point>=<action>";
      return nullptr;
    }
    std::string Point = Entry.substr(0, Eq);
    std::string Action = Entry.substr(Eq + 1);

    if (Point == "seed") {
      if (!parseU64(Action, Plan->Seed)) {
        Err = "bad seed '" + Action + "'";
        return nullptr;
      }
      continue;
    }

    auto Rule = std::make_unique<FaultPlan::Rule>();

    // Strip modifiers from the back: '@N' and '~P' may appear in any order.
    for (;;) {
      size_t At = Action.find_last_of("@~");
      if (At == std::string::npos)
        break;
      std::string Mod = Action.substr(At + 1);
      if (Action[At] == '@') {
        uint64_t N = 0;
        if (!parseU64(Mod, N) || N == 0) {
          Err = "bad '@' modifier in '" + Entry + "' (want @N, N >= 1)";
          return nullptr;
        }
        Rule->OnlyHit = (uint32_t)N;
      } else {
        if (!parseProbability(Mod, Rule->Probability)) {
          Err = "bad '~' modifier in '" + Entry + "' (want ~P, 0 <= P <= 1)";
          return nullptr;
        }
      }
      Action.resize(At);
    }

    if (Action == "fail") {
      Rule->Kind = FaultKind::Fail;
    } else if (Action == "close") {
      Rule->Kind = FaultKind::Close;
    } else if (Action == "corrupt") {
      Rule->Kind = FaultKind::Corrupt;
    } else if (Action.rfind("delay:", 0) == 0) {
      std::string Ms = Action.substr(6);
      if (Ms.size() < 3 || Ms.substr(Ms.size() - 2) != "ms") {
        Err = "bad delay in '" + Entry + "' (want delay:<N>ms)";
        return nullptr;
      }
      uint64_t N = 0;
      if (!parseU64(Ms.substr(0, Ms.size() - 2), N)) {
        Err = "bad delay in '" + Entry + "' (want delay:<N>ms)";
        return nullptr;
      }
      Rule->Kind = FaultKind::Delay;
      Rule->DelayMs = (uint32_t)N;
    } else {
      Err = "unknown action '" + Action + "' in '" + Entry + "'";
      return nullptr;
    }

    Plan->Rules[Point] = std::move(Rule);
  }
  return Plan;
}

FaultOutcome FaultPlan::hit(const char *Point) {
  auto It = Rules.find(std::string_view(Point));
  if (It == Rules.end())
    return {};
  Rule &R = *It->second;
  // 1-based hit index; the fetch_add also serves as the per-point counter.
  uint64_t Index = R.Hits.fetch_add(1, std::memory_order_relaxed) + 1;

  if (R.OnlyHit != 0 && Index != R.OnlyHit)
    return {};
  if (R.Probability >= 0.0) {
    uint64_t Roll = mix64(Seed ^ fnv1a(It->first) ^ (Index * 0x9e3779b97f4a7c15ULL));
    double U = (double)(Roll >> 11) * (1.0 / 9007199254740992.0); // [0,1)
    if (U >= R.Probability)
      return {};
  }

  R.Injected.fetch_add(1, std::memory_order_relaxed);
  if (R.Kind == FaultKind::Delay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(R.DelayMs));
    return {FaultKind::Delay};
  }
  return {R.Kind};
}

std::map<std::string, uint64_t> FaultPlan::snapshot() const {
  std::map<std::string, uint64_t> Out;
  for (const auto &KV : Rules) {
    Out["fault.hits." + KV.first] =
        KV.second->Hits.load(std::memory_order_relaxed);
    Out["fault.injected." + KV.first] =
        KV.second->Injected.load(std::memory_order_relaxed);
  }
  return Out;
}

FaultPlan *installPlan(std::unique_ptr<FaultPlan> Plan) {
  FaultPlan *Raw = Plan.get();
  {
    std::lock_guard<std::mutex> Lock(RetiredMutex);
    if (Plan)
      retiredPlans().push_back(std::move(Plan));
  }
  detail::ActivePlan.store(Raw, std::memory_order_release);
  return Raw;
}

bool installPlanFromSpec(const std::string &Spec, std::string &Err) {
  auto Plan = FaultPlan::parse(Spec, Err);
  if (!Plan)
    return false;
  installPlan(std::move(Plan));
  return true;
}

FaultPlan *activePlan() {
  return detail::ActivePlan.load(std::memory_order_acquire);
}

std::map<std::string, uint64_t> statsSnapshot() {
  if (FaultPlan *Plan = activePlan())
    return Plan->snapshot();
  return {};
}

namespace detail {
FaultOutcome hitSlow(const char *Point) {
  if (FaultPlan *Plan = ActivePlan.load(std::memory_order_acquire))
    return Plan->hit(Point);
  return {};
}
} // namespace detail

} // namespace fault
} // namespace m2c
