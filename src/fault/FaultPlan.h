//===--- FaultPlan.h - Deterministic fault injection -----------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide fault injection for robustness testing.  A FaultPlan maps
/// named failpoints (e.g. "cache.disk.write", "net.send") to actions that
/// fire deterministically (on the Nth hit) or probabilistically (seeded, so
/// a given seed always injects the same faults at the same hit indices).
///
/// Spec grammar (the M2C_FAULTS environment variable uses the same syntax):
///
///   spec    := entry (';' entry)*
///   entry   := "seed" '=' <u64>
///            | <point> '=' action modifier*
///   action  := "fail" | "close" | "corrupt" | "delay" ':' <u32> "ms"
///   modifier:= '@' <u32>     -- fire only on the Nth hit of the point (1-based)
///            | '~' <float>   -- fire with probability P in [0,1] per hit
///
/// Examples:
///   M2C_FAULTS="cache.disk.write=fail@3;net.send=close@1"
///   M2C_FAULTS="seed=42;cache.disk.write=corrupt~0.05;daemon.build=fail~0.02"
///
/// Hooks compile to a single relaxed atomic load when no plan is installed,
/// so production builds pay nothing for carrying the failpoints.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_FAULT_FAULTPLAN_H
#define M2C_FAULT_FAULTPLAN_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>

namespace m2c {
namespace fault {

/// What an armed failpoint does when it fires.
enum class FaultKind : uint8_t {
  None,    ///< Nothing injected this hit.
  Fail,    ///< The operation reports failure without being attempted.
  Close,   ///< A connection-oriented operation tears the connection down.
  Corrupt, ///< The operation completes but its payload is damaged.
  Delay,   ///< The operation is delayed (sleep already applied by hit()).
};

/// Result of consulting a failpoint.  Delay faults are applied inside
/// FaultPlan::hit() itself; callers only need to branch on fail/close/corrupt.
struct FaultOutcome {
  FaultKind Kind = FaultKind::None;

  bool fired() const { return Kind != FaultKind::None; }
  bool fail() const { return Kind == FaultKind::Fail; }
  bool close() const { return Kind == FaultKind::Close; }
  bool corrupt() const { return Kind == FaultKind::Corrupt; }
};

/// Thrown by layers (e.g. service admission) that surface injected faults as
/// exceptions.  Carries the failpoint name for diagnostics.
class InjectedFault : public std::runtime_error {
public:
  explicit InjectedFault(const std::string &Point)
      : std::runtime_error("injected fault at " + Point), Point(Point) {}

  const std::string Point;
};

/// A parsed fault plan: one rule per failpoint plus a seed for the
/// probabilistic mode.  Thread-safe; hit() may be called concurrently.
class FaultPlan {
public:
  /// Parses \p Spec (grammar above).  Returns nullptr and sets \p Err on a
  /// malformed spec.
  static std::unique_ptr<FaultPlan> parse(const std::string &Spec,
                                          std::string &Err);

  /// Consults the failpoint named \p Point.  Bumps per-point counters,
  /// applies any delay in-line, and returns the injected outcome (or an
  /// empty outcome when the point is unarmed / does not fire this hit).
  FaultOutcome hit(const char *Point);

  /// Per-point counters: "fault.hits.<point>" (times consulted) and
  /// "fault.injected.<point>" (times a fault actually fired).
  std::map<std::string, uint64_t> snapshot() const;

  uint64_t seed() const { return Seed; }

private:
  struct Rule {
    FaultKind Kind = FaultKind::None;
    uint32_t DelayMs = 0;     ///< For Delay actions.
    uint32_t OnlyHit = 0;     ///< '@N': fire only on hit N (0 = every hit).
    double Probability = -1;  ///< '~P': fire with probability P (<0 = always).
    std::atomic<uint64_t> Hits{0};
    std::atomic<uint64_t> Injected{0};
  };

  FaultPlan() = default;

  uint64_t Seed = 1;
  // Built once by parse(), immutable afterwards, so hit() can read the map
  // without a lock; only the per-rule atomics mutate.
  std::map<std::string, std::unique_ptr<Rule>, std::less<>> Rules;
};

/// Installs \p Plan as the process-wide active plan (replacing any previous
/// one) and returns a borrowed pointer to it.  Pass nullptr to disable
/// injection.  The previous plan is retired, not freed immediately, so
/// in-flight hit() calls on other threads stay valid for the process
/// lifetime (plans are tiny; tests install a handful per run).
FaultPlan *installPlan(std::unique_ptr<FaultPlan> Plan);

/// Parses \p Spec and installs the result.  Returns false and sets \p Err on
/// a malformed spec (leaving the previous plan active).
bool installPlanFromSpec(const std::string &Spec, std::string &Err);

/// The active plan, or nullptr when injection is disabled.
FaultPlan *activePlan();

/// True when a plan is installed.  This is the zero-cost fast-path check:
/// one relaxed atomic load.
bool active();

/// Counter snapshot of the active plan (empty when disabled).
std::map<std::string, uint64_t> statsSnapshot();

namespace detail {
extern std::atomic<FaultPlan *> ActivePlan;
FaultOutcome hitSlow(const char *Point);
} // namespace detail

inline bool active() {
  return detail::ActivePlan.load(std::memory_order_acquire) != nullptr;
}

} // namespace fault
} // namespace m2c

/// Consults a failpoint.  Expands to an empty outcome via a single relaxed
/// load when no plan is installed.
#define M2C_FAULT_HIT(Point)                                                   \
  (::m2c::fault::active() ? ::m2c::fault::detail::hitSlow(Point)               \
                          : ::m2c::fault::FaultOutcome{})

#endif // M2C_FAULT_FAULTPLAN_H
