//===--- Merger.h - Order-independent code merging --------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "At the end of compilation, a merge task concatenates the output of
/// separate code generation streams to form the complete compiler
/// result.  Because the unit of merging is the code for an entire
/// procedure, this concatenation can be done in any order and
/// concurrently with other compiler activity." (paper section 3)
///
//===----------------------------------------------------------------------===//

#ifndef M2C_CODEGEN_MERGER_H
#define M2C_CODEGEN_MERGER_H

#include "codegen/MCode.h"
#include "codegen/TypeDescBuilder.h"
#include "symtab/Scope.h"

#include <mutex>

namespace m2c::codegen {

/// Collects per-stream CodeUnits (in any order, from any task) and
/// assembles the ModuleImage.
class Merger {
public:
  explicit Merger(Symbol ModuleName) { Image.ModuleName = ModuleName; }
  Merger(const Merger &) = delete;
  Merger &operator=(const Merger &) = delete;

  /// Adds one stream's code.  Thread-safe; charges MergeUnit.
  void addUnit(CodeUnit Unit);

  /// Records the module's direct imports (for link-time initialization
  /// order).  Thread-safe.
  void setImports(std::vector<Symbol> Imports);

  /// Derives the module's global-variable layout from the completed
  /// module scope and (when the module has one) its own interface scope,
  /// whose variables occupy the front of the frame.  Call once, after
  /// both declaration analyses completed.
  void setGlobalsFrom(const symtab::Scope &ModuleScope,
                      const symtab::Scope *OwnInterface = nullptr);

  /// Produces the final image.  Units are ordered deterministically
  /// (body first, procedures by qualified name) so that concurrent and
  /// sequential compilations of the same source compare equal.
  ModuleImage finalize();

  /// Number of units merged so far.
  size_t unitCount() const;

private:
  mutable std::mutex Mutex;
  ModuleImage Image;
  TypeDescCache DescCache;
};

} // namespace m2c::codegen

#endif // M2C_CODEGEN_MERGER_H
