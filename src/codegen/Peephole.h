//===--- Peephole.h - MCode peephole optimization ---------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small per-unit peephole pass: constant folding of integer and
/// boolean operations, algebraic identities, comparison/NOT fusion, jump
/// threading and dead-jump elimination.  Because the unit is the whole
/// optimization scope, the pass composes with concurrent compilation for
/// free: each Statement-Analyzer/Code-Generator task optimizes its own
/// stream independently.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_CODEGEN_PEEPHOLE_H
#define M2C_CODEGEN_PEEPHOLE_H

#include "codegen/MCode.h"

namespace m2c::codegen {

/// Statistics of one optimization run.
struct PeepholeStats {
  unsigned Folded = 0;    ///< Constant operations evaluated at compile time.
  unsigned Fused = 0;     ///< Compare/NOT and identity rewrites.
  unsigned Threaded = 0;  ///< Jump-to-jump chains shortened.
  unsigned Removed = 0;   ///< Instructions deleted.
};

/// Optimizes \p Unit in place.  Idempotent; preserves semantics exactly
/// (operations that could trap at run time — division, range checks —
/// are never folded away).
PeepholeStats optimizeUnit(CodeUnit &Unit);

} // namespace m2c::codegen

#endif // M2C_CODEGEN_PEEPHOLE_H
