//===--- ObjectFile.h - Textual MCode object files --------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialization of ModuleImages to a line-oriented text object format
/// (".mco"), so modules can be compiled separately, shipped as files and
/// linked later — the separate-compilation workflow the paper's module
/// system exists for.  The format round-trips exactly (reals are written
/// as hex floats).
///
//===----------------------------------------------------------------------===//

#ifndef M2C_CODEGEN_OBJECTFILE_H
#define M2C_CODEGEN_OBJECTFILE_H

#include "codegen/MCode.h"

#include <optional>
#include <string>
#include <string_view>

namespace m2c::codegen {

/// Renders \p Image as a .mco text object.
std::string writeObjectFile(const ModuleImage &Image,
                            const StringInterner &Names);

/// Parses a .mco text object.  Symbols are re-interned into \p Names.
/// Returns std::nullopt and sets \p Error on malformed input.
std::optional<ModuleImage> readObjectFile(std::string_view Text,
                                          StringInterner &Names,
                                          std::string &Error);

} // namespace m2c::codegen

#endif // M2C_CODEGEN_OBJECTFILE_H
