//===--- TypeDescBuilder.h - Aggregate shape descriptors --------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#ifndef M2C_CODEGEN_TYPEDESCBUILDER_H
#define M2C_CODEGEN_TYPEDESCBUILDER_H

#include "codegen/MCode.h"
#include "sema/Type.h"

#include <unordered_map>
#include <vector>

namespace m2c::codegen {

/// Cache for interning TypeDescs into one descriptor table.
using TypeDescCache = std::unordered_map<const sema::Type *, int32_t>;

/// Interns the runtime shape descriptor for \p Ty into \p Table,
/// returning its index.  Pointers break recursion (a pointer slot is a
/// scalar regardless of pointee shape).
int32_t internTypeDesc(const sema::Type *Ty, std::vector<TypeDesc> &Table,
                       TypeDescCache &Cache);

} // namespace m2c::codegen

#endif // M2C_CODEGEN_TYPEDESCBUILDER_H
