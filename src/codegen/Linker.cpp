//===--- Linker.cpp - Cross-module qualified-name linking -----------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "codegen/Linker.h"

#include <functional>

using namespace m2c;
using namespace m2c::codegen;

int32_t LinkedProgram::findUnit(Symbol Module, const std::string &Name) const {
  auto It =
      UnitByName.find(std::string(Names->spelling(Module)) + "." + Name);
  return It == UnitByName.end() ? -1 : It->second;
}

LinkedProgram Linker::link() {
  LinkedProgram P;
  P.Names = &Names;
  P.Images = std::move(Images);
  Images.clear();

  for (size_t M = 0; M < P.Images.size(); ++M) {
    if (!P.ModuleBySymbol
             .emplace(P.Images[M].ModuleName.id(), static_cast<int32_t>(M))
             .second) {
      P.Errors.push_back("duplicate module '" +
                         std::string(Names.spelling(P.Images[M].ModuleName)) +
                         "'");
      continue;
    }
    for (const CodeUnit &U : P.Images[M].Units) {
      // Procedure qualified names already carry the module prefix; body
      // units get a reserved suffix so they never clash with procedures.
      std::string Key =
          U.IsModuleBody ? U.QualifiedName + ".<body>" : U.QualifiedName;
      LinkedUnit LU;
      LU.Unit = &U;
      LU.ModuleIndex = static_cast<int32_t>(M);
      LU.SelfIndex = static_cast<int32_t>(P.Units.size());
      P.Units.push_back(std::move(LU));
      if (!P.UnitByName
               .emplace(Key, static_cast<int32_t>(P.Units.size() - 1))
               .second)
        P.Errors.push_back("duplicate code unit '" + Key + "'");
    }
  }

  // Validate units before resolving: images may come from .mco files on
  // disk, so every operand that indexes a per-unit table or the frame
  // must be checked once here instead of trusted at execution time.
  // The same walk counts backward jumps (LinkedUnit::BackedgeCount).
  for (LinkedUnit &LU : P.Units) {
    const CodeUnit &U = *LU.Unit;
    if (U.Params.size() > U.FrameSize)
      P.Errors.push_back("unit '" + U.QualifiedName +
                         "' declares more parameters than frame slots");
    auto Bad = [&](size_t Pc, const char *What) {
      P.Errors.push_back("unit '" + U.QualifiedName + "' +" +
                         std::to_string(Pc) + ": " + What);
    };
    for (size_t Pc = 0; Pc < U.Code.size(); ++Pc) {
      const Instr &In = U.Code[Pc];
      switch (In.Op) {
      case Opcode::LoadLocal:
      case Opcode::StoreLocal:
      case Opcode::LoadLocalRef:
        if (In.A < 0 || In.A >= static_cast<int64_t>(U.FrameSize))
          Bad(Pc, "frame slot out of range");
        break;
      // LoadEnclosing/StoreEnclosing/LoadEnclosingRef index the enclosing
      // procedure's frame, whose size is not knowable per-unit here; the
      // interpreter bounds-checks them at execution time.
      case Opcode::LoadGlobal:
      case Opcode::StoreGlobal:
      case Opcode::LoadGlobalRef:
        if (In.A < 0 || In.A >= static_cast<int64_t>(U.Globals.size()))
          Bad(Pc, "global-reference index out of range");
        break;
      case Opcode::PushStr:
        if (In.A < 0 || In.A >= static_cast<int64_t>(U.Strings.size()))
          Bad(Pc, "string index out of range");
        break;
      case Opcode::Call:
      case Opcode::PushProc:
        if (In.A < 0 || In.A >= static_cast<int64_t>(U.Callees.size()))
          Bad(Pc, "callee index out of range");
        break;
      case Opcode::PushAggregate:
      case Opcode::NewCell:
        if (In.A < 0 || In.A >= static_cast<int64_t>(U.Descs.size()))
          Bad(Pc, "type-descriptor index out of range");
        break;
      case Opcode::Jump:
      case Opcode::JumpIfFalse:
      case Opcode::JumpIfTrue:
        if (In.A < 0 || In.A > static_cast<int64_t>(U.Code.size()))
          Bad(Pc, "jump target out of range");
        else if (In.A <= static_cast<int64_t>(Pc))
          ++LU.BackedgeCount;
        break;
      default:
        break;
      }
    }
  }

  // Resolve callees and globals.
  for (LinkedUnit &LU : P.Units) {
    for (const CalleeRef &Ref : LU.Unit->Callees) {
      std::string Key = std::string(Names.spelling(Ref.Module)) + "." +
                        std::string(Names.spelling(Ref.Name));
      auto It = P.UnitByName.find(Key);
      if (It == P.UnitByName.end()) {
        P.Errors.push_back("unresolved procedure '" + Key +
                           "' referenced by " + LU.Unit->QualifiedName);
        LU.Callees.push_back(-1);
      } else {
        LU.Callees.push_back(It->second);
      }
    }
    for (const GlobalRef &Ref : LU.Unit->Globals) {
      auto It = P.ModuleBySymbol.find(Ref.Module.id());
      if (It == P.ModuleBySymbol.end()) {
        P.Errors.push_back("unresolved module '" +
                           std::string(Names.spelling(Ref.Module)) +
                           "' referenced by " + LU.Unit->QualifiedName);
        LU.Globals.push_back(LinkedUnit::GlobalSlot{-1, 0});
      } else {
        LU.Globals.push_back(LinkedUnit::GlobalSlot{It->second, Ref.Slot});
      }
    }
  }

  // Initialization order: imports before importers (DFS; import cycles
  // are broken arbitrarily, matching separate compilation practice).
  std::vector<int8_t> State(P.Images.size(), 0);
  std::function<void(int32_t)> Visit = [&](int32_t M) {
    if (State[static_cast<size_t>(M)] != 0)
      return;
    State[static_cast<size_t>(M)] = 1;
    for (Symbol Import : P.Images[static_cast<size_t>(M)].Imports) {
      auto It = P.ModuleBySymbol.find(Import.id());
      if (It != P.ModuleBySymbol.end())
        Visit(It->second);
    }
    State[static_cast<size_t>(M)] = 2;
    P.InitOrder.push_back(M);
  };
  for (size_t M = 0; M < P.Images.size(); ++M)
    Visit(static_cast<int32_t>(M));

  return P;
}
