//===--- ObjectFile.cpp - Textual MCode object files -----------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "codegen/ObjectFile.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <unordered_map>

using namespace m2c;
using namespace m2c::codegen;

namespace {

constexpr const char *Magic = "MCOBJ 1";

/// Strings are written with minimal escaping (\\, \n, \" and \xNN for
/// other control characters).
std::string escape(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size() + 2);
  for (unsigned char C : Text) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '"':
      Out += "\\\"";
      break;
    default:
      if (C < 0x20 || C == 0x7f) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\x%02x", C);
        Out += Buf;
      } else {
        Out.push_back(static_cast<char>(C));
      }
    }
  }
  return Out;
}

bool unescape(std::string_view Text, std::string &Out) {
  Out.clear();
  for (size_t I = 0; I < Text.size(); ++I) {
    if (Text[I] != '\\') {
      Out.push_back(Text[I]);
      continue;
    }
    if (++I >= Text.size())
      return false;
    switch (Text[I]) {
    case '\\':
      Out.push_back('\\');
      break;
    case 'n':
      Out.push_back('\n');
      break;
    case '"':
      Out.push_back('"');
      break;
    case 'x': {
      if (I + 2 >= Text.size())
        return false;
      unsigned Value = 0;
      if (std::sscanf(std::string(Text.substr(I + 1, 2)).c_str(), "%x",
                      &Value) != 1)
        return false;
      Out.push_back(static_cast<char>(Value));
      I += 2;
      break;
    }
    default:
      return false;
    }
  }
  return true;
}

const std::unordered_map<std::string_view, Opcode> &opcodeByName() {
  static const std::unordered_map<std::string_view, Opcode> Table = [] {
    std::unordered_map<std::string_view, Opcode> T;
#define OPCODE(Name) T.emplace(#Name, Opcode::Name);
#include "codegen/Opcode.def"
    return T;
  }();
  return Table;
}

/// Line-by-line cursor over the object text.
class LineReader {
public:
  explicit LineReader(std::string_view Text) : Text(Text) {}

  /// Next line (without the newline); empty optional at end of input.
  std::optional<std::string_view> next() {
    if (Pos >= Text.size())
      return std::nullopt;
    size_t End = Text.find('\n', Pos);
    if (End == std::string_view::npos)
      End = Text.size();
    std::string_view Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    ++LineNo;
    return Line;
  }

  unsigned line() const { return LineNo; }

private:
  std::string_view Text;
  size_t Pos = 0;
  unsigned LineNo = 0;
};

} // namespace

std::string codegen::writeObjectFile(const ModuleImage &Image,
                                     const StringInterner &Names) {
  std::ostringstream OS;
  auto Spell = [&](Symbol S) { return escape(Names.spelling(S)); };

  OS << Magic << "\n";
  OS << "MODULE \"" << Spell(Image.ModuleName) << "\"\n";
  OS << "GLOBALS " << Image.GlobalCount << "\n";
  OS << "IMPORTS " << Image.Imports.size();
  for (Symbol S : Image.Imports)
    OS << " \"" << Spell(S) << "\"";
  OS << "\n";
  OS << "GDESCS " << Image.GlobalDescs.size();
  for (int32_t D : Image.GlobalDescs)
    OS << " " << D;
  OS << "\n";
  OS << "DESCS " << Image.Descs.size() << "\n";
  for (const TypeDesc &D : Image.Descs) {
    OS << "DESC " << static_cast<int>(D.DescKind) << " " << D.Count << " "
       << D.Element;
    OS << " " << D.Fields.size();
    for (int32_t F : D.Fields)
      OS << " " << F;
    OS << "\n";
  }

  OS << "UNITS " << Image.Units.size() << "\n";
  for (const CodeUnit &U : Image.Units) {
    OS << "UNIT \"" << escape(U.QualifiedName) << "\" \"" << Spell(U.Module)
       << "\" \"" << Spell(U.Name) << "\" " << U.ProcId << " "
       << (U.IsModuleBody ? 1 : 0) << " " << U.NestLevel << " "
       << U.FrameSize << " " << U.Weight << "\n";
    OS << "PARAMS " << U.Params.size();
    for (const ParamDesc &P : U.Params)
      OS << " " << (P.IsVar ? (P.IsAggregate ? "va" : "v")
                            : (P.IsAggregate ? "a" : "."));
    OS << "\n";
    OS << "CALLEES " << U.Callees.size() << "\n";
    for (const CalleeRef &C : U.Callees)
      OS << "CALLEE \"" << Spell(C.Module) << "\" \"" << Spell(C.Name)
         << "\"\n";
    OS << "GLOBALREFS " << U.Globals.size() << "\n";
    for (const GlobalRef &G : U.Globals)
      OS << "GLOBALREF \"" << Spell(G.Module) << "\" " << G.Slot << "\n";
    OS << "UDESCS " << U.Descs.size() << "\n";
    for (const TypeDesc &D : U.Descs) {
      OS << "DESC " << static_cast<int>(D.DescKind) << " " << D.Count << " "
         << D.Element << " " << D.Fields.size();
      for (int32_t F : D.Fields)
        OS << " " << F;
      OS << "\n";
    }
    OS << "STRINGS " << U.Strings.size() << "\n";
    for (Symbol S : U.Strings)
      OS << "STRING \"" << Spell(S) << "\"\n";
    OS << "CODE " << U.Code.size() << "\n";
    for (const Instr &I : U.Code) {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%a", I.F);
      OS << opcodeName(I.Op) << " " << I.A << " " << I.B << " " << Buf
         << "\n";
    }
  }
  OS << "END\n";
  return OS.str();
}

namespace {

/// Splits one line into whitespace-separated fields, where quoted fields
/// may contain spaces.  Returns false on unterminated quotes.
bool splitFields(std::string_view Line, std::vector<std::string> &Out) {
  Out.clear();
  size_t I = 0;
  while (I < Line.size()) {
    while (I < Line.size() && Line[I] == ' ')
      ++I;
    if (I >= Line.size())
      break;
    if (Line[I] == '"') {
      size_t End = I + 1;
      // A backslash escapes the next character; skipping escape pairs
      // keeps an escaped quote (or a trailing escaped backslash) from
      // being mistaken for the terminator.
      while (End < Line.size() && Line[End] != '"') {
        if (Line[End] == '\\')
          ++End;
        ++End;
      }
      if (End >= Line.size())
        return false;
      std::string Raw;
      if (!unescape(Line.substr(I + 1, End - I - 1), Raw))
        return false;
      Out.push_back(std::move(Raw));
      I = End + 1;
    } else {
      size_t End = Line.find(' ', I);
      if (End == std::string_view::npos)
        End = Line.size();
      Out.emplace_back(Line.substr(I, End - I));
      I = End;
    }
  }
  return true;
}

} // namespace

std::optional<ModuleImage>
codegen::readObjectFile(std::string_view Text, StringInterner &Names,
                        std::string &Error) {
  LineReader Reader(Text);
  std::vector<std::string> F;
  auto Fail = [&](const std::string &Message) {
    Error = "line " + std::to_string(Reader.line()) + ": " + Message;
    return std::nullopt;
  };
  auto Need = [&](const char *Tag, size_t MinFields) -> bool {
    auto Line = Reader.next();
    if (!Line || !splitFields(*Line, F) || F.empty() || F[0] != Tag ||
        F.size() < MinFields)
      return false;
    return true;
  };
  auto ReadDesc = [&](TypeDesc &D) -> bool {
    if (!Need("DESC", 5))
      return false;
    D.DescKind = static_cast<TypeDesc::Kind>(std::atoi(F[1].c_str()));
    D.Count = std::atoll(F[2].c_str());
    D.Element = static_cast<int32_t>(std::atoi(F[3].c_str()));
    size_t NumFields = static_cast<size_t>(std::atoll(F[4].c_str()));
    if (F.size() != 5 + NumFields)
      return false;
    for (size_t J = 0; J < NumFields; ++J)
      D.Fields.push_back(static_cast<int32_t>(std::atoi(F[5 + J].c_str())));
    return true;
  };

  {
    auto Line = Reader.next();
    if (!Line || *Line != Magic)
      return Fail("not an MCOBJ file");
  }

  ModuleImage Image;
  if (!Need("MODULE", 2))
    return Fail("bad MODULE line");
  Image.ModuleName = Names.intern(F[1]);

  if (!Need("GLOBALS", 2))
    return Fail("bad GLOBALS line");
  Image.GlobalCount = static_cast<uint32_t>(std::atoll(F[1].c_str()));

  if (!Need("IMPORTS", 2))
    return Fail("bad IMPORTS line");
  {
    size_t N = static_cast<size_t>(std::atoll(F[1].c_str()));
    if (F.size() != 2 + N)
      return Fail("bad IMPORTS count");
    for (size_t J = 0; J < N; ++J)
      Image.Imports.push_back(Names.intern(F[2 + J]));
  }

  if (!Need("GDESCS", 2))
    return Fail("bad GDESCS line");
  {
    size_t N = static_cast<size_t>(std::atoll(F[1].c_str()));
    if (F.size() != 2 + N)
      return Fail("bad GDESCS count");
    for (size_t J = 0; J < N; ++J)
      Image.GlobalDescs.push_back(
          static_cast<int32_t>(std::atoi(F[2 + J].c_str())));
  }

  if (!Need("DESCS", 2))
    return Fail("bad DESCS line");
  for (size_t N = static_cast<size_t>(std::atoll(F[1].c_str())), J = 0;
       J < N; ++J) {
    TypeDesc D;
    if (!ReadDesc(D))
      return Fail("bad DESC line");
    Image.Descs.push_back(std::move(D));
  }

  if (!Need("UNITS", 2))
    return Fail("bad UNITS line");
  size_t NumUnits = static_cast<size_t>(std::atoll(F[1].c_str()));
  for (size_t UI = 0; UI < NumUnits; ++UI) {
    if (!Need("UNIT", 9))
      return Fail("bad UNIT line");
    CodeUnit U;
    U.QualifiedName = F[1];
    U.Module = Names.intern(F[2]);
    U.Name = Names.intern(F[3]);
    U.ProcId = static_cast<int32_t>(std::atoi(F[4].c_str()));
    U.IsModuleBody = F[5] == "1";
    U.NestLevel = static_cast<uint32_t>(std::atoll(F[6].c_str()));
    U.FrameSize = static_cast<uint32_t>(std::atoll(F[7].c_str()));
    U.Weight = std::atoll(F[8].c_str());

    if (!Need("PARAMS", 2))
      return Fail("bad PARAMS line");
    {
      size_t N = static_cast<size_t>(std::atoll(F[1].c_str()));
      if (F.size() != 2 + N)
        return Fail("bad PARAMS count");
      for (size_t J = 0; J < N; ++J) {
        ParamDesc P;
        P.IsVar = F[2 + J].find('v') != std::string::npos;
        P.IsAggregate = F[2 + J].find('a') != std::string::npos;
        U.Params.push_back(P);
      }
    }

    if (!Need("CALLEES", 2))
      return Fail("bad CALLEES line");
    for (size_t N = static_cast<size_t>(std::atoll(F[1].c_str())), J = 0;
         J < N; ++J) {
      if (!Need("CALLEE", 3))
        return Fail("bad CALLEE line");
      U.Callees.push_back(
          CalleeRef{Names.intern(F[1]), Names.intern(F[2])});
    }

    if (!Need("GLOBALREFS", 2))
      return Fail("bad GLOBALREFS line");
    for (size_t N = static_cast<size_t>(std::atoll(F[1].c_str())), J = 0;
         J < N; ++J) {
      if (!Need("GLOBALREF", 3))
        return Fail("bad GLOBALREF line");
      U.Globals.push_back(GlobalRef{
          Names.intern(F[1]), static_cast<int32_t>(std::atoi(F[2].c_str()))});
    }

    if (!Need("UDESCS", 2))
      return Fail("bad UDESCS line");
    for (size_t N = static_cast<size_t>(std::atoll(F[1].c_str())), J = 0;
         J < N; ++J) {
      TypeDesc D;
      if (!ReadDesc(D))
        return Fail("bad unit DESC line");
      U.Descs.push_back(std::move(D));
    }

    if (!Need("STRINGS", 2))
      return Fail("bad STRINGS line");
    for (size_t N = static_cast<size_t>(std::atoll(F[1].c_str())), J = 0;
         J < N; ++J) {
      if (!Need("STRING", 2))
        return Fail("bad STRING line");
      U.Strings.push_back(Names.intern(F[1]));
    }

    if (!Need("CODE", 2))
      return Fail("bad CODE line");
    for (size_t N = static_cast<size_t>(std::atoll(F[1].c_str())), J = 0;
         J < N; ++J) {
      auto Line = Reader.next();
      if (!Line || !splitFields(*Line, F) || F.size() != 4)
        return Fail("bad instruction line");
      auto It = opcodeByName().find(F[0]);
      if (It == opcodeByName().end())
        return Fail("unknown opcode '" + F[0] + "'");
      Instr I;
      I.Op = It->second;
      I.A = std::atoll(F[1].c_str());
      I.B = std::atoll(F[2].c_str());
      I.F = std::strtod(F[3].c_str(), nullptr); // %a hex-float round-trip
      U.Code.push_back(I);
    }
    Image.Units.push_back(std::move(U));
  }

  {
    auto Line = Reader.next();
    if (!Line || *Line != "END")
      return Fail("missing END");
  }
  return Image;
}
