//===--- Merger.cpp - Order-independent code merging ----------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "codegen/Merger.h"

#include "sched/ExecContext.h"

#include <algorithm>

using namespace m2c;
using namespace m2c::codegen;

void Merger::addUnit(CodeUnit Unit) {
  sched::ctx().charge(sched::CostKind::MergeUnit);
  std::lock_guard<std::mutex> Lock(Mutex);
  Image.Units.push_back(std::move(Unit));
}

void Merger::setImports(std::vector<Symbol> Imports) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Image.Imports = std::move(Imports);
}

void Merger::setGlobalsFrom(const symtab::Scope &ModuleScope,
                            const symtab::Scope *OwnInterface) {
  std::lock_guard<std::mutex> Lock(Mutex);
  // Globals are laid out by slot index; the interface's variables (when
  // present) occupy the front of the frame and the implementation's
  // continue after them.  entries() is insertion order, so sort by slot.
  std::vector<const symtab::SymbolEntry *> Vars;
  auto Collect = [&Vars](const symtab::Scope &S) {
    for (const symtab::SymbolEntry *E : S.entries())
      if (E->Kind == symtab::EntryKind::Var && E->IsGlobal &&
          E->OwnerScope == &S)
        Vars.push_back(E);
  };
  if (OwnInterface)
    Collect(*OwnInterface);
  Collect(ModuleScope);
  std::sort(Vars.begin(), Vars.end(),
            [](const symtab::SymbolEntry *A, const symtab::SymbolEntry *B) {
              return A->Slot < B->Slot;
            });
  Image.GlobalCount = static_cast<uint32_t>(Vars.size());
  Image.GlobalDescs.clear();
  for (const symtab::SymbolEntry *E : Vars)
    Image.GlobalDescs.push_back(
        internTypeDesc(E->Ty, Image.Descs, DescCache));
}

ModuleImage Merger::finalize() {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::sort(Image.Units.begin(), Image.Units.end(),
            [](const CodeUnit &A, const CodeUnit &B) {
              if (A.IsModuleBody != B.IsModuleBody)
                return A.IsModuleBody;
              return A.QualifiedName < B.QualifiedName;
            });
  // Procedure ids are allocated in task-completion order, which varies
  // between schedules (and between fresh and cache-replayed units).
  // Renumber in sorted order so the image — and its .mco rendering — is a
  // pure function of the source.  Callees are resolved by qualified name
  // at link time, so the ids are only a stable labeling.
  int32_t NextId = 0;
  for (CodeUnit &U : Image.Units)
    if (!U.IsModuleBody)
      U.ProcId = NextId++;
  return std::move(Image);
}

size_t Merger::unitCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Image.Units.size();
}
