//===--- CodeGenerator.h - Statement analysis and code emission -*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Statement-Analyzer/Code-Generator task: semantic analysis of
/// statements is deferred out of the Parser/Declarations-Analyzer task
/// and combined with code generation here, in one pass per stream (paper
/// section 3) — by the time these tasks run there are "almost always
/// enough of these tasks to ensure that all processors are fully
/// utilized", so no further partitioning is needed.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_CODEGEN_CODEGENERATOR_H
#define M2C_CODEGEN_CODEGENERATOR_H

#include "ast/Decl.h"
#include "codegen/MCode.h"
#include "opt/PassManager.h"
#include "sema/Compilation.h"
#include "sema/ConstEval.h"

#include <unordered_map>

namespace m2c::codegen {

/// Generates the CodeUnit for one stream (a procedure or the module
/// body), performing statement/expression semantic analysis as it goes.
class CodeGenerator {
public:
  /// \p Self is the unit's scope (procedure scope with parameters and
  /// locals declared, or the module scope for the body unit).  When
  /// \p Passes is non-null every finished unit is run through it before
  /// being handed back (one shared manager serves all concurrent codegen
  /// tasks; pass counters land in \p OptStats when non-null).
  CodeGenerator(sema::Compilation &Comp, symtab::Scope &Self, Symbol Module,
                const opt::PassManager *Passes = nullptr,
                StatisticSet *OptStats = nullptr);

  /// Generates code for procedure \p Entry with body statements \p Body.
  /// \p QualifiedName is "Mod.Outer.Inner"; \p NestLevel is 1 for
  /// module-level procedures.
  CodeUnit generateProcedure(const symtab::SymbolEntry &Entry,
                             const ast::StmtList &Body,
                             std::string QualifiedName, uint32_t NestLevel,
                             int64_t Weight);

  /// Generates the module body (initialization/main) unit.
  CodeUnit generateModuleBody(const ast::StmtList &Body, int64_t Weight);

private:
  //===--- Emission helpers -----------------------------------------------===//
  size_t emit(Opcode Op, int64_t A = 0, int64_t B = 0, double F = 0.0);
  void patchTarget(size_t InstrIndex);
  int32_t internCallee(Symbol Module, Symbol Name);
  int32_t internGlobal(Symbol Module, int32_t Slot);
  int32_t internString(Symbol S);
  int32_t descFor(const sema::Type *Ty);
  int32_t allocTemp();

  //===--- Unit scaffolding -----------------------------------------------===//
  void beginUnit();
  void initAggregateLocals();
  CodeUnit takeUnit();

  //===--- Expressions ----------------------------------------------------===//
  const sema::Type *genExpr(const ast::Expr *E);
  const sema::Type *genDesignatorValue(const ast::DesignatorExpr *D);
  const sema::Type *genCall(const ast::CallExpr *C, bool AsStatement);
  const sema::Type *genBinary(const ast::BinaryExpr *B);
  const sema::Type *genUnary(const ast::UnaryExpr *U);
  const sema::Type *genSetConstructor(const ast::SetConstructorExpr *S);
  void pushConst(const symtab::ConstValue &V);

  /// Emits code leaving the address of \p D on the stack; null if \p D
  /// does not denote an assignable location (an error is reported).
  const sema::Type *genAddr(const ast::DesignatorExpr *D);

  /// Applies designator selectors to an address of type \p BaseTy.
  const sema::Type *genSelectors(const ast::DesignatorExpr *D,
                                 size_t FirstSelector,
                                 const sema::Type *BaseTy);

  /// Resolution of a designator's leading name.
  struct BaseRef {
    symtab::SymbolEntry *Entry = nullptr; ///< Null for WITH fields.
    const sema::Type::Field *WithField = nullptr;
    int32_t WithTemp = -1;   ///< Temp slot holding the WITH record address.
    size_t SelectorsUsed = 0; ///< Leading selectors consumed (qualification).
  };
  BaseRef resolveBase(const ast::DesignatorExpr *D);

  /// Emits the address of a Var/Param entry (no selectors).
  const sema::Type *genEntryAddr(symtab::SymbolEntry &Entry,
                                 SourceLocation Loc);

  /// The pointee of pointer type \p Ptr.  A forward-declared target that
  /// another stream has not patched yet is a DKY: wait on the owning
  /// scope's completion and re-read.
  const sema::Type *pointeeOf(const sema::Type *Ptr);

  const sema::Type *genBuiltinCall(sema::BuiltinProc Builtin,
                                   const ast::CallExpr *C, bool AsStatement);

  //===--- Statements -----------------------------------------------------===//
  void genStmts(const ast::StmtList &Stmts);
  void genStmt(const ast::Stmt *S);
  void genAssign(const ast::AssignStmt *S);
  void genIf(const ast::IfStmt *S);
  void genWhile(const ast::WhileStmt *S);
  void genRepeat(const ast::RepeatStmt *S);
  void genFor(const ast::ForStmt *S);
  void genLoop(const ast::LoopStmt *S);
  void genCase(const ast::CaseStmt *S);
  void genWith(const ast::WithStmt *S);
  void genReturn(const ast::ReturnStmt *S);

  /// Emits a boolean-typed expression with a type check.
  void genCondition(const ast::Expr *E);

  void error(SourceLocation Loc, const std::string &Message) {
    Comp.Diags.error(Loc, Message);
  }
  std::string spell(Symbol S) {
    return std::string(Comp.Interner.spelling(S));
  }

  sema::Compilation &Comp;
  symtab::Scope &Self;
  Symbol Module;
  const opt::PassManager *Passes = nullptr;
  StatisticSet *OptStats = nullptr;
  sema::ConstEvaluator ConstEval;

  CodeUnit Unit;
  uint32_t UnitLevel = 0; ///< procedureLevel of Self.
  const sema::Type *ResultType = nullptr;
  bool SawReturnValue = false;

  int32_t NextTemp = 0;
  std::unordered_map<const sema::Type *, int32_t> DescCache;
  std::vector<size_t> ExitPatches; ///< LOOP/EXIT back-patch stack frame.
  std::vector<std::vector<size_t>> LoopStack;

  struct WithBinding {
    const sema::Type *RecordTy;
    int32_t AddrTemp;
  };
  std::vector<WithBinding> WithStack;
};

/// Number of Procedure-kind scopes enclosing (and including) \p S; the
/// module scope is level 0 and module-level procedure scopes are level 1.
uint32_t procedureLevel(const symtab::Scope &S);

/// The module-relative qualified name of a procedure entry
/// ("Outer.Inner" for nested procedures), matching the CodeUnit names
/// the linker resolves against.
std::string moduleRelativeName(const symtab::SymbolEntry &Entry,
                               const StringInterner &Names);

} // namespace m2c::codegen

#endif // M2C_CODEGEN_CODEGENERATOR_H
