//===--- CodeGenerator.cpp - Statement analysis and code emission ---------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeGenerator.h"

#include "codegen/TypeDescBuilder.h"

#include "sched/ExecContext.h"
#include "symtab/Scope.h"

#include <cassert>
#include <cfloat>

using namespace m2c;
using namespace m2c::ast;
using namespace m2c::codegen;
using namespace m2c::sema;
using namespace m2c::symtab;

uint32_t m2c::codegen::procedureLevel(const Scope &S) {
  uint32_t Level = 0;
  for (const Scope *Cur = &S; Cur; Cur = Cur->parent())
    if (Cur->kind() == ScopeKind::Procedure)
      ++Level;
  return Level;
}

std::string m2c::codegen::moduleRelativeName(const SymbolEntry &Entry,
                                              const StringInterner &Names) {
  std::string Result(Names.spelling(Entry.Name));
  for (const Scope *S = Entry.OwnerScope; S; S = S->parent())
    if (S->kind() == ScopeKind::Procedure)
      Result = S->name() + "." + Result;
  return Result;
}

CodeGenerator::CodeGenerator(Compilation &Comp, Scope &Self, Symbol Module,
                             const opt::PassManager *Passes,
                             StatisticSet *OptStats)
    : Comp(Comp), Self(Self), Module(Module), Passes(Passes),
      OptStats(OptStats), ConstEval(Comp, Self) {
  UnitLevel = procedureLevel(Self);
}

//===----------------------------------------------------------------------===//
// Emission helpers
//===----------------------------------------------------------------------===//

size_t CodeGenerator::emit(Opcode Op, int64_t A, int64_t B, double F) {
  sched::ctx().charge(sched::CostKind::EmitInstr);
  Unit.Code.push_back(Instr{Op, A, B, F});
  return Unit.Code.size() - 1;
}

void CodeGenerator::patchTarget(size_t InstrIndex) {
  Unit.Code[InstrIndex].A = static_cast<int64_t>(Unit.Code.size());
}

int32_t CodeGenerator::internCallee(Symbol CalleeModule, Symbol Name) {
  for (size_t I = 0; I < Unit.Callees.size(); ++I)
    if (Unit.Callees[I].Module == CalleeModule && Unit.Callees[I].Name == Name)
      return static_cast<int32_t>(I);
  Unit.Callees.push_back(CalleeRef{CalleeModule, Name});
  return static_cast<int32_t>(Unit.Callees.size() - 1);
}

int32_t CodeGenerator::internGlobal(Symbol GlobalModule, int32_t Slot) {
  for (size_t I = 0; I < Unit.Globals.size(); ++I)
    if (Unit.Globals[I].Module == GlobalModule && Unit.Globals[I].Slot == Slot)
      return static_cast<int32_t>(I);
  Unit.Globals.push_back(GlobalRef{GlobalModule, Slot});
  return static_cast<int32_t>(Unit.Globals.size() - 1);
}

int32_t CodeGenerator::internString(Symbol S) {
  for (size_t I = 0; I < Unit.Strings.size(); ++I)
    if (Unit.Strings[I] == S)
      return static_cast<int32_t>(I);
  Unit.Strings.push_back(S);
  return static_cast<int32_t>(Unit.Strings.size() - 1);
}

int32_t CodeGenerator::descFor(const Type *Ty) {
  return internTypeDesc(Ty, Unit.Descs, DescCache);
}

int32_t CodeGenerator::allocTemp() {
  int32_t Slot = NextTemp++;
  if (static_cast<uint32_t>(NextTemp) > Unit.FrameSize)
    Unit.FrameSize = static_cast<uint32_t>(NextTemp);
  return Slot;
}

//===----------------------------------------------------------------------===//
// Unit scaffolding
//===----------------------------------------------------------------------===//

void CodeGenerator::beginUnit() {
  Unit = CodeUnit();
  DescCache.clear();
  WithStack.clear();
  LoopStack.clear();
  Unit.Module = Module;
  int32_t MaxSlot = -1;
  for (const SymbolEntry *E : Self.entries())
    if ((E->Kind == EntryKind::Var || E->Kind == EntryKind::Param) &&
        !E->IsGlobal && E->Slot > MaxSlot)
      MaxSlot = E->Slot;
  NextTemp = MaxSlot + 1;
  Unit.FrameSize = static_cast<uint32_t>(NextTemp);
}

void CodeGenerator::initAggregateLocals() {
  for (const SymbolEntry *E : Self.entries()) {
    if (E->Kind != EntryKind::Var || E->IsGlobal || !E->Ty)
      continue;
    const Type *Ty = E->Ty->stripSubrange();
    if (Ty->is(TypeKind::Array) || Ty->is(TypeKind::Record)) {
      emit(Opcode::PushAggregate, descFor(Ty));
      emit(Opcode::StoreLocal, E->Slot);
    }
  }
}

CodeUnit CodeGenerator::takeUnit() {
  if (Passes)
    Passes->run(Unit, OptStats);
  return std::move(Unit);
}

CodeUnit CodeGenerator::generateProcedure(const SymbolEntry &Entry,
                                          const StmtList &Body,
                                          std::string QualifiedName,
                                          uint32_t NestLevel, int64_t Weight) {
  assert(Entry.Ty && Entry.Ty->is(TypeKind::Procedure) &&
         "procedure entry without signature");
  beginUnit();
  Unit.Name = Entry.Name;
  Unit.QualifiedName = std::move(QualifiedName);
  Unit.ProcId = Entry.ProcId;
  Unit.NestLevel = NestLevel;
  Unit.Weight = Weight;
  ResultType = Entry.Ty->result();
  SawReturnValue = false;
  for (const Type::Param &P : Entry.Ty->params()) {
    const Type *Ty = P.Ty ? P.Ty->stripSubrange() : nullptr;
    bool Agg = Ty && (Ty->is(TypeKind::Array) || Ty->is(TypeKind::OpenArray) ||
                      Ty->is(TypeKind::Record));
    Unit.Params.push_back(ParamDesc{P.IsVar, Agg});
  }
  initAggregateLocals();
  genStmts(Body);
  if (ResultType)
    emit(Opcode::Trap, /*function fell off the end*/ 2);
  else
    emit(Opcode::Return);
  return takeUnit();
}

CodeUnit CodeGenerator::generateModuleBody(const StmtList &Body,
                                           int64_t Weight) {
  beginUnit();
  Unit.QualifiedName = spell(Module);
  Unit.IsModuleBody = true;
  Unit.NestLevel = 0;
  Unit.Weight = Weight;
  ResultType = nullptr;
  genStmts(Body);
  emit(Opcode::Return);
  return takeUnit();
}

//===----------------------------------------------------------------------===//
// Designators
//===----------------------------------------------------------------------===//

CodeGenerator::BaseRef CodeGenerator::resolveBase(const DesignatorExpr *D) {
  BaseRef Ref;
  // WITH scopes first: innermost wins (Table 2's "WITH" rows).
  for (auto It = WithStack.rbegin(); It != WithStack.rend(); ++It) {
    if (const Type::Field *F = It->RecordTy->findField(D->first())) {
      Comp.Resolver.recordWithHit();
      Ref.WithField = F;
      Ref.WithTemp = It->AddrTemp;
      return Ref;
    }
  }
  Ref.Entry = Comp.Resolver.lookupSimple(Self, D->first());
  if (!Ref.Entry) {
    error(D->location(),
          "undeclared identifier '" + spell(D->first()) + "'");
    return Ref;
  }
  // Module qualification consumes the leading field selector.
  if (Ref.Entry->Kind == EntryKind::Module && Ref.Entry->ModuleScope) {
    if (D->selectors().empty() ||
        D->selectors()[0].SelKind != Selector::Kind::Field) {
      error(D->location(), "module name '" + spell(D->first()) +
                               "' cannot be used as a value");
      Ref.Entry = nullptr;
      return Ref;
    }
    Symbol Member = D->selectors()[0].Field;
    Ref.Entry =
        Comp.Resolver.lookupQualified(*Ref.Entry->ModuleScope, Member);
    Ref.SelectorsUsed = 1;
    if (!Ref.Entry)
      error(D->location(), "module '" + spell(D->first()) +
                               "' does not export '" + spell(Member) + "'");
  }
  return Ref;
}

const Type *CodeGenerator::genEntryAddr(SymbolEntry &Entry,
                                        SourceLocation Loc) {
  if (Entry.Kind != EntryKind::Var && Entry.Kind != EntryKind::Param) {
    error(Loc, "'" + spell(Entry.Name) + "' is not a variable");
    return Comp.Types.errorType();
  }
  if (Entry.IsGlobal) {
    emit(Opcode::LoadGlobalRef, internGlobal(Entry.OwningModule, Entry.Slot));
    return Entry.Ty ? Entry.Ty : Comp.Types.errorType();
  }
  uint32_t OwnerLevel =
      Entry.OwnerScope ? procedureLevel(*Entry.OwnerScope) : UnitLevel;
  assert(OwnerLevel <= UnitLevel && "entry deeper than its user");
  uint32_t Hops = UnitLevel - OwnerLevel;
  if (Entry.IsVarParam) {
    // The slot already holds an Address.
    if (Hops == 0)
      emit(Opcode::LoadLocal, Entry.Slot);
    else
      emit(Opcode::LoadEnclosing, Entry.Slot, Hops);
  } else if (Hops == 0) {
    emit(Opcode::LoadLocalRef, Entry.Slot);
  } else {
    emit(Opcode::LoadEnclosingRef, Entry.Slot, Hops);
  }
  return Entry.Ty ? Entry.Ty : Comp.Types.errorType();
}

const Type *CodeGenerator::pointeeOf(const Type *Ptr) {
  const Type *Pointee = Ptr->element();
  if (!Pointee && Ptr->readyEvent()) {
    sched::ctx().charge(sched::CostKind::LookupBlocked);
    sched::ctx().wait(*Ptr->readyEvent());
    Pointee = Ptr->element();
  }
  return Pointee ? Pointee : Comp.Types.errorType();
}

const Type *CodeGenerator::genSelectors(const DesignatorExpr *D,
                                        size_t FirstSelector,
                                        const Type *BaseTy) {
  const Type *Ty = BaseTy;
  for (size_t I = FirstSelector; I < D->selectors().size(); ++I) {
    const Selector &S = D->selectors()[I];
    Ty = Ty->stripSubrange();
    switch (S.SelKind) {
    case Selector::Kind::Field: {
      if (Ty->isError())
        continue;
      if (!Ty->is(TypeKind::Record)) {
        error(S.Loc, "'.' selector applied to non-record type " +
                         Ty->describe());
        return Comp.Types.errorType();
      }
      // Field tables are explicitly designated search scopes — the
      // "other" rows of Table 2.
      SymbolEntry *Field =
          Comp.Resolver.lookupDesignated(*Ty->fieldScope(), S.Field);
      if (!Field) {
        error(S.Loc, "record has no field named '" + spell(S.Field) + "'");
        return Comp.Types.errorType();
      }
      emit(Opcode::FieldAddr, Field->Slot);
      Ty = Field->Ty ? Field->Ty : Comp.Types.errorType();
      break;
    }
    case Selector::Kind::Index: {
      for (Expr *Index : S.Indexes) {
        Ty = Ty->stripSubrange();
        if (Ty->isError())
          continue;
        if (!Ty->is(TypeKind::Array) && !Ty->is(TypeKind::OpenArray)) {
          error(S.Loc, "indexing applied to non-array type " +
                           Ty->describe());
          return Comp.Types.errorType();
        }
        const Type *IndexTy = genExpr(Index);
        if (!IndexTy->isError() && !IndexTy->isOrdinal())
          error(Index->location(), "array index must be ordinal, got " +
                                       IndexTy->describe());
        if (Ty->is(TypeKind::Array))
          emit(Opcode::IndexAddr, Ty->low(), Ty->length());
        else
          emit(Opcode::IndexAddr, 0, -1);
        Ty = Ty->element() ? Ty->element() : Comp.Types.errorType();
      }
      break;
    }
    case Selector::Kind::Deref: {
      if (Ty->isError())
        continue;
      if (Ty->is(TypeKind::Opaque)) {
        error(S.Loc, "cannot dereference a value of opaque type " +
                         Ty->describe());
        return Comp.Types.errorType();
      }
      if (!Ty->is(TypeKind::Pointer)) {
        error(S.Loc, "'^' applied to non-pointer type " + Ty->describe());
        return Comp.Types.errorType();
      }
      emit(Opcode::LoadIndirect); // pointer value
      emit(Opcode::DerefAddr);
      Ty = pointeeOf(Ty);
      break;
    }
    }
  }
  return Ty;
}

const Type *CodeGenerator::genAddr(const DesignatorExpr *D) {
  BaseRef Ref = resolveBase(D);
  if (Ref.WithField) {
    emit(Opcode::LoadLocal, Ref.WithTemp); // the saved record address
    emit(Opcode::FieldAddr, Ref.WithField->Index);
    return genSelectors(D, 0, Ref.WithField->Ty);
  }
  if (!Ref.Entry)
    return Comp.Types.errorType();
  const Type *BaseTy = genEntryAddr(*Ref.Entry, D->location());
  return genSelectors(D, Ref.SelectorsUsed, BaseTy);
}

const Type *CodeGenerator::genDesignatorValue(const DesignatorExpr *D) {
  BaseRef Ref = resolveBase(D);
  if (Ref.WithField) {
    emit(Opcode::LoadLocal, Ref.WithTemp);
    emit(Opcode::FieldAddr, Ref.WithField->Index);
    const Type *Ty = genSelectors(D, 0, Ref.WithField->Ty);
    emit(Opcode::LoadIndirect);
    return Ty;
  }
  if (!Ref.Entry)
    return Comp.Types.errorType();
  SymbolEntry &Entry = *Ref.Entry;

  switch (Entry.Kind) {
  case EntryKind::Const:
  case EntryKind::EnumLiteral:
    if (Ref.SelectorsUsed != D->selectors().size()) {
      error(D->location(), "selectors applied to a constant");
      return Comp.Types.errorType();
    }
    pushConst(Entry.Value);
    return Entry.Ty ? Entry.Ty : Comp.Types.errorType();

  case EntryKind::Proc: {
    if (Entry.isBuiltin()) {
      error(D->location(), "builtin procedure '" + spell(Entry.Name) +
                               "' cannot be used as a value");
      return Comp.Types.errorType();
    }
    if (Ref.SelectorsUsed != D->selectors().size()) {
      error(D->location(), "selectors applied to a procedure");
      return Comp.Types.errorType();
    }
    uint32_t OwnerLevel =
        Entry.OwnerScope ? procedureLevel(*Entry.OwnerScope) : 0;
    if (OwnerLevel != 0) {
      error(D->location(),
            "nested procedures cannot be used as procedure values");
      return Comp.Types.errorType();
    }
    Symbol Name = Comp.Interner.intern(
        moduleRelativeName(Entry, Comp.Interner));
    emit(Opcode::PushProc, internCallee(Entry.OwningModule, Name));
    return Entry.Ty;
  }

  case EntryKind::Var:
  case EntryKind::Param: {
    // Fast path: unselected plain local.
    if (Ref.SelectorsUsed == D->selectors().size() && !Entry.IsGlobal &&
        !Entry.IsVarParam && Entry.OwnerScope &&
        procedureLevel(*Entry.OwnerScope) == UnitLevel) {
      emit(Opcode::LoadLocal, Entry.Slot);
      return Entry.Ty ? Entry.Ty : Comp.Types.errorType();
    }
    if (Ref.SelectorsUsed == D->selectors().size() && Entry.IsGlobal &&
        !Entry.IsVarParam) {
      emit(Opcode::LoadGlobal,
           internGlobal(Entry.OwningModule, Entry.Slot));
      return Entry.Ty ? Entry.Ty : Comp.Types.errorType();
    }
    const Type *BaseTy = genEntryAddr(Entry, D->location());
    const Type *Ty = genSelectors(D, Ref.SelectorsUsed, BaseTy);
    emit(Opcode::LoadIndirect);
    return Ty;
  }

  case EntryKind::Type:
    error(D->location(),
          "type name '" + spell(Entry.Name) + "' cannot be used as a value");
    return Comp.Types.errorType();
  case EntryKind::Module:
  case EntryKind::Field:
    error(D->location(), "invalid use of '" + spell(Entry.Name) + "'");
    return Comp.Types.errorType();
  }
  return Comp.Types.errorType();
}

void CodeGenerator::pushConst(const ConstValue &V) {
  switch (V.ValueKind) {
  case ConstValue::Kind::Int:
  case ConstValue::Kind::Bool:
  case ConstValue::Kind::Char:
    emit(Opcode::PushInt, V.Int);
    return;
  case ConstValue::Kind::Real:
    emit(Opcode::PushReal, 0, 0, V.Real);
    return;
  case ConstValue::Kind::String:
    emit(Opcode::PushStr, internString(V.Str));
    return;
  case ConstValue::Kind::Set:
    emit(Opcode::PushSet, static_cast<int64_t>(V.SetBits));
    return;
  case ConstValue::Kind::Nil:
    emit(Opcode::PushNil);
    return;
  case ConstValue::Kind::None:
    emit(Opcode::PushInt, 0); // after an error; keep the stack balanced
    return;
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

const Type *CodeGenerator::genExpr(const Expr *E) {
  sched::ctx().charge(sched::CostKind::StmtNode);
  switch (E->kind()) {
  case ExprKind::IntLit:
    emit(Opcode::PushInt, static_cast<const IntLitExpr *>(E)->value());
    return Comp.Types.integerType();
  case ExprKind::RealLit:
    emit(Opcode::PushReal, 0, 0, static_cast<const RealLitExpr *>(E)->value());
    return Comp.Types.realType();
  case ExprKind::CharLit:
    emit(Opcode::PushInt,
         static_cast<unsigned char>(
             static_cast<const CharLitExpr *>(E)->value()));
    return Comp.Types.charType();
  case ExprKind::StringLit: {
    Symbol S = static_cast<const StringLitExpr *>(E)->value();
    emit(Opcode::PushStr, internString(S));
    return Comp.Types.getString(
        static_cast<int64_t>(Comp.Interner.spelling(S).size()));
  }
  case ExprKind::Designator:
    return genDesignatorValue(static_cast<const DesignatorExpr *>(E));
  case ExprKind::Call:
    return genCall(static_cast<const CallExpr *>(E), /*AsStatement=*/false);
  case ExprKind::Unary:
    return genUnary(static_cast<const UnaryExpr *>(E));
  case ExprKind::Binary:
    return genBinary(static_cast<const BinaryExpr *>(E));
  case ExprKind::SetConstructor:
    return genSetConstructor(static_cast<const SetConstructorExpr *>(E));
  }
  return Comp.Types.errorType();
}

const Type *CodeGenerator::genUnary(const UnaryExpr *U) {
  const Type *Ty = genExpr(U->operand());
  const Type *Base = Ty->stripSubrange();
  switch (U->op()) {
  case UnaryOp::Plus:
    if (!Base->isError() && !Base->isNumeric())
      error(U->location(), "unary '+' requires a numeric operand");
    return Ty;
  case UnaryOp::Minus:
    if (Base->is(TypeKind::Real)) {
      emit(Opcode::NegReal);
      return Base;
    }
    if (Base->is(TypeKind::Integer) || Base->is(TypeKind::Cardinal)) {
      emit(Opcode::NegInt);
      return Comp.Types.integerType();
    }
    if (!Base->isError())
      error(U->location(), "unary '-' requires a numeric operand, got " +
                               Ty->describe());
    return Comp.Types.errorType();
  case UnaryOp::Not:
    if (!Base->isError() && !Base->is(TypeKind::Boolean))
      error(U->location(), "NOT requires a BOOLEAN operand, got " +
                               Ty->describe());
    emit(Opcode::NotBool);
    return Comp.Types.booleanType();
  }
  return Comp.Types.errorType();
}

const Type *CodeGenerator::genBinary(const BinaryExpr *B) {
  // Short-circuit boolean connectives first.
  if (B->op() == BinaryOp::And || B->op() == BinaryOp::Or) {
    bool IsAnd = B->op() == BinaryOp::And;
    const Type *L = genExpr(B->lhs());
    if (!L->isError() && !L->stripSubrange()->is(TypeKind::Boolean))
      error(B->lhs()->location(),
            std::string(IsAnd ? "AND" : "OR") + " requires BOOLEAN operands");
    size_t Shortcut =
        emit(IsAnd ? Opcode::JumpIfFalse : Opcode::JumpIfTrue);
    const Type *R = genExpr(B->rhs());
    if (!R->isError() && !R->stripSubrange()->is(TypeKind::Boolean))
      error(B->rhs()->location(),
            std::string(IsAnd ? "AND" : "OR") + " requires BOOLEAN operands");
    size_t Skip = emit(Opcode::Jump);
    patchTarget(Shortcut);
    emit(Opcode::PushInt, IsAnd ? 0 : 1);
    patchTarget(Skip);
    return Comp.Types.booleanType();
  }

  if (B->op() == BinaryOp::In) {
    const Type *Elem = genExpr(B->lhs());
    const Type *SetTy = genExpr(B->rhs());
    const Type *SetBase = SetTy->stripSubrange();
    if (!SetBase->isError() && !SetBase->is(TypeKind::Set) &&
        !SetBase->is(TypeKind::BitSet))
      error(B->location(), "IN requires a set right operand, got " +
                               SetTy->describe());
    if (!Elem->isError() && !Elem->isOrdinal())
      error(B->lhs()->location(), "IN requires an ordinal left operand");
    emit(Opcode::SetIn);
    return Comp.Types.booleanType();
  }

  const Type *L = genExpr(B->lhs());
  const Type *R = genExpr(B->rhs());
  const Type *LB = L->stripSubrange();
  const Type *RB = R->stripSubrange();
  if (LB->isError() || RB->isError())
    return Comp.Types.errorType();

  if (!TypeContext::compatible(L, R)) {
    error(B->location(), "operands of '" +
                             std::string(binaryOpSpelling(B->op())) +
                             "' have incompatible types " + L->describe() +
                             " and " + R->describe());
    return Comp.Types.errorType();
  }

  bool Sets = LB->is(TypeKind::Set) || LB->is(TypeKind::BitSet);
  bool Reals = LB->is(TypeKind::Real);
  bool Ints = LB->is(TypeKind::Integer) || LB->is(TypeKind::Cardinal);
  bool Ordinals = LB->isOrdinal();
  bool Pointers = LB->is(TypeKind::Pointer) || LB->is(TypeKind::Nil) ||
                  LB->is(TypeKind::Opaque) || LB->is(TypeKind::Procedure) ||
                  RB->is(TypeKind::Nil);

  switch (B->op()) {
  case BinaryOp::Add:
    if (Sets) {
      emit(Opcode::SetUnion);
      return LB;
    }
    if (Reals) {
      emit(Opcode::AddReal);
      return LB;
    }
    if (Ints) {
      emit(Opcode::AddInt);
      return Comp.Types.integerType();
    }
    break;
  case BinaryOp::Sub:
    if (Sets) {
      emit(Opcode::SetDiff);
      return LB;
    }
    if (Reals) {
      emit(Opcode::SubReal);
      return LB;
    }
    if (Ints) {
      emit(Opcode::SubInt);
      return Comp.Types.integerType();
    }
    break;
  case BinaryOp::Mul:
    if (Sets) {
      emit(Opcode::SetIntersect);
      return LB;
    }
    if (Reals) {
      emit(Opcode::MulReal);
      return LB;
    }
    if (Ints) {
      emit(Opcode::MulInt);
      return Comp.Types.integerType();
    }
    break;
  case BinaryOp::RealDiv:
    if (Sets) {
      emit(Opcode::SetSymDiff);
      return LB;
    }
    if (Reals) {
      emit(Opcode::DivReal);
      return LB;
    }
    if (Ints) {
      error(B->location(), "'/' requires REAL operands; use DIV for "
                           "integers");
      return Comp.Types.errorType();
    }
    break;
  case BinaryOp::IntDiv:
    if (Ints) {
      emit(Opcode::DivInt);
      return Comp.Types.integerType();
    }
    break;
  case BinaryOp::Mod:
    if (Ints) {
      emit(Opcode::ModInt);
      return Comp.Types.integerType();
    }
    break;
  case BinaryOp::Equal:
  case BinaryOp::NotEqual: {
    bool Eq = B->op() == BinaryOp::Equal;
    if (Pointers) {
      emit(Eq ? Opcode::CmpEqPtr : Opcode::CmpNePtr);
      return Comp.Types.booleanType();
    }
    if (Reals) {
      emit(Eq ? Opcode::CmpEqReal : Opcode::CmpNeReal);
      return Comp.Types.booleanType();
    }
    if (Ordinals || Sets) {
      emit(Eq ? Opcode::CmpEqInt : Opcode::CmpNeInt);
      return Comp.Types.booleanType();
    }
    break;
  }
  case BinaryOp::Less:
  case BinaryOp::LessEq:
  case BinaryOp::Greater:
  case BinaryOp::GreaterEq: {
    // Set inclusion: A <= B iff A - B = {}.
    if (Sets && (B->op() == BinaryOp::LessEq ||
                 B->op() == BinaryOp::GreaterEq)) {
      if (B->op() == BinaryOp::GreaterEq) {
        // A >= B iff B - A = {}.  The operands sit on the stack as A B;
        // swap them through temporaries before the difference.
        int32_t TmpB = allocTemp();
        emit(Opcode::StoreLocal, TmpB); // B
        int32_t TmpA = allocTemp();
        emit(Opcode::StoreLocal, TmpA); // A
        emit(Opcode::LoadLocal, TmpB);
        emit(Opcode::LoadLocal, TmpA);
        emit(Opcode::SetDiff); // B - A
        emit(Opcode::PushSet, 0);
        emit(Opcode::CmpEqInt);
        return Comp.Types.booleanType();
      }
      emit(Opcode::SetDiff); // A - B
      emit(Opcode::PushSet, 0);
      emit(Opcode::CmpEqInt);
      return Comp.Types.booleanType();
    }
    Opcode IntOp, RealOp;
    switch (B->op()) {
    case BinaryOp::Less:
      IntOp = Opcode::CmpLtInt;
      RealOp = Opcode::CmpLtReal;
      break;
    case BinaryOp::LessEq:
      IntOp = Opcode::CmpLeInt;
      RealOp = Opcode::CmpLeReal;
      break;
    case BinaryOp::Greater:
      IntOp = Opcode::CmpGtInt;
      RealOp = Opcode::CmpGtReal;
      break;
    default:
      IntOp = Opcode::CmpGeInt;
      RealOp = Opcode::CmpGeReal;
      break;
    }
    if (Reals) {
      emit(RealOp);
      return Comp.Types.booleanType();
    }
    if (Ordinals) {
      emit(IntOp);
      return Comp.Types.booleanType();
    }
    break;
  }
  default:
    break;
  }
  error(B->location(), "operator '" +
                           std::string(binaryOpSpelling(B->op())) +
                           "' is not defined for operands of type " +
                           L->describe());
  return Comp.Types.errorType();
}

const Type *CodeGenerator::genSetConstructor(const SetConstructorExpr *S) {
  const Type *Ty = Comp.Types.bitsetType();
  if (!S->typeName().isEmpty()) {
    SymbolEntry *Entry = Comp.Resolver.lookupSimple(Self, S->typeName());
    if (Entry && Entry->Kind == EntryKind::Type && Entry->Ty &&
        (Entry->Ty->is(TypeKind::Set) || Entry->Ty->is(TypeKind::BitSet))) {
      Ty = Entry->Ty;
    } else {
      error(S->location(),
            "'" + spell(S->typeName()) + "' is not a set type");
    }
  }
  emit(Opcode::PushSet, 0);
  for (const SetElement &El : S->elements()) {
    const Type *LoTy = genExpr(El.Lo);
    if (!LoTy->isError() && !LoTy->isOrdinal())
      error(El.Lo->location(), "set element must be ordinal");
    if (El.Hi) {
      const Type *HiTy = genExpr(El.Hi);
      if (!HiTy->isError() && !HiTy->isOrdinal())
        error(El.Hi->location(), "set element must be ordinal");
      emit(Opcode::SetAddRange);
    } else {
      emit(Opcode::SetAddBit);
    }
  }
  return Ty;
}

//===----------------------------------------------------------------------===//
// Calls
//===----------------------------------------------------------------------===//

const Type *CodeGenerator::genCall(const CallExpr *C, bool AsStatement) {
  if (C->callee()->kind() != ExprKind::Designator) {
    error(C->location(), "called expression is not a procedure");
    return Comp.Types.errorType();
  }
  const auto *D = static_cast<const DesignatorExpr *>(C->callee());
  BaseRef Ref = resolveBase(D);

  // Indirect call through a procedure-typed variable or field.
  auto IndirectCall = [&](const Type *ProcTy) -> const Type * {
    if (!ProcTy->is(TypeKind::Procedure)) {
      error(C->location(), "called object has non-procedure type " +
                               ProcTy->describe());
      return Comp.Types.errorType();
    }
    if (C->args().size() != ProcTy->params().size()) {
      error(C->location(),
            "call supplies " + std::to_string(C->args().size()) +
                " argument(s); procedure type takes " +
                std::to_string(ProcTy->params().size()));
      return Comp.Types.errorType();
    }
    for (size_t I = 0; I < C->args().size(); ++I) {
      const Type::Param &P = ProcTy->params()[I];
      if (P.IsVar) {
        if (C->args()[I]->kind() != ExprKind::Designator) {
          error(C->args()[I]->location(),
                "VAR argument must be a designator");
          emit(Opcode::PushInt, 0);
          continue;
        }
        genAddr(static_cast<const DesignatorExpr *>(C->args()[I]));
      } else {
        const Type *ArgTy = genExpr(C->args()[I]);
        if (!TypeContext::assignable(P.Ty, ArgTy))
          error(C->args()[I]->location(),
                "argument type " + ArgTy->describe() +
                    " does not match parameter type " +
                    (P.Ty ? P.Ty->describe() : "?"));
      }
    }
    emit(Opcode::CallIndirect, 0, static_cast<int64_t>(C->args().size()));
    const Type *Result = ProcTy->result();
    if (AsStatement && Result)
      error(C->location(), "function result is discarded");
    if (!AsStatement && !Result) {
      error(C->location(), "proper procedure used in an expression");
      return Comp.Types.errorType();
    }
    return Result ? Result : Comp.Types.errorType();
  };

  if (Ref.WithField) {
    emit(Opcode::LoadLocal, Ref.WithTemp);
    emit(Opcode::FieldAddr, Ref.WithField->Index);
    const Type *Ty = genSelectors(D, 0, Ref.WithField->Ty);
    emit(Opcode::LoadIndirect);
    return IndirectCall(Ty->stripSubrange());
  }
  if (!Ref.Entry)
    return Comp.Types.errorType();
  SymbolEntry &Entry = *Ref.Entry;

  if (Entry.Kind == EntryKind::Proc && Entry.isBuiltin())
    return genBuiltinCall(static_cast<BuiltinProc>(Entry.BuiltinId), C,
                          AsStatement);

  // Type conversion T(x).
  if (Entry.Kind == EntryKind::Type) {
    if (Ref.SelectorsUsed != D->selectors().size() || C->args().size() != 1) {
      error(C->location(), "type conversion takes exactly one argument");
      return Comp.Types.errorType();
    }
    const Type *Target = Entry.Ty;
    const Type *ArgTy = genExpr(C->args()[0]);
    const Type *TB = Target->stripSubrange();
    const Type *AB = ArgTy->stripSubrange();
    if (AB->isError() || TB->isError())
      return Comp.Types.errorType();
    if (TB->isOrdinal() && AB->isOrdinal()) {
      if (Target->is(TypeKind::Subrange))
        emit(Opcode::CheckRange, Target->low(), Target->high());
      return Target;
    }
    error(C->location(), "unsupported type conversion from " +
                             ArgTy->describe() + " to " +
                             Target->describe() +
                             " (use FLOAT/TRUNC for REAL conversions)");
    return Comp.Types.errorType();
  }

  if (Entry.Kind == EntryKind::Proc) {
    if (Ref.SelectorsUsed != D->selectors().size()) {
      error(C->location(), "selectors applied to a procedure call");
      return Comp.Types.errorType();
    }
    const Type *Sig = Entry.Ty;
    assert(Sig && Sig->is(TypeKind::Procedure) && "proc entry w/o signature");
    if (C->args().size() != Sig->params().size()) {
      error(C->location(),
            "procedure '" + spell(Entry.Name) + "' takes " +
                std::to_string(Sig->params().size()) + " argument(s), " +
                std::to_string(C->args().size()) + " given");
      return Comp.Types.errorType();
    }
    for (size_t I = 0; I < C->args().size(); ++I) {
      const Type::Param &P = Sig->params()[I];
      if (P.IsVar) {
        if (C->args()[I]->kind() != ExprKind::Designator) {
          error(C->args()[I]->location(),
                "VAR argument must be a designator");
          emit(Opcode::PushInt, 0);
          continue;
        }
        const Type *ArgTy =
            genAddr(static_cast<const DesignatorExpr *>(C->args()[I]));
        const Type *Want = P.IsOpenArray && P.Ty ? P.Ty->element() : nullptr;
        if (P.IsOpenArray) {
          const Type *Elem = ArgTy->stripSubrange()->element();
          if (!ArgTy->stripSubrange()->is(TypeKind::Array) ||
              !TypeContext::same(Elem, Want))
            if (!ArgTy->isError())
              error(C->args()[I]->location(),
                    "VAR open-array argument must be an array of the "
                    "element type");
        } else if (!ArgTy->isError() && !TypeContext::same(ArgTy, P.Ty) &&
                   !TypeContext::assignable(P.Ty, ArgTy)) {
          error(C->args()[I]->location(),
                "VAR argument type " + ArgTy->describe() +
                    " does not match parameter type " +
                    (P.Ty ? P.Ty->describe() : "?"));
        }
      } else {
        const Type *ArgTy = genExpr(C->args()[I]);
        const Type *Want = P.Ty;
        bool Ok;
        if (P.IsOpenArray) {
          const Type *AB = ArgTy->stripSubrange();
          Ok = (AB->is(TypeKind::Array) || AB->is(TypeKind::OpenArray) ||
                AB->is(TypeKind::String)) &&
               (AB->is(TypeKind::String)
                    ? Want->element()->stripSubrange()->is(TypeKind::Char)
                    : TypeContext::same(AB->element(), Want->element()));
        } else {
          Ok = TypeContext::assignable(Want, ArgTy);
        }
        if (!Ok && !ArgTy->isError())
          error(C->args()[I]->location(),
                "argument type " + ArgTy->describe() +
                    " does not match parameter type " +
                    (Want ? Want->describe() : "?"));
      }
    }
    uint32_t OwnerLevel =
        Entry.OwnerScope ? procedureLevel(*Entry.OwnerScope) : 0;
    int64_t Hops = OwnerLevel == 0
                       ? -1
                       : static_cast<int64_t>(UnitLevel) - OwnerLevel;
    Symbol Name =
        Comp.Interner.intern(moduleRelativeName(Entry, Comp.Interner));
    emit(Opcode::Call, internCallee(Entry.OwningModule, Name), Hops);
    const Type *Result = Sig->result();
    if (AsStatement && Result)
      error(C->location(), "function result is discarded");
    if (!AsStatement && !Result) {
      error(C->location(), "proper procedure '" + spell(Entry.Name) +
                               "' used in an expression");
      return Comp.Types.errorType();
    }
    return Result ? Result : Comp.Types.errorType();
  }

  // Procedure-typed variable/parameter.
  if (Entry.Kind == EntryKind::Var || Entry.Kind == EntryKind::Param) {
    const Type *Ty = genDesignatorValue(D);
    return IndirectCall(Ty->stripSubrange());
  }

  error(C->location(), "'" + spell(D->first()) + "' is not callable");
  return Comp.Types.errorType();
}

//===----------------------------------------------------------------------===//
// Builtin procedures
//===----------------------------------------------------------------------===//

const Type *CodeGenerator::genBuiltinCall(BuiltinProc Builtin,
                                          const CallExpr *C,
                                          bool AsStatement) {
  const auto &Args = C->args();
  auto ArgCountIs = [&](size_t Min, size_t Max) {
    if (Args.size() >= Min && Args.size() <= Max)
      return true;
    error(C->location(), std::string("wrong number of arguments to ") +
                             builtinProcName(Builtin));
    return false;
  };
  auto Err = [&]() { return Comp.Types.errorType(); };
  auto StatementOnly = [&]() {
    if (!AsStatement)
      error(C->location(), std::string(builtinProcName(Builtin)) +
                               " does not return a value");
  };
  auto FunctionOnly = [&]() {
    if (AsStatement)
      error(C->location(), std::string("function ") +
                               builtinProcName(Builtin) +
                               "'s result is discarded");
  };
  auto GenOrdinalArg = [&](size_t I) {
    const Type *Ty = genExpr(Args[I]);
    if (!Ty->isError() && !Ty->isOrdinal())
      error(Args[I]->location(), "ordinal argument expected");
    return Ty;
  };
  auto GenAddrArg = [&](size_t I) -> const Type * {
    if (Args[I]->kind() != ExprKind::Designator) {
      error(Args[I]->location(), "variable argument expected");
      emit(Opcode::PushInt, 0);
      return Err();
    }
    return genAddr(static_cast<const DesignatorExpr *>(Args[I]));
  };
  /// Resolves an argument that must be a type name (MIN/MAX/VAL/SIZE).
  auto TypeArg = [&](size_t I) -> const Type * {
    if (Args[I]->kind() == ExprKind::Designator) {
      const auto *D = static_cast<const DesignatorExpr *>(Args[I]);
      BaseRef Ref = resolveBase(D);
      if (Ref.Entry && Ref.Entry->Kind == EntryKind::Type &&
          Ref.SelectorsUsed == D->selectors().size())
        return Ref.Entry->Ty;
    }
    return nullptr;
  };

  switch (Builtin) {
  case BuiltinProc::Abs: {
    FunctionOnly();
    if (!ArgCountIs(1, 1))
      return Err();
    const Type *Ty = genExpr(Args[0]);
    const Type *Base = Ty->stripSubrange();
    if (Base->is(TypeKind::Real)) {
      emit(Opcode::AbsReal);
      return Base;
    }
    if (Base->is(TypeKind::Integer) || Base->is(TypeKind::Cardinal)) {
      emit(Opcode::AbsInt);
      return Comp.Types.integerType();
    }
    if (!Base->isError())
      error(Args[0]->location(), "ABS requires a numeric argument");
    return Err();
  }
  case BuiltinProc::Cap:
    FunctionOnly();
    if (!ArgCountIs(1, 1))
      return Err();
    genExpr(Args[0]);
    emit(Opcode::Cap);
    return Comp.Types.charType();
  case BuiltinProc::Chr:
    FunctionOnly();
    if (!ArgCountIs(1, 1))
      return Err();
    GenOrdinalArg(0);
    emit(Opcode::CheckRange, 0, 255);
    return Comp.Types.charType();
  case BuiltinProc::Ord:
    FunctionOnly();
    if (!ArgCountIs(1, 1))
      return Err();
    GenOrdinalArg(0);
    return Comp.Types.cardinalType();
  case BuiltinProc::Float:
    FunctionOnly();
    if (!ArgCountIs(1, 1))
      return Err();
    GenOrdinalArg(0);
    emit(Opcode::IntToReal);
    return Comp.Types.realType();
  case BuiltinProc::Trunc: {
    FunctionOnly();
    if (!ArgCountIs(1, 1))
      return Err();
    const Type *Ty = genExpr(Args[0]);
    if (!Ty->isError() && !Ty->stripSubrange()->is(TypeKind::Real))
      error(Args[0]->location(), "TRUNC requires a REAL argument");
    emit(Opcode::RealToInt);
    return Comp.Types.cardinalType();
  }
  case BuiltinProc::Odd:
    FunctionOnly();
    if (!ArgCountIs(1, 1))
      return Err();
    GenOrdinalArg(0);
    emit(Opcode::Odd);
    return Comp.Types.booleanType();
  case BuiltinProc::High: {
    FunctionOnly();
    if (!ArgCountIs(1, 1))
      return Err();
    if (Args[0]->kind() != ExprKind::Designator) {
      error(Args[0]->location(), "HIGH requires an array variable");
      return Err();
    }
    const Type *Ty = genExpr(Args[0]);
    const Type *Base = Ty->stripSubrange();
    if (Base->is(TypeKind::Array)) {
      emit(Opcode::Pop);
      emit(Opcode::PushInt, Base->high());
      return Comp.Types.cardinalType();
    }
    if (Base->is(TypeKind::OpenArray)) {
      emit(Opcode::ArrayHigh);
      return Comp.Types.cardinalType();
    }
    if (!Base->isError())
      error(Args[0]->location(), "HIGH requires an array, got " +
                                     Ty->describe());
    return Err();
  }
  case BuiltinProc::Min:
  case BuiltinProc::Max: {
    FunctionOnly();
    if (!ArgCountIs(1, 1))
      return Err();
    const Type *Ty = TypeArg(0);
    if (!Ty) {
      error(Args[0]->location(), "MIN/MAX require a type name argument");
      return Err();
    }
    bool IsMax = Builtin == BuiltinProc::Max;
    if (Ty->is(TypeKind::Subrange)) {
      emit(Opcode::PushInt, IsMax ? Ty->high() : Ty->low());
      return Ty;
    }
    const Type *Base = Ty->stripSubrange();
    switch (Base->kind()) {
    case TypeKind::Integer:
      emit(Opcode::PushInt, IsMax ? 2147483647LL : -2147483648LL);
      return Ty;
    case TypeKind::Cardinal:
      emit(Opcode::PushInt, IsMax ? 4294967295LL : 0);
      return Ty;
    case TypeKind::Char:
      emit(Opcode::PushInt, IsMax ? 255 : 0);
      return Ty;
    case TypeKind::Boolean:
      emit(Opcode::PushInt, IsMax ? 1 : 0);
      return Ty;
    case TypeKind::Enum:
      emit(Opcode::PushInt, IsMax ? Base->high() : 0);
      return Ty;
    case TypeKind::Real:
      emit(Opcode::PushReal, 0, 0, IsMax ? DBL_MAX : -DBL_MAX);
      return Ty;
    default:
      if (Ty->is(TypeKind::Subrange)) {
        emit(Opcode::PushInt, IsMax ? Ty->high() : Ty->low());
        return Ty;
      }
      error(Args[0]->location(), "MIN/MAX require a scalar type");
      return Err();
    }
  }
  case BuiltinProc::Size: {
    FunctionOnly();
    if (!ArgCountIs(1, 1))
      return Err();
    const Type *Ty = TypeArg(0);
    if (!Ty && Args[0]->kind() == ExprKind::Designator) {
      // SIZE(variable): compute statically without emitting loads.
      const auto *D = static_cast<const DesignatorExpr *>(Args[0]);
      BaseRef Ref = resolveBase(D);
      if (Ref.Entry && Ref.Entry->Ty &&
          Ref.SelectorsUsed == D->selectors().size())
        Ty = Ref.Entry->Ty;
    }
    if (!Ty) {
      error(Args[0]->location(), "SIZE requires a type or variable");
      return Err();
    }
    // Storage units = flattened scalar slot count.
    std::function<int64_t(const Type *)> SlotCount =
        [&](const Type *T) -> int64_t {
      T = T->stripSubrange();
      if (T->is(TypeKind::Array))
        return T->length() * SlotCount(T->element());
      if (T->is(TypeKind::Record)) {
        int64_t Sum = 0;
        for (const Type::Field &F : T->fields())
          Sum += SlotCount(F.Ty);
        return Sum;
      }
      return 1;
    };
    emit(Opcode::PushInt, SlotCount(Ty));
    return Comp.Types.cardinalType();
  }
  case BuiltinProc::Val: {
    FunctionOnly();
    if (!ArgCountIs(2, 2))
      return Err();
    const Type *Target = TypeArg(0);
    if (!Target || !Target->isOrdinal()) {
      error(Args[0]->location(), "VAL requires an ordinal type name");
      Target = Comp.Types.errorType();
    }
    GenOrdinalArg(1);
    if (Target->is(TypeKind::Subrange) || Target->is(TypeKind::Enum))
      emit(Opcode::CheckRange, Target->low(), Target->high());
    return Target;
  }
  case BuiltinProc::Inc:
  case BuiltinProc::Dec: {
    StatementOnly();
    if (!ArgCountIs(1, 2))
      return Err();
    const Type *Ty = GenAddrArg(0);
    if (!Ty->isError() && !Ty->isOrdinal())
      error(Args[0]->location(), "INC/DEC require an ordinal variable");
    if (Args.size() == 2)
      GenOrdinalArg(1);
    else
      emit(Opcode::PushInt, 1);
    if (Builtin == BuiltinProc::Dec)
      emit(Opcode::NegInt);
    emit(Opcode::IncAddr);
    return nullptr;
  }
  case BuiltinProc::Incl:
  case BuiltinProc::Excl: {
    StatementOnly();
    if (!ArgCountIs(2, 2))
      return Err();
    const Type *Ty = GenAddrArg(0);
    const Type *Base = Ty->stripSubrange();
    if (!Base->isError() && !Base->is(TypeKind::Set) &&
        !Base->is(TypeKind::BitSet))
      error(Args[0]->location(), "INCL/EXCL require a set variable");
    GenOrdinalArg(1);
    emit(Builtin == BuiltinProc::Incl ? Opcode::SetIncl : Opcode::SetExcl);
    return nullptr;
  }
  case BuiltinProc::New: {
    StatementOnly();
    if (!ArgCountIs(1, 1))
      return Err();
    const Type *Ty = GenAddrArg(0);
    const Type *Base = Ty->stripSubrange();
    if (!Base->is(TypeKind::Pointer)) {
      if (!Base->isError())
        error(Args[0]->location(), "NEW requires a pointer variable");
      emit(Opcode::Pop);
      return nullptr;
    }
    emit(Opcode::NewCell, descFor(pointeeOf(Base)));
    emit(Opcode::StoreIndirect);
    return nullptr;
  }
  case BuiltinProc::Dispose: {
    StatementOnly();
    if (!ArgCountIs(1, 1))
      return Err();
    const Type *Ty = GenAddrArg(0);
    if (!Ty->isError() && !Ty->stripSubrange()->is(TypeKind::Pointer))
      error(Args[0]->location(), "DISPOSE requires a pointer variable");
    emit(Opcode::DisposeCell);
    return nullptr;
  }
  case BuiltinProc::Halt: {
    StatementOnly();
    if (!ArgCountIs(0, 1))
      return Err();
    int64_t Code = 1;
    if (Args.size() == 1) {
      ConstResult R = ConstEval.eval(Args[0]);
      if (R.Value.ValueKind == ConstValue::Kind::Int)
        Code = R.Value.Int;
    }
    emit(Opcode::Halt, Code);
    return nullptr;
  }
  case BuiltinProc::WriteInt:
  case BuiltinProc::WriteCard: {
    StatementOnly();
    if (!ArgCountIs(1, 2))
      return Err();
    GenOrdinalArg(0);
    if (Args.size() == 2)
      GenOrdinalArg(1);
    else
      emit(Opcode::PushInt, 0);
    emit(Opcode::CallBuiltin, static_cast<int64_t>(Builtin), 2);
    return nullptr;
  }
  case BuiltinProc::WriteReal: {
    StatementOnly();
    if (!ArgCountIs(1, 2))
      return Err();
    const Type *Ty = genExpr(Args[0]);
    if (!Ty->isError() && !Ty->stripSubrange()->is(TypeKind::Real))
      error(Args[0]->location(), "WriteReal requires a REAL argument");
    if (Args.size() == 2)
      GenOrdinalArg(1);
    else
      emit(Opcode::PushInt, 0);
    emit(Opcode::CallBuiltin, static_cast<int64_t>(Builtin), 2);
    return nullptr;
  }
  case BuiltinProc::WriteChar: {
    StatementOnly();
    if (!ArgCountIs(1, 1))
      return Err();
    const Type *Ty = genExpr(Args[0]);
    if (!Ty->isError() && !Ty->stripSubrange()->is(TypeKind::Char))
      error(Args[0]->location(), "WriteChar requires a CHAR argument");
    emit(Opcode::CallBuiltin, static_cast<int64_t>(Builtin), 1);
    return nullptr;
  }
  case BuiltinProc::WriteString: {
    StatementOnly();
    if (!ArgCountIs(1, 1))
      return Err();
    const Type *Ty = genExpr(Args[0]);
    const Type *Base = Ty->stripSubrange();
    bool Ok = Base->is(TypeKind::String) || Base->is(TypeKind::Char) ||
              ((Base->is(TypeKind::Array) || Base->is(TypeKind::OpenArray)) &&
               Base->element() &&
               Base->element()->stripSubrange()->is(TypeKind::Char));
    if (!Ok && !Base->isError())
      error(Args[0]->location(),
            "WriteString requires a string or character array");
    emit(Opcode::CallBuiltin, static_cast<int64_t>(Builtin), 1);
    return nullptr;
  }
  case BuiltinProc::WriteLn:
    StatementOnly();
    if (!ArgCountIs(0, 0))
      return Err();
    emit(Opcode::CallBuiltin, static_cast<int64_t>(Builtin), 0);
    return nullptr;
  case BuiltinProc::ReadInt: {
    StatementOnly();
    if (!ArgCountIs(1, 1))
      return Err();
    const Type *Ty = GenAddrArg(0);
    if (!Ty->isError() && !Ty->isOrdinal())
      error(Args[0]->location(), "ReadInt requires an ordinal variable");
    emit(Opcode::CallBuiltin, static_cast<int64_t>(Builtin), 1);
    return nullptr;
  }
  }
  return Err();
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void CodeGenerator::genStmts(const StmtList &Stmts) {
  for (const Stmt *S : Stmts)
    genStmt(S);
}

void CodeGenerator::genStmt(const Stmt *S) {
  sched::ctx().charge(sched::CostKind::StmtNode);
  switch (S->kind()) {
  case StmtKind::Assign:
    genAssign(static_cast<const AssignStmt *>(S));
    return;
  case StmtKind::ProcCall: {
    const auto *PC = static_cast<const ProcCallStmt *>(S);
    if (PC->call()->kind() == ExprKind::Call) {
      genCall(static_cast<const CallExpr *>(PC->call()),
              /*AsStatement=*/true);
      return;
    }
    // A bare designator: a parameterless call.
    if (PC->call()->kind() == ExprKind::Designator) {
      CallExpr Synthetic(PC->location(), PC->call(), {});
      genCall(&Synthetic, /*AsStatement=*/true);
      return;
    }
    error(S->location(), "expression is not a statement");
    return;
  }
  case StmtKind::If:
    genIf(static_cast<const IfStmt *>(S));
    return;
  case StmtKind::While:
    genWhile(static_cast<const WhileStmt *>(S));
    return;
  case StmtKind::Repeat:
    genRepeat(static_cast<const RepeatStmt *>(S));
    return;
  case StmtKind::For:
    genFor(static_cast<const ForStmt *>(S));
    return;
  case StmtKind::Loop:
    genLoop(static_cast<const LoopStmt *>(S));
    return;
  case StmtKind::Exit: {
    if (LoopStack.empty()) {
      error(S->location(), "EXIT outside of a LOOP statement");
      return;
    }
    LoopStack.back().push_back(emit(Opcode::Jump));
    return;
  }
  case StmtKind::Return:
    genReturn(static_cast<const ReturnStmt *>(S));
    return;
  case StmtKind::Case:
    genCase(static_cast<const CaseStmt *>(S));
    return;
  case StmtKind::With:
    genWith(static_cast<const WithStmt *>(S));
    return;
  case StmtKind::TryExcept: {
    // Structural compilation: the body runs; EXCEPT handlers are analyzed
    // and compiled but unreachable (our machine raises no exceptions);
    // FINALLY handlers always run.
    const auto *T = static_cast<const TryExceptStmt *>(S);
    genStmts(T->body());
    if (T->isFinally()) {
      genStmts(T->handler());
      return;
    }
    size_t Skip = emit(Opcode::Jump);
    genStmts(T->handler());
    patchTarget(Skip);
    return;
  }
  case StmtKind::Lock: {
    const auto *L = static_cast<const LockStmt *>(S);
    genExpr(L->mutex());
    emit(Opcode::Pop);
    genStmts(L->body());
    return;
  }
  }
}

void CodeGenerator::genCondition(const Expr *E) {
  const Type *Ty = genExpr(E);
  if (!Ty->isError() && !Ty->stripSubrange()->is(TypeKind::Boolean))
    error(E->location(),
          "condition must be BOOLEAN, got " + Ty->describe());
}

void CodeGenerator::genAssign(const AssignStmt *S) {
  if (S->target()->kind() != ExprKind::Designator) {
    error(S->location(), "assignment target is not a designator");
    return;
  }
  const auto *D = static_cast<const DesignatorExpr *>(S->target());

  // Fast path: plain local/global scalar target.
  BaseRef Probe = resolveBase(D);
  if (Probe.Entry &&
      (Probe.Entry->Kind == EntryKind::Var ||
       Probe.Entry->Kind == EntryKind::Param) &&
      Probe.SelectorsUsed == D->selectors().size() &&
      !Probe.Entry->IsVarParam) {
    SymbolEntry &Entry = *Probe.Entry;
    const Type *TargetTy = Entry.Ty ? Entry.Ty : Comp.Types.errorType();
    const Type *ValueTy = genExpr(S->value());
    if (!TypeContext::assignable(TargetTy, ValueTy))
      error(S->location(), "cannot assign " + ValueTy->describe() + " to " +
                               TargetTy->describe());
    if (TargetTy->is(TypeKind::Subrange))
      emit(Opcode::CheckRange, TargetTy->low(), TargetTy->high());
    if (Entry.IsGlobal) {
      emit(Opcode::StoreGlobal, internGlobal(Entry.OwningModule, Entry.Slot));
      return;
    }
    uint32_t OwnerLevel =
        Entry.OwnerScope ? procedureLevel(*Entry.OwnerScope) : UnitLevel;
    if (OwnerLevel == UnitLevel)
      emit(Opcode::StoreLocal, Entry.Slot);
    else
      emit(Opcode::StoreEnclosing, Entry.Slot, UnitLevel - OwnerLevel);
    return;
  }

  // General path: address, value, indirect store.  resolveBase was
  // side-effect-free (no code emitted), so re-resolving inside genAddr is
  // safe; the duplicate lookup mirrors real symbol-table traffic.
  const Type *TargetTy = genAddr(D);
  const Type *ValueTy = genExpr(S->value());
  if (!TypeContext::assignable(TargetTy, ValueTy))
    error(S->location(), "cannot assign " + ValueTy->describe() + " to " +
                             TargetTy->describe());
  if (TargetTy->is(TypeKind::Subrange))
    emit(Opcode::CheckRange, TargetTy->low(), TargetTy->high());
  emit(Opcode::StoreIndirect);
}

void CodeGenerator::genIf(const IfStmt *S) {
  std::vector<size_t> EndJumps;
  for (const IfArm &Arm : S->arms()) {
    genCondition(Arm.Cond);
    size_t Next = emit(Opcode::JumpIfFalse);
    genStmts(Arm.Body);
    EndJumps.push_back(emit(Opcode::Jump));
    patchTarget(Next);
  }
  genStmts(S->elseBody());
  for (size_t J : EndJumps)
    patchTarget(J);
}

void CodeGenerator::genWhile(const WhileStmt *S) {
  size_t Head = Unit.Code.size();
  genCondition(S->cond());
  size_t ExitJump = emit(Opcode::JumpIfFalse);
  genStmts(S->body());
  emit(Opcode::Jump, static_cast<int64_t>(Head));
  patchTarget(ExitJump);
}

void CodeGenerator::genRepeat(const RepeatStmt *S) {
  size_t Head = Unit.Code.size();
  genStmts(S->body());
  genCondition(S->cond());
  emit(Opcode::JumpIfFalse, static_cast<int64_t>(Head));
}

void CodeGenerator::genFor(const ForStmt *S) {
  SymbolEntry *Var = Comp.Resolver.lookupSimple(Self, S->var());
  if (!Var || (Var->Kind != EntryKind::Var && Var->Kind != EntryKind::Param)) {
    error(S->location(), "FOR control variable '" + spell(S->var()) +
                             "' is not a variable");
    return;
  }
  const Type *VarTy = Var->Ty ? Var->Ty : Comp.Types.errorType();
  if (!VarTy->isError() && !VarTy->isOrdinal())
    error(S->location(), "FOR control variable must be ordinal");

  int64_t Step = 1;
  if (S->by()) {
    ConstResult R = ConstEval.eval(S->by());
    if (R.Value.ValueKind == ConstValue::Kind::Int && R.Value.Int != 0)
      Step = R.Value.Int;
    else
      error(S->by()->location(), "BY requires a nonzero constant");
  }

  // var := from
  DesignatorExpr VarRef(S->location(), S->var());
  genAddr(&VarRef);
  const Type *FromTy = genExpr(S->from());
  if (!TypeContext::assignable(VarTy, FromTy))
    error(S->from()->location(), "FOR bounds do not match the control "
                                 "variable's type");
  emit(Opcode::StoreIndirect);

  // limit temp
  const Type *ToTy = genExpr(S->to());
  if (!TypeContext::compatible(VarTy, ToTy))
    error(S->to()->location(), "FOR limit does not match the control "
                               "variable's type");
  int32_t Limit = allocTemp();
  emit(Opcode::StoreLocal, Limit);

  size_t Head = Unit.Code.size();
  genDesignatorValue(&VarRef);
  emit(Opcode::LoadLocal, Limit);
  emit(Step > 0 ? Opcode::CmpLeInt : Opcode::CmpGeInt);
  size_t ExitJump = emit(Opcode::JumpIfFalse);
  genStmts(S->body());
  genAddr(&VarRef);
  emit(Opcode::PushInt, Step);
  emit(Opcode::IncAddr);
  emit(Opcode::Jump, static_cast<int64_t>(Head));
  patchTarget(ExitJump);
}

void CodeGenerator::genLoop(const LoopStmt *S) {
  LoopStack.emplace_back();
  size_t Head = Unit.Code.size();
  genStmts(S->body());
  emit(Opcode::Jump, static_cast<int64_t>(Head));
  for (size_t J : LoopStack.back())
    patchTarget(J);
  LoopStack.pop_back();
}

void CodeGenerator::genCase(const CaseStmt *S) {
  const Type *SubjectTy = genExpr(S->subject());
  if (!SubjectTy->isError() && !SubjectTy->isOrdinal())
    error(S->subject()->location(), "CASE subject must be ordinal");
  int32_t Subject = allocTemp();
  emit(Opcode::StoreLocal, Subject);

  std::vector<size_t> EndJumps;
  for (const CaseArm &Arm : S->arms()) {
    std::vector<size_t> BodyJumps;
    for (const CaseLabel &Label : Arm.Labels) {
      auto Lo = ConstEval.evalOrdinal(Label.Lo);
      auto Hi = Label.Hi ? ConstEval.evalOrdinal(Label.Hi) : Lo;
      if (!Lo || !Hi)
        continue;
      if (*Lo == *Hi) {
        emit(Opcode::LoadLocal, Subject);
        emit(Opcode::PushInt, *Lo);
        emit(Opcode::CmpEqInt);
        BodyJumps.push_back(emit(Opcode::JumpIfTrue));
      } else {
        emit(Opcode::LoadLocal, Subject);
        emit(Opcode::PushInt, *Lo);
        emit(Opcode::CmpGeInt);
        size_t Low = emit(Opcode::JumpIfFalse);
        emit(Opcode::LoadLocal, Subject);
        emit(Opcode::PushInt, *Hi);
        emit(Opcode::CmpLeInt);
        BodyJumps.push_back(emit(Opcode::JumpIfTrue));
        patchTarget(Low);
      }
    }
    size_t NextArm = emit(Opcode::Jump);
    for (size_t J : BodyJumps)
      patchTarget(J);
    genStmts(Arm.Body);
    EndJumps.push_back(emit(Opcode::Jump));
    patchTarget(NextArm);
  }
  if (S->hasElse())
    genStmts(S->elseBody());
  else
    emit(Opcode::Trap, /*case trap*/ 1);
  for (size_t J : EndJumps)
    patchTarget(J);
}

void CodeGenerator::genWith(const WithStmt *S) {
  if (S->record()->kind() != ExprKind::Designator) {
    error(S->location(), "WITH requires a record designator");
    genStmts(S->body());
    return;
  }
  const Type *Ty =
      genAddr(static_cast<const DesignatorExpr *>(S->record()));
  const Type *Base = Ty->stripSubrange();
  if (!Base->is(TypeKind::Record)) {
    if (!Base->isError())
      error(S->location(), "WITH requires a record, got " + Ty->describe());
    emit(Opcode::Pop);
    genStmts(S->body());
    return;
  }
  int32_t Temp = allocTemp();
  emit(Opcode::StoreLocal, Temp);
  WithStack.push_back(WithBinding{Base, Temp});
  genStmts(S->body());
  WithStack.pop_back();
}

void CodeGenerator::genReturn(const ReturnStmt *S) {
  if (!S->value()) {
    if (ResultType)
      error(S->location(), "function must return a value");
    emit(Opcode::Return);
    return;
  }
  if (!ResultType) {
    error(S->location(), "RETURN with a value in a proper procedure");
    genExpr(S->value());
    emit(Opcode::Pop);
    emit(Opcode::Return);
    return;
  }
  const Type *Ty = genExpr(S->value());
  if (!TypeContext::assignable(ResultType, Ty))
    error(S->location(), "return value type " + Ty->describe() +
                             " does not match result type " +
                             ResultType->describe());
  SawReturnValue = true;
  emit(Opcode::ReturnValue);
}
