//===--- Linker.h - Cross-module qualified-name linking ---------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Links separately produced ModuleImages into one program: code units
/// are registered under their qualified names, every callee and global
/// reference is resolved across module boundaries, operands that index
/// per-unit tables are validated once, and a module initialization order
/// (imports first) is derived.  Missing and duplicate symbols become
/// link-time diagnostics rather than execution-time surprises.
///
/// The linker is execution-substrate agnostic: the VM interprets a
/// LinkedProgram, and build sessions use the same linker to turn a
/// session's per-module images into a runnable whole.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_CODEGEN_LINKER_H
#define M2C_CODEGEN_LINKER_H

#include "codegen/MCode.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace m2c::codegen {

/// One code unit with its cross-module references resolved to indexes.
struct LinkedUnit {
  const CodeUnit *Unit = nullptr;
  int32_t ModuleIndex = -1;
  /// This unit's own index in LinkedProgram::units(); execution tiers
  /// stamp it on derived per-unit artifacts (vm tier-1 code) without an
  /// O(units) search.
  int32_t SelfIndex = -1;
  /// Backward jumps in the unit's code, counted during link-time operand
  /// validation.  Zero means the unit is loop-free: the VM's tier
  /// manager promotes such units on a lower invocation threshold since
  /// no on-stack replacement point can ever rescue a running activation.
  uint32_t BackedgeCount = 0;
  std::vector<int32_t> Callees; ///< Linked unit index per CalleeRef.
  struct GlobalSlot {
    int32_t ModuleIndex;
    int32_t Slot;
  };
  std::vector<GlobalSlot> Globals;
};

/// The result of linking: the images (owned), the resolved units, the
/// initialization order, and any link errors.  Movable; LinkedUnit::Unit
/// pointers stay valid across moves (they point into heap storage).
class LinkedProgram {
public:
  LinkedProgram() = default;

  /// True when linking produced no errors.
  bool ok() const { return Errors.empty(); }
  const std::vector<std::string> &errors() const { return Errors; }

  const std::vector<ModuleImage> &images() const { return Images; }
  const std::vector<LinkedUnit> &units() const { return Units; }
  /// Module indexes, imports before importers.
  const std::vector<int32_t> &initOrder() const { return InitOrder; }

  /// Index of unit \p Name in module \p Module, or -1.  Body units use
  /// the reserved "<body>" name.
  int32_t findUnit(Symbol Module, const std::string &Name) const;

private:
  friend class Linker;
  const StringInterner *Names = nullptr;
  std::vector<ModuleImage> Images;
  std::vector<LinkedUnit> Units;
  std::unordered_map<std::string, int32_t> UnitByName;
  std::unordered_map<uint32_t, int32_t> ModuleBySymbol;
  std::vector<int32_t> InitOrder;
  std::vector<std::string> Errors;
};

/// Collects module images and links them.
class Linker {
public:
  explicit Linker(const StringInterner &Names) : Names(Names) {}

  /// Adds one compiled module.  Call before link().
  void addImage(ModuleImage Image) { Images.push_back(std::move(Image)); }

  /// Resolves cross-module references and computes initialization order.
  /// Consumes the added images; call once.
  LinkedProgram link();

private:
  const StringInterner &Names;
  std::vector<ModuleImage> Images;
};

} // namespace m2c::codegen

#endif // M2C_CODEGEN_LINKER_H
