//===--- TypeDescBuilder.cpp - Aggregate shape descriptors ----------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "codegen/TypeDescBuilder.h"

using namespace m2c;
using namespace m2c::codegen;
using namespace m2c::sema;

int32_t m2c::codegen::internTypeDesc(const Type *Ty,
                                     std::vector<TypeDesc> &Table,
                                     TypeDescCache &Cache) {
  Ty = Ty ? Ty->stripSubrange() : nullptr;
  auto It = Cache.find(Ty);
  if (It != Cache.end())
    return It->second;
  TypeDesc D;
  if (Ty) {
    switch (Ty->kind()) {
    case TypeKind::Real:
      D.DescKind = TypeDesc::Kind::Real;
      break;
    case TypeKind::BitSet:
    case TypeKind::Set:
      D.DescKind = TypeDesc::Kind::Set;
      break;
    case TypeKind::Pointer:
    case TypeKind::Nil:
    case TypeKind::Opaque:
      D.DescKind = TypeDesc::Kind::Pointer;
      break;
    case TypeKind::Procedure:
      D.DescKind = TypeDesc::Kind::ProcVal;
      break;
    case TypeKind::Array:
    case TypeKind::OpenArray:
      D.DescKind = TypeDesc::Kind::Array;
      D.Count = Ty->is(TypeKind::Array) ? Ty->length() : 0;
      D.Element = internTypeDesc(Ty->element(), Table, Cache);
      break;
    case TypeKind::Record:
      D.DescKind = TypeDesc::Kind::Record;
      for (const Type::Field &F : Ty->fields())
        D.Fields.push_back(internTypeDesc(F.Ty, Table, Cache));
      break;
    default:
      D.DescKind = TypeDesc::Kind::Int;
      break;
    }
  }
  Table.push_back(std::move(D));
  int32_t Index = static_cast<int32_t>(Table.size() - 1);
  Cache.emplace(Ty, Index);
  return Index;
}
