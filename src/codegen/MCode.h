//===--- MCode.h - Compiled code representation -----------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MCode: the compiler's object format.  "It is a straightforward
/// exercise to generate code for each procedure separately and to merge
/// this code using simple concatenation" (paper section 2.1) — a
/// CodeUnit is the per-procedure unit of that concatenation, and a
/// ModuleImage is the merged compiler output for one module.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_CODEGEN_MCODE_H
#define M2C_CODEGEN_MCODE_H

#include "support/StringInterner.h"

#include <cstdint>
#include <string>
#include <vector>

namespace m2c::codegen {

/// MCode opcodes; see Opcode.def.
enum class Opcode : uint8_t {
#define OPCODE(Name) Name,
#include "codegen/Opcode.def"
};

const char *opcodeName(Opcode Op);

/// One MCode instruction.
struct Instr {
  Opcode Op = Opcode::Halt;
  int64_t A = 0;
  int64_t B = 0;
  double F = 0.0;
};

/// Reference to a procedure in this or another module, resolved at link
/// time by qualified name.
struct CalleeRef {
  Symbol Module;
  Symbol Name; ///< "Outer.Inner" spelling for nested procedures.
};

/// Reference to a module-level variable, resolved at link time.
struct GlobalRef {
  Symbol Module;
  int32_t Slot = 0;
};

/// Shape descriptor for default-initializing aggregates (frame locals,
/// NEW cells).  Descriptors form a per-unit table; children index it.
struct TypeDesc {
  enum class Kind : uint8_t { Int, Real, Set, Pointer, ProcVal, Array, Record };
  Kind DescKind = Kind::Int;
  int64_t Count = 0;              ///< Array element count.
  int32_t Element = -1;           ///< Array element descriptor.
  std::vector<int32_t> Fields;    ///< Record field descriptors.
};

/// One formal parameter of a compiled procedure.
struct ParamDesc {
  bool IsVar = false;
  bool IsAggregate = false; ///< Value arrays/records are copied on call.
};

/// The compiled form of one stream's code: a procedure, or the module
/// body (initialization) code.
struct CodeUnit {
  Symbol Module;
  Symbol Name;               ///< Empty for the module body unit.
  std::string QualifiedName; ///< "Mod.Outer.Inner" / "Mod" for the body.
  int32_t ProcId = -1;       ///< Compilation-assigned id (body: -1).
  bool IsModuleBody = false;
  uint32_t NestLevel = 0; ///< 0 = module level procedures.

  std::vector<ParamDesc> Params;
  uint32_t FrameSize = 0; ///< Parameters + locals + temporaries.

  std::vector<Instr> Code;
  std::vector<CalleeRef> Callees;
  std::vector<GlobalRef> Globals;
  std::vector<TypeDesc> Descs;
  std::vector<Symbol> Strings;

  /// Source weight (token count) — drives long-before-short scheduling
  /// and the workload statistics.
  int64_t Weight = 0;

  /// Renders a readable listing (tests, debugging).
  std::string dump(const StringInterner &Names) const;
};

/// The merged output of compiling one module: the module body unit plus
/// one unit per procedure, plus everything the linker needs.
struct ModuleImage {
  Symbol ModuleName;
  uint32_t GlobalCount = 0;         ///< Module-level variable slots.
  std::vector<Symbol> Imports;      ///< Directly imported modules.
  std::vector<CodeUnit> Units;      ///< Body unit first after finalize().
  std::vector<int32_t> GlobalDescs; ///< Descriptor per global slot...
  std::vector<TypeDesc> Descs;      ///< ...indexing this table.

  /// Index of the module body unit in Units, or -1.
  int32_t bodyUnit() const;

  /// Finds a unit by qualified procedure name; null if absent.
  const CodeUnit *findUnit(const std::string &QualifiedName) const;
};

} // namespace m2c::codegen

#endif // M2C_CODEGEN_MCODE_H
