//===--- MCode.cpp - Compiled code representation --------------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "codegen/MCode.h"

#include <sstream>

using namespace m2c;
using namespace m2c::codegen;

const char *m2c::codegen::opcodeName(Opcode Op) {
  switch (Op) {
#define OPCODE(Name)                                                           \
  case Opcode::Name:                                                           \
    return #Name;
#include "codegen/Opcode.def"
  }
  return "?";
}

std::string CodeUnit::dump(const StringInterner &Names) const {
  std::ostringstream OS;
  OS << (IsModuleBody ? "module body " : "procedure ") << QualifiedName
     << " (frame " << FrameSize << ", params " << Params.size() << ")\n";
  for (size_t I = 0; I < Code.size(); ++I) {
    const Instr &In = Code[I];
    OS << "  " << I << ": " << opcodeName(In.Op);
    switch (In.Op) {
    case Opcode::PushReal:
      OS << " " << In.F;
      break;
    case Opcode::PushStr:
      OS << " \"" << Names.spelling(Strings[static_cast<size_t>(In.A)])
         << "\"";
      break;
    case Opcode::Call:
    case Opcode::PushProc: {
      const CalleeRef &Ref = Callees[static_cast<size_t>(In.A)];
      OS << " " << Names.spelling(Ref.Module) << "."
         << Names.spelling(Ref.Name);
      if (In.Op == Opcode::Call && In.B >= 0)
        OS << " hops=" << In.B;
      break;
    }
    case Opcode::LoadGlobal:
    case Opcode::StoreGlobal:
    case Opcode::LoadGlobalRef: {
      const GlobalRef &Ref = Globals[static_cast<size_t>(In.A)];
      OS << " " << Names.spelling(Ref.Module) << "[" << Ref.Slot << "]";
      break;
    }
    default:
      if (In.A != 0 || In.B != 0)
        OS << " " << In.A;
      if (In.B != 0)
        OS << ", " << In.B;
      break;
    }
    OS << "\n";
  }
  return OS.str();
}

int32_t ModuleImage::bodyUnit() const {
  for (size_t I = 0; I < Units.size(); ++I)
    if (Units[I].IsModuleBody)
      return static_cast<int32_t>(I);
  return -1;
}

const CodeUnit *ModuleImage::findUnit(const std::string &QualifiedName) const {
  for (const CodeUnit &U : Units)
    if (U.QualifiedName == QualifiedName)
      return &U;
  return nullptr;
}
