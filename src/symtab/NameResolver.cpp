//===--- NameResolver.cpp - DKY-strategy symbol lookup --------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "symtab/NameResolver.h"

#include "sched/ExecContext.h"

#include <cassert>

using namespace m2c;
using namespace m2c::symtab;

const char *m2c::symtab::dkyStrategyName(DkyStrategy Strategy) {
  switch (Strategy) {
  case DkyStrategy::Avoidance:
    return "Avoidance";
  case DkyStrategy::Pessimistic:
    return "Pessimistic";
  case DkyStrategy::Skeptical:
    return "Skeptical";
  case DkyStrategy::Optimistic:
    return "Optimistic";
  }
  return "Unknown";
}

NameResolver::ScopeSearchResult NameResolver::searchScope(Scope &S,
                                                          Symbol Name) {
  ScopeSearchResult Result;
  Result.WasIncomplete = !S.isComplete();

  switch (Strategy) {
  case DkyStrategy::Avoidance:
    // Avoidance delays the start of a scope's semantic analysis until its
    // *parent* scope's declaration analysis is complete (section 2.2), so
    // ancestry searches never meet an incomplete table.  Imported
    // interfaces are not parents; searches into them wait for completion
    // pessimistically.
    assert((Result.WasIncomplete ? S.kind() == ScopeKind::DefModule : true) &&
           "Avoidance met an incomplete table outside the import graph");
    [[fallthrough]];

  case DkyStrategy::Pessimistic:
    // "Symbol table search blocks and waits for table completion when it
    // encounters an incomplete symbol table."
    if (Result.WasIncomplete) {
      sched::ctx().charge(sched::CostKind::LookupBlocked);
      sched::ctx().wait(*S.completionEvent());
      Result.Blocked = true;
    }
    Result.Entry = S.find(Name);
    return Result;

  case DkyStrategy::Skeptical:
    // Figure 6: record the completion state, search, and block only when
    // the identifier was missing from an initially incomplete table; then
    // search the now-complete table again.
    Result.Entry = S.find(Name);
    if (Result.Entry || !Result.WasIncomplete)
      return Result;
    sched::ctx().charge(sched::CostKind::LookupBlocked);
    sched::ctx().wait(*S.completionEvent());
    Result.Blocked = true;
    Result.Entry = S.find(Name);
    return Result;

  case DkyStrategy::Optimistic:
    // One DKY event per symbol: wait until either the entry appears or
    // the table completes, then re-check.
    Result.Entry = S.find(Name);
    if (Result.Entry || !Result.WasIncomplete)
      return Result;
    while (true) {
      auto [Entry, Pending] = S.probeOrPending(Name);
      if (Entry) {
        Result.Entry = Entry;
        return Result;
      }
      if (!Pending) // Table completed concurrently; re-probe once.
        break;
      sched::ctx().charge(sched::CostKind::LookupBlocked);
      sched::ctx().wait(*Pending);
      Result.Blocked = true;
      // Either the symbol arrived or the table completed; both exits
      // require a re-check.
      Entry = S.find(Name);
      if (Entry) {
        Result.Entry = Entry;
        return Result;
      }
      if (S.isComplete())
        return Result;
    }
    Result.Entry = S.find(Name);
    return Result;
  }
  return Result;
}

SymbolEntry *NameResolver::lookupSimple(Scope &Self, Symbol Name) {
  // Self scope: a plain probe.  The searching task is the one building
  // this table (declaration analysis) or it runs after the table was
  // completed (statement analysis), so waiting on it could only deadlock.
  Completeness SelfState =
      Self.isComplete() ? Completeness::Complete : Completeness::Incomplete;
  if (SymbolEntry *Entry = Self.find(Name)) {
    Stats.record(LookupForm::Simple, FoundWhen::FirstTry, FoundScope::Self,
                 SelfState);
    return Entry;
  }

  // Builtin names are treated as if declared local to every scope so a
  // builtin reference never incurs DKY waits on outer scopes (section
  // 2.2).  Builtins cannot be redeclared, which makes this ordering safe.
  if (Scope *Builtins = Self.builtins()) {
    if (SymbolEntry *Entry = Builtins->find(Name)) {
      Stats.record(LookupForm::Simple, FoundWhen::FirstTry,
                   FoundScope::Builtin, Completeness::Complete);
      return Entry;
    }
  }

  for (Scope *S = Self.parent(); S; S = S->parent()) {
    ScopeSearchResult R = searchScope(*S, Name);
    if (R.Entry) {
      Stats.record(LookupForm::Simple,
                   R.Blocked ? FoundWhen::AfterDky : FoundWhen::Search,
                   FoundScope::Outer,
                   R.Blocked ? Completeness::Complete
                             : (R.WasIncomplete ? Completeness::Incomplete
                                                : Completeness::Complete));
      return R.Entry;
    }
  }

  Stats.record(LookupForm::Simple, FoundWhen::Never, FoundScope::None,
               Completeness::Complete);
  return nullptr;
}

SymbolEntry *NameResolver::lookupQualified(Scope &ModuleScope, Symbol Name) {
  ScopeSearchResult R = searchScope(ModuleScope, Name);
  if (R.Entry) {
    Stats.record(LookupForm::Qualified,
                 R.Blocked ? FoundWhen::AfterDky : FoundWhen::FirstTry,
                 FoundScope::Other,
                 R.Blocked ? Completeness::Complete
                           : (R.WasIncomplete ? Completeness::Incomplete
                                              : Completeness::Complete));
    return R.Entry;
  }
  Stats.record(LookupForm::Qualified, FoundWhen::Never, FoundScope::None,
               Completeness::Complete);
  return nullptr;
}

SymbolEntry *NameResolver::lookupDesignated(Scope &Designated, Symbol Name) {
  ScopeSearchResult R = searchScope(Designated, Name);
  if (R.Entry) {
    Stats.record(LookupForm::Simple,
                 R.Blocked ? FoundWhen::AfterDky : FoundWhen::FirstTry,
                 FoundScope::Other,
                 R.Blocked ? Completeness::Complete
                           : (R.WasIncomplete ? Completeness::Incomplete
                                              : Completeness::Complete));
    return R.Entry;
  }
  Stats.record(LookupForm::Simple, FoundWhen::Never, FoundScope::None,
               Completeness::Complete);
  return nullptr;
}
