//===--- LookupStats.cpp - Identifier-lookup statistics -------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "symtab/LookupStats.h"

#include <cstdio>
#include <sstream>

using namespace m2c::symtab;

const char *m2c::symtab::foundWhenName(FoundWhen W) {
  switch (W) {
  case FoundWhen::FirstTry:
    return "First try";
  case FoundWhen::Search:
    return "Search";
  case FoundWhen::AfterDky:
    return "After DKY";
  case FoundWhen::Never:
    return "Never";
  }
  return "?";
}

const char *m2c::symtab::foundScopeName(FoundScope S) {
  switch (S) {
  case FoundScope::Self:
    return "self";
  case FoundScope::Other:
    return "other";
  case FoundScope::Outer:
    return "outer";
  case FoundScope::With:
    return "WITH";
  case FoundScope::Builtin:
    return "Builtin";
  case FoundScope::None:
    return "-";
  }
  return "?";
}

const char *m2c::symtab::completenessName(Completeness C) {
  return C == Completeness::Complete ? "complete" : "incomplete";
}

uint64_t LookupStats::total(LookupForm Form) const {
  uint64_t Sum = 0;
  for (unsigned W = 0; W < NumWhens; ++W)
    for (unsigned S = 0; S < NumScopes; ++S)
      for (unsigned C = 0; C < NumCompleteness; ++C)
        Sum += get(Form, static_cast<FoundWhen>(W), static_cast<FoundScope>(S),
                   static_cast<Completeness>(C));
  return Sum;
}

uint64_t LookupStats::dkyBlockages() const {
  uint64_t Sum = 0;
  for (unsigned F = 0; F < NumForms; ++F)
    for (unsigned S = 0; S < NumScopes; ++S)
      for (unsigned C = 0; C < NumCompleteness; ++C)
        Sum += get(static_cast<LookupForm>(F), FoundWhen::AfterDky,
                   static_cast<FoundScope>(S), static_cast<Completeness>(C));
  return Sum;
}

void LookupStats::merge(const LookupStats &Other) {
  for (unsigned I = 0; I < Counts.size(); ++I)
    Counts[I].fetch_add(Other.Counts[I].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
}

std::string LookupStats::renderTable() const {
  std::ostringstream OS;
  auto RenderHalf = [&](LookupForm Form, const char *Title, bool ShowScope) {
    uint64_t Total = total(Form);
    OS << Title << " (total " << Total << ")\n";
    char Line[160];
    std::snprintf(Line, sizeof(Line), "  %-10s %-8s %-11s %10s %7s\n",
                  "Found when", ShowScope ? "scope" : "", "completeness",
                  "number", "%");
    OS << Line;
    for (unsigned W = 0; W < NumWhens; ++W)
      for (unsigned S = 0; S < NumScopes; ++S)
        for (unsigned C = 0; C < NumCompleteness; ++C) {
          uint64_t N = get(Form, static_cast<FoundWhen>(W),
                           static_cast<FoundScope>(S),
                           static_cast<Completeness>(C));
          if (N == 0)
            continue;
          double Pct = Total ? 100.0 * static_cast<double>(N) /
                                   static_cast<double>(Total)
                             : 0.0;
          std::snprintf(
              Line, sizeof(Line), "  %-10s %-8s %-11s %10llu %6.2f\n",
              foundWhenName(static_cast<FoundWhen>(W)),
              ShowScope ? foundScopeName(static_cast<FoundScope>(S)) : "",
              static_cast<FoundWhen>(W) == FoundWhen::Never
                  ? "-"
                  : completenessName(static_cast<Completeness>(C)),
              static_cast<unsigned long long>(N), Pct);
          OS << Line;
        }
  };
  RenderHalf(LookupForm::Simple, "Simple Identifier", true);
  OS << "\n";
  RenderHalf(LookupForm::Qualified, "Qualified Identifier", false);
  return OS.str();
}
