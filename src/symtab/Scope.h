//===--- Scope.h - Per-scope concurrent symbol tables -----------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "We use a separate symbol table for each scope of declaration
/// (definition module, main module, procedure).  These symbol tables are
/// linked together to provide the correct scope ancestry path for
/// resolving names." (paper section 2.2)
///
/// A scope's table may be searched while the task building it is still
/// running; the completion event is what DKY strategies wait on.  Entry
/// creation is atomic with respect to search (footnote 1 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SYMTAB_SCOPE_H
#define M2C_SYMTAB_SCOPE_H

#include "sched/Event.h"
#include "support/Arena.h"
#include "symtab/SymbolEntry.h"

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace m2c::symtab {

/// The declaration-scope kinds of the compiler.
enum class ScopeKind : uint8_t {
  Builtin,   ///< Names predefined by the compiler.
  DefModule, ///< An imported definition module's interface.
  Module,    ///< The main (implementation) module body.
  Procedure, ///< A procedure's parameters and locals.
  Record,    ///< A record type's field table ("other" search scopes).
};

const char *scopeKindName(ScopeKind Kind);

/// One scope's symbol table.
class Scope {
public:
  Scope(std::string Name, ScopeKind Kind, Scope *Parent, Scope *Builtins);
  Scope(const Scope &) = delete;
  Scope &operator=(const Scope &) = delete;

  const std::string &name() const { return Name; }
  ScopeKind kind() const { return Kind; }
  Scope *parent() const { return Parent; }
  Scope *builtins() const { return Builtins; }

  /// Result of insert(): the entry now registered under the name, plus
  /// whether this call created it (false: pre-existing clash).
  struct InsertResult {
    SymbolEntry *Entry;
    bool Inserted;
  };

  /// Inserts a copy of \p Proto, allocated in this scope's arena so entry
  /// storage costs one pointer bump instead of one malloc.  On a name
  /// clash the table is left unchanged and the existing entry is
  /// returned with Inserted == false.  Signals any Optimistic per-symbol
  /// event pending on this name.  The copy is published atomically with
  /// respect to find() (paper footnote 1).
  InsertResult insert(const SymbolEntry &Proto);

  /// Probes this table only (no waiting, no ancestry chaining).  Charges
  /// one LookupProbe.
  SymbolEntry *find(Symbol Name);

  /// True once the building task declared the table complete.
  bool isComplete() const { return Completed->isSignaled(); }

  /// The table-completion event DKY strategies wait on.
  const sched::EventPtr &completionEvent() const { return Completed; }

  /// Marks the table complete: signals the completion event and every
  /// pending Optimistic per-symbol event (so blocked searchers re-check
  /// and move outward).
  void markComplete();

  /// Optimistic handling: atomically re-probes for \p Name and, on a
  /// miss, returns the (created-if-needed) per-symbol event to wait on.
  /// Both results are null when the table completed concurrently (the
  /// caller simply continues outward).  Creating an event charges
  /// EventCreate — the bookkeeping cost the paper found to outweigh
  /// Optimistic's gains.
  std::pair<SymbolEntry *, sched::EventPtr> probeOrPending(Symbol Name);

  /// Number of entries inserted so far.
  size_t size() const;

  /// Snapshot of entries in insertion order (used by code generation and
  /// tests; call after completion).
  std::vector<const SymbolEntry *> entries() const;

private:
  const std::string Name;
  const ScopeKind Kind;
  Scope *const Parent;
  Scope *const Builtins;

  mutable std::mutex Mutex;
  support::Arena EntryArena; ///< Owns entry storage; guarded by Mutex.
  std::vector<SymbolEntry *> Owned; ///< Insertion order, for entries().
  std::unordered_map<Symbol, SymbolEntry *, SymbolHash> Table;
  std::unordered_map<Symbol, sched::EventPtr, SymbolHash> PendingSymbols;
  bool CompleteFlag = false; ///< Guarded by Mutex; see probeOrPending().
  sched::EventPtr Completed;
};

} // namespace m2c::symtab

#endif // M2C_SYMTAB_SCOPE_H
