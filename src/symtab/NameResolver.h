//===--- NameResolver.h - DKY-strategy symbol lookup ------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Doesn't-Know-Yet (DKY) problem: a concurrent compiler's symbol
/// table search has a third outcome besides found/not-found — the table
/// being searched may still be under construction by another task.  The
/// four strategies of paper section 2.2 are implemented here:
///
///  * Avoidance — tasks are not started until the tables they search are
///    complete, so search never meets an incomplete table.
///  * Pessimistic — block on any incomplete table before searching it.
///  * Skeptical (Figure 6) — search the incomplete table first; block
///    only on a miss, then search again after completion.
///  * Optimistic — per-symbol events: block on the searched name's event;
///    table completion signals all pending events.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SYMTAB_NAMERESOLVER_H
#define M2C_SYMTAB_NAMERESOLVER_H

#include "symtab/LookupStats.h"
#include "symtab/Scope.h"

namespace m2c::symtab {

/// The DKY strategy in force for a compilation (section 2.2).
enum class DkyStrategy : uint8_t {
  Avoidance,
  Pessimistic,
  Skeptical,
  Optimistic,
};

const char *dkyStrategyName(DkyStrategy Strategy);

/// Strategy-parameterized symbol lookup over linked scopes.
///
/// One NameResolver is shared by all tasks of a compilation; it is
/// stateless apart from the statistics sink, so concurrent use is safe.
class NameResolver {
public:
  NameResolver(DkyStrategy Strategy, LookupStats &Stats)
      : Strategy(Strategy), Stats(Stats) {}

  DkyStrategy strategy() const { return Strategy; }
  LookupStats &stats() { return Stats; }

  /// Resolves a simple identifier: probes \p Self, then the builtin
  /// scope, then chains outward through the scope ancestry applying the
  /// DKY strategy.  Returns null if the name is nowhere declared.
  SymbolEntry *lookupSimple(Scope &Self, Symbol Name);

  /// Resolves a qualified identifier M.x against module scope
  /// \p ModuleScope, applying the DKY strategy to that single scope.
  SymbolEntry *lookupQualified(Scope &ModuleScope, Symbol Name);

  /// Resolves a name against one explicitly designated scope (record
  /// field tables and the like — the "other" scope class of Table 2),
  /// applying the DKY strategy to that single scope.
  SymbolEntry *lookupDesignated(Scope &Designated, Symbol Name);

  /// Records a WITH-scope hit (field made visible by a WITH statement);
  /// the binding itself is task-local in the statement analyzer.
  void recordWithHit() {
    Stats.record(LookupForm::Simple, FoundWhen::FirstTry, FoundScope::With,
                 Completeness::Complete);
  }

private:
  struct ScopeSearchResult {
    SymbolEntry *Entry = nullptr;
    bool WasIncomplete = false;
    bool Blocked = false;
  };

  /// Searches one scope under the configured strategy, waiting per the
  /// strategy's rules.
  ScopeSearchResult searchScope(Scope &S, Symbol Name);

  DkyStrategy Strategy;
  LookupStats &Stats;
};

} // namespace m2c::symtab

#endif // M2C_SYMTAB_NAMERESOLVER_H
