//===--- Scope.cpp - Per-scope concurrent symbol tables -------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "symtab/Scope.h"

#include "sched/ExecContext.h"

#include <cassert>
#include <type_traits>

using namespace m2c;
using namespace m2c::symtab;

const char *m2c::symtab::entryKindName(EntryKind Kind) {
  switch (Kind) {
  case EntryKind::Const:
    return "constant";
  case EntryKind::Type:
    return "type";
  case EntryKind::Var:
    return "variable";
  case EntryKind::Proc:
    return "procedure";
  case EntryKind::Module:
    return "module";
  case EntryKind::EnumLiteral:
    return "enumeration literal";
  case EntryKind::Param:
    return "parameter";
  case EntryKind::Field:
    return "field";
  }
  return "symbol";
}

const char *m2c::symtab::scopeKindName(ScopeKind Kind) {
  switch (Kind) {
  case ScopeKind::Builtin:
    return "builtin";
  case ScopeKind::DefModule:
    return "definition module";
  case ScopeKind::Module:
    return "module";
  case ScopeKind::Procedure:
    return "procedure";
  case ScopeKind::Record:
    return "record";
  }
  return "scope";
}

Scope::Scope(std::string Name, ScopeKind Kind, Scope *Parent, Scope *Builtins)
    : Name(std::move(Name)), Kind(Kind), Parent(Parent), Builtins(Builtins),
      Completed(sched::makeEvent("symtab." + this->Name + ".complete",
                                 sched::EventKind::Handled)) {}

// Entries are bump-allocated and never individually freed, so the arena
// may drop destructor bookkeeping entirely.
static_assert(std::is_trivially_destructible_v<SymbolEntry>,
              "SymbolEntry must stay trivially destructible for arena use");

Scope::InsertResult Scope::insert(const SymbolEntry &Proto) {
  assert(!isComplete() && "insert into completed symbol table");
  sched::EventPtr Pending;
  SymbolEntry *Entry;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Table.find(Proto.Name);
    if (It != Table.end())
      return {It->second, false};
    Entry = EntryArena.create<SymbolEntry>(Proto);
    Entry->OwnerScope = this;
    Table.emplace(Entry->Name, Entry);
    Owned.push_back(Entry);
    auto PendingIt = PendingSymbols.find(Entry->Name);
    if (PendingIt != PendingSymbols.end()) {
      Pending = PendingIt->second;
      PendingSymbols.erase(PendingIt);
    }
  }
  if (Pending && !Pending->isSignaled())
    sched::ctx().signal(*Pending);
  return {Entry, true};
}

SymbolEntry *Scope::find(Symbol Name) {
  sched::ctx().charge(sched::CostKind::LookupProbe);
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Table.find(Name);
  return It == Table.end() ? nullptr : It->second;
}

void Scope::markComplete() {
  std::vector<sched::EventPtr> Pending;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    CompleteFlag = true;
    for (auto &[Name, Event] : PendingSymbols)
      Pending.push_back(Event);
    PendingSymbols.clear();
  }
  sched::ctx().signal(*Completed);
  // "When the table is completed, it is traversed and all unsignaled
  // events ... are signaled, allowing blocked tasks to continue
  // searching." (section 2.3.3, Optimistic Handling)
  for (const sched::EventPtr &E : Pending)
    if (!E->isSignaled())
      sched::ctx().signal(*E);
}

std::pair<SymbolEntry *, sched::EventPtr> Scope::probeOrPending(Symbol Name) {
  bool Created = false;
  std::pair<SymbolEntry *, sched::EventPtr> Result{nullptr, nullptr};
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Table.find(Name);
    if (It != Table.end()) {
      Result.first = It->second;
      return Result;
    }
    // The table may have completed between the caller's completeness check
    // and this probe; a pending event created now would never be signaled.
    if (CompleteFlag)
      return Result;
    auto [PendIt, Inserted] = PendingSymbols.emplace(Name, nullptr);
    if (Inserted) {
      PendIt->second = sched::makeEvent("symtab." + this->Name + ".pending",
                                        sched::EventKind::Handled);
      Created = true;
    }
    Result.second = PendIt->second;
  }
  if (Created)
    sched::ctx().charge(sched::CostKind::EventCreate);
  return Result;
}

size_t Scope::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Owned.size();
}

std::vector<const SymbolEntry *> Scope::entries() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return std::vector<const SymbolEntry *>(Owned.begin(), Owned.end());
}
