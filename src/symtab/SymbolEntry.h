//===--- SymbolEntry.h - Compiler symbol-table entries ----------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#ifndef M2C_SYMTAB_SYMBOLENTRY_H
#define M2C_SYMTAB_SYMBOLENTRY_H

#include "support/SourceLocation.h"
#include "support/StringInterner.h"

#include <cstdint>

namespace m2c {

namespace sema {
class Type;
} // namespace sema

namespace symtab {

class Scope;

/// What a name denotes.
enum class EntryKind : uint8_t {
  Const,
  Type,
  Var,
  Proc,
  Module,      ///< An imported module name (qualifies lookups).
  EnumLiteral,
  Param,
  Field,       ///< Record fields (live in per-record field tables).
};

/// Returns a printable name for \p Kind.
const char *entryKindName(EntryKind Kind);

/// A compile-time constant value.
struct ConstValue {
  enum class Kind : uint8_t {
    None,
    Int,     ///< Also CARDINAL and subranges.
    Real,
    Bool,
    Char,
    String,  ///< Interned spelling.
    Set,     ///< Bit mask.
    Nil,
  };

  Kind ValueKind = Kind::None;
  int64_t Int = 0;
  double Real = 0.0;
  Symbol Str;
  uint64_t SetBits = 0;

  static ConstValue makeInt(int64_t V) {
    ConstValue C;
    C.ValueKind = Kind::Int;
    C.Int = V;
    return C;
  }
  static ConstValue makeReal(double V) {
    ConstValue C;
    C.ValueKind = Kind::Real;
    C.Real = V;
    return C;
  }
  static ConstValue makeBool(bool V) {
    ConstValue C;
    C.ValueKind = Kind::Bool;
    C.Int = V ? 1 : 0;
    return C;
  }
  static ConstValue makeChar(char V) {
    ConstValue C;
    C.ValueKind = Kind::Char;
    C.Int = static_cast<unsigned char>(V);
    return C;
  }
  static ConstValue makeString(Symbol S) {
    ConstValue C;
    C.ValueKind = Kind::String;
    C.Str = S;
    return C;
  }
  static ConstValue makeSet(uint64_t Bits) {
    ConstValue C;
    C.ValueKind = Kind::Set;
    C.SetBits = Bits;
    return C;
  }
  static ConstValue makeNil() {
    ConstValue C;
    C.ValueKind = Kind::Nil;
    return C;
  }

  bool isNone() const { return ValueKind == Kind::None; }
};

/// One symbol-table entry.  Entries are created atomically with respect
/// to symbol-table search (paper footnote 1): a Scope publishes an entry
/// only once it is fully initialized.
struct SymbolEntry {
  Symbol Name;
  EntryKind Kind = EntryKind::Var;
  SourceLocation Loc;

  /// The entry's type: the denoted type for Type entries, the value type
  /// for everything else (procedure signature type for Proc entries).
  const sema::Type *Ty = nullptr;

  /// Const and EnumLiteral values (EnumLiteral ordinal in Int).
  ConstValue Value;

  /// Module entries: the imported definition module's scope.
  Scope *ModuleScope = nullptr;

  /// Var/Param storage: frame slot index.
  int32_t Slot = -1;
  bool IsVarParam = false;
  bool IsGlobal = false;          ///< Module-level storage.
  Symbol OwningModule;            ///< Module whose frame holds the slot.

  /// Proc entries: dense per-program procedure id and defining module.
  int32_t ProcId = -1;

  /// Builtin procedures/types: interpreted by the semantic analyzer.
  int16_t BuiltinId = -1;
  bool isBuiltin() const { return BuiltinId >= 0; }

  /// The scope this entry was inserted into (set by Scope::insert); code
  /// generation uses it for local/global/up-level addressing decisions.
  Scope *OwnerScope = nullptr;
};

} // namespace symtab
} // namespace m2c

#endif // M2C_SYMTAB_SYMBOLENTRY_H
