//===--- LookupStats.h - Identifier-lookup statistics -----------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instrumentation for the paper's Table 2 ("Identifier Lookup
/// Statistics"): every lookup is classified by identifier form (simple or
/// qualified), by when it was found (first try / outward search / after a
/// DKY blockage / never), by the scope it was found in (self / other /
/// outer / WITH / builtin), and by the completeness of that scope when
/// the search started.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SYMTAB_LOOKUPSTATS_H
#define M2C_SYMTAB_LOOKUPSTATS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace m2c::symtab {

/// Identifier form ("Simple Identifier" vs "Qualified Identifier").
enum class LookupForm : uint8_t { Simple, Qualified };

/// When the identifier was found ("Found when" column).
enum class FoundWhen : uint8_t { FirstTry, Search, AfterDky, Never };

/// The scope the identifier was found in ("scope" column).
enum class FoundScope : uint8_t { Self, Other, Outer, With, Builtin, None };

/// Completeness of the scope at the start of the search.
enum class Completeness : uint8_t { Complete, Incomplete };

const char *foundWhenName(FoundWhen W);
const char *foundScopeName(FoundScope S);
const char *completenessName(Completeness C);

/// Thread-safe lookup-outcome counters.
class LookupStats {
public:
  LookupStats() = default;
  LookupStats(const LookupStats &) = delete;
  LookupStats &operator=(const LookupStats &) = delete;

  void record(LookupForm Form, FoundWhen When, FoundScope Scope,
              Completeness Completeness) {
    slot(Form, When, Scope, Completeness)
        .fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t get(LookupForm Form, FoundWhen When, FoundScope Scope,
               Completeness Completeness) const {
    return const_cast<LookupStats *>(this)
        ->slot(Form, When, Scope, Completeness)
        .load(std::memory_order_relaxed);
  }

  /// Total lookups recorded for \p Form.
  uint64_t total(LookupForm Form) const;

  /// Count of lookups that incurred a DKY blockage.
  uint64_t dkyBlockages() const;

  /// Renders Table 2 (both halves) with counts and percentages, skipping
  /// all-zero rows.
  std::string renderTable() const;

  /// Merges counts from \p Other into this.
  void merge(const LookupStats &Other);

private:
  static constexpr unsigned NumForms = 2;
  static constexpr unsigned NumWhens = 4;
  static constexpr unsigned NumScopes = 6;
  static constexpr unsigned NumCompleteness = 2;

  std::atomic<uint64_t> &slot(LookupForm Form, FoundWhen When,
                              FoundScope Scope, Completeness Completeness) {
    unsigned Index =
        ((static_cast<unsigned>(Form) * NumWhens + static_cast<unsigned>(When)) *
             NumScopes +
         static_cast<unsigned>(Scope)) *
            NumCompleteness +
        static_cast<unsigned>(Completeness);
    return Counts[Index];
  }

  std::array<std::atomic<uint64_t>,
             NumForms * NumWhens * NumScopes * NumCompleteness>
      Counts{};
};

} // namespace m2c::symtab

#endif // M2C_SYMTAB_LOOKUPSTATS_H
