//===--- DeadStoreElimination.cpp - Backward liveness DSE ------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// The "dse" pass, in two steps:
///
///  1. Backward liveness over basic blocks.  A `StoreLocal x` with x
///     dead after it is rewritten to `Pop` — a 1:1 rewrite, so the
///     operand stack stays balanced and no jump target moves.  Calls
///     conservatively use every slot (a nested procedure may read this
///     frame up-level); address-taken slots are live everywhere; at a
///     Return/Halt/Trap nothing local is live.
///
///  2. Cancellation: a side-effect-free single-value producer followed
///     immediately by a `Pop` that is not a jump target is a net no-op;
///     both are deleted and the code compacted (jumps into the deleted
///     producer land after the pair — the same no-op).  Iterated, this
///     unwinds whole dead `PushInt ...; Pop` chains the liveness step
///     exposed.
///
//===----------------------------------------------------------------------===//

#include "opt/PassManager.h"
#include "opt/Rewrite.h"

#include <cstdint>

using namespace m2c;
using namespace m2c::codegen;
using namespace m2c::opt;

namespace {

/// Basic block [Begin, End) with successor block indices.
struct Block {
  size_t Begin = 0;
  size_t End = 0;
  size_t Succ[2] = {SIZE_MAX, SIZE_MAX}; ///< SIZE_MAX = exit/none.
};

class DeadStoreEliminationPass : public Pass {
public:
  std::string_view name() const override { return "dse"; }

  bool run(CodeUnit &Unit, StatisticSet &Stats) const override {
    bool Changed = killDeadStores(Unit, Stats);
    Changed |= cancelPops(Unit, Stats);
    return Changed;
  }

private:
  bool killDeadStores(CodeUnit &Unit, StatisticSet &Stats) const {
    std::vector<Instr> &Code = Unit.Code;
    if (Code.empty())
      return false;
    const size_t Slots = detail::localSlotCount(Unit);
    if (Slots == 0)
      return false;
    const std::vector<bool> Taken = detail::addressTakenLocals(Unit);

    // Partition into blocks: leaders are jump targets plus fall-throughs
    // after jumps/terminators (finer than value-tracking needs, exact
    // for dataflow).
    std::vector<bool> Leader = detail::blockLeaders(Code);
    for (size_t I = 0; I + 1 < Code.size(); ++I)
      if (detail::isJump(Code[I].Op) || detail::isTerminator(Code[I].Op))
        Leader[I + 1] = true;

    std::vector<size_t> BlockOf(Code.size(), 0);
    std::vector<Block> Blocks;
    for (size_t I = 0; I < Code.size(); ++I) {
      if (Leader[I]) {
        if (!Blocks.empty())
          Blocks.back().End = I;
        Blocks.push_back(Block{I, Code.size(), {SIZE_MAX, SIZE_MAX}});
      }
      BlockOf[I] = Blocks.size() - 1;
    }
    for (Block &B : Blocks) {
      const Instr &Last = Code[B.End - 1];
      size_t N = 0;
      if (detail::isJump(Last.Op) &&
          static_cast<size_t>(Last.A) < Code.size())
        B.Succ[N++] = BlockOf[static_cast<size_t>(Last.A)];
      if (!detail::isTerminator(Last.Op) && B.End < Code.size())
        B.Succ[N++] = BlockOf[B.End];
    }

    // Per-block liveness to a fixed point.  Address-taken slots are
    // simply never deleted below, so they need no bits here; falling
    // off the end (or Return) leaves nothing live.
    auto Scan = [&](const Block &B, std::vector<bool> Live,
                    bool Rewrite) -> std::vector<bool> {
      uint64_t Killed = 0;
      for (size_t I = B.End; I-- > B.Begin;) {
        Instr &In = Code[I];
        switch (In.Op) {
        case Opcode::StoreLocal:
          if (!Live[static_cast<size_t>(In.A)] &&
              !Taken[static_cast<size_t>(In.A)]) {
            if (Rewrite) {
              In = Instr{Opcode::Pop, 0, 0, 0.0};
              ++Killed;
            }
          } else {
            Live[static_cast<size_t>(In.A)] = false;
          }
          break;
        case Opcode::LoadLocal:
        case Opcode::LoadLocalRef:
          Live[static_cast<size_t>(In.A)] = true;
          break;
        case Opcode::Call:
        case Opcode::CallIndirect:
        case Opcode::CallBuiltin:
          Live.assign(Slots, true);
          break;
        default:
          break;
        }
      }
      if (Killed)
        Stats.add("opt.dse.stores", Killed);
      return Live;
    };

    std::vector<std::vector<bool>> LiveIn(
        Blocks.size(), std::vector<bool>(Slots, false));
    for (bool Dirty = true; Dirty;) {
      Dirty = false;
      for (size_t B = Blocks.size(); B-- > 0;) {
        std::vector<bool> Out(Slots, false);
        for (size_t S : Blocks[B].Succ)
          if (S != SIZE_MAX)
            for (size_t V = 0; V < Slots; ++V)
              if (LiveIn[S][V])
                Out[V] = true;
        std::vector<bool> In = Scan(Blocks[B], std::move(Out),
                                    /*Rewrite=*/false);
        if (In != LiveIn[B]) {
          LiveIn[B] = std::move(In);
          Dirty = true;
        }
      }
    }

    bool Changed = false;
    for (size_t B = 0; B < Blocks.size(); ++B) {
      std::vector<bool> Out(Slots, false);
      for (size_t S : Blocks[B].Succ)
        if (S != SIZE_MAX)
          for (size_t V = 0; V < Slots; ++V)
            if (LiveIn[S][V])
              Out[V] = true;
      size_t Before = Stats.get("opt.dse.stores");
      Scan(Blocks[B], std::move(Out), /*Rewrite=*/true);
      Changed |= Stats.get("opt.dse.stores") != Before;
    }
    return Changed;
  }

  bool cancelPops(CodeUnit &Unit, StatisticSet &Stats) const {
    std::vector<Instr> &Code = Unit.Code;
    bool Changed = false;
    for (;;) {
      const std::vector<bool> Target = detail::jumpTargets(Code);
      std::vector<bool> Dead(Code.size(), false);
      uint64_t Pairs = 0;
      for (size_t I = 0; I + 1 < Code.size(); ++I) {
        if (Dead[I] || Dead[I + 1])
          continue;
        if (detail::isRemovableProducer(Code[I].Op) &&
            Code[I + 1].Op == Opcode::Pop && !Target[I + 1]) {
          Dead[I] = Dead[I + 1] = true;
          ++Pairs;
          ++I; // Skip past the consumed Pop.
        }
      }
      if (!Pairs)
        break;
      detail::compactCode(Code, Dead);
      Stats.add("opt.dse.removed", Pairs * 2);
      Changed = true;
    }
    return Changed;
  }
};

} // namespace

std::unique_ptr<Pass> opt::createDeadStoreEliminationPass() {
  return std::make_unique<DeadStoreEliminationPass>();
}
