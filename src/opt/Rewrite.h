//===--- Rewrite.h - Shared pass machinery ----------------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analysis and rewrite helpers shared by the opt passes: opcode
/// classification, jump-target/leader bitmaps, the address-taken local
/// set, and the dead-mask compaction that remaps jump targets.
///
/// The safety rules every pass builds on:
///
///  - A frame slot whose address is ever taken (LoadLocalRef) may be
///    read or written through that address by *any* later instruction
///    (StoreIndirect, IncAddr, SetIncl/SetExcl, VAR arguments...), so
///    address-taken slots are excluded from value tracking entirely.
///  - Any call (Call/CallIndirect/CallBuiltin) may reach this frame
///    up-level through a nested procedure (LoadEnclosing/StoreEnclosing
///    walk the static link), so calls conservatively use and clobber
///    every local slot.
///  - Jump targets are block leaders; facts never flow across them.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_OPT_REWRITE_H
#define M2C_OPT_REWRITE_H

#include "codegen/MCode.h"

#include <cstddef>
#include <vector>

namespace m2c::opt::detail {

inline bool isJump(codegen::Opcode Op) {
  using codegen::Opcode;
  return Op == Opcode::Jump || Op == Opcode::JumpIfFalse ||
         Op == Opcode::JumpIfTrue;
}

inline bool isCall(codegen::Opcode Op) {
  using codegen::Opcode;
  return Op == Opcode::Call || Op == Opcode::CallIndirect ||
         Op == Opcode::CallBuiltin;
}

/// Control never falls through these.
inline bool isTerminator(codegen::Opcode Op) {
  using codegen::Opcode;
  return Op == Opcode::Jump || Op == Opcode::Return ||
         Op == Opcode::ReturnValue || Op == Opcode::Halt ||
         Op == Opcode::Trap;
}

/// Pushes exactly one value and has no side effect, no trap, and no
/// dependence on mutable frame state beyond the named slot — the set of
/// producers a following Pop may cancel.
inline bool isRemovableProducer(codegen::Opcode Op) {
  using codegen::Opcode;
  switch (Op) {
  case Opcode::PushInt:
  case Opcode::PushReal:
  case Opcode::PushSet:
  case Opcode::PushNil:
  case Opcode::PushStr:
  case Opcode::PushProc:
  case Opcode::LoadLocal:
  case Opcode::LoadLocalRef:
  case Opcode::Dup:
    return true;
  default:
    return false;
  }
}

/// Bitmap of instructions some jump targets (a target inside a pattern
/// window would see half a rewrite).  Targets at Code.size() — jumps to
/// the implicit return — have no instruction to mark.
std::vector<bool> jumpTargets(const std::vector<codegen::Instr> &Code);

/// Bitmap of basic-block leaders: instruction 0 plus every jump target.
/// Value-tracking passes clear their facts at leaders; fall-through
/// after a conditional jump keeps them (the only other way in is a jump,
/// and jump targets are leaders).
std::vector<bool> blockLeaders(const std::vector<codegen::Instr> &Code);

/// Bitmap (indexed by slot, size localSlotCount) of frame slots whose
/// address is taken somewhere in the unit.
std::vector<bool> addressTakenLocals(const codegen::CodeUnit &Unit);

/// Number of frame slots the unit can name: FrameSize, widened by any
/// higher slot an instruction references (temps allocated past the
/// declared frame).
size_t localSlotCount(const codegen::CodeUnit &Unit);

/// Removes every instruction marked in \p Dead, remapping jump targets
/// (a target that dies maps to the next surviving instruction; the
/// implicit-return target Code.size() stays the end).  Returns how many
/// instructions were removed.
size_t compactCode(std::vector<codegen::Instr> &Code,
                   const std::vector<bool> &Dead);

} // namespace m2c::opt::detail

#endif // M2C_OPT_REWRITE_H
