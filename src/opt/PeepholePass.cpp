//===--- PeepholePass.cpp - Window folding, fusion, jump threading ---------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// The former codegen::Peephole, registered as the "peephole" pass:
/// constant folding of integer and boolean operations, algebraic
/// identities, comparison/NOT fusion, jump threading and dead-jump
/// elimination.  One run() sweeps to an internal fixed point, so the
/// pass is idempotent and -O1 output stays byte-identical to what the
/// pre-pass-manager `Optimize` flag produced.
///
//===----------------------------------------------------------------------===//

#include "opt/PassManager.h"
#include "opt/Rewrite.h"

#include <optional>
#include <vector>

using namespace m2c;
using namespace m2c::codegen;
using namespace m2c::opt;

namespace {

using detail::isJump;

/// Folds a binary integer/boolean operation; null if not foldable (or if
/// folding would hide a runtime trap).
std::optional<int64_t> foldBinary(Opcode Op, int64_t A, int64_t B) {
  switch (Op) {
  case Opcode::AddInt:
    return A + B;
  case Opcode::SubInt:
    return A - B;
  case Opcode::MulInt:
    return A * B;
  case Opcode::CmpEqInt:
    return A == B;
  case Opcode::CmpNeInt:
    return A != B;
  case Opcode::CmpLtInt:
    return A < B;
  case Opcode::CmpLeInt:
    return A <= B;
  case Opcode::CmpGtInt:
    return A > B;
  case Opcode::CmpGeInt:
    return A >= B;
  case Opcode::DivInt:
  case Opcode::ModInt:
    // Folding 1 DIV 0 would delete a mandatory runtime trap.
    if (B == 0)
      return std::nullopt;
    return Op == Opcode::DivInt ? A / B : A % B;
  default:
    return std::nullopt;
  }
}

/// The comparison with the inverse sense, or the same opcode if none.
Opcode invertedCompare(Opcode Op) {
  switch (Op) {
  case Opcode::CmpEqInt:
    return Opcode::CmpNeInt;
  case Opcode::CmpNeInt:
    return Opcode::CmpEqInt;
  case Opcode::CmpLtInt:
    return Opcode::CmpGeInt;
  case Opcode::CmpLeInt:
    return Opcode::CmpGtInt;
  case Opcode::CmpGtInt:
    return Opcode::CmpLeInt;
  case Opcode::CmpGeInt:
    return Opcode::CmpLtInt;
  case Opcode::CmpEqReal:
    return Opcode::CmpNeReal;
  case Opcode::CmpNeReal:
    return Opcode::CmpEqReal;
  case Opcode::CmpLtReal:
    return Opcode::CmpGeReal;
  case Opcode::CmpLeReal:
    return Opcode::CmpGtReal;
  case Opcode::CmpGtReal:
    return Opcode::CmpLeReal;
  case Opcode::CmpGeReal:
    return Opcode::CmpLtReal;
  case Opcode::CmpEqPtr:
    return Opcode::CmpNePtr;
  case Opcode::CmpNePtr:
    return Opcode::CmpEqPtr;
  default:
    return Op;
  }
}

/// Counters of one rewriter sweep, flushed to the StatisticSet once per
/// run() so the atomic adds stay off the per-window path.
struct SweepStats {
  uint64_t Folded = 0;   ///< Constant operations evaluated at compile time.
  uint64_t Fused = 0;    ///< Compare/NOT and identity rewrites.
  uint64_t Threaded = 0; ///< Jump-to-jump chains shortened.
  uint64_t Removed = 0;  ///< Instructions deleted.
};

/// One local rewrite sweep.  Deleted instructions become Pops of nothing:
/// we mark them and compact afterwards so jump targets stay correct.
struct Rewriter {
  std::vector<Instr> &Code;
  std::vector<bool> Dead;
  std::vector<bool> Target; ///< Instruction is a jump target.
  SweepStats &Stats;

  Rewriter(std::vector<Instr> &Code, SweepStats &Stats)
      : Code(Code), Dead(Code.size(), false),
        Target(detail::jumpTargets(Code)), Stats(Stats) {}

  /// A window position is usable if alive and not a jump target (a jump
  /// landing between fused instructions would see half a pattern).
  bool usable(size_t I, bool AllowTarget = false) const {
    return I < Code.size() && !Dead[I] && (AllowTarget || !Target[I]);
  }

  bool sweep() {
    bool Changed = false;
    for (size_t I = 0; I < Code.size(); ++I) {
      if (Dead[I])
        continue;

      // PushInt a; PushInt b; binop  ->  PushInt (a op b)
      size_t J = next(I);
      size_t K = J == Code.size() ? J : next(J);
      if (Code[I].Op == Opcode::PushInt && usable(J) &&
          Code[J].Op == Opcode::PushInt && usable(K)) {
        if (auto Folded = foldBinary(Code[K].Op, Code[I].A, Code[J].A)) {
          Code[K] = Instr{Opcode::PushInt, *Folded, 0, 0.0};
          Dead[I] = Dead[J] = true;
          Stats.Folded += 1;
          Stats.Removed += 2;
          Changed = true;
          continue;
        }
      }

      // PushInt c; NegInt -> PushInt -c ; PushInt c; NotBool -> PushInt !c
      if (Code[I].Op == Opcode::PushInt && usable(J)) {
        if (Code[J].Op == Opcode::NegInt || Code[J].Op == Opcode::NotBool ||
            Code[J].Op == Opcode::AbsInt) {
          int64_t V = Code[I].A;
          int64_t R = Code[J].Op == Opcode::NegInt ? -V
                      : Code[J].Op == Opcode::NotBool
                          ? (V == 0 ? 1 : 0)
                          : (V < 0 ? -V : V);
          Code[J] = Instr{Opcode::PushInt, R, 0, 0.0};
          Dead[I] = true;
          Stats.Folded += 1;
          Stats.Removed += 1;
          Changed = true;
          continue;
        }
        // x + 0 / x * 1 on the right operand: PushInt 0; AddInt -> drop.
        if ((Code[I].A == 0 && (Code[J].Op == Opcode::AddInt ||
                                Code[J].Op == Opcode::SubInt)) ||
            (Code[I].A == 1 && Code[J].Op == Opcode::MulInt)) {
          Dead[I] = Dead[J] = true;
          Stats.Fused += 1;
          Stats.Removed += 2;
          Changed = true;
          continue;
        }
      }

      // compare; NotBool -> inverted compare
      if (invertedCompare(Code[I].Op) != Code[I].Op && usable(J) &&
          Code[J].Op == Opcode::NotBool) {
        Code[I].Op = invertedCompare(Code[I].Op);
        Dead[J] = true;
        Stats.Fused += 1;
        Stats.Removed += 1;
        Changed = true;
        continue;
      }

      // PushInt c; JumpIfFalse/True -> Jump or nothing.
      if (Code[I].Op == Opcode::PushInt && usable(J) &&
          (Code[J].Op == Opcode::JumpIfFalse ||
           Code[J].Op == Opcode::JumpIfTrue)) {
        bool Taken = (Code[J].Op == Opcode::JumpIfTrue) == (Code[I].A != 0);
        if (Taken) {
          Code[J].Op = Opcode::Jump;
          Dead[I] = true;
          Stats.Removed += 1;
        } else {
          Dead[I] = Dead[J] = true;
          Stats.Removed += 2;
        }
        Stats.Folded += 1;
        Changed = true;
        continue;
      }

      // Jump threading: a jump whose target is an unconditional Jump.
      if (isJump(Code[I].Op)) {
        size_t Hops = 0;
        int64_t T = Code[I].A;
        while (static_cast<size_t>(T) < Code.size() &&
               !Dead[static_cast<size_t>(T)] &&
               Code[static_cast<size_t>(T)].Op == Opcode::Jump &&
               T != Code[static_cast<size_t>(T)].A && Hops < 64) {
          T = Code[static_cast<size_t>(T)].A;
          ++Hops;
        }
        if (T != Code[I].A) {
          Code[I].A = T;
          Stats.Threaded += 1;
          Changed = true;
        }
      }
    }
    return Changed;
  }

  /// Index of the next live instruction after \p I (Code.size() if none).
  size_t next(size_t I) const {
    for (size_t J = I + 1; J < Code.size(); ++J)
      if (!Dead[J])
        return J;
    return Code.size();
  }

  void compact() { detail::compactCode(Code, Dead); }
};

class PeepholePass : public Pass {
public:
  std::string_view name() const override { return "peephole"; }

  bool run(CodeUnit &Unit, StatisticSet &Stats) const override {
    SweepStats S;
    bool Any = false;
    // Iterate local sweeps to a fixed point (folding exposes new folds),
    // then compact once per sweep.
    for (int Round = 0; Round < 8; ++Round) {
      Rewriter R(Unit.Code, S);
      bool Changed = R.sweep();
      R.compact();
      Any |= Changed;
      if (!Changed)
        break;
    }
    if (S.Folded)
      Stats.add("opt.peephole.folded", S.Folded);
    if (S.Fused)
      Stats.add("opt.peephole.fused", S.Fused);
    if (S.Threaded)
      Stats.add("opt.peephole.threaded", S.Threaded);
    if (S.Removed)
      Stats.add("opt.peephole.removed", S.Removed);
    return Any;
  }
};

} // namespace

std::unique_ptr<Pass> opt::createPeepholePass() {
  return std::make_unique<PeepholePass>();
}
