//===--- OptLevel.h - Optimization levels -----------------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The driver-visible optimization levels.  A level names a fixed roster
/// of middle-end passes (see PassManager.h); the canonical spelling of
/// that roster is folded into every cache key, so artifacts compiled at
/// different levels can never collide.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_OPT_OPTLEVEL_H
#define M2C_OPT_OPTLEVEL_H

#include <cstdint>
#include <string>

namespace m2c::opt {

/// -O0: no passes — output byte-identical to the raw code generator.
/// -O1: the peephole pass only (the pre-pass-manager `Optimize` flag).
/// -O2: the full roster — constant folding, copy propagation, peephole,
///      dead-store elimination, unreachable-code elimination.
enum class OptLevel : uint8_t { O0 = 0, O1 = 1, O2 = 2 };

/// "O0" / "O1" / "O2".
const char *optLevelName(OptLevel L);

/// The level the driver defaults to: O0, overridable by the environment
/// variable M2C_OPT_LEVEL (0/1/2) — the CI hook that runs whole test
/// suites at -O2 without touching each call site.
OptLevel defaultOptLevel();

/// Canonical spelling of the pass roster for \p L, e.g.
/// "O2:constfold,copyprop,peephole,dse,unreach".  This exact string is
/// hashed into every cache fingerprint (CachePlanner) and matches
/// PassManager::configString() for the standard rosters.
std::string passConfigString(OptLevel L);

} // namespace m2c::opt

#endif // M2C_OPT_OPTLEVEL_H
