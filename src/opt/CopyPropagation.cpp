//===--- CopyPropagation.cpp - Block-local copy propagation ----------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// The "copyprop" pass: after `LoadLocal y; StoreLocal x` (no jump
/// landing on the store), slot x holds the same value as slot y; later
/// `LoadLocal x` in the block becomes `LoadLocal y`, often making the
/// intermediate store dead for DSE.
///
/// Besides the usual kills (a store to either side, any call, block
/// leaders, address-taken slots — see Rewrite.h), one VM subtlety gates
/// each rewrite site: LoadLocal pushes an aggregate's AggRef *shared*,
/// so a ref to y instead of x is distinguishable if a call mutates one
/// of the slots up-level while the value is still on the operand stack.
/// The guard: only rewrite a load with no call between it and the end
/// of its basic block.  Aggregate values never cross block boundaries
/// on the operand stack (only short-circuit booleans and CASE ordinals
/// do), so a call-free remainder means the value is consumed — copied
/// or compared by value — before any frame can be touched again.
///
//===----------------------------------------------------------------------===//

#include "opt/PassManager.h"
#include "opt/Rewrite.h"

#include <unordered_map>

using namespace m2c;
using namespace m2c::codegen;
using namespace m2c::opt;

namespace {

class CopyPropagationPass : public Pass {
public:
  std::string_view name() const override { return "copyprop"; }

  bool run(CodeUnit &Unit, StatisticSet &Stats) const override {
    std::vector<Instr> &Code = Unit.Code;
    if (Code.empty())
      return false;
    const std::vector<bool> Leader = detail::blockLeaders(Code);
    const std::vector<bool> Taken = detail::addressTakenLocals(Unit);
    auto IsTaken = [&Taken](int64_t Slot) {
      return Slot < 0 || static_cast<size_t>(Slot) >= Taken.size() ||
             Taken[static_cast<size_t>(Slot)];
    };

    // CallAhead[I]: some call lies strictly after I, before I's block
    // ends (next leader).
    std::vector<bool> CallAhead(Code.size(), false);
    for (size_t I = Code.size() - 1; I > 0; --I) {
      size_t Prev = I - 1;
      CallAhead[Prev] =
          !Leader[I] && (detail::isCall(Code[I].Op) || CallAhead[I]);
    }

    std::unordered_map<int64_t, int64_t> CopyOf; // x -> y: local x == local y
    auto Kill = [&CopyOf](int64_t Slot) {
      CopyOf.erase(Slot);
      for (auto It = CopyOf.begin(); It != CopyOf.end();)
        It = It->second == Slot ? CopyOf.erase(It) : std::next(It);
    };

    uint64_t Propagated = 0;
    for (size_t I = 0; I < Code.size(); ++I) {
      if (Leader[I])
        CopyOf.clear();
      Instr &In = Code[I];
      if (In.Op == Opcode::LoadLocal) {
        auto It = CopyOf.find(In.A);
        if (It != CopyOf.end() && !CallAhead[I]) {
          In.A = It->second;
          ++Propagated;
        }
        continue;
      }
      if (detail::isCall(In.Op)) {
        // A callee can reach this frame up-level through the static
        // link; every tracked fact dies.
        CopyOf.clear();
        continue;
      }
      if (In.Op == Opcode::StoreLocal) {
        Kill(In.A);
        // Record x == y when the copied load immediately precedes (the
        // load was already chain-rewritten above, so facts close
        // transitively).
        if (I > 0 && !Leader[I] && Code[I - 1].Op == Opcode::LoadLocal &&
            Code[I - 1].A != In.A && !IsTaken(In.A) &&
            !IsTaken(Code[I - 1].A))
          CopyOf[In.A] = Code[I - 1].A;
      }
    }
    if (Propagated)
      Stats.add("opt.copyprop.propagated", Propagated);
    return Propagated != 0;
  }
};

} // namespace

std::unique_ptr<Pass> opt::createCopyPropagationPass() {
  return std::make_unique<CopyPropagationPass>();
}
