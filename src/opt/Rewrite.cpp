//===--- Rewrite.cpp - Shared pass machinery -------------------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "opt/Rewrite.h"

using namespace m2c;
using namespace m2c::codegen;
using namespace m2c::opt;

std::vector<bool> detail::jumpTargets(const std::vector<Instr> &Code) {
  std::vector<bool> Target(Code.size(), false);
  for (const Instr &I : Code)
    if (isJump(I.Op) && static_cast<size_t>(I.A) < Code.size())
      Target[static_cast<size_t>(I.A)] = true;
  return Target;
}

std::vector<bool> detail::blockLeaders(const std::vector<Instr> &Code) {
  std::vector<bool> Leader = jumpTargets(Code);
  if (!Leader.empty())
    Leader[0] = true;
  return Leader;
}

size_t detail::localSlotCount(const CodeUnit &Unit) {
  size_t N = Unit.FrameSize;
  for (const Instr &I : Unit.Code) {
    switch (I.Op) {
    case Opcode::LoadLocal:
    case Opcode::StoreLocal:
    case Opcode::LoadLocalRef:
      if (I.A >= 0 && static_cast<size_t>(I.A) + 1 > N)
        N = static_cast<size_t>(I.A) + 1;
      break;
    default:
      break;
    }
  }
  return N;
}

std::vector<bool> detail::addressTakenLocals(const CodeUnit &Unit) {
  std::vector<bool> Taken(localSlotCount(Unit), false);
  for (const Instr &I : Unit.Code)
    if (I.Op == Opcode::LoadLocalRef && I.A >= 0 &&
        static_cast<size_t>(I.A) < Taken.size())
      Taken[static_cast<size_t>(I.A)] = true;
  return Taken;
}

size_t detail::compactCode(std::vector<Instr> &Code,
                           const std::vector<bool> &Dead) {
  std::vector<int64_t> NewIndex(Code.size() + 1, 0);
  int64_t Next = 0;
  for (size_t I = 0; I < Code.size(); ++I) {
    NewIndex[I] = Next;
    if (!Dead[I])
      ++Next;
  }
  NewIndex[Code.size()] = Next;

  size_t Removed = Code.size() - static_cast<size_t>(Next);
  if (Removed == 0)
    return 0;
  std::vector<Instr> Out;
  Out.reserve(static_cast<size_t>(Next));
  for (size_t I = 0; I < Code.size(); ++I) {
    if (Dead[I])
      continue;
    Instr In = Code[I];
    if (isJump(In.Op))
      In.A = NewIndex[static_cast<size_t>(In.A)];
    Out.push_back(In);
  }
  Code = std::move(Out);
  return Removed;
}
