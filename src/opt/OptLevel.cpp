//===--- OptLevel.cpp - Optimization levels --------------------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "opt/OptLevel.h"

#include <cstdlib>

using namespace m2c::opt;

const char *m2c::opt::optLevelName(OptLevel L) {
  switch (L) {
  case OptLevel::O0:
    return "O0";
  case OptLevel::O1:
    return "O1";
  case OptLevel::O2:
    return "O2";
  }
  return "O0";
}

OptLevel m2c::opt::defaultOptLevel() {
  // Read once: the level is part of every cache key, so it must not
  // change mid-process.
  static const OptLevel Cached = [] {
    if (const char *Env = std::getenv("M2C_OPT_LEVEL")) {
      if (Env[0] == '1' && Env[1] == '\0')
        return OptLevel::O1;
      if (Env[0] == '2' && Env[1] == '\0')
        return OptLevel::O2;
    }
    return OptLevel::O0;
  }();
  return Cached;
}

std::string m2c::opt::passConfigString(OptLevel L) {
  switch (L) {
  case OptLevel::O0:
    return "O0";
  case OptLevel::O1:
    return "O1:peephole";
  case OptLevel::O2:
    return "O2:constfold,copyprop,peephole,dse,unreach";
  }
  return "O0";
}
