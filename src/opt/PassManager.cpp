//===--- PassManager.cpp - Per-stream pass pipeline ------------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "opt/PassManager.h"

using namespace m2c;
using namespace m2c::opt;

PassManager PassManager::forLevel(OptLevel Level) {
  PassManager PM(Level);
  switch (Level) {
  case OptLevel::O0:
    break;
  case OptLevel::O1:
    PM.add(createPeepholePass());
    break;
  case OptLevel::O2:
    PM.add(createConstantFoldingPass());
    PM.add(createCopyPropagationPass());
    PM.add(createPeepholePass());
    PM.add(createDeadStoreEliminationPass());
    PM.add(createUnreachableCodePass());
    break;
  }
  return PM;
}

void PassManager::add(std::unique_ptr<Pass> P) {
  Passes.push_back(std::move(P));
}

std::string PassManager::configString() const {
  std::string S = optLevelName(Level);
  for (size_t I = 0; I < Passes.size(); ++I) {
    S += I == 0 ? ':' : ',';
    S += Passes[I]->name();
  }
  return S;
}

bool PassManager::run(codegen::CodeUnit &Unit, StatisticSet *Stats) const {
  if (Passes.empty())
    return false;
  StatisticSet Local;
  StatisticSet &S = Stats ? *Stats : Local;

  const size_t Before = Unit.Code.size();
  bool Any = false;
  // A pass can expose work for an earlier one (constants folded by
  // peephole feed constfold on the next round); iterate the roster to a
  // bounded fixed point.  Each pass is internally idempotent, so one
  // quiet round means the pipeline is done.
  constexpr int MaxRounds = 4;
  uint64_t Rounds = 0;
  for (int Round = 0; Round < MaxRounds; ++Round) {
    bool Changed = false;
    for (const std::unique_ptr<Pass> &P : Passes)
      Changed |= P->run(Unit, S);
    ++Rounds;
    Any |= Changed;
    if (!Changed)
      break;
  }

  S.add("opt.units", 1);
  S.add("opt.rounds", Rounds);
  if (Unit.Code.size() < Before)
    S.add("opt.instrs.removed", Before - Unit.Code.size());
  return Any;
}
