//===--- UnreachableCode.cpp - Reachability-based code removal -------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// The "unreach" pass: depth-first reachability from instruction 0 over
/// the control-flow successors, then deletion of everything never
/// reached.  Peephole jump folding and threading routinely strand whole
/// arms of IF/CASE chains; this pass reclaims them.  compactCode remaps
/// every surviving jump, so targets stay exact.
///
//===----------------------------------------------------------------------===//

#include "opt/PassManager.h"
#include "opt/Rewrite.h"

using namespace m2c;
using namespace m2c::codegen;
using namespace m2c::opt;

namespace {

class UnreachableCodePass : public Pass {
public:
  std::string_view name() const override { return "unreach"; }

  bool run(CodeUnit &Unit, StatisticSet &Stats) const override {
    std::vector<Instr> &Code = Unit.Code;
    if (Code.empty())
      return false;

    std::vector<bool> Reached(Code.size(), false);
    std::vector<size_t> Work{0};
    while (!Work.empty()) {
      size_t I = Work.back();
      Work.pop_back();
      if (I >= Code.size() || Reached[I])
        continue;
      Reached[I] = true;
      const Instr &In = Code[I];
      switch (In.Op) {
      case Opcode::Jump:
        Work.push_back(static_cast<size_t>(In.A));
        break;
      case Opcode::JumpIfTrue:
      case Opcode::JumpIfFalse:
        Work.push_back(static_cast<size_t>(In.A));
        Work.push_back(I + 1);
        break;
      case Opcode::Return:
      case Opcode::ReturnValue:
      case Opcode::Halt:
      case Opcode::Trap:
        break;
      default:
        Work.push_back(I + 1);
        break;
      }
    }

    std::vector<bool> Dead(Code.size(), false);
    for (size_t I = 0; I < Code.size(); ++I)
      Dead[I] = !Reached[I];
    size_t Removed = detail::compactCode(Code, Dead);
    if (Removed)
      Stats.add("opt.unreach.removed", Removed);
    return Removed != 0;
  }
};

} // namespace

std::unique_ptr<Pass> opt::createUnreachableCodePass() {
  return std::make_unique<UnreachableCodePass>();
}
