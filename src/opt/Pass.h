//===--- Pass.h - Stream-level optimization pass interface ------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The middle-end pass interface.  A Pass is a stateless, in-place
/// rewrite of one stream's CodeUnit: because the per-procedure unit is
/// the whole optimization scope (the paper's independence bet), passes
/// compose with concurrent compilation for free — every Statement-
/// Analyzer/Code-Generator task optimizes its own stream on the session
/// executor, with no cross-stream synchronization.
///
/// run() is const and passes hold no mutable state, so one pass instance
/// (and one PassManager) is safely shared by all codegen tasks of a
/// session.  Counters go to a thread-safe StatisticSet under `opt.*`
/// names.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_OPT_PASS_H
#define M2C_OPT_PASS_H

#include "codegen/MCode.h"
#include "support/Statistic.h"

#include <string_view>

namespace m2c::opt {

/// One semantics-preserving rewrite of a code unit.  Correctness bar:
/// the VM-observable behaviour of the program may not change, including
/// runtime traps (division by zero, range checks) — an operation that
/// could trap is never folded or deleted.
class Pass {
public:
  virtual ~Pass() = default;

  /// Short roster name ("peephole", "dse", ...); also the middle segment
  /// of this pass's opt.<name>.* counters.
  virtual std::string_view name() const = 0;

  /// Rewrites \p Unit in place; returns true if anything changed.
  virtual bool run(codegen::CodeUnit &Unit, StatisticSet &Stats) const = 0;
};

} // namespace m2c::opt

#endif // M2C_OPT_PASS_H
