//===--- PassManager.h - Per-stream pass pipeline ---------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pass pipeline between statement analysis and .mco emission.  A
/// PassManager owns an ordered roster of passes and runs them over one
/// CodeUnit to a bounded fixed point; it is immutable after construction
/// and run() is const, so one manager serves every concurrent codegen
/// task of a session.
///
/// The standard rosters (by OptLevel) are staged:
///
///   early    { constfold, copyprop }   value tracking inside blocks
///   late     { peephole }              window fusion, jump threading
///   dataflow { dse }                   backward liveness over blocks
///   cleanup  { unreach }               CFG reachability sweep
///
/// configString() canonically spells the effective configuration; the
/// cache layer hashes it into every stream key so entries produced at
/// different levels (or custom rosters) can never collide.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_OPT_PASSMANAGER_H
#define M2C_OPT_PASSMANAGER_H

#include "opt/OptLevel.h"
#include "opt/Pass.h"

#include <memory>
#include <vector>

namespace m2c::opt {

class PassManager {
public:
  /// An empty manager (no passes; run() is a no-op) tagged O0.
  PassManager() = default;

  /// The standard roster for \p Level.
  static PassManager forLevel(OptLevel Level);

  /// Appends \p P to the roster (construction-time only; a manager is
  /// immutable once shared with codegen tasks).
  void add(std::unique_ptr<Pass> P);

  OptLevel level() const { return Level; }
  bool empty() const { return Passes.empty(); }
  size_t size() const { return Passes.size(); }

  /// "O0", "O1:peephole", "O2:constfold,copyprop,peephole,dse,unreach" —
  /// equal to passConfigString(level()) for standard rosters.
  std::string configString() const;

  /// Runs the roster over \p Unit, repeating until no pass changes the
  /// unit (bounded rounds).  Thread-safe.  Counters land in \p Stats
  /// when non-null: opt.units, opt.rounds, opt.instrs.removed plus each
  /// pass's opt.<name>.* counters.  Returns true if the unit changed.
  bool run(codegen::CodeUnit &Unit, StatisticSet *Stats = nullptr) const;

private:
  explicit PassManager(OptLevel Level) : Level(Level) {}

  OptLevel Level = OptLevel::O0;
  std::vector<std::unique_ptr<Pass>> Passes;
};

//===--- Pass factories ----------------------------------------------------===//

/// "constfold": block-local constant propagation through frame slots.
std::unique_ptr<Pass> createConstantFoldingPass();
/// "copyprop": block-local copy propagation between frame slots.
std::unique_ptr<Pass> createCopyPropagationPass();
/// "peephole": window folding/fusion and jump threading (the former
/// codegen::Peephole, now just another registered pass).
std::unique_ptr<Pass> createPeepholePass();
/// "dse": dead-store elimination by backward liveness.
std::unique_ptr<Pass> createDeadStoreEliminationPass();
/// "unreach": unreachable-code elimination by CFG reachability.
std::unique_ptr<Pass> createUnreachableCodePass();

} // namespace m2c::opt

#endif // M2C_OPT_PASSMANAGER_H
