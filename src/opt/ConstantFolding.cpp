//===--- ConstantFolding.cpp - Block-local constant propagation ------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// The "constfold" pass: tracks frame slots known to hold an integer
/// constant (`PushInt c; StoreLocal x` with no jump landing on the
/// store) and rewrites later `LoadLocal x` in the same block to
/// `PushInt c`.  The rewrite is 1:1 in place, so no jump target moves;
/// the store itself is left for dead-store elimination, and the fresh
/// constants feed the peephole pass's window folds.
///
/// Safety (see Rewrite.h): address-taken slots are never tracked, any
/// call clobbers every fact, and facts die at block leaders.
///
//===----------------------------------------------------------------------===//

#include "opt/PassManager.h"
#include "opt/Rewrite.h"

#include <unordered_map>

using namespace m2c;
using namespace m2c::codegen;
using namespace m2c::opt;

namespace {

class ConstantFoldingPass : public Pass {
public:
  std::string_view name() const override { return "constfold"; }

  bool run(CodeUnit &Unit, StatisticSet &Stats) const override {
    std::vector<Instr> &Code = Unit.Code;
    if (Code.empty())
      return false;
    const std::vector<bool> Leader = detail::blockLeaders(Code);
    const std::vector<bool> Taken = detail::addressTakenLocals(Unit);
    auto IsTaken = [&Taken](int64_t Slot) {
      return Slot < 0 || static_cast<size_t>(Slot) >= Taken.size() ||
             Taken[static_cast<size_t>(Slot)];
    };

    std::unordered_map<int64_t, int64_t> Known; // slot -> constant
    uint64_t Propagated = 0;
    for (size_t I = 0; I < Code.size(); ++I) {
      if (Leader[I])
        Known.clear();
      Instr &In = Code[I];
      if (In.Op == Opcode::LoadLocal) {
        auto It = Known.find(In.A);
        if (It != Known.end()) {
          In = Instr{Opcode::PushInt, It->second, 0, 0.0};
          ++Propagated;
        }
        continue;
      }
      if (detail::isCall(In.Op)) {
        // A callee can reach this frame up-level through the static
        // link; every tracked fact dies.
        Known.clear();
        continue;
      }
      if (In.Op == Opcode::StoreLocal) {
        if (I > 0 && !Leader[I] && Code[I - 1].Op == Opcode::PushInt &&
            !IsTaken(In.A))
          Known[In.A] = Code[I - 1].A;
        else
          Known.erase(In.A);
      }
    }
    if (Propagated)
      Stats.add("opt.constfold.propagated", Propagated);
    return Propagated != 0;
  }
};

} // namespace

std::unique_ptr<Pass> opt::createConstantFoldingPass() {
  return std::make_unique<ConstantFoldingPass>();
}
