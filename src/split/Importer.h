//===--- Importer.h - Import discovery over token streams -------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "The import task searches the token stream for IMPORT declarations
/// and starts a new stream for each imported definition module that it
/// discovers." (paper section 3)  Discovery goes through the module
/// registry's once-only table, so each interface is processed exactly
/// once no matter how many streams import it.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SPLIT_IMPORTER_H
#define M2C_SPLIT_IMPORTER_H

#include "lex/TokenBlockQueue.h"
#include "sema/Compilation.h"

namespace m2c {

/// The Importer task: scans one stream's raw tokens for imports.
class Importer {
public:
  Importer(TokenBlockQueue::Reader In, sema::ModuleRegistry &Registry,
           StringInterner &Interner)
      : In(In), Registry(Registry), Interner(Interner) {}

  /// Scans to end of stream.  Every discovered module is registered
  /// (which fires the registry's stream starter the first time).  Returns
  /// the directly imported module names in order of first appearance.
  std::vector<Symbol> run();

private:
  TokenBlockQueue::Reader In;
  sema::ModuleRegistry &Registry;
  StringInterner &Interner;
};

} // namespace m2c

#endif // M2C_SPLIT_IMPORTER_H
