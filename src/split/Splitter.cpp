//===--- Splitter.cpp - Source splitting into streams ----------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "split/Splitter.h"

#include "sched/ExecContext.h"

#include <vector>

using namespace m2c;

bool Splitter::opensEnd(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::KwIf:
  case TokenKind::KwCase:
  case TokenKind::KwWhile:
  case TokenKind::KwFor:
  case TokenKind::KwWith:
  case TokenKind::KwLoop:
  case TokenKind::KwRecord:
  case TokenKind::KwTry:
  case TokenKind::KwLock:
  case TokenKind::KwModule:
    return true;
  default:
    return false;
  }
}

void Splitter::run() {
  struct ActiveProc {
    StreamHandle Stream;
    int Depth = 0;      ///< Open END-terminated constructs in this stream.
    int64_t Tokens = 0; ///< Diverted token count (scheduling weight).
  };
  std::vector<ActiveProc> Stack;

  auto CurrentHandle = [&]() -> StreamHandle {
    return Stack.empty() ? nullptr : Stack.back().Stream;
  };
  auto EmitCurrent = [&](const Token &T) {
    Hooks.queueOf(CurrentHandle()).append(T);
    if (!Stack.empty())
      ++Stack.back().Tokens;
  };

  // Copies a heading (PROCEDURE ... ';' at paren depth 0) to both the
  // parent stream and the child stream.
  auto CopyHeading = [&](const Token &First, TokenBlockQueue &Parent,
                         TokenBlockQueue &Child) {
    Parent.append(First);
    Child.append(First);
    if (!Stack.empty())
      ++Stack.back().Tokens;
    int Parens = 0;
    while (true) {
      const Token &T = In.next();
      if (T.isEof())
        return; // Malformed input; parsers will diagnose.
      ++TokensSeen;
      sched::ctx().charge(sched::CostKind::SplitToken);
      Parent.append(T);
      Child.append(T);
      if (!Stack.empty())
        ++Stack.back().Tokens;
      if (T.is(TokenKind::LParen))
        ++Parens;
      else if (T.is(TokenKind::RParen))
        --Parens;
      else if (T.is(TokenKind::Semi) && Parens == 0)
        return;
    }
  };

  while (true) {
    const Token &T = In.next();
    if (T.isEof()) {
      // Malformed input can leave procedure streams open; close them so
      // their parser tasks terminate (they will report the syntax error).
      while (!Stack.empty()) {
        Hooks.endProc(Stack.back().Stream, Stack.back().Tokens);
        Hooks.queueOf(Stack.back().Stream).finish(T.Loc);
        Stack.pop_back();
      }
      Hooks.queueOf(nullptr).finish(T.Loc);
      return;
    }
    ++TokensSeen;
    sched::ctx().charge(sched::CostKind::SplitToken);

    // A procedure *declaration* is PROCEDURE followed by an identifier;
    // PROCEDURE followed by anything else is a procedure type.
    if (T.is(TokenKind::KwProcedure) &&
        In.peek().is(TokenKind::Identifier)) {
      StreamHandle Parent = CurrentHandle();
      StreamHandle Child = Hooks.beginProc(Parent, In.peek().Ident);
      CopyHeading(T, Hooks.queueOf(Parent), Hooks.queueOf(Child));
      Stack.push_back(ActiveProc{Child, 0, 0});
      continue;
    }

    if (Stack.empty()) {
      EmitCurrent(T);
      continue;
    }

    // Inside a procedure stream: divert and track END nesting.
    EmitCurrent(T);
    if (opensEnd(T.Kind)) {
      ++Stack.back().Depth;
      continue;
    }
    if (!T.is(TokenKind::KwEnd))
      continue;
    if (Stack.back().Depth > 0) {
      --Stack.back().Depth;
      continue;
    }
    // This END closes the procedure: copy "END name ;" and finish.
    if (In.peek().is(TokenKind::Identifier)) {
      EmitCurrent(In.next());
      ++TokensSeen;
      sched::ctx().charge(sched::CostKind::SplitToken);
    }
    if (In.peek().is(TokenKind::Semi)) {
      EmitCurrent(In.next());
      ++TokensSeen;
      sched::ctx().charge(sched::CostKind::SplitToken);
    }
    ActiveProc Done = Stack.back();
    Stack.pop_back();
    // Publish the stream's weight before the queue's EOF releases its
    // parser task: the weight must be visible when codegen is spawned.
    Hooks.endProc(Done.Stream, Done.Tokens);
    Hooks.queueOf(Done.Stream).finish(T.Loc);
  }
}
