//===--- Splitter.h - Source splitting into streams -------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "The splitter task searches for the reserved word PROCEDURE in the
/// token stream of M.mod.  It creates a new stream for each procedure it
/// detects and diverts the lexical tokens for the procedure to that
/// stream." (paper section 3)
///
/// Because Modula-2+ reserves its keywords, stream boundaries are
/// recognizable by "a simple finite state recognizer" over the token
/// stream, with one token of lookahead to tell a procedure declaration
/// (PROCEDURE Identifier) from a procedure type (PROCEDURE followed by
/// '(' / ';' / ...), exactly the lookahead the paper mentions for
/// PROCEDURE in Modula-2 (section 2.1).
///
/// Procedure headings are copied to *both* the parent stream (which
/// processes them in the parent scope, section 2.4 alternative 1) and
/// the new procedure stream; the body is diverted to the procedure
/// stream only.  Nested procedures recurse: each procedure stream
/// contains its own declarations and body with grand-children's bodies
/// split away in turn.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SPLIT_SPLITTER_H
#define M2C_SPLIT_SPLITTER_H

#include "lex/TokenBlockQueue.h"

#include <functional>

namespace m2c {

/// Opaque per-stream handle owned by the driver; null identifies the
/// main module stream.
using StreamHandle = void *;

/// Driver callbacks wiring the splitter to stream bookkeeping.
struct SplitterHooks {
  /// A procedure named \p Name was discovered inside \p Parent.  The
  /// driver creates the stream (scope, queue, events, tasks) and returns
  /// its handle.  Called *before* any of the procedure's tokens are
  /// appended to either queue.
  std::function<StreamHandle(StreamHandle Parent, Symbol Name)> beginProc;

  /// The token queue a stream's tokens are appended to.
  std::function<TokenBlockQueue &(StreamHandle Stream)> queueOf;

  /// The stream's final END was seen; called just before its queue is
  /// finished, so the weight is visible once the stream's parser drains
  /// to EOF.  \p TokenCount is the stream's total diverted token count
  /// (the long-before-short scheduling weight).
  std::function<void(StreamHandle Stream, int64_t TokenCount)> endProc;
};

/// The Splitter task: one pass over the main module's raw token stream.
class Splitter {
public:
  Splitter(TokenBlockQueue::Reader In, SplitterHooks Hooks)
      : In(In), Hooks(std::move(Hooks)) {}

  /// Runs to end of input, finishing the main stream's queue and any
  /// procedure queues left open by malformed input.
  void run();

  /// Total tokens examined.
  int64_t tokensSeen() const { return TokensSeen; }

  /// True if \p Kind opens a construct terminated by END.  Public so the
  /// cache planner can replay the recognizer's nesting rule when it
  /// derives per-stream declaration hashes.
  static bool opensEnd(TokenKind Kind);

private:
  TokenBlockQueue::Reader In;
  SplitterHooks Hooks;
  int64_t TokensSeen = 0;
};

} // namespace m2c

#endif // M2C_SPLIT_SPLITTER_H
