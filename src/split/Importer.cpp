//===--- Importer.cpp - Import discovery over token streams ---------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "split/Importer.h"

#include "sched/ExecContext.h"

#include <algorithm>

using namespace m2c;

std::vector<Symbol> Importer::run() {
  std::vector<Symbol> Direct;
  auto Discover = [&](Symbol Name) {
    if (std::find(Direct.begin(), Direct.end(), Name) == Direct.end())
      Direct.push_back(Name);
    Registry.getOrCreate(Name, Interner.spelling(Name));
  };

  while (true) {
    const Token &T = In.next();
    if (T.isEof())
      return Direct;
    sched::ctx().charge(sched::CostKind::ImportToken);

    if (T.is(TokenKind::KwFrom)) {
      // FROM M IMPORT ...; -> M is the imported module; the listed names
      // are not modules.
      if (In.peek().is(TokenKind::Identifier))
        Discover(In.peek().Ident);
      while (!In.peek().isEof() && !In.peek().is(TokenKind::Semi)) {
        In.next();
        sched::ctx().charge(sched::CostKind::ImportToken);
      }
      continue;
    }
    if (T.is(TokenKind::KwImport)) {
      // IMPORT A, B, C;
      while (In.peek().is(TokenKind::Identifier)) {
        Discover(In.next().Ident);
        sched::ctx().charge(sched::CostKind::ImportToken);
        if (!In.peek().is(TokenKind::Comma))
          break;
        In.next();
        sched::ctx().charge(sched::CostKind::ImportToken);
      }
      continue;
    }
  }
}
