//===--- StringInterner.cpp - Thread-safe identifier interning -----------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "support/StringInterner.h"

#include <cassert>
#include <functional>

using namespace m2c;

StringInterner::StringInterner() {
  // Reserve id 0 (shard 0, index 0) for the empty symbol.
  Shards[0].Spellings.emplace_back("");
  Shards[0].Table.emplace(std::string_view(Shards[0].Spellings.back()), 0);
}

Symbol StringInterner::intern(std::string_view Text) {
  if (Text.empty())
    return Symbol();

  uint32_t ShardIdx =
      static_cast<uint32_t>(std::hash<std::string_view>{}(Text)) & ShardMask;
  Shard &S = Shards[ShardIdx];

  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto It = S.Table.find(Text);
  if (It != S.Table.end())
    return Symbol(It->second);

  uint32_t Id = (static_cast<uint32_t>(S.Spellings.size()) << ShardBits) |
                ShardIdx;
  S.Spellings.emplace_back(Text);
  S.Table.emplace(std::string_view(S.Spellings.back()), Id);
  return Symbol(Id);
}

std::string_view StringInterner::spelling(Symbol Sym) const {
  const Shard &S = Shards[Sym.id() & ShardMask];
  uint32_t Index = Sym.id() >> ShardBits;
  std::lock_guard<std::mutex> Lock(S.Mutex);
  assert(Index < S.Spellings.size() && "symbol from a different interner");
  return S.Spellings[Index];
}

size_t StringInterner::size() const {
  size_t Total = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    Total += S.Spellings.size();
  }
  return Total;
}
