//===--- StringInterner.cpp - Thread-safe identifier interning -----------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "support/StringInterner.h"

#include <cassert>

using namespace m2c;

StringInterner::StringInterner() {
  // Reserve id 0 for the empty symbol.
  Spellings.emplace_back("");
  Table.emplace(std::string_view(Spellings.back()), 0);
}

Symbol StringInterner::intern(std::string_view Text) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Table.find(Text);
  if (It != Table.end())
    return Symbol(It->second);

  uint32_t Id = static_cast<uint32_t>(Spellings.size());
  Spellings.emplace_back(Text);
  Table.emplace(std::string_view(Spellings.back()), Id);
  return Symbol(Id);
}

std::string_view StringInterner::spelling(Symbol Sym) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  assert(Sym.id() < Spellings.size() && "symbol from a different interner");
  return Spellings[Sym.id()];
}

size_t StringInterner::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Spellings.size();
}
