//===--- Diagnostics.h - Thread-safe diagnostic collection -----*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostics produced by concurrently executing compiler tasks are
/// collected into a shared, thread-safe engine and rendered in a stable
/// (source-position) order at the end of compilation, so the concurrent
/// compiler reports exactly what the sequential compiler reports.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SUPPORT_DIAGNOSTICS_H
#define M2C_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLocation.h"

#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

namespace m2c {

class VirtualFileSystem;

/// Severity of a diagnostic.
enum class DiagSeverity {
  Note,
  Warning,
  Error,
};

/// One reported diagnostic.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLocation Loc;
  std::string Message;
};

/// Thread-safe diagnostic sink shared by all compiler tasks.
class DiagnosticsEngine {
public:
  DiagnosticsEngine() = default;
  DiagnosticsEngine(const DiagnosticsEngine &) = delete;
  DiagnosticsEngine &operator=(const DiagnosticsEngine &) = delete;

  void report(DiagSeverity Severity, SourceLocation Loc, std::string Message);

  void error(SourceLocation Loc, std::string Message) {
    report(DiagSeverity::Error, Loc, std::move(Message));
  }
  void warning(SourceLocation Loc, std::string Message) {
    report(DiagSeverity::Warning, Loc, std::move(Message));
  }

  bool hasErrors() const;
  size_t errorCount() const;
  size_t count() const;

  /// Returns all diagnostics sorted by (file, line, column, message) so the
  /// output is independent of task interleaving.  Identical (severity,
  /// location, message) entries are collapsed — the same policy as
  /// sortedIn(), so a standalone render and a service request's slice of
  /// a shared engine agree byte-for-byte.
  std::vector<Diagnostic> sorted() const;

  /// Renders the sorted diagnostics, one per line, in the conventional
  /// "file:line:col: severity: message" format.  \p Files resolves file
  /// names; it may be null, in which case file ids are printed.
  std::string render(const VirtualFileSystem *Files = nullptr) const;

  /// Per-request views (service mode): several concurrent requests share
  /// one engine, and each sees only the diagnostics located in its own
  /// file set (its .mod files plus its interface closure's .def files).
  /// Identical (severity, location, message) entries are collapsed — as
  /// in sorted() — so a module recompiled by a later request, which
  /// re-reports diagnostics a peer already placed in the shared engine,
  /// still renders them once.  Invalid-location diagnostics are excluded
  /// — request-scoped conditions without a source position are reported
  /// through the request's own local engine.
  std::vector<Diagnostic>
  sortedIn(const std::unordered_set<uint32_t> &FileIdxs) const;
  size_t countIn(const std::unordered_set<uint32_t> &FileIdxs) const;
  size_t errorCountIn(const std::unordered_set<uint32_t> &FileIdxs) const;
  std::string renderIn(const std::unordered_set<uint32_t> &FileIdxs,
                       const VirtualFileSystem *Files = nullptr) const;

private:
  mutable std::mutex Mutex;
  std::vector<Diagnostic> Diags;
};

} // namespace m2c

#endif // M2C_SUPPORT_DIAGNOSTICS_H
