//===--- StringInterner.h - Thread-safe identifier interning ---*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns identifier spellings into integer Symbol handles so that
/// symbol-table keys can be compared and hashed in O(1).  The interner is
/// shared by every concurrently running lexer task, so all operations are
/// thread-safe.
///
/// Internally the table is sharded 16 ways by spelling hash: each shard
/// has its own mutex, so concurrent lexers interning different
/// identifiers almost never serialize on one lock.  A Symbol id encodes
/// its shard in the low bits and the per-shard index in the high bits;
/// ids are unique but not dense, and id 0 remains the distinguished empty
/// symbol.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SUPPORT_STRINGINTERNER_H
#define M2C_SUPPORT_STRINGINTERNER_H

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace m2c {

/// A handle for an interned identifier spelling.
///
/// Symbols from the same StringInterner compare equal iff their spellings
/// are identical.  The default-constructed Symbol is the distinguished
/// "empty" symbol.
class Symbol {
public:
  Symbol() : Id(0) {}

  bool isEmpty() const { return Id == 0; }
  uint32_t id() const { return Id; }

  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }

private:
  friend class StringInterner;
  explicit Symbol(uint32_t Id) : Id(Id) {}
  uint32_t Id;
};

/// Thread-safe string-to-Symbol interning table, sharded by hash.
///
/// Lookup of a previously interned string and resolution of a Symbol back
/// to its spelling are both safe to call concurrently with interning.
class StringInterner {
public:
  /// Number of independently locked shards (power of two).
  static constexpr unsigned ShardBits = 4;
  static constexpr unsigned NumShards = 1u << ShardBits;

  StringInterner();
  StringInterner(const StringInterner &) = delete;
  StringInterner &operator=(const StringInterner &) = delete;

  /// Interns \p Text, returning the unique Symbol for this spelling.
  Symbol intern(std::string_view Text);

  /// Returns the spelling of \p Sym.  The returned view remains valid for
  /// the lifetime of the interner.
  std::string_view spelling(Symbol Sym) const;

  /// Number of distinct spellings interned so far (including the empty
  /// symbol).  Takes every shard lock; not for hot paths.
  size_t size() const;

private:
  static constexpr uint32_t ShardMask = NumShards - 1;

  struct Shard {
    mutable std::mutex Mutex;
    // Deque keeps spellings at stable addresses as the table grows.
    std::deque<std::string> Spellings;
    std::unordered_map<std::string_view, uint32_t> Table;
  };

  Shard Shards[NumShards];
};

/// Hash support so Symbol can key unordered containers.
struct SymbolHash {
  size_t operator()(Symbol Sym) const { return Sym.id(); }
};

} // namespace m2c

#endif // M2C_SUPPORT_STRINGINTERNER_H
