//===--- Arena.h - Bump-pointer allocation arenas ---------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena for the compiler's hot allocation paths.  Every
/// compilation stream performs thousands of small allocations (AST nodes,
/// symbol-table entries); routing them through a per-stream arena replaces
/// one malloc/free pair per object with a pointer bump, and ties object
/// lifetime to the owning stream so nothing is freed piecemeal.
///
/// The arena is deliberately NOT thread-safe: each owner (an ASTArena, a
/// Scope) already serializes its own allocations, and sharing one arena
/// across streams would reintroduce exactly the cross-stream contention
/// this type exists to remove.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SUPPORT_ARENA_H
#define M2C_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace m2c::support {

/// Chunked bump allocator.  Memory is only reclaimed when the arena is
/// destroyed; create<T>() does not register destructors, so T must either
/// be trivially destructible or have its destructor run by the caller
/// (ASTArena does the latter for AST nodes).
class Arena {
public:
  /// Default chunk size; allocations larger than this get their own chunk.
  static constexpr size_t SlabBytes = 64 * 1024;

  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Allocates \p Size bytes aligned to \p Align.
  void *allocate(size_t Size, size_t Align = alignof(std::max_align_t)) {
    uintptr_t P = reinterpret_cast<uintptr_t>(Cur);
    uintptr_t Aligned = (P + Align - 1) & ~(uintptr_t(Align) - 1);
    if (Aligned + Size > reinterpret_cast<uintptr_t>(End)) {
      grow(Size + Align);
      P = reinterpret_cast<uintptr_t>(Cur);
      Aligned = (P + Align - 1) & ~(uintptr_t(Align) - 1);
    }
    Cur = reinterpret_cast<char *>(Aligned + Size);
    Allocated += Size;
    return reinterpret_cast<void *>(Aligned);
  }

  /// Constructs a T in arena storage.  The destructor is NOT registered.
  template <typename T, typename... Args> T *create(Args &&...As) {
    return new (allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(As)...);
  }

  /// Total payload bytes handed out (excludes alignment waste).
  size_t bytesAllocated() const { return Allocated; }

  /// Number of chunks backing the arena.
  size_t slabCount() const { return Slabs.size(); }

private:
  void grow(size_t AtLeast) {
    size_t Size = AtLeast > SlabBytes ? AtLeast : SlabBytes;
    Slabs.push_back(std::make_unique<char[]>(Size));
    Cur = Slabs.back().get();
    End = Cur + Size;
  }

  char *Cur = nullptr;
  char *End = nullptr;
  size_t Allocated = 0;
  std::vector<std::unique_ptr<char[]>> Slabs;
};

} // namespace m2c::support

#endif // M2C_SUPPORT_ARENA_H
