//===--- VirtualFileSystem.cpp - In-memory compiler input ----------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "support/VirtualFileSystem.h"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <sstream>

using namespace m2c;

std::string SourceBuffer::contentHash(
    const std::function<std::string()> &Compute) const {
  // Compute runs under the lock: a concurrent second caller waits instead
  // of duplicating the hash, and the memo is written exactly once.
  std::lock_guard<std::mutex> Lock(FactsM);
  if (HashHex.empty())
    HashHex = Compute();
  return HashHex;
}

std::vector<Symbol> SourceBuffer::imports(
    const void *Owner,
    const std::function<std::vector<Symbol>()> &Compute) const {
  std::lock_guard<std::mutex> Lock(FactsM);
  if (!HasImports || ImportsOwner != Owner) {
    Imports = Compute();
    ImportsOwner = Owner;
    HasImports = true;
  }
  return Imports;
}

FileId VirtualFileSystem::addFile(std::string Name, std::string Text) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto Buf = std::make_unique<SourceBuffer>();
  Buf->Id = FileId(static_cast<uint32_t>(Buffers.size()));
  Buf->Name = std::move(Name);
  Buf->Text = std::move(Text);
  SourceBuffer *Raw = Buf.get();
  Buffers.push_back(std::move(Buf));
  ByName[std::string_view(Raw->Name)] = Raw;
  return Raw->Id;
}

const SourceBuffer *VirtualFileSystem::lookup(std::string_view Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = ByName.find(Name);
  return It == ByName.end() ? nullptr : It->second;
}

const SourceBuffer &VirtualFileSystem::buffer(FileId Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  assert(Id.isValid() && Id.index() < Buffers.size() && "bad FileId");
  return *Buffers[Id.index()];
}

std::optional<FileId> VirtualFileSystem::addFromDisk(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream Contents;
  Contents << In.rdbuf();
  return addFile(Path, Contents.str());
}

size_t VirtualFileSystem::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Buffers.size();
}

std::vector<std::string> VirtualFileSystem::names() const {
  std::vector<std::string> Out;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Out.reserve(ByName.size());
    for (const auto &[Name, Buf] : ByName)
      Out.emplace_back(Name);
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::string VirtualFileSystem::defFileName(std::string_view ModuleName) {
  return std::string(ModuleName) + ".def";
}

std::string VirtualFileSystem::modFileName(std::string_view ModuleName) {
  return std::string(ModuleName) + ".mod";
}
