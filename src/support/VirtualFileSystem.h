//===--- VirtualFileSystem.h - In-memory compiler input --------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler reads a module M from two files, M.def and M.mod (paper
/// section 3).  The VirtualFileSystem maps those file names to in-memory
/// source text so that test suites and synthetic workloads need not touch
/// the disk.  Real files can be preloaded into it by the driver.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SUPPORT_VIRTUALFILESYSTEM_H
#define M2C_SUPPORT_VIRTUALFILESYSTEM_H

#include "support/SourceLocation.h"
#include "support/StringInterner.h"

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace m2c {

/// One registered source file: a name (e.g. "Lists.def") plus its text.
///
/// Buffers are immutable once registered, which makes facts derived from
/// the text — its content hash, its import list — pure functions of the
/// buffer.  A long-lived service pays those derivations on every request
/// (discovery re-scans imports, the cache prepass re-hashes the whole
/// interface closure per module), so the buffer memoizes them: the first
/// caller computes, everyone after reads.  The compute callback keeps the
/// layering clean — support/ stores the fact without knowing how the
/// cache hashes or the front end lexes.
struct SourceBuffer {
  FileId Id;
  std::string Name;
  std::string Text;

  /// The memoized result of \p Compute (conventionally the cache layer's
  /// content hash of Text, in hex).  \p Compute runs at most once.
  std::string contentHash(const std::function<std::string()> &Compute) const;

  /// The memoized direct-import list of this buffer.  Symbols are only
  /// meaningful to the \p Owner interner that produced them, so the memo
  /// is tagged: a caller with a different interner recomputes (and takes
  /// over the slot — in practice a buffer serves one interner for life).
  std::vector<Symbol>
  imports(const void *Owner,
          const std::function<std::vector<Symbol>()> &Compute) const;

private:
  mutable std::mutex FactsM;
  mutable std::string HashHex;            ///< Empty until computed.
  mutable const void *ImportsOwner = nullptr;
  mutable bool HasImports = false;
  mutable std::vector<Symbol> Imports;
};

/// Thread-safe in-memory file system for compiler input.
///
/// Lexer tasks for different streams read buffers concurrently; buffers are
/// immutable once added, so readers need no locking after lookup.
class VirtualFileSystem {
public:
  VirtualFileSystem() = default;
  VirtualFileSystem(const VirtualFileSystem &) = delete;
  VirtualFileSystem &operator=(const VirtualFileSystem &) = delete;

  /// Registers file \p Name with contents \p Text, replacing any previous
  /// file of the same name.  Returns its FileId.
  FileId addFile(std::string Name, std::string Text);

  /// Looks up a file by name.  Returns nullptr if absent.  The returned
  /// buffer lives as long as the file system and is never mutated.
  const SourceBuffer *lookup(std::string_view Name) const;

  /// Looks up a file by id; asserts the id is valid.
  const SourceBuffer &buffer(FileId Id) const;

  /// True if a file named \p Name has been registered.
  bool exists(std::string_view Name) const { return lookup(Name) != nullptr; }

  /// Loads a file from the host file system into the VFS under the same
  /// name.  Returns the FileId, or std::nullopt if the file can't be read.
  std::optional<FileId> addFromDisk(const std::string &Path);

  /// Number of registered files.
  size_t size() const;

  /// Names of every *live* file, i.e. excluding buffers shadowed by a
  /// later addFile of the same name.  Sorted, so callers that mirror the
  /// VFS to a real directory (the farm bench materializing a workspace
  /// for worker processes) enumerate deterministically.
  std::vector<std::string> names() const;

  /// Names of the conventional pair of files for module \p ModuleName.
  static std::string defFileName(std::string_view ModuleName);
  static std::string modFileName(std::string_view ModuleName);

private:
  mutable std::mutex Mutex;
  std::vector<std::unique_ptr<SourceBuffer>> Buffers;
  std::unordered_map<std::string_view, SourceBuffer *> ByName;
};

} // namespace m2c

#endif // M2C_SUPPORT_VIRTUALFILESYSTEM_H
