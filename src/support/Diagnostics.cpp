//===--- Diagnostics.cpp - Thread-safe diagnostic collection -------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/VirtualFileSystem.h"

#include <algorithm>
#include <sstream>

using namespace m2c;

std::string m2c::toString(const SourceLocation &Loc) {
  if (!Loc.isValid())
    return "<unknown>";
  return std::to_string(Loc.Line) + ":" + std::to_string(Loc.Column);
}

void DiagnosticsEngine::report(DiagSeverity Severity, SourceLocation Loc,
                               std::string Message) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Diags.push_back(Diagnostic{Severity, Loc, std::move(Message)});
}

bool DiagnosticsEngine::hasErrors() const { return errorCount() != 0; }

size_t DiagnosticsEngine::errorCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  size_t N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Severity == DiagSeverity::Error)
      ++N;
  return N;
}

size_t DiagnosticsEngine::count() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Diags.size();
}

static void sortDiags(std::vector<Diagnostic> &Out) {
  std::stable_sort(Out.begin(), Out.end(),
                   [](const Diagnostic &A, const Diagnostic &B) {
                     if (A.Loc.File.index() != B.Loc.File.index())
                       return A.Loc.File.index() < B.Loc.File.index();
                     if (A.Loc.Line != B.Loc.Line)
                       return A.Loc.Line < B.Loc.Line;
                     if (A.Loc.Column != B.Loc.Column)
                       return A.Loc.Column < B.Loc.Column;
                     return A.Message < B.Message;
                   });
}

/// Collapses identical (severity, location, message) neighbours of a
/// sorted list.  Applied to EVERY sorted view — the standalone render and
/// a service request's per-file slice alike — so the two stay
/// byte-identical: under a service, a module recompiled by a later
/// request re-reports diagnostics a peer already placed in the shared
/// engine, and the duplicate must collapse in both paths or neither.
static void dedupDiags(std::vector<Diagnostic> &Out) {
  Out.erase(std::unique(Out.begin(), Out.end(),
                        [](const Diagnostic &A, const Diagnostic &B) {
                          return A.Severity == B.Severity &&
                                 A.Loc.File.index() == B.Loc.File.index() &&
                                 A.Loc.Line == B.Loc.Line &&
                                 A.Loc.Column == B.Loc.Column &&
                                 A.Message == B.Message;
                        }),
            Out.end());
}

std::vector<Diagnostic> DiagnosticsEngine::sorted() const {
  std::vector<Diagnostic> Copy;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Copy = Diags;
  }
  sortDiags(Copy);
  dedupDiags(Copy);
  return Copy;
}

std::vector<Diagnostic> DiagnosticsEngine::sortedIn(
    const std::unordered_set<uint32_t> &FileIdxs) const {
  std::vector<Diagnostic> Out;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (const Diagnostic &D : Diags)
      if (D.Loc.File.isValid() && FileIdxs.count(D.Loc.File.index()))
        Out.push_back(D);
  }
  sortDiags(Out);
  dedupDiags(Out);
  return Out;
}

size_t DiagnosticsEngine::countIn(
    const std::unordered_set<uint32_t> &FileIdxs) const {
  return sortedIn(FileIdxs).size();
}

size_t DiagnosticsEngine::errorCountIn(
    const std::unordered_set<uint32_t> &FileIdxs) const {
  size_t N = 0;
  for (const Diagnostic &D : sortedIn(FileIdxs))
    if (D.Severity == DiagSeverity::Error)
      ++N;
  return N;
}

static const char *severityName(DiagSeverity Severity) {
  switch (Severity) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

static std::string renderList(const std::vector<Diagnostic> &List,
                              const VirtualFileSystem *Files) {
  std::ostringstream OS;
  for (const Diagnostic &D : List) {
    if (D.Loc.File.isValid() && Files)
      OS << Files->buffer(D.Loc.File).Name;
    else if (D.Loc.File.isValid())
      OS << "file" << D.Loc.File.index();
    else
      OS << "<builtin>";
    OS << ":" << toString(D.Loc) << ": " << severityName(D.Severity) << ": "
       << D.Message << "\n";
  }
  return OS.str();
}

std::string DiagnosticsEngine::render(const VirtualFileSystem *Files) const {
  return renderList(sorted(), Files);
}

std::string
DiagnosticsEngine::renderIn(const std::unordered_set<uint32_t> &FileIdxs,
                            const VirtualFileSystem *Files) const {
  return renderList(sortedIn(FileIdxs), Files);
}
