//===--- SourceLocation.h - Positions within compiler input ----*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight value types naming a position (file, line, column) in the
/// source text being compiled.  Locations are carried on tokens, AST nodes
/// and diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SUPPORT_SOURCELOCATION_H
#define M2C_SUPPORT_SOURCELOCATION_H

#include <cstdint>
#include <string>

namespace m2c {

/// Identifies one source file registered with a VirtualFileSystem.
///
/// FileIds are dense small integers; invalid() is reserved for synthesized
/// entities that have no source position (builtin declarations, merged
/// output).
class FileId {
public:
  FileId() : Index(Invalid) {}
  explicit FileId(uint32_t Index) : Index(Index) {}

  static FileId invalid() { return FileId(); }

  bool isValid() const { return Index != Invalid; }
  uint32_t index() const { return Index; }

  friend bool operator==(FileId A, FileId B) { return A.Index == B.Index; }
  friend bool operator!=(FileId A, FileId B) { return !(A == B); }

private:
  static constexpr uint32_t Invalid = ~0u;
  uint32_t Index;
};

/// A (file, line, column) source position.  Lines and columns are 1-based;
/// a default-constructed location is "unknown".
struct SourceLocation {
  FileId File;
  uint32_t Line = 0;
  uint32_t Column = 0;

  SourceLocation() = default;
  SourceLocation(FileId File, uint32_t Line, uint32_t Column)
      : File(File), Line(Line), Column(Column) {}

  bool isValid() const { return Line != 0; }

  friend bool operator==(const SourceLocation &A, const SourceLocation &B) {
    return A.File == B.File && A.Line == B.Line && A.Column == B.Column;
  }
  friend bool operator!=(const SourceLocation &A, const SourceLocation &B) {
    return !(A == B);
  }
};

/// Renders \p Loc as "line:column" (without the file name, which requires
/// a VirtualFileSystem to resolve).
std::string toString(const SourceLocation &Loc);

} // namespace m2c

#endif // M2C_SUPPORT_SOURCELOCATION_H
