//===--- Statistic.cpp - Lightweight concurrent counters -----------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "support/Statistic.h"

using namespace m2c;

std::atomic<uint64_t> &StatisticSet::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters[Name];
}

uint64_t StatisticSet::get(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Counters.find(Name);
  return It == Counters.end()
             ? 0
             : It->second.load(std::memory_order_relaxed);
}

std::map<std::string, uint64_t> StatisticSet::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::map<std::string, uint64_t> Result;
  for (const auto &[Name, Value] : Counters)
    Result.emplace(Name, Value.load(std::memory_order_relaxed));
  return Result;
}
