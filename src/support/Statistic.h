//===--- Statistic.h - Lightweight concurrent counters ---------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named atomic counters used to gather the per-compilation statistics the
/// paper reports (lookup outcomes, event waits, task counts).  A
/// StatisticSet is owned by one compilation, so numbers from concurrent
/// compilations never mix.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SUPPORT_STATISTIC_H
#define M2C_SUPPORT_STATISTIC_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace m2c {

/// A collection of named, thread-safe counters.
class StatisticSet {
public:
  StatisticSet() = default;
  StatisticSet(const StatisticSet &) = delete;
  StatisticSet &operator=(const StatisticSet &) = delete;

  /// Adds \p Delta to the counter named \p Name (creating it at zero).
  void add(const std::string &Name, uint64_t Delta = 1) {
    counter(Name).fetch_add(Delta, std::memory_order_relaxed);
  }

  /// Current value of the counter named \p Name (zero if never touched).
  uint64_t get(const std::string &Name) const;

  /// Snapshot of every counter, sorted by name.
  std::map<std::string, uint64_t> snapshot() const;

private:
  std::atomic<uint64_t> &counter(const std::string &Name);

  mutable std::mutex Mutex;
  // std::map keeps node addresses stable so returned references survive
  // later insertions.
  std::map<std::string, std::atomic<uint64_t>> Counters;
};

} // namespace m2c

#endif // M2C_SUPPORT_STATISTIC_H
