//===--- ThreadedExecutor.cpp - Real-thread Supervisors executor ---------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "sched/ThreadedExecutor.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace m2c::sched;

Executor::~Executor() = default;
ActivitySink::~ActivitySink() = default;

ThreadedExecutor::ThreadedExecutor(unsigned Processors, CostModel Model)
    : Processors(Processors), NumShards(Processors), Model(Model),
      Shards(std::make_unique<Shard[]>(Processors)) {
  assert(Processors > 0 && "need at least one processor");
}

ThreadedExecutor::~ThreadedExecutor() {
  ShuttingDown.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> Lock(IdleM);
    IdleCv.notify_all();
  }
  {
    std::lock_guard<std::mutex> Lock(TokenM);
    TokenCv.notify_all();
  }
  std::vector<std::thread> Done;
  {
    std::lock_guard<std::mutex> Lock(WorkersM);
    Done.swap(Workers);
  }
  for (std::thread &W : Done)
    if (W.joinable())
      W.join();
}

uint64_t ThreadedExecutor::nowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - RunStart)
          .count());
}

//===--- Spawning and queues ------------------------------------------------===//

void ThreadedExecutor::spawn(TaskPtr T) {
  spawnFrom(std::move(T),
            RoundRobin.fetch_add(1, std::memory_order_relaxed) % NumShards);
}

void ThreadedExecutor::spawnFrom(TaskPtr T, unsigned HomeShard) {
  assert(T && "null task");
  TotalSpawned.fetch_add(1, std::memory_order_relaxed);
  Incomplete.fetch_add(1, std::memory_order_acq_rel);
  // Request attribution (service mode): count the task against its
  // request before it can possibly run, so awaitRequest() never observes
  // a transient zero while the graph is still growing.
  if (RequestState *RS = requestOf(*T))
    RS->Incomplete.fetch_add(1, std::memory_order_acq_rel);
  if (T->prerequisites().empty()) {
    pushReady(std::move(T), HomeShard);
  } else {
    std::lock_guard<std::mutex> Lock(GateM);
    // Publish the gating intent before the Supervisor re-checks each
    // prerequisite's signaled flag: the seq_cst fence pairs with the one
    // in signal() (Dekker), so either the Supervisor sees the signal or
    // the signaler sees MayGate and takes GateM to release us.
    for (const EventPtr &E : T->prerequisites())
      if (!E->isSignaled())
        E->MayGate.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    Sup.add(std::move(T));
    drainSupervisor(HomeShard);
  }
  ensureWorkerForReadyWork();
}

void ThreadedExecutor::drainSupervisor(unsigned HomeShard) {
  while (TaskPtr Ready = Sup.popBest())
    pushReady(std::move(Ready), HomeShard);
}

void ThreadedExecutor::pushReady(TaskPtr T, unsigned HomeShard,
                                 bool BypassFairShare) {
  // Fair-share admission (service mode): while several requests are open,
  // a request at its share parks further ready tasks in its own deferred
  // queue.  Deferred tasks are invisible to ReadyCount — workers cannot
  // pop them — and re-enter here (BypassFairShare) when the request
  // releases a slot or the share rises.
  if (!BypassFairShare && Serving.load(std::memory_order_acquire)) {
    if (RequestState *RS = requestOf(*T)) {
      if (!bypassesFairShare(*T)) {
        unsigned Cap = FairShare.load(std::memory_order_acquire);
        unsigned S = RS->Slots.load(std::memory_order_relaxed);
        bool Charged = false;
        while (S < Cap)
          if (RS->Slots.compare_exchange_weak(S, S + 1,
                                              std::memory_order_acq_rel)) {
            Charged = true;
            break;
          }
        if (!Charged) {
          {
            std::lock_guard<std::mutex> Lock(RS->DeferM);
            RS->Deferred.push_back(std::move(T));
            RS->DeferredShards.push_back(HomeShard);
          }
          RS->DeferredCount.fetch_add(1, std::memory_order_release);
          CtDeferred.fetch_add(1, std::memory_order_relaxed);
          // Close the check/park race: if every counted task released its
          // slot while we were parking, nobody else will admit us.
          admitDeferred(*RS);
          return;
        }
        T->markSlotHeld();
      }
    }
  }
  // Producer-class tasks (Lexor/Splitter/Importer) go to the global queue
  // every pop consults first.  This preserves the baseline's
  // producers-before-consumers admission order: a consumer stuck in a
  // barrier wait holds its token, so a ready Lexor buried in an
  // unscanned shard could otherwise starve behind a full token pool.
  Shard &S =
      isProducerClass(T->taskClass()) ? ProducerQueue : Shards[HomeShard];
  unsigned Class = static_cast<unsigned>(T->taskClass());
  {
    std::lock_guard<std::mutex> Lock(S.M);
    S.ByClass[Class].push_back(std::move(T));
  }
  S.Count.fetch_add(1, std::memory_order_release);
  ReadyCount.fetch_add(1, std::memory_order_release);
  if (IdleWorkers.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> Lock(IdleM);
    IdleCv.notify_one();
  }
}

TaskPtr ThreadedExecutor::popFromShard(Shard &S) {
  std::lock_guard<std::mutex> Lock(S.M);
  for (unsigned C = 0; C < NumTaskClasses; ++C) {
    auto &Q = S.ByClass[C];
    if (Q.empty())
      continue;
    auto Best = Q.begin();
    // Within the long code-generation class, heavier tasks run first
    // ("code is generated for long procedures before short ones").
    if (C == static_cast<unsigned>(TaskClass::LongStmtCodeGen))
      for (auto It = std::next(Q.begin()), End = Q.end(); It != End; ++It)
        if ((*It)->weight() > (*Best)->weight())
          Best = It;
    TaskPtr T = std::move(*Best);
    Q.erase(Best);
    S.Count.fetch_sub(1, std::memory_order_release);
    ReadyCount.fetch_sub(1, std::memory_order_release);
    if (T->isBoosted()) {
      unsigned H = BoostedHint.load(std::memory_order_relaxed);
      while (H > 0 && !BoostedHint.compare_exchange_weak(
                          H, H - 1, std::memory_order_relaxed)) {
      }
    }
    return T;
  }
  return nullptr;
}

TaskPtr ThreadedExecutor::popBoosted() {
  auto ScanShard = [this](Shard &S) -> TaskPtr {
    if (S.Count.load(std::memory_order_acquire) == 0)
      return nullptr;
    std::lock_guard<std::mutex> Lock(S.M);
    for (unsigned C = 0; C < NumTaskClasses; ++C) {
      auto &Q = S.ByClass[C];
      for (auto It = Q.begin(), End = Q.end(); It != End; ++It) {
        if (!(*It)->isBoosted())
          continue;
        TaskPtr T = std::move(*It);
        Q.erase(It);
        S.Count.fetch_sub(1, std::memory_order_release);
        ReadyCount.fetch_sub(1, std::memory_order_release);
        return T;
      }
    }
    return nullptr;
  };
  TaskPtr T = ScanShard(ProducerQueue);
  for (unsigned I = 0; !T && I < NumShards; ++I)
    T = ScanShard(Shards[I]);
  // Decrement the hint whether or not the scan found a task: a miss means
  // the boosted task already left the queues (popped normally, started,
  // or still gated), and a stale hint would make every pop re-scan.
  unsigned H = BoostedHint.load(std::memory_order_relaxed);
  while (H > 0 &&
         !BoostedHint.compare_exchange_weak(H, H - 1,
                                            std::memory_order_relaxed)) {
  }
  return T;
}

TaskPtr ThreadedExecutor::tryPop(unsigned HomeShard) {
  if (BoostedHint.load(std::memory_order_acquire) > 0)
    if (TaskPtr T = popBoosted())
      return T;
  if (ProducerQueue.Count.load(std::memory_order_acquire) > 0)
    if (TaskPtr T = popFromShard(ProducerQueue))
      return T;
  if (Shards[HomeShard].Count.load(std::memory_order_acquire) > 0)
    if (TaskPtr T = popFromShard(Shards[HomeShard]))
      return T;
  // Steal: scan victim shards starting after our own.
  for (unsigned I = 1; I < NumShards; ++I) {
    Shard &Victim = Shards[(HomeShard + I) % NumShards];
    if (Victim.Count.load(std::memory_order_acquire) == 0)
      continue;
    if (TaskPtr T = popFromShard(Victim)) {
      CtSteals.fetch_add(1, std::memory_order_relaxed);
      return T;
    }
  }
  return nullptr;
}

//===--- Service mode -------------------------------------------------------===//

void ThreadedExecutor::recomputeFairShare() {
  size_t N = OpenRequests.size();
  FairShare.store(N <= 1 ? ~0u
                         : std::max(1u, Processors / static_cast<unsigned>(N)),
                  std::memory_order_release);
}

void ThreadedExecutor::admitDeferred(RequestState &RS) {
  while (RS.DeferredCount.load(std::memory_order_acquire) > 0) {
    // Take a slot first; a deferred task re-enters the ready queues
    // already counted, so admission is self-limiting.
    unsigned Cap = FairShare.load(std::memory_order_acquire);
    unsigned S = RS.Slots.load(std::memory_order_relaxed);
    bool Charged = false;
    while (S < Cap)
      if (RS.Slots.compare_exchange_weak(S, S + 1,
                                         std::memory_order_acq_rel)) {
        Charged = true;
        break;
      }
    if (!Charged)
      return;
    TaskPtr T;
    unsigned Shard = 0;
    {
      std::lock_guard<std::mutex> Lock(RS.DeferM);
      if (!RS.Deferred.empty()) {
        T = std::move(RS.Deferred.front());
        RS.Deferred.pop_front();
        Shard = RS.DeferredShards.front();
        RS.DeferredShards.pop_front();
      }
    }
    if (!T) { // Raced with another admitter; hand the slot back.
      RS.Slots.fetch_sub(1, std::memory_order_acq_rel);
      return;
    }
    RS.DeferredCount.fetch_sub(1, std::memory_order_release);
    T->markSlotHeld();
    pushReady(std::move(T), Shard, /*BypassFairShare=*/true);
  }
}

void ThreadedExecutor::releaseRequestSlot(Task &T) {
  RequestState *RS = requestOf(T);
  if (!RS || !T.holdsSlot() || !T.markSlotReleased())
    return;
  RS->Slots.fetch_sub(1, std::memory_order_acq_rel);
  if (RS->DeferredCount.load(std::memory_order_acquire) > 0)
    admitDeferred(*RS);
}

void ThreadedExecutor::finishRequestTask(const std::shared_ptr<void> &Tag) {
  auto *RS = static_cast<RequestState *>(Tag.get());
  if (RS->Incomplete.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> Lock(ReqDoneM);
    ReqDoneCv.notify_all();
  }
}

void ThreadedExecutor::startService() {
  assert(!Started.load(std::memory_order_acquire) &&
         "executor already running");
  RunStart = std::chrono::steady_clock::now();
  Serving.store(true, std::memory_order_release);
  Started.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> Lock(WorkersM);
  for (unsigned I = 0; I < Processors; ++I) {
    unsigned Id = static_cast<unsigned>(Workers.size());
    Workers.emplace_back([this, Id] { workerMain(Id); });
  }
}

void ThreadedExecutor::stopService() {
  if (!Serving.exchange(false, std::memory_order_acq_rel))
    return;
  ShuttingDown.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> Idle(IdleM);
    IdleCv.notify_all();
  }
  {
    std::lock_guard<std::mutex> Token(TokenM);
    TokenCv.notify_all();
  }
  std::vector<std::thread> Done;
  {
    std::lock_guard<std::mutex> W(WorkersM);
    Done.swap(Workers);
  }
  for (std::thread &W : Done)
    if (W.joinable())
      W.join();
  ShuttingDown.store(false, std::memory_order_release);
  Started.store(false, std::memory_order_release);
  ElapsedNs = nowNs();
  flushStats();
}

std::shared_ptr<void> ThreadedExecutor::openRequest() {
  auto RS = std::make_shared<RequestState>();
  {
    std::lock_guard<std::mutex> Lock(ReqM);
    OpenRequests.push_back(RS);
    recomputeFairShare();
  }
  CtRequestsOpened.fetch_add(1, std::memory_order_relaxed);
  return RS;
}

void ThreadedExecutor::awaitRequest(const std::shared_ptr<void> &Tag) {
  auto *RS = static_cast<RequestState *>(Tag.get());
  std::unique_lock<std::mutex> Lock(ReqDoneM);
  // finishRequestTask() notifies under ReqDoneM after the decrement, and
  // the predicate re-checks under the same lock, so wakeups cannot be
  // lost; the timeout is a backstop.
  while (RS->Incomplete.load(std::memory_order_acquire) != 0)
    ReqDoneCv.wait_for(Lock, std::chrono::milliseconds(50));
}

void ThreadedExecutor::closeRequest(const std::shared_ptr<void> &Tag) {
  std::vector<std::shared_ptr<RequestState>> Remaining;
  {
    std::lock_guard<std::mutex> Lock(ReqM);
    for (auto It = OpenRequests.begin(); It != OpenRequests.end(); ++It)
      if (It->get() == Tag.get()) {
        OpenRequests.erase(It);
        break;
      }
    recomputeFairShare();
    Remaining = OpenRequests;
  }
  CtRequestsClosed.fetch_add(1, std::memory_order_relaxed);
  // The share just rose for everyone still open; and drain any stragglers
  // of the closed request itself (empty when the caller awaited first, as
  // the contract requires).
  admitDeferred(*static_cast<RequestState *>(Tag.get()));
  for (const std::shared_ptr<RequestState> &RS : Remaining)
    admitDeferred(*RS);
}

//===--- Tokens and worker lifecycle ----------------------------------------===//

bool ThreadedExecutor::tryAcquireToken() {
  unsigned A = Active.load(std::memory_order_relaxed);
  while (A < Processors)
    if (Active.compare_exchange_weak(A, A + 1, std::memory_order_acquire))
      return true;
  return false;
}

void ThreadedExecutor::releaseToken() {
  Active.fetch_sub(1, std::memory_order_acq_rel);
  // Prefer handing the token to a resumed task over waking a fresh
  // worker; resumers block inside their task and cannot make progress any
  // other way.
  if (TokenWaiters.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> Lock(TokenM);
    TokenCv.notify_one();
    return;
  }
  if (ReadyCount.load(std::memory_order_acquire) > 0 &&
      IdleWorkers.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> Lock(IdleM);
    IdleCv.notify_one();
  }
}

void ThreadedExecutor::acquireTokenBlocking() {
  while (!tryAcquireToken()) {
    std::unique_lock<std::mutex> Lock(TokenM);
    TokenWaiters.fetch_add(1, std::memory_order_release);
    // The timeout is a lost-wakeup backstop only; releaseToken() notifies
    // under TokenM whenever waiters exist.
    TokenCv.wait_for(Lock, std::chrono::milliseconds(10), [this] {
      return Active.load(std::memory_order_acquire) < Processors ||
             ShuttingDown.load(std::memory_order_acquire);
    });
    TokenWaiters.fetch_sub(1, std::memory_order_release);
    if (ShuttingDown.load(std::memory_order_acquire))
      return;
  }
}

void ThreadedExecutor::ensureWorkerForReadyWork() {
  if (!Started.load(std::memory_order_acquire) ||
      ShuttingDown.load(std::memory_order_acquire))
    return;
  if (ReadyCount.load(std::memory_order_acquire) == 0 ||
      Active.load(std::memory_order_acquire) >= Processors)
    return;
  if (IdleWorkers.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> Lock(IdleM);
    IdleCv.notify_one();
    return;
  }
  // Ready task, free token, nobody parked: every live worker is running
  // or blocked in a wait, so a new OS thread is needed (the paper's
  // run-another-task workaround realized by growing the thread pool).
  std::lock_guard<std::mutex> Lock(WorkersM);
  if (ShuttingDown.load(std::memory_order_acquire))
    return;
  if (Workers.size() >=
      Processors + Blocked.load(std::memory_order_acquire))
    return;
  unsigned Id = static_cast<unsigned>(Workers.size());
  Workers.emplace_back([this, Id] { workerMain(Id); });
  CtWorkersSpawned.fetch_add(1, std::memory_order_relaxed);
}

//===--- Main loops ---------------------------------------------------------===//

void ThreadedExecutor::run() {
  RunStart = std::chrono::steady_clock::now();
  Started.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> Lock(WorkersM);
    for (unsigned I = 0; I < Processors; ++I) {
      unsigned Id = static_cast<unsigned>(Workers.size());
      Workers.emplace_back([this, Id] { workerMain(Id); });
    }
  }

  auto Quiescent = [this] {
    return Incomplete.load(std::memory_order_acquire) != 0 &&
           Active.load(std::memory_order_acquire) == 0 &&
           ReadyCount.load(std::memory_order_acquire) == 0;
  };
  std::unique_lock<std::mutex> Lock(DoneM);
  while (Incomplete.load(std::memory_order_acquire) != 0) {
    DoneCv.wait_for(Lock, std::chrono::milliseconds(100));
    // Deadlock check: every incomplete task is blocked on a handled event
    // nobody can signal.
    if (Quiescent()) {
      // Re-verify after a grace period to avoid racing task handoffs.
      DoneCv.wait_for(Lock, std::chrono::milliseconds(200));
      if (Quiescent()) {
        size_t HeldCount;
        std::vector<std::string> Report;
        {
          std::lock_guard<std::mutex> Gate(GateM);
          HeldCount = Sup.heldCount();
          Report = Sup.heldTaskReport();
        }
        std::fprintf(stderr,
                     "m2c: deadlock: %llu tasks incomplete, none runnable "
                     "(%zu held on avoided events)\n",
                     static_cast<unsigned long long>(
                         Incomplete.load(std::memory_order_acquire)),
                     HeldCount);
        for (const std::string &Held : Report)
          std::fprintf(stderr, "  %s\n", Held.c_str());
        std::abort();
      }
    }
  }
  Lock.unlock();

  ShuttingDown.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> Idle(IdleM);
    IdleCv.notify_all();
  }
  {
    std::lock_guard<std::mutex> Token(TokenM);
    TokenCv.notify_all();
  }
  std::vector<std::thread> Done;
  {
    std::lock_guard<std::mutex> W(WorkersM);
    Done.swap(Workers);
  }
  for (std::thread &W : Done)
    if (W.joinable())
      W.join();
  ShuttingDown.store(false, std::memory_order_release);
  Started.store(false, std::memory_order_release);
  ElapsedNs = nowNs();
  flushStats();
}

void ThreadedExecutor::flushStats() {
  // Flush the hot counters into the (mutex-guarded) StatisticSet once per
  // run (or on demand while serving) instead of locking it on every
  // scheduling operation.  Exchange-to-zero makes repeated flushes
  // incremental: each call folds in only what accumulated since the last.
  Stats.add("sched.tasks.total",
            TotalSpawned.exchange(0, std::memory_order_acq_rel));
  Stats.add("sched.tasks.started",
            CtStarted.exchange(0, std::memory_order_acq_rel));
  Stats.add("sched.events.signaled",
            CtSignaled.exchange(0, std::memory_order_acq_rel));
  Stats.add("sched.tasks.released_by_event",
            CtReleasedByEvent.exchange(0, std::memory_order_acq_rel));
  Stats.add("sched.waits.barrier",
            CtBarrierWaits.exchange(0, std::memory_order_acq_rel));
  Stats.add("sched.waits.barrier_ns",
            CtBarrierNs.exchange(0, std::memory_order_acq_rel));
  Stats.add("sched.waits.handled",
            CtHandledWaits.exchange(0, std::memory_order_acq_rel));
  Stats.add("sched.boosts", CtBoosts.exchange(0, std::memory_order_acq_rel));
  Stats.add("sched.steals", CtSteals.exchange(0, std::memory_order_acq_rel));
  Stats.add("sched.workers.spawned",
            CtWorkersSpawned.exchange(0, std::memory_order_acq_rel));
  Stats.add("sched.requests.opened",
            CtRequestsOpened.exchange(0, std::memory_order_acq_rel));
  Stats.add("sched.requests.closed",
            CtRequestsClosed.exchange(0, std::memory_order_acq_rel));
  Stats.add("sched.requests.deferred",
            CtDeferred.exchange(0, std::memory_order_acq_rel));
}

void ThreadedExecutor::workerMain(unsigned WorkerId) {
  unsigned Home = WorkerId % NumShards;
  while (!ShuttingDown.load(std::memory_order_acquire)) {
    TaskPtr T;
    if (ReadyCount.load(std::memory_order_acquire) > 0 &&
        tryAcquireToken()) {
      T = tryPop(Home);
      if (!T)
        releaseToken(); // Raced with another popper; requeue ourselves.
    }
    if (T) {
      std::shared_ptr<void> Tag = T->requestTag();
      runTask(std::move(T), WorkerId);
      releaseToken();
      if (Tag)
        finishRequestTask(Tag);
      if (Incomplete.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> Lock(DoneM);
        DoneCv.notify_all();
      }
      continue;
    }
    // Nothing admissible: park.  Pushers notify under IdleM after the
    // queue counters are visible, and the predicate re-checks them under
    // the same lock, so wakeups cannot be lost; the timeout is a
    // backstop.
    std::unique_lock<std::mutex> Lock(IdleM);
    IdleWorkers.fetch_add(1, std::memory_order_release);
    IdleCv.wait_for(Lock, std::chrono::milliseconds(50), [this] {
      return ShuttingDown.load(std::memory_order_acquire) ||
             (ReadyCount.load(std::memory_order_acquire) > 0 &&
              Active.load(std::memory_order_acquire) < Processors);
    });
    IdleWorkers.fetch_sub(1, std::memory_order_release);
  }
}

void ThreadedExecutor::runTask(TaskPtr T, unsigned WorkerId) {
  bool First = T->markStarted();
  assert(First && "task started twice");
  (void)First;
  CtStarted.fetch_add(1, std::memory_order_relaxed);
  WorkerContext Ctx(*this, *T, WorkerId);
  Ctx.IntervalStartNs = nowNs();
  {
    ScopedContext Installed(Ctx);
    T->invoke();
  }
  flushInterval(Ctx);
  releaseRequestSlot(*T);
  T->markDone();
}

void ThreadedExecutor::flushInterval(WorkerContext &Ctx) {
  if (!Sink)
    return;
  uint64_t End = nowNs();
  if (End > Ctx.IntervalStartNs)
    Sink->record(Ctx.WorkerId, Ctx.T, Ctx.IntervalStartNs, End);
  Ctx.IntervalStartNs = End;
}

//===--- WorkerContext ------------------------------------------------------===//

void ThreadedExecutor::WorkerContext::charge(CostKind Kind, uint64_t Count) {
  ChargedUnits += Exec.Model.unitsFor(Kind, Count);
}

void ThreadedExecutor::WorkerContext::signal(Event &E) {
  if (!E.markSignaled(Exec.nowNs()))
    return;
  Exec.CtSignaled.fetch_add(1, std::memory_order_relaxed);
  // Wake tasks parked on this event.  The empty critical section pairs
  // with the waiters' signaled-recheck under WaitMutex: a waiter that
  // missed the flag is either inside wait() (and gets the notify) or
  // about to re-check (and sees the flag).
  {
    std::lock_guard<std::mutex> Lock(E.WaitMutex);
  }
  E.WaitCv.notify_all();
  // Dekker pairing with spawnFrom(): if a spawner is concurrently gating
  // a task on this event, either we observe MayGate here or the spawner's
  // re-check observes the signaled flag.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (E.MayGate.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> Lock(Exec.GateM);
    unsigned Released = Exec.Sup.noteSignaled(E);
    if (Released) {
      Exec.CtReleasedByEvent.fetch_add(Released, std::memory_order_relaxed);
      Exec.drainSupervisor(WorkerId % Exec.NumShards);
    }
  }
  Exec.ensureWorkerForReadyWork();
}

void ThreadedExecutor::WorkerContext::wait(Event &E) {
  if (E.isSignaled())
    return;

  // A blocked task no longer competes for processors, so its request's
  // fair-share slot is released on its first wait (once per task) and
  // not reacquired — a soft cap that keeps admission deadlock-free.
  Exec.releaseRequestSlot(T);

  if (E.kind() == EventKind::Barrier) {
    // Barrier waits hold the processor: "the worker simply waits for the
    // event to occur" (section 2.3.3).  Safe because token producers
    // (Lexor tasks) never block and are already running.
    Exec.CtBarrierWaits.fetch_add(1, std::memory_order_relaxed);
    Exec.flushInterval(*this);
    Exec.Blocked.fetch_add(1, std::memory_order_acq_rel);
    Exec.ensureWorkerForReadyWork();
    uint64_t WaitStart = Exec.nowNs();
    {
      std::unique_lock<std::mutex> Lock(E.WaitMutex);
      while (!E.isSignaled())
        E.WaitCv.wait(Lock);
    }
    Exec.Blocked.fetch_sub(1, std::memory_order_acq_rel);
    Exec.CtBarrierNs.fetch_add(Exec.nowNs() - WaitStart,
                               std::memory_order_relaxed);
    IntervalStartNs = Exec.nowNs();
    return;
  }

  assert(E.kind() == EventKind::Handled &&
         "avoided events gate task start and are never waited on mid-task");
  Exec.CtHandledWaits.fetch_add(1, std::memory_order_relaxed);
  if (Exec.Sup.boostResolver(E)) {
    Exec.CtBoosts.fetch_add(1, std::memory_order_relaxed);
    Exec.BoostedHint.fetch_add(1, std::memory_order_acq_rel);
  }

  // Release our concurrency token so another task can use the processor.
  Exec.Blocked.fetch_add(1, std::memory_order_acq_rel);
  Exec.releaseToken();
  Exec.ensureWorkerForReadyWork();
  Exec.flushInterval(*this);
  {
    std::unique_lock<std::mutex> Lock(E.WaitMutex);
    while (!E.isSignaled())
      E.WaitCv.wait(Lock);
  }
  // Reacquire a token before resuming.
  Exec.acquireTokenBlocking();
  Exec.Blocked.fetch_sub(1, std::memory_order_acq_rel);
  IntervalStartNs = Exec.nowNs();
}
