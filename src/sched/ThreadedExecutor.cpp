//===--- ThreadedExecutor.cpp - Real-thread Supervisors executor ---------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "sched/ThreadedExecutor.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace m2c::sched;

Executor::~Executor() = default;
ActivitySink::~ActivitySink() = default;

ThreadedExecutor::ThreadedExecutor(unsigned Processors, CostModel Model)
    : Processors(Processors), Model(Model) {
  assert(Processors > 0 && "need at least one processor");
}

ThreadedExecutor::~ThreadedExecutor() {
  {
    std::lock_guard<std::mutex> Lock(M);
    ShuttingDown = true;
  }
  WorkCv.notify_all();
  for (std::thread &W : Workers)
    if (W.joinable())
      W.join();
}

uint64_t ThreadedExecutor::nowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - RunStart)
          .count());
}

void ThreadedExecutor::spawn(TaskPtr T) {
  assert(T && "null task");
  {
    std::lock_guard<std::mutex> Lock(M);
    ++Incomplete;
    Sup.add(std::move(T));
    if (Started)
      ensureWorkerForReadyWork();
  }
  WorkCv.notify_all();
}

void ThreadedExecutor::ensureWorkerForReadyWork() {
  // Caller holds M.  A new OS thread is needed when admission is possible
  // (ready task, free token) but no parked worker exists to take it; this
  // happens when workers' tasks blocked on handled events.
  if (!Sup.hasReady() || Active >= Processors || IdleWorkers > 0)
    return;
  unsigned Id = static_cast<unsigned>(Workers.size());
  Workers.emplace_back([this, Id] { workerMain(Id); });
  Stats.add("sched.workers.spawned");
}

void ThreadedExecutor::run() {
  RunStart = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> Lock(M);
    Started = true;
    for (unsigned I = 0; I < Processors; ++I) {
      unsigned Id = static_cast<unsigned>(Workers.size());
      Workers.emplace_back([this, Id] { workerMain(Id); });
    }
  }
  WorkCv.notify_all();

  std::unique_lock<std::mutex> Lock(M);
  while (Incomplete != 0) {
    DoneCv.wait_for(Lock, std::chrono::milliseconds(100));
    // Deadlock check: every incomplete task is blocked on a handled event
    // nobody can signal.
    if (Incomplete != 0 && Active == 0 && !Sup.hasReady()) {
      // Re-verify after a grace period to avoid racing task handoffs.
      DoneCv.wait_for(Lock, std::chrono::milliseconds(200));
      if (Incomplete != 0 && Active == 0 && !Sup.hasReady()) {
        std::fprintf(stderr,
                     "m2c: deadlock: %llu tasks incomplete, none runnable "
                     "(%zu held on avoided events)\n",
                     static_cast<unsigned long long>(Incomplete),
                     Sup.heldCount());
        for (const std::string &Held : Sup.heldTaskReport())
          std::fprintf(stderr, "  %s\n", Held.c_str());
        std::abort();
      }
    }
  }
  ShuttingDown = true;
  Lock.unlock();
  WorkCv.notify_all();
  for (std::thread &W : Workers)
    if (W.joinable())
      W.join();
  Lock.lock();
  Workers.clear();
  ShuttingDown = false;
  Started = false;
  ElapsedNs = nowNs();
  Stats.add("sched.tasks.total", Sup.spawnedCount());
}

void ThreadedExecutor::workerMain(unsigned WorkerId) {
  std::unique_lock<std::mutex> Lock(M);
  while (true) {
    while (!ShuttingDown && !(Sup.hasReady() && Active < Processors)) {
      ++IdleWorkers;
      WorkCv.wait(Lock);
      --IdleWorkers;
    }
    if (ShuttingDown)
      return;
    TaskPtr T = Sup.popBest();
    assert(T && "ready task disappeared");
    ++Active;
    Lock.unlock();
    runTask(std::move(T), WorkerId);
    Lock.lock();
    --Active;
    --Incomplete;
    if (Incomplete == 0)
      DoneCv.notify_all();
    // A token was freed; admit a parked worker or a resuming task.
    WorkCv.notify_all();
  }
}

void ThreadedExecutor::runTask(TaskPtr T, unsigned WorkerId) {
  bool First = T->markStarted();
  assert(First && "task started twice");
  (void)First;
  Stats.add("sched.tasks.started");
  WorkerContext Ctx(*this, *T, WorkerId);
  Ctx.IntervalStartNs = nowNs();
  {
    ScopedContext Installed(Ctx);
    T->invoke();
  }
  flushInterval(Ctx);
  T->markDone();
}

void ThreadedExecutor::flushInterval(WorkerContext &Ctx) {
  if (!Sink)
    return;
  uint64_t End = nowNs();
  if (End > Ctx.IntervalStartNs)
    Sink->record(Ctx.WorkerId, Ctx.T, Ctx.IntervalStartNs, End);
  Ctx.IntervalStartNs = End;
}

void ThreadedExecutor::WorkerContext::charge(CostKind Kind, uint64_t Count) {
  ChargedUnits += Exec.Model.unitsFor(Kind, Count);
}

void ThreadedExecutor::WorkerContext::signal(Event &E) {
  std::lock_guard<std::mutex> Lock(Exec.M);
  if (!E.markSignaled(Exec.nowNs()))
    return;
  Exec.Stats.add("sched.events.signaled");
  unsigned Released = Exec.Sup.noteSignaled(E);
  if (Released)
    Exec.Stats.add("sched.tasks.released_by_event", Released);
  Exec.ensureWorkerForReadyWork();
  E.WaitCv.notify_all();
  Exec.WorkCv.notify_all();
}

void ThreadedExecutor::WorkerContext::wait(Event &E) {
  if (E.isSignaled())
    return;
  std::unique_lock<std::mutex> Lock(Exec.M);
  if (E.isSignaled())
    return;

  if (E.kind() == EventKind::Barrier) {
    // Barrier waits hold the processor: "the worker simply waits for the
    // event to occur" (section 2.3.3).  Safe because token producers
    // (Lexor tasks) never block and are already running.
    Exec.Stats.add("sched.waits.barrier");
    Lock.unlock();
    Exec.flushInterval(*this);
    Lock.lock();
    uint64_t WaitStart = Exec.nowNs();
    while (!E.isSignaled())
      E.WaitCv.wait(Lock);
    Exec.Stats.add("sched.waits.barrier_ns", Exec.nowNs() - WaitStart);
    IntervalStartNs = Exec.nowNs();
    return;
  }

  assert(E.kind() == EventKind::Handled &&
         "avoided events gate task start and are never waited on mid-task");
  Exec.Stats.add("sched.waits.handled");
  if (Exec.Sup.boostResolver(E))
    Exec.Stats.add("sched.boosts");

  // Release our concurrency token so another task can use the processor.
  --Exec.Active;
  Exec.ensureWorkerForReadyWork();
  Lock.unlock();
  Exec.flushInterval(*this);
  Exec.WorkCv.notify_all();
  Lock.lock();

  while (!E.isSignaled())
    E.WaitCv.wait(Lock);
  // Reacquire a token before resuming.
  while (Exec.Active >= Exec.Processors)
    Exec.WorkCv.wait(Lock);
  ++Exec.Active;
  IntervalStartNs = Exec.nowNs();
}
