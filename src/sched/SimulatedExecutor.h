//===--- SimulatedExecutor.h - Discrete-event multiprocessor ----*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes the real compiler task graph on P *virtual* processors under a
/// deterministic discrete-event simulation, so the paper's 1..8-processor
/// speedup experiments can be reproduced on a single-core host.
///
/// Mechanism: every started task runs on a dedicated host thread that is
/// baton-controlled by the single simulator thread — at most one host
/// thread executes at any instant, so execution is fully deterministic.
/// Task code accrues virtual-time charges (CostModel) as it performs real
/// compilation work and parks at every scheduling operation (event wait,
/// event signal, task spawn, completion).  Parked operations are applied
/// in global virtual-time order; processor assignment follows the same
/// Supervisor policy as the threaded executor.
///
/// Approximation: between two scheduling operations a task's reads of
/// shared structures (e.g. probing another stream's symbol table) use the
/// host-order state rather than the exact virtual-time state.  The DKY
/// algorithms are insensitive to interleaving (a miss on an incomplete
/// table always re-checks after completion), so compilation results are
/// exact; only the fine-grained timing of individual probes is
/// approximate.  Timing results are deterministic for a given input.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SCHED_SIMULATEDEXECUTOR_H
#define M2C_SCHED_SIMULATEDEXECUTOR_H

#include "sched/Executor.h"
#include "sched/ExecContext.h"
#include "sched/Supervisor.h"

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

namespace m2c::sched {

/// Deterministic virtual-time executor over P simulated processors.
class SimulatedExecutor : public Executor {
public:
  explicit SimulatedExecutor(unsigned Processors,
                             CostModel Model = CostModel());
  ~SimulatedExecutor() override;

  void spawn(TaskPtr T) override;
  void run() override;
  uint64_t elapsedUnits() const override { return Makespan; }
  unsigned processorCount() const override { return Processors; }

  /// Makespan converted to simulated seconds via the cost model.
  double elapsedSeconds() const {
    return static_cast<double>(Makespan) /
           static_cast<double>(Model.UnitsPerSecond);
  }

  const CostModel &costModel() const { return Model; }

private:
  /// What a parked task is asking the simulator to do.
  enum class OpKind : uint8_t { Wait, Signal, Spawn, Finish };

  /// Bookkeeping for one started task and its baton-controlled host
  /// thread.
  struct SimTask {
    TaskPtr T;
    std::thread Host;

    // Baton handshake (guarded by BatonM).
    std::mutex BatonM;
    std::condition_variable BatonCv;
    bool Go = false;
    bool Parked = false;
    bool Finished = false;

    // Parked-operation payload; written by the task thread before it
    // parks, read by the simulator afterwards (ordered by the handshake).
    OpKind Op = OpKind::Finish;
    Event *OpEvent = nullptr;
    TaskPtr OpSpawn;

    // Virtual-time state, owned by the simulator thread except for
    // PendingUnits which the task thread accumulates while running.
    uint64_t PendingUnits = 0;
    uint64_t LocalTime = 0;
    unsigned BusyAtResume = 1;
    unsigned Proc = 0;
    uint64_t IntervalStart = 0;
    bool Blocked = false;
  };

  /// ExecContext installed on each task host thread.
  class SimContext final : public ExecContext {
  public:
    SimContext(SimulatedExecutor &Exec, SimTask &ST) : Exec(Exec), ST(ST) {}
    void charge(CostKind Kind, uint64_t Count) override {
      ST.PendingUnits += Exec.Model.unitsFor(Kind, Count);
    }
    void wait(Event &E) override;
    void signal(Event &E) override;
    void spawn(TaskPtr T) override;
    const CostModel &costModel() const override { return Exec.Model; }
    bool isTaskContext() const override { return true; }

  private:
    SimulatedExecutor &Exec;
    SimTask &ST;
  };

  struct PendingOp {
    uint64_t Time;
    uint64_t Seq;
    SimTask *ST;
  };
  struct OpOrder {
    bool operator()(const PendingOp &A, const PendingOp &B) const {
      if (A.Time != B.Time)
        return A.Time > B.Time; // min-heap
      return A.Seq > B.Seq;
    }
  };

  /// Parks the calling task thread with the op already stored in \p ST,
  /// and blocks until the simulator hands the baton back.
  void park(SimTask &ST);

  /// Lets \p ST run until its next op (or until it finishes) and pushes
  /// the resulting PendingOp.  Simulator thread only.
  void stepTask(SimTask &ST);

  /// Folds accumulated charges into LocalTime with bus-contention scaling.
  void flushCharges(SimTask &ST);

  void applyOp(SimTask &ST);
  void applyWait(SimTask &ST, Event &E);
  void applySignal(SimTask &ST, Event &E);
  void applyFinish(SimTask &ST);

  /// Starts/resumes tasks on free processors at time \p Now until either
  /// no processor is free or nothing is runnable.
  void matchAssignments(uint64_t Now);

  void recordInterval(SimTask &ST, uint64_t End);
  void wakeWaiters(Event &E, uint64_t Now);

  const unsigned Processors;
  const CostModel Model;

  // Pre-run spawns (thread-safe); drained into Sup by run().
  std::mutex SpawnM;
  std::deque<TaskPtr> PreRunSpawns;
  bool Running = false;

  // Simulator-thread-only state.
  Supervisor Sup;
  std::priority_queue<PendingOp, std::vector<PendingOp>, OpOrder> Heap;
  uint64_t NextSeq = 0;
  std::vector<std::unique_ptr<SimTask>> AllTasks;
  std::deque<SimTask *> ResumeQueue; // handled waiters awaiting a processor
  std::unordered_map<Event *, std::vector<SimTask *>> BarrierWaiters;
  std::unordered_map<Event *, std::vector<SimTask *>> HandledWaiters;
  std::vector<unsigned> FreeProcs;
  unsigned BusyCount = 0;
  uint64_t CurTime = 0;
  uint64_t Makespan = 0;
  uint64_t LiveTasks = 0;
};

} // namespace m2c::sched

#endif // M2C_SCHED_SIMULATEDEXECUTOR_H
