//===--- CostModel.h - Virtual-time cost model for simulation --*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The build host has a single CPU core, so the paper's 1..8-processor
/// speedup experiments are reproduced on a discrete-event simulation of a
/// Firefly-class shared-memory multiprocessor.  Phase code charges
/// abstract work units (CostKind) as it performs real compilation work;
/// the CostModel maps those to virtual time.  One unit is calibrated as
/// one cycle of a ~12.5 MHz CVax processor, so UnitsPerSecond converts
/// virtual time to the seconds reported in the paper's Table 1.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SCHED_COSTMODEL_H
#define M2C_SCHED_COSTMODEL_H

#include <array>
#include <cstdint>

namespace m2c::sched {

/// Kinds of chargeable compiler work.  Phase code reports work in these
/// units; executors translate them to virtual time via the CostModel.
enum class CostKind : uint8_t {
  LexChar,        ///< One input character scanned.
  LexToken,       ///< One token produced.
  ParseToken,     ///< One token consumed by a parser.
  DeclAnalyzed,   ///< One type/const/procedure declaration analyzed.
  VarAnalyzed,    ///< One variable/parameter/field entry created.
  LookupProbe,    ///< One scope probed during symbol lookup.
  LookupBlocked,  ///< Bookkeeping for one DKY blockage.
  StmtNode,       ///< One statement/expression node analyzed.
  EmitInstr,      ///< One MCode instruction emitted.
  SplitToken,     ///< One token examined/diverted by the Splitter.
  ImportToken,    ///< One token examined by an Importer.
  QueueBlock,     ///< One token block published/consumed.
  EventCreate,    ///< One event allocated (visible Optimistic overhead).
  MergeUnit,      ///< One code unit concatenated by the Merge task.
  CacheProbe,     ///< One token hashed by the compilation-cache prepass.
  CacheLookup,    ///< One compilation-cache store lookup or store.
};

/// Number of distinct CostKind values.
constexpr unsigned NumCostKinds =
    static_cast<unsigned>(CostKind::CacheLookup) + 1;

/// Returns a human-readable name for \p Kind.
const char *costKindName(CostKind Kind);

/// Maps CostKinds to virtual-time units and holds machine parameters of
/// the simulated multiprocessor.
struct CostModel {
  /// Units charged per occurrence of each CostKind.  Defaults are rough
  /// CVax-cycle estimates; the workload generator calibrates module sizes
  /// so sequential compile times land in the paper's 2.3..108 s range.
  std::array<uint64_t, NumCostKinds> Units = {
      /*LexChar=*/1,
      /*LexToken=*/5,
      /*ParseToken=*/45,
      /*DeclAnalyzed=*/13200,
      /*VarAnalyzed=*/1800,
      /*LookupProbe=*/420,
      /*LookupBlocked=*/900,
      /*StmtNode=*/370,
      /*EmitInstr=*/85,
      /*SplitToken=*/2,
      /*ImportToken=*/2,
      /*QueueBlock=*/250,
      /*EventCreate=*/3500,
      /*MergeUnit=*/900,
      /*CacheProbe=*/2,
      /*CacheLookup=*/1500,
  };

  /// Fixed cost of one scheduling action (assigning a task to a worker).
  uint64_t TaskDispatch = 6000;

  /// Overhead charged to a task when it waits on an already-signaled or
  /// newly-signaled event.
  uint64_t EventWaitOverhead = 300;

  /// Overhead charged when signaling an event.
  uint64_t EventSignalOverhead = 200;

  /// Memory-bus contention: while K processors are simultaneously busy,
  /// every charge is scaled by (1 + BusBeta * (K - 1)).  The Firefly's
  /// bus saturation and fixed memory-access priorities degraded all
  /// processors at high concurrency (paper section 4.1); 0.025 makes the
  /// best-case (Synth.mod) curve land on the paper's ~6.7x at 8
  /// processors instead of near-linear.  Zero disables the model.
  double BusBeta = 0.025;

  /// Virtual-time units per simulated second, used to report virtual
  /// times in seconds (Table 1's "Seq. Compile Time").
  uint64_t UnitsPerSecond = 1'250'000;

  uint64_t unitsFor(CostKind Kind, uint64_t Count) const {
    return Units[static_cast<unsigned>(Kind)] * Count;
  }
};

} // namespace m2c::sched

#endif // M2C_SCHED_COSTMODEL_H
