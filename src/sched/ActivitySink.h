//===--- ActivitySink.h - Executor-side tracing interface ------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executors report per-processor task execution intervals through this
/// interface.  The trace library's ActivityRecorder implements it to
/// produce the paper's WatchTool-style activity views (Figures 4 and 7).
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SCHED_ACTIVITYSINK_H
#define M2C_SCHED_ACTIVITYSINK_H

#include "sched/Task.h"

#include <cstdint>

namespace m2c::sched {

/// Receives execution-interval notifications from an executor.
///
/// Implementations must be thread-safe: the threaded executor reports from
/// multiple workers concurrently.
class ActivitySink {
public:
  virtual ~ActivitySink();

  /// Reports that processor \p Proc executed \p T from \p StartUnits to
  /// \p EndUnits (virtual-time units for the simulated executor,
  /// nanoseconds for the threaded executor).  A task blocked and resumed
  /// mid-execution reports one interval per unblocked stretch.
  virtual void record(unsigned Proc, const Task &T, uint64_t StartUnits,
                      uint64_t EndUnits) = 0;
};

} // namespace m2c::sched

#endif // M2C_SCHED_ACTIVITYSINK_H
