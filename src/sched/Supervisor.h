//===--- Supervisor.h - Task admission policy (section 2.3) ----*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Supervisor implements the paper's "Supervisors" extension of
/// WorkCrews: it tracks spawned tasks, holds back tasks whose avoided
/// events have not yet occurred, and hands out ready tasks in priority
/// order (Lexor first ... short statement/code-generation tasks last),
/// ordering long code-generation tasks before short ones and boosting the
/// resolver of a DKY blockage to the front.
///
/// The Supervisor is a pure policy object shared by both executors; it is
/// not itself thread-safe — callers serialize access with their own lock.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SCHED_SUPERVISOR_H
#define M2C_SCHED_SUPERVISOR_H

#include "sched/Task.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace m2c::sched {

/// Priority-ordered pool of spawned-but-unstarted tasks.
class Supervisor {
public:
  Supervisor() = default;
  Supervisor(const Supervisor &) = delete;
  Supervisor &operator=(const Supervisor &) = delete;

  /// Registers a newly spawned task.  If every prerequisite has already
  /// been signaled the task is immediately ready; otherwise it is held
  /// until noteSignaled() releases it.
  void add(TaskPtr T);

  /// Records that \p E occurred, releasing any held tasks whose last
  /// outstanding prerequisite it was.  Returns the number of tasks that
  /// became ready.
  unsigned noteSignaled(const Event &E);

  /// Removes and returns the best ready task, or null if none is ready.
  /// Order: boosted tasks first, then ascending TaskClass, then (within
  /// LongStmtCodeGen) descending weight, then spawn order.
  TaskPtr popBest();

  /// Marks the resolver task of \p E (if any, and if not yet started) as
  /// boosted so popBest() prefers it.  Returns true if a boost was
  /// applied.
  bool boostResolver(const Event &E);

  bool hasReady() const { return !Ready.empty(); }
  size_t readyCount() const { return Ready.size(); }

  /// Number of tasks held back by unsignaled avoided events.
  size_t heldCount() const { return Held; }

  /// Names of held tasks with the events they wait for (deadlock
  /// reports).
  std::vector<std::string> heldTaskReport() const;

  /// Total tasks ever registered.
  uint64_t spawnedCount() const { return Spawned; }

private:
  struct ReadyEntry {
    TaskPtr T;
    uint64_t Seq;
  };

  /// True if \p A should run before \p B.
  static bool betterThan(const ReadyEntry &A, const ReadyEntry &B);

  std::vector<ReadyEntry> Ready;
  // Event -> tasks held on it; a task appears once per unsignaled prereq.
  std::unordered_map<const Event *, std::vector<TaskPtr>> Waiting;
  std::unordered_map<const Task *, unsigned> OutstandingPrereqs;
  size_t Held = 0;
  uint64_t Spawned = 0;
  uint64_t NextSeq = 0;
};

} // namespace m2c::sched

#endif // M2C_SCHED_SUPERVISOR_H
