//===--- Supervisor.cpp - Task admission policy ---------------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "sched/Supervisor.h"

#include <algorithm>
#include <cassert>

using namespace m2c::sched;

void Supervisor::add(TaskPtr T) {
  assert(T && "null task");
  ++Spawned;
  unsigned Outstanding = 0;
  for (const EventPtr &E : T->prerequisites()) {
    if (E->isSignaled())
      continue;
    Waiting[E.get()].push_back(T);
    ++Outstanding;
  }
  if (Outstanding == 0) {
    Ready.push_back(ReadyEntry{std::move(T), NextSeq++});
    return;
  }
  OutstandingPrereqs[T.get()] = Outstanding;
  ++Held;
}

unsigned Supervisor::noteSignaled(const Event &E) {
  auto It = Waiting.find(&E);
  if (It == Waiting.end())
    return 0;
  unsigned Released = 0;
  for (TaskPtr &T : It->second) {
    auto CountIt = OutstandingPrereqs.find(T.get());
    assert(CountIt != OutstandingPrereqs.end() && "held task without count");
    if (--CountIt->second != 0)
      continue;
    OutstandingPrereqs.erase(CountIt);
    assert(Held > 0 && "held-count underflow");
    --Held;
    Ready.push_back(ReadyEntry{std::move(T), NextSeq++});
    ++Released;
  }
  Waiting.erase(It);
  return Released;
}

bool Supervisor::betterThan(const ReadyEntry &A, const ReadyEntry &B) {
  bool ABoost = A.T->isBoosted(), BBoost = B.T->isBoosted();
  if (ABoost != BBoost)
    return ABoost;
  if (A.T->taskClass() != B.T->taskClass())
    return A.T->taskClass() < B.T->taskClass();
  if (A.T->taskClass() == TaskClass::LongStmtCodeGen &&
      A.T->weight() != B.T->weight())
    return A.T->weight() > B.T->weight();
  return A.Seq < B.Seq;
}

TaskPtr Supervisor::popBest() {
  if (Ready.empty())
    return nullptr;
  auto Best = Ready.begin();
  for (auto It = std::next(Ready.begin()), End = Ready.end(); It != End; ++It)
    if (betterThan(*It, *Best))
      Best = It;
  TaskPtr T = std::move(Best->T);
  Ready.erase(Best);
  return T;
}

std::vector<std::string> Supervisor::heldTaskReport() const {
  std::vector<std::string> Report;
  for (const auto &[Event, Tasks] : Waiting)
    for (const TaskPtr &T : Tasks)
      if (T)
        Report.push_back("'" + T->name() + "' held on '" + Event->name() +
                         "'");
  return Report;
}

bool Supervisor::boostResolver(const Event &E) {
  Task *Resolver = E.resolver();
  if (!Resolver || Resolver->isStarted())
    return false;
  return Resolver->boost();
}
