//===--- ExecContext.h - Per-task execution services ------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase code (lexing, parsing, semantic analysis, code generation) is
/// written once and runs under three regimes: the threaded executor, the
/// discrete-event simulated executor, and a plain sequential context used
/// by the baseline compiler and by unit tests.  ExecContext is the
/// regime-independent interface; the current context is installed
/// thread-locally so deeply nested phase code can reach it without
/// plumbing.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SCHED_EXECCONTEXT_H
#define M2C_SCHED_EXECCONTEXT_H

#include "sched/CostModel.h"
#include "sched/Event.h"
#include "sched/Task.h"

#include <cstdint>
#include <deque>

namespace m2c::sched {

/// Services an executor provides to running task code.
class ExecContext {
public:
  virtual ~ExecContext();

  /// Reports \p Count occurrences of \p Kind worth of completed work.
  virtual void charge(CostKind Kind, uint64_t Count = 1) = 0;

  /// Blocks the calling task until \p E is signaled, applying the
  /// event-kind-specific scheduling policy (section 2.3.3).
  virtual void wait(Event &E) = 0;

  /// Signals \p E, waking waiters and releasing avoided-event gated tasks.
  virtual void signal(Event &E) = 0;

  /// Submits \p T for execution once its prerequisites are signaled.
  virtual void spawn(TaskPtr T) = 0;

  /// The cost model in effect.
  virtual const CostModel &costModel() const = 0;

  /// True when this context belongs to a task running on an executor (as
  /// opposed to a plain SequentialContext on an ordinary thread).  Spawn
  /// routing uses this: submissions from inside executor tasks go through
  /// the context so the executor can apply its scheduling policy, while
  /// submissions from service/request threads go to the executor directly.
  virtual bool isTaskContext() const { return false; }
};

/// Returns the context installed on this thread.  Never null: when no
/// executor installed one, a thread-local SequentialContext is returned.
ExecContext &ctx();

/// RAII installer for the thread-local current context.
class ScopedContext {
public:
  explicit ScopedContext(ExecContext &Ctx);
  ~ScopedContext();
  ScopedContext(const ScopedContext &) = delete;
  ScopedContext &operator=(const ScopedContext &) = delete;

private:
  ExecContext *Saved;
};

/// Context for strictly sequential execution (baseline compiler, unit
/// tests).  Work charges accumulate into a running total of virtual time;
/// waits assert that the awaited event has already been signaled, which is
/// guaranteed when phases run in dependency order; spawned tasks are
/// queued and run by drain() in spawn order.
class SequentialContext : public ExecContext {
public:
  SequentialContext() = default;
  explicit SequentialContext(CostModel Model) : Model(Model) {}

  void charge(CostKind Kind, uint64_t Count = 1) override;
  void wait(Event &E) override;
  void signal(Event &E) override;
  void spawn(TaskPtr T) override;
  const CostModel &costModel() const override { return Model; }

  /// Runs queued tasks (in spawn order, honoring prerequisites) until none
  /// remain.  Aborts if progress stops with tasks still pending.
  void drain();

  /// Total virtual time units charged so far.
  uint64_t elapsedUnits() const { return TotalUnits; }

  /// Resets the accumulated virtual time.
  void resetElapsed() { TotalUnits = 0; }

private:
  CostModel Model;
  uint64_t TotalUnits = 0;
  std::deque<TaskPtr> Pending;
};

} // namespace m2c::sched

#endif // M2C_SCHED_EXECCONTEXT_H
