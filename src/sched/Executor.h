//===--- Executor.h - Abstract compilation executor ------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An Executor runs a dynamically growing set of tasks to quiescence on a
/// fixed number of (real or simulated) processors, applying the
/// Supervisor scheduling policy and the event semantics of section 2.3.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SCHED_EXECUTOR_H
#define M2C_SCHED_EXECUTOR_H

#include "sched/ActivitySink.h"
#include "sched/CostModel.h"
#include "sched/Task.h"
#include "support/Statistic.h"

namespace m2c::sched {

/// Common interface of the threaded and simulated executors.
class Executor {
public:
  virtual ~Executor();

  /// Submits \p T.  May be called before run() and from inside running
  /// tasks (the Splitter and Importer start new streams this way).
  virtual void spawn(TaskPtr T) = 0;

  /// Executes spawned tasks until none remain.  Returns when the task set
  /// is quiescent; aborts with a report if tasks deadlock.
  virtual void run() = 0;

  /// Total elapsed time of run(): virtual-time units for the simulated
  /// executor, wall-clock nanoseconds for the threaded executor.
  virtual uint64_t elapsedUnits() const = 0;

  /// Number of processors this executor schedules onto.
  virtual unsigned processorCount() const = 0;

  /// Scheduler statistics (task counts, waits, boost counts, ...).
  StatisticSet &stats() { return Stats; }
  const StatisticSet &stats() const { return Stats; }

  /// Installs an activity-trace sink (may be null).  Must be set before
  /// run().
  void setActivitySink(ActivitySink *S) { Sink = S; }

protected:
  StatisticSet Stats;
  ActivitySink *Sink = nullptr;
};

} // namespace m2c::sched

#endif // M2C_SCHED_EXECUTOR_H
