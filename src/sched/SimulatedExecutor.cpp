//===--- SimulatedExecutor.cpp - Discrete-event multiprocessor -----------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "sched/SimulatedExecutor.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace m2c::sched;

SimulatedExecutor::SimulatedExecutor(unsigned Processors, CostModel Model)
    : Processors(Processors), Model(Model) {
  assert(Processors > 0 && "need at least one processor");
}

SimulatedExecutor::~SimulatedExecutor() {
  // run() joins every host thread; reaching here with live threads means
  // run() was never called for some spawned tasks, which never started, so
  // no threads exist either way.
  for ([[maybe_unused]] auto &ST : AllTasks)
    assert(!ST->Host.joinable() && "simulated task thread leaked");
}

void SimulatedExecutor::spawn(TaskPtr T) {
  assert(T && "null task");
  std::lock_guard<std::mutex> Lock(SpawnM);
  assert(!Running && "external spawn during run(); use ctx().spawn from "
                     "task code instead");
  PreRunSpawns.push_back(std::move(T));
}

//===----------------------------------------------------------------------===//
// Baton handshake
//===----------------------------------------------------------------------===//

void SimulatedExecutor::park(SimTask &ST) {
  std::unique_lock<std::mutex> Lock(ST.BatonM);
  ST.Parked = true;
  ST.BatonCv.notify_all();
  ST.BatonCv.wait(Lock, [&] { return ST.Go; });
  ST.Go = false;
}

void SimulatedExecutor::stepTask(SimTask &ST) {
  {
    std::unique_lock<std::mutex> Lock(ST.BatonM);
    if (!ST.Host.joinable()) {
      // First step: create the host thread, which runs the task body until
      // its first scheduling operation.
      Lock.unlock();
      SimTask *Raw = &ST;
      ST.Host = std::thread([this, Raw] {
        SimContext Ctx(*this, *Raw);
        ScopedContext Installed(Ctx);
        Raw->T->invoke();
        std::lock_guard<std::mutex> BodyDone(Raw->BatonM);
        Raw->Op = OpKind::Finish;
        Raw->Finished = true;
        Raw->BatonCv.notify_all();
      });
      Lock.lock();
    } else {
      ST.Parked = false;
      ST.Go = true;
      ST.BatonCv.notify_all();
    }
    ST.BatonCv.wait(Lock, [&] { return ST.Parked || ST.Finished; });
  }
  flushCharges(ST);
  Heap.push(PendingOp{ST.LocalTime, NextSeq++, &ST});
}

void SimulatedExecutor::flushCharges(SimTask &ST) {
  if (ST.PendingUnits == 0)
    return;
  double Scale = 1.0;
  if (Model.BusBeta > 0.0 && ST.BusyAtResume > 1)
    Scale += Model.BusBeta * static_cast<double>(ST.BusyAtResume - 1);
  ST.LocalTime += static_cast<uint64_t>(
      std::llround(static_cast<double>(ST.PendingUnits) * Scale));
  ST.PendingUnits = 0;
}

//===----------------------------------------------------------------------===//
// Task-side context
//===----------------------------------------------------------------------===//

void SimulatedExecutor::SimContext::wait(Event &E) {
  ST.Op = OpKind::Wait;
  ST.OpEvent = &E;
  Exec.park(ST);
}

void SimulatedExecutor::SimContext::signal(Event &E) {
  ST.Op = OpKind::Signal;
  ST.OpEvent = &E;
  Exec.park(ST);
}

void SimulatedExecutor::SimContext::spawn(TaskPtr T) {
  assert(T && "null task");
  ST.Op = OpKind::Spawn;
  ST.OpSpawn = std::move(T);
  Exec.park(ST);
}

//===----------------------------------------------------------------------===//
// Simulation loop
//===----------------------------------------------------------------------===//

void SimulatedExecutor::run() {
  {
    std::lock_guard<std::mutex> Lock(SpawnM);
    Running = true;
    for (TaskPtr &T : PreRunSpawns)
      Sup.add(std::move(T));
    PreRunSpawns.clear();
  }
  for (unsigned I = 0; I < Processors; ++I)
    FreeProcs.push_back(Processors - 1 - I);

  CurTime = 0;
  Makespan = 0;
  matchAssignments(0);

  while (!Heap.empty()) {
    PendingOp Op = Heap.top();
    Heap.pop();
    assert(Op.Time >= CurTime && "simulation time went backwards");
    CurTime = Op.Time;
    if (CurTime > Makespan)
      Makespan = CurTime;
    applyOp(*Op.ST);
  }

  size_t Stuck = ResumeQueue.size();
  for (const auto &[E, Waiters] : HandledWaiters)
    Stuck += Waiters.size();
  for (const auto &[E, Waiters] : BarrierWaiters)
    Stuck += Waiters.size();
  if (Stuck != 0 || Sup.hasReady() || Sup.heldCount() != 0) {
    std::fprintf(stderr,
                 "m2c: simulated deadlock: %zu blocked tasks, %zu ready, "
                 "%zu held on avoided events\n",
                 Stuck, Sup.readyCount(), Sup.heldCount());
    for (const auto &[E, Waiters] : HandledWaiters)
      for (SimTask *W : Waiters)
        std::fprintf(stderr, "  '%s' waits (handled) on '%s'\n",
                     W->T->name().c_str(), E->name().c_str());
    for (const auto &[E, Waiters] : BarrierWaiters)
      for (SimTask *W : Waiters)
        std::fprintf(stderr, "  '%s' waits (barrier) on '%s'\n",
                     W->T->name().c_str(), E->name().c_str());
    for (const std::string &Held : Sup.heldTaskReport())
      std::fprintf(stderr, "  %s\n", Held.c_str());
    std::abort();
  }

  Stats.add("sched.tasks.total", Sup.spawnedCount());
  std::lock_guard<std::mutex> Lock(SpawnM);
  Running = false;
}

void SimulatedExecutor::applyOp(SimTask &ST) {
  switch (ST.Op) {
  case OpKind::Wait:
    applyWait(ST, *ST.OpEvent);
    return;
  case OpKind::Signal:
    applySignal(ST, *ST.OpEvent);
    return;
  case OpKind::Spawn: {
    TaskPtr NewT = std::move(ST.OpSpawn);
    Sup.add(std::move(NewT));
    matchAssignments(CurTime);
    stepTask(ST);
    return;
  }
  case OpKind::Finish:
    applyFinish(ST);
    return;
  }
}

void SimulatedExecutor::applyWait(SimTask &ST, Event &E) {
  if (E.isSignaled()) {
    ST.LocalTime += Model.EventWaitOverhead;
    stepTask(ST);
    return;
  }

  if (E.kind() == EventKind::Barrier) {
    // Processor is held but stalled while the task waits (section 2.3.3).
    Stats.add("sched.waits.barrier");
    recordInterval(ST, ST.LocalTime);
    ST.Blocked = true;
    assert(BusyCount > 0 && "busy-count underflow");
    --BusyCount;
    BarrierWaiters[&E].push_back(&ST);
    return;
  }

  assert(E.kind() == EventKind::Handled &&
         "avoided events gate task start and are never waited on mid-task");
  Stats.add("sched.waits.handled");
  if (Sup.boostResolver(E))
    Stats.add("sched.boosts");
  recordInterval(ST, ST.LocalTime);
  ST.Blocked = true;
  assert(BusyCount > 0 && "busy-count underflow");
  --BusyCount;
  FreeProcs.push_back(ST.Proc);
  HandledWaiters[&E].push_back(&ST);
  matchAssignments(CurTime);
}

void SimulatedExecutor::applySignal(SimTask &ST, Event &E) {
  ST.LocalTime += Model.EventSignalOverhead;
  if (E.markSignaled(CurTime)) {
    Stats.add("sched.events.signaled");
    unsigned Released = Sup.noteSignaled(E);
    if (Released)
      Stats.add("sched.tasks.released_by_event", Released);
    wakeWaiters(E, CurTime);
    matchAssignments(CurTime);
  }
  stepTask(ST);
}

void SimulatedExecutor::wakeWaiters(Event &E, uint64_t Now) {
  if (auto It = BarrierWaiters.find(&E); It != BarrierWaiters.end()) {
    std::vector<SimTask *> Waiters = std::move(It->second);
    BarrierWaiters.erase(It);
    for (SimTask *W : Waiters) {
      // The processor was held throughout; resume in place.
      Stats.add("sched.waits.barrier_units", Now - W->LocalTime);
      W->Blocked = false;
      ++BusyCount;
      W->BusyAtResume = BusyCount;
      W->LocalTime = Now + Model.EventWaitOverhead;
      W->IntervalStart = Now;
      stepTask(*W);
    }
  }
  if (auto It = HandledWaiters.find(&E); It != HandledWaiters.end()) {
    std::vector<SimTask *> Waiters = std::move(It->second);
    HandledWaiters.erase(It);
    for (SimTask *W : Waiters)
      ResumeQueue.push_back(W);
  }
}

void SimulatedExecutor::applyFinish(SimTask &ST) {
  recordInterval(ST, ST.LocalTime);
  assert(BusyCount > 0 && "busy-count underflow");
  --BusyCount;
  FreeProcs.push_back(ST.Proc);
  assert(LiveTasks > 0 && "live-task underflow");
  --LiveTasks;
  ST.T->markDone();
  if (ST.Host.joinable())
    ST.Host.join();
  matchAssignments(CurTime);
}

void SimulatedExecutor::matchAssignments(uint64_t Now) {
  while (!FreeProcs.empty()) {
    if (!ResumeQueue.empty()) {
      // Resuming blocked tasks takes precedence over starting fresh ones:
      // they hold partial results and other tasks may depend on them.
      SimTask *W = ResumeQueue.front();
      ResumeQueue.pop_front();
      W->Proc = FreeProcs.back();
      FreeProcs.pop_back();
      W->Blocked = false;
      ++BusyCount;
      W->BusyAtResume = BusyCount;
      W->LocalTime = Now + Model.EventWaitOverhead;
      W->IntervalStart = Now;
      stepTask(*W);
      continue;
    }
    TaskPtr T = Sup.popBest();
    if (!T)
      return;
    auto Owned = std::make_unique<SimTask>();
    SimTask *ST = Owned.get();
    ST->T = std::move(T);
    ST->Proc = FreeProcs.back();
    FreeProcs.pop_back();
    ++BusyCount;
    ST->BusyAtResume = BusyCount;
    ST->LocalTime = Now + Model.TaskDispatch;
    ST->IntervalStart = Now;
    ++LiveTasks;
    bool First = ST->T->markStarted();
    assert(First && "task started twice");
    (void)First;
    Stats.add("sched.tasks.started");
    AllTasks.push_back(std::move(Owned));
    stepTask(*ST);
  }
}

void SimulatedExecutor::recordInterval(SimTask &ST, uint64_t End) {
  if (!Sink)
    return;
  if (End > ST.IntervalStart)
    Sink->record(ST.Proc, *ST.T, ST.IntervalStart, End);
  ST.IntervalStart = End;
}
