//===--- ThreadedExecutor.h - Real-thread Supervisors executor -*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes compiler tasks on real OS threads with at most P tasks
/// running unblocked at any instant — the paper's "Supervisors" scheme
/// (one Worker per hardware processor) realized with a concurrency-token
/// pool.  When a task blocks on a handled event its token is released so
/// another task can use the processor (the modern equivalent of the
/// paper's run-another-task-nested workaround for Topaz threads); barrier
/// waits hold the token, exactly as the paper's workers "simply wait".
///
/// Scheduling state is sharded for scalability (see DESIGN.md section 9):
/// ready tasks live in per-shard class-priority deques with work
/// stealing; producer-class tasks (Lexor/Splitter/Importer — the tasks
/// barrier waiters depend on) go to one global queue every pop consults
/// first, preserving the producers-run-before-consumers invariant that
/// makes barrier waits deadlock-free.  Avoided-event gating runs through
/// the shared Supervisor under a dedicated gate lock that signals bypass
/// (Dekker-paired Event::MayGate flag) unless the event actually gates a
/// task.  Blocked tasks park on their event's own mutex/condvar, so
/// signal/wait traffic on different events never contends.
///
/// Besides the one-shot run() used by single compilations and build
/// sessions, the executor supports a persistent *service mode*
/// (startService/stopService): workers stay alive across many
/// independently submitted task graphs, each graph is attributed to a
/// *request* (openRequest/awaitRequest/closeRequest), and per-request
/// fair-share admission caps how many of a request's tasks may run at
/// once when several requests are in flight — one shared worker pool at
/// any request rate instead of every client constructing its own
/// oversubscribed executor (see DESIGN.md section 10).
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SCHED_THREADEDEXECUTOR_H
#define M2C_SCHED_THREADEDEXECUTOR_H

#include "sched/Executor.h"
#include "sched/ExecContext.h"
#include "sched/Supervisor.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace m2c::sched {

/// Real-thread executor limited to \p Processors concurrently unblocked
/// tasks.
class ThreadedExecutor : public Executor {
public:
  explicit ThreadedExecutor(unsigned Processors, CostModel Model = CostModel());
  ~ThreadedExecutor() override;

  void spawn(TaskPtr T) override;
  void run() override;
  uint64_t elapsedUnits() const override { return ElapsedNs; }
  unsigned processorCount() const override { return Processors; }

  const CostModel &costModel() const { return Model; }

  //===--- Service mode ---------------------------------------------------===//

  /// Starts persistent operation: spawns the worker pool and keeps it
  /// alive until stopService().  Do not mix with run(); a serving
  /// executor drains every spawned task as it arrives and requests wait
  /// on their own task subgraphs with awaitRequest().
  void startService();

  /// Stops persistent operation: joins every worker (spawned tasks are
  /// still drained first only if callers awaited their requests) and
  /// flushes scheduler statistics.  Idempotent.
  void stopService();

  /// True between startService() and stopService().
  bool serving() const { return Serving.load(std::memory_order_acquire); }

  /// Opens a request: returns the opaque tag to stamp on the request's
  /// tasks (Task::setRequestTag).  Tasks spawned from inside a tagged
  /// task inherit its tag.  While more than one request is open, each
  /// request's concurrently *running* tasks are capped at its fair share
  /// of the processors (producer-class and interface tasks, and boosted
  /// resolvers, bypass the cap — they are what other tasks block on).
  std::shared_ptr<void> openRequest();

  /// Blocks until every task carrying \p Tag has completed.  Call only
  /// after the request's initial tasks were spawned; tasks spawned from
  /// running tasks are counted before their spawner completes, so the
  /// count cannot dip to zero mid-graph.
  void awaitRequest(const std::shared_ptr<void> &Tag);

  /// Closes a request opened with openRequest() and recomputes the fair
  /// share of the remaining ones.
  void closeRequest(const std::shared_ptr<void> &Tag);

  /// Folds the hot atomic counters into stats().  run() does this
  /// automatically; a serving executor calls it on demand (stat queries,
  /// stopService).
  void flushStats();

private:
  /// One ready-task shard: class-priority FIFO deques under a private
  /// lock.  Workers push spawned tasks to their home shard and steal from
  /// victim shards when their own is empty.
  struct Shard {
    std::mutex M;
    std::deque<TaskPtr> ByClass[NumTaskClasses];
    /// Tasks queued in this shard; lets pops and steals skip empty shards
    /// without touching their locks.
    std::atomic<size_t> Count{0};
  };

  /// ExecContext implementation installed while a worker runs a task.
  class WorkerContext final : public ExecContext {
  public:
    WorkerContext(ThreadedExecutor &Exec, Task &T, unsigned WorkerId)
        : Exec(Exec), T(T), WorkerId(WorkerId) {}

    void charge(CostKind Kind, uint64_t Count) override;
    void wait(Event &E) override;
    void signal(Event &E) override;
    void spawn(TaskPtr NewTask) override {
      // Tasks spawned mid-task belong to the spawning task's request
      // unless the spawner already attributed them.
      if (!NewTask->requestTag() && T.requestTag())
        NewTask->setRequestTag(T.requestTag());
      Exec.spawnFrom(std::move(NewTask), WorkerId % Exec.NumShards);
    }
    const CostModel &costModel() const override { return Exec.Model; }
    bool isTaskContext() const override { return true; }

  private:
    friend class ThreadedExecutor;
    ThreadedExecutor &Exec;
    Task &T;
    unsigned WorkerId;
    uint64_t IntervalStartNs = 0;
    uint64_t ChargedUnits = 0;
  };

  void workerMain(unsigned WorkerId);
  void runTask(TaskPtr T, unsigned WorkerId);
  uint64_t nowNs() const;
  void flushInterval(WorkerContext &Ctx);

  //===--- Ready-task queues ---------------------------------------------===//

  static bool isProducerClass(TaskClass C) {
    return C <= TaskClass::Importer;
  }

  /// Spawn bookkeeping plus routing: gated tasks to the Supervisor,
  /// producer classes to the global producer queue, the rest to
  /// \p HomeShard (the spawning worker's shard; round-robin externally).
  void spawnFrom(TaskPtr T, unsigned HomeShard);

  /// Pushes an admission-ready task into its queue and wakes a worker.
  /// In service mode, a task of an over-fair-share request is parked in
  /// its request's deferred queue instead (unless \p BypassFairShare).
  void pushReady(TaskPtr T, unsigned HomeShard, bool BypassFairShare = false);

  /// Pops the best task visible from \p HomeShard: boosted tasks first
  /// (global scan, gated by the BoostedHint counter), then the producer
  /// queue, then the home shard, then a stealing scan of victim shards.
  TaskPtr tryPop(unsigned HomeShard);
  TaskPtr popFromShard(Shard &S);
  TaskPtr popBoosted();

  /// Pops every admission-ready task out of the Supervisor into the
  /// shards.  Caller holds GateM.
  void drainSupervisor(unsigned HomeShard);

  //===--- Tokens, parking, worker lifecycle -----------------------------===//

  bool tryAcquireToken();
  void releaseToken();
  /// Blocks until a concurrency token is available (handled-wait resume).
  void acquireTokenBlocking();

  /// Wakes a parked worker, or spawns a new OS thread when ready work
  /// exists, no worker is parked, and a token is free (all existing
  /// workers' tasks are blocked in waits).
  void ensureWorkerForReadyWork();

  const unsigned Processors;
  const unsigned NumShards;
  const CostModel Model;

  std::unique_ptr<Shard[]> Shards;
  Shard ProducerQueue; ///< Lexor/Splitter/Importer tasks, popped first.

  /// Gated-task machinery: the Supervisor tracks tasks held on avoided
  /// events.  GateM serializes it; signals skip it via Event::MayGate.
  std::mutex GateM;
  Supervisor Sup;

  std::atomic<unsigned> Active{0};     ///< Concurrency tokens in use.
  std::atomic<uint64_t> Incomplete{0}; ///< Spawned but not finished.
  std::atomic<size_t> ReadyCount{0};   ///< Tasks queued across all shards.
  std::atomic<unsigned> BoostedHint{0}; ///< Queued boosted tasks (approx).
  std::atomic<unsigned> Blocked{0};    ///< Workers inside wait().
  std::atomic<uint64_t> TotalSpawned{0};
  std::atomic<unsigned> RoundRobin{0}; ///< Home shard for external spawns.
  std::atomic<bool> ShuttingDown{false};
  std::atomic<bool> Started{false};

  /// Parking lot for workers with no admissible work.  The waiter counts
  /// are atomic so pushers can skip the lock-and-notify when nobody is
  /// parked (the common case on a busy pipeline).
  std::mutex IdleM;
  std::condition_variable IdleCv;
  std::atomic<unsigned> IdleWorkers{0};

  /// Parking lot for resumed tasks waiting to reacquire a token.
  std::mutex TokenM;
  std::condition_variable TokenCv;
  std::atomic<unsigned> TokenWaiters{0};

  /// run() completion wait.
  std::mutex DoneM;
  std::condition_variable DoneCv;

  std::mutex WorkersM; ///< Guards Workers (dynamic thread spawning).
  std::vector<std::thread> Workers;

  //===--- Service mode state --------------------------------------------===//

  /// Per-request accounting.  Handed to clients as an opaque
  /// shared_ptr<void> (openRequest) and stamped on the request's tasks.
  struct RequestState {
    /// Tasks carrying this tag that were spawned but have not finished.
    std::atomic<uint64_t> Incomplete{0};
    /// Concurrency slots currently charged to this request (running tasks
    /// that have not yet blocked or completed).
    std::atomic<unsigned> Slots{0};
    /// Tasks parked because the request was at its fair share when they
    /// became ready, plus the home shard each arrived with (so admission
    /// pushes it back where it came from).  DeferM guards both deques;
    /// DeferredCount lets the admit path skip the lock when nothing is
    /// parked.
    std::mutex DeferM;
    std::deque<TaskPtr> Deferred;
    std::deque<unsigned> DeferredShards;
    std::atomic<size_t> DeferredCount{0};
  };

  /// Looks up the RequestState a task is attributed to (null for untagged
  /// tasks or outside service mode).
  static RequestState *requestOf(const Task &T) {
    return static_cast<RequestState *>(T.requestTag().get());
  }

  /// Tasks every request may run regardless of its fair share: producer
  /// classes and interface parses (what other tasks block on — throttling
  /// them converts fairness into convoying) and boosted resolvers.
  static bool bypassesFairShare(const Task &T) {
    return isProducerClass(T.taskClass()) ||
           T.taskClass() == TaskClass::DefModParserDecl || T.isBoosted();
  }

  /// Moves parked tasks of \p RS back into the ready queues while the
  /// request is under its fair share.
  void admitDeferred(RequestState &RS);

  /// Releases the fair-share slot held by \p T (first wait or completion,
  /// whichever comes first) and admits parked work it was excluding.
  void releaseRequestSlot(Task &T);

  /// Called when a tagged task finishes: drops the request's Incomplete
  /// count and wakes awaitRequest() at zero.
  void finishRequestTask(const std::shared_ptr<void> &Tag);

  /// Recomputes FairShare from the open-request count.  Caller holds ReqM.
  void recomputeFairShare();

  std::atomic<bool> Serving{false};
  /// Per-request running-task cap: max(1, Processors / open requests).
  /// ~0u outside service mode / single-request operation (no throttling).
  std::atomic<unsigned> FairShare{~0u};
  std::mutex ReqM; ///< Guards OpenRequests and FairShare recomputation.
  std::vector<std::shared_ptr<RequestState>> OpenRequests;
  /// awaitRequest() parking lot (shared by all requests; completions are
  /// rare relative to task throughput).
  std::mutex ReqDoneM;
  std::condition_variable ReqDoneCv;

  //===--- Hot statistic counters (flushed into Stats at run() end) ------===//
  std::atomic<uint64_t> CtStarted{0};
  std::atomic<uint64_t> CtSignaled{0};
  std::atomic<uint64_t> CtReleasedByEvent{0};
  std::atomic<uint64_t> CtBarrierWaits{0};
  std::atomic<uint64_t> CtBarrierNs{0};
  std::atomic<uint64_t> CtHandledWaits{0};
  std::atomic<uint64_t> CtBoosts{0};
  std::atomic<uint64_t> CtSteals{0};
  std::atomic<uint64_t> CtWorkersSpawned{0};
  std::atomic<uint64_t> CtDeferred{0};
  std::atomic<uint64_t> CtRequestsOpened{0};
  std::atomic<uint64_t> CtRequestsClosed{0};

  std::chrono::steady_clock::time_point RunStart;
  uint64_t ElapsedNs = 0;
};

} // namespace m2c::sched

#endif // M2C_SCHED_THREADEDEXECUTOR_H
