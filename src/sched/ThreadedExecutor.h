//===--- ThreadedExecutor.h - Real-thread Supervisors executor -*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes compiler tasks on real OS threads with at most P tasks
/// running unblocked at any instant — the paper's "Supervisors" scheme
/// (one Worker per hardware processor) realized with a concurrency-token
/// pool.  When a task blocks on a handled event its token is released so
/// another task can use the processor (the modern equivalent of the
/// paper's run-another-task-nested workaround for Topaz threads); barrier
/// waits hold the token, exactly as the paper's workers "simply wait".
///
/// Scheduling state is sharded for scalability (see DESIGN.md section 9):
/// ready tasks live in per-shard class-priority deques with work
/// stealing; producer-class tasks (Lexor/Splitter/Importer — the tasks
/// barrier waiters depend on) go to one global queue every pop consults
/// first, preserving the producers-run-before-consumers invariant that
/// makes barrier waits deadlock-free.  Avoided-event gating runs through
/// the shared Supervisor under a dedicated gate lock that signals bypass
/// (Dekker-paired Event::MayGate flag) unless the event actually gates a
/// task.  Blocked tasks park on their event's own mutex/condvar, so
/// signal/wait traffic on different events never contends.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SCHED_THREADEDEXECUTOR_H
#define M2C_SCHED_THREADEDEXECUTOR_H

#include "sched/Executor.h"
#include "sched/ExecContext.h"
#include "sched/Supervisor.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace m2c::sched {

/// Real-thread executor limited to \p Processors concurrently unblocked
/// tasks.
class ThreadedExecutor : public Executor {
public:
  explicit ThreadedExecutor(unsigned Processors, CostModel Model = CostModel());
  ~ThreadedExecutor() override;

  void spawn(TaskPtr T) override;
  void run() override;
  uint64_t elapsedUnits() const override { return ElapsedNs; }
  unsigned processorCount() const override { return Processors; }

  const CostModel &costModel() const { return Model; }

private:
  /// One ready-task shard: class-priority FIFO deques under a private
  /// lock.  Workers push spawned tasks to their home shard and steal from
  /// victim shards when their own is empty.
  struct Shard {
    std::mutex M;
    std::deque<TaskPtr> ByClass[NumTaskClasses];
    /// Tasks queued in this shard; lets pops and steals skip empty shards
    /// without touching their locks.
    std::atomic<size_t> Count{0};
  };

  /// ExecContext implementation installed while a worker runs a task.
  class WorkerContext final : public ExecContext {
  public:
    WorkerContext(ThreadedExecutor &Exec, Task &T, unsigned WorkerId)
        : Exec(Exec), T(T), WorkerId(WorkerId) {}

    void charge(CostKind Kind, uint64_t Count) override;
    void wait(Event &E) override;
    void signal(Event &E) override;
    void spawn(TaskPtr NewTask) override {
      Exec.spawnFrom(std::move(NewTask), WorkerId % Exec.NumShards);
    }
    const CostModel &costModel() const override { return Exec.Model; }

  private:
    friend class ThreadedExecutor;
    ThreadedExecutor &Exec;
    Task &T;
    unsigned WorkerId;
    uint64_t IntervalStartNs = 0;
    uint64_t ChargedUnits = 0;
  };

  void workerMain(unsigned WorkerId);
  void runTask(TaskPtr T, unsigned WorkerId);
  uint64_t nowNs() const;
  void flushInterval(WorkerContext &Ctx);

  //===--- Ready-task queues ---------------------------------------------===//

  static bool isProducerClass(TaskClass C) {
    return C <= TaskClass::Importer;
  }

  /// Spawn bookkeeping plus routing: gated tasks to the Supervisor,
  /// producer classes to the global producer queue, the rest to
  /// \p HomeShard (the spawning worker's shard; round-robin externally).
  void spawnFrom(TaskPtr T, unsigned HomeShard);

  /// Pushes an admission-ready task into its queue and wakes a worker.
  void pushReady(TaskPtr T, unsigned HomeShard);

  /// Pops the best task visible from \p HomeShard: boosted tasks first
  /// (global scan, gated by the BoostedHint counter), then the producer
  /// queue, then the home shard, then a stealing scan of victim shards.
  TaskPtr tryPop(unsigned HomeShard);
  TaskPtr popFromShard(Shard &S);
  TaskPtr popBoosted();

  /// Pops every admission-ready task out of the Supervisor into the
  /// shards.  Caller holds GateM.
  void drainSupervisor(unsigned HomeShard);

  //===--- Tokens, parking, worker lifecycle -----------------------------===//

  bool tryAcquireToken();
  void releaseToken();
  /// Blocks until a concurrency token is available (handled-wait resume).
  void acquireTokenBlocking();

  /// Wakes a parked worker, or spawns a new OS thread when ready work
  /// exists, no worker is parked, and a token is free (all existing
  /// workers' tasks are blocked in waits).
  void ensureWorkerForReadyWork();

  const unsigned Processors;
  const unsigned NumShards;
  const CostModel Model;

  std::unique_ptr<Shard[]> Shards;
  Shard ProducerQueue; ///< Lexor/Splitter/Importer tasks, popped first.

  /// Gated-task machinery: the Supervisor tracks tasks held on avoided
  /// events.  GateM serializes it; signals skip it via Event::MayGate.
  std::mutex GateM;
  Supervisor Sup;

  std::atomic<unsigned> Active{0};     ///< Concurrency tokens in use.
  std::atomic<uint64_t> Incomplete{0}; ///< Spawned but not finished.
  std::atomic<size_t> ReadyCount{0};   ///< Tasks queued across all shards.
  std::atomic<unsigned> BoostedHint{0}; ///< Queued boosted tasks (approx).
  std::atomic<unsigned> Blocked{0};    ///< Workers inside wait().
  std::atomic<uint64_t> TotalSpawned{0};
  std::atomic<unsigned> RoundRobin{0}; ///< Home shard for external spawns.
  std::atomic<bool> ShuttingDown{false};
  std::atomic<bool> Started{false};

  /// Parking lot for workers with no admissible work.  The waiter counts
  /// are atomic so pushers can skip the lock-and-notify when nobody is
  /// parked (the common case on a busy pipeline).
  std::mutex IdleM;
  std::condition_variable IdleCv;
  std::atomic<unsigned> IdleWorkers{0};

  /// Parking lot for resumed tasks waiting to reacquire a token.
  std::mutex TokenM;
  std::condition_variable TokenCv;
  std::atomic<unsigned> TokenWaiters{0};

  /// run() completion wait.
  std::mutex DoneM;
  std::condition_variable DoneCv;

  std::mutex WorkersM; ///< Guards Workers (dynamic thread spawning).
  std::vector<std::thread> Workers;

  //===--- Hot statistic counters (flushed into Stats at run() end) ------===//
  std::atomic<uint64_t> CtStarted{0};
  std::atomic<uint64_t> CtSignaled{0};
  std::atomic<uint64_t> CtReleasedByEvent{0};
  std::atomic<uint64_t> CtBarrierWaits{0};
  std::atomic<uint64_t> CtBarrierNs{0};
  std::atomic<uint64_t> CtHandledWaits{0};
  std::atomic<uint64_t> CtBoosts{0};
  std::atomic<uint64_t> CtSteals{0};
  std::atomic<uint64_t> CtWorkersSpawned{0};

  std::chrono::steady_clock::time_point RunStart;
  uint64_t ElapsedNs = 0;
};

} // namespace m2c::sched

#endif // M2C_SCHED_THREADEDEXECUTOR_H
