//===--- ThreadedExecutor.h - Real-thread Supervisors executor -*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes compiler tasks on real OS threads with at most P tasks
/// running unblocked at any instant — the paper's "Supervisors" scheme
/// (one Worker per hardware processor) realized with a concurrency-token
/// pool.  When a task blocks on a handled event its token is released so
/// another task can use the processor (the modern equivalent of the
/// paper's run-another-task-nested workaround for Topaz threads); barrier
/// waits hold the token, exactly as the paper's workers "simply wait".
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SCHED_THREADEDEXECUTOR_H
#define M2C_SCHED_THREADEDEXECUTOR_H

#include "sched/Executor.h"
#include "sched/ExecContext.h"
#include "sched/Supervisor.h"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace m2c::sched {

/// Real-thread executor limited to \p Processors concurrently unblocked
/// tasks.
class ThreadedExecutor : public Executor {
public:
  explicit ThreadedExecutor(unsigned Processors, CostModel Model = CostModel());
  ~ThreadedExecutor() override;

  void spawn(TaskPtr T) override;
  void run() override;
  uint64_t elapsedUnits() const override { return ElapsedNs; }
  unsigned processorCount() const override { return Processors; }

  const CostModel &costModel() const { return Model; }

private:
  /// ExecContext implementation installed while a worker runs a task.
  class WorkerContext final : public ExecContext {
  public:
    WorkerContext(ThreadedExecutor &Exec, Task &T, unsigned WorkerId)
        : Exec(Exec), T(T), WorkerId(WorkerId) {}

    void charge(CostKind Kind, uint64_t Count) override;
    void wait(Event &E) override;
    void signal(Event &E) override;
    void spawn(TaskPtr NewTask) override { Exec.spawn(std::move(NewTask)); }
    const CostModel &costModel() const override { return Exec.Model; }

  private:
    friend class ThreadedExecutor;
    ThreadedExecutor &Exec;
    Task &T;
    unsigned WorkerId;
    uint64_t IntervalStartNs = 0;
    uint64_t ChargedUnits = 0;
  };

  void workerMain(unsigned WorkerId);
  void runTask(TaskPtr T, unsigned WorkerId);
  /// Ensures a spare worker thread exists when ready work would otherwise
  /// sit idle because every existing worker is occupied.  Caller holds M.
  void ensureWorkerForReadyWork();
  uint64_t nowNs() const;
  void flushInterval(WorkerContext &Ctx);

  const unsigned Processors;
  const CostModel Model;

  std::mutex M;
  std::condition_variable WorkCv;
  std::condition_variable DoneCv;
  Supervisor Sup;
  unsigned Active = 0;       // tasks currently executing, unblocked
  unsigned IdleWorkers = 0;  // workers parked waiting for admission
  uint64_t Incomplete = 0;   // spawned but not finished
  bool ShuttingDown = false;
  bool Started = false;
  std::vector<std::thread> Workers;

  std::chrono::steady_clock::time_point RunStart;
  uint64_t ElapsedNs = 0;
};

} // namespace m2c::sched

#endif // M2C_SCHED_THREADEDEXECUTOR_H
