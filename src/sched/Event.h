//===--- Event.h - Concurrency events (paper section 2.3.3) ----*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Events are the concurrency mechanism of the compiler: "an event is
/// simply something that either has or has not occurred.  A task waits on
/// an event if and only if it hasn't occurred" (paper section 2.3.1).
///
/// Events come in three categories (section 2.3.3):
///
///  * Avoided events gate task start: a task listing an avoided event as a
///    prerequisite is not handed to a worker until the event has occurred.
///  * Handled events may be waited on mid-task; the worker whose task
///    blocks is released to perform other tasks, preferring the task that
///    will signal the awaited event.
///  * Barrier events are waited on without releasing the worker; they are
///    used only in the token streams, where the producer (a Lexor task)
///    never blocks, so deadlock is impossible.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SCHED_EVENT_H
#define M2C_SCHED_EVENT_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

namespace m2c::sched {

class Task;

/// The three event categories of paper section 2.3.3.
enum class EventKind : uint8_t {
  Avoided,
  Handled,
  Barrier,
};

/// A one-shot occurrence flag tasks can wait on.
///
/// The flag only ever transitions unsignaled -> signaled.  Waiting and
/// signaling are routed through the active ExecContext so that each
/// executor (threaded, simulated, sequential) can apply its own scheduling
/// policy; the Event itself carries the shared state every executor needs.
class Event {
public:
  Event(std::string Name, EventKind Kind)
      : Name(std::move(Name)), Kind(Kind) {}
  Event(const Event &) = delete;
  Event &operator=(const Event &) = delete;

  const std::string &name() const { return Name; }
  EventKind kind() const { return Kind; }

  bool isSignaled() const { return Signaled.load(std::memory_order_acquire); }

  /// The task whose completion is expected to signal this event.  Used by
  /// the supervisor to preferentially schedule the resolver of a DKY
  /// blockage (section 2.3.4).  May be null.
  Task *resolver() const { return Resolver.load(std::memory_order_acquire); }
  void setResolver(Task *T) { Resolver.store(T, std::memory_order_release); }

  /// Virtual time at which the event was signaled (simulated executor
  /// only; zero elsewhere).
  uint64_t signalTime() const {
    return SignalTimeUnits.load(std::memory_order_acquire);
  }

private:
  friend class ThreadedExecutor;
  friend class SimulatedExecutor;
  friend class SequentialContext;

  /// Marks the event signaled.  Returns true if this call performed the
  /// transition (i.e. the event was previously unsignaled).
  bool markSignaled(uint64_t TimeUnits) {
    bool Expected = false;
    if (!Signaled.compare_exchange_strong(Expected, true,
                                          std::memory_order_acq_rel))
      return false;
    SignalTimeUnits.store(TimeUnits, std::memory_order_release);
    return true;
  }

  const std::string Name;
  const EventKind Kind;
  std::atomic<bool> Signaled{false};
  std::atomic<Task *> Resolver{nullptr};
  std::atomic<uint64_t> SignalTimeUnits{0};

  // Used by the threaded executor to park OS threads on this event.
  std::mutex WaitMutex;
  std::condition_variable WaitCv;

  /// Threaded executor: set (under its gate lock) when some unstarted
  /// task lists this event as an avoided-event prerequisite.  Lets the
  /// signal fast path skip the gate lock for the overwhelming majority of
  /// events that never gate a task; the seq_cst fence pairing on both
  /// sides (Dekker) guarantees a signal cannot miss a concurrent gating.
  std::atomic<bool> MayGate{false};
};

using EventPtr = std::shared_ptr<Event>;

/// Convenience factory.
inline EventPtr makeEvent(std::string Name, EventKind Kind) {
  return std::make_shared<Event>(std::move(Name), Kind);
}

} // namespace m2c::sched

#endif // M2C_SCHED_EVENT_H
