//===--- ExecContext.cpp - Per-task execution services --------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "sched/ExecContext.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace m2c::sched;

ExecContext::~ExecContext() = default;

const char *m2c::sched::costKindName(CostKind Kind) {
  switch (Kind) {
  case CostKind::LexChar:
    return "LexChar";
  case CostKind::LexToken:
    return "LexToken";
  case CostKind::ParseToken:
    return "ParseToken";
  case CostKind::DeclAnalyzed:
    return "DeclAnalyzed";
  case CostKind::VarAnalyzed:
    return "VarAnalyzed";
  case CostKind::LookupProbe:
    return "LookupProbe";
  case CostKind::LookupBlocked:
    return "LookupBlocked";
  case CostKind::StmtNode:
    return "StmtNode";
  case CostKind::EmitInstr:
    return "EmitInstr";
  case CostKind::SplitToken:
    return "SplitToken";
  case CostKind::ImportToken:
    return "ImportToken";
  case CostKind::QueueBlock:
    return "QueueBlock";
  case CostKind::EventCreate:
    return "EventCreate";
  case CostKind::MergeUnit:
    return "MergeUnit";
  case CostKind::CacheProbe:
    return "CacheProbe";
  case CostKind::CacheLookup:
    return "CacheLookup";
  }
  return "Unknown";
}

const char *m2c::sched::taskClassName(TaskClass Class) {
  switch (Class) {
  case TaskClass::Lexor:
    return "Lexor";
  case TaskClass::Splitter:
    return "Splitter";
  case TaskClass::Importer:
    return "Importer";
  case TaskClass::DefModParserDecl:
    return "DefModParserDecl";
  case TaskClass::ModuleParserDecl:
    return "ModuleParserDecl";
  case TaskClass::ProcParserDecl:
    return "ProcParserDecl";
  case TaskClass::LongStmtCodeGen:
    return "LongStmtCodeGen";
  case TaskClass::ShortStmtCodeGen:
    return "ShortStmtCodeGen";
  case TaskClass::Merge:
    return "Merge";
  case TaskClass::TierPromote:
    return "TierPromote";
  }
  return "Unknown";
}

namespace {
thread_local ExecContext *CurrentCtx = nullptr;
thread_local SequentialContext *FallbackCtx = nullptr;
} // namespace

ExecContext &m2c::sched::ctx() {
  if (CurrentCtx)
    return *CurrentCtx;
  // Lazily create one fallback context per thread for code running outside
  // any executor (unit tests, ad-hoc phase invocations).  Intentionally
  // leaked at thread exit to keep the fast path trivial.
  if (!FallbackCtx)
    FallbackCtx = new SequentialContext();
  return *FallbackCtx;
}

ScopedContext::ScopedContext(ExecContext &Ctx) : Saved(CurrentCtx) {
  CurrentCtx = &Ctx;
}

ScopedContext::~ScopedContext() { CurrentCtx = Saved; }

void SequentialContext::charge(CostKind Kind, uint64_t Count) {
  TotalUnits += Model.unitsFor(Kind, Count);
}

void SequentialContext::wait(Event &E) {
  // Sequential execution runs phases in dependency order, so any event a
  // phase waits on must already have occurred.  A violation means the
  // driver sequenced phases incorrectly.
  if (!E.isSignaled()) {
    std::fprintf(stderr,
                 "m2c: sequential wait on unsignaled event '%s'; phases "
                 "were run out of dependency order\n",
                 E.name().c_str());
    std::abort();
  }
  TotalUnits += Model.EventWaitOverhead;
}

void SequentialContext::signal(Event &E) {
  E.markSignaled(TotalUnits);
  TotalUnits += Model.EventSignalOverhead;
}

void SequentialContext::spawn(TaskPtr T) {
  assert(T && "null task");
  Pending.push_back(std::move(T));
}

void SequentialContext::drain() {
  bool Progress = true;
  while (!Pending.empty() && Progress) {
    Progress = false;
    for (size_t I = 0; I < Pending.size();) {
      TaskPtr &T = Pending[I];
      bool Ready = true;
      for (const EventPtr &E : T->prerequisites())
        if (!E->isSignaled()) {
          Ready = false;
          break;
        }
      if (!Ready) {
        ++I;
        continue;
      }
      TaskPtr Run = std::move(T);
      Pending.erase(Pending.begin() + static_cast<ptrdiff_t>(I));
      Run->markStarted();
      Run->invoke();
      Run->markDone();
      Progress = true;
      // Restart the scan: completing a task may have readied earlier ones.
      I = 0;
    }
  }
  if (!Pending.empty()) {
    std::fprintf(stderr,
                 "m2c: sequential drain stuck with %zu tasks pending\n",
                 Pending.size());
    std::abort();
  }
}
