//===--- Task.h - Units of compiler parallelism (section 2.3) --*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "The task is the atomic unit of parallelism in our compilers."  Each
/// stream is partitioned into tasks corresponding to the traditional
/// compilation phases; the supervisor assigns tasks to workers in priority
/// order (section 2.3.4).
///
//===----------------------------------------------------------------------===//

#ifndef M2C_SCHED_TASK_H
#define M2C_SCHED_TASK_H

#include "sched/Event.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace m2c::sched {

/// Supervisor priority classes, highest priority first.  This is exactly
/// the queue-search order of the Skeptical Handling compiler in section
/// 2.3.4, with Merge appended (the paper notes merge tasks are tiny and
/// can run at any time; we run them last).
enum class TaskClass : uint8_t {
  Lexor = 0,
  Splitter,
  Importer,
  DefModParserDecl,
  ModuleParserDecl,
  ProcParserDecl,
  LongStmtCodeGen,
  ShortStmtCodeGen,
  Merge,
  /// VM tier-1 promotion: translates a hot procedure into threaded code
  /// while the interpreter keeps running it.  Lowest priority — promotion
  /// is a throughput optimization and must never delay compilation tasks.
  TierPromote,
};

/// Number of distinct TaskClass values.
constexpr unsigned NumTaskClasses =
    static_cast<unsigned>(TaskClass::TierPromote) + 1;

/// Returns a human-readable name for \p Class.
const char *taskClassName(TaskClass Class);

/// A schedulable unit of compiler work.
///
/// A task owns a body closure, a priority class, an optional weight (used
/// to order long statement/code-generation tasks before short ones) and a
/// list of avoided-event prerequisites that must all be signaled before
/// the supervisor will consider the task ready.
class Task {
public:
  using BodyFn = std::function<void()>;

  Task(std::string Name, TaskClass Class, BodyFn Body)
      : Name(std::move(Name)), Class(Class), Body(std::move(Body)) {}
  Task(const Task &) = delete;
  Task &operator=(const Task &) = delete;

  const std::string &name() const { return Name; }
  TaskClass taskClass() const { return Class; }

  /// Estimated size of the task's work, used only to order tasks within
  /// the LongStmtCodeGen class ("code is generated for long procedures
  /// before short ones to avoid a long sequential tail").  Larger runs
  /// first.
  int64_t weight() const { return Weight; }
  void setWeight(int64_t W) { Weight = W; }

  /// Registers an avoided-event prerequisite.  Must be called before the
  /// task is spawned.
  void addPrerequisite(EventPtr E) { Prereqs.push_back(std::move(E)); }
  const std::vector<EventPtr> &prerequisites() const { return Prereqs; }

  /// Priority boost applied when some blocked task is waiting for this
  /// task to signal an event (resolver preference, section 2.3.4).
  /// boost() returns true only for the call that performed the
  /// transition, so callers can keep exact boosted-task accounting.
  bool isBoosted() const { return Boosted.load(std::memory_order_relaxed); }
  bool boost() {
    bool Expected = false;
    return Boosted.compare_exchange_strong(Expected, true,
                                           std::memory_order_acq_rel);
  }

  /// Runs the task body.  Called exactly once, by an executor.
  void invoke() { Body(); }

  /// True once the body has run to completion.
  bool isDone() const { return Done.load(std::memory_order_acquire); }
  void markDone() { Done.store(true, std::memory_order_release); }

  /// True once an executor has begun executing the body.
  bool isStarted() const { return Started.load(std::memory_order_acquire); }
  bool markStarted() {
    bool Expected = false;
    return Started.compare_exchange_strong(Expected, true,
                                           std::memory_order_acq_rel);
  }

  /// Opaque handle of the build request this task belongs to (service
  /// mode).  Null for tasks outside any request.  Set before the task is
  /// spawned — either by the submitting TaskSpawner or inherited from the
  /// spawning task by the executor.
  const std::shared_ptr<void> &requestTag() const { return Request; }
  void setRequestTag(std::shared_ptr<void> Tag) { Request = std::move(Tag); }

  /// Fair-share bookkeeping (service mode): a task charged to its
  /// request's concurrency-slot count at admission time holds the slot
  /// until it first blocks or completes, whichever comes first.
  /// markSlotHeld() records the charge (before the task can run, so it
  /// never races the release); markSlotReleased() returns true only for
  /// the call that performed the release, so the executor decrements each
  /// request's slot count exactly once per counted task.
  bool holdsSlot() const { return SlotHeld.load(std::memory_order_acquire); }
  void markSlotHeld() { SlotHeld.store(true, std::memory_order_release); }
  bool markSlotReleased() {
    bool Expected = false;
    return SlotReleased.compare_exchange_strong(Expected, true,
                                                std::memory_order_acq_rel);
  }

private:
  const std::string Name;
  const TaskClass Class;
  BodyFn Body;
  int64_t Weight = 0;
  std::vector<EventPtr> Prereqs;
  std::shared_ptr<void> Request;
  std::atomic<bool> Boosted{false};
  std::atomic<bool> Started{false};
  std::atomic<bool> Done{false};
  std::atomic<bool> SlotHeld{false};
  std::atomic<bool> SlotReleased{false};
};

using TaskPtr = std::shared_ptr<Task>;

/// Convenience factory.
inline TaskPtr makeTask(std::string Name, TaskClass Class, Task::BodyFn Body) {
  return std::make_shared<Task>(std::move(Name), Class, std::move(Body));
}

} // namespace m2c::sched

#endif // M2C_SCHED_TASK_H
