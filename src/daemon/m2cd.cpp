//===--- m2cd.cpp - network build daemon executable -----------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
// The long-lived build daemon: serves docs/PROTOCOL.md over a unix-domain
// socket (and optionally TCP) until SIGTERM/SIGINT, then drains — finishes
// every in-flight build, refuses new work, exits 0.
//
//   m2cd -socket PATH [options]
//     -socket PATH   unix-domain socket to listen on
//     -tcp PORT      additionally listen on 127.0.0.1:PORT (0 = ephemeral,
//                    the chosen port is printed)
//     -C DIR         workspace: preload every .def/.mod under DIR
//                    (default "."); clients may also push sources inline
//     -j N           workers of the shared executor (default 4)
//     -dky S         avoidance | pessimistic | skeptical | optimistic
//     -cache DIR     persistent disk cache below the in-memory tier
//     -max-active N  concurrently *running* requests (FIFO beyond; default 8)
//     -max-pending N queued-or-running bound; beyond it BUILDs are shed
//                    with REJECTED_OVERLOAD (default 16)
//     -max-conns N   concurrent connections; beyond it accepts are shed
//                    (default 32)
//     -mem-tier BYTES in-memory cache tier budget (default 64 MiB) — farm
//                    workers run with a fixed budget so a worker is a
//                    provisionable unit
//     -pool-cap N    bound on distinct .def files one shared-interface
//                    generation may pool (default unbounded); exceeding it
//                    rotates the generation
//     -worker        farm worker mode: WELCOME advertises "m2cd/1 worker"
//                    so the spawning coordinator's readiness probe can
//                    tell its worker from an unrelated daemon
//
//===----------------------------------------------------------------------===//

#include "daemon/Daemon.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

using namespace m2c;

namespace {

volatile std::sig_atomic_t TermRequested = 0;

void onTerm(int) { TermRequested = 1; }

int usage() {
  std::fprintf(stderr,
               "usage: m2cd -socket PATH [-tcp PORT] [-C DIR] [-j N] "
               "[-dky STRATEGY] [-cache DIR] [-max-active N] "
               "[-max-pending N] [-max-conns N] [-mem-tier BYTES] "
               "[-pool-cap N] [-worker]\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  daemon::DaemonConfig Config;
  std::string Workspace = ".";
  bool HaveListener = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto IntArg = [&](unsigned &Out) {
      if (I + 1 >= Argc)
        return false;
      int V = std::atoi(Argv[++I]);
      if (V <= 0)
        return false;
      Out = static_cast<unsigned>(V);
      return true;
    };
    if (Arg == "-socket" && I + 1 < Argc) {
      Config.UnixSocketPath = Argv[++I];
      HaveListener = true;
    } else if (Arg == "-tcp" && I + 1 < Argc) {
      int Port = std::atoi(Argv[++I]);
      if (Port < 0 || Port > 65535)
        return usage();
      Config.EnableTcp = true;
      Config.TcpPort = static_cast<uint16_t>(Port);
      HaveListener = true;
    } else if (Arg == "-C" && I + 1 < Argc) {
      Workspace = Argv[++I];
    } else if (Arg == "-j") {
      if (!IntArg(Config.Service.Workers))
        return usage();
    } else if (Arg == "-dky" && I + 1 < Argc) {
      std::string S = Argv[++I];
      if (S == "avoidance")
        Config.Service.Strategy = symtab::DkyStrategy::Avoidance;
      else if (S == "pessimistic")
        Config.Service.Strategy = symtab::DkyStrategy::Pessimistic;
      else if (S == "skeptical")
        Config.Service.Strategy = symtab::DkyStrategy::Skeptical;
      else if (S == "optimistic")
        Config.Service.Strategy = symtab::DkyStrategy::Optimistic;
      else
        return usage();
    } else if (Arg == "-cache" && I + 1 < Argc) {
      Config.Service.CacheDir = Argv[++I];
    } else if (Arg == "-max-active") {
      if (!IntArg(Config.Service.MaxActiveRequests))
        return usage();
    } else if (Arg == "-max-pending") {
      if (!IntArg(Config.MaxPendingBuilds))
        return usage();
    } else if (Arg == "-max-conns") {
      if (!IntArg(Config.MaxConnections))
        return usage();
    } else if (Arg == "-mem-tier" && I + 1 < Argc) {
      long long Bytes = std::atoll(Argv[++I]);
      if (Bytes < 0)
        return usage();
      Config.Service.MemoryTierBytes = static_cast<size_t>(Bytes);
    } else if (Arg == "-pool-cap") {
      if (!IntArg(Config.Service.MaxPooledInterfaces))
        return usage();
    } else if (Arg == "-worker") {
      Config.WorkerMode = true;
    } else {
      return usage();
    }
  }
  if (!HaveListener)
    return usage();

  VirtualFileSystem Files;
  StringInterner Names;
  size_t Preloaded = 0;
  std::error_code EC;
  for (const auto &Entry :
       std::filesystem::directory_iterator(Workspace, EC)) {
    if (!Entry.is_regular_file())
      continue;
    std::string Ext = Entry.path().extension().string();
    if (Ext != ".def" && Ext != ".mod")
      continue;
    // Register under the bare file name — module lookup is by
    // "Module.def"/"Module.mod", not by path.
    std::ifstream In(Entry.path(), std::ios::binary);
    if (!In)
      continue;
    std::ostringstream Text;
    Text << In.rdbuf();
    Files.addFile(Entry.path().filename().string(), Text.str());
    ++Preloaded;
  }
  if (EC) {
    std::fprintf(stderr, "m2cd: cannot read workspace '%s': %s\n",
                 Workspace.c_str(), EC.message().c_str());
    return 1;
  }

  daemon::Daemon Server(Files, Names, Config);
  std::string Err;
  if (!Server.start(Err)) {
    std::fprintf(stderr, "m2cd: %s\n", Err.c_str());
    return 1;
  }
  if (!Config.UnixSocketPath.empty())
    std::printf("m2cd: listening on %s\n", Config.UnixSocketPath.c_str());
  if (Config.EnableTcp)
    std::printf("m2cd: listening on tcp:127.0.0.1:%u\n", Server.tcpPort());
  std::printf("m2cd: workspace '%s' (%zu files), %u workers, "
              "%u max-active, %u max-pending, %u max-conns\n",
              Workspace.c_str(), Preloaded, Config.Service.Workers,
              Config.Service.MaxActiveRequests, Config.MaxPendingBuilds,
              Config.MaxConnections);
  std::fflush(stdout);

  std::signal(SIGTERM, onTerm);
  std::signal(SIGINT, onTerm);
  // Belt and braces against peer resets: every daemon send already uses
  // MSG_NOSIGNAL, but any other write to a dead client fd (stdio over a
  // pipe, future code paths) must degrade to EPIPE, never kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);
  while (!TermRequested)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::printf("m2cd: draining (finishing in-flight builds)\n");
  std::fflush(stdout);
  Server.stop();
  std::printf("m2cd: bye\n");
  return 0;
}
