//===--- Daemon.cpp - m2cd: the network build daemon ----------------------===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "daemon/Daemon.h"

#include "codegen/ObjectFile.h"
#include "fault/FaultPlan.h"
#include "vm/VmStats.h"

using namespace m2c;
using namespace m2c::daemon;
using namespace m2c::net;

Daemon::Daemon(VirtualFileSystem &Files, StringInterner &Interner,
               DaemonConfig Config)
    : Files(Files), Interner(Interner), Config(std::move(Config)),
      Service(Files, Interner, this->Config.Service) {}

Daemon::~Daemon() { stop(); }

bool Daemon::start(std::string &Err) {
  if (Started) {
    Err = "daemon already started";
    return false;
  }
  if (Config.UnixSocketPath.empty() && !Config.EnableTcp) {
    Err = "no listener configured (need a unix socket path and/or TCP)";
    return false;
  }
  if (!Config.UnixSocketPath.empty()) {
    UnixListener = Listener::unixDomain(Config.UnixSocketPath, Err);
    if (!UnixListener.valid())
      return false;
  }
  if (Config.EnableTcp) {
    TcpListener = Listener::tcp(Config.TcpPort, Err);
    if (!TcpListener.valid())
      return false;
    TcpPortBound = TcpListener.port();
  }
  Started = true;
  MonitorThread = std::thread([this] { monitorLoop(); });
  if (UnixListener.valid())
    AcceptThreads.emplace_back([this] { acceptLoop(UnixListener); });
  if (TcpListener.valid())
    AcceptThreads.emplace_back([this] { acceptLoop(TcpListener); });
  return true;
}

void Daemon::requestDrain() {
  Draining.store(true, std::memory_order_relaxed);
}

void Daemon::stop() {
  if (!Started || Stopped)
    return;
  Stopped = true;
  requestDrain();

  // Finish in-flight: every accepted BUILD's one reply must be delivered
  // before any socket is torn down (PROTOCOL.md §12).  Spawning holds
  // BuildsM and re-checks Draining under it, so once the predicate holds
  // under the lock no further build can appear.
  {
    std::unique_lock<std::mutex> Lock(BuildsM);
    BuildsCv.wait(Lock, [this] {
      return PendingBuilds.load(std::memory_order_relaxed) == 0;
    });
    reapBuildThreads(/*All=*/true);
  }

  // Join the accept loops before touching the listener fds: each loop
  // polls with a 100ms timeout and rechecks Stopping, so closing the fd
  // out from under a blocked poll()/accept() is never necessary.
  Stopping.store(true, std::memory_order_relaxed);
  for (std::thread &T : AcceptThreads)
    T.join();
  AcceptThreads.clear();
  UnixListener.close();
  TcpListener.close();

  // Wake connection readers blocked in recv and join them.
  {
    std::lock_guard<std::mutex> Lock(ConnsM);
    for (auto &[Conn, Thread] : Conns) {
      Conn->Sock.shutdownBoth();
      Thread.join();
    }
    Conns.clear();
  }
  {
    std::lock_guard<std::mutex> Lock(DeadlineM);
    Deadlines.clear();
  }
  DeadlineCv.notify_all();
  MonitorThread.join();
}

std::map<std::string, uint64_t> Daemon::statsSnapshot() {
  std::map<std::string, uint64_t> Merged = Service.statsSnapshot();
  for (const auto &[Name, Value] : NetStats.snapshot())
    Merged[Name] += Value;
  // The execution-tier counters (vm.*): present even when the daemon
  // never ran a program, so clients always see the full key set.
  for (const auto &[Name, Value] : vm::globalVmStats().snapshot())
    Merged[Name] += Value;
  // Injection counters (fault.*): only present while a FaultPlan is
  // installed, so production stats stay clean.
  for (const auto &[Name, Value] : fault::statsSnapshot())
    Merged[Name] += Value;
  return Merged;
}

void Daemon::sendFrame(Connection &Conn, const Frame &F) {
  std::lock_guard<std::mutex> Lock(Conn.WriteM);
  // A failed send means the client vanished (EPIPE is suppressed by
  // MSG_NOSIGNAL, so a dead peer can never SIGPIPE the daemon); its reader
  // will see EOF and wind the connection down, so the write is simply
  // counted and dropped.
  if (!Conn.Sock.sendFrame(F))
    NetStats.add("net.replies.sendfailed");
}

//===--- Accepting ---------------------------------------------------------===//

void Daemon::acceptLoop(net::Listener &L) {
  while (!Stopping.load(std::memory_order_relaxed)) {
    Socket S;
    switch (L.acceptFor(/*TimeoutMs=*/100, S)) {
    case Listener::AcceptStatus::TimedOut:
      continue;
    case Listener::AcceptStatus::Error:
      return; // Listener closed (stop) or irrecoverably broken.
    case Listener::AcceptStatus::Accepted:
      break;
    }
    if (Draining.load(std::memory_order_relaxed)) {
      NetStats.add("net.connections.draining");
      S.sendFrame(encode(ErrorMsg{Status::Draining, "daemon is draining"}));
      continue; // Socket closes on scope exit.
    }
    if (ActiveConns.load(std::memory_order_relaxed) >= Config.MaxConnections) {
      NetStats.add("net.connections.shed");
      S.sendFrame(encode(
          ErrorMsg{Status::RejectedOverload, "connection limit reached"}));
      continue;
    }
    auto Conn = std::make_shared<Connection>();
    Conn->Sock = std::move(S);
    ActiveConns.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> Lock(ConnsM);
    // Opportunistically reap connections whose reader already exited so
    // a long-lived daemon's list stays proportional to live clients.
    for (size_t I = 0; I < Conns.size();) {
      if (Conns[I].first->ReaderDone.load(std::memory_order_acquire)) {
        Conns[I].second.join();
        Conns.erase(Conns.begin() + static_cast<ptrdiff_t>(I));
      } else {
        ++I;
      }
    }
    Conns.emplace_back(Conn,
                       std::thread([this, Conn] { serveConnection(Conn); }));
  }
}

//===--- Per-connection protocol -------------------------------------------===//

bool Daemon::handshake(Connection &Conn) {
  Frame F;
  if (Conn.Sock.recvFrame(F) != Socket::RecvStatus::Ok)
    return false;
  HelloMsg Hello;
  if (!decode(F, Hello)) {
    NetStats.add("net.frames.malformed");
    sendFrame(Conn, encode(ErrorMsg{Status::Malformed,
                                    "expected HELLO as the first frame"}));
    return false;
  }
  if (Hello.MinVersion > ProtocolVersion ||
      Hello.MaxVersion < ProtocolVersion) {
    sendFrame(Conn, encode(ErrorMsg{Status::UnsupportedVersion,
                                    "server implements only version " +
                                        std::to_string(ProtocolVersion)}));
    return false;
  }
  sendFrame(Conn, encode(WelcomeMsg{ProtocolVersion, Config.WorkerMode
                                                         ? "m2cd/1 worker"
                                                         : "m2cd/1"}));
  NetStats.add("net.connections.accepted");
  return true;
}

void Daemon::serveConnection(std::shared_ptr<Connection> Conn) {
  if (handshake(*Conn)) {
    bool Fatal = false;
    while (!Fatal) {
      Frame F;
      Socket::RecvStatus RS = Conn->Sock.recvFrame(F);
      if (RS == Socket::RecvStatus::Closed)
        break;
      if (RS == Socket::RecvStatus::Truncated) {
        NetStats.add("net.frames.truncated");
        break;
      }
      if (RS == Socket::RecvStatus::TooLarge) {
        NetStats.add("net.frames.toolarge");
        sendFrame(*Conn, encode(ErrorMsg{Status::FrameTooLarge,
                                         "frame exceeds 64 MiB"}));
        break;
      }
      if (RS == Socket::RecvStatus::Malformed) {
        NetStats.add("net.frames.malformed");
        sendFrame(*Conn,
                  encode(ErrorMsg{Status::Malformed, "zero-length frame"}));
        break;
      }
      if (RS != Socket::RecvStatus::Ok)
        break;

      switch (F.Type) {
      case MsgType::Build: {
        BuildRequestMsg Msg;
        if (!decode(F, Msg)) {
          NetStats.add("net.frames.malformed");
          sendFrame(*Conn, encode(ErrorMsg{Status::Malformed,
                                           "undecodable BUILD payload"}));
          Fatal = true;
          break;
        }
        handleBuild(Conn, std::move(Msg));
        break;
      }
      case MsgType::Cancel: {
        CancelMsg Msg;
        if (!decode(F, Msg)) {
          NetStats.add("net.frames.malformed");
          sendFrame(*Conn, encode(ErrorMsg{Status::Malformed,
                                           "undecodable CANCEL payload"}));
          Fatal = true;
          break;
        }
        handleCancel(Conn, Msg);
        break;
      }
      case MsgType::Stats: {
        StatsResultMsg Msg;
        for (const auto &[Name, Value] : statsSnapshot())
          Msg.Counters.emplace_back(Name, Value);
        sendFrame(*Conn, encode(Msg));
        break;
      }
      case MsgType::Ping: {
        PingMsg Msg;
        if (decode(F, Msg))
          sendFrame(*Conn, encodePong(Msg.Token));
        break;
      }
      default:
        // Well-formed frame, unknown type: answer and keep going — the
        // framing is still trustworthy (PROTOCOL.md §4).
        NetStats.add("net.frames.unknown");
        sendFrame(*Conn, encode(ErrorMsg{Status::UnknownType,
                                         "unknown message type"}));
        break;
      }
    }
  }
  Conn->Sock.shutdownBoth();
  ActiveConns.fetch_sub(1, std::memory_order_relaxed);
  Conn->ReaderDone.store(true, std::memory_order_release);
}

//===--- Builds ------------------------------------------------------------===//

void Daemon::handleBuild(const std::shared_ptr<Connection> &Conn,
                         BuildRequestMsg Msg) {
  auto Refuse = [&](Status St, const char *Counter) {
    NetStats.add(Counter);
    BuildResultMsg Out;
    Out.RequestId = Msg.RequestId;
    Out.St = St;
    sendFrame(*Conn, encode(Out));
  };

  // Admission — the drain gate and the shed bound — is decided under
  // BuildsM: stop() waits for PendingBuilds == 0 under the same lock
  // with Draining already set, so a build can never slip in behind the
  // drain's back.
  {
    std::lock_guard<std::mutex> Lock(BuildsM);
    if (Draining.load(std::memory_order_relaxed)) {
      Refuse(Status::Draining, "net.requests.draining");
      return;
    }
    if (PendingBuilds.load(std::memory_order_relaxed) >=
        Config.MaxPendingBuilds) {
      Refuse(Status::RejectedOverload, "net.requests.shed");
      return;
    }
    PendingBuilds.fetch_add(1, std::memory_order_relaxed);
  }

  auto State = std::make_shared<RequestState>();
  State->Id = Msg.RequestId;
  State->Conn = Conn;
  if (Msg.DeadlineMs > 0) {
    State->HasDeadline = true;
    State->Deadline =
        Clock::now() + std::chrono::milliseconds(Msg.DeadlineMs);
  }
  {
    std::lock_guard<std::mutex> Lock(Conn->ReqM);
    if (!Conn->InFlight.emplace(Msg.RequestId, State).second) {
      // Duplicate in-flight id: connection-fatal (PROTOCOL.md §5.3).
      // The reader sees ReqM poisoned via the error frame + shutdown.
      PendingBuilds.fetch_sub(1, std::memory_order_relaxed);
      BuildsCv.notify_all();
      NetStats.add("net.frames.malformed");
      sendFrame(*Conn, encode(ErrorMsg{Status::Malformed,
                                       "request id already in flight"}));
      Conn->Sock.shutdownBoth();
      return;
    }
  }
  NetStats.add("net.requests.received");

  if (State->HasDeadline) {
    std::lock_guard<std::mutex> Lock(DeadlineM);
    Deadlines.emplace(State->Deadline, State);
    DeadlineCv.notify_all();
  }

  std::lock_guard<std::mutex> Lock(BuildsM);
  reapBuildThreads(/*All=*/false);
  auto Done = std::make_shared<std::atomic<bool>>(false);
  BuildThreads.emplace_back(
      Done, std::thread([this, State, Msg = std::move(Msg), Done]() mutable {
        runBuild(std::move(State), std::move(Msg));
        Done->store(true, std::memory_order_release);
      }));
}

void Daemon::runBuild(std::shared_ptr<RequestState> State,
                      BuildRequestMsg Msg) {
  if (Config.OnBuildStart)
    Config.OnBuildStart(Msg.RequestId);

  // Register pushed sources before discovery (PROTOCOL.md §9); the lock
  // makes concurrent pushes interleave whole-file, nothing finer.
  if (!Msg.Files.empty()) {
    std::lock_guard<std::mutex> Lock(FilesM);
    for (auto &[Name, Text] : Msg.Files)
      Files.addFile(Name, std::move(Text));
    NetStats.add("net.files.pushed", Msg.Files.size());
  }

  // A failing build thread must never take the daemon (or the connection)
  // down with it: injected faults and any exception escaping the service
  // become a clean BUILD_RESULT carrying Status::Internal, preserving the
  // exactly-one-reply invariant.  Internal is retryable client-side.
  build::BuildResult R;
  std::string FaultDetail;
  if (M2C_FAULT_HIT("daemon.build").fail()) {
    FaultDetail = "injected fault at daemon.build";
  } else {
    try {
      R = Service.submit(Msg.Roots, &State->Control,
                         static_cast<opt::OptLevel>(Msg.OptLevel));
    } catch (const std::exception &E) {
      FaultDetail = E.what();
    }
  }

  if (!FaultDetail.empty()) {
    NetStats.add("net.requests.faulted");
    BuildResultMsg Out;
    Out.RequestId = State->Id;
    Out.St = Status::Internal;
    Out.Diagnostics = "daemon: build aborted: " + FaultDetail + "\n";
    if (!tryReply(*State, Out, "net.requests.failed"))
      NetStats.add("net.requests.abandoned");
  } else if (R.Aborted) {
    // A checkpoint early-out: the deadline monitor or a CANCEL already
    // sent this request's reply; nothing was compiled.
  } else {
    BuildResultMsg Out;
    Out.RequestId = State->Id;
    Out.St = R.Success ? Status::Ok : Status::BuildFailed;
    Out.Diagnostics = R.DiagnosticText;
    Out.ElapsedNs = R.ElapsedUnits;
    if (R.Success)
      for (const build::ModuleBuild &M : R.Modules) {
        ModuleArtifact A;
        A.Name = M.Name;
        A.FromCache = M.FromCache;
        A.StreamCount = static_cast<uint32_t>(M.StreamCount);
        A.Object = codegen::writeObjectFile(M.Image, Interner);
        Out.Modules.push_back(std::move(A));
      }
    if (!tryReply(*State, Out,
                  R.Success ? "net.requests.ok" : "net.requests.failed"))
      NetStats.add("net.requests.abandoned");
  }

  std::lock_guard<std::mutex> Lock(BuildsM);
  PendingBuilds.fetch_sub(1, std::memory_order_relaxed);
  BuildsCv.notify_all();
}

void Daemon::handleCancel(const std::shared_ptr<Connection> &Conn,
                          const CancelMsg &Msg) {
  std::shared_ptr<RequestState> State;
  {
    std::lock_guard<std::mutex> Lock(Conn->ReqM);
    auto It = Conn->InFlight.find(Msg.RequestId);
    if (It != Conn->InFlight.end())
      State = It->second;
  }
  if (!State) {
    NetStats.add("net.cancels.unknown");
    return; // Already completed, or never sent: a no-op (PROTOCOL.md §7).
  }
  State->Control.abandon();
  BuildResultMsg Out;
  Out.RequestId = Msg.RequestId;
  Out.St = Status::Cancelled;
  tryReply(*State, Out, "net.requests.cancelled");
}

void Daemon::monitorLoop() {
  std::unique_lock<std::mutex> Lock(DeadlineM);
  for (;;) {
    if (Stopping.load(std::memory_order_relaxed))
      return;
    if (Deadlines.empty()) {
      DeadlineCv.wait_for(Lock, std::chrono::milliseconds(100));
      continue;
    }
    Clock::time_point Next = Deadlines.begin()->first;
    if (Clock::now() < Next) {
      DeadlineCv.wait_until(Lock, Next);
      continue;
    }
    std::weak_ptr<RequestState> Weak = Deadlines.begin()->second;
    Deadlines.erase(Deadlines.begin());
    std::shared_ptr<RequestState> State = Weak.lock();
    if (!State)
      continue;
    Lock.unlock();
    State->Control.abandon();
    BuildResultMsg Out;
    Out.RequestId = State->Id;
    Out.St = Status::DeadlineExceeded;
    tryReply(*State, Out, "net.requests.deadline");
    Lock.lock();
  }
}

bool Daemon::tryReply(RequestState &S, const BuildResultMsg &M,
                      const char *Counter) {
  if (S.Replied.exchange(true, std::memory_order_acq_rel))
    return false;
  // Count before the frame hits the wire: a client that reads its result
  // and immediately asks for STATS must see this outcome reflected.
  NetStats.add(Counter);
  sendFrame(*S.Conn, encode(M));
  // The id is reusable the moment its result is on the wire (§5.3).
  std::lock_guard<std::mutex> Lock(S.Conn->ReqM);
  S.Conn->InFlight.erase(S.Id);
  return true;
}

void Daemon::reapBuildThreads(bool All) {
  // Caller holds BuildsM (handleBuild) or no build can be live (stop).
  for (size_t I = 0; I < BuildThreads.size();) {
    if (All || BuildThreads[I].first->load(std::memory_order_acquire)) {
      BuildThreads[I].second.join();
      BuildThreads.erase(BuildThreads.begin() + static_cast<ptrdiff_t>(I));
    } else {
      ++I;
    }
  }
}
