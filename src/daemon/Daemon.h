//===--- Daemon.h - m2cd: the network build daemon --------------*- C++ -*-===//
//
// Part of m2c, a concurrent Modula-2+ compiler reproducing Wortman & Junkin,
// "A Concurrent Compiler for Modula-2+" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived network front end over service::BuildService
/// (DESIGN.md §11): accepts client connections on a unix-domain and/or
/// TCP listener, speaks the docs/PROTOCOL.md frame protocol, and
/// multiplexes every connection's build requests onto the one shared
/// executor and artifact tiers.  Production-traffic essentials live
/// here, not in the service: per-request deadlines, client-initiated
/// cancellation, bounded accept/pending queues with REJECTED_OVERLOAD
/// shed, graceful drain (finish in-flight, refuse new), and the STATS
/// counter export.
///
/// Threading: one poll()-based accept thread per listener, one reader
/// thread per connection, one (joinable, reaped) thread per in-flight
/// build, and one deadline-monitor thread.  Frames on a connection are
/// serialized by a per-connection write mutex; the "exactly one
/// BUILD_RESULT per request" invariant is an atomic claim on the
/// request's Replied flag, so completion, cancellation and deadline
/// expiry can race freely.
///
/// The Daemon is a library class so tests can run it in-process against
/// real sockets; the `m2cd` executable (m2cd.cpp) is a thin main over
/// it that adds SIGTERM-to-drain wiring and workspace preloading.
///
//===----------------------------------------------------------------------===//

#ifndef M2C_DAEMON_DAEMON_H
#define M2C_DAEMON_DAEMON_H

#include "net/Protocol.h"
#include "net/Socket.h"
#include "service/BuildService.h"
#include "support/Statistic.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace m2c::daemon {

/// Everything configurable about one daemon instance.
struct DaemonConfig {
  service::ServiceConfig Service;

  std::string UnixSocketPath; ///< Empty: no unix listener.
  bool EnableTcp = false;
  uint16_t TcpPort = 0; ///< 0 with EnableTcp: ephemeral (see tcpPort()).

  /// Connections allowed concurrently; beyond this, accepts are answered
  /// ERROR REJECTED_OVERLOAD and closed (PROTOCOL.md §10).
  unsigned MaxConnections = 32;
  /// Builds queued-or-running daemon-wide; beyond this, BUILDs are
  /// answered BUILD_RESULT REJECTED_OVERLOAD — the 429-style shed that
  /// keeps the service's FIFO turnstile from growing an unbounded line.
  unsigned MaxPendingBuilds = 16;

  /// Farm worker mode (PROTOCOL.md §14): the WELCOME server string
  /// becomes "m2cd/1 worker", which is how a coordinator's readiness
  /// probe distinguishes the worker it spawned from some unrelated
  /// daemon squatting on the same socket path.  Protocol semantics are
  /// otherwise identical — a worker is a complete daemon.
  bool WorkerMode = false;

  /// Test instrumentation: called on the build thread after the pending
  /// slot is claimed, before the service submit.  Lets DaemonTest hold
  /// builds on a latch to make shed/cancel/drain races deterministic.
  std::function<void(uint64_t RequestId)> OnBuildStart;
};

/// One running daemon: owns the BuildService and all protocol threads.
class Daemon {
public:
  Daemon(VirtualFileSystem &Files, StringInterner &Interner,
         DaemonConfig Config);
  ~Daemon();
  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  /// Binds the configured listeners and starts serving.  False + \p Err
  /// on bind failure.
  bool start(std::string &Err);

  /// Enters drain (PROTOCOL.md §12): refuse new connections and new
  /// BUILDs, keep serving STATS/PING and every in-flight build.
  /// Idempotent; `m2cd` calls this on SIGTERM.
  void requestDrain();

  bool draining() const { return Draining.load(std::memory_order_relaxed); }

  /// Drains, waits for every in-flight build's reply to be delivered,
  /// then tears all threads down.  Idempotent; called by the destructor.
  void stop();

  /// The TCP listener's bound port (after start()); 0 if TCP is off.
  uint16_t tcpPort() const { return TcpPortBound; }

  /// Service counters merged with the daemon's net.* set — what a STATS
  /// request returns.
  std::map<std::string, uint64_t> statsSnapshot();

  service::BuildService &service() { return Service; }

private:
  using Clock = std::chrono::steady_clock;

  struct Connection;

  /// One in-flight BUILD.  Shared by the build thread, the connection
  /// reader (cancel), and the deadline monitor; whoever flips Replied
  /// first owns the reply.
  struct RequestState {
    uint64_t Id = 0;
    std::shared_ptr<Connection> Conn;
    service::RequestControl Control;
    std::atomic<bool> Replied{false};
    Clock::time_point Deadline{};
    bool HasDeadline = false;
  };

  struct Connection {
    net::Socket Sock;
    std::mutex WriteM; ///< Serializes frames onto the socket.
    std::atomic<bool> ReaderDone{false};
    std::mutex ReqM;
    std::map<uint64_t, std::shared_ptr<RequestState>> InFlight;
  };

  void acceptLoop(net::Listener &L);
  void serveConnection(std::shared_ptr<Connection> Conn);
  bool handshake(Connection &Conn);
  void handleBuild(const std::shared_ptr<Connection> &Conn,
                   net::BuildRequestMsg Msg);
  void runBuild(std::shared_ptr<RequestState> State,
                net::BuildRequestMsg Msg);
  void handleCancel(const std::shared_ptr<Connection> &Conn,
                    const net::CancelMsg &Msg);
  void monitorLoop();

  /// Sends \p M as this request's one BUILD_RESULT if no one beat us to
  /// it, bumping \p Counter for the outcome.  Returns false if a reply
  /// was already sent.
  bool tryReply(RequestState &S, const net::BuildResultMsg &M,
                const char *Counter);

  void sendFrame(Connection &Conn, const net::Frame &F);

  /// Joins finished build threads; \p All also joins running ones.
  void reapBuildThreads(bool All);

  VirtualFileSystem &Files;
  StringInterner &Interner;
  const DaemonConfig Config;
  service::BuildService Service;
  StatisticSet NetStats;

  net::Listener UnixListener, TcpListener;
  uint16_t TcpPortBound = 0;
  std::vector<std::thread> AcceptThreads;
  std::thread MonitorThread;

  std::atomic<bool> Draining{false};
  std::atomic<bool> Stopping{false};
  bool Started = false, Stopped = false;

  std::mutex ConnsM;
  std::vector<std::pair<std::shared_ptr<Connection>, std::thread>> Conns;
  std::atomic<unsigned> ActiveConns{0};

  /// Builds queued-or-running (the shed bound) and their joinable
  /// threads, paired with a done flag for opportunistic reaping.
  std::atomic<unsigned> PendingBuilds{0};
  std::mutex BuildsM;
  std::condition_variable BuildsCv;
  std::vector<std::pair<std::shared_ptr<std::atomic<bool>>, std::thread>>
      BuildThreads;

  /// Writes into the shared VirtualFileSystem (pushed BUILD files) are
  /// serialized so two requests' pushes interleave whole-file.
  std::mutex FilesM;

  std::mutex DeadlineM;
  std::condition_variable DeadlineCv;
  std::multimap<Clock::time_point, std::weak_ptr<RequestState>> Deadlines;
};

} // namespace m2c::daemon

#endif // M2C_DAEMON_DAEMON_H
